#!/bin/sh
# Tier-1 checks: formatting, vet, build, full test suite.
# Run from the repository root (or via `make check`).
set -eu
cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race (sweep runner) =="
go test -race ./internal/bench/...

echo "== go test -race (recovery conformance) =="
go test -race -run 'TestConformance' ./internal/mpi/rpi/

echo "== chaos corpus =="
go run ./cmd/chaos -rpi all -seeds 50
go run ./cmd/chaos -rpi all -seeds 25 -multihome
go run ./cmd/chaos -rpi all -seeds 25 -kill

echo "tier-1: OK"
