#!/bin/sh
# Tier-1 checks: formatting, vet, build, full test suite.
# Run from the repository root (or via `make check`).
set -eu
cd "$(dirname "$0")/.."

echo "== gofmt =="
# testdata holds simlint's seeded-violation fixtures; they are kept
# formatted but deliberately not gated, like go vet's ./... skip.
unformatted=$(gofmt -l . | grep -v 'testdata/' || true)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go vet =="
go vet ./...

echo "== simlint =="
# The sweep (every package, syntactic + flow-sensitive rules) fails on
# any unsuppressed finding. Budget: under 30 s wall clock — the shared
# source importer loads the stdlib once per process, so the whole-tree
# sweep costs about what one package used to (see internal/analysis
# load.go); a blown budget means a summary memo stopped caching.
lint_start=$(date +%s)
go run ./cmd/simlint
lint_elapsed=$(( $(date +%s) - lint_start ))
echo "simlint took ${lint_elapsed}s (budget 30s)"
if [ "$lint_elapsed" -gt 30 ]; then
	echo "simlint exceeded the 30s budget" >&2
	exit 1
fi

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race (sweep runner) =="
go test -race ./internal/bench/...

echo "== go test -race (recovery conformance) =="
go test -race -run 'TestConformance' ./internal/mpi/rpi/

echo "== go test -race (readiness engine) =="
go test -race -run 'TestDrive|TestEventCost|TestConformanceReadiness' ./internal/mpi/rpi/

echo "== rank-scaling bench smoke =="
go test -run TestRankScalingSubLinear ./internal/bench/

echo "== fuzz smoke (chunk codec + interleaved reassembly) =="
# Short coverage-guided runs of the I-DATA fuzz targets, starting from
# the checked-in seed corpora under internal/sctp/testdata/fuzz.
go test -run '^$' -fuzz '^FuzzChunkCodec$' -fuzztime 10s ./internal/sctp/
go test -run '^$' -fuzz '^FuzzIDataReassembly$' -fuzztime 10s ./internal/sctp/

echo "== coverage floor (internal/sctp) =="
cov=$(go test -cover ./internal/sctp/ | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p')
if [ -z "$cov" ]; then
	echo "could not parse internal/sctp coverage" >&2
	exit 1
fi
awk -v c="$cov" 'BEGIN {
	floor = 78.0
	if (c + 0 < floor) {
		printf "internal/sctp coverage %.1f%% is below the %.0f%% floor\n", c, floor
		exit 1
	}
	printf "internal/sctp coverage %.1f%% (floor %.0f%%)\n", c, floor
}'

echo "== coverage floor (internal/analysis) =="
cov=$(go test -cover ./internal/analysis/ | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p')
if [ -z "$cov" ]; then
	echo "could not parse internal/analysis coverage" >&2
	exit 1
fi
awk -v c="$cov" 'BEGIN {
	floor = 80.0
	if (c + 0 < floor) {
		printf "internal/analysis coverage %.1f%% is below the %.0f%% floor\n", c, floor
		exit 1
	}
	printf "internal/analysis coverage %.1f%% (floor %.0f%%)\n", c, floor
}'

echo "== go test -race (chaos harness) =="
go test -race ./internal/chaos/...

echo "== chaos corpus =="
go run ./cmd/chaos -rpi all -seeds 50
go run ./cmd/chaos -rpi all -seeds 25 -multihome
go run ./cmd/chaos -rpi all -seeds 25 -kill

echo "== chaos at scale (256-rank fat-tree, one seed per backend) =="
go run ./cmd/chaos -rpi all -seeds 1 -procs 256 -topo fattree -rounds 6

echo "== chaos mid-broadcast kills (256-rank fat-tree multicast, fallback per backend) =="
go run ./cmd/chaos -rpi sctp -seed 1 -events 6 -horizon 50ms -kill -procs 256 -topo fattree -collective bcast -rounds 3 -msgsize 65536
go run ./cmd/chaos -rpi sctp1to1 -seed 8 -events 6 -horizon 50ms -kill -procs 256 -topo fattree -collective bcast -rounds 3 -msgsize 65536
go run ./cmd/chaos -rpi tcp -seed 3 -events 6 -horizon 50ms -kill -procs 256 -topo fattree -collective bcast -rounds 3 -msgsize 65536

echo "== 1024-rank scale smoke (fat-tree allreduce) =="
SCALE_SMOKE=1 go test -run TestScaleSmoke1024 -timeout 10m ./internal/bench/

echo "tier-1: OK"
