// Package repro's root benchmarks regenerate every table and figure of
// "SCTP versus TCP for MPI" (SC'05) at benchmark-friendly scale, plus
// ablations for the design choices DESIGN.md calls out. b.N iterations
// each rebuild and rerun the simulated experiment; the interesting
// output is the per-iteration ReportMetric values (virtual-time
// results), not wall-clock ns/op.
//
// Full-scale paper parameters: use cmd/paper.
package repro_test

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/bench/nas"
	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/netsim"
	"repro/internal/sctp"
	"repro/internal/tcp"
)

// pingpong runs one ping-pong configuration and reports virtual
// throughput.
func pingpong(b *testing.B, opts core.Options, size, iters int) {
	b.Helper()
	var tput float64
	for i := 0; i < b.N; i++ {
		r, err := bench.PingPong(opts, size, iters, 5)
		if err != nil {
			b.Fatal(err)
		}
		tput = r.Throughput
	}
	b.ReportMetric(tput, "vbytes/sec")
}

// --- Figure 8: ping-pong size sweep, no loss --------------------------

func BenchmarkFig8PingPongTCP(b *testing.B) {
	for _, sz := range []int{1024, 16384, 22528, 65535, 131069} {
		b.Run(sizeName(sz), func(b *testing.B) {
			pingpong(b, core.Options{Transport: core.TCP, Seed: 1}, sz, 30)
		})
	}
}

func BenchmarkFig8PingPongSCTP(b *testing.B) {
	for _, sz := range []int{1024, 16384, 22528, 65535, 131069} {
		b.Run(sizeName(sz), func(b *testing.B) {
			pingpong(b, core.Options{Transport: core.SCTP, Seed: 1}, sz, 30)
		})
	}
}

func sizeName(sz int) string {
	switch {
	case sz >= 1<<20:
		return "1M+"
	case sz >= 1024:
		return itoa(sz/1024) + "K"
	default:
		return itoa(sz) + "B"
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// --- Table 1: ping-pong under loss ------------------------------------

func BenchmarkTable1Loss1pct30K(b *testing.B) {
	b.Run("SCTP", func(b *testing.B) {
		pingpong(b, core.Options{Transport: core.SCTP, Seed: 3, LossRate: 0.01}, 30<<10, 40)
	})
	b.Run("TCP", func(b *testing.B) {
		pingpong(b, core.Options{Transport: core.TCP, Seed: 3, LossRate: 0.01}, 30<<10, 40)
	})
}

func BenchmarkTable1Loss2pct30K(b *testing.B) {
	b.Run("SCTP", func(b *testing.B) {
		pingpong(b, core.Options{Transport: core.SCTP, Seed: 3, LossRate: 0.02}, 30<<10, 40)
	})
	b.Run("TCP", func(b *testing.B) {
		pingpong(b, core.Options{Transport: core.TCP, Seed: 3, LossRate: 0.02}, 30<<10, 40)
	})
}

func BenchmarkTable1Loss1pct300K(b *testing.B) {
	b.Run("SCTP", func(b *testing.B) {
		pingpong(b, core.Options{Transport: core.SCTP, Seed: 3, LossRate: 0.01}, 300<<10, 20)
	})
	b.Run("TCP", func(b *testing.B) {
		pingpong(b, core.Options{Transport: core.TCP, Seed: 3, LossRate: 0.01}, 300<<10, 20)
	})
}

func BenchmarkTable1Loss2pct300K(b *testing.B) {
	b.Run("SCTP", func(b *testing.B) {
		pingpong(b, core.Options{Transport: core.SCTP, Seed: 3, LossRate: 0.02}, 300<<10, 20)
	})
	b.Run("TCP", func(b *testing.B) {
		pingpong(b, core.Options{Transport: core.TCP, Seed: 3, LossRate: 0.02}, 300<<10, 20)
	})
}

// --- Figure 9: NAS-like kernels (class S keeps benches fast; cmd/paper
// runs class B) ---------------------------------------------------------

func BenchmarkFig9NAS(b *testing.B) {
	for _, k := range nas.Kernels() {
		k := k
		for _, tr := range []core.Transport{core.SCTP, core.TCP} {
			tr := tr
			b.Run(k.Name+"/"+tr.String(), func(b *testing.B) {
				var mops float64
				for i := 0; i < b.N; i++ {
					r, err := nas.Run(core.Options{Transport: tr, Seed: 1}, k, nas.ClassS)
					if err != nil {
						b.Fatal(err)
					}
					mops = r.Mops
				}
				b.ReportMetric(mops, "Mop/s")
			})
		}
	}
}

// --- Figures 10-12: Bulk Processor Farm --------------------------------

func farmBench(b *testing.B, tr core.Transport, loss float64, cfg bench.FarmConfig) {
	b.Helper()
	var secs float64
	for i := 0; i < b.N; i++ {
		r, err := bench.Farm(core.Options{Transport: tr, Seed: 2, LossRate: loss}, cfg)
		if err != nil {
			b.Fatal(err)
		}
		secs = r.RunTime.Seconds()
	}
	b.ReportMetric(secs, "vsec/run")
}

func BenchmarkFig10FarmShort(b *testing.B) {
	cfg := bench.FarmConfig{NumTasks: 300, TaskSize: 30 << 10, Fanout: 1}
	for _, tr := range []core.Transport{core.SCTP, core.TCP} {
		tr := tr
		for _, loss := range []float64{0, 0.01, 0.02} {
			loss := loss
			b.Run(tr.String()+"/loss"+itoa(int(loss*100)), func(b *testing.B) {
				farmBench(b, tr, loss, cfg)
			})
		}
	}
}

func BenchmarkFig10FarmLong(b *testing.B) {
	cfg := bench.FarmConfig{NumTasks: 60, TaskSize: 300 << 10, Fanout: 1}
	for _, tr := range []core.Transport{core.SCTP, core.TCP} {
		tr := tr
		for _, loss := range []float64{0, 0.01, 0.02} {
			loss := loss
			b.Run(tr.String()+"/loss"+itoa(int(loss*100)), func(b *testing.B) {
				farmBench(b, tr, loss, cfg)
			})
		}
	}
}

func BenchmarkFig11FarmFanout10(b *testing.B) {
	cfg := bench.FarmConfig{NumTasks: 300, TaskSize: 30 << 10, Fanout: 10}
	for _, tr := range []core.Transport{core.SCTP, core.TCP} {
		tr := tr
		for _, loss := range []float64{0, 0.02} {
			loss := loss
			b.Run(tr.String()+"/loss"+itoa(int(loss*100)), func(b *testing.B) {
				farmBench(b, tr, loss, cfg)
			})
		}
	}
}

func BenchmarkFig12Streams(b *testing.B) {
	cfg := bench.FarmConfig{NumTasks: 300, TaskSize: 30 << 10, Fanout: 10}
	for _, tr := range []core.Transport{core.SCTP, core.SCTPSingleStream} {
		tr := tr
		for _, loss := range []float64{0, 0.02} {
			loss := loss
			b.Run(tr.String()+"/loss"+itoa(int(loss*100)), func(b *testing.B) {
				farmBench(b, tr, loss, cfg)
			})
		}
	}
}

// --- Ablations: design choices DESIGN.md calls out ----------------------

// BenchmarkAblationNagle: LAM disables Nagle; what if it had not?
func BenchmarkAblationNagle(b *testing.B) {
	for _, nodelay := range []bool{true, false} {
		nodelay := nodelay
		name := "NagleOff"
		if !nodelay {
			name = "NagleOn"
		}
		b.Run(name, func(b *testing.B) {
			cfg := &tcp.Config{NoDelay: nodelay}
			pingpong(b, core.Options{Transport: core.TCP, Seed: 1, TCPConfig: cfg}, 200, 30)
		})
	}
}

// BenchmarkAblationSackBlocks: TCP's 4-block SACK option versus an
// unconstrained scoreboard, under loss.
func BenchmarkAblationSackBlocks(b *testing.B) {
	for _, blocks := range []int{4, 64} {
		blocks := blocks
		b.Run("blocks"+itoa(blocks), func(b *testing.B) {
			cfg := &tcp.Config{NoDelay: true, MaxSackBlocks: blocks}
			pingpong(b, core.Options{Transport: core.TCP, Seed: 3, LossRate: 0.02, TCPConfig: cfg},
				300<<10, 15)
		})
	}
}

// BenchmarkAblationNoSack: the SACK option off entirely (pre-RFC2018
// TCP) under loss.
func BenchmarkAblationNoSack(b *testing.B) {
	for _, nosack := range []bool{false, true} {
		nosack := nosack
		name := "SackOn"
		if nosack {
			name = "SackOff"
		}
		b.Run(name, func(b *testing.B) {
			cfg := &tcp.Config{NoDelay: true, NoSack: nosack}
			pingpong(b, core.Options{Transport: core.TCP, Seed: 3, LossRate: 0.02, TCPConfig: cfg},
				300<<10, 15)
		})
	}
}

// BenchmarkAblationByteCounting: SCTP's byte-counting cwnd growth versus
// TCP-style ack counting, under loss.
func BenchmarkAblationByteCounting(b *testing.B) {
	for _, ackCounting := range []bool{false, true} {
		ackCounting := ackCounting
		name := "ByteCounting"
		if ackCounting {
			name = "AckCounting"
		}
		b.Run(name, func(b *testing.B) {
			cfg := &sctp.Config{AckCountingCwnd: ackCounting, HBDisable: true}
			pingpong(b, core.Options{Transport: core.SCTP, Seed: 3, LossRate: 0.02, SCTPConfig: cfg},
				300<<10, 15)
		})
	}
}

// BenchmarkAblationEagerThreshold: where should the short/long protocol
// switch sit?
func BenchmarkAblationEagerThreshold(b *testing.B) {
	for _, limit := range []int{16 << 10, 64 << 10, 256 << 10} {
		limit := limit
		b.Run(sizeName(limit), func(b *testing.B) {
			var secs float64
			for i := 0; i < b.N; i++ {
				r, err := bench.Farm(core.Options{
					Transport:  core.SCTP,
					Seed:       2,
					EagerLimit: limit,
				}, bench.FarmConfig{NumTasks: 150, TaskSize: 100 << 10})
				if err != nil {
					b.Fatal(err)
				}
				secs = r.RunTime.Seconds()
			}
			b.ReportMetric(secs, "vsec/run")
		})
	}
}

// BenchmarkAblationStreamPool: how many SCTP streams does the farm
// need before head-of-line blocking stops hurting? Loss-event placement
// dominates single-run variance, so each measurement is the mean of
// several seeds.
func BenchmarkAblationStreamPool(b *testing.B) {
	cfg := bench.FarmConfig{NumTasks: 400, TaskSize: 30 << 10, Fanout: 10}
	const seeds = 4
	for _, streams := range []int{1, 2, 10, 64} {
		streams := streams
		b.Run("streams"+itoa(streams), func(b *testing.B) {
			var secs float64
			for i := 0; i < b.N; i++ {
				sum := 0.0
				for s := int64(0); s < seeds; s++ {
					r, err := bench.Farm(core.Options{
						Transport: core.SCTP,
						Seed:      2 + s,
						LossRate:  0.02,
						Streams:   streams,
					}, cfg)
					if err != nil {
						b.Fatal(err)
					}
					sum += r.RunTime.Seconds()
				}
				secs = sum / seeds
			}
			b.ReportMetric(secs, "vsec/run")
		})
	}
}

// BenchmarkAblationOptionC: the paper's long-message race fix choices —
// Option B (writer lock per stream, what the paper shipped) versus
// Option C (control messages interleave, the "most concurrency" option
// it describes but did not implement). Crossing long messages on one
// tag under loss stress the difference.
func BenchmarkAblationOptionC(b *testing.B) {
	for _, optC := range []bool{false, true} {
		optC := optC
		name := "OptionB"
		if optC {
			name = "OptionC"
		}
		b.Run(name, func(b *testing.B) {
			var secs float64
			for i := 0; i < b.N; i++ {
				rep, err := core.Run(core.Options{
					Procs: 2, Transport: core.SCTP, Seed: 6,
					LossRate: 0.01, SCTPOptionC: optC,
				}, func(pr *mpi.Process, comm *mpi.Comm) error {
					other := 1 - comm.Rank()
					for j := 0; j < 5; j++ {
						out := make([]byte, 200<<10)
						in := make([]byte, 200<<10)
						sreq, _ := comm.Isend(other, 0, out)
						rreq, _ := comm.Irecv(other, 0, in)
						if err := comm.WaitAll(sreq, rreq); err != nil {
							return err
						}
					}
					return nil
				})
				if err != nil {
					b.Fatal(err)
				}
				secs = rep.Elapsed.Seconds()
			}
			b.ReportMetric(secs, "vsec/run")
		})
	}
}

// BenchmarkAblationOneToOne: the paper §2.1 socket-style ablation —
// the one-to-many socket (one descriptor, no select) versus one-to-one
// associations (one descriptor per peer, select scan back). A
// barrier-heavy small-message loop maximizes Advance polls, so the
// per-descriptor cost shows up directly as world size grows.
func BenchmarkAblationOneToOne(b *testing.B) {
	for _, tr := range []core.Transport{core.SCTP, core.SCTPOneToOne} {
		tr := tr
		for _, procs := range []int{4, 8, 16} {
			procs := procs
			b.Run(tr.String()+"/procs"+itoa(procs), func(b *testing.B) {
				var secs float64
				for i := 0; i < b.N; i++ {
					rep, err := core.Run(core.Options{
						Procs: procs, Transport: tr, Seed: 3,
					}, func(pr *mpi.Process, comm *mpi.Comm) error {
						buf := make([]byte, 256)
						next := (comm.Rank() + 1) % comm.Size()
						prev := (comm.Rank() - 1 + comm.Size()) % comm.Size()
						for j := 0; j < 40; j++ {
							if _, err := comm.SendRecv(next, 0, buf, prev, 0, buf); err != nil {
								return err
							}
							if err := comm.Barrier(); err != nil {
								return err
							}
						}
						return nil
					})
					if err != nil {
						b.Fatal(err)
					}
					secs = rep.Elapsed.Seconds()
				}
				b.ReportMetric(secs, "vsec/run")
			})
		}
	}
}

// BenchmarkAblationDelayedSack: immediate versus delayed SACKs.
func BenchmarkAblationDelayedSack(b *testing.B) {
	for _, every := range []int{1, 2} {
		every := every
		name := "SackEvery" + itoa(every)
		b.Run(name, func(b *testing.B) {
			cfg := &sctp.Config{SackEveryPkts: every, HBDisable: true}
			pingpong(b, core.Options{Transport: core.SCTP, Seed: 3, LossRate: 0.01, SCTPConfig: cfg},
				30<<10, 40)
		})
	}
}

// BenchmarkExtensionCMT: Concurrent Multipath Transfer (the paper's §5
// future work) versus single-path SCTP on the multihomed testbed with
// bandwidth-limited links. CMT should approach a 3x win over three
// NICs.
func BenchmarkExtensionCMT(b *testing.B) {
	lp := netsim.DefaultLinkParams()
	lp.Bandwidth = 100e6
	for _, cmt := range []bool{false, true} {
		cmt := cmt
		name := "SinglePath"
		if cmt {
			name = "CMT"
		}
		b.Run(name, func(b *testing.B) {
			var secs float64
			for i := 0; i < b.N; i++ {
				rep, err := core.Run(core.Options{
					Procs: 2, Transport: core.SCTP, Seed: 4,
					IfacesPerNode: 3, CMT: cmt, Link: &lp,
				}, func(pr *mpi.Process, comm *mpi.Comm) error {
					if comm.Rank() == 0 {
						for j := 0; j < 10; j++ {
							if err := comm.Send(1, j, make([]byte, 256<<10)); err != nil {
								return err
							}
						}
						return nil
					}
					buf := make([]byte, 256<<10)
					for j := 0; j < 10; j++ {
						if _, err := comm.Recv(0, j, buf); err != nil {
							return err
						}
					}
					return nil
				})
				if err != nil {
					b.Fatal(err)
				}
				secs = rep.Elapsed.Seconds()
			}
			b.ReportMetric(secs, "vsec/run")
		})
	}
}

// BenchmarkSimulatorThroughput measures raw simulator speed: simulated
// packets per benchmark iteration on a bulk exchange (not a paper
// experiment; useful when changing the kernel or stacks).
func BenchmarkSimulatorThroughput(b *testing.B) {
	var packets int64
	for i := 0; i < b.N; i++ {
		rep, err := core.Run(core.Options{Procs: 2, Transport: core.SCTP, Seed: 1},
			func(pr *mpi.Process, comm *mpi.Comm) error {
				buf := make([]byte, 256<<10)
				if comm.Rank() == 0 {
					return comm.Send(1, 0, buf)
				}
				_, err := comm.Recv(0, 0, buf)
				return err
			})
		if err != nil {
			b.Fatal(err)
		}
		packets = rep.NetStats.PacketsSent
	}
	b.ReportMetric(float64(packets), "pkts/run")
}
