// Head-of-line blocking demonstration — the paper's Figure 4 scenario,
// run as a real program on both transports.
//
// P1 sends Msg-A (tag A) then Msg-B (tag B). The network loses the
// first transmission of Msg-A. P0 posted nonblocking receives for both
// tags and waits for *any* of them, then computes.
//
// Over TCP both messages share one ordered byte stream, so Msg-B sits
// in the kernel until Msg-A is retransmitted: Waitany completes only
// after the retransmission timeout. Over SCTP the two tags map to
// different streams, so Msg-B is delivered immediately and P0 starts
// computing while Msg-A recovers.
//
//	go run ./examples/holblocking
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/mpi"
)

const (
	tagA = 1
	tagB = 2
	size = 8 << 10
)

func main() {
	for _, tr := range []core.Transport{core.TCP, core.SCTP} {
		waited, err := run(tr)
		if err != nil {
			log.Fatalf("%v: %v", tr, err)
		}
		fmt.Printf("%-18s MPI_Waitany returned after %12v\n", tr, waited)
	}
	fmt.Println()
	fmt.Println("SCTP delivers Msg-B on its own stream while Msg-A recovers;")
	fmt.Println("TCP holds Msg-B behind the loss until Msg-A is retransmitted.")
}

func run(tr core.Transport) (time.Duration, error) {
	cluster, err := core.NewCluster(core.Options{
		Procs:     2,
		Transport: tr,
		Seed:      7,
		NoCost:    true,
	})
	if err != nil {
		return 0, err
	}
	var waited time.Duration
	cluster.Start(func(pr *mpi.Process, comm *mpi.Comm) error {
		if comm.Rank() == 0 {
			bufA := make([]byte, size)
			bufB := make([]byte, size)
			ra, err := comm.Irecv(1, tagA, bufA)
			if err != nil {
				return err
			}
			rb, err := comm.Irecv(1, tagB, bufB)
			if err != nil {
				return err
			}
			if err := comm.Barrier(); err != nil {
				return err
			}
			t0 := pr.P.Now()
			i, _, err := comm.WaitAny(ra, rb)
			if err != nil {
				return err
			}
			waited = pr.P.Now() - t0
			if waited < 50*time.Millisecond && i != 1 {
				return fmt.Errorf("fast completion should be Msg-B, got request %d", i)
			}
			// Compute() would overlap here; then MPI_Waitall.
			return comm.WaitAll(ra, rb)
		}
		if err := comm.Barrier(); err != nil {
			return err
		}
		// Lose every packet while Msg-A's first transmission is in
		// flight, then restore the network before sending Msg-B.
		cluster.Net.SetLoss(1.0)
		if err := comm.Send(0, tagA, make([]byte, size)); err != nil {
			return err
		}
		pr.P.Sleep(time.Millisecond) // let the doomed packets drain
		cluster.Net.SetLoss(0)
		return comm.Send(0, tagB, make([]byte, size))
	})
	_, err = cluster.Wait()
	return waited, err
}
