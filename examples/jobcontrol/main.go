// Job control through the SCTP LAM daemons (paper §3.5.3): a daemon
// runs on every node; an mpirun-like controller pings them, launches a
// "job", watches its process table, collects remotely forwarded output,
// and finally aborts a hung job — all over one-to-many SCTP
// associations, as in the paper's converted LAM environment.
//
//	go run ./examples/jobcontrol
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/daemon"
	"repro/internal/netsim"
	"repro/internal/sctp"
	"repro/internal/sim"
)

const job = 42

func main() {
	k := sim.New(7)
	lp := netsim.DefaultLinkParams()
	lp.LossRate = 0.01 // daemons must work on lossy links too
	net, nodes := netsim.Cluster(k, 4, 1, lp)
	_ = net

	daemons := make([]*daemon.Daemon, len(nodes))
	for i, nd := range nodes {
		st := sctp.NewStack(nd, sctp.Config{HBDisable: true})
		d, err := daemon.Start(st)
		if err != nil {
			log.Fatal(err)
		}
		daemons[i] = d
	}

	// "Worker" processes on nodes 1..3: register with the local daemon,
	// forward output to the origin node (node 0), and run until killed.
	for i := 1; i < len(nodes); i++ {
		i := i
		k.Spawn(fmt.Sprintf("worker%d", i), func(p *sim.Proc) {
			alive := true
			daemons[i].RegisterLocal(job, i, func() { alive = false })
			cli := daemons[i].NewClient()
			if err := cli.ForwardIO(p, nodes[0].Addr(), job,
				fmt.Sprintf("rank %d: started", i)); err != nil {
				log.Fatal(err)
			}
			for alive {
				p.Sleep(200 * time.Millisecond) // "computing" forever (hung job)
			}
		})
	}

	// The mpirun role on node 0.
	k.Spawn("mpirun", func(p *sim.Proc) {
		cli := daemons[0].NewClient()
		for i := 1; i < len(nodes); i++ {
			if err := cli.Ping(p, nodes[i].Addr()); err != nil {
				log.Fatalf("lamd on node %d unreachable: %v", i, err)
			}
		}
		fmt.Println("all daemons alive")

		// Wait for the workers' startup output to be forwarded here.
		for len(daemons[0].IOLines(job)) < 3 {
			p.Sleep(50 * time.Millisecond)
		}
		for _, line := range daemons[0].IOLines(job) {
			fmt.Println("  remote IO:", line)
		}

		total := 0
		for i := 1; i < len(nodes); i++ {
			n, err := cli.Status(p, nodes[i].Addr(), job)
			if err != nil {
				log.Fatal(err)
			}
			total += n
		}
		fmt.Printf("job %d: %d processes running\n", job, total)

		// The job hangs; abort it everywhere (lamd's cleanup role).
		fmt.Println("job is hung; aborting...")
		for i := 1; i < len(nodes); i++ {
			if err := cli.AbortJob(p, nodes[i].Addr(), job); err != nil {
				log.Fatal(err)
			}
		}
		p.Sleep(time.Second)
		total = 0
		for i := 1; i < len(nodes); i++ {
			n, err := cli.Status(p, nodes[i].Addr(), job)
			if err != nil {
				log.Fatal(err)
			}
			total += n
		}
		fmt.Printf("after abort: %d processes running\n", total)
		for _, d := range daemons {
			d.Close()
		}
	})

	if err := k.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("cluster quiesced cleanly")
}
