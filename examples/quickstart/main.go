// Quickstart: an 8-process MPI program on the simulated cluster using
// the SCTP module — point-to-point, nonblocking receives with
// wildcards, and a collective, in ~60 lines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/mpi"
)

func main() {
	report, err := core.Run(core.Options{
		Procs:     8,
		Transport: core.SCTP, // try core.TCP to compare
		Seed:      1,
	}, program)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("completed in %v of virtual time; %d packets on the wire\n",
		report.Elapsed, report.NetStats.PacketsSent)
}

func program(pr *mpi.Process, comm *mpi.Comm) error {
	me, n := comm.Rank(), comm.Size()

	// Every rank greets rank 0 with its own tag; rank 0 receives with
	// wildcards (any source, any tag).
	if me == 0 {
		buf := make([]byte, 64)
		for i := 0; i < n-1; i++ {
			st, err := comm.Recv(mpi.AnySource, mpi.AnyTag, buf)
			if err != nil {
				return err
			}
			fmt.Printf("rank 0 got %q from rank %d (tag %d)\n",
				buf[:st.Count], st.Source, st.Tag)
		}
	} else {
		msg := fmt.Sprintf("hello from %d", me)
		if err := comm.Send(0, me*7, []byte(msg)); err != nil {
			return err
		}
	}

	// A ring exchange with nonblocking operations.
	next, prev := (me+1)%n, (me-1+n)%n
	in := make([]byte, 8)
	rreq, err := comm.Irecv(prev, 1, in)
	if err != nil {
		return err
	}
	sreq, err := comm.Isend(next, 1, []byte{byte(me)})
	if err != nil {
		return err
	}
	if err := comm.WaitAll(rreq, sreq); err != nil {
		return err
	}

	// Sum all ranks with a collective.
	v := mpi.F64Bytes([]float64{float64(me)})
	if err := comm.Allreduce(v, mpi.OpSumF64); err != nil {
		return err
	}
	sum := mpi.BytesF64(v)[0]
	if me == 0 {
		fmt.Printf("allreduce sum of ranks = %v (expect %d)\n", sum, n*(n-1)/2)
	}
	return comm.Barrier()
}
