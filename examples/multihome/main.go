// Multihomed failover demonstration (paper §3.5.1): the cluster nodes
// have three interfaces on three independent subnets, exactly like the
// paper's testbed. Mid-run, subnet 0 — the primary path — goes dark.
// The SCTP association detects the failure via its retransmission and
// heartbeat error counters and transparently fails over to an alternate
// path; the MPI program never sees an error.
//
//	go run ./examples/multihome
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/mpi"
)

func main() {
	cluster, err := core.NewCluster(core.Options{
		Procs:         2,
		Transport:     core.SCTP,
		Seed:          3,
		IfacesPerNode: 3, // the paper's three gigabit NICs per node
		NoCost:        true,
	})
	if err != nil {
		log.Fatal(err)
	}

	const rounds = 40
	var received int
	cluster.Start(func(pr *mpi.Process, comm *mpi.Comm) error {
		buf := make([]byte, 4<<10)
		if comm.Rank() == 0 {
			for i := 0; i < rounds; i++ {
				if _, err := comm.Recv(1, 0, buf); err != nil {
					return err
				}
				received++
				if i == rounds/2 {
					fmt.Printf("  [%8v] subnet 0 fails (primary path down)\n", pr.P.Now())
					cluster.Net.SetSubnetDown(0, true)
				}
			}
			return nil
		}
		for i := 0; i < rounds; i++ {
			if err := comm.Send(0, 0, make([]byte, 4<<10)); err != nil {
				return err
			}
			pr.P.Sleep(250 * time.Millisecond)
		}
		return nil
	})

	rep, err := cluster.Wait()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  [%8v] done: %d/%d messages delivered despite the dead subnet\n",
		rep.Elapsed, received, rounds)
	fmt.Printf("  packets dropped on down interfaces: %d (retransmitted on alternate paths)\n",
		rep.NetStats.PacketsDown)
	if received != rounds {
		log.Fatalf("lost %d messages", rounds-received)
	}
	fmt.Println("\nSCTP multihoming kept the MPI job alive through a network failure;")
	fmt.Println("the TCP module has no equivalent without extra middleware machinery.")
}
