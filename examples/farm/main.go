// A manager/worker program written directly against the public API —
// the communication pattern of the paper's Bulk Processor Farm (§4.2.1)
// in miniature, with work of mixed types (tags) flowing to whoever asks
// first, and results flowing back.
//
//	go run ./examples/farm
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/mpi"
)

const (
	tagRequest = 100
	tagStop    = 101
	numTasks   = 64
	taskBytes  = 16 << 10
)

func main() {
	for _, tr := range []core.Transport{core.SCTP, core.TCP} {
		rep, err := core.Run(core.Options{
			Procs:     4,
			Transport: tr,
			Seed:      2,
			LossRate:  0.01, // a lossy WAN-ish environment
		}, program)
		if err != nil {
			log.Fatalf("%v: %v", tr, err)
		}
		fmt.Printf("%-10s: %d tasks through 3 workers in %v virtual time (%d packets, %d lost)\n",
			tr, numTasks, rep.Elapsed, rep.NetStats.PacketsSent, rep.NetStats.PacketsLost)
	}
}

func program(pr *mpi.Process, comm *mpi.Comm) error {
	if comm.Rank() == 0 {
		return manager(comm)
	}
	return worker(pr, comm)
}

func manager(comm *mpi.Comm) error {
	task := make([]byte, taskBytes)
	buf := make([]byte, 64)
	sent, done := 0, 0
	var checksum uint64
	for done < numTasks {
		st, err := comm.Recv(mpi.AnySource, mpi.AnyTag, buf)
		if err != nil {
			return err
		}
		switch st.Tag {
		case tagRequest:
			if sent < numTasks {
				// Task type cycles through ten tags, so different kinds
				// of work ride different SCTP streams.
				binary.LittleEndian.PutUint64(task, uint64(sent))
				if err := comm.Send(st.Source, sent%10, task); err != nil {
					return err
				}
				sent++
			}
		default: // a result
			checksum += binary.LittleEndian.Uint64(buf)
			done++
		}
	}
	want := uint64(numTasks) * uint64(numTasks-1) / 2 * 2
	if checksum != want {
		return fmt.Errorf("result checksum %d, want %d", checksum, want)
	}
	for w := 1; w < comm.Size(); w++ {
		if err := comm.Send(w, tagStop, []byte{0}); err != nil {
			return err
		}
	}
	return nil
}

func worker(pr *mpi.Process, comm *mpi.Comm) error {
	buf := make([]byte, taskBytes)
	result := make([]byte, 8)
	if err := comm.Send(0, tagRequest, []byte{1}); err != nil {
		return err
	}
	for {
		st, err := comm.Recv(0, mpi.AnyTag, buf)
		if err != nil {
			return err
		}
		if st.Tag == tagStop {
			return nil
		}
		// "Process" the task: double the payload value.
		v := binary.LittleEndian.Uint64(buf) * 2
		binary.LittleEndian.PutUint64(result, v)
		if err := comm.Send(0, 50, result); err != nil {
			return err
		}
		if err := comm.Send(0, tagRequest, []byte{1}); err != nil {
			return err
		}
	}
}
