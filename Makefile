GO ?= go

.PHONY: check fmt vet lint build test bench paper chaos

# Tier-1 gate: formatting, vet, build, full test suite.
check:
	./scripts/check.sh

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

# Repository-specific static analysis (internal/analysis): the
# syntactic rules (nopreempt, seqnum, maporder, sentinel) plus the
# flow-sensitive rules (reflease, epochguard, probepure, timeflow).
# Exits non-zero on any finding; suppress with a justified
# `//simlint:allow <rule> <why>` comment. LINT_JSON=1 switches the
# output to JSON Lines (schema in README).
lint:
ifeq ($(LINT_JSON),1)
	$(GO) run ./cmd/simlint -json
else
	$(GO) run ./cmd/simlint
endif

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Writes BENCH_kernel.json and BENCH_sweep.json at the repo root, then
# prints the Go benchmarks. GOMAXPROCS is recorded inside the JSON.
bench:
	BENCH_ARTIFACTS=1 $(GO) test -run TestWriteBenchArtifacts ./internal/bench/
	$(GO) test -run xxx -bench=. -benchmem ./internal/bench/...

paper:
	$(GO) run ./cmd/paper -exp all -quick

# Fault-injection gate: a fixed 50-seed schedule corpus per backend with
# the invariant oracles armed, plus a 25-seed multihomed corpus, a
# 25-seed session-kill corpus (AssocKill-only schedules; the recovery
# layer must complete every job), and one 256-rank fat-tree seed per
# backend so faults also land on shared switch ports at scale. Fails
# (exit 1) with a shrunk repro if any run violates an invariant.
chaos:
	$(GO) run ./cmd/chaos -rpi all -seeds 50
	$(GO) run ./cmd/chaos -rpi all -seeds 25 -multihome
	$(GO) run ./cmd/chaos -rpi all -seeds 25 -kill
	$(GO) run ./cmd/chaos -rpi all -seeds 1 -procs 256 -topo fattree -rounds 6
	$(GO) run ./cmd/chaos -rpi sctp -seed 1 -events 6 -horizon 50ms -kill -procs 256 -topo fattree -collective bcast -rounds 3 -msgsize 65536
	$(GO) run ./cmd/chaos -rpi sctp1to1 -seed 8 -events 6 -horizon 50ms -kill -procs 256 -topo fattree -collective bcast -rounds 3 -msgsize 65536
	$(GO) run ./cmd/chaos -rpi tcp -seed 3 -events 6 -horizon 50ms -kill -procs 256 -topo fattree -collective bcast -rounds 3 -msgsize 65536
