GO ?= go

.PHONY: check fmt vet build test bench paper

# Tier-1 gate: formatting, vet, build, full test suite.
check:
	./scripts/check.sh

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchmem

paper:
	$(GO) run ./cmd/paper -exp all -quick
