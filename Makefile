GO ?= go

.PHONY: check fmt vet build test bench paper

# Tier-1 gate: formatting, vet, build, full test suite.
check:
	./scripts/check.sh

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Writes BENCH_kernel.json and BENCH_sweep.json at the repo root, then
# prints the Go benchmarks. GOMAXPROCS is recorded inside the JSON.
bench:
	BENCH_ARTIFACTS=1 $(GO) test -run TestWriteBenchArtifacts ./internal/bench/
	$(GO) test -run xxx -bench=. -benchmem ./internal/bench/...

paper:
	$(GO) run ./cmd/paper -exp all -quick
