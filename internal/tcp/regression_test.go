package tcp

import (
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// TestNoAckBeyondMaxUnderLoss is the regression guard for a
// retransmission-overrun bug: retransmitHole once transmitted bytes
// past snd.nxt (unsent buffer data), desynchronizing the endpoints so
// that every subsequent ACK exceeded snd.max and was ignored until the
// connection died. Heavy bidirectional traffic under loss with SACK
// recovery must never produce an ACK above snd.max.
func TestNoAckBeyondMaxUnderLoss(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		lp := lan()
		lp.LossRate = 0.03
		k, sa, sb, _ := pair(seed, lp, Config{NoDelay: true, SndBuf: 220 << 10, RcvBuf: 220 << 10})
		l, _ := sb.Listen(5000)
		var c1, c2 *Conn
		echo := func(p *sim.Proc, c *Conn, rounds, size int, initiator bool) {
			buf := make([]byte, size)
			for i := 0; i < rounds; i++ {
				if initiator {
					if _, err := c.Write(p, buf); err != nil {
						return
					}
				}
				got := 0
				for got < size {
					n, err := c.Read(p, buf[got:])
					if err != nil {
						return
					}
					got += n
				}
				if !initiator {
					if _, err := c.Write(p, buf); err != nil {
						return
					}
				}
			}
			c.Close()
		}
		k.Spawn("server", func(p *sim.Proc) {
			c, err := l.Accept(p)
			if err != nil {
				return
			}
			c2 = c
			echo(p, c, 30, 30<<10, false)
		})
		k.Spawn("client", func(p *sim.Proc) {
			c, err := sa.Connect(p, netsim.MakeAddr(0, 2), 5000)
			if err != nil {
				return
			}
			c1 = c
			echo(p, c, 30, 30<<10, true)
		})
		if err := k.RunFor(10 * time.Minute); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for i, c := range []*Conn{c1, c2} {
			if c == nil {
				t.Fatalf("seed %d: conn %d never established", seed, i)
			}
			if c.Stats.AcksBeyondMax != 0 {
				t.Errorf("seed %d: conn %d saw %d ACKs beyond snd.max", seed, i, c.Stats.AcksBeyondMax)
			}
			if c.Err() == ErrTimeout {
				t.Errorf("seed %d: conn %d died of timeout under mild loss", seed, i)
			}
		}
	}
}

// TestZeroWindowProbeAccounting: a probe byte accepted by the peer must
// stay within the sender's sequence accounting (the probe advances
// snd.nxt like BSD's forced output).
func TestZeroWindowProbeAccounting(t *testing.T) {
	k, sa, sb, _ := pair(11, lan(), Config{NoDelay: true, SndBuf: 8 << 10, RcvBuf: 8 << 10})
	l, _ := sb.Listen(5000)
	var cli *Conn
	const total = 64 << 10
	received := 0
	k.Spawn("server", func(p *sim.Proc) {
		c, _ := l.Accept(p)
		buf := make([]byte, 1024)
		for received < total {
			// Alternate long stalls (forcing zero-window probes) with
			// bursts of reading.
			p.Sleep(3 * time.Second)
			for i := 0; i < 16 && received < total; i++ {
				n, err := c.Read(p, buf)
				received += n
				if err != nil {
					return
				}
			}
		}
	})
	k.Spawn("client", func(p *sim.Proc) {
		c, err := sa.Connect(p, netsim.MakeAddr(0, 2), 5000)
		if err != nil {
			t.Error(err)
			return
		}
		cli = c
		if _, err := c.Write(p, make([]byte, total)); err != nil {
			t.Error(err)
		}
	})
	if err := k.RunFor(30 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if received != total {
		t.Fatalf("received %d of %d", received, total)
	}
	if cli.Stats.AcksBeyondMax != 0 {
		t.Errorf("%d ACKs beyond snd.max after zero-window probing", cli.Stats.AcksBeyondMax)
	}
	if cli.Err() == ErrTimeout {
		t.Error("connection died during zero-window episodes")
	}
}
