package tcp

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/seqnum"
)

func TestSendBufferBasics(t *testing.T) {
	b := &sendBuffer{limit: 10}
	if n := b.write([]byte("hello")); n != 5 {
		t.Fatalf("write = %d", n)
	}
	if n := b.write([]byte("world!!")); n != 5 {
		t.Fatalf("overfill write = %d, want 5", n)
	}
	if b.space() != 0 {
		t.Fatalf("space = %d", b.space())
	}
	if got := b.slice(0, 5); !bytes.Equal(got, []byte("hello")) {
		t.Fatalf("slice = %q", got)
	}
	if got := b.slice(5, 100); !bytes.Equal(got, []byte("world")) {
		t.Fatalf("tail slice = %q", got)
	}
	b.ack(5)
	if got := b.slice(0, 5); !bytes.Equal(got, []byte("world")) {
		t.Fatalf("post-ack slice = %q", got)
	}
	b.ack(100) // over-ack is clamped
	if b.len() != 0 {
		t.Fatalf("len after full ack = %d", b.len())
	}
	if b.slice(10, 5) != nil {
		t.Fatal("out-of-range slice should be nil")
	}
}

func TestRecvBufferInOrder(t *testing.T) {
	b := &recvBuffer{limit: 100}
	b.deliver([]byte("abc"))
	b.deliver([]byte("def"))
	if b.readable() != 6 {
		t.Fatalf("readable = %d", b.readable())
	}
	out := make([]byte, 4)
	if n := b.read(out); n != 4 || string(out) != "abcd" {
		t.Fatalf("read = %d %q", n, out)
	}
	if b.window() != 100-2 {
		t.Fatalf("window = %d", b.window())
	}
}

func TestInsertOOOMergesAndExtracts(t *testing.T) {
	b := &recvBuffer{limit: 1 << 20}
	// Receive segments out of order: [10,13) [16,19) [13,16).
	b.insertOOO(10, []byte("AAA"))
	b.insertOOO(16, []byte("CCC"))
	b.insertOOO(13, []byte("BBB"))
	if b.oooLen != 9 {
		t.Fatalf("oooLen = %d", b.oooLen)
	}
	nxt := b.extract(10)
	if nxt != 19 {
		t.Fatalf("extract advanced to %d, want 19", nxt)
	}
	out := make([]byte, 16)
	n := b.read(out)
	if string(out[:n]) != "AAABBBCCC" {
		t.Fatalf("reassembled %q", out[:n])
	}
	if b.oooLen != 0 || len(b.ooo) != 0 {
		t.Fatalf("ooo queue not drained: len=%d n=%d", b.oooLen, len(b.ooo))
	}
}

func TestInsertOOOOverlapTrimmed(t *testing.T) {
	b := &recvBuffer{limit: 1 << 20}
	b.insertOOO(10, []byte("XXXX"))         // [10,14)
	n := b.insertOOO(8, []byte("yyyyyyyy")) // [8,16): only [8,10) and [14,16) are new
	if n != 4 {
		t.Fatalf("stored %d new bytes, want 4", n)
	}
	if b.oooLen != 8 {
		t.Fatalf("oooLen = %d", b.oooLen)
	}
	// Duplicate insert stores nothing.
	if n := b.insertOOO(10, []byte("zzzz")); n != 0 {
		t.Fatalf("dup stored %d", n)
	}
}

func TestSackBlockCoalescing(t *testing.T) {
	b := &recvBuffer{limit: 1 << 20}
	b.insertOOO(100, make([]byte, 10)) // [100,110)
	b.insertOOO(110, make([]byte, 10)) // adjacent: one block [100,120)
	b.insertOOO(200, make([]byte, 5))  // separate block
	blocks := b.sackBlocks(4, 200, 5)
	if len(blocks) != 2 {
		t.Fatalf("blocks = %+v", blocks)
	}
	// Most recent arrival's block first (RFC 2018).
	if blocks[0] != (sackBlock{200, 205}) {
		t.Fatalf("first block %+v, want the recent one", blocks[0])
	}
	if blocks[1] != (sackBlock{100, 120}) {
		t.Fatalf("second block %+v", blocks[1])
	}
}

func TestSackBlockLimit(t *testing.T) {
	b := &recvBuffer{limit: 1 << 20}
	for i := 0; i < 10; i++ {
		b.insertOOO(seqnum.V(i*100), make([]byte, 10))
	}
	if got := len(b.sackBlocks(4, 0, 0)); got != 4 {
		t.Fatalf("block count = %d, want 4 (the BSD option-space limit)", got)
	}
	if got := len(b.sackBlocks(64, 0, 0)); got != 10 {
		t.Fatalf("unlimited block count = %d", got)
	}
}

// Property: inserting the byte stream in any segmented order and then
// extracting yields the original bytes.
func TestQuickReassembly(t *testing.T) {
	f := func(seed int64, sz uint16) bool {
		n := int(sz)%4096 + 1
		data := make([]byte, n)
		rng := rand.New(rand.NewSource(seed))
		rng.Read(data)
		// Split into random segments and shuffle.
		type seg struct {
			off int
			b   []byte
		}
		var segs []seg
		for off := 0; off < n; {
			l := rng.Intn(200) + 1
			if off+l > n {
				l = n - off
			}
			segs = append(segs, seg{off, data[off : off+l]})
			off += l
		}
		rng.Shuffle(len(segs), func(i, j int) { segs[i], segs[j] = segs[j], segs[i] })
		b := &recvBuffer{limit: 1 << 20}
		base := seqnum.V(rng.Uint32())
		for _, s := range segs {
			b.insertOOO(base.Add(uint32(s.off)), s.b)
		}
		// Also re-insert a few duplicates.
		for i := 0; i < 3 && i < len(segs); i++ {
			s := segs[i]
			b.insertOOO(base.Add(uint32(s.off)), s.b)
		}
		if b.extract(base) != base.Add(uint32(n)) {
			return false
		}
		out := make([]byte, n)
		if b.read(out) != n {
			return false
		}
		return bytes.Equal(out, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSegmentRoundTrip(t *testing.T) {
	in := &segment{
		SrcPort: 1, DstPort: 2,
		Seq: 1000, Ack: 2000,
		Flags: flagACK, Wnd: 65535, MSS: 1460,
		Sacks: []sackBlock{{3000, 4000}, {5000, 6000}},
		Data:  []byte("data bytes"),
	}
	out, err := decodeSegment(in.encode())
	if err != nil {
		t.Fatal(err)
	}
	if out.Seq != in.Seq || out.Ack != in.Ack || out.Wnd != in.Wnd ||
		len(out.Sacks) != 2 || out.Sacks[1] != in.Sacks[1] ||
		!bytes.Equal(out.Data, in.Data) {
		t.Fatalf("round trip mismatch: %+v", out)
	}
	if in.segLen() != uint32(len(in.Data)) {
		t.Fatalf("segLen = %d", in.segLen())
	}
	syn := &segment{Flags: flagSYN}
	if syn.segLen() != 1 {
		t.Fatal("SYN should occupy one sequence number")
	}
}

func TestQuickSegmentGarbage(t *testing.T) {
	f := func(b []byte) bool {
		decodeSegment(b) // must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
