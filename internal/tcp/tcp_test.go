package tcp

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// pair builds two nodes with TCP stacks over a link with the given
// parameters.
func pair(seed int64, lp netsim.LinkParams, cfg Config) (*sim.Kernel, *Stack, *Stack, *netsim.Network) {
	k := sim.New(seed)
	net := netsim.NewNetwork(k)
	net.SetDefaultLinkParams(lp)
	a := net.NewNode("a")
	a.AddInterface(netsim.MakeAddr(0, 1))
	b := net.NewNode("b")
	b.AddInterface(netsim.MakeAddr(0, 2))
	return k, NewStack(a, cfg), NewStack(b, cfg), net
}

func lan() netsim.LinkParams { return netsim.DefaultLinkParams() }

// transfer runs a one-directional bulk transfer of n bytes and checks
// integrity; it returns the virtual completion time.
func transfer(t *testing.T, seed int64, lp netsim.LinkParams, cfg Config, n int) time.Duration {
	t.Helper()
	k, sa, sb, _ := pair(seed, lp, cfg)
	payload := make([]byte, n)
	r := k.Rand()
	for i := range payload {
		payload[i] = byte(r.Intn(256))
	}
	var received []byte
	done := false
	l, err := sb.Listen(5000)
	if err != nil {
		t.Fatal(err)
	}
	k.Spawn("server", func(p *sim.Proc) {
		c, err := l.Accept(p)
		if err != nil {
			t.Error(err)
			return
		}
		buf := make([]byte, 32<<10)
		for {
			m, err := c.Read(p, buf)
			received = append(received, buf[:m]...)
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Error(err)
				return
			}
		}
		c.Close()
		done = true
	})
	k.Spawn("client", func(p *sim.Proc) {
		c, err := sa.Connect(p, netsim.MakeAddr(0, 2), 5000)
		if err != nil {
			t.Error(err)
			return
		}
		c.SetNoDelay(true)
		if _, err := c.Write(p, payload); err != nil {
			t.Error(err)
			return
		}
		c.Close()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("server did not finish")
	}
	if !bytes.Equal(received, payload) {
		t.Fatalf("data corrupted: got %d bytes want %d", len(received), len(payload))
	}
	return k.Now()
}

func TestHandshakeAndSmallTransfer(t *testing.T) {
	transfer(t, 1, lan(), Config{NoDelay: true}, 100)
}

func TestBulkTransferNoLoss(t *testing.T) {
	d := transfer(t, 1, lan(), Config{NoDelay: true, SndBuf: 220 << 10, RcvBuf: 220 << 10}, 1<<20)
	// 1 MiB at 1 Gb/s should take on the order of 10 ms, certainly < 1 s.
	if d > time.Second {
		t.Fatalf("1 MiB took %v", d)
	}
}

func TestBulkTransferUnderLoss(t *testing.T) {
	lp := lan()
	lp.LossRate = 0.01
	transfer(t, 2, lp, Config{NoDelay: true, SndBuf: 220 << 10, RcvBuf: 220 << 10}, 512<<10)
}

func TestBulkTransferHeavyLoss(t *testing.T) {
	lp := lan()
	lp.LossRate = 0.05
	transfer(t, 3, lp, Config{NoDelay: true, SndBuf: 64 << 10, RcvBuf: 64 << 10}, 128<<10)
}

func TestTransferWithoutSackUnderLoss(t *testing.T) {
	lp := lan()
	lp.LossRate = 0.02
	transfer(t, 4, lp, Config{NoDelay: true, NoSack: true}, 128<<10)
}

func TestQuickLossIntegrity(t *testing.T) {
	// Property: any loss rate up to 10% and any size up to 64 KiB still
	// yields an intact byte stream.
	f := func(seed int64, sz uint16, lossTenths uint8) bool {
		lp := lan()
		lp.LossRate = float64(lossTenths%10) / 100.0
		n := int(sz)%(64<<10) + 1
		transfer(t, seed, lp, Config{NoDelay: true}, n)
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

func TestEcho(t *testing.T) {
	// Bidirectional traffic: client sends records, server echoes them.
	k, sa, sb, _ := pair(5, lan(), Config{NoDelay: true})
	l, _ := sb.Listen(5000)
	const records, recSize = 50, 3000
	k.Spawn("server", func(p *sim.Proc) {
		c, err := l.Accept(p)
		if err != nil {
			t.Error(err)
			return
		}
		buf := make([]byte, recSize)
		for i := 0; i < records; i++ {
			got := 0
			for got < recSize {
				m, err := c.Read(p, buf[got:])
				if err != nil {
					t.Error(err)
					return
				}
				got += m
			}
			if _, err := c.Write(p, buf); err != nil {
				t.Error(err)
				return
			}
		}
		c.Close()
	})
	k.Spawn("client", func(p *sim.Proc) {
		c, err := sa.Connect(p, netsim.MakeAddr(0, 2), 5000)
		if err != nil {
			t.Error(err)
			return
		}
		out := make([]byte, recSize)
		in := make([]byte, recSize)
		for i := 0; i < records; i++ {
			for j := range out {
				out[j] = byte(i + j)
			}
			if _, err := c.Write(p, out); err != nil {
				t.Error(err)
				return
			}
			got := 0
			for got < recSize {
				m, err := c.Read(p, in[got:])
				if err != nil {
					t.Error(err)
					return
				}
				got += m
			}
			if !bytes.Equal(in, out) {
				t.Errorf("echo %d corrupted", i)
				return
			}
		}
		c.Close()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestFlowControlSlowReader(t *testing.T) {
	// A reader that drains slowly must not lose data, and the sender
	// must survive zero-window episodes via persist probes.
	k, sa, sb, _ := pair(6, lan(), Config{NoDelay: true, SndBuf: 16 << 10, RcvBuf: 16 << 10})
	l, _ := sb.Listen(5000)
	const total = 256 << 10
	var received int
	k.Spawn("server", func(p *sim.Proc) {
		c, _ := l.Accept(p)
		buf := make([]byte, 4<<10)
		for {
			m, err := c.Read(p, buf)
			received += m
			if err == io.EOF {
				return
			}
			if err != nil {
				t.Error(err)
				return
			}
			p.Sleep(500 * time.Microsecond) // slow consumer
		}
	})
	k.Spawn("client", func(p *sim.Proc) {
		c, err := sa.Connect(p, netsim.MakeAddr(0, 2), 5000)
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := c.Write(p, make([]byte, total)); err != nil {
			t.Error(err)
		}
		c.Close()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if received != total {
		t.Fatalf("received %d of %d", received, total)
	}
}

func TestConnectRefused(t *testing.T) {
	k, sa, _, _ := pair(7, lan(), Config{})
	var connErr error
	k.Spawn("client", func(p *sim.Proc) {
		_, connErr = sa.Connect(p, netsim.MakeAddr(0, 2), 9999) // nobody listening
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if connErr != ErrReset {
		t.Fatalf("err = %v, want ErrReset", connErr)
	}
}

func TestConnectTimeout(t *testing.T) {
	k, sa, _, net := pair(8, lan(), Config{})
	net.SetLoss(1.0) // black hole
	var connErr error
	k.Spawn("client", func(p *sim.Proc) {
		_, connErr = sa.Connect(p, netsim.MakeAddr(0, 2), 9999)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if connErr != ErrTimeout {
		t.Fatalf("err = %v, want ErrTimeout", connErr)
	}
}

func TestHalfClose(t *testing.T) {
	// Client closes its write side but keeps reading; server reads EOF,
	// then writes a response.
	k, sa, sb, _ := pair(9, lan(), Config{NoDelay: true})
	l, _ := sb.Listen(5000)
	var response []byte
	k.Spawn("server", func(p *sim.Proc) {
		c, _ := l.Accept(p)
		buf := make([]byte, 1024)
		var got []byte
		for {
			m, err := c.Read(p, buf)
			got = append(got, buf[:m]...)
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Error(err)
				return
			}
		}
		if _, err := c.Write(p, append([]byte("ack:"), got...)); err != nil {
			t.Error(err)
		}
		c.Close()
	})
	k.Spawn("client", func(p *sim.Proc) {
		c, _ := sa.Connect(p, netsim.MakeAddr(0, 2), 5000)
		if _, err := c.Write(p, []byte("hello")); err != nil {
			t.Error(err)
			return
		}
		c.Close() // half-close: we can still read
		buf := make([]byte, 1024)
		for {
			m, err := c.Read(p, buf)
			response = append(response, buf[:m]...)
			if err != nil {
				break
			}
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if string(response) != "ack:hello" {
		t.Fatalf("response = %q", response)
	}
}

func TestNagleCoalesces(t *testing.T) {
	// With Nagle on, many tiny writes produce far fewer segments than
	// with NoDelay.
	run := func(noDelay bool) int64 {
		k, sa, sb, _ := pair(10, lan(), Config{NoDelay: noDelay})
		l, _ := sb.Listen(5000)
		var cli *Conn
		k.Spawn("server", func(p *sim.Proc) {
			c, _ := l.Accept(p)
			buf := make([]byte, 64)
			total := 0
			for total < 500 {
				m, err := c.Read(p, buf)
				if err != nil {
					return
				}
				total += m
			}
			c.Close()
		})
		k.Spawn("client", func(p *sim.Proc) {
			c, _ := sa.Connect(p, netsim.MakeAddr(0, 2), 5000)
			cli = c
			for i := 0; i < 500; i++ {
				if _, err := c.Write(p, []byte{byte(i)}); err != nil {
					t.Error(err)
					return
				}
				p.Sleep(10 * time.Microsecond)
			}
			c.Close()
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return cli.Stats.SegsSent
	}
	nagle := run(false)
	noDelay := run(true)
	if nagle >= noDelay {
		t.Fatalf("nagle sent %d segments, nodelay %d; expected fewer with Nagle", nagle, noDelay)
	}
}

func TestRetransmitStatsUnderLoss(t *testing.T) {
	lp := lan()
	lp.LossRate = 0.02
	k, sa, sb, _ := pair(11, lp, Config{NoDelay: true, SndBuf: 220 << 10, RcvBuf: 220 << 10})
	l, _ := sb.Listen(5000)
	var cli *Conn
	k.Spawn("server", func(p *sim.Proc) {
		c, _ := l.Accept(p)
		buf := make([]byte, 32<<10)
		for {
			_, err := c.Read(p, buf)
			if err != nil {
				return
			}
		}
	})
	k.Spawn("client", func(p *sim.Proc) {
		c, _ := sa.Connect(p, netsim.MakeAddr(0, 2), 5000)
		cli = c
		if _, err := c.Write(p, make([]byte, 512<<10)); err != nil {
			t.Error(err)
		}
		c.Close()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if cli.Stats.Retransmits == 0 {
		t.Fatal("expected retransmissions under 2% loss")
	}
}

func TestDeterministicTransfer(t *testing.T) {
	lp := lan()
	lp.LossRate = 0.01
	d1 := transfer(t, 42, lp, Config{NoDelay: true}, 256<<10)
	d2 := transfer(t, 42, lp, Config{NoDelay: true}, 256<<10)
	if d1 != d2 {
		t.Fatalf("nondeterministic: %v vs %v", d1, d2)
	}
}
