// Package tcp implements a userspace TCP over the simulated network:
// three-way handshake, byte-stream delivery, receiver flow control,
// Reno/New-Reno congestion control with a BSD-style SACK option limited
// to four gap blocks, delayed ACKs, Nagle's algorithm (disabled by the
// MPI middleware, as in LAM), Jacobson/Karn RTO estimation, and
// half-close. It is the baseline transport for the LAM-TCP analogue.
package tcp

import (
	"fmt"

	"repro/internal/seqnum"
	"repro/internal/wire"
)

// Segment flags.
const (
	flagFIN = 1 << 0
	flagSYN = 1 << 1
	flagRST = 1 << 2
	flagACK = 1 << 4
)

// sackBlock is one SACK option block: [Start, End) in sequence space.
type sackBlock struct {
	Start, End seqnum.V
}

// segment is the unit of TCP transmission.
type segment struct {
	SrcPort, DstPort uint16
	Seq              seqnum.V
	Ack              seqnum.V
	Flags            uint8
	Wnd              uint32
	MSS              uint16 // carried on SYN
	Sacks            []sackBlock
	Data             []byte
}

// headerBaseSize is the serialized size of a segment header without
// SACK blocks. It approximates a real TCP header (20 bytes) plus the
// option padding BSD stacks typically emit.
const headerBaseSize = 20

// maxSackBlocks is the BSD-era default the paper cites: SACK
// information carried in options is limited to reporting at most four
// blocks. Config.MaxSackBlocks can raise it for ablations; the wire
// format accepts up to wireSackLimit.
const maxSackBlocks = 4

// wireSackLimit bounds the decoder against absurd block counts.
const wireSackLimit = 255

// encode serializes the segment into a pooled buffer. The caller owns
// the result; transmitted segments hand it to netsim via NewPooledPacket
// so the network recycles it after delivery.
func (s *segment) encode() []byte {
	w := wire.NewPooledWriter(headerBaseSize + 8*len(s.Sacks) + len(s.Data))
	w.U16(s.SrcPort)
	w.U16(s.DstPort)
	w.U32(uint32(s.Seq))
	w.U32(uint32(s.Ack))
	w.U8(s.Flags)
	w.U8(uint8(len(s.Sacks)))
	w.U32(s.Wnd)
	w.U16(s.MSS)
	for _, b := range s.Sacks {
		w.U32(uint32(b.Start))
		w.U32(uint32(b.End))
	}
	w.Bytes(s.Data)
	return w.B
}

func decodeSegment(b []byte) (*segment, error) {
	r := wire.NewReader(b)
	s := &segment{}
	s.SrcPort = r.U16()
	s.DstPort = r.U16()
	s.Seq = seqnum.V(r.U32())
	s.Ack = seqnum.V(r.U32())
	s.Flags = r.U8()
	nsack := int(r.U8())
	s.Wnd = r.U32()
	s.MSS = r.U16()
	if nsack > wireSackLimit {
		return nil, fmt.Errorf("tcp: %d SACK blocks exceeds option space", nsack)
	}
	for i := 0; i < nsack; i++ {
		s.Sacks = append(s.Sacks, sackBlock{seqnum.V(r.U32()), seqnum.V(r.U32())})
	}
	s.Data = r.Rest()
	if err := r.Err(); err != nil {
		return nil, err
	}
	return s, nil
}

// segLen returns the amount of sequence space the segment occupies.
func (s *segment) segLen() uint32 {
	n := uint32(len(s.Data))
	if s.Flags&flagSYN != 0 {
		n++
	}
	if s.Flags&flagFIN != 0 {
		n++
	}
	return n
}

func (s *segment) String() string {
	fl := ""
	if s.Flags&flagSYN != 0 {
		fl += "S"
	}
	if s.Flags&flagACK != 0 {
		fl += "A"
	}
	if s.Flags&flagFIN != 0 {
		fl += "F"
	}
	if s.Flags&flagRST != 0 {
		fl += "R"
	}
	return fmt.Sprintf("[%d->%d %s seq=%d ack=%d len=%d wnd=%d sacks=%d]",
		s.SrcPort, s.DstPort, fl, s.Seq, s.Ack, len(s.Data), s.Wnd, len(s.Sacks))
}
