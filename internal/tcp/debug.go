package tcp

import "fmt"

// debugFail, when set, observes terminal connection failures.
var debugFail func(c *Conn, err error)

// debugRTO, when set, observes retransmission timeouts.
var debugRTO func(c *Conn)

// SetDebugHooks installs observers for connection failures and RTO
// expiries (pass nils to remove). Intended for tests and diagnosis.
func SetDebugHooks(onFail func(info string), onRTO func(info string)) {
	if onFail == nil {
		debugFail = nil
	} else {
		debugFail = func(c *Conn, err error) {
			onFail(fmt.Sprintf("t=%v %v:%d->%v:%d err=%v una=%d nxt=%d peerWnd=%d retries=%d sb=%d rb=%d",
				c.kernel().Now(), c.laddr, c.lport, c.raddr, c.rport, err,
				c.sndUna, c.sndNxt, c.peerWnd, c.retries, c.sb.len(), c.rb.readable()))
		}
	}
	if onRTO == nil {
		debugRTO = nil
	} else {
		debugRTO = func(c *Conn) {
			onRTO(fmt.Sprintf("t=%v %v:%d->%v:%d RTO retries=%d out=%d peerWnd=%d rto=%v",
				c.kernel().Now(), c.laddr, c.lport, c.raddr, c.rport,
				c.retries, c.outstanding(), c.peerWnd, c.rto<<c.rtxShift))
		}
	}
}
