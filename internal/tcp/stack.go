package tcp

import (
	"errors"

	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/transport"
)

// Stack is the per-node TCP instance. Create one per simulated host and
// register it on the node's protocol demux.
type Stack struct {
	node      *netsim.Node
	cfg       Config
	conns     map[fourTuple]*Conn
	listeners map[uint16]*Listener
	nextPort  uint16
}

type fourTuple struct {
	laddr netsim.Addr
	lport uint16
	raddr netsim.Addr
	rport uint16
}

// NewStack attaches a TCP stack with default config cfg to node.
func NewStack(node *netsim.Node, cfg Config) *Stack {
	s := &Stack{
		node:      node,
		cfg:       cfg.withDefaults(),
		conns:     make(map[fourTuple]*Conn),
		listeners: make(map[uint16]*Listener),
		nextPort:  32768,
	}
	node.Handle(netsim.ProtoTCP, s.handlePacket)
	return s
}

// Node returns the node this stack is attached to.
func (s *Stack) Node() *netsim.Node { return s.node }

func (s *Stack) kernel() *sim.Kernel { return s.node.Kernel() }

func (s *Stack) handlePacket(pkt *netsim.Packet, ifc *netsim.Iface) {
	seg, err := decodeSegment(pkt.Payload)
	if err != nil {
		return
	}
	deliver := func() {
		key := fourTuple{pkt.Dst, seg.DstPort, pkt.Src, seg.SrcPort}
		if c, ok := s.conns[key]; ok {
			c.handleSegment(seg)
			return
		}
		if seg.Flags&flagSYN != 0 && seg.Flags&flagACK == 0 {
			if l, ok := s.listeners[seg.DstPort]; ok {
				l.handleSyn(pkt, seg)
				return
			}
		}
		// No matching connection: reset, unless this is itself a reset.
		if seg.Flags&flagRST == 0 {
			s.sendRst(pkt, seg)
		}
	}
	if d := s.cfg.PerSegmentDelay; d > 0 {
		// seg.Data aliases the packet payload; keep it alive across the
		// deferred dispatch.
		pkt.Retain()
		s.kernel().After(d, func() {
			deliver()
			pkt.Release()
		})
	} else {
		deliver()
	}
}

func (s *Stack) sendRst(pkt *netsim.Packet, seg *segment) {
	rst := &segment{
		SrcPort: seg.DstPort,
		DstPort: seg.SrcPort,
		Flags:   flagRST | flagACK,
		Seq:     seg.Ack,
		Ack:     seg.Seq.Add(seg.segLen()),
	}
	s.node.Send(netsim.NewPooledPacket(pkt.Dst, pkt.Src, netsim.ProtoTCP, rst.encode()))
}

func (s *Stack) removeConn(c *Conn) {
	delete(s.conns, fourTuple{c.laddr, c.lport, c.raddr, c.rport})
}

func (s *Stack) ephemeralPort() uint16 {
	p := s.nextPort
	s.nextPort++
	if s.nextPort == 0 {
		s.nextPort = 32768
	}
	return p
}

// Listener accepts inbound connections on a port.
type Listener struct {
	stack   *Stack
	port    uint16
	cfg     Config
	backlog []*Conn
	cond    *sim.Cond
	closed  bool
	notify  func(transport.Ready)
}

// SetNotify registers fn to fire (in kernel context, with ReadyRecv)
// whenever a new established connection is queued for accept, so a
// nonblocking caller parked elsewhere can wake up and TryAccept it.
func (l *Listener) SetNotify(fn func(transport.Ready)) { l.notify = fn }

// Listen starts listening on port with the stack's default config.
func (s *Stack) Listen(port uint16) (*Listener, error) {
	return s.ListenConfig(port, s.cfg)
}

// ListenConfig starts listening on port; accepted connections use cfg.
func (s *Stack) ListenConfig(port uint16, cfg Config) (*Listener, error) {
	if _, ok := s.listeners[port]; ok {
		return nil, errors.New("tcp: port in use")
	}
	l := &Listener{stack: s, port: port, cfg: cfg.withDefaults(), cond: sim.NewCond(s.kernel())}
	s.listeners[port] = l
	return l, nil
}

func (l *Listener) handleSyn(pkt *netsim.Packet, seg *segment) {
	if l.closed {
		return
	}
	key := fourTuple{pkt.Dst, seg.DstPort, pkt.Src, seg.SrcPort}
	if _, ok := l.stack.conns[key]; ok {
		return // duplicate SYN for a connection in progress; conn handles it
	}
	c := l.stack.newConn(l.cfg, pkt.Dst, seg.DstPort, pkt.Src, seg.SrcPort)
	c.state = stateSynRcvd
	c.rcvNxt = seg.Seq.Add(1)
	if seg.MSS != 0 && int(seg.MSS) < c.mss {
		c.mss = int(seg.MSS)
	}
	c.peerWnd = seg.Wnd
	c.peerSack = c.cfg.SackEnabled
	c.sndUna = c.iss
	c.sndNxt = c.iss.Add(1)
	c.maxSent = c.sndNxt
	c.sndBase = c.iss.Add(1)
	l.stack.conns[key] = c
	c.sendSynAck()
	// Retransmit the SYN-ACK until acknowledged.
	var rearm func()
	rearm = func() {
		c.rtoTimer = c.kernel().After(c.rto, func() {
			if c.state != stateSynRcvd {
				return
			}
			c.retries++
			if c.retries > c.cfg.SynRetries {
				c.fail(ErrTimeout)
				return
			}
			c.sendSynAck()
			rearm()
		})
	}
	rearm()
}

// completeAccept queues an established connection on its listener.
func (s *Stack) completeAccept(c *Conn) {
	if l, ok := s.listeners[c.lport]; ok && !l.closed {
		l.backlog = append(l.backlog, c)
		l.cond.Broadcast()
		if l.notify != nil {
			l.notify(transport.ReadyRecv)
		}
	}
}

// Accept blocks until an inbound connection completes its handshake.
func (l *Listener) Accept(p *sim.Proc) (*Conn, error) {
	for len(l.backlog) == 0 {
		if l.closed {
			return nil, ErrClosed
		}
		l.cond.Wait(p)
	}
	c := l.backlog[0]
	l.backlog = l.backlog[1:]
	return c, nil
}

// TryAccept returns a pending connection or ErrWouldBlock.
func (l *Listener) TryAccept() (*Conn, error) {
	if len(l.backlog) == 0 {
		if l.closed {
			return nil, ErrClosed
		}
		return nil, ErrWouldBlock
	}
	c := l.backlog[0]
	l.backlog = l.backlog[1:]
	return c, nil
}

// Close stops the listener.
func (l *Listener) Close() {
	l.closed = true
	delete(l.stack.listeners, l.port)
	l.cond.Broadcast()
}

// Port returns the listening port.
func (l *Listener) Port() uint16 { return l.port }

// Connect opens a connection to raddr:rport using the stack's default
// config, blocking until established or failed.
func (s *Stack) Connect(p *sim.Proc, raddr netsim.Addr, rport uint16) (*Conn, error) {
	return s.ConnectConfig(p, s.cfg, raddr, rport)
}

// ConnectConfig opens a connection with explicit configuration.
func (s *Stack) ConnectConfig(p *sim.Proc, cfg Config, raddr netsim.Addr, rport uint16) (*Conn, error) {
	laddr := s.node.Addr()
	lport := s.ephemeralPort()
	c := s.newConn(cfg, laddr, lport, raddr, rport)
	c.state = stateSynSent
	s.conns[fourTuple{laddr, lport, raddr, rport}] = c
	c.sendSyn()
	var rearm func()
	rearm = func() {
		c.rtoTimer = c.kernel().After(c.rto<<c.rtxShift, func() {
			if c.state != stateSynSent {
				return
			}
			c.retries++
			if c.retries > c.cfg.SynRetries {
				c.fail(ErrTimeout)
				return
			}
			c.rtxShift++
			c.sendSyn()
			rearm()
		})
	}
	rearm()
	for c.state == stateSynSent {
		c.connCond.Wait(p)
	}
	if c.state == stateDone {
		return nil, c.err
	}
	return c, nil
}
