package tcp

import (
	"bytes"
	"math/rand"
	"repro/internal/seqnum"
	"testing"
)

// Fuzz insertOOO+extract against a reference model with arbitrary
// overlapping segments.
func TestOOOFuzzOverlap(t *testing.T) {
	for trial := 0; trial < 2000; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		n := rng.Intn(2000) + 10
		data := make([]byte, n)
		rng.Read(data)
		base := seqnum.V(rng.Uint32())
		b := &recvBuffer{limit: 1 << 20}
		// Random overlapping segments (like retransmissions with shifted
		// boundaries), ensuring full coverage at the end.
		for i := 0; i < 30; i++ {
			off := rng.Intn(n)
			l := rng.Intn(n-off) + 1
			b.insertOOO(base.Add(uint32(off)), data[off:off+l])
		}
		// Guarantee coverage.
		b.insertOOO(base, data)
		nxt := b.extract(base)
		if nxt != base.Add(uint32(n)) {
			t.Fatalf("trial %d: extract advanced to base+%d, want %d", trial, nxt.Sub(base), n)
		}
		out := make([]byte, n+100)
		m := b.read(out)
		if m != n || !bytes.Equal(out[:m], data) {
			t.Fatalf("trial %d: reassembly wrong: got %d bytes want %d", trial, m, n)
		}
	}
}
