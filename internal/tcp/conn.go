package tcp

import (
	"time"

	"repro/internal/netsim"
	"repro/internal/seqnum"
	"repro/internal/sim"
	"repro/internal/transport"
)

// Errors returned by the socket API. Each wraps its canonical
// internal/transport sentinel, so errors.Is(err,
// transport.ErrWouldBlock) etc. works across stacks.
var (
	ErrWouldBlock = transport.Wrap(transport.ErrWouldBlock, "tcp: operation would block")
	ErrClosed     = transport.Wrap(transport.ErrClosed, "tcp: connection closed")
	ErrReset      = transport.Wrap(transport.ErrAborted, "tcp: connection reset by peer")
	ErrKilled     = transport.Wrap(transport.ErrAborted, "tcp: connection killed")
	ErrTimeout    = transport.Wrap(transport.ErrTimeout, "tcp: connection timed out")
	ErrMsgSize    = transport.Wrap(transport.ErrMsgSize, "tcp: message too large")
)

// Conn satisfies the shared nonblocking endpoint contract.
var _ transport.Endpoint = (*Conn)(nil)

// Config holds per-connection tunables. Zero values select defaults
// documented on each field.
type Config struct {
	SndBuf int // send buffer bytes (default 64 KiB; experiments use 220 KiB)
	RcvBuf int // receive buffer bytes (default 64 KiB; experiments use 220 KiB)

	NoDelay bool // disable Nagle (LAM-TCP default: disabled, i.e. NoDelay=true)

	DelAck        time.Duration // delayed-ACK timeout (default 100 ms, BSD-style)
	AckEverySegs  int           // ACK at least every n segments (default 2)
	RTOMin        time.Duration // minimum retransmission timeout (default 1 s)
	RTOMax        time.Duration // maximum retransmission timeout (default 64 s)
	SackEnabled   bool          // negotiate the SACK option (paper setting: on)
	NoSack        bool          // force SACK off (for ablations)
	MaxSackBlocks int           // SACK blocks per ACK (default 4, the BSD option-space limit)
	MaxRetries    int           // retransmissions before aborting (default 12)
	SynRetries    int           // SYN retransmissions before failing connect (default 5)
	InitCwndBytes int           // initial congestion window (default 4380, RFC 3390)

	// PerSegmentDelay models receive-side CPU cost per segment (checksum
	// work, etc). The paper offloads TCP checksums to the NIC, so the
	// default is zero.
	PerSegmentDelay time.Duration

	// Probe, when non-nil, receives protocol-event callbacks (in-order
	// delivery advance, congestion-window changes). The chaos harness
	// installs its invariant oracles here.
	Probe *Probe
}

func (c Config) withDefaults() Config {
	if c.SndBuf == 0 {
		c.SndBuf = 64 << 10
	}
	if c.RcvBuf == 0 {
		c.RcvBuf = 64 << 10
	}
	if c.DelAck == 0 {
		c.DelAck = 100 * time.Millisecond
	}
	if c.AckEverySegs == 0 {
		c.AckEverySegs = 2
	}
	if c.RTOMin == 0 {
		c.RTOMin = time.Second
	}
	if c.RTOMax == 0 {
		c.RTOMax = 64 * time.Second
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 12
	}
	if c.SynRetries == 0 {
		c.SynRetries = 5
	}
	if c.InitCwndBytes == 0 {
		c.InitCwndBytes = 4380
	}
	if c.MaxSackBlocks == 0 {
		c.MaxSackBlocks = maxSackBlocks
	}
	c.SackEnabled = !c.NoSack
	return c
}

type connState int

const (
	stateClosed connState = iota
	stateSynSent
	stateSynRcvd
	stateEstablished
	stateFinWait // we sent FIN
	stateDone
)

// Stats counts per-connection protocol events.
type Stats struct {
	SegsSent        int64
	SegsRcvd        int64
	BytesSent       int64
	BytesRcvd       int64
	Retransmits     int64
	FastRetransmits int64
	RTOs            int64
	DupAcksRcvd     int64
	AcksSent        int64
	AcksBeyondMax   int64 // ACKs above snd.max: must stay zero
}

// Conn is one TCP connection endpoint.
type Conn struct {
	stack *Stack
	cfg   Config

	laddr, raddr netsim.Addr
	lport, rport uint16

	state     connState
	err       error
	remoteFin bool
	finQueued bool
	finSent   bool
	finSeq    seqnum.V
	noDelay   bool

	// Send state.
	iss       seqnum.V
	sndBase   seqnum.V // sequence number of sb.data[0]
	sndUna    seqnum.V
	sndNxt    seqnum.V
	maxSent   seqnum.V
	peerWnd   uint32
	mss       int
	cwnd      int
	ssthresh  int
	dupacks   int
	recover   seqnum.V
	inFastRec bool
	inRTORec  bool
	highRtx   seqnum.V // top of the most recent hole retransmission
	rtxShift  uint     // RTO backoff exponent
	retries   int
	sacked    []sackBlock // scoreboard from peer SACKs
	peerSack  bool

	// RTT estimation.
	srtt, rttvar, rto time.Duration
	rttActive         bool
	rttSeq            seqnum.V
	rttStart          time.Duration

	// Receive state.
	rcvNxt      seqnum.V
	lastAdvWnd  uint32
	unackedSegs int
	ackPending  bool
	lastOOOSeq  seqnum.V
	lastOOOLen  int

	sb sendBuffer
	rb recvBuffer

	rtoTimer     sim.Timer
	delackTimer  sim.Timer
	persistTimer sim.Timer
	persistShift uint

	readCond, writeCond, connCond *sim.Cond
	notify                        func(transport.Ready)

	Stats Stats
}

func (s *Stack) newConn(cfg Config, laddr netsim.Addr, lport uint16, raddr netsim.Addr, rport uint16) *Conn {
	cfg = cfg.withDefaults()
	c := &Conn{
		stack:     s,
		cfg:       cfg,
		laddr:     laddr,
		raddr:     raddr,
		lport:     lport,
		rport:     rport,
		noDelay:   cfg.NoDelay,
		rto:       cfg.RTOMin * 3, // conservative pre-measurement default
		readCond:  sim.NewCond(s.kernel()),
		writeCond: sim.NewCond(s.kernel()),
		connCond:  sim.NewCond(s.kernel()),
	}
	c.sb.limit = cfg.SndBuf
	c.rb.limit = cfg.RcvBuf
	c.mss = s.node.MTU(laddr, raddr) - netsim.IPHeaderSize - headerBaseSize
	c.iss = seqnum.V(s.kernel().Rand().Uint32())
	c.cwnd = cfg.InitCwndBytes
	c.ssthresh = 1 << 30
	return c
}

// LocalAddr returns the local address.
func (c *Conn) LocalAddr() netsim.Addr { return c.laddr }

// RemoteAddr returns the remote address.
func (c *Conn) RemoteAddr() netsim.Addr { return c.raddr }

// LocalPort returns the local port.
func (c *Conn) LocalPort() uint16 { return c.lport }

// RemotePort returns the remote port.
func (c *Conn) RemotePort() uint16 { return c.rport }

// SetNoDelay enables or disables Nagle's algorithm.
func (c *Conn) SetNoDelay(v bool) { c.noDelay = v }

// SetNotify registers fn to be invoked (in kernel context) with the
// readiness edges each inbound segment produced: ReadyRecv when in-order
// bytes (or the peer's FIN) became readable, ReadySend when an ack freed
// send-buffer space or the connection finished establishing, ReadyErr or
// ReadyClosed on teardown. This is the edge-triggered event hook the RPI
// modules feed into their readiness poller instead of select().
func (c *Conn) SetNotify(fn func(transport.Ready)) { c.notify = fn }

// Established reports whether the connection is fully open.
func (c *Conn) Established() bool { return c.state == stateEstablished || c.state == stateFinWait }

func (c *Conn) kernel() *sim.Kernel { return c.stack.kernel() }

func (c *Conn) fireNotify(ev transport.Ready) {
	if c.notify != nil && ev != 0 {
		c.notify(ev)
	}
}

// fail aborts the connection with err, waking all blocked processes.
func (c *Conn) fail(err error) {
	if c.state == stateDone {
		return
	}
	c.state = stateDone
	if c.err == nil {
		c.err = err
	}
	if debugFail != nil {
		debugFail(c, err)
	}
	c.stopTimers()
	c.stack.removeConn(c)
	c.readCond.Broadcast()
	c.writeCond.Broadcast()
	c.connCond.Broadcast()
	c.fireNotify(transport.ReadyErr)
}

func (c *Conn) stopTimers() {
	c.rtoTimer.Stop()
	c.delackTimer.Stop()
	c.persistTimer.Stop()
}

// handleSegment is the inbound packet entry point, called in kernel
// context from the stack demux.
func (c *Conn) handleSegment(seg *segment) {
	c.Stats.SegsRcvd++
	if seg.Flags&flagRST != 0 {
		if c.state == stateSynSent || c.state == stateSynRcvd {
			c.fail(ErrReset)
		} else if c.state != stateClosed && c.state != stateDone {
			c.fail(ErrReset)
		}
		return
	}
	switch c.state {
	case stateSynSent:
		if seg.Flags&flagSYN != 0 && seg.Flags&flagACK != 0 && seg.Ack == c.iss.Add(1) {
			c.establish(seg)
			c.sendAckNow()
			c.connCond.Broadcast()
			c.fireNotify(transport.ReadySend) // open for business: writable
		}
	case stateSynRcvd:
		if seg.Flags&flagACK != 0 && seg.Flags&flagSYN == 0 && seg.Ack == c.iss.Add(1) {
			c.state = stateEstablished
			c.sndUna = c.iss.Add(1)
			c.peerWnd = seg.Wnd
			c.rtoTimer.Stop()
			c.rtxShift = 0
			c.retries = 0
			c.stack.completeAccept(c)
			c.connCond.Broadcast()
			ev := transport.ReadySend
			// Fall through to process any piggybacked data.
			if len(seg.Data) > 0 {
				before := c.rb.readable()
				c.processData(seg)
				if c.rb.readable() > before || c.remoteFin {
					ev |= transport.ReadyRecv
				}
			}
			c.fireNotify(ev)
		} else if seg.Flags&flagSYN != 0 {
			// Duplicate SYN: re-send SYN-ACK.
			c.sendSynAck()
		}
	case stateEstablished, stateFinWait:
		// Compute the readiness edges this segment produces: readable if
		// it grew the in-order queue or carried the peer's FIN, writable
		// if its ack freed send-buffer space. A pure duplicate ACK yields
		// no edge — and no wasted engine wake-up.
		beforeRecv := c.rb.readable()
		beforeFin := c.remoteFin
		beforeSpace := c.sb.space()
		if seg.Flags&flagACK != 0 {
			c.processAck(seg)
		}
		if len(seg.Data) > 0 || seg.Flags&flagFIN != 0 {
			c.processData(seg)
		}
		c.output()
		var ev transport.Ready
		if c.rb.readable() > beforeRecv || (c.remoteFin && !beforeFin) {
			ev |= transport.ReadyRecv
		}
		if c.state != stateDone && c.sb.space() > beforeSpace {
			ev |= transport.ReadySend
		}
		c.fireNotify(ev)
	}
}

// establish transitions a SynSent connection to Established using the
// peer's SYN-ACK.
func (c *Conn) establish(seg *segment) {
	c.state = stateEstablished
	c.rcvNxt = seg.Seq.Add(1)
	c.sndUna = c.iss.Add(1)
	c.sndNxt = c.sndUna
	c.maxSent = c.sndUna
	c.sndBase = c.sndUna
	c.peerWnd = seg.Wnd
	if seg.MSS != 0 && int(seg.MSS) < c.mss {
		c.mss = int(seg.MSS)
	}
	c.peerSack = c.cfg.SackEnabled
	c.rtoTimer.Stop()
	c.rtxShift = 0
	c.retries = 0
	c.lastAdvWnd = uint32(c.rb.window())
}

// processAck handles the ACK, window, and SACK information on an
// inbound segment.
func (c *Conn) processAck(seg *segment) {
	// Record SACK scoreboard information regardless of ack movement.
	if len(seg.Sacks) > 0 {
		for _, b := range seg.Sacks {
			c.addSacked(b)
		}
	}
	oldPeerWnd := c.peerWnd
	c.peerWnd = seg.Wnd

	if seg.Ack.Greater(c.maxSent) && seg.Ack.Greater(c.sndUna) {
		// An acknowledgment for data we never sent indicates endpoint
		// state corruption; it is counted so tests can assert it never
		// happens (regression guard for a retransmission-overrun bug).
		c.Stats.AcksBeyondMax++
	}
	switch {
	case seg.Ack.Greater(c.sndUna) && seg.Ack.LessEq(c.maxSent):
		c.newAck(seg.Ack)
	case seg.Ack == c.sndUna:
		// Potential duplicate ACK: no data, no window change, and we
		// have outstanding data.
		if len(seg.Data) == 0 && seg.Flags&flagFIN == 0 &&
			c.outstanding() > 0 && seg.Wnd == oldPeerWnd {
			c.Stats.DupAcksRcvd++
			c.dupAck()
		}
	}
	if c.peerWnd > 0 {
		c.persistTimer.Stop()
		c.persistShift = 0
	} else if c.unsentBytes() > 0 && c.outstanding() == 0 {
		c.startPersist()
	}
}

// newAck processes a cumulative ACK that advances snd.una.
func (c *Conn) newAck(ack seqnum.V) {
	acked := ack.Sub(c.sndUna)
	// RTT sample (Karn: only if the timed segment was not retransmitted;
	// rttActive is cleared on any retransmission).
	if c.rttActive && ack.GreaterEq(c.rttSeq) {
		c.rttActive = false
		c.updateRTT(c.kernel().Now() - c.rttStart)
	}
	// Release acknowledged bytes from the send buffer. The FIN, if any,
	// occupies the sequence number just past the data.
	bufAcked := ack.Sub(c.sndBase)
	if int(bufAcked) > c.sb.len() {
		bufAcked = uint32(c.sb.len()) // FIN byte included in ack
	}
	c.sb.ack(int(bufAcked))
	c.sndBase = c.sndBase.Add(bufAcked)
	c.sndUna = ack
	c.pruneSacked()
	c.dupacks = 0
	c.retries = 0
	c.rtxShift = 0

	inRecovery := c.inFastRec || c.inRTORec
	if inRecovery {
		if ack.GreaterEq(c.recover) {
			// Full ACK: leave recovery.
			c.inFastRec = false
			c.inRTORec = false
			c.cwnd = c.ssthresh
			c.probeCwnd()
		} else {
			// Partial ACK (New-Reno): retransmit the next hole and
			// deflate the window by the amount acked.
			c.retransmitHole(c.sndUna)
			if c.inFastRec {
				c.cwnd -= int(acked)
				c.cwnd += c.mss
				if c.cwnd < c.mss {
					c.cwnd = c.mss
				}
			}
			c.resetRTO()
		}
	} else {
		c.growCwnd(int(acked))
	}

	if c.sndUna == c.sndNxt {
		c.rtoTimer.Stop()
		if c.finSent && c.state == stateFinWait && c.remoteFin {
			c.finish()
			return
		}
	} else {
		c.resetRTO()
	}
	c.writeCond.Broadcast()
}

// growCwnd applies slow start or congestion avoidance for acked bytes.
// TCP grows per-ACK ("ack counting"); the paper contrasts this with
// SCTP's byte counting.
func (c *Conn) growCwnd(acked int) {
	if c.cwnd < c.ssthresh {
		// Slow start: one MSS per ACK (classic BSD behaviour).
		c.cwnd += c.mss
	} else {
		// Congestion avoidance: MSS*MSS/cwnd per ACK.
		inc := c.mss * c.mss / c.cwnd
		if inc == 0 {
			inc = 1
		}
		c.cwnd += inc
	}
	if c.cwnd > c.sb.limit+c.mss {
		c.cwnd = c.sb.limit + c.mss
	}
	c.probeCwnd()
}

// dupAck counts duplicate ACKs and triggers fast retransmit at three.
func (c *Conn) dupAck() {
	if c.inFastRec {
		// Window inflation: each dup ACK means one segment left the
		// network.
		c.cwnd += c.mss
		// With SACK, use the scoreboard to retransmit further holes.
		if c.peerSack {
			c.retransmitHole(c.highRtx)
		}
		c.output()
		return
	}
	c.dupacks++
	if c.dupacks < 3 {
		return
	}
	// Fast retransmit.
	c.Stats.FastRetransmits++
	flight := c.outstanding()
	c.ssthresh = flight / 2
	if c.ssthresh < 2*c.mss {
		c.ssthresh = 2 * c.mss
	}
	c.cwnd = c.ssthresh + 3*c.mss
	c.inFastRec = true
	c.recover = c.sndNxt
	c.highRtx = c.sndUna
	c.probeCwnd()
	c.retransmitHole(c.sndUna)
	c.resetRTO()
}

// outstanding returns the number of unacknowledged sequence-space bytes.
func (c *Conn) outstanding() int { return int(c.sndNxt.Sub(c.sndUna)) }

// unsentBytes returns buffered bytes not yet transmitted.
func (c *Conn) unsentBytes() int {
	sent := int(c.sndNxt.Sub(c.sndBase))
	if c.finSent && sent > 0 {
		sent-- // FIN consumed one sequence number, not a buffer byte
	}
	n := c.sb.len() - sent
	if n < 0 {
		n = 0
	}
	return n
}

// addSacked merges a peer-reported SACK block into the scoreboard.
func (c *Conn) addSacked(b sackBlock) {
	if b.End.LessEq(b.Start) || b.End.LessEq(c.sndUna) {
		return
	}
	if b.Start.Less(c.sndUna) {
		b.Start = c.sndUna
	}
	out := c.sacked[:0]
	for _, s := range c.sacked {
		if s.End.Less(b.Start) || s.Start.Greater(b.End) {
			out = append(out, s)
			continue
		}
		if s.Start.Less(b.Start) {
			b.Start = s.Start
		}
		if s.End.Greater(b.End) {
			b.End = s.End
		}
	}
	// Insert keeping order.
	inserted := false
	final := make([]sackBlock, 0, len(out)+1)
	for _, s := range out {
		if !inserted && b.Start.Less(s.Start) {
			final = append(final, b)
			inserted = true
		}
		final = append(final, s)
	}
	if !inserted {
		final = append(final, b)
	}
	c.sacked = final
}

func (c *Conn) pruneSacked() {
	out := c.sacked[:0]
	for _, s := range c.sacked {
		if s.End.Greater(c.sndUna) {
			if s.Start.Less(c.sndUna) {
				s.Start = c.sndUna
			}
			out = append(out, s)
		}
	}
	c.sacked = out
}

// isSacked reports whether sequence number q is covered by the
// scoreboard.
func (c *Conn) isSacked(q seqnum.V) bool {
	for _, s := range c.sacked {
		if q.GreaterEq(s.Start) && q.Less(s.End) {
			return true
		}
	}
	return false
}

// processData handles the payload and FIN of an inbound segment.
func (c *Conn) processData(seg *segment) {
	seq := seg.Seq
	data := seg.Data
	fin := seg.Flags&flagFIN != 0
	finSeq := seq.Add(uint32(len(data)))

	// Trim data already received.
	if seq.Less(c.rcvNxt) {
		skip := c.rcvNxt.Sub(seq)
		if int(skip) >= len(data) {
			data = nil
			seq = c.rcvNxt
		} else {
			data = data[skip:]
			seq = c.rcvNxt
		}
	}

	switch {
	case len(data) == 0 && !fin:
		if seg.Seq.Less(c.rcvNxt) {
			c.sendAckNow() // pure duplicate; re-ACK
		}
		return
	case seq == c.rcvNxt && len(data) > 0:
		// In-order data; honor the advertised window.
		win := c.rb.window()
		trimmedTail := false
		if len(data) > win {
			data = data[:win]
			trimmedTail = true
		}
		c.rb.deliver(data)
		c.rcvNxt = c.rcvNxt.Add(uint32(len(data)))
		c.Stats.BytesRcvd += int64(len(data))
		// Pull any now-contiguous out-of-order segments.
		hadOOO := len(c.rb.ooo) > 0
		c.rcvNxt = c.rb.extract(c.rcvNxt)
		c.probeDeliver()
		if hadOOO || trimmedTail {
			c.sendAckNow() // hole filled or data dropped: ACK immediately
		} else {
			c.scheduleAck()
		}
		c.readCond.Broadcast()
	case seq.Greater(c.rcvNxt) && len(data) > 0:
		// Out-of-order: buffer within the window and send an immediate
		// duplicate ACK carrying SACK blocks.
		win := c.rb.window()
		maxEnd := c.rcvNxt.Add(uint32(win))
		end := seq.Add(uint32(len(data)))
		if end.Greater(maxEnd) {
			over := end.Sub(maxEnd)
			if int(over) < len(data) {
				data = data[:len(data)-int(over)]
			} else {
				data = nil
			}
		}
		if len(data) > 0 {
			c.rb.insertOOO(seq, data)
		}
		c.lastOOOSeq = seq
		c.lastOOOLen = len(data)
		c.sendAckNow()
	}

	if fin && finSeq == c.rcvNxt && !c.remoteFin {
		c.rcvNxt = c.rcvNxt.Add(1)
		c.remoteFin = true
		c.sendAckNow()
		c.readCond.Broadcast()
		if c.finSent && c.sndUna == c.sndNxt {
			c.finish()
		}
	}
}

// finish tears the connection down after both directions closed
// cleanly. There is no TIME_WAIT: the simulator never reuses a
// connection four-tuple.
func (c *Conn) finish() {
	c.state = stateDone
	c.stopTimers()
	c.stack.removeConn(c)
	c.readCond.Broadcast()
	c.writeCond.Broadcast()
	c.connCond.Broadcast()
	c.fireNotify(transport.ReadyClosed)
}

func (c *Conn) updateRTT(m time.Duration) {
	if c.srtt == 0 {
		c.srtt = m
		c.rttvar = m / 2
	} else {
		d := c.srtt - m
		if d < 0 {
			d = -d
		}
		c.rttvar = (3*c.rttvar + d) / 4
		c.srtt = (7*c.srtt + m) / 8
	}
	c.rto = c.srtt + 4*c.rttvar
	if c.rto < c.cfg.RTOMin {
		c.rto = c.cfg.RTOMin
	}
	if c.rto > c.cfg.RTOMax {
		c.rto = c.cfg.RTOMax
	}
}
