package tcp

import (
	"errors"
	"io"

	"repro/internal/sim"
	"repro/internal/transport"
)

// Read blocks until at least one byte is available, the peer half-closes
// (io.EOF after the stream drains), or the connection errors.
func (c *Conn) Read(p *sim.Proc, b []byte) (int, error) {
	for {
		n, err := c.TryRead(b)
		if !errors.Is(err, transport.ErrWouldBlock) {
			return n, err
		}
		c.readCond.Wait(p)
	}
}

// TryRead is the nonblocking variant of Read; it returns ErrWouldBlock
// when no data is available yet.
func (c *Conn) TryRead(b []byte) (int, error) {
	if c.rb.readable() > 0 {
		n := c.rb.read(b)
		c.maybeSendWindowUpdate()
		return n, nil
	}
	if c.err != nil {
		return 0, c.err
	}
	if c.remoteFin {
		return 0, io.EOF
	}
	if c.state == stateDone {
		return 0, ErrClosed
	}
	return 0, ErrWouldBlock
}

// Peek returns the contiguous head region of the in-order receive
// queue without consuming it — the zero-copy read surface
// (transport.ByteStream): framing code parses envelopes in place and
// Discards what it used. No data means ErrWouldBlock, EOF, or the
// terminal error, exactly as TryRead reports them.
func (c *Conn) Peek() ([]byte, error) {
	if h := c.rb.peek(); len(h) > 0 {
		return h, nil
	}
	if c.err != nil {
		return nil, c.err
	}
	if c.remoteFin {
		return nil, io.EOF
	}
	if c.state == stateDone {
		return nil, ErrClosed
	}
	return nil, ErrWouldBlock
}

// Discard consumes n bytes previously returned by Peek and lets the
// freed window advertise.
func (c *Conn) Discard(n int) {
	if n <= 0 {
		return
	}
	c.rb.discard(n)
	c.maybeSendWindowUpdate()
}

// Write blocks until all of b has been queued on the connection.
func (c *Conn) Write(p *sim.Proc, b []byte) (int, error) {
	total := 0
	for len(b) > 0 {
		n, err := c.TryWrite(b)
		total += n
		if err != nil && !errors.Is(err, transport.ErrWouldBlock) {
			return total, err
		}
		b = b[n:]
		if len(b) > 0 {
			c.writeCond.Wait(p)
		}
	}
	return total, nil
}

// TryWrite queues as much of b as fits in the send buffer and starts
// transmission. It returns ErrWouldBlock if nothing could be queued.
func (c *Conn) TryWrite(b []byte) (int, error) {
	if c.err != nil {
		return 0, c.err
	}
	if c.state == stateDone || c.finQueued {
		return 0, ErrClosed
	}
	if c.state != stateEstablished {
		return 0, ErrWouldBlock
	}
	n := c.sb.write(b)
	if n > 0 {
		c.output()
		return n, nil
	}
	return 0, ErrWouldBlock
}

// Readable reports whether a TryRead would return data or a terminal
// condition.
func (c *Conn) Readable() bool {
	return c.rb.readable() > 0 || c.remoteFin || c.err != nil || c.state == stateDone
}

// ReadableBytes returns the number of buffered in-order bytes.
func (c *Conn) ReadableBytes() int { return c.rb.readable() }

// Writable reports whether the send buffer has room.
func (c *Conn) Writable() bool {
	return c.state == stateEstablished && !c.finQueued && c.sb.space() > 0
}

// WritableBytes returns the free space in the send buffer.
func (c *Conn) WritableBytes() int {
	if c.state != stateEstablished || c.finQueued {
		return 0
	}
	return c.sb.space()
}

// Close gracefully closes the sending direction (like shutdown(SHUT_WR))
// and lets reading continue until the peer closes. It is idempotent.
func (c *Conn) Close() {
	if c.finQueued || c.state == stateDone {
		return
	}
	switch c.state {
	case stateSynSent, stateSynRcvd:
		c.abort()
		return
	}
	c.finQueued = true
	c.output()
	c.writeCond.Broadcast()
}

// abort sends a RST and tears the connection down immediately.
func (c *Conn) abort() {
	if c.state == stateDone {
		return
	}
	c.sendSegment(&segment{
		Flags: flagRST | flagACK,
		Seq:   c.sndNxt,
		Ack:   c.rcvNxt,
	})
	c.fail(ErrClosed)
}

// Kill tears the connection down silently — no RST or FIN, as if the
// host crashed. The local error is abort-class (ErrKilled); the peer
// discovers the death when it next transmits, because the stack
// answers segments for a removed connection with a RST.
func (c *Conn) Kill() {
	if c.state == stateDone {
		return
	}
	c.fail(ErrKilled)
}

// Reset aborts the connection immediately with a RST to the peer,
// regardless of state — the abortive close used to reject a
// superseded reconnection attempt.
func (c *Conn) Reset() {
	if c.state == stateDone {
		return
	}
	c.sendSegment(&segment{
		Flags: flagRST | flagACK,
		Seq:   c.sndNxt,
		Ack:   c.rcvNxt,
	})
	c.fail(ErrClosed)
}

// Err returns the terminal error, if any.
func (c *Conn) Err() error { return c.err }

// RTO returns the current retransmission timeout estimate (for tests).
func (c *Conn) RTO() interface{ String() string } { return c.rto }

// Cwnd returns the current congestion window in bytes (for tests).
func (c *Conn) Cwnd() int { return c.cwnd }

// MSS returns the negotiated maximum segment size.
func (c *Conn) MSS() int { return c.mss }
