package tcp

import (
	"repro/internal/netsim"
	"repro/internal/seqnum"
	"repro/internal/transport"
)

// output transmits as much buffered data as the congestion and peer
// windows allow, applying Nagle's algorithm unless NoDelay is set.
func (c *Conn) output() {
	if c.state != stateEstablished && c.state != stateFinWait {
		return
	}
	for {
		unsent := c.unsentBytes()
		if unsent == 0 {
			break
		}
		wnd := int(c.peerWnd)
		if c.cwnd < wnd {
			wnd = c.cwnd
		}
		avail := wnd - c.outstanding()
		if avail <= 0 {
			if c.peerWnd == 0 && c.outstanding() == 0 {
				c.startPersist()
			}
			break
		}
		n := c.mss
		if n > unsent {
			n = unsent
		}
		if n > avail {
			n = avail
		}
		// Nagle: do not send a sub-MSS segment while data is in flight.
		if !c.noDelay && n < c.mss && c.outstanding() > 0 && !c.finQueued {
			break
		}
		off := int(c.sndNxt.Sub(c.sndBase))
		data := c.sb.slice(off, n)
		c.sendData(c.sndNxt, data, false)
		c.sndNxt = c.sndNxt.Add(uint32(len(data)))
		if c.sndNxt.Greater(c.maxSent) {
			c.maxSent = c.sndNxt
		}
	}
	// Send the FIN once all data is out.
	if c.finQueued && !c.finSent && c.unsentBytes() == 0 {
		c.finSeq = c.sndBase.Add(uint32(c.sb.len()))
		if c.sndNxt == c.finSeq {
			c.finSent = true
			c.state = stateFinWait
			c.sndNxt = c.sndNxt.Add(1)
			if c.sndNxt.Greater(c.maxSent) {
				c.maxSent = c.sndNxt
			}
			c.sendSegment(&segment{
				Flags: flagACK | flagFIN,
				Seq:   c.finSeq,
				Ack:   c.rcvNxt,
				Wnd:   uint32(c.rb.window()),
			})
			c.resetRTO()
		}
	}
}

// sendData transmits one data segment starting at seq.
func (c *Conn) sendData(seq seqnum.V, data []byte, isRtx bool) {
	if len(data) == 0 {
		return
	}
	if !isRtx && !c.rttActive {
		// Time this segment for RTT estimation.
		c.rttActive = true
		c.rttSeq = seq.Add(uint32(len(data)))
		c.rttStart = c.kernel().Now()
	}
	if isRtx {
		c.Stats.Retransmits++
		c.rttActive = false // Karn's algorithm
	}
	c.Stats.BytesSent += int64(len(data))
	c.sendSegment(&segment{
		Flags: flagACK,
		Seq:   seq,
		Ack:   c.rcvNxt,
		Wnd:   uint32(c.rb.window()),
		Data:  data,
	})
	// Piggybacked ACK covers anything pending.
	c.cancelPendingAck()
	if !c.rtoTimer.Active() {
		c.resetRTO()
	}
}

// sackedRangeContaining returns the scoreboard range covering q, if
// any.
func (c *Conn) sackedRangeContaining(q seqnum.V) (sackBlock, bool) {
	for _, s := range c.sacked {
		if q.GreaterEq(s.Start) && q.Less(s.End) {
			return s, true
		}
	}
	return sackBlock{}, false
}

// retransmitHole retransmits the first un-SACKed segment at or above
// from (and at or above snd.una). It never transmits past snd.nxt —
// bytes beyond it are unsent data that must go through output() — and
// it skips SACKed data by walking to the end of each scoreboard range.
// It returns whether anything was sent.
func (c *Conn) retransmitHole(from seqnum.V) bool {
	seq := seqnum.Max(from, c.sndUna)
	for seq.Less(c.sndNxt) {
		if c.finSent && seq == c.finSeq {
			// Retransmit the FIN.
			c.sendSegment(&segment{
				Flags: flagACK | flagFIN,
				Seq:   c.finSeq,
				Ack:   c.rcvNxt,
				Wnd:   uint32(c.rb.window()),
			})
			c.Stats.Retransmits++
			c.highRtx = seq.Add(1)
			c.resetRTO()
			return true
		}
		if s, ok := c.sackedRangeContaining(seq); ok {
			seq = s.End
			continue
		}
		// Hole at seq: bounded by the MSS, snd.nxt, the FIN sequence,
		// and the next SACKed range.
		n := c.mss
		if rem := int(c.sndNxt.Sub(seq)); n > rem {
			n = rem
		}
		if c.finSent && int(c.finSeq.Sub(seq)) < n {
			n = int(c.finSeq.Sub(seq))
		}
		for _, s := range c.sacked {
			if s.Start.Greater(seq) && int(s.Start.Sub(seq)) < n {
				n = int(s.Start.Sub(seq))
			}
		}
		if n <= 0 {
			return false
		}
		off := int(seq.Sub(c.sndBase))
		data := c.sb.slice(off, n)
		if len(data) == 0 {
			return false
		}
		c.sendData(seq, data, true)
		end := seq.Add(uint32(len(data)))
		if end.Greater(c.highRtx) {
			c.highRtx = end
		}
		c.resetRTO()
		return true
	}
	return false
}

// sendSegment fills in addressing and transmits a segment.
func (c *Conn) sendSegment(seg *segment) {
	seg.SrcPort = c.lport
	seg.DstPort = c.rport
	c.Stats.SegsSent++
	c.stack.node.Send(netsim.NewPooledPacket(c.laddr, c.raddr, netsim.ProtoTCP, seg.encode()))
}

func (c *Conn) sendSyn() {
	c.sndNxt = c.iss.Add(1)
	c.maxSent = c.sndNxt
	c.sndUna = c.iss
	c.sndBase = c.iss.Add(1)
	c.sendSegment(&segment{
		Flags: flagSYN,
		Seq:   c.iss,
		Wnd:   uint32(c.rb.window()),
		MSS:   uint16(c.mss),
	})
}

func (c *Conn) sendSynAck() {
	c.sendSegment(&segment{
		Flags: flagSYN | flagACK,
		Seq:   c.iss,
		Ack:   c.rcvNxt,
		Wnd:   uint32(c.rb.window()),
		MSS:   uint16(c.mss),
	})
}

// scheduleAck implements the delayed-ACK policy: an ACK is sent after
// AckEverySegs in-order segments or when the DelAck timer fires.
func (c *Conn) scheduleAck() {
	c.unackedSegs++
	if c.unackedSegs >= c.cfg.AckEverySegs {
		c.sendAckNow()
		return
	}
	c.ackPending = true
	if !c.delackTimer.Active() {
		c.delackTimer = c.kernel().After(c.cfg.DelAck, func() {
			if c.ackPending {
				c.sendAckNow()
			}
		})
	}
}

func (c *Conn) cancelPendingAck() {
	c.ackPending = false
	c.unackedSegs = 0
	c.delackTimer.Stop()
}

// sendAckNow emits a pure ACK, attaching SACK blocks when the
// reassembly queue is non-empty and SACK was negotiated.
func (c *Conn) sendAckNow() {
	c.cancelPendingAck()
	seg := &segment{
		Flags: flagACK,
		Seq:   c.sndNxt,
		Ack:   c.rcvNxt,
		Wnd:   uint32(c.rb.window()),
	}
	if c.cfg.SackEnabled {
		seg.Sacks = c.rb.sackBlocks(c.cfg.MaxSackBlocks, c.lastOOOSeq, c.lastOOOLen)
	}
	c.lastAdvWnd = seg.Wnd
	c.Stats.AcksSent++
	c.sendSegment(seg)
}

// maybeSendWindowUpdate re-advertises the window after the application
// drains the receive buffer, mirroring the BSD "window update" rule.
func (c *Conn) maybeSendWindowUpdate() {
	w := uint32(c.rb.window())
	if w < c.lastAdvWnd {
		return
	}
	opened := int(w - c.lastAdvWnd)
	threshold := 2 * c.mss
	if c.rb.limit/2 < threshold {
		threshold = c.rb.limit / 2
	}
	if opened >= threshold {
		c.sendAckNow()
	}
}

// resetRTO (re)arms the retransmission timer with the current backoff.
func (c *Conn) resetRTO() {
	c.rtoTimer.Stop()
	d := c.rto << c.rtxShift
	if d > c.cfg.RTOMax {
		d = c.cfg.RTOMax
	}
	c.rtoTimer = c.kernel().After(d, c.onRTO)
}

// onRTO fires when the retransmission timer expires.
func (c *Conn) onRTO() {
	if c.state == stateDone || c.sndUna == c.sndNxt {
		return
	}
	// A peer advertising a zero window is alive and acking; keep
	// probing (persist-style) instead of counting toward the
	// connection-death threshold.
	if c.peerWnd > 0 {
		c.retries++
	}
	if c.retries > c.cfg.MaxRetries {
		c.fail(ErrTimeout)
		return
	}
	c.Stats.RTOs++
	if debugRTO != nil {
		debugRTO(c)
	}
	flight := c.outstanding()
	c.ssthresh = flight / 2
	if c.ssthresh < 2*c.mss {
		c.ssthresh = 2 * c.mss
	}
	c.cwnd = c.mss
	c.rtxShift++
	c.dupacks = 0
	c.inFastRec = false
	c.inRTORec = true
	c.recover = c.sndNxt
	c.highRtx = c.sndUna
	// Conservatively forget SACK information (the reneging rule).
	c.sacked = nil
	c.rttActive = false
	c.probeCwnd()
	c.retransmitHole(c.sndUna)
	c.resetRTO()
	c.fireNotify(transport.ReadySend)
}

// startPersist arms the zero-window probe timer.
func (c *Conn) startPersist() {
	if c.persistTimer.Active() {
		return
	}
	d := c.rto << c.persistShift
	if d > c.cfg.RTOMax {
		d = c.cfg.RTOMax
	}
	c.persistTimer = c.kernel().After(d, func() {
		if c.state == stateDone || c.peerWnd > 0 || c.unsentBytes() == 0 {
			return
		}
		// Send a one-byte window probe. Like BSD's forced output, the
		// probe is real data and advances snd.nxt: if the window opened
		// between the peer's last ACK and now, the peer accepts the
		// byte, and its ACK must stay within our snd.max accounting.
		off := int(c.sndNxt.Sub(c.sndBase))
		data := c.sb.slice(off, 1)
		if len(data) == 1 {
			c.sendSegment(&segment{
				Flags: flagACK,
				Seq:   c.sndNxt,
				Ack:   c.rcvNxt,
				Wnd:   uint32(c.rb.window()),
				Data:  data,
			})
			c.sndNxt = c.sndNxt.Add(1)
			if c.sndNxt.Greater(c.maxSent) {
				c.maxSent = c.sndNxt
			}
			if !c.rtoTimer.Active() {
				c.resetRTO()
			}
		}
		if c.persistShift < 6 {
			c.persistShift++
		}
		c.startPersist()
	})
}
