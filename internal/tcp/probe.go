package tcp

import "repro/internal/seqnum"

// Probe is a set of optional protocol-event callbacks, installed via
// Config.Probe — the TCP analogue of sctp.Probe, used by the chaos
// harness as invariant-oracle hook points. Callbacks run in kernel
// context and must not mutate connection state.
type Probe struct {
	// Deliver fires after in-order data advances rcv.nxt; the reported
	// value must never decrease for a connection.
	Deliver func(c *Conn, rcvNxt seqnum.V)

	// Cwnd fires whenever the congestion window changes (ACK growth,
	// fast retransmit, recovery exit, RTO collapse). limit is the clamp
	// the sender enforces (SndBuf + MSS).
	Cwnd func(c *Conn, cwnd, ssthresh, flight, mss, limit int)
}

// probeDeliver reports an rcv.nxt advance to the probe, if any.
func (c *Conn) probeDeliver() {
	if p := c.cfg.Probe; p != nil && p.Deliver != nil {
		p.Deliver(c, c.rcvNxt)
	}
}

// probeCwnd reports congestion state to the probe, if any.
func (c *Conn) probeCwnd() {
	if p := c.cfg.Probe; p != nil && p.Cwnd != nil {
		p.Cwnd(c, c.cwnd, c.ssthresh, c.outstanding(), c.mss, c.sb.limit+c.mss)
	}
}
