package tcp

import (
	"repro/internal/seqnum"
	"repro/internal/wire"
)

// sendBuffer holds unacknowledged and not-yet-sent outbound bytes. The
// byte at offset 0 always corresponds to snd.una.
type sendBuffer struct {
	data  []byte
	limit int
}

func (b *sendBuffer) len() int   { return len(b.data) }
func (b *sendBuffer) space() int { return b.limit - len(b.data) }

// write appends up to space() bytes from p, returning how many were
// taken.
func (b *sendBuffer) write(p []byte) int {
	n := b.space()
	if n > len(p) {
		n = len(p)
	}
	b.data = append(b.data, p[:n]...)
	return n
}

// slice returns up to n bytes starting at byte offset off (relative to
// snd.una). The returned slice must not be retained across acks.
func (b *sendBuffer) slice(off, n int) []byte {
	if off >= len(b.data) {
		return nil
	}
	end := off + n
	if end > len(b.data) {
		end = len(b.data)
	}
	return b.data[off:end]
}

// ack discards n bytes from the front (they were cumulatively acked).
func (b *sendBuffer) ack(n int) {
	if n > len(b.data) {
		n = len(b.data)
	}
	b.data = b.data[n:]
	// Reclaim storage occasionally so long-lived connections do not pin
	// the high-water-mark backing array.
	if cap(b.data) > 4*b.limit && len(b.data) < b.limit {
		b.data = append([]byte(nil), b.data...)
	}
}

// recvBuffer holds in-order bytes awaiting the application plus the
// out-of-order reassembly queue. Out-of-order bytes count against the
// advertised window: this is precisely the transport-level head-of-line
// pressure the paper describes for TCP (Figure 5).
//
// The in-order queue is a bip buffer (sonic's bip_buffer/mirrored_buffer
// technique): the application peeks at a contiguous head region, parses
// in place, and consumes what it used. A partial read never triggers a
// copy or a compaction slide — the remaining bytes stay where the
// segments delivered them. The queue's ceiling is above the advertised
// window's limit because window accounting happens at delivery time:
// in-order data is trimmed to the window before it lands here, but the
// out-of-order queue (bounded separately by limit, plus one in-flight
// window of trimmed delivery) drains into it without a window check
// when a hole fills.
type recvBuffer struct {
	in     *wire.BipBuffer // nil until the first byte arrives
	ooo    []oooSeg        // sorted by Seq, non-overlapping
	oooLen int
	limit  int
}

type oooSeg struct {
	Seq  seqnum.V
	Data []byte
}

func (b *recvBuffer) readable() int {
	if b.in == nil {
		return 0
	}
	return b.in.Len()
}

// window returns the receive window to advertise. As in BSD, the
// reassembly (out-of-order) queue is not charged against the advertised
// window — only undelivered in-order bytes are. This keeps duplicate
// ACKs carrying an unchanged window during a loss episode, which is
// what lets the sender count them. The paper's head-of-line pressure
// (Figure 5) still holds: Msg-B's bytes sit in the buffer and are
// capped by insertOOO, and once the hole fills they land in the
// in-order queue and shrink the window until the application reads.
func (b *recvBuffer) window() int {
	w := b.limit - b.readable()
	if w < 0 {
		w = 0
	}
	return w
}

// read moves up to len(p) in-order bytes to p, crossing the bip-buffer
// region boundary if needed.
func (b *recvBuffer) read(p []byte) int {
	total := 0
	for b.in != nil && total < len(p) {
		h := b.in.Head()
		if len(h) == 0 {
			break
		}
		n := copy(p[total:], h)
		b.in.Consume(n)
		total += n
	}
	return total
}

// peek returns the contiguous in-order head region without consuming.
func (b *recvBuffer) peek() []byte {
	if b.in == nil {
		return nil
	}
	return b.in.Head()
}

// discard consumes n previously peeked bytes.
func (b *recvBuffer) discard(n int) {
	for n > 0 {
		h := b.in.Head()
		if len(h) > n {
			b.in.Consume(n)
			return
		}
		b.in.Consume(len(h))
		n -= len(h)
	}
}

// deliver appends in-order data for the application. Delivery is
// window-checked by the caller (in-order arrivals) or bounded by the
// reassembly queue (extract), so the bip ceiling — limit for the window
// plus 2*limit for a full reassembly drain — is never hit; see the
// recvBuffer comment.
func (b *recvBuffer) deliver(data []byte) {
	if b.in == nil {
		b.in = wire.NewBipBuffer(3 * b.limit)
	}
	b.in.Write(data)
}

// insertOOO stores an out-of-order segment [seq, seq+len(data)),
// trimming any overlap with already-stored segments. It returns the
// number of new bytes stored. The reassembly queue is bounded by the
// buffer limit; segments beyond it are dropped (the peer retransmits).
func (b *recvBuffer) insertOOO(seq seqnum.V, data []byte) int {
	if len(data) == 0 || b.oooLen >= b.limit {
		return 0
	}
	stored := 0
	// Walk the sorted queue, trimming the incoming range against each
	// existing segment and inserting the non-overlapping pieces.
	for i := 0; i <= len(b.ooo); i++ {
		if len(data) == 0 {
			break
		}
		if i == len(b.ooo) {
			cp := append([]byte(nil), data...)
			b.ooo = append(b.ooo, oooSeg{seq, cp})
			stored += len(cp)
			break
		}
		cur := b.ooo[i]
		curEnd := cur.Seq.Add(uint32(len(cur.Data)))
		segEnd := seq.Add(uint32(len(data)))
		if segEnd.LessEq(cur.Seq) {
			// Entirely before cur: insert here.
			cp := append([]byte(nil), data...)
			b.ooo = append(b.ooo[:i], append([]oooSeg{{seq, cp}}, b.ooo[i:]...)...)
			stored += len(cp)
			data = nil
			break
		}
		if seq.GreaterEq(curEnd) {
			continue // entirely after cur
		}
		// Overlap. Keep the part before cur (if any), then continue
		// with the part after cur.
		if seq.Less(cur.Seq) {
			n := cur.Seq.Sub(seq)
			cp := append([]byte(nil), data[:n]...)
			b.ooo = append(b.ooo[:i], append([]oooSeg{{seq, cp}}, b.ooo[i:]...)...)
			stored += int(n)
			i++ // skip the piece we just inserted
		}
		if segEnd.Greater(curEnd) {
			drop := curEnd.Sub(seq)
			data = data[drop:]
			seq = curEnd
		} else {
			data = nil
			break
		}
	}
	b.oooLen += stored
	return stored
}

// extract pops consecutive out-of-order segments starting at nxt,
// delivering them in-order, and returns the new nxt.
func (b *recvBuffer) extract(nxt seqnum.V) seqnum.V {
	for len(b.ooo) > 0 {
		s := b.ooo[0]
		end := s.Seq.Add(uint32(len(s.Data)))
		if s.Seq.Greater(nxt) {
			break
		}
		// s.Seq <= nxt; deliver the part at or beyond nxt.
		if end.Greater(nxt) {
			skip := nxt.Sub(s.Seq)
			b.deliver(s.Data[skip:])
			nxt = end
		}
		b.oooLen -= len(s.Data)
		b.ooo = b.ooo[1:]
	}
	return nxt
}

// sackBlocks builds up to max SACK blocks describing the out-of-order
// queue, most-recently-relevant first per RFC 2018. firstHint, when
// nonzero length, is placed first (the block containing the most
// recently received segment).
func (b *recvBuffer) sackBlocks(max int, recentSeq seqnum.V, recentLen int) []sackBlock {
	if len(b.ooo) == 0 {
		return nil
	}
	// Coalesce adjacent stored segments into blocks.
	var blocks []sackBlock
	cur := sackBlock{b.ooo[0].Seq, b.ooo[0].Seq.Add(uint32(len(b.ooo[0].Data)))}
	for _, s := range b.ooo[1:] {
		if s.Seq == cur.End {
			cur.End = cur.End.Add(uint32(len(s.Data)))
			continue
		}
		blocks = append(blocks, cur)
		cur = sackBlock{s.Seq, s.Seq.Add(uint32(len(s.Data)))}
	}
	blocks = append(blocks, cur)
	// Move the block containing the most recent arrival to the front.
	if recentLen > 0 {
		for i, blk := range blocks {
			if recentSeq.GreaterEq(blk.Start) && recentSeq.Less(blk.End) {
				if i != 0 {
					blk := blocks[i]
					copy(blocks[1:i+1], blocks[0:i])
					blocks[0] = blk
				}
				break
			}
		}
	}
	if len(blocks) > max {
		blocks = blocks[:max]
	}
	return blocks
}
