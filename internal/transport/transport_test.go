package transport_test

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/sctp"
	"repro/internal/tcp"
	"repro/internal/transport"
)

// Every stack sentinel must match its canonical sentinel through
// errors.Is while keeping its historical message text.
func TestStackSentinelsWrapCanonical(t *testing.T) {
	cases := []struct {
		stackErr  error
		canonical error
		text      string
	}{
		{tcp.ErrWouldBlock, transport.ErrWouldBlock, "tcp: operation would block"},
		{tcp.ErrClosed, transport.ErrClosed, "tcp: connection closed"},
		{tcp.ErrReset, transport.ErrAborted, "tcp: connection reset by peer"},
		{tcp.ErrTimeout, transport.ErrTimeout, "tcp: connection timed out"},
		{tcp.ErrMsgSize, transport.ErrMsgSize, "tcp: message too large"},
		{sctp.ErrWouldBlock, transport.ErrWouldBlock, "sctp: operation would block"},
		{sctp.ErrMsgSize, transport.ErrMsgSize, "sctp: message exceeds send buffer size"},
		{sctp.ErrClosed, transport.ErrClosed, "sctp: socket closed"},
		{sctp.ErrAborted, transport.ErrAborted, "sctp: association aborted"},
		{sctp.ErrTimeout, transport.ErrTimeout, "sctp: association timed out"},
		{sctp.ErrNoAssoc, transport.ErrNotConnected, "sctp: no such association"},
	}
	for _, c := range cases {
		if !errors.Is(c.stackErr, c.canonical) {
			t.Errorf("errors.Is(%v, %v) = false", c.stackErr, c.canonical)
		}
		if c.stackErr.Error() != c.text {
			t.Errorf("message %q, want %q", c.stackErr.Error(), c.text)
		}
	}
}

// The two stacks' would-block errors are distinct values but share the
// canonical identity — the property the RPI engine depends on.
func TestWouldBlockCrossStack(t *testing.T) {
	if tcp.ErrWouldBlock == sctp.ErrWouldBlock {
		t.Fatal("stack sentinels should remain distinct values")
	}
	for _, err := range []error{tcp.ErrWouldBlock, sctp.ErrWouldBlock} {
		if !errors.Is(err, transport.ErrWouldBlock) {
			t.Fatalf("%v does not match transport.ErrWouldBlock", err)
		}
	}
}

func TestWrapPreservesChains(t *testing.T) {
	inner := transport.Wrap(transport.ErrTimeout, "x: timed out")
	outer := fmt.Errorf("dial peer 3: %w", inner)
	if !errors.Is(outer, transport.ErrTimeout) {
		t.Fatal("wrapped chain lost the canonical sentinel")
	}
	if errors.Is(outer, transport.ErrClosed) {
		t.Fatal("matched the wrong sentinel")
	}
}

// The concrete endpoint types must satisfy the Endpoint contract.
var (
	_ transport.Endpoint = (*tcp.Conn)(nil)
	_ transport.Endpoint = (*sctp.Socket)(nil)
	_ transport.Endpoint = (*sctp.Conn)(nil)
)
