package transport

import "testing"

func TestPollerFIFOAndCoalesce(t *testing.T) {
	wakes := 0
	p := NewPoller(func() { wakes++ })
	a := p.Register(0)
	b := p.Register(1)

	p.Post(a, ReadyRecv)
	p.Post(b, ReadySend)
	p.Post(a, ReadySend) // coalesces into a's pending mask, keeps position

	if wakes != 3 {
		t.Fatalf("wakes = %d, want 3 (one per post)", wakes)
	}
	if p.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (a coalesced)", p.Len())
	}
	tag, ev, ok := p.Next()
	if !ok || tag != 0 || ev != ReadyRecv|ReadySend {
		t.Fatalf("first = (%d, %v, %v), want (0, recv|send, true)", tag, ev, ok)
	}
	tag, ev, ok = p.Next()
	if !ok || tag != 1 || ev != ReadySend {
		t.Fatalf("second = (%d, %v, %v), want (1, send, true)", tag, ev, ok)
	}
	if _, _, ok := p.Next(); ok {
		t.Fatal("queue should be empty")
	}
	if p.Pending() {
		t.Fatal("Pending should be false after drain")
	}
}

func TestPollerRepostAfterDrain(t *testing.T) {
	p := NewPoller(nil)
	a := p.Register(7)
	p.Post(a, ReadyRecv)
	p.Next()
	// Edge-triggered re-arm: a drained source posts again cleanly.
	p.Post(a, ReadyErr)
	tag, ev, ok := p.Next()
	if !ok || tag != 7 || ev != ReadyErr {
		t.Fatalf("repost = (%d, %v, %v), want (7, err, true)", tag, ev, ok)
	}
}

func TestPollerRetag(t *testing.T) {
	p := NewPoller(nil)
	a := p.Register(-2) // anonymous pending connection
	p.Post(a, ReadyRecv)
	p.Retag(a, 5) // identified as rank 5 while the event is still queued
	tag, _, ok := p.Next()
	if !ok || tag != 5 {
		t.Fatalf("tag after retag = %d, want 5", tag)
	}
}

func TestPollerZeroPostIgnored(t *testing.T) {
	wakes := 0
	p := NewPoller(func() { wakes++ })
	a := p.Register(0)
	p.Post(a, 0)
	if wakes != 0 || p.Pending() {
		t.Fatalf("empty post must not queue or wake (wakes=%d pending=%v)", wakes, p.Pending())
	}
}

func TestReadyString(t *testing.T) {
	if s := (ReadyRecv | ReadyErr).String(); s != "recv|err" {
		t.Fatalf("String = %q", s)
	}
	if s := Ready(0).String(); s != "none" {
		t.Fatalf("String(0) = %q", s)
	}
}
