package transport

// This file is the readiness layer of the proactor refactor: instead of
// one global "something changed" boolean that forces the RPI engine to
// re-scan every peer select()-style, each endpoint posts typed,
// edge-triggered events into a Poller — the epoll analogue. A wake then
// names exactly which endpoints changed and how, so the progress loop
// pumps only ready peers and its cost is proportional to the number of
// events, not the world size.

// Ready is a bitmask of per-endpoint readiness edges.
type Ready uint8

const (
	// ReadyRecv: the endpoint gained readable data (bytes, a message,
	// or an accept-queue entry on a listener).
	ReadyRecv Ready = 1 << iota

	// ReadySend: the endpoint gained writable space (an ack freed send
	// buffer, or the connection finished establishing).
	ReadySend

	// ReadyClosed: the endpoint completed an orderly teardown.
	ReadyClosed

	// ReadyErr: the endpoint failed terminally (reset, abort, timeout).
	ReadyErr
)

// Has reports whether r includes every edge in k.
func (r Ready) Has(k Ready) bool { return r&k == k }

func (r Ready) String() string {
	if r == 0 {
		return "none"
	}
	var s []byte
	appendIf := func(k Ready, name string) {
		if r&k != 0 {
			if len(s) > 0 {
				s = append(s, '|')
			}
			s = append(s, name...)
		}
	}
	appendIf(ReadyRecv, "recv")
	appendIf(ReadySend, "send")
	appendIf(ReadyClosed, "closed")
	appendIf(ReadyErr, "err")
	return string(s)
}

// Poller is a deterministic readiness queue: endpoints register as
// sources, their notify hooks post edges (from kernel context), and the
// consumer drains (source, edges) pairs in FIFO order. Events for a
// source that is already queued coalesce into its pending mask, so the
// queue holds each source at most once — bounded by the number of
// registered sources, like an epoll ready list.
//
// The Poller is a plain single-threaded data structure: the simulation
// is cooperatively scheduled, so posts (kernel context) and drains
// (process context) never overlap and no synchronization is needed.
type Poller struct {
	wake    func()   // fired on every post; wakes the parked engine loop
	sources []source // index = source id
	queue   []int    // source ids with pending != 0, FIFO
}

type source struct {
	tag     int
	pending Ready
	queued  bool
}

// NewPoller builds a Poller whose wake hook fires on every Post, in
// whatever context the post happens (usually the kernel's).
func NewPoller(wake func()) *Poller {
	return &Poller{wake: wake}
}

// Register adds a source and returns its id. tag is the consumer's
// label for the source (an RPI module uses the peer rank, or a negative
// constant for the listener); it is handed back verbatim by Next.
func (p *Poller) Register(tag int) int {
	p.sources = append(p.sources, source{tag: tag})
	return len(p.sources) - 1
}

// Retag relabels a source. The TCP module uses this when an anonymous
// inbound connection identifies itself: events already queued for the
// source dispatch under the new tag, so nothing posted during the
// handoff is lost or misrouted.
func (p *Poller) Retag(id, tag int) { p.sources[id].tag = tag }

// Post records readiness edges for a source and enqueues it if it is
// not already pending, then fires the wake hook. Kernel-context safe.
func (p *Poller) Post(id int, ev Ready) {
	if ev == 0 {
		return
	}
	s := &p.sources[id]
	s.pending |= ev
	if !s.queued {
		s.queued = true
		p.queue = append(p.queue, id)
	}
	if p.wake != nil {
		p.wake()
	}
}

// Hook returns a notify function bound to source id, suitable for
// Endpoint.SetNotify.
func (p *Poller) Hook(id int) func(Ready) {
	return func(ev Ready) { p.Post(id, ev) }
}

// Next pops the oldest ready source, returning its tag and the
// coalesced edge mask. ok is false when the queue is empty.
func (p *Poller) Next() (tag int, ev Ready, ok bool) {
	if len(p.queue) == 0 {
		return 0, 0, false
	}
	id := p.queue[0]
	p.queue = p.queue[1:]
	s := &p.sources[id]
	tag, ev = s.tag, s.pending
	s.pending = 0
	s.queued = false
	return tag, ev, true
}

// Pending reports whether any source is queued. The engine re-checks
// this (with its kick flag) before parking: a post that lands between
// the drain and the park stays in the queue, so the wakeup cannot be
// lost the way a single dirty boolean could.
func (p *Poller) Pending() bool { return len(p.queue) > 0 }

// Len returns the number of queued sources.
func (p *Poller) Len() int { return len(p.queue) }
