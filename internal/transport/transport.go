// Package transport defines the contract shared by the simulated
// transport stacks (internal/tcp, internal/sctp): a canonical error
// taxonomy and the nonblocking endpoint surface the RPI modules build
// on. The paper's argument (§3) is that an RPI is a thin binding over
// a transport; this package is the part of the binding that does not
// depend on whether the transport is byte-stream or message oriented.
//
// Each stack keeps its own package-level sentinel variables for
// compatibility, but they wrap the canonical sentinels here, so
// errors.Is(err, transport.ErrWouldBlock) matches a would-block from
// either stack and RPI code never needs stack-specific comparisons.
package transport

import "errors"

// Canonical sentinel errors. Stack-specific errors wrap exactly one of
// these (via Wrap), preserving their historical message text while
// joining the shared taxonomy.
var (
	// ErrWouldBlock reports that a nonblocking (Try*) call could make
	// no progress right now; retry after the endpoint's notify fires.
	ErrWouldBlock = errors.New("operation would block")

	// ErrClosed reports an operation on a locally closed endpoint, or
	// one whose peer completed an orderly shutdown.
	ErrClosed = errors.New("endpoint closed")

	// ErrTimeout reports that retransmission gave up (RTO exhaustion,
	// handshake failure after all retries).
	ErrTimeout = errors.New("operation timed out")

	// ErrMsgSize reports a message too large for the transport to
	// accept at once (e.g. larger than the SCTP send buffer — the §3.6
	// limitation that forces middleware-level chunking).
	ErrMsgSize = errors.New("message too large")

	// ErrAborted reports an abortive teardown by the peer (RST, ABORT
	// chunk, or communication-lost notification).
	ErrAborted = errors.New("connection aborted by peer")

	// ErrNotConnected reports an operation addressed to a peer or
	// association the endpoint does not have.
	ErrNotConnected = errors.New("not connected")

	// ErrSessionLost reports that a transport session (TCP connection
	// or SCTP association) died underneath an RPI module and recovery
	// could not restore it: the redial budget is exhausted or redialing
	// failed terminally. Modules surface it from Advance so the
	// middleware can abort the job with a diagnostic instead of
	// hanging.
	ErrSessionLost = errors.New("transport session lost")
)

// wrapped is a sentinel alias: its own message text, one canonical
// sentinel underneath for errors.Is.
type wrapped struct {
	msg      string
	sentinel error
}

func (w *wrapped) Error() string { return w.msg }
func (w *wrapped) Unwrap() error { return w.sentinel }

// Wrap returns an error whose text is msg and which errors.Is-matches
// sentinel. Stacks use it to keep their historical package-local error
// variables while adopting the canonical taxonomy.
func Wrap(sentinel error, msg string) error {
	return &wrapped{msg: msg, sentinel: sentinel}
}

// Endpoint is the nonblocking contract every transport endpoint
// satisfies and the RPI engine relies on: readiness probes, an event
// hook that fires (in kernel context) whenever readiness may have
// changed, and teardown. The data-moving Try* calls stay
// transport-specific — byte-oriented (TryRead/TryWrite) on TCP
// connections, message-oriented (TryRecvMsg/TrySendMsg) on SCTP
// sockets — and are bound into the engine as function values.
type Endpoint interface {
	// Readable reports whether a Try-read would return data or a
	// terminal condition (rather than ErrWouldBlock).
	Readable() bool

	// Writable reports whether the endpoint can accept at least some
	// outbound data right now.
	Writable() bool

	// SetNotify registers fn to be invoked whenever the endpoint's
	// readiness changes, with the edge that changed (readable,
	// writable, closed, error). fn runs in kernel context and must not
	// block. Events are edge-triggered: the stack reports transitions,
	// not levels, so a consumer that is handed ReadyRecv must drain the
	// endpoint until it would block or it will not hear about the bytes
	// already buffered. Typically fn is a Poller.Hook, which queues the
	// endpoint for the engine's proactor loop.
	SetNotify(fn func(Ready))

	// Close begins an orderly local teardown.
	Close()
}

// ByteStream is the zero-copy read surface of a byte-oriented endpoint
// (the TCP connection): framing code peeks at the contiguous in-order
// region of the receive buffer, parses in place, and consumes what it
// used — no intermediate copy, no compaction. TryRead remains for the
// cases where the caller wants bytes moved into its own buffer (message
// bodies landing directly in a pooled buffer).
type ByteStream interface {
	// Peek returns the contiguous head of the in-order receive queue
	// without consuming it. An empty slice with a nil error never
	// occurs: no data means ErrWouldBlock, EOF, or a terminal error,
	// exactly as TryRead reports them.
	Peek() ([]byte, error)

	// Discard consumes n bytes previously returned by Peek.
	Discard(n int)

	// TryRead moves up to len(b) in-order bytes into b.
	TryRead(b []byte) (int, error)
}

// Redialer is the optional recovery capability on the Endpoint
// contract: an endpoint whose session can be re-established after
// abortive death. Per-peer RPI endpoints (a TCP connection, an SCTP
// one-to-one connection) satisfy it by dialing a replacement session;
// the one-to-many SCTP socket satisfies it with an RFC 4960 §5.2
// association restart, which reuses the same socket. A Redial attempt
// may block in process context (the peer's handshake runs in kernel
// context); it returns the replacement endpoint, or an error when the
// attempt failed (callers apply backoff and a bounded retry budget).
type Redialer interface {
	Endpoint

	// Redial attempts to establish a replacement session with the same
	// peer. On success the returned Endpoint is the new session (it may
	// be the receiver itself when the transport restarts in place).
	Redial() (Endpoint, error)
}
