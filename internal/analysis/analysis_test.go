package analysis

import (
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// The golden tests drive each rule over a seeded fixture package under
// testdata/src. Expected diagnostics are written in the fixtures as
//
//	expr // want "substring" ["substring" ...]
//
// matching any diagnostic on the same line whose message contains the
// substring. A comment line
//
//	// wantnext "substring" ...
//
// expects the diagnostics on the following line; it exists for lines
// that already carry a //simlint:allow directive as their trailing
// comment. Every diagnostic must be wanted and every want must be
// matched, so the fixtures pin both the positives and (by silence on
// the Fine functions) the negatives.

func newTestModule(t *testing.T) *Module {
	t.Helper()
	m, err := NewModule(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("NewModule: %v", err)
	}
	return m
}

func loadFixture(t *testing.T, ld *Loader, name string) *Package {
	t.Helper()
	p, err := ld.LoadDir(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatalf("load fixture %s: %v", name, err)
	}
	return p
}

type expectation struct {
	line    int
	substr  string
	matched bool
}

// parseWants parses the quoted substrings of one want clause.
func parseWants(t *testing.T, line int, rest string) []*expectation {
	t.Helper()
	var out []*expectation
	for {
		rest = strings.TrimSpace(rest)
		if rest == "" {
			return out
		}
		q, err := strconv.QuotedPrefix(rest)
		if err != nil {
			t.Fatalf("malformed want clause at line %d: %q", line, rest)
		}
		s, err := strconv.Unquote(q)
		if err != nil {
			t.Fatalf("malformed want string at line %d: %q", line, q)
		}
		out = append(out, &expectation{line: line, substr: s})
		rest = rest[len(q):]
	}
}

func wantsOf(t *testing.T, p *Package) []*expectation {
	t.Helper()
	var exps []*expectation
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				line := p.Fset.Position(c.Pos()).Line
				if rest, ok := strings.CutPrefix(c.Text, "// wantnext "); ok {
					exps = append(exps, parseWants(t, line+1, rest)...)
				} else if rest, ok := strings.CutPrefix(c.Text, "// want "); ok {
					exps = append(exps, parseWants(t, line, rest)...)
				}
			}
		}
	}
	return exps
}

func checkFixture(t *testing.T, p *Package, rules []Rule) {
	t.Helper()
	exps := wantsOf(t, p)
	if len(exps) == 0 && !strings.HasSuffix(p.Dir, "suppress") {
		t.Fatalf("fixture %s has no want comments", p.ImportPath)
	}
	for _, d := range Run(p, rules) {
		matched := false
		for _, e := range exps {
			if !e.matched && e.line == d.Pos.Line && strings.Contains(d.Msg, e.substr) {
				e.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, e := range exps {
		if !e.matched {
			t.Errorf("missing diagnostic: line %d wants a message containing %q", e.line, e.substr)
		}
	}
}

func TestGoldenFixtures(t *testing.T) {
	m := newTestModule(t)
	ld := m.Loader()
	cases := []struct {
		fixture string
		rules   []Rule
	}{
		// kernel_allowed.go plays the role of the real scheduler files:
		// its goroutine and channel must be exempted by the allowlist.
		{"nopreempt", []Rule{NoPreempt(m.Path(), map[string]bool{
			"internal/analysis/testdata/src/nopreempt/kernel_allowed.go": true,
		})}},
		{"seqnumcmp", []Rule{SeqnumCmp()}},
		{"maporder", []Rule{MapOrder()}},
		{"sentinel", []Rule{Sentinel(m.Path())}},
		{"reflease", []Rule{Reflease(m)}},
		{"epochguard", []Rule{EpochGuard(m)}},
		{"probepure", []Rule{ProbePure(m)}},
		// timeflow direct mode subsumes the old determinism rule;
		// timeflowcross pins the interprocedural flow-only mode, where
		// local wall-clock reads are fine but crossing into simulated
		// packages is not.
		{"timeflow", []Rule{Timeflow(m, true)}},
		{"timeflowcross", []Rule{Timeflow(m, false)}},
		// The suppress fixture runs under timeflow: justified allows
		// must silence their time.Now findings, malformed ones must not.
		{"suppress", []Rule{Timeflow(m, true)}},
	}
	for _, c := range cases {
		t.Run(c.fixture, func(t *testing.T) {
			checkFixture(t, loadFixture(t, ld, c.fixture), c.rules)
		})
	}
}

// TestSeededFixturesFailFullRuleSet is the test-side twin of the
// `simlint <fixture-dir>` gate: every seeded violation fixture must
// produce at least one diagnostic under the full rule set, i.e. the
// linter exits non-zero on each of them.
func TestSeededFixturesFailFullRuleSet(t *testing.T) {
	m := newTestModule(t)
	for _, fixture := range []string{
		"epochguard", "maporder", "nopreempt", "probepure", "reflease",
		"sentinel", "seqnumcmp", "suppress", "timeflow", "timeflowcross",
	} {
		p := loadFixture(t, m.Loader(), fixture)
		if n := len(Run(p, AllRules(m))); n == 0 {
			t.Errorf("fixture %s: want at least one diagnostic under the full rule set, got 0", fixture)
		}
	}
}

// TestModuleTreeClean runs the exact sweep `make lint` runs and
// requires zero findings, so a violation anywhere in the tree fails
// plain `go test ./...` even when the lint target is skipped.
func TestModuleTreeClean(t *testing.T) {
	m := newTestModule(t)
	ld := m.Loader()
	dirs, err := ModuleDirs(ld.Root)
	if err != nil {
		t.Fatalf("ModuleDirs: %v", err)
	}
	for _, dir := range dirs {
		p, err := ld.LoadDir(dir)
		if err != nil {
			t.Fatalf("load %s: %v", dir, err)
		}
		rel := strings.TrimPrefix(strings.TrimPrefix(p.ImportPath, ld.Module), "/")
		for _, d := range Run(p, RulesFor(m, rel)) {
			t.Errorf("tree not lint-clean: %s", d)
		}
	}
}
