// Package analysis is a small static-analysis driver built purely on
// the standard library (go/parser + go/types + go/importer), with
// codebase-specific rules that machine-check the simulator's
// fragile-by-convention invariants:
//
// Syntactic rules:
//
//   - nopreempt: no goroutines, sync primitives, or channel operations
//     in simulated packages — processes are cooperatively scheduled and
//     must block through sim.Cond/sim.WaitGroup so exactly one runs at
//     any instant.
//   - seqnum: no raw <, >, <=, >= (or builtin min/max) on RFC 1982
//     serial numbers (seqnum.V / seqnum.S16) — magnitude comparison
//     breaks at TSN/SSN/sequence wraparound; only the serial-order
//     helpers are correct.
//   - maporder: no ordering-sensitive effects (sends, event scheduling,
//     appends to shared state) inside a range over a map — map
//     iteration order is randomized and would leak nondeterminism into
//     the wire.
//   - sentinel: no == / != against module sentinel errors — the
//     transport contract is errors.Is, which keeps working when errors
//     are wrapped.
//
// Flow-sensitive rules, built on the CFG + dataflow engine in cfg.go
// and dataflow.go with cross-function summaries from module.go:
//
//   - reflease: pooled buffers (netsim.Packet references, wire.GetBuf
//     slices, sctp.Message payloads) must be released exactly once on
//     every normal exit path; leaks on early-return paths and double
//     releases are definite findings, data-dependent balancing goes
//     silent rather than guessing.
//   - epochguard: frame handlers must compare the frame's epoch against
//     the operation state's epoch (dominance, not mere presence) before
//     mutating epoch-stamped state — otherwise stale retransmissions
//     from a deposed root get applied.
//   - probepure: functions bound to Probe/Observer oracle hook fields
//     must be transitively free of protocol-state mutation, channel
//     sends, and unauditable func-value calls.
//   - timeflow: the interprocedural determinism rule — wall-clock time
//     and global math/rand must neither be used in simulated packages
//     nor flow into them through helper returns, struct fields, or
//     composite literals from anywhere else.
//
// A finding can be suppressed with a justified directive on (or one
// line above) the offending line:
//
//	//simlint:allow <rule> <why>
//
// An empty justification is itself a diagnostic, so every suppression
// carries a written reason.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding at a resolved source position.
type Diagnostic struct {
	Pos  token.Position
	Rule string
	Msg  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Msg)
}

// Reporter records one finding for the rule being run.
type Reporter func(pos token.Pos, format string, args ...any)

// Rule is one analyzer: a name (used in //simlint:allow directives), a
// one-line rationale, and a check over a type-checked package.
type Rule struct {
	Name  string
	Doc   string
	Check func(p *Package, report Reporter)
}

// directiveRule is the pseudo-rule name under which malformed
// //simlint:allow directives are reported. It cannot be suppressed.
const directiveRule = "simlint"

// allowKey identifies one (file, line, rule) suppression target.
type allowKey struct {
	file string
	line int
	rule string
}

// suppressions indexes valid //simlint:allow directives by target,
// mapping to the written justification. A directive on line L
// suppresses findings of its rule on line L (trailing comment) and line
// L+1 (comment on its own line above the statement).
type suppressions map[allowKey]string

func (s suppressions) allows(rule, file string, line int) (string, bool) {
	if why, ok := s[allowKey{file, line, rule}]; ok {
		return why, true
	}
	why, ok := s[allowKey{file, line - 1, rule}]
	return why, ok
}

// scanDirectives walks p's comments for //simlint:allow directives,
// returning the suppression index plus diagnostics for malformed ones
// (unknown rule, missing justification). A malformed directive never
// suppresses anything.
func scanDirectives(p *Package) (suppressions, []Diagnostic) {
	sup := suppressions{}
	var diags []Diagnostic
	report := func(pos token.Pos, format string, args ...any) {
		diags = append(diags, Diagnostic{
			Pos:  p.Fset.Position(pos),
			Rule: directiveRule,
			Msg:  fmt.Sprintf(format, args...),
		})
	}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//simlint:allow")
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					report(c.Pos(), "simlint:allow needs a rule: //simlint:allow <rule> <why>")
					continue
				}
				rule := fields[0]
				if !knownRule(rule) {
					report(c.Pos(), "simlint:allow names unknown rule %q (have: %s)",
						rule, strings.Join(RuleNames(), ", "))
					continue
				}
				if len(fields) == 1 {
					report(c.Pos(), "simlint:allow %s is missing its justification: every suppression must say why the invariant holds anyway", rule)
					continue
				}
				pos := p.Fset.Position(c.Pos())
				sup[allowKey{pos.Filename, pos.Line, rule}] = strings.Join(fields[1:], " ")
			}
		}
	}
	return sup, diags
}

// Finding is one record of the detailed (JSON) output: a diagnostic,
// either live or suppressed by a justified //simlint:allow directive.
// Suppressed findings carry the directive's justification, so the JSON
// stream is a complete audit of everything the rules saw.
type Finding struct {
	File          string `json:"file"`
	Line          int    `json:"line"`
	Col           int    `json:"col"`
	Rule          string `json:"rule"`
	Msg           string `json:"msg"`
	Suppressed    bool   `json:"suppressed,omitempty"`
	Justification string `json:"justification,omitempty"`
}

// RunDetailed applies rules to p and returns every finding — live and
// suppressed — sorted by position. Malformed //simlint:allow directives
// are reported under the unsuppressable "simlint" pseudo-rule.
func RunDetailed(p *Package, rules []Rule) []Finding {
	sup, diags := scanDirectives(p)
	var findings []Finding
	for _, d := range diags {
		findings = append(findings, Finding{
			File: d.Pos.Filename, Line: d.Pos.Line, Col: d.Pos.Column,
			Rule: d.Rule, Msg: d.Msg,
		})
	}
	for _, r := range rules {
		rule := r
		report := func(pos token.Pos, format string, args ...any) {
			position := p.Fset.Position(pos)
			f := Finding{
				File: position.Filename, Line: position.Line, Col: position.Column,
				Rule: rule.Name, Msg: fmt.Sprintf(format, args...),
			}
			if why, ok := sup.allows(rule.Name, position.Filename, position.Line); ok {
				f.Suppressed = true
				f.Justification = why
			}
			findings = append(findings, f)
		}
		rule.Check(p, report)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Msg < b.Msg
	})
	return findings
}

// Run applies rules to p and returns the surviving diagnostics sorted
// by position, after honoring //simlint:allow directives. Malformed
// directives are themselves reported (and suppress nothing).
func Run(p *Package, rules []Rule) []Diagnostic {
	var diags []Diagnostic
	for _, f := range RunDetailed(p, rules) {
		if f.Suppressed {
			continue
		}
		diags = append(diags, Diagnostic{
			Pos:  token.Position{Filename: f.File, Line: f.Line, Column: f.Col},
			Rule: f.Rule,
			Msg:  f.Msg,
		})
	}
	return diags
}

// qualifierPath resolves sel's qualifier to the import path of the
// package it names, or "" when sel is not a package-qualified selector
// (e.g. a field or method access).
func qualifierPath(p *Package, sel *ast.SelectorExpr) string {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	pn, ok := p.Info.Uses[id].(*types.PkgName)
	if !ok {
		return ""
	}
	return pn.Imported().Path()
}
