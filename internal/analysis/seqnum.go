package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// serialType reports whether t is one of the RFC 1982 serial-number
// types (seqnum.V, seqnum.S16, and the RFC 8260 seqnum.MID/seqnum.FSN),
// returning its name. Matching is by package name + type name so
// fixtures and the real tree both resolve.
func serialType(t types.Type) (string, bool) {
	if t == nil {
		return "", false
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Name() != "seqnum" {
		return "", false
	}
	switch obj.Name() {
	case "V", "S16", "MID", "FSN":
		return obj.Name(), true
	}
	return "", false
}

// SeqnumCmp flags magnitude comparisons on serial numbers. TCP
// sequence numbers and SCTP TSN/SSN values wrap modulo 2^32 (2^16), so
// a raw < or > inverts its answer once the two operands straddle the
// wrap point — the classic gap-ack/wraparound bug class (RFC 1982; RFC
// 4960 §1.3–§5). Only the serial-order helpers (Less, LessEq, Greater,
// GreaterEq, InWindow, seqnum.Min/Max) compare correctly. == and != are
// fine: serial equality is plain equality.
func SeqnumCmp() Rule {
	ops := map[token.Token]string{
		token.LSS: "<",
		token.GTR: ">",
		token.LEQ: "<=",
		token.GEQ: ">=",
	}
	return Rule{
		Name: "seqnum",
		Doc:  "serial numbers (seqnum.V/S16/MID/FSN) must be compared with the RFC 1982 helpers, never raw </>/<=/>= or builtin min/max",
		Check: func(p *Package, report Reporter) {
			for _, f := range p.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					switch n := n.(type) {
					case *ast.BinaryExpr:
						op, banned := ops[n.Op]
						if !banned {
							return true
						}
						for _, side := range []ast.Expr{n.X, n.Y} {
							if name, ok := serialType(p.Info.TypeOf(side)); ok {
								report(n.OpPos, "raw %s on seqnum.%s compares magnitude and inverts at wraparound; use the serial-order helpers (Less/LessEq/Greater/GreaterEq/InWindow)", op, name)
								break
							}
						}
					case *ast.CallExpr:
						id, ok := n.Fun.(*ast.Ident)
						if !ok {
							return true
						}
						if b, ok := p.Info.Uses[id].(*types.Builtin); !ok || (b.Name() != "min" && b.Name() != "max") {
							return true
						}
						for _, arg := range n.Args {
							if name, ok := serialType(p.Info.TypeOf(arg)); ok {
								report(n.Pos(), "builtin %s on seqnum.%s picks the numerically larger value, not the serial-order later one; use seqnum.Min/seqnum.Max", id.Name, name)
								break
							}
						}
					}
					return true
				})
			}
		},
	}
}
