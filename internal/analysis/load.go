package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// sharedLoaders is the process-wide loader registry, keyed by absolute
// module root. go/importer's source importer parses and type-checks
// every standard-library package it touches from source, which
// dominates lint time: a cold import of net/fmt/time and friends costs
// a couple of seconds, and before this cache every test and every
// swept package directory that built its own Loader paid it again.
// Sharing one Loader per module root means the stdlib is imported once
// per process — the full-tree sweep and the whole analysis test suite
// run in roughly the time one package used to take. Loaders are not
// safe for concurrent use; the mutex only guards the registry itself.
var (
	sharedLoaderMu sync.Mutex
	sharedLoaders  = map[string]*Loader{}
)

// SharedLoader returns the process-wide cached loader for the module
// rooted at root, creating it on first use.
func SharedLoader(root string) (*Loader, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	sharedLoaderMu.Lock()
	defer sharedLoaderMu.Unlock()
	if l, ok := sharedLoaders[abs]; ok {
		return l, nil
	}
	l, err := NewLoader(abs)
	if err != nil {
		return nil, err
	}
	sharedLoaders[abs] = l
	return l, nil
}

// Package is one parsed and fully type-checked package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// Loader parses and type-checks packages of the enclosing module using
// only the standard library: module-internal imports are resolved
// straight from the source tree, and everything else (the standard
// library) goes through go/importer's source importer. go.mod stays
// dependency-free.
type Loader struct {
	Root   string // absolute module root
	Module string // module path from go.mod
	fset   *token.FileSet
	std    types.Importer
	byDir  map[string]*Package
	active map[string]bool // cycle guard
}

// NewLoader returns a loader rooted at the module directory root.
func NewLoader(root string) (*Loader, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	mod, err := modulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Root:   abs,
		Module: mod,
		fset:   fset,
		std:    importer.ForCompiler(fset, "source", nil),
		byDir:  make(map[string]*Package),
		active: make(map[string]bool),
	}, nil
}

// modulePath extracts the module directive from a go.mod file.
func modulePath(gomod string) (string, error) {
	b, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(b), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("no module directive in %s", gomod)
}

// Import implements types.Importer: module-internal paths load from the
// source tree, the rest from the standard library.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if rel, ok := l.moduleRel(path); ok {
		p, err := l.LoadDir(filepath.Join(l.Root, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// moduleRel returns the module-relative slash path for a module-internal
// import path, and whether path is module-internal at all.
func (l *Loader) moduleRel(path string) (string, bool) {
	if path == l.Module {
		return ".", true
	}
	if rest, ok := strings.CutPrefix(path, l.Module+"/"); ok {
		return rest, true
	}
	return "", false
}

// importPathFor maps a directory under the module root to its import
// path.
func (l *Loader) importPathFor(dir string) string {
	rel, err := filepath.Rel(l.Root, dir)
	if err != nil || rel == ".." || strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
		return filepath.ToSlash(dir)
	}
	if rel == "." {
		return l.Module
	}
	return l.Module + "/" + filepath.ToSlash(rel)
}

// LoadDir parses and type-checks the package in dir (ignoring _test.go
// files). Results are cached; a type error anywhere fails the load, so
// every rule runs over a fully resolved tree.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	if p, ok := l.byDir[abs]; ok {
		return p, nil
	}
	if l.active[abs] {
		return nil, fmt.Errorf("import cycle through %s", abs)
	}
	l.active[abs] = true
	defer delete(l.active, abs)

	entries, err := os.ReadDir(abs)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no buildable Go files in %s", abs)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(abs, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	importPath := l.importPathFor(abs)
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var terrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { terrs = append(terrs, err) },
	}
	tpkg, _ := conf.Check(importPath, l.fset, files, info)
	if len(terrs) > 0 {
		return nil, fmt.Errorf("type-check %s: %v", importPath, terrs[0])
	}
	p := &Package{
		ImportPath: importPath,
		Dir:        abs,
		Fset:       l.fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}
	l.byDir[abs] = p
	return p, nil
}

// ModuleDirs returns every package directory under root that holds
// buildable (non-test) Go files, skipping testdata trees and hidden
// directories. Paths come back sorted and absolute.
func ModuleDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		name := d.Name()
		if strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") &&
			!strings.HasPrefix(name, ".") && !strings.HasPrefix(name, "_") {
			dirs = append(dirs, filepath.Dir(path))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	out := dirs[:0]
	for i, d := range dirs {
		if i == 0 || d != dirs[i-1] {
			out = append(out, d)
		}
	}
	return out, nil
}
