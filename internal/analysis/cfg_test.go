package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"path/filepath"
	"strings"
	"testing"
)

// buildFromSrc parses one function declaration and builds its CFG. The
// source is the body of `func f()`; mark points are calls to
// single-letter functions (a(), b(), ...) that the assertions locate.
func buildFromSrc(t *testing.T, body string) *CFG {
	t.Helper()
	src := "package p\n" +
		"func a(){}\nfunc b(){}\nfunc c(){}\nfunc d(){}\nfunc e(){}\n" +
		"func cond() bool { return true }\n" +
		"func f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "t.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "f" {
			return BuildCFG(fd.Body)
		}
	}
	t.Fatal("func f not found")
	return nil
}

// blockOf finds the block whose nodes contain a call to name.
func blockOf(t *testing.T, c *CFG, name string) *Block {
	t.Helper()
	for _, blk := range c.Blocks {
		for _, n := range blk.Nodes {
			found := false
			ast.Inspect(n, func(x ast.Node) bool {
				if call, ok := x.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == name {
						found = true
					}
				}
				return !found
			})
			if found {
				return blk
			}
		}
	}
	t.Fatalf("no block contains a call to %s()", name)
	return nil
}

// namedBlock resolves a mark name or one of the virtual names.
func namedBlock(t *testing.T, c *CFG, name string) *Block {
	switch name {
	case "entry":
		return c.Entry()
	case "exit":
		return c.Exit
	case "panic":
		return c.Panic
	}
	return blockOf(t, c, name)
}

// canReach reports whether to is reachable from from along Succs.
func canReach(from, to *Block) bool {
	seen := map[*Block]bool{}
	stack := []*Block{from}
	for len(stack) > 0 {
		blk := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if blk == to {
			return true
		}
		if seen[blk] {
			continue
		}
		seen[blk] = true
		stack = append(stack, blk.Succs...)
	}
	return false
}

func TestBuildCFG(t *testing.T) {
	cases := []struct {
		name     string
		body     string
		reach    [][2]string // from-mark can reach to-mark
		notReach [][2]string
	}{
		{
			name: "if/else",
			body: `if cond() { a() } else { b() }; c()`,
			reach: [][2]string{
				{"entry", "a"}, {"entry", "b"},
				{"a", "c"}, {"b", "c"}, {"c", "exit"},
			},
			notReach: [][2]string{{"a", "b"}, {"b", "a"}},
		},
		{
			name:  "if without else has skip edge",
			body:  `a(); if cond() { b() }; c()`,
			reach: [][2]string{{"a", "c"}, {"a", "b"}, {"b", "c"}},
		},
		{
			name: "for loop with break and continue",
			body: `for i := 0; i < 3; i++ {
				a()
				if cond() { break }
				if cond() { continue }
				b()
			}
			c()`,
			reach: [][2]string{
				{"entry", "a"}, {"a", "c"}, // break path
				{"a", "b"}, {"b", "a"}, // back edge via post
				{"a", "a"}, // continue re-enters the body
			},
		},
		{
			name:     "infinite for hides the tail",
			body:     `a(); for { b() }; c()`,
			reach:    [][2]string{{"a", "b"}, {"b", "b"}},
			notReach: [][2]string{{"entry", "c"}, {"b", "exit"}},
		},
		{
			name: "range loops and exits",
			body: `var xs []int
			for _, x := range xs { _ = x; a() }
			b()`,
			reach: [][2]string{{"entry", "a"}, {"entry", "b"}, {"a", "a"}, {"a", "b"}},
		},
		{
			name: "switch with fallthrough and default",
			body: `switch x := 1; x {
			case 1:
				a()
				fallthrough
			case 2:
				b()
			default:
				c()
			}
			d()`,
			reach: [][2]string{
				{"entry", "a"}, {"entry", "b"}, {"entry", "c"},
				{"a", "b"}, // fallthrough edge
				{"b", "d"}, {"c", "d"},
			},
			notReach: [][2]string{{"a", "c"}, {"b", "c"}},
		},
		{
			name: "switch without default reaches after directly",
			body: `x := 1
			switch x {
			case 1:
				a()
			}
			b()`,
			reach: [][2]string{{"entry", "b"}, {"a", "b"}},
		},
		{
			name: "labeled break exits the outer loop",
			body: `outer:
			for {
				for {
					a()
					break outer
				}
			}
			b()`,
			reach:    [][2]string{{"entry", "a"}, {"a", "b"}, {"b", "exit"}},
			notReach: [][2]string{{"a", "a"}},
		},
		{
			name: "labeled continue restarts the outer loop",
			body: `outer:
			for i := 0; i < 2; i++ {
				for {
					a()
					continue outer
				}
			}
			b()`,
			reach: [][2]string{{"a", "a"}, {"a", "b"}},
		},
		{
			name:  "defer stays on the straight-line path",
			body:  `defer a(); b()`,
			reach: [][2]string{{"a", "b"}, {"b", "exit"}},
		},
		{
			name:     "panic leaves via the panic block",
			body:     `a(); if cond() { panic("x") }; b()`,
			reach:    [][2]string{{"a", "panic"}, {"a", "b"}, {"b", "exit"}},
			notReach: [][2]string{{"panic", "exit"}},
		},
		{
			name: "code after return is unreachable",
			body: `a()
			if cond() {
				b()
				return
			}
			c()`,
			reach:    [][2]string{{"b", "exit"}, {"a", "c"}},
			notReach: [][2]string{{"b", "c"}},
		},
		{
			name: "goto forward and backward",
			body: `a()
			goto skip
			b()
		skip:
			c()
			if cond() { goto skip }
			d()`,
			reach:    [][2]string{{"a", "c"}, {"c", "c"}, {"c", "d"}},
			notReach: [][2]string{{"entry", "b"}},
		},
		{
			name: "select: every clause is a successor",
			body: `ch := make(chan int)
			select {
			case <-ch:
				a()
			case ch <- 1:
				b()
			default:
				c()
			}
			d()`,
			reach: [][2]string{
				{"entry", "a"}, {"entry", "b"}, {"entry", "c"},
				{"a", "d"}, {"b", "d"}, {"c", "d"},
			},
			notReach: [][2]string{{"a", "b"}},
		},
		{
			name: "type switch covers all clauses",
			body: `var v interface{} = 1
			switch v.(type) {
			case int:
				a()
			case string:
				b()
			}
			c()`,
			reach: [][2]string{{"entry", "a"}, {"entry", "b"}, {"a", "c"}, {"b", "c"}},
		},
		{
			name:     "os.Exit terminates the path",
			body:     `a(); os.Exit(1); b()`,
			reach:    [][2]string{{"a", "panic"}},
			notReach: [][2]string{{"a", "b"}, {"a", "exit"}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := buildFromSrc(t, tc.body)
			for _, pair := range tc.reach {
				from, to := namedBlock(t, c, pair[0]), namedBlock(t, c, pair[1])
				ok := false
				if pair[0] == pair[1] {
					// Self-reachability means a real cycle: via a successor.
					for _, s := range from.Succs {
						if canReach(s, to) {
							ok = true
						}
					}
				} else {
					ok = canReach(from, to)
				}
				if !ok {
					t.Errorf("%s should reach %s", pair[0], pair[1])
				}
			}
			for _, pair := range tc.notReach {
				from, to := namedBlock(t, c, pair[0]), namedBlock(t, c, pair[1])
				bad := false
				if pair[0] == pair[1] {
					for _, s := range from.Succs {
						if canReach(s, to) {
							bad = true
						}
					}
				} else {
					bad = canReach(from, to)
				}
				if bad {
					t.Errorf("%s should NOT reach %s", pair[0], pair[1])
				}
			}
			checkCFGInvariants(t, c, tc.name)
		})
	}
}

func TestDominators(t *testing.T) {
	c := buildFromSrc(t, `a(); if cond() { b() } else { c() }; d()`)
	idom := c.Dominators()
	ba, bb, bc, bd := blockOf(t, c, "a"), blockOf(t, c, "b"), blockOf(t, c, "c"), blockOf(t, c, "d")
	for _, blk := range []*Block{bb, bc, bd, c.Exit} {
		if !Dominates(idom, ba, blk) {
			t.Errorf("the condition block should dominate block %d", blk.Index)
		}
	}
	if Dominates(idom, bb, bd) {
		t.Error("a branch must not dominate the merge point")
	}
	if Dominates(idom, bb, bc) || Dominates(idom, bc, bb) {
		t.Error("sibling branches must not dominate each other")
	}
	if !Dominates(idom, bd, bd) {
		t.Error("a block dominates itself")
	}
}

// checkCFGInvariants asserts the structural invariants every CFG must
// satisfy: Succs/Preds mirror each other, and every reachable
// non-virtual block has at least one successor (paths only end at Exit
// or Panic).
func checkCFGInvariants(t *testing.T, c *CFG, where string) {
	t.Helper()
	for _, blk := range c.Blocks {
		for _, s := range blk.Succs {
			found := false
			for _, p := range s.Preds {
				if p == blk {
					found = true
				}
			}
			if !found {
				t.Errorf("%s: block %d → %d edge missing its Pred mirror", where, blk.Index, s.Index)
			}
		}
		for _, p := range blk.Preds {
			found := false
			for _, s := range p.Succs {
				if s == blk {
					found = true
				}
			}
			if !found {
				t.Errorf("%s: block %d ← %d edge missing its Succ mirror", where, blk.Index, p.Index)
			}
		}
	}
	for blk := range c.Reachable() {
		if blk == c.Exit || blk == c.Panic {
			continue
		}
		if len(blk.Succs) == 0 {
			t.Errorf("%s: reachable block %d has no successors (dead-end outside Exit/Panic)", where, blk.Index)
		}
	}
}

// TestCFGInvariantsOverModule is the fuzz-style coverage pass: build a
// CFG for every function in the real module tree and assert the
// structural invariants hold on each. Real code exercises combinations
// no table can enumerate (nested labeled loops in selects, switches in
// defers, ...).
func TestCFGInvariantsOverModule(t *testing.T) {
	dirs, err := ModuleDirs("../..")
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	funcs := 0
	for _, dir := range dirs {
		matches, err := filepath.Glob(filepath.Join(dir, "*.go"))
		if err != nil {
			t.Fatal(err)
		}
		for _, path := range matches {
			if strings.HasSuffix(path, "_test.go") {
				continue
			}
			file, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
			if err != nil {
				t.Fatalf("parse %s: %v", path, err)
			}
			ast.Inspect(file, func(n ast.Node) bool {
				var body *ast.BlockStmt
				switch fn := n.(type) {
				case *ast.FuncDecl:
					body = fn.Body
				case *ast.FuncLit:
					body = fn.Body
				}
				if body == nil {
					return true
				}
				funcs++
				c := BuildCFG(body)
				checkCFGInvariants(t, c, fset.Position(body.Pos()).String())
				return true
			})
		}
	}
	if funcs < 100 {
		t.Fatalf("expected to sweep hundreds of functions, got %d", funcs)
	}
	t.Logf("checked CFG invariants over %d functions", funcs)
}

func TestForwardSolveCountsPaths(t *testing.T) {
	// A may-analysis counting whether a() has run: ⊥=0 (not run), 1
	// (ran), 2=⊤ (unknown). After `if cond() { a() }` the merge must be ⊤.
	c := buildFromSrc(t, `if cond() { a() }; b()`)
	spec := DataflowSpec[int]{
		Entry: 0,
		Join: func(x, y int) int {
			if x == y {
				return x
			}
			return 2
		},
		Transfer: func(blk *Block, in int) int {
			out := in
			for _, n := range blk.Nodes {
				ast.Inspect(n, func(x ast.Node) bool {
					if call, ok := x.(*ast.CallExpr); ok {
						if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "a" && out == 0 {
							out = 1
						}
					}
					return true
				})
			}
			return out
		},
		Equal: func(x, y int) bool { return x == y },
	}
	in, out := ForwardSolve(c, spec)
	if got := out[blockOf(t, c, "a")]; got != 1 {
		t.Errorf("after a(): fact = %d, want 1", got)
	}
	if got := in[blockOf(t, c, "b")]; got != 2 {
		t.Errorf("at the merge before b(): fact = %d, want ⊤ (2)", got)
	}
	if got := in[c.Exit]; got != 2 {
		t.Errorf("at exit: fact = %d, want ⊤ (2)", got)
	}
}

func TestForwardSolveLoopReachesFixpoint(t *testing.T) {
	// A counting lattice capped at 3 (⊤): the loop body must drive the
	// count to ⊤ rather than iterating forever.
	c := buildFromSrc(t, `for i := 0; i < 10; i++ { a() }; b()`)
	spec := DataflowSpec[int]{
		Entry: 0,
		Join: func(x, y int) int {
			if x > y {
				return x
			}
			return y
		},
		Transfer: func(blk *Block, in int) int {
			out := in
			for _, n := range blk.Nodes {
				ast.Inspect(n, func(x ast.Node) bool {
					if call, ok := x.(*ast.CallExpr); ok {
						if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "a" && out < 3 {
							out++
						}
					}
					return true
				})
			}
			return out
		},
		Equal: func(x, y int) bool { return x == y },
	}
	_, out := ForwardSolve(c, spec)
	if got := out[blockOf(t, c, "a")]; got != 3 {
		t.Errorf("loop body fact = %d, want saturated ⊤ (3)", got)
	}
}
