package analysis

// epochguard: epoch-stamped state may only be mutated under an epoch
// comparison against the frame that triggered the mutation.
//
// The rmcast and rpi protocols version their per-operation state with
// an epoch that is bumped on root failover. A handler that receives a
// frame and mutates operation state without first comparing the frame's
// epoch to the state's epoch will happily apply a stale retransmission
// from a deposed root — the exact class of bug behind stale-ABORT
// verdicts killing live operations.
//
// The rule is shape-based so it needs no per-protocol configuration:
//
//   - a "frame" is a by-value struct parameter whose type has a field
//     named (case-insensitively) "epoch"
//   - "epoch-stamped state" is any value reached through a pointer to a
//     struct that also has such a field
//   - a "guard" is a comparison mentioning the frame's epoch field
//     (f.epoch != o.epoch, f.epoch < o.epoch, ...), or a call passing
//     the frame to a module function that performs such a comparison
//     itself (a validator, e.g. rmcast's recvOp)
//
// Every write to a field of epoch-stamped state inside a frame-taking
// function must be dominated by a block containing a guard. Dominance —
// not mere presence — is what catches the real bugs: a comparison
// tucked inside the is-root arm does not protect the receiver arm.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// epochField returns the name of t's epoch field when t (through
// pointers) is a struct with a field named like "epoch", else "".
func epochField(t types.Type) string {
	named := namedOf(t)
	var st *types.Struct
	if named != nil {
		st, _ = named.Underlying().(*types.Struct)
	} else if u, ok := t.Underlying().(*types.Struct); ok {
		st = u
	}
	if st == nil {
		return ""
	}
	for i := 0; i < st.NumFields(); i++ {
		if strings.EqualFold(st.Field(i).Name(), "epoch") {
			return st.Field(i).Name()
		}
	}
	return ""
}

// frameParams returns the by-value struct parameters of fd that carry
// an epoch field, mapped to that field's name.
func frameParams(p *Package, fd *ast.FuncDecl) map[types.Object]string {
	out := make(map[types.Object]string)
	for i, obj := range paramObjects(p, fd) {
		if i < 0 {
			continue // receivers hold state; frames arrive as arguments
		}
		if _, isPtr := obj.Type().Underlying().(*types.Pointer); isPtr {
			continue // pointer params are state, not frames
		}
		if f := epochField(obj.Type()); f != "" {
			out[obj] = f
		}
	}
	return out
}

// stampedWrite reports whether lhs writes a field of epoch-stamped
// state: a selector whose base is (a pointer to) a struct with an epoch
// field. Writes through by-value frame params mutate a local copy and
// are exempt.
func stampedWrite(p *Package, lhs ast.Expr) (types.Type, bool) {
	sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	tv, ok := p.Info.Types[sel.X]
	if !ok {
		return nil, false
	}
	if _, isPtr := tv.Type.Underlying().(*types.Pointer); !isPtr {
		return nil, false
	}
	if epochField(tv.Type) == "" {
		return nil, false
	}
	return tv.Type, true
}

// isEpochValidator reports (memoized) whether fn compares some
// by-value epoch-frame parameter's epoch field against anything in its
// body, directly or by forwarding the frame to another validator.
func (m *Module) isEpochValidator(fn *types.Func) bool {
	if fn == nil {
		return false
	}
	if v, ok := m.valid[fn]; ok {
		return v
	}
	if m.validBusy[fn] {
		return false
	}
	src, ok := m.funcDecl(fn)
	if !ok {
		return false
	}
	frames := frameParams(src.pkg, src.decl)
	if len(frames) == 0 {
		m.valid[fn] = false
		return false
	}
	m.validBusy[fn] = true
	found := false
	ast.Inspect(src.decl.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		if isEpochGuardNode(m, src.pkg, frames, n) {
			found = true
			return false
		}
		return true
	})
	delete(m.validBusy, fn)
	m.valid[fn] = found
	return found
}

// frameEpochSelector reports whether e reads the epoch field of one of
// the frame params.
func frameEpochSelector(p *Package, frames map[types.Object]string, e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return false
	}
	field, ok := frames[p.Info.Uses[id]]
	return ok && sel.Sel.Name == field
}

// isEpochGuardNode reports whether n guards subsequent code: an epoch
// comparison against a frame, or a call handing a frame to a validator.
func isEpochGuardNode(m *Module, p *Package, frames map[types.Object]string, n ast.Node) bool {
	switch x := n.(type) {
	case *ast.BinaryExpr:
		switch x.Op {
		case token.EQL, token.NEQ, token.LSS, token.GTR, token.LEQ, token.GEQ:
			return frameEpochSelector(p, frames, x.X) || frameEpochSelector(p, frames, x.Y)
		}
	case *ast.CallExpr:
		fn := calleeOf(p.Info, x)
		if fn == nil || !moduleFunc(m, fn) {
			return false
		}
		passesFrame := false
		for _, arg := range x.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
				if _, isFrame := frames[p.Info.Uses[id]]; isFrame {
					passesFrame = true
					break
				}
			}
		}
		return passesFrame && m.isEpochValidator(fn)
	}
	return false
}

// EpochGuard checks that frame handlers only mutate epoch-stamped state
// after an epoch comparison against the frame.
func EpochGuard(m *Module) Rule {
	return Rule{
		Name: "epochguard",
		Doc:  "frame handlers must compare the frame's epoch against operation state before mutating it",
		Check: func(p *Package, report Reporter) {
			for _, f := range p.Files {
				for _, d := range f.Decls {
					fd, ok := d.(*ast.FuncDecl)
					if !ok || fd.Body == nil {
						continue
					}
					m.checkEpochGuards(p, fd, report)
				}
			}
		},
	}
}

func (m *Module) checkEpochGuards(p *Package, fd *ast.FuncDecl, report Reporter) {
	frames := frameParams(p, fd)
	if len(frames) == 0 {
		return
	}
	cfg := BuildCFG(fd.Body)
	idom := cfg.Dominators()

	guarded := make(map[*Block]bool)
	for _, b := range cfg.ReversePostorder() {
		for _, n := range b.Nodes {
			hit := false
			ast.Inspect(n, func(x ast.Node) bool {
				if hit {
					return false
				}
				if _, isLit := x.(*ast.FuncLit); isLit {
					return false
				}
				if isEpochGuardNode(m, p, frames, x) {
					hit = true
					return false
				}
				return true
			})
			if hit {
				guarded[b] = true
				break
			}
		}
	}

	dominatedByGuard := func(b *Block) bool {
		for cur := b; cur != nil; cur = idom[cur] {
			if guarded[cur] {
				return true
			}
			if cur == cfg.Entry() {
				break
			}
		}
		return false
	}

	for _, b := range cfg.ReversePostorder() {
		if dominatedByGuard(b) {
			continue
		}
		for _, n := range b.Nodes {
			ast.Inspect(n, func(x ast.Node) bool {
				if _, isLit := x.(*ast.FuncLit); isLit {
					return false
				}
				var lhss []ast.Expr
				switch s := x.(type) {
				case *ast.AssignStmt:
					lhss = s.Lhs
				case *ast.IncDecStmt:
					lhss = []ast.Expr{s.X}
				default:
					return true
				}
				for _, lhs := range lhss {
					if t, ok := stampedWrite(p, lhs); ok {
						report(lhs.Pos(), "write to epoch-stamped %s is not dominated by an epoch comparison against the frame; a stale retransmission would be applied",
							t.String())
					}
				}
				return true
			})
		}
	}
}
