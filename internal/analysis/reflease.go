package analysis

// reflease: flow-sensitive pooled-buffer lifetime checking.
//
// Two cooperating analyses run over every function:
//
//  1. Local acquisition tracking: a local assigned from
//     netsim.NewPooledPacket or wire.GetBuf owns one reference. Retain
//     adds one, Release/PutBuf drops one, a deferred release counts at
//     exit, and passing the value to a callee applies that callee's
//     ownership summary (consume / borrow / unknown). A normal-return
//     path on which the definite count stays positive is a leak.
//
//  2. Carrier parameters: a parameter of a configured carrier type
//     (sctp.Message, whose Data field is a wire-pool buffer) moves
//     ownership by convention. If some return path definitely consumes
//     the carrier (recycles Data, stores it, forwards it to a consuming
//     callee or callback) while another definitely drops it, the
//     dropping path leaks the pooled payload.
//
// Reporting is definite-only, in the go vet tradition: a merge of
// different reference counts, an escape (store, alias, closure
// capture), or an unknown callee silences the variable rather than
// guessing. Loops with data-dependent Retain/Release balancing
// (netsim's multicast fan-out) therefore stay silent; straight-line
// drops on error and early-return paths do not.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// poolKind classifies a callee's effect on a pooled value.
type poolKind int

const (
	poolNone    poolKind = iota
	poolAcquire          // returns a fresh owned buffer/packet
	poolRelease          // consumes one reference (receiver or arg 0)
	poolRetain           // adds one reference (receiver)
)

// poolKindOf classifies module functions that create or consume pooled
// references.
func (m *Module) poolKindOf(fn *types.Func) poolKind {
	if fn == nil || fn.Pkg() == nil {
		return poolNone
	}
	rel, ok := m.Rel(fn.Pkg().Path())
	if !ok {
		return poolNone
	}
	recvPkg, recvType := methodOn(fn)
	switch {
	case rel == "internal/wire" && recvType == "":
		switch fn.Name() {
		case "GetBuf":
			return poolAcquire
		case "PutBuf":
			return poolRelease
		}
	case rel == "internal/netsim" && recvType == "":
		if fn.Name() == "NewPooledPacket" {
			return poolAcquire
		}
	case recvType == "Packet":
		if prel, ok := m.Rel(recvPkg); ok && prel == "internal/netsim" {
			switch fn.Name() {
			case "Release":
				return poolRelease
			case "Retain":
				return poolRetain
			}
		}
	}
	return poolNone
}

// carrier describes a struct type whose instances carry a pooled buffer
// in a named field and move its ownership by convention.
type carrier struct {
	pkgRel string
	typ    string
	field  string
}

var carriers = []carrier{
	{pkgRel: "internal/sctp", typ: "Message", field: "Data"},
}

// carrierOf returns the carrier config for a type (through pointers),
// or nil.
func (m *Module) carrierOf(t types.Type) *carrier {
	named := namedOf(t)
	if named == nil || named.Obj().Pkg() == nil {
		return nil
	}
	rel, ok := m.Rel(named.Obj().Pkg().Path())
	if !ok {
		return nil
	}
	for i := range carriers {
		if carriers[i].pkgRel == rel && carriers[i].typ == named.Obj().Name() {
			return &carriers[i]
		}
	}
	return nil
}

// namedOf unwraps pointers and aliases down to the named type, or nil.
func namedOf(t types.Type) *types.Named {
	for {
		switch x := t.(type) {
		case *types.Pointer:
			t = x.Elem()
		case *types.Alias:
			t = types.Unalias(x)
		case *types.Named:
			return x
		default:
			return nil
		}
	}
}

// methodOn returns the defining package path and bare type name of a
// method's receiver, or ("", "") for plain functions.
func methodOn(fn *types.Func) (pkgPath, typeName string) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", ""
	}
	named := namedOf(sig.Recv().Type())
	if named == nil || named.Obj().Pkg() == nil {
		return "", ""
	}
	return named.Obj().Pkg().Path(), named.Obj().Name()
}

// moduleFunc reports whether fn is declared inside this module.
func moduleFunc(m *Module, fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	_, ok := m.Rel(fn.Pkg().Path())
	return ok
}

// probeFieldCall reports whether call invokes a func stored in a field
// of a Probe/Observer struct — the oracle-hook convention: hooks
// observe, they never take ownership of what they are shown.
func probeFieldCall(p *Package, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if s, ok := p.Info.Selections[sel]; ok {
		if _, isMethod := s.Obj().(*types.Func); isMethod {
			return false
		}
	}
	tv, ok := p.Info.Types[sel.X]
	if !ok {
		return false
	}
	named := namedOf(tv.Type)
	if named == nil {
		return false
	}
	name := named.Obj().Name()
	return strings.Contains(name, "Probe") || strings.Contains(name, "Observer")
}

// --- ownership summaries (carrier parameters, callee effects) --------

// ownEffect is a callee's summarized effect on one pooled parameter.
type ownEffect int

const (
	ownUnknown ownEffect = iota // mixed or unanalyzable: caller stops tracking
	ownBorrow                   // never consumes: obligation stays with the caller
	ownConsume                  // consumes on every normal path: obligation discharged
)

// ownState is the per-path state of one owned value: held (obligation
// outstanding), consumed (discharged), or top (paths disagree /
// aliased — unknown).
type ownState int8

const (
	ownStateHeld ownState = iota
	ownStateConsumed
	ownStateTop
)

func joinOwn(a, b ownState) ownState {
	if a == b {
		return a
	}
	return ownStateTop
}

// ownEffectOf computes (memoized) the ownership summary of fn for the
// parameter at index param (receiver = -1): what happens to a pooled
// value the caller passes there. Functions without source and recursive
// cycles summarize as unknown.
func (m *Module) ownEffectOf(fn *types.Func, param int) ownEffect {
	key := sumKey{fn, param}
	if eff, ok := m.own[key]; ok {
		return eff
	}
	if m.ownBusy[key] {
		return ownUnknown
	}
	src, ok := m.funcDecl(fn)
	if !ok {
		return ownUnknown
	}
	obj := paramObjects(src.pkg, src.decl)[param]
	if obj == nil {
		return ownUnknown
	}
	m.ownBusy[key] = true
	cfg := BuildCFG(src.decl.Body)
	_, out := ForwardSolve(cfg, m.ownSpec(src.pkg, obj))
	delete(m.ownBusy, key)

	sawExit := false
	allConsumed, allHeld := true, true
	for _, pred := range cfg.Exit.Preds {
		st, ok := out[pred]
		if !ok {
			continue
		}
		sawExit = true
		if st != ownStateConsumed {
			allConsumed = false
		}
		if st != ownStateHeld {
			allHeld = false
		}
	}
	eff := ownUnknown
	switch {
	case !sawExit: // no normal exit (infinite loop / always panics)
	case allConsumed:
		eff = ownConsume
	case allHeld:
		eff = ownBorrow
	}
	m.own[key] = eff
	return eff
}

func (m *Module) ownSpec(p *Package, target types.Object) DataflowSpec[ownState] {
	return DataflowSpec[ownState]{
		Entry: ownStateHeld,
		Join:  joinOwn,
		Transfer: func(b *Block, in ownState) ownState {
			w := &ownWalk{m: m, p: p, target: target, st: in}
			for _, n := range b.Nodes {
				w.node(n)
			}
			return w.st
		},
		Equal: func(a, b ownState) bool { return a == b },
	}
}

// ownWalk applies the ownership events of CFG nodes to one target.
type ownWalk struct {
	m      *Module
	p      *Package
	target types.Object
	st     ownState
}

func (w *ownWalk) isTarget(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && w.p.Info.Uses[id] == w.target
}

// isTargetField matches the carrier's pooled payload: m.Data.
func (w *ownWalk) isTargetField(e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && w.p.Info.Uses[id] == w.target
}

func (w *ownWalk) consume() {
	if w.st == ownStateConsumed {
		w.st = ownStateTop // double consume: ownership story inconsistent
		return
	}
	if w.st == ownStateHeld {
		w.st = ownStateConsumed
	}
}

func (w *ownWalk) node(n ast.Node) {
	if w.st == ownStateTop {
		return
	}
	handled := make(map[ast.Node]bool)
	ast.Inspect(n, func(x ast.Node) bool {
		if x == nil {
			return false
		}
		if handled[x] {
			return false
		}
		switch x := x.(type) {
		case *ast.FuncLit:
			// A closure capturing the target may consume it later.
			ast.Inspect(x.Body, func(y ast.Node) bool {
				if e, ok := y.(ast.Expr); ok && w.isTarget(e) {
					w.st = ownStateTop
				}
				return true
			})
			return false
		case *ast.CallExpr:
			w.call(x, handled)
		case *ast.AssignStmt:
			for i, rhs := range x.Rhs {
				if !w.isTarget(rhs) || i >= len(x.Lhs) {
					continue
				}
				if _, plain := ast.Unparen(x.Lhs[i]).(*ast.Ident); plain {
					w.st = ownStateTop // aliasing: x := m
				} else {
					w.consume() // stored into a structure: ownership moves
				}
				handled[rhs] = true
			}
		case *ast.ReturnStmt:
			for _, r := range x.Results {
				if w.isTarget(r) {
					w.consume() // ownership to the caller
					handled[r] = true
				}
			}
		case *ast.SendStmt:
			if w.isTarget(x.Value) {
				w.consume()
				handled[x.Value] = true
			}
		case *ast.SelectorExpr:
			if w.isTarget(x.X) {
				handled[x.X] = true // field read: borrow
			}
		case *ast.IndexExpr:
			if w.isTarget(x.X) {
				handled[x.X] = true // element read/write: borrow
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND && w.isTarget(x.X) {
				w.st = ownStateTop
				handled[x.X] = true
			}
		case *ast.BinaryExpr:
			if x.Op == token.EQL || x.Op == token.NEQ {
				if w.isTarget(x.X) {
					handled[x.X] = true
				}
				if w.isTarget(x.Y) {
					handled[x.Y] = true
				}
			}
		case *ast.Ident:
			if w.isTarget(x) {
				w.st = ownStateTop // unrecognized use: aliasing
			}
		}
		return true
	})
}

// call applies one call's effect on the ownership target.
func (w *ownWalk) call(call *ast.CallExpr, handled map[ast.Node]bool) {
	fn := calleeOf(w.p.Info, call)
	kind := w.m.poolKindOf(fn)

	// PutBuf(m) / PutBuf(m.Data): the pooled payload is recycled.
	if kind == poolRelease && len(call.Args) > 0 &&
		(w.isTarget(call.Args[0]) || w.isTargetField(call.Args[0])) {
		w.consume()
		handled[call.Args[0]] = true
		return
	}
	// Method (or field-func) call with the target as receiver base.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && w.isTarget(sel.X) {
		handled[sel.X] = true
		switch kind {
		case poolRelease:
			w.consume()
			return
		case poolRetain:
			w.st = ownStateTop // refcounted use of a single-owner value
			return
		}
		if fn != nil {
			switch w.m.ownEffectOf(fn, -1) {
			case ownConsume:
				w.consume()
			case ownBorrow:
				// obligation stays with the caller
			default:
				w.st = ownStateTop
			}
		}
		// continue to scan ordinary args below
	}

	for i, arg := range call.Args {
		argIsTarget := w.isTarget(arg)
		if !argIsTarget && !w.isTargetField(arg) {
			continue
		}
		switch {
		case fn == nil:
			if name := builtinName(w.p, call); name != "" {
				if name == "append" && argIsTarget {
					w.st = ownStateTop // aliased into a slice
				}
				// len/cap/copy/... borrow the value.
				handled[arg] = true
				continue
			}
			if isConversion(w.p, call) {
				handled[arg] = true // value copy: borrow
				continue
			}
			if probeFieldCall(w.p, call) {
				handled[arg] = true // oracle hook: observes only
				continue
			}
			if argIsTarget {
				// Callback convention: the func value owns the carrier.
				w.consume()
			}
			handled[arg] = true
		case !moduleFunc(w.m, fn):
			handled[arg] = true // stdlib: reads only, never recycles
		default:
			if argIsTarget {
				switch w.m.ownEffectOf(fn, i) {
				case ownConsume:
					w.consume()
				case ownBorrow:
					// obligation stays with the caller
				default:
					w.st = ownStateTop
				}
			}
			handled[arg] = true
		}
	}
}

// --- local acquisition tracking --------------------------------------

// refState tracks one locally acquired pooled value along one path.
type refState struct {
	delta    int  // outstanding references acquired minus released
	deferred int  // releases registered with defer (apply at exit)
	top      bool // paths disagree: silent
	escaped  bool // stored/aliased/captured: obligation moved, silent
	pos      token.Pos
	what     string
}

func (s refState) effective() int { return s.delta - s.deferred }

type refFact map[types.Object]refState

func (f refFact) clone() refFact {
	out := make(refFact, len(f))
	for k, v := range f {
		out[k] = v
	}
	return out
}

func joinRef(a, b refFact) refFact {
	out := a.clone()
	for obj, sb := range b {
		sa, ok := out[obj]
		if !ok {
			out[obj] = sb
			continue
		}
		switch {
		case sa.escaped || sb.escaped:
			sa.escaped = true
		case sa.top || sb.top || sa.delta != sb.delta || sa.deferred != sb.deferred:
			sa.top = true
		}
		out[obj] = sa
	}
	return out
}

func equalRef(a, b refFact) bool {
	if len(a) != len(b) {
		return false
	}
	for k, va := range a {
		vb, ok := b[k]
		if !ok || va != vb {
			return false
		}
	}
	return true
}

// refWalk applies one CFG node's events to a fact. When report is
// non-nil (post-fixpoint reporting pass) it emits over-release and
// overwrite diagnostics as they are discovered.
type refWalk struct {
	m      *Module
	p      *Package
	f      refFact
	report Reporter
}

func (w *refWalk) tracked(e ast.Expr) (types.Object, refState, bool) {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil, refState{}, false
	}
	obj := w.p.Info.Uses[id]
	if obj == nil {
		obj = w.p.Info.Defs[id]
	}
	st, ok := w.f[obj]
	return obj, st, ok
}

func (w *refWalk) escape(obj types.Object) {
	st := w.f[obj]
	st.escaped = true
	w.f[obj] = st
}

func (w *refWalk) release(obj types.Object, at token.Pos) {
	st := w.f[obj]
	if st.top || st.escaped {
		return
	}
	st.delta--
	if st.delta < 0 {
		if w.report != nil {
			w.report(at, "%s acquired at %s is released more times than acquired on this path",
				st.what, w.p.Fset.Position(st.pos))
		}
		st.top = true
	}
	w.f[obj] = st
}

func (w *refWalk) node(n ast.Node) {
	handled := make(map[ast.Node]bool)
	ast.Inspect(n, func(x ast.Node) bool {
		if x == nil || handled[x] {
			return false
		}
		switch x := x.(type) {
		case *ast.FuncLit:
			// Closure capture: the closure co-owns anything it mentions.
			ast.Inspect(x.Body, func(y ast.Node) bool {
				if e, ok := y.(ast.Expr); ok {
					if obj, _, ok := w.tracked(e); ok {
						w.escape(obj)
					}
				}
				return true
			})
			return false
		case *ast.DeferStmt:
			w.deferCall(x.Call)
			return false
		case *ast.AssignStmt:
			w.assign(x, handled)
		case *ast.ValueSpec:
			w.valueSpec(x, handled)
		case *ast.CallExpr:
			w.call(x, handled)
		case *ast.ReturnStmt:
			for _, r := range x.Results {
				if obj, _, ok := w.tracked(r); ok {
					w.escape(obj) // ownership to the caller
					handled[r] = true
				}
			}
		case *ast.SendStmt:
			if obj, _, ok := w.tracked(x.Value); ok {
				w.escape(obj)
				handled[x.Value] = true
			}
		case *ast.SelectorExpr:
			if obj, _, ok := w.tracked(x.X); ok {
				_ = obj
				handled[x.X] = true // field access borrows
			}
		case *ast.IndexExpr:
			if obj, _, ok := w.tracked(x.X); ok {
				_ = obj
				handled[x.X] = true // b[i] borrows the buffer
			}
		case *ast.BinaryExpr:
			if x.Op == token.EQL || x.Op == token.NEQ {
				if obj, _, ok := w.tracked(x.X); ok {
					_ = obj
					handled[x.X] = true
				}
				if obj, _, ok := w.tracked(x.Y); ok {
					_ = obj
					handled[x.Y] = true
				}
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if obj, _, ok := w.tracked(x.X); ok {
					w.escape(obj)
					handled[x.X] = true
				}
			}
		case *ast.Ident:
			if obj, _, ok := w.tracked(x); ok {
				w.escape(obj) // unrecognized use: aliasing
			}
		}
		return true
	})
}

// acquisitionCall returns the description of a fresh acquisition, or "".
func (w *refWalk) acquisitionCall(e ast.Expr) (string, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return "", false
	}
	fn := calleeOf(w.p.Info, call)
	if w.m.poolKindOf(fn) != poolAcquire {
		return "", false
	}
	if fn.Name() == "GetBuf" {
		return "pooled buffer", true
	}
	return "pooled packet", true
}

// define starts (or restarts) tracking obj as freshly acquired.
func (w *refWalk) define(obj types.Object, what string, at token.Pos) {
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() || v.Parent() == nil || v.Parent() == w.p.Types.Scope() {
		return // only plain locals are tracked
	}
	if old, ok := w.f[obj]; ok && !old.top && !old.escaped && old.effective() > 0 {
		if w.report != nil {
			w.report(at, "%s acquired at %s is overwritten while still holding %d unreleased reference(s)",
				old.what, w.p.Fset.Position(old.pos), old.effective())
		}
	}
	w.f[obj] = refState{delta: 1, pos: at, what: what}
}

func (w *refWalk) assign(x *ast.AssignStmt, handled map[ast.Node]bool) {
	// Direct acquisition: x := GetBuf(n) / pkt := NewPooledPacket(...).
	if len(x.Lhs) == 1 && len(x.Rhs) == 1 {
		if what, ok := w.acquisitionCall(x.Rhs[0]); ok {
			if id, isIdent := ast.Unparen(x.Lhs[0]).(*ast.Ident); isIdent {
				obj := w.p.Info.Defs[id]
				if obj == nil {
					obj = w.p.Info.Uses[id]
				}
				if obj != nil {
					// Scan the call's arguments for other tracked values
					// first, then start tracking the result.
					call := ast.Unparen(x.Rhs[0]).(*ast.CallExpr)
					for _, arg := range call.Args {
						w.node(arg)
					}
					w.define(obj, what, x.Rhs[0].Pos())
					handled[x.Rhs[0]] = true
					handled[x.Lhs[0]] = true
					return
				}
			}
		}
	}
	// General assignment: aliasing and stores escape; a tracked LHS
	// being overwritten is re-checked in define-like fashion.
	for i, rhs := range x.Rhs {
		if obj, _, ok := w.tracked(rhs); ok {
			w.escape(obj)
			handled[rhs] = true
			_ = i
		}
	}
	for _, lhs := range x.Lhs {
		if id, isIdent := ast.Unparen(lhs).(*ast.Ident); isIdent {
			obj := w.p.Info.Uses[id]
			if obj == nil {
				obj = w.p.Info.Defs[id]
			}
			if old, ok := w.f[obj]; ok && !old.top && !old.escaped && old.effective() > 0 {
				if w.report != nil {
					w.report(lhs.Pos(), "%s acquired at %s is overwritten while still holding %d unreleased reference(s)",
						old.what, w.p.Fset.Position(old.pos), old.effective())
				}
				delete(w.f, obj)
			}
			handled[lhs] = true
		}
	}
}

func (w *refWalk) valueSpec(x *ast.ValueSpec, handled map[ast.Node]bool) {
	if len(x.Names) == 1 && len(x.Values) == 1 {
		if what, ok := w.acquisitionCall(x.Values[0]); ok {
			if obj := w.p.Info.Defs[x.Names[0]]; obj != nil {
				call := ast.Unparen(x.Values[0]).(*ast.CallExpr)
				for _, arg := range call.Args {
					w.node(arg)
				}
				w.define(obj, what, x.Values[0].Pos())
				handled[x.Values[0]] = true
			}
		}
	}
}

func (w *refWalk) deferCall(call *ast.CallExpr) {
	fn := calleeOf(w.p.Info, call)
	kind := w.m.poolKindOf(fn)
	// defer wire.PutBuf(b) / defer pkt.Release()
	var obj types.Object
	if kind == poolRelease {
		if len(call.Args) > 0 {
			if o, _, ok := w.tracked(call.Args[0]); ok {
				obj = o
			}
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && obj == nil {
			if o, _, ok := w.tracked(sel.X); ok {
				obj = o
			}
		}
	}
	if obj != nil {
		st := w.f[obj]
		st.deferred++
		w.f[obj] = st
		return
	}
	// Any other defer mentioning a tracked value: conservative escape.
	ast.Inspect(call, func(y ast.Node) bool {
		if e, ok := y.(ast.Expr); ok {
			if o, _, ok := w.tracked(e); ok {
				w.escape(o)
			}
		}
		return true
	})
}

func (w *refWalk) call(call *ast.CallExpr, handled map[ast.Node]bool) {
	fn := calleeOf(w.p.Info, call)
	kind := w.m.poolKindOf(fn)

	// wire.PutBuf(b)
	if kind == poolRelease && len(call.Args) > 0 {
		if obj, _, ok := w.tracked(call.Args[0]); ok {
			w.release(obj, call.Pos())
			handled[call.Args[0]] = true
			return
		}
	}
	// pkt.Release() / pkt.Retain() / other methods on a tracked value.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if obj, st, ok := w.tracked(sel.X); ok {
			handled[sel.X] = true
			switch kind {
			case poolRelease:
				w.release(obj, call.Pos())
				return
			case poolRetain:
				if !st.top && !st.escaped {
					st.delta++
					w.f[obj] = st
				}
				return
			}
			// Other method on the tracked value: borrows (reads).
		}
	}

	for i, arg := range call.Args {
		obj, st, ok := w.tracked(arg)
		if !ok {
			continue
		}
		_ = st
		switch {
		case fn == nil:
			if name := builtinName(w.p, call); name != "" {
				if name == "append" {
					w.escape(obj) // the result aliases the buffer
				}
				// len/cap/copy/print/println/delete borrow the value.
				handled[arg] = true
				continue
			}
			if isConversion(w.p, call) {
				handled[arg] = true // string(b) and friends copy out
				continue
			}
			// Func-value call: callback conventions vary; stop tracking.
			w.escape(obj)
			handled[arg] = true
		case !moduleFunc(w.m, fn):
			handled[arg] = true // stdlib: borrows
		default:
			switch w.m.ownEffectOf(fn, i) {
			case ownConsume:
				w.release(obj, call.Pos())
			case ownBorrow:
				// obligation stays here
			default:
				w.escape(obj)
			}
			handled[arg] = true
		}
	}
}

// --- the rule ---------------------------------------------------------

// Reflease checks pooled-buffer lifetimes: every acquired or retained
// reference must be released exactly once on every normal exit path,
// and carrier parameters must be consumed consistently across paths.
func Reflease(m *Module) Rule {
	return Rule{
		Name: "reflease",
		Doc:  "pooled buffers (netsim.Packet refs, wire.GetBuf slices, sctp.Message payloads) must be released exactly once on every path",
		Check: func(p *Package, report Reporter) {
			for _, f := range p.Files {
				for _, d := range f.Decls {
					fd, ok := d.(*ast.FuncDecl)
					if !ok || fd.Body == nil {
						continue
					}
					m.checkLocalAcquisitions(p, fd, report)
					m.checkCarrierParams(p, fd, report)
				}
			}
		},
	}
}

func (m *Module) refSpec(p *Package) DataflowSpec[refFact] {
	return DataflowSpec[refFact]{
		Entry: refFact{},
		Join:  joinRef,
		Transfer: func(b *Block, in refFact) refFact {
			w := &refWalk{m: m, p: p, f: in.clone()}
			for _, n := range b.Nodes {
				w.node(n)
			}
			return w.f
		},
		Equal: equalRef,
	}
}

func (m *Module) checkLocalAcquisitions(p *Package, fd *ast.FuncDecl, report Reporter) {
	cfg := BuildCFG(fd.Body)
	in, out := ForwardSolve(cfg, m.refSpec(p))

	// Reporting pass: replay each block once with the solved in-fact to
	// surface over-release / overwrite events.
	for _, b := range cfg.ReversePostorder() {
		fact, ok := in[b]
		if !ok {
			continue
		}
		w := &refWalk{m: m, p: p, f: fact.clone(), report: report}
		for _, n := range b.Nodes {
			w.node(n)
		}
	}

	// Leak check per normal-return edge: a definite positive count after
	// deferred releases is a path that drops the buffer.
	for _, pred := range cfg.Exit.Preds {
		fact, ok := out[pred]
		if !ok {
			continue
		}
		pos := fd.Body.End()
		for i := len(pred.Nodes) - 1; i >= 0; i-- {
			if pred.Nodes[i].Pos().IsValid() {
				pos = pred.Nodes[i].Pos()
				break
			}
		}
		for _, st := range fact {
			if st.top || st.escaped || st.effective() <= 0 {
				continue
			}
			report(pos, "return path leaks %s acquired at %s (%d unreleased reference(s))",
				st.what, p.Fset.Position(st.pos), st.effective())
		}
	}
}

func (m *Module) checkCarrierParams(p *Package, fd *ast.FuncDecl, report Reporter) {
	params := paramObjects(p, fd)
	for _, obj := range params {
		c := m.carrierOf(obj.Type())
		if c == nil {
			continue
		}
		cfg := BuildCFG(fd.Body)
		_, out := ForwardSolve(cfg, m.ownSpec(p, obj))
		consumed := false
		type held struct{ pos token.Pos }
		var drops []held
		for _, pred := range cfg.Exit.Preds {
			st, ok := out[pred]
			if !ok {
				continue
			}
			switch st {
			case ownStateConsumed:
				consumed = true
			case ownStateHeld:
				pos := fd.Body.End()
				for i := len(pred.Nodes) - 1; i >= 0; i-- {
					if pred.Nodes[i].Pos().IsValid() {
						pos = pred.Nodes[i].Pos()
						break
					}
				}
				drops = append(drops, held{pos: pos})
			}
		}
		// Pure borrowers (no path consumes) are exempt: ownership stays
		// with the caller by convention. Only a mixed function — some
		// path consumes, another drops — is a definite leak.
		if !consumed {
			continue
		}
		for _, d := range drops {
			report(d.pos, "this return path drops %s.%s (param %q) without consuming its pooled %s field, but other paths consume it",
				c.typ, obj.Name(), obj.Name(), c.field)
		}
	}
}
