package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// NoPreempt forbids goroutines, channel operations, and sync primitives
// in simulated packages, outside the kernel allowlist. The simulation
// is cooperatively scheduled — exactly one process runs at any instant,
// which is what lets protocol state be lock-free and runs replay
// bit-identically. A stray goroutine or channel reintroduces the
// scheduler's nondeterminism; blocking must go through sim.Cond,
// sim.WaitGroup, or the kernel's timers.
//
// allow maps module-relative file paths (e.g. "internal/sim/kernel.go")
// to an exemption: the scheduler implementation itself necessarily uses
// goroutines and channels to build the cooperative world.
func NoPreempt(module string, allow map[string]bool) Rule {
	return Rule{
		Name: "nopreempt",
		Doc:  "simulated code is cooperatively scheduled: no go statements, channels, or sync primitives",
		Check: func(p *Package, report Reporter) {
			for _, f := range p.Files {
				file := p.Fset.Position(f.Pos()).Filename
				if allow[moduleRelFile(module, p, file)] {
					continue
				}
				ast.Inspect(f, func(n ast.Node) bool {
					switch n := n.(type) {
					case *ast.GoStmt:
						report(n.Pos(), "go starts a preemptively scheduled goroutine; spawn a cooperative process instead (sim.Kernel.Spawn)")
					case *ast.SendStmt:
						report(n.Pos(), "channel send blocks outside the kernel's control; signal through sim.Cond instead")
					case *ast.UnaryExpr:
						if n.Op == token.ARROW {
							report(n.Pos(), "channel receive blocks outside the kernel's control; wait on sim.Cond instead")
						}
					case *ast.SelectStmt:
						report(n.Pos(), "select multiplexes real channels; simulated code waits on sim.Cond / kernel timers")
					case *ast.RangeStmt:
						if t := p.Info.TypeOf(n.X); t != nil {
							if _, ok := t.Underlying().(*types.Chan); ok {
								report(n.Pos(), "ranging over a channel blocks outside the kernel's control; wait on sim.Cond instead")
							}
						}
					case *ast.CallExpr:
						if id, ok := n.Fun.(*ast.Ident); ok {
							if b, ok := p.Info.Uses[id].(*types.Builtin); ok {
								switch b.Name() {
								case "close":
									report(n.Pos(), "close operates on a channel; simulated code must not use channels")
								case "make":
									if len(n.Args) > 0 {
										if _, ok := n.Args[0].(*ast.ChanType); ok {
											report(n.Pos(), "make(chan ...) creates a channel; simulated code must not use channels")
										}
									}
								}
							}
						}
					case *ast.SelectorExpr:
						switch qualifierPath(p, n) {
						case "sync":
							report(n.Pos(), "sync.%s implies real concurrency; use sim.Cond / sim.WaitGroup (cooperative scheduling needs no locks)", n.Sel.Name)
						case "sync/atomic":
							report(n.Pos(), "atomic.%s implies cross-goroutine sharing; simulated state is single-threaded by construction", n.Sel.Name)
						}
					}
					return true
				})
			}
		},
	}
}

// moduleRelFile maps an absolute file name to its module-relative slash
// path using the package's import path, so the allowlist is stable no
// matter where the tree is checked out.
func moduleRelFile(module string, p *Package, file string) string {
	rel := strings.TrimPrefix(p.ImportPath, module)
	rel = strings.TrimPrefix(rel, "/")
	base := filepath.Base(file)
	if rel == "" {
		return base
	}
	return rel + "/" + base
}
