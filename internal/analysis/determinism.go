package analysis

import (
	"go/ast"
)

// bannedTime are the package time functions that read or wait on the
// wall clock. Types and constants (time.Duration, time.Millisecond) are
// fine: only the clock itself is off limits.
var bannedTime = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
}

// allowedRand are the math/rand identifiers that do not touch the
// global source: explicitly seeded constructors and the types
// themselves. Everything else (rand.Intn, rand.Shuffle, rand.Seed, ...)
// draws from process-global state and breaks seed reproducibility.
var allowedRand = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
	"Rand":      true,
	"Source":    true,
	"Source64":  true,
	"Zipf":      true,
}

// Determinism forbids wall-clock time and the global math/rand source
// in simulated packages. The paper's results are only credible because
// a run is exactly reproducible from its seed; one time.Now or
// rand.Intn silently breaks bit-identical replay (TestTraceHashGolden,
// chaos shrinking).
func Determinism() Rule {
	return Rule{
		Name: "determinism",
		Doc:  "simulated code must take time from the kernel's virtual clock and randomness from its seeded *rand.Rand",
		Check: func(p *Package, report Reporter) {
			for _, f := range p.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					sel, ok := n.(*ast.SelectorExpr)
					if !ok {
						return true
					}
					switch qualifierPath(p, sel) {
					case "time":
						if bannedTime[sel.Sel.Name] {
							report(sel.Pos(), "time.%s uses the wall clock; simulated code must use the kernel's virtual clock (sim.Kernel.Now / After)", sel.Sel.Name)
						}
					case "math/rand", "math/rand/v2":
						if !allowedRand[sel.Sel.Name] {
							report(sel.Pos(), "rand.%s draws from the global, wall-seeded source; use the kernel's seeded generator (sim.Kernel.Rand)", sel.Sel.Name)
						}
					}
					return true
				})
			}
		},
	}
}
