package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Module is the shared context for the flow-sensitive rules: one loader
// plus lazily built cross-package indexes (function declarations by
// *types.Func) and memoized per-function summaries. The flow rules are
// intraprocedural at heart, but calls are resolved through bottom-up
// summaries computed on demand over the module call graph, so ownership
// transfer, epoch validation, purity, and taint all cross function
// boundaries without a whole-program fixpoint.
type Module struct {
	loader *Loader

	// funcs maps a module function/method object to its declaration and
	// defining package. Rebuilt incrementally as the loader's package
	// cache grows (type-checking a package pulls its dependencies in).
	funcs   map[*types.Func]funcSrc
	indexed map[string]bool // package dirs already indexed

	own        map[sumKey]ownEffect // reflease: per-param ownership effects
	ownBusy    map[sumKey]bool      // recursion guard
	taint      map[*types.Func]bool // timeflow: returns a wall-clock/rand value
	taintBusy  map[*types.Func]bool
	impure     map[*types.Func]string // probepure: "" = pure, else what it does
	impureBusy map[*types.Func]bool
	valid      map[*types.Func]bool // epochguard: epoch-validating helpers
	validBusy  map[*types.Func]bool

	// litBind caches, per package, the local func-valued variables that
	// are bound exactly once to a function literal (closures like
	// `check := func(...) {...}`), so rules can analyze the literal
	// instead of giving up on the func-value call.
	litBind map[*Package]map[types.Object]*ast.FuncLit
}

type funcSrc struct {
	pkg  *Package
	decl *ast.FuncDecl
}

// sumKey identifies one (function, parameter) ownership summary. The
// receiver of a method is parameter -1.
type sumKey struct {
	fn    *types.Func
	param int
}

// NewModule returns the rule context for the module rooted at root. The
// underlying loader is shared process-wide (see SharedLoader), so
// repeated Module construction does not re-import the standard library;
// the summary memos themselves are per-Module.
func NewModule(root string) (*Module, error) {
	ld, err := SharedLoader(root)
	if err != nil {
		return nil, err
	}
	return &Module{
		loader:     ld,
		funcs:      make(map[*types.Func]funcSrc),
		indexed:    make(map[string]bool),
		own:        make(map[sumKey]ownEffect),
		ownBusy:    make(map[sumKey]bool),
		taint:      make(map[*types.Func]bool),
		taintBusy:  make(map[*types.Func]bool),
		impure:     make(map[*types.Func]string),
		impureBusy: make(map[*types.Func]bool),
		valid:      make(map[*types.Func]bool),
		validBusy:  make(map[*types.Func]bool),
		litBind:    make(map[*Package]map[types.Object]*ast.FuncLit),
	}, nil
}

// Loader exposes the module's loader (package loading, ModuleDirs).
func (m *Module) Loader() *Loader { return m.loader }

// Path returns the module path from go.mod.
func (m *Module) Path() string { return m.loader.Module }

// Rel returns the module-relative slash path for an import path, and
// whether the path is module-internal at all.
func (m *Module) Rel(importPath string) (string, bool) {
	if importPath == m.Path() {
		return ".", true
	}
	if rest, ok := strings.CutPrefix(importPath, m.Path()+"/"); ok {
		return rest, true
	}
	return "", false
}

// funcDecl resolves a function object to its source declaration, if it
// is a module function whose package has been loaded. Bodies of
// external (stdlib) functions are never available.
func (m *Module) funcDecl(fn *types.Func) (funcSrc, bool) {
	if fn == nil || fn.Pkg() == nil {
		return funcSrc{}, false
	}
	if _, ok := m.Rel(fn.Pkg().Path()); !ok {
		return funcSrc{}, false
	}
	if src, ok := m.funcs[fn]; ok {
		return src, true
	}
	m.reindex()
	src, ok := m.funcs[fn]
	return src, ok
}

// reindex sweeps packages newly added to the loader cache into the
// function index.
func (m *Module) reindex() {
	for dir, p := range m.loader.byDir {
		if m.indexed[dir] {
			continue
		}
		m.indexed[dir] = true
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fn, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
					m.funcs[fn] = funcSrc{pkg: p, decl: fd}
				}
			}
		}
	}
}

// calleeOf resolves the function object a call expression invokes:
// a declared function or method for direct calls, nil for calls through
// func values, builtins, and type conversions. info must be the type
// info of the package containing the call.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if s, ok := info.Selections[fun]; ok {
			fn, _ := s.Obj().(*types.Func)
			return fn
		}
		// Package-qualified call: time.Now, wire.PutBuf, ...
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// funcLitFor resolves a func-valued variable to its function literal
// when the variable is assigned exactly once in the package and that
// one assignment is a literal. Single-assignment is what makes the
// resolution sound: a `f := func() {...}` closure cannot be rebound
// behind the analysis's back, and such a closure cannot even recurse
// (its own name is not in scope inside the literal).
func (m *Module) funcLitFor(p *Package, obj types.Object) *ast.FuncLit {
	idx, ok := m.litBind[p]
	if !ok {
		idx = make(map[types.Object]*ast.FuncLit)
		counts := make(map[types.Object]int)
		bind := func(id *ast.Ident, rhs ast.Expr) {
			if id.Name == "_" {
				return
			}
			o := p.Info.Defs[id]
			if o == nil {
				o = p.Info.Uses[id]
			}
			if _, isVar := o.(*types.Var); !isVar {
				return
			}
			counts[o]++
			if rhs != nil {
				if lit, ok := ast.Unparen(rhs).(*ast.FuncLit); ok {
					idx[o] = lit
				}
			}
		}
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.AssignStmt:
					for i, lhs := range x.Lhs {
						if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
							var rhs ast.Expr
							if i < len(x.Rhs) {
								rhs = x.Rhs[i]
							}
							bind(id, rhs)
						}
					}
				case *ast.ValueSpec:
					for i, id := range x.Names {
						var rhs ast.Expr
						if i < len(x.Values) {
							rhs = x.Values[i]
						}
						bind(id, rhs)
					}
				}
				return true
			})
		}
		for o := range idx {
			if counts[o] != 1 {
				delete(idx, o)
			}
		}
		m.litBind[p] = idx
	}
	return idx[obj]
}

// builtinName returns the name of the builtin a call invokes (len,
// append, copy, ...), or "" for anything else. Builtins resolve to
// *types.Builtin in Uses, not to a *types.Func.
func builtinName(p *Package, call *ast.CallExpr) string {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := p.Info.Uses[id].(*types.Builtin); ok {
			return b.Name()
		}
	}
	return ""
}

// isConversion reports whether a call is a type conversion.
func isConversion(p *Package, call *ast.CallExpr) bool {
	tv, ok := p.Info.Types[call.Fun]
	return ok && tv.IsType()
}

// fullName returns the canonical name of a function for config lookups
// and messages: "path/pkg.Func" or "(path/pkg.Recv).Method" (pointer
// receivers included, e.g. "(*repro/internal/netsim.Packet).Release").
func fullName(fn *types.Func) string {
	if fn == nil {
		return ""
	}
	return fn.FullName()
}

// rootIdent walks a selector/index/star/paren chain to its base
// identifier: o.ops[f.op].x → o, (*p).field → p. Returns nil when the
// base is not a plain identifier (a call result, a literal, ...).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// paramObjects returns the parameter objects of a declaration in order,
// with the receiver (if any) at index -1 of the returned map.
func paramObjects(p *Package, decl *ast.FuncDecl) map[int]types.Object {
	out := make(map[int]types.Object)
	if decl.Recv != nil && len(decl.Recv.List) == 1 && len(decl.Recv.List[0].Names) == 1 {
		if obj := p.Info.Defs[decl.Recv.List[0].Names[0]]; obj != nil {
			out[-1] = obj
		}
	}
	i := 0
	if decl.Type.Params != nil {
		for _, field := range decl.Type.Params.List {
			if len(field.Names) == 0 {
				i++ // unnamed parameter still occupies a slot
				continue
			}
			for _, name := range field.Names {
				if obj := p.Info.Defs[name]; obj != nil {
					out[i] = obj
				}
				i++
			}
		}
	}
	return out
}
