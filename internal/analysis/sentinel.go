package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Sentinel flags == / != comparisons (and switch cases) against the
// module's sentinel errors. The transport contract (DESIGN §2) is that
// callers classify failures with errors.Is, which keeps working when a
// layer wraps a sentinel with context; a raw == silently stops matching
// the moment anyone adds a %w wrapper, which is exactly how
// classification bugs slip into retry/redial paths. module is the
// module path from go.mod: only sentinels declared inside this module
// are flagged.
func Sentinel(module string) Rule {
	errIface := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	isSentinel := func(p *Package, e ast.Expr) (string, bool) {
		var id *ast.Ident
		switch e := ast.Unparen(e).(type) {
		case *ast.Ident:
			id = e
		case *ast.SelectorExpr:
			id = e.Sel
		default:
			return "", false
		}
		v, ok := p.Info.Uses[id].(*types.Var)
		if !ok || v.Pkg() == nil {
			return "", false
		}
		if path := v.Pkg().Path(); path != module && !strings.HasPrefix(path, module+"/") {
			return "", false
		}
		// Package-level error variable named like a sentinel.
		if v.Parent() != v.Pkg().Scope() {
			return "", false
		}
		if !strings.HasPrefix(strings.ToLower(v.Name()), "err") {
			return "", false
		}
		if !types.Implements(v.Type(), errIface) {
			return "", false
		}
		return v.Name(), true
	}
	return Rule{
		Name: "sentinel",
		Doc:  "sentinel errors are classified with errors.Is, never == or switch/case",
		Check: func(p *Package, report Reporter) {
			for _, f := range p.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					switch n := n.(type) {
					case *ast.BinaryExpr:
						if n.Op != token.EQL && n.Op != token.NEQ {
							return true
						}
						for _, side := range []ast.Expr{n.X, n.Y} {
							if name, ok := isSentinel(p, side); ok {
								report(n.OpPos, "sentinel %s compared with %s; use errors.Is(err, %s) so wrapped errors still classify", name, n.Op, name)
								return true
							}
						}
					case *ast.SwitchStmt:
						if n.Tag == nil {
							return true
						}
						for _, stmt := range n.Body.List {
							cc, ok := stmt.(*ast.CaseClause)
							if !ok {
								continue
							}
							for _, e := range cc.List {
								if name, ok := isSentinel(p, e); ok {
									report(e.Pos(), "switch case compares sentinel %s with ==; use if/else chains of errors.Is(err, %s)", name, name)
								}
							}
						}
					}
					return true
				})
			}
		},
	}
}
