package analysis

// Control-flow graphs for the flow-sensitive rules. The builder turns
// one function body (go/ast) into basic blocks with explicit edges for
// branches, loops, switches, labeled break/continue, goto, and panics.
// Statements appear in blocks in execution order; branch conditions are
// appended to the block that evaluates them, so a dataflow transfer
// function sees every expression exactly where it runs.
//
// Two virtual blocks terminate every path: Exit collects normal returns
// (and falling off the end of the body) and Panic collects calls to
// panic and the known process-terminating stdlib calls. The distinction
// matters to the must-analyses: a pooled buffer dropped on a panic path
// is the process dying, not a leak worth a diagnostic.

import (
	"go/ast"
	"go/token"
)

// Block is one basic block: a maximal straight-line node sequence.
type Block struct {
	Index int
	Nodes []ast.Node // statements and branch conditions, execution order
	Succs []*Block
	Preds []*Block
}

// CFG is the control-flow graph of one function body.
type CFG struct {
	Blocks []*Block // Blocks[0] is the entry block
	Exit   *Block   // virtual: normal returns and end-of-body
	Panic  *Block   // virtual: panic / process-exit paths
}

// Entry returns the function's entry block.
func (c *CFG) Entry() *Block { return c.Blocks[0] }

// builder carries the state of one CFG construction.
type builder struct {
	cfg    *CFG
	cur    *Block
	loops  []loopFrame
	labels map[string]*Block   // labeled statements, for goto
	gotos  map[string][]*Block // unresolved goto sources by label
}

// loopFrame is one enclosing breakable/continuable construct.
type loopFrame struct {
	label    string
	brk      *Block
	cont     *Block // nil for switch/select frames
	isSwitch bool
}

// BuildCFG constructs the CFG for a function body. body may be nil
// (declaration without body), in which case a trivial graph is
// returned.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &builder{
		cfg:    &CFG{},
		labels: make(map[string]*Block),
		gotos:  make(map[string][]*Block),
	}
	entry := b.newBlock()
	exit := b.newBlock()
	pan := b.newBlock()
	b.cfg.Exit = exit
	b.cfg.Panic = pan
	b.cur = entry
	if body != nil {
		b.stmtList(body.List)
	}
	b.edge(b.cur, exit) // falling off the end is an implicit return
	// Unresolved gotos (labels in scopes the builder did not reach are
	// impossible in well-typed code, but stay safe): route to Exit.
	for _, srcs := range b.gotos {
		for _, s := range srcs {
			b.edge(s, exit)
		}
	}
	return b.cfg
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

// edge links from → to, once.
func (b *builder) edge(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// terminate ends the current path (after return/panic/branch): further
// statements land in a fresh, unreachable block.
func (b *builder) terminate() {
	b.cur = b.newBlock()
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s, "")
	}
}

// stmt lowers one statement. label is the pending label when the
// statement is the body of a LabeledStmt (consumed by loops/switches).
func (b *builder) stmt(s ast.Stmt, label string) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s, label)
	case *ast.RangeStmt:
		b.rangeStmt(s, label)
	case *ast.SwitchStmt:
		b.switchStmt(s, label)
	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(s, label)
	case *ast.SelectStmt:
		b.selectStmt(s, label)
	case *ast.LabeledStmt:
		lb := b.newBlock()
		b.edge(b.cur, lb)
		b.cur = lb
		b.labels[s.Label.Name] = lb
		for _, src := range b.gotos[s.Label.Name] {
			b.edge(src, lb)
		}
		delete(b.gotos, s.Label.Name)
		b.stmt(s.Stmt, s.Label.Name)
	case *ast.BranchStmt:
		b.branchStmt(s)
	case *ast.ReturnStmt:
		b.cur.Nodes = append(b.cur.Nodes, s)
		b.edge(b.cur, b.cfg.Exit)
		b.terminate()
	case *ast.ExprStmt:
		b.cur.Nodes = append(b.cur.Nodes, s)
		if isTerminalCall(s.X) {
			b.edge(b.cur, b.cfg.Panic)
			b.terminate()
		}
	default:
		// Assign, IncDec, Decl, Defer, Go, Send, Empty: straight-line.
		b.cur.Nodes = append(b.cur.Nodes, s)
	}
}

func (b *builder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.cur.Nodes = append(b.cur.Nodes, s.Init)
	}
	b.cur.Nodes = append(b.cur.Nodes, s.Cond)
	condBlk := b.cur
	after := b.newBlock()

	then := b.newBlock()
	b.edge(condBlk, then)
	b.cur = then
	b.stmtList(s.Body.List)
	b.edge(b.cur, after)

	if s.Else != nil {
		els := b.newBlock()
		b.edge(condBlk, els)
		b.cur = els
		b.stmt(s.Else, "")
		b.edge(b.cur, after)
	} else {
		b.edge(condBlk, after)
	}
	b.cur = after
}

func (b *builder) forStmt(s *ast.ForStmt, label string) {
	if s.Init != nil {
		b.cur.Nodes = append(b.cur.Nodes, s.Init)
	}
	head := b.newBlock()
	body := b.newBlock()
	post := b.newBlock()
	after := b.newBlock()
	b.edge(b.cur, head)
	if s.Cond != nil {
		head.Nodes = append(head.Nodes, s.Cond)
		b.edge(head, body)
		b.edge(head, after)
	} else {
		b.edge(head, body)
	}
	b.loops = append(b.loops, loopFrame{label: label, brk: after, cont: post})
	b.cur = body
	b.stmtList(s.Body.List)
	b.loops = b.loops[:len(b.loops)-1]
	b.edge(b.cur, post)
	if s.Post != nil {
		post.Nodes = append(post.Nodes, s.Post)
	}
	b.edge(post, head)
	b.cur = after
}

func (b *builder) rangeStmt(s *ast.RangeStmt, label string) {
	head := b.newBlock()
	body := b.newBlock()
	after := b.newBlock()
	b.edge(b.cur, head)
	// Only the ranged expression goes in the head: storing the whole
	// RangeStmt would drag the body into node walks of this block.
	head.Nodes = append(head.Nodes, s.X)
	b.edge(head, body)
	b.edge(head, after)
	b.loops = append(b.loops, loopFrame{label: label, brk: after, cont: head})
	b.cur = body
	b.stmtList(s.Body.List)
	b.loops = b.loops[:len(b.loops)-1]
	b.edge(b.cur, head)
	b.cur = after
}

func (b *builder) switchStmt(s *ast.SwitchStmt, label string) {
	if s.Init != nil {
		b.cur.Nodes = append(b.cur.Nodes, s.Init)
	}
	if s.Tag != nil {
		b.cur.Nodes = append(b.cur.Nodes, s.Tag)
	}
	b.caseClauses(s.Body.List, label, func(c ast.Stmt) ([]ast.Node, []ast.Stmt, bool) {
		cc := c.(*ast.CaseClause)
		var guards []ast.Node
		for _, e := range cc.List {
			guards = append(guards, e)
		}
		return guards, cc.Body, cc.List == nil
	})
}

func (b *builder) typeSwitchStmt(s *ast.TypeSwitchStmt, label string) {
	if s.Init != nil {
		b.cur.Nodes = append(b.cur.Nodes, s.Init)
	}
	b.cur.Nodes = append(b.cur.Nodes, s.Assign)
	b.caseClauses(s.Body.List, label, func(c ast.Stmt) ([]ast.Node, []ast.Stmt, bool) {
		cc := c.(*ast.CaseClause)
		return nil, cc.Body, cc.List == nil
	})
}

func (b *builder) selectStmt(s *ast.SelectStmt, label string) {
	b.caseClauses(s.Body.List, label, func(c ast.Stmt) ([]ast.Node, []ast.Stmt, bool) {
		cc := c.(*ast.CommClause)
		var guards []ast.Node
		if cc.Comm != nil {
			guards = append(guards, cc.Comm)
		}
		return guards, cc.Body, cc.Comm == nil
	})
}

// caseClauses lowers switch/type-switch/select bodies: every clause is
// a successor of the dispatch block, fallthrough chains clause bodies,
// and a missing default adds a dispatch → after edge.
func (b *builder) caseClauses(clauses []ast.Stmt, label string, split func(ast.Stmt) ([]ast.Node, []ast.Stmt, bool)) {
	dispatch := b.cur
	after := b.newBlock()
	b.loops = append(b.loops, loopFrame{label: label, brk: after, isSwitch: true})
	hasDefault := false
	bodies := make([]*Block, len(clauses))
	var bodyStmts [][]ast.Stmt
	for i, c := range clauses {
		guards, body, isDefault := split(c)
		blk := b.newBlock()
		blk.Nodes = append(blk.Nodes, guards...)
		b.edge(dispatch, blk)
		bodies[i] = blk
		bodyStmts = append(bodyStmts, body)
		if isDefault {
			hasDefault = true
		}
	}
	for i := range clauses {
		b.cur = bodies[i]
		fallsThrough := false
		for _, st := range bodyStmts[i] {
			if br, ok := st.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fallsThrough = true
				continue
			}
			b.stmt(st, "")
		}
		if fallsThrough && i+1 < len(bodies) {
			b.edge(b.cur, bodies[i+1])
		} else {
			b.edge(b.cur, after)
		}
	}
	b.loops = b.loops[:len(b.loops)-1]
	if !hasDefault {
		b.edge(dispatch, after)
	}
	b.cur = after
}

func (b *builder) branchStmt(s *ast.BranchStmt) {
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok {
	case token.BREAK:
		for i := len(b.loops) - 1; i >= 0; i-- {
			f := b.loops[i]
			if label == "" || f.label == label {
				b.edge(b.cur, f.brk)
				b.terminate()
				return
			}
		}
	case token.CONTINUE:
		for i := len(b.loops) - 1; i >= 0; i-- {
			f := b.loops[i]
			if f.isSwitch {
				continue // continue skips switch frames
			}
			if label == "" || f.label == label {
				b.edge(b.cur, f.cont)
				b.terminate()
				return
			}
		}
	case token.GOTO:
		if target, ok := b.labels[label]; ok {
			b.edge(b.cur, target)
		} else {
			b.gotos[label] = append(b.gotos[label], b.cur)
		}
		b.terminate()
		return
	}
	// FALLTHROUGH is handled by caseClauses; a malformed branch falls
	// through as a no-op.
}

// isTerminalCall reports whether the expression is a call that never
// returns: the panic builtin or the well-known process terminators.
func isTerminalCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name == "panic"
	case *ast.SelectorExpr:
		if pkg, ok := fn.X.(*ast.Ident); ok {
			switch pkg.Name + "." + fn.Sel.Name {
			case "os.Exit", "log.Fatal", "log.Fatalf", "log.Fatalln", "runtime.Goexit":
				return true
			}
		}
	}
	return false
}

// Reachable returns the set of blocks reachable from the entry.
func (c *CFG) Reachable() map[*Block]bool {
	seen := map[*Block]bool{c.Entry(): true}
	stack := []*Block{c.Entry()}
	for len(stack) > 0 {
		blk := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range blk.Succs {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return seen
}

// Dominators computes the immediate-dominator relation over reachable
// blocks with the standard iterative algorithm (Cooper/Harvey/Kennedy).
// The entry block's idom is itself.
func (c *CFG) Dominators() map[*Block]*Block {
	reach := c.Reachable()
	// Reverse postorder over reachable blocks.
	var order []*Block
	seen := make(map[*Block]bool)
	var dfs func(*Block)
	dfs = func(blk *Block) {
		seen[blk] = true
		for _, s := range blk.Succs {
			if !seen[s] {
				dfs(s)
			}
		}
		order = append(order, blk)
	}
	dfs(c.Entry())
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	rpo := make(map[*Block]int, len(order))
	for i, blk := range order {
		rpo[blk] = i
	}
	idom := map[*Block]*Block{c.Entry(): c.Entry()}
	intersect := func(a, b *Block) *Block {
		for a != b {
			for rpo[a] > rpo[b] {
				a = idom[a]
			}
			for rpo[b] > rpo[a] {
				b = idom[b]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for _, blk := range order[1:] {
			var d *Block
			for _, p := range blk.Preds {
				if !reach[p] || idom[p] == nil {
					continue
				}
				if d == nil {
					d = p
				} else {
					d = intersect(d, p)
				}
			}
			if d != nil && idom[blk] != d {
				idom[blk] = d
				changed = true
			}
		}
	}
	return idom
}

// Dominates reports whether a dominates b under idom (every path from
// the entry to b passes through a). A block dominates itself.
func Dominates(idom map[*Block]*Block, a, b *Block) bool {
	for {
		if b == a {
			return true
		}
		d, ok := idom[b]
		if !ok || d == b {
			return false
		}
		b = d
	}
}
