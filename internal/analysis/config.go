package analysis

import "strings"

// simulatedPkgs are the module-relative package paths whose code runs
// inside a simulation kernel. Everything here must be deterministic and
// cooperatively scheduled, so the determinism, nopreempt, and maporder
// rules apply on top of the everywhere rules.
var simulatedPkgs = []string{
	"internal/sim",
	"internal/netsim",
	"internal/sctp",
	"internal/tcp",
	"internal/core",
	"internal/chaos",
	"internal/mpi",       // and every internal/mpi/... backend, by prefix
	"internal/transport", // readiness poller: single-threaded, no sync
}

// kernelAllowlist names the files allowed to use goroutines, channels,
// and sync primitives: the cooperative scheduler itself, which is what
// everything else blocks through. Keys are "<module-relative path>".
var kernelAllowlist = map[string]bool{
	"internal/sim/kernel.go": true,
	"internal/sim/proc.go":   true,
}

// Simulated reports whether the module-relative package path rel is
// part of the simulated world.
func Simulated(rel string) bool {
	for _, s := range simulatedPkgs {
		if rel == s || strings.HasPrefix(rel, s+"/") {
			return true
		}
	}
	return false
}

// RuleNames lists every rule the suite knows, for directive validation
// and -help output.
func RuleNames() []string {
	return []string{"determinism", "nopreempt", "seqnum", "maporder", "sentinel"}
}

func knownRule(name string) bool {
	for _, n := range RuleNames() {
		if n == name {
			return true
		}
	}
	return false
}

// AllRules returns the full rule set for a module (used for simulated
// packages and for linting testdata fixtures). module is the module
// path from go.mod, needed by the sentinel rule to recognize
// module-local sentinel errors.
func AllRules(module string) []Rule {
	return []Rule{
		Determinism(),
		NoPreempt(module, kernelAllowlist),
		SeqnumCmp(),
		MapOrder(),
		Sentinel(module),
	}
}

// RulesFor returns the rules that apply to the package with
// module-relative path rel: seqnum and sentinel everywhere, plus the
// simulation-world rules inside simulated packages.
func RulesFor(module, rel string) []Rule {
	if Simulated(rel) {
		return AllRules(module)
	}
	return []Rule{SeqnumCmp(), Sentinel(module)}
}
