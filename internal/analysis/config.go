package analysis

import "strings"

// simulatedPkgs are the module-relative package paths whose code runs
// inside a simulation kernel. Everything here must be deterministic and
// cooperatively scheduled, so the simulation-world rules (timeflow in
// direct mode, nopreempt, maporder, epochguard) apply on top of the
// everywhere rules.
var simulatedPkgs = []string{
	"internal/sim",
	"internal/netsim",
	"internal/sctp",
	"internal/tcp",
	"internal/core",
	"internal/chaos",
	"internal/mpi",       // and every internal/mpi/... backend, by prefix
	"internal/transport", // readiness poller: single-threaded, no sync
}

// kernelAllowlist names the files allowed to use goroutines, channels,
// and sync primitives: the cooperative scheduler itself, which is what
// everything else blocks through. Keys are "<module-relative path>".
var kernelAllowlist = map[string]bool{
	"internal/sim/kernel.go": true,
	"internal/sim/proc.go":   true,
}

// Simulated reports whether the module-relative package path rel is
// part of the simulated world.
func Simulated(rel string) bool {
	for _, s := range simulatedPkgs {
		if rel == s || strings.HasPrefix(rel, s+"/") {
			return true
		}
	}
	return false
}

// RuleNames lists every rule the suite knows, for directive validation
// and -help output.
func RuleNames() []string {
	return []string{
		"epochguard",
		"maporder",
		"nopreempt",
		"probepure",
		"reflease",
		"sentinel",
		"seqnum",
		"timeflow",
	}
}

func knownRule(name string) bool {
	for _, n := range RuleNames() {
		if n == name {
			return true
		}
	}
	return false
}

// AllRules returns the full rule set for a module (used for simulated
// packages and for linting testdata fixtures). The flow-sensitive rules
// (reflease, epochguard, probepure, timeflow) share m's memoized
// cross-function summaries.
func AllRules(m *Module) []Rule {
	return []Rule{
		EpochGuard(m),
		MapOrder(),
		NoPreempt(m.Path(), kernelAllowlist),
		ProbePure(m),
		Reflease(m),
		Sentinel(m.Path()),
		SeqnumCmp(),
		Timeflow(m, true),
	}
}

// RulesFor returns the rules that apply to the package with
// module-relative path rel. The simulated world gets everything;
// outside it, seqnum, sentinel, reflease, and probepure still apply
// (pooled buffers and probe bindings can be touched from anywhere), and
// timeflow runs in flow-only mode: tests and tools may read the wall
// clock, but none of it may flow into simulated packages.
func RulesFor(m *Module, rel string) []Rule {
	if Simulated(rel) {
		return AllRules(m)
	}
	return []Rule{
		ProbePure(m),
		Reflease(m),
		Sentinel(m.Path()),
		SeqnumCmp(),
		Timeflow(m, false),
	}
}
