package analysis

// timeflow: the interprocedural upgrade of the old determinism rule.
//
// The old rule flagged direct uses of the wall clock and the global
// math/rand source inside simulated packages by name. That misses the
// laundering cases: a helper in a non-simulated package that returns
// time.Now() and is called from netsim, or a cmd/ tool that stamps a
// simulated struct's field with wall-clock time before handing it to
// the kernel. timeflow tracks those values with a flow-sensitive may
// (taint) analysis over the CFG, with per-function "returns tainted"
// summaries computed over the module call graph:
//
//   - sources: the banned time.* calls and global math/rand draws, plus
//     calls to module functions summarized as returning such a value
//   - propagation: assignments, arithmetic, field/index reads,
//     conversions, composite literals, method calls on tainted values
//   - sinks: a tainted value crossing into the simulated world — as an
//     argument to a simulated-package function or method, written to a
//     field of a simulated-package type, or embedded in a composite
//     literal of a simulated-package type
//
// In direct mode (simulated packages and fixtures) the rule also
// reports plain in-package uses of the banned names, subsuming the old
// determinism rule. Non-simulated packages get flow checking only, so
// tests and tools may use time freely as long as none of it leaks into
// the simulation.

import (
	"go/ast"
	"go/types"
)

// bannedTime are the package time functions that read or wait on the
// wall clock. Types and constants (time.Duration, time.Millisecond) are
// fine: only the clock itself is off limits.
var bannedTime = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
}

// allowedRand are the math/rand identifiers that do not touch the
// global source: explicitly seeded constructors and the types
// themselves. Everything else (rand.Intn, rand.Shuffle, rand.Seed, ...)
// draws from process-global state and breaks seed reproducibility.
var allowedRand = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
	"Rand":      true,
	"Source":    true,
	"Source64":  true,
	"Zipf":      true,
}

// bannedSelector reports whether sel names a wall-clock / global-rand
// entry point, with a printable name.
func bannedSelector(p *Package, sel *ast.SelectorExpr) (string, bool) {
	switch qualifierPath(p, sel) {
	case "time":
		if bannedTime[sel.Sel.Name] {
			return "time." + sel.Sel.Name, true
		}
	case "math/rand", "math/rand/v2":
		if !allowedRand[sel.Sel.Name] {
			return "rand." + sel.Sel.Name, true
		}
	}
	return "", false
}

// taintFact is the set of definitely-possibly-tainted locals on a path
// (may analysis: union join, absence means clean).
type taintFact map[types.Object]bool

func joinTaint(a, b taintFact) taintFact {
	out := make(taintFact, len(a)+len(b))
	for k := range a {
		out[k] = true
	}
	for k := range b {
		out[k] = true
	}
	return out
}

func equalTaint(a, b taintFact) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// taintOf reports (memoized) whether calling fn can return a
// wall-clock/global-rand-derived value. Recursive cycles and functions
// without source summarize as clean.
func (m *Module) taintOf(fn *types.Func) bool {
	if fn == nil {
		return false
	}
	if v, ok := m.taint[fn]; ok {
		return v
	}
	if m.taintBusy[fn] {
		return false
	}
	src, ok := m.funcDecl(fn)
	if !ok {
		return false
	}
	m.taintBusy[fn] = true
	tw := &taintWalk{m: m, p: src.pkg}
	cfg := BuildCFG(src.decl.Body)
	in, _ := ForwardSolve(cfg, tw.spec())
	tainted := false
	for _, b := range cfg.Exit.Preds {
		fact, ok := in[b]
		if !ok {
			continue
		}
		w := &taintWalk{m: m, p: src.pkg, f: fact.clone()}
		for _, n := range b.Nodes {
			if ret, isRet := n.(*ast.ReturnStmt); isRet {
				for _, r := range ret.Results {
					if w.tainted(r) {
						tainted = true
					}
				}
			}
			w.node(n)
		}
	}
	delete(m.taintBusy, fn)
	m.taint[fn] = tainted
	return tainted
}

func (f taintFact) clone() taintFact {
	out := make(taintFact, len(f))
	for k := range f {
		out[k] = true
	}
	return out
}

// taintWalk evaluates taint propagation and sinks over CFG nodes. When
// report is non-nil, sink hits are reported.
type taintWalk struct {
	m      *Module
	p      *Package
	f      taintFact
	report Reporter
}

func (w *taintWalk) spec() DataflowSpec[taintFact] {
	return DataflowSpec[taintFact]{
		Entry: taintFact{},
		Join:  joinTaint,
		Transfer: func(b *Block, in taintFact) taintFact {
			tw := &taintWalk{m: w.m, p: w.p, f: in.clone()}
			for _, n := range b.Nodes {
				tw.node(n)
			}
			return tw.f
		},
		Equal: equalTaint,
	}
}

// tainted reports whether evaluating e can yield a wall-clock /
// global-rand-derived value under the current fact.
func (w *taintWalk) tainted(e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return w.f[w.p.Info.Uses[x]]
	case *ast.CallExpr:
		if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
			if _, banned := bannedSelector(w.p, sel); banned {
				return true
			}
			// Method on a tainted value: now.UnixNano(), r.Intn(...).
			if w.tainted(sel.X) {
				return true
			}
		}
		if tv, ok := w.p.Info.Types[x.Fun]; ok && tv.IsType() {
			// Conversion: int64(t) stays tainted.
			return len(x.Args) == 1 && w.tainted(x.Args[0])
		}
		return w.m.taintOf(calleeOf(w.p.Info, x))
	case *ast.BinaryExpr:
		return w.tainted(x.X) || w.tainted(x.Y)
	case *ast.UnaryExpr:
		return w.tainted(x.X)
	case *ast.StarExpr:
		return w.tainted(x.X)
	case *ast.SelectorExpr:
		if _, banned := bannedSelector(w.p, x); banned {
			return true
		}
		return w.tainted(x.X)
	case *ast.IndexExpr:
		return w.tainted(x.X)
	case *ast.SliceExpr:
		return w.tainted(x.X)
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if w.tainted(el) {
				return true
			}
		}
	case *ast.TypeAssertExpr:
		return w.tainted(x.X)
	}
	return false
}

// simulatedNamed returns the module-relative package of t's named type
// if that package is simulated, else "".
func (w *taintWalk) simulatedNamed(t types.Type) string {
	named := namedOf(t)
	if named == nil || named.Obj().Pkg() == nil {
		return ""
	}
	rel, ok := w.m.Rel(named.Obj().Pkg().Path())
	if !ok || !Simulated(rel) {
		return ""
	}
	return rel
}

func (w *taintWalk) node(n ast.Node) {
	ast.Inspect(n, func(x ast.Node) bool {
		if x == nil {
			return false
		}
		switch x := x.(type) {
		case *ast.FuncLit:
			return false // analyzed as its own flow problem
		case *ast.AssignStmt:
			w.assign(x)
		case *ast.CallExpr:
			w.sinkCall(x)
		case *ast.CompositeLit:
			w.sinkComposite(x)
		}
		return true
	})
}

func (w *taintWalk) assign(x *ast.AssignStmt) {
	taints := make([]bool, len(x.Lhs))
	if len(x.Rhs) == len(x.Lhs) {
		for i, rhs := range x.Rhs {
			taints[i] = w.tainted(rhs)
		}
	} else if len(x.Rhs) == 1 {
		// Tuple assignment from one call: taint all or nothing.
		t := w.tainted(x.Rhs[0])
		for i := range taints {
			taints[i] = t
		}
	}
	for i, lhs := range x.Lhs {
		lhs = ast.Unparen(lhs)
		if id, ok := lhs.(*ast.Ident); ok {
			obj := w.p.Info.Defs[id]
			if obj == nil {
				obj = w.p.Info.Uses[id]
			}
			if obj == nil {
				continue
			}
			if taints[i] {
				w.f[obj] = true
			} else {
				delete(w.f, obj) // strong update: cleansed
			}
			continue
		}
		// Sink: write into a field of a simulated-package value.
		if sel, ok := lhs.(*ast.SelectorExpr); ok && taints[i] && w.report != nil {
			if tv, ok := w.p.Info.Types[sel.X]; ok {
				if rel := w.simulatedNamed(tv.Type); rel != "" {
					w.report(x.Pos(), "wall-clock/global-rand value is written into field %s of simulated type %s (%s); simulated state must be derived from the kernel's virtual clock and seeded generator",
						sel.Sel.Name, tv.Type.String(), rel)
				}
			}
		}
	}
}

func (w *taintWalk) sinkCall(call *ast.CallExpr) {
	if w.report == nil {
		return
	}
	fn := calleeOf(w.p.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	rel, ok := w.m.Rel(fn.Pkg().Path())
	if !ok || !Simulated(rel) {
		return
	}
	if prel, ok := w.m.Rel(w.p.Types.Path()); ok && prel == rel {
		// In-package calls are covered by direct mode / in-callee checks;
		// the sink is the package boundary.
		return
	}
	for _, arg := range call.Args {
		if w.tainted(arg) {
			w.report(arg.Pos(), "wall-clock/global-rand value flows into simulated package %s via call to %s; pass kernel-derived time/randomness instead",
				rel, fn.Name())
		}
	}
}

func (w *taintWalk) sinkComposite(lit *ast.CompositeLit) {
	if w.report == nil {
		return
	}
	tv, ok := w.p.Info.Types[lit]
	if !ok {
		return
	}
	rel := w.simulatedNamed(tv.Type)
	if rel == "" {
		return
	}
	if prel, ok := w.m.Rel(w.p.Types.Path()); ok && Simulated(prel) {
		return // inside the simulated world, direct mode owns reporting
	}
	for _, el := range lit.Elts {
		val := el
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			val = kv.Value
		}
		if w.tainted(val) {
			w.report(val.Pos(), "wall-clock/global-rand value is embedded in composite literal of simulated type %s (%s)",
				tv.Type.String(), rel)
		}
	}
}

// Timeflow checks that wall-clock time and global math/rand values
// never reach the simulated world. With direct=true (simulated packages
// and fixtures) it additionally reports every in-package use of the
// banned names, subsuming the old purely syntactic determinism rule.
func Timeflow(m *Module, direct bool) Rule {
	return Rule{
		Name: "timeflow",
		Doc:  "wall-clock time and global math/rand must not be used in, or flow into, simulated packages",
		Check: func(p *Package, report Reporter) {
			if direct {
				for _, f := range p.Files {
					ast.Inspect(f, func(n ast.Node) bool {
						sel, ok := n.(*ast.SelectorExpr)
						if !ok {
							return true
						}
						if name, banned := bannedSelector(p, sel); banned {
							switch qualifierPath(p, sel) {
							case "time":
								report(sel.Pos(), "%s uses the wall clock; simulated code must use the kernel's virtual clock (sim.Kernel.Now / After)", name)
							default:
								report(sel.Pos(), "%s draws from the global, wall-seeded source; use the kernel's seeded generator (sim.Kernel.Rand)", name)
							}
						}
						return true
					})
				}
			}
			for _, f := range p.Files {
				for _, d := range f.Decls {
					if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
						m.timeflowBody(p, fd.Body, report)
					}
				}
			}
		},
	}
}

// timeflowBody runs the taint flow over one function body and each
// nested function literal (literals start from a clean fact: captured
// taint is out of scope for this analysis).
func (m *Module) timeflowBody(p *Package, body *ast.BlockStmt, report Reporter) {
	var bodies []*ast.BlockStmt
	bodies = append(bodies, body)
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			bodies = append(bodies, lit.Body)
		}
		return true
	})
	for _, b := range bodies {
		tw := &taintWalk{m: m, p: p}
		cfg := BuildCFG(b)
		in, _ := ForwardSolve(cfg, tw.spec())
		for _, blk := range cfg.ReversePostorder() {
			fact, ok := in[blk]
			if !ok {
				continue
			}
			w := &taintWalk{m: m, p: p, f: fact.clone(), report: report}
			for _, n := range blk.Nodes {
				w.node(n)
			}
		}
	}
}
