package analysis

import (
	"go/ast"
	"go/types"
)

// effectCalls are method names whose invocation has externally visible,
// order-sensitive consequences in this codebase: transmitting on the
// simulated wire, scheduling kernel events, or waking processes. Doing
// any of these from inside a map iteration leaks Go's randomized map
// order into virtual-time behavior, breaking bit-identical replay.
var effectCalls = map[string]string{
	"Send":        "transmits on the wire",
	"TrySend":     "transmits on the wire",
	"SendMsg":     "transmits on the wire",
	"TrySendMsg":  "transmits on the wire",
	"SendTo":      "transmits on the wire",
	"Write":       "writes to a transport",
	"TryWrite":    "writes to a transport",
	"Flush":       "flushes queued wire traffic",
	"FlushKey":    "flushes queued wire traffic",
	"FlushActive": "flushes queued wire traffic",
	"Enqueue":     "queues for delivery",
	"enqueue":     "queues for delivery",
	"sendChunks":  "transmits on the wire",
	"output":      "transmits on the wire",
	"After":       "schedules a kernel event",
	"At":          "schedules a kernel event",
	"Spawn":       "schedules a kernel process",
	"Signal":      "wakes a process",
	"Broadcast":   "wakes processes",
	"Abort":       "transmits an abort on the wire",
	"Kill":        "kills a transport session",
	"Reset":       "resets a connection on the wire",
}

// MapOrder flags ranging over a map when the loop body has
// ordering-sensitive effects — wire sends, event scheduling, process
// wakeups, or appends into shared state that later feeds the wire. Map
// iteration order is deliberately randomized by the runtime, so any
// such loop makes two runs with the same seed diverge. Iterate a sorted
// key slice instead (collect keys, sort, then index), or keep map loops
// to pure bookkeeping (delete, counting, in-place mutation).
func MapOrder() Rule {
	return Rule{
		Name: "maporder",
		Doc:  "no wire sends, event scheduling, wakeups, or shared-state appends inside a range over a map",
		Check: func(p *Package, report Reporter) {
			for _, f := range p.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					rng, ok := n.(*ast.RangeStmt)
					if !ok {
						return true
					}
					t := p.Info.TypeOf(rng.X)
					if t == nil {
						return true
					}
					if _, ok := t.Underlying().(*types.Map); !ok {
						return true
					}
					ast.Inspect(rng.Body, func(b ast.Node) bool {
						switch b := b.(type) {
						case *ast.SendStmt:
							report(b.Pos(), "channel send inside a range over a map: map order is randomized, so delivery order would differ between runs")
						case *ast.GoStmt:
							report(b.Pos(), "goroutine spawned inside a range over a map: map order is randomized, so launch order would differ between runs")
						case *ast.CallExpr:
							sel, ok := b.Fun.(*ast.SelectorExpr)
							if !ok {
								return true
							}
							if what, bad := effectCalls[sel.Sel.Name]; bad {
								report(b.Pos(), "%s %s inside a range over a map: map order is randomized, so the effect order would differ between runs; iterate sorted keys instead", sel.Sel.Name, what)
							}
						case *ast.AssignStmt:
							// x.f = append(x.f, ...) grows shared state in
							// map order; the appended order usually feeds
							// the wire or a scheduler later.
							for i, rhs := range b.Rhs {
								call, ok := rhs.(*ast.CallExpr)
								if !ok {
									continue
								}
								id, ok := call.Fun.(*ast.Ident)
								if !ok || id.Name != "append" {
									continue
								}
								if _, ok := p.Info.Uses[id].(*types.Builtin); !ok {
									continue
								}
								if i < len(b.Lhs) {
									if _, ok := b.Lhs[i].(*ast.SelectorExpr); ok {
										report(b.Pos(), "append to shared state inside a range over a map accumulates in randomized order; collect into a local, sort, then append")
									}
								}
							}
						}
						return true
					})
					return true
				})
			}
		},
	}
}
