package analysis

// probepure: oracle hooks must observe, never interfere.
//
// The chaos oracle hangs Probe/Observer structs full of func-valued
// fields into the protocol stacks (sctp.Probe, rmcast.Probe,
// rpi.Observer, ...). The whole methodology rests on those hooks being
// read-only: a hook that mutates protocol state or recycles a buffer
// perturbs the very run it is checking, and the oracle's verdicts stop
// meaning anything.
//
// The rule finds every function bound to a func field of a struct whose
// type name contains "Probe" or "Observer" (composite literals and
// field assignments), then checks the bound function — and, through
// memoized purity summaries, everything it calls inside the module —
// for:
//
//   - writes through pointers to protected-package types (the simulated
//     protocol world plus the wire buffer pool; the chaos package's own
//     bookkeeping is exempt)
//   - channel sends
//   - calls through func values (unauditable, assumed impure)
//
// Protected-package accessors that only read (conn.LocalAddr(),
// pkt.WireSize()) summarize as pure, so hooks can interrogate the
// protocols freely.

import (
	"go/ast"
	"go/types"
	"strings"
)

// protectedPkg reports whether the module-relative package rel holds
// protocol state a probe hook must not mutate.
func protectedPkg(rel string) bool {
	if rel == "internal/chaos" {
		return false // the oracle's own bookkeeping
	}
	return Simulated(rel) || rel == "internal/wire"
}

// protectedWrite classifies an assignment target: writing a field or
// element reached through a value of a protected-package named type.
func (m *Module) protectedWrite(p *Package, lhs ast.Expr) (string, bool) {
	var base ast.Expr
	switch x := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		base = x.X
	case *ast.IndexExpr:
		base = x.X
	case *ast.StarExpr:
		base = x.X
	default:
		return "", false
	}
	// Check the immediate base and its root: e.ops[k].field should trip
	// on either the map's owner or the element type.
	for _, e := range []ast.Expr{base, rootIdent(base)} {
		if e == nil {
			continue
		}
		var t types.Type
		if tv, ok := p.Info.Types[e]; ok {
			t = tv.Type
		} else if id, ok := e.(*ast.Ident); ok {
			if obj := p.Info.Uses[id]; obj != nil {
				t = obj.Type()
			}
		}
		if t == nil {
			continue
		}
		named := namedOf(t)
		if named == nil || named.Obj().Pkg() == nil {
			continue
		}
		rel, ok := m.Rel(named.Obj().Pkg().Path())
		if ok && protectedPkg(rel) {
			return rel, true
		}
	}
	return "", false
}

// impureOf returns (memoized) why fn is impure for probe purposes, or
// "" when it is pure. Functions without module source are assumed pure:
// the stdlib cannot reach protocol state. Recursion summarizes as pure
// to break cycles (the cycle's other members still get checked).
func (m *Module) impureOf(fn *types.Func) string {
	if fn == nil {
		return ""
	}
	if why, ok := m.impure[fn]; ok {
		return why
	}
	if m.impureBusy[fn] {
		return ""
	}
	src, ok := m.funcDecl(fn)
	if !ok {
		return ""
	}
	m.impureBusy[fn] = true
	why, _ := m.impurityIn(src.pkg, src.decl.Body)
	delete(m.impureBusy, fn)
	m.impure[fn] = why
	return why
}

// impurityIn scans a body for probe-impure operations, returning the
// first reason and its node (nil node when pure).
func (m *Module) impurityIn(p *Package, body ast.Node) (string, ast.Node) {
	var why string
	var at ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if why != "" {
			return false
		}
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if rel, bad := m.protectedWrite(p, lhs); bad {
					why, at = "writes protocol state in "+rel, x
					return false
				}
			}
		case *ast.IncDecStmt:
			if rel, bad := m.protectedWrite(p, x.X); bad {
				why, at = "writes protocol state in "+rel, x
				return false
			}
		case *ast.SendStmt:
			why, at = "sends on a channel", x
			return false
		case *ast.CallExpr:
			fn := calleeOf(p.Info, x)
			if fn == nil {
				if builtinName(p, x) != "" || isConversion(p, x) {
					return true
				}
				// A func-valued field on a checker-side struct (e.g.
				// Oracle.clock, bound to the kernel's Now at construction)
				// is the checker's own plumbing: the binding sites are in
				// unprotected code this rule already sees. Fields of
				// protected-package structs and bare func values stay
				// flagged — they can smuggle in anything.
				if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
					if s, ok := p.Info.Selections[sel]; ok && s.Kind() == types.FieldVal {
						if named := namedOf(s.Recv()); named != nil && named.Obj().Pkg() != nil {
							rel, ok := m.Rel(named.Obj().Pkg().Path())
							if ok && !protectedPkg(rel) {
								return true
							}
						}
					}
				}
				if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
					if obj := p.Info.Uses[id]; obj != nil {
						// A local closure bound exactly once is as
						// auditable as a named function: check its body.
						if lit := m.funcLitFor(p, obj); lit != nil {
							if calleeWhy, _ := m.impurityIn(p, lit.Body); calleeWhy != "" {
								why, at = "calls "+id.Name+", which "+calleeWhy, x
								return false
							}
							return true
						}
					}
					if _, isVar := p.Info.Uses[id].(*types.Var); isVar {
						why, at = "calls through func value "+id.Name, x
						return false
					}
				}
				why, at = "calls through a func value", x
				return false
			}
			if !moduleFunc(m, fn) {
				return true // stdlib cannot touch protocol state
			}
			if kind := m.poolKindOf(fn); kind == poolRelease || kind == poolRetain {
				why, at = "changes a pooled buffer's refcount via "+fn.Name(), x
				return false
			}
			if calleeWhy := m.impureOf(fn); calleeWhy != "" {
				why, at = "calls "+fn.Name()+", which "+calleeWhy, x
				return false
			}
		case *ast.GoStmt:
			why, at = "starts a goroutine", x
			return false
		}
		return true
	})
	return why, at
}

// probeStructType reports whether t names a Probe/Observer hook struct.
func probeStructType(t types.Type) bool {
	named := namedOf(t)
	if named == nil {
		return false
	}
	name := named.Obj().Name()
	return strings.Contains(name, "Probe") || strings.Contains(name, "Observer")
}

// ProbePure checks that every function bound into a Probe/Observer hook
// field is transitively free of protocol-state mutation.
func ProbePure(m *Module) Rule {
	return Rule{
		Name: "probepure",
		Doc:  "functions bound to Probe/Observer hook fields must not mutate protocol state, send, or call unauditable func values",
		Check: func(p *Package, report Reporter) {
			check := func(bindPos ast.Node, field string, rhs ast.Expr) {
				switch v := ast.Unparen(rhs).(type) {
				case *ast.FuncLit:
					if why, at := m.impurityIn(p, v.Body); why != "" {
						report(at.Pos(), "probe hook %s %s; oracle hooks must only observe", field, why)
					}
				case *ast.Ident:
					if fn, ok := p.Info.Uses[v].(*types.Func); ok {
						if why := m.impureOf(fn); why != "" {
							report(bindPos.Pos(), "probe hook %s binds %s, which %s; oracle hooks must only observe", field, fn.Name(), why)
						}
					}
				case *ast.SelectorExpr:
					if s, ok := p.Info.Selections[v]; ok {
						if fn, ok := s.Obj().(*types.Func); ok {
							if why := m.impureOf(fn); why != "" {
								report(bindPos.Pos(), "probe hook %s binds %s, which %s; oracle hooks must only observe", field, fn.Name(), why)
							}
						}
					}
				}
			}
			for _, f := range p.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					switch x := n.(type) {
					case *ast.CompositeLit:
						tv, ok := p.Info.Types[x]
						if !ok || !probeStructType(tv.Type) {
							return true
						}
						for _, el := range x.Elts {
							kv, ok := el.(*ast.KeyValueExpr)
							if !ok {
								continue
							}
							key, ok := kv.Key.(*ast.Ident)
							if !ok {
								continue
							}
							check(kv, key.Name, kv.Value)
						}
					case *ast.AssignStmt:
						for i, lhs := range x.Lhs {
							if i >= len(x.Rhs) {
								break
							}
							sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
							if !ok {
								continue
							}
							tv, ok := p.Info.Types[sel.X]
							if !ok || !probeStructType(tv.Type) {
								continue
							}
							check(x, sel.Sel.Name, x.Rhs[i])
						}
					}
					return true
				})
			}
		},
	}
}
