package analysis

// A tiny forward dataflow solver over the CFGs built by BuildCFG. Rules
// supply the lattice (Join, Equal), the transfer function over one
// basic block, and the entry fact; the solver iterates to a fixpoint
// with a reverse-postorder worklist.
//
// Facts flow only along edges between reachable blocks: the in-fact of
// a block joins the out-facts of predecessors that have been computed,
// so must-analyses never get polluted by unreachable code.

// DataflowSpec parameterizes one forward analysis with fact type F.
type DataflowSpec[F any] struct {
	// Entry is the fact at the function entry.
	Entry F
	// Join merges facts at control-flow merges. It must be commutative,
	// associative, and monotone toward a fixpoint (typically joining
	// conflicting values to a ⊤ "unknown" that absorbs).
	Join func(a, b F) F
	// Transfer computes the out-fact of a block from its in-fact. It
	// must not mutate in; return a fresh value when anything changes.
	Transfer func(b *Block, in F) F
	// Equal reports whether two facts are the same (fixpoint test).
	Equal func(a, b F) bool
}

// ForwardSolve runs the analysis to a fixpoint and returns the in- and
// out-facts of every reachable block.
func ForwardSolve[F any](c *CFG, spec DataflowSpec[F]) (in, out map[*Block]F) {
	order := c.ReversePostorder()
	pos := make(map[*Block]int, len(order))
	for i, b := range order {
		pos[b] = i
	}
	in = make(map[*Block]F, len(order))
	out = make(map[*Block]F, len(order))
	haveOut := make(map[*Block]bool, len(order))

	inWork := make([]bool, len(order))
	work := make([]*Block, 0, len(order))
	push := func(b *Block) {
		if i, ok := pos[b]; ok && !inWork[i] {
			inWork[i] = true
			work = append(work, b)
		}
	}
	for _, b := range order {
		push(b)
	}

	for len(work) > 0 {
		// Pop the block earliest in reverse postorder: loops converge in
		// near-minimal passes.
		best := 0
		for i := 1; i < len(work); i++ {
			if pos[work[i]] < pos[work[best]] {
				best = i
			}
		}
		b := work[best]
		work[best] = work[len(work)-1]
		work = work[:len(work)-1]
		inWork[pos[b]] = false

		var fact F
		have := false
		if b == c.Entry() {
			fact = spec.Entry
			have = true
		}
		for _, p := range b.Preds {
			if !haveOut[p] {
				continue
			}
			if !have {
				fact = out[p]
				have = true
			} else {
				fact = spec.Join(fact, out[p])
			}
		}
		if !have {
			// No computed predecessor yet (possible on first visits of
			// loop bodies before their back-edge source): wait for a
			// later push.
			continue
		}
		in[b] = fact
		next := spec.Transfer(b, fact)
		if haveOut[b] && spec.Equal(out[b], next) {
			continue
		}
		out[b] = next
		haveOut[b] = true
		for _, s := range b.Succs {
			push(s)
		}
	}
	return in, out
}

// ReversePostorder returns the reachable blocks in reverse postorder
// (every block before its successors, back edges aside).
func (c *CFG) ReversePostorder() []*Block {
	var order []*Block
	seen := make(map[*Block]bool)
	var dfs func(*Block)
	dfs = func(b *Block) {
		seen[b] = true
		for _, s := range b.Succs {
			if !seen[s] {
				dfs(s)
			}
		}
		order = append(order, b)
	}
	dfs(c.Entry())
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}
