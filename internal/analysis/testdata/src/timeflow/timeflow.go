// Package fixtimeflow seeds wall-clock and global-rand violations for
// the timeflow analyzer's direct mode, which subsumes the old
// determinism rule: every in-package use of the banned names is
// flagged. Every flagged line carries a want comment with the expected
// diagnostic substring.
package fixtimeflow

import (
	"math/rand"
	mrand "math/rand"
	"time"
)

// virtualNow stands in for the sim kernel's virtual clock.
func virtualNow() time.Duration { return 42 * time.Millisecond }

func Violations() time.Duration {
	t0 := time.Now()             // want "time.Now uses the wall clock"
	time.Sleep(time.Millisecond) // want "time.Sleep uses the wall clock"
	d := time.Since(t0)          // want "time.Since uses the wall clock"
	n := rand.Intn(8)            // want "rand.Intn draws from the global"
	m := mrand.Int63()           // want "rand.Int63 draws from the global"
	return d + virtualNow() + time.Duration(n) + time.Duration(m)
}

// Fine shows the approved forms: explicit seeding and pure time types.
func Fine() int {
	rng := rand.New(rand.NewSource(7))
	var d time.Duration = 3 * time.Second
	_ = d
	return rng.Intn(10)
}
