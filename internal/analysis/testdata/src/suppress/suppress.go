// Package fixsuppress proves the //simlint:allow mechanism: a
// justified directive suppresses its finding (standalone-line or
// trailing-comment form), an empty justification is itself an error
// and suppresses nothing, a missing rule is rejected, and an unknown
// rule name is rejected.
package fixsuppress

import "time"

func Suppressed() time.Time {
	//simlint:allow timeflow fixture: this wall-clock read is the subject of the suppression-mechanism test
	return time.Now()
}

func Trailing() time.Time {
	return time.Now() //simlint:allow timeflow fixture: trailing-comment form of the same test
}

func Unjustified() time.Time {
	// wantnext "missing its justification" "time.Now uses the wall clock"
	return time.Now() //simlint:allow timeflow
}

func MissingRule() time.Time {
	// wantnext "needs a rule" "time.Now uses the wall clock"
	return time.Now() //simlint:allow
}

func UnknownRule() time.Time {
	// wantnext "names unknown rule" "time.Now uses the wall clock"
	return time.Now() //simlint:allow nosuchrule the rule name is misspelled on purpose
}
