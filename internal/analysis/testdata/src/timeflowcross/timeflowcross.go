// Package fixtimeflowcross seeds cross-package taint violations for
// the timeflow analyzer's flow-only mode: this package is NOT part of
// the simulated world, so reading the wall clock locally is fine — but
// letting such a value reach a simulated package (as a call argument, a
// field write, or a composite-literal element) is not, even when it is
// laundered through a helper's return value.
package fixtimeflowcross

import (
	"time"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// wallSeed launders the wall clock through a return value; flow-only
// mode does not flag the read itself.
func wallSeed() int64 {
	return time.Now().UnixNano()
}

// BadDirectArg passes a wall-clock value straight into the kernel.
func BadDirectArg() *sim.Kernel {
	return sim.New(time.Now().UnixNano()) // want "flows into simulated package internal/sim"
}

// BadLaunderedArg hides the source behind a module helper; the taint
// summary of wallSeed carries it across the call.
func BadLaunderedArg() *sim.Kernel {
	return sim.New(wallSeed()) // want "flows into simulated package internal/sim"
}

// BadThroughLocal routes the taint through locals and arithmetic.
func BadThroughLocal(k *sim.Kernel) error {
	t0 := time.Now()
	budget := time.Since(t0) + time.Second
	return k.RunFor(budget) // want "flows into simulated package internal/sim"
}

// BadFieldWrite stamps a simulated struct's field with wall-clock time.
func BadFieldWrite(lp *netsim.LinkParams) {
	lp.Delay = time.Since(time.Unix(0, 0)) // want "written into field Delay of simulated type"
}

// BadComposite embeds the taint in a simulated composite literal.
func BadComposite() netsim.LinkParams {
	return netsim.LinkParams{
		Jitter: time.Since(time.Unix(0, 0)), // want "embedded in composite literal of simulated type"
	}
}

// FineSeed passes constants; FineLocalClock reads the wall clock for
// its own (non-simulated) purposes.
func FineSeed() *sim.Kernel {
	return sim.New(42)
}

func FineLocalClock() time.Duration {
	t0 := time.Now()
	return time.Since(t0)
}

// FineCleansed overwrites the tainted local before it reaches the
// kernel: the strong update clears the taint.
func FineCleansed(k *sim.Kernel) error {
	d := time.Since(time.Unix(0, 0))
	d = 5 * time.Millisecond
	return k.RunFor(d)
}
