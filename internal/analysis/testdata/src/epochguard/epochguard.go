// Package fixepochguard seeds epoch-guard violations for the
// epochguard analyzer's golden test. The rule is shape-based: any
// by-value struct parameter with an epoch field is a frame, any
// pointer-to-struct with an epoch field is epoch-stamped state, and
// writes to that state must be dominated by a comparison against the
// frame's epoch (directly, or via a validator helper that performs the
// comparison on the forwarded frame).
package fixepochguard

type frame struct {
	op    int
	epoch uint32
	root  int
}

type opState struct {
	epoch uint32
	root  int
	naks  int
}

type engine struct {
	ops map[int]*opState
}

// check is a validator: callers passing the frame to it are guarded.
func (e *engine) check(f frame, o *opState) bool {
	return f.epoch == o.epoch
}

// GoodGuarded compares the frame's epoch before mutating.
func (e *engine) GoodGuarded(f frame) {
	o := e.ops[f.op]
	if o == nil {
		return
	}
	if f.epoch != o.epoch {
		return
	}
	o.naks++
	o.root = f.root
}

// GoodViaValidator delegates the comparison to check.
func (e *engine) GoodViaValidator(f frame) {
	o := e.ops[f.op]
	if o == nil || !e.check(f, o) {
		return
	}
	o.naks++
}

// GoodRaisesEpoch may adopt a newer epoch, but only after comparing.
func (e *engine) GoodRaisesEpoch(f frame) {
	o := e.ops[f.op]
	if o == nil {
		return
	}
	if f.epoch > o.epoch {
		o.epoch = f.epoch
		o.root = f.root
	}
}

// BadUnguarded mutates state without ever looking at the epoch: a stale
// retransmission from a deposed root would be applied.
func (e *engine) BadUnguarded(f frame) {
	o := e.ops[f.op]
	if o == nil {
		return
	}
	o.naks++ // want "not dominated by an epoch comparison"
}

// BadBranchOnly guards the root arm but not the receiver arm: the
// comparison exists but does not dominate the second write.
func (e *engine) BadBranchOnly(f frame, isRoot bool) {
	o := e.ops[f.op]
	if o == nil {
		return
	}
	if isRoot {
		if f.epoch != o.epoch {
			return
		}
		o.naks++
		return
	}
	o.root = f.root // want "not dominated by an epoch comparison"
}

// FineLocalCopy mutates a by-value frame's own fields: that is a local
// copy, not shared state.
func (e *engine) FineLocalCopy(f frame) int {
	f.root = 0
	return f.root
}

// FineNoFrame has no frame parameter, so the rule does not apply even
// though it writes stamped state (registration/bookkeeping paths).
func (e *engine) FineNoFrame(op int) {
	o := e.ops[op]
	if o != nil {
		o.naks = 0
	}
}
