// Package fixsentinel seeds == / != / switch-case comparisons against
// sentinel errors for the sentinel analyzer's golden test. Both a
// canonical transport sentinel and a module-local one (the errBadCRC
// pattern) must be caught.
package fixsentinel

import (
	"errors"
	"fmt"

	"repro/internal/transport"
)

var errLocal = errors.New("fixture: local sentinel")

func Violations(err error) int {
	if err == transport.ErrWouldBlock { // want "sentinel ErrWouldBlock compared with =="
		return 1
	}
	if err != errLocal { // want "sentinel errLocal compared with !="
		return 2
	}
	switch err {
	case transport.ErrClosed: // want "switch case compares sentinel ErrClosed"
		return 3
	}
	return 0
}

// Fine shows the approved form: errors.Is classifies wrapped and bare
// sentinels alike, and nil checks are untouched.
func Fine(err error) bool {
	wrapped := fmt.Errorf("context: %w", transport.ErrTimeout)
	return errors.Is(err, transport.ErrWouldBlock) ||
		errors.Is(wrapped, transport.ErrTimeout) || err == nil
}
