// Package fixprobepure seeds oracle-hook purity violations for the
// probepure analyzer's golden test. Probe is a hook struct by shape
// (its name contains "Probe"); functions bound to its fields must not
// mutate protocol state (here: the sctp package), send on channels,
// recycle pooled buffers, or call through unauditable func values —
// directly or through module helpers.
package fixprobepure

import (
	"repro/internal/sctp"
	"repro/internal/wire"
)

// Probe mimics the protocol probe structs: func-valued hook fields.
type Probe struct {
	OnDeliver func(m *sctp.Message)
	OnCount   func(n int)
}

// oracle is checker-side bookkeeping: hooks may mutate it freely, and
// its func-valued fields (bound at construction, e.g. to the kernel's
// clock) may be called.
type oracle struct {
	seen   int
	frames []int
	clock  func() int
}

// escapeHatch is a bare func value: calling it from a hook is
// unauditable and must be flagged.
var escapeHatch func()

func (o *oracle) note(n int) { o.seen += n }

// scrub is an impure helper: it mutates protocol state.
func scrub(m *sctp.Message) { m.Data = m.Data[:0] }

var sink = make(chan int, 1)

// Good hooks only read protocol state and write oracle state.
func Good(o *oracle) *Probe {
	return &Probe{
		OnDeliver: func(m *sctp.Message) {
			if m != nil {
				o.seen += len(m.Data)
				o.frames = append(o.frames, int(m.Stream))
			}
		},
		OnCount: func(n int) {
			o.note(n + o.clock())
		},
	}
}

// BadEscapeHatch calls a bare func value from a hook.
func BadEscapeHatch() *Probe {
	return &Probe{
		OnCount: func(n int) {
			escapeHatch() // want "calls through func value escapeHatch"
		},
	}
}

// BadDirectWrite mutates protocol state inline.
func BadDirectWrite() *Probe {
	return &Probe{
		OnDeliver: func(m *sctp.Message) {
			m.Data = nil // want "writes protocol state in internal/sctp"
		},
	}
}

// BadSend smuggles observations out through a channel.
func BadSend() *Probe {
	return &Probe{
		OnCount: func(n int) {
			sink <- n // want "sends on a channel"
		},
	}
}

// BadTransitive reaches the mutation through a module helper.
func BadTransitive() *Probe {
	return &Probe{
		OnDeliver: func(m *sctp.Message) {
			scrub(m) // want "calls scrub, which writes protocol state"
		},
	}
}

// BadRecycle perturbs the buffer pool from inside a hook.
func BadRecycle() *Probe {
	return &Probe{
		OnDeliver: func(m *sctp.Message) {
			wire.PutBuf(m.Data) // want "changes a pooled buffer's refcount via PutBuf"
		},
	}
}

// WithClosures exercises single-binding local closures: they are as
// auditable as named functions, so a pure one passes and an impure one
// is reported through the same transitive machinery.
func WithClosures(o *oracle) *Probe {
	bump := func(n int) { o.seen += n }
	poison := func(m *sctp.Message) { m.Data = nil }
	return &Probe{
		OnCount: func(n int) { bump(n) },
		OnDeliver: func(m *sctp.Message) {
			poison(m) // want "calls poison, which writes protocol state"
		},
	}
}

// BadRebind catches the assignment form, binding a named impure
// function after construction.
func BadRebind(p *Probe) {
	p.OnDeliver = scrub // want "binds scrub, which writes protocol state"
}

// FineRebind binds a pure reader the same way.
func FineRebind(p *Probe, o *oracle) {
	p.OnCount = o.note
}
