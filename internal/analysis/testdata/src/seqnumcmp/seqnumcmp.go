// Package fixseqnum seeds raw magnitude comparisons on RFC 1982 serial
// numbers for the seqnum analyzer's golden test.
package fixseqnum

import "repro/internal/seqnum"

func Violations(a, b seqnum.V, s, t seqnum.S16) (bool, seqnum.V) {
	x := a < b     // want "raw < on seqnum.V"
	y := a >= b    // want "raw >= on seqnum.V"
	z := s > t     // want "raw > on seqnum.S16"
	w := max(a, b) // want "builtin max on seqnum.V"
	return x || y || z, w
}

// ViolationsIData seeds the same bug class on the RFC 8260 message and
// fragment sequence numbers (I-DATA MID/FSN wrap exactly like the TSN).
func ViolationsIData(m, n seqnum.MID, f, g seqnum.FSN) (bool, seqnum.FSN) {
	x := m < n     // want "raw < on seqnum.MID"
	y := f >= g    // want "raw >= on seqnum.FSN"
	w := min(f, g) // want "builtin min on seqnum.FSN"
	return x || y, w
}

// Fine shows the approved forms: serial-order helpers and plain
// equality (which needs no wraparound care).
func Fine(a, b seqnum.V) bool {
	return a.Less(b) || a == b || seqnum.Max(a, b) == b || a.InWindow(b, 16)
}
