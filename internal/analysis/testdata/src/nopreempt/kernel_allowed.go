// kernel_allowed.go is exempted via the allowlist the golden test
// passes to NoPreempt, the way the real scheduler files
// (internal/sim/kernel.go, proc.go) are exempted in production: no
// diagnostics expected here despite the goroutine and channel.
package fixnopreempt

func Allowed() {
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
}
