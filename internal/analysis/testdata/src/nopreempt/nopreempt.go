// Package fixnopreempt seeds goroutine, channel, and sync-primitive
// violations for the nopreempt analyzer's golden test.
package fixnopreempt

import "sync"

func Violations() {
	ch := make(chan int, 1) // want "creates a channel"
	go func() {             // want "go starts a preemptively scheduled goroutine"
		ch <- 1 // want "channel send blocks outside the kernel's control"
	}()
	<-ch           // want "channel receive blocks outside the kernel's control"
	for range ch { // want "ranging over a channel"
	}
	close(ch)         // want "close operates on a channel"
	var mu sync.Mutex // want "sync.Mutex implies real concurrency"
	mu.Lock()
	mu.Unlock()
	select {} // want "select multiplexes real channels"
}
