// Package fixmaporder seeds ordering-sensitive effects inside map
// iteration for the maporder analyzer's golden test.
package fixmaporder

import "sort"

type conn struct{}

func (conn) Send(b []byte) {}

type mod struct {
	peers map[int]conn
	order []int
}

func Violations(m *mod) {
	for _, c := range m.peers {
		c.Send(nil) // want "Send transmits on the wire inside a range over a map"
	}
	for r := range m.peers {
		m.order = append(m.order, r) // want "append to shared state inside a range over a map"
	}
}

// Fine shows the approved patterns: collect keys into a local, sort,
// then effect in sorted order; and pure bookkeeping inside the range.
func Fine(m *mod) {
	keys := make([]int, 0, len(m.peers))
	for r := range m.peers {
		keys = append(keys, r)
	}
	sort.Ints(keys)
	for _, r := range keys {
		m.peers[r].Send(nil)
	}
	for r := range m.peers {
		delete(m.peers, r)
	}
}
