// Package fixreflease seeds pooled-buffer lifetime violations for the
// reflease analyzer's golden test: leaks on early-return paths, double
// releases, overwrites while holding, and carrier parameters dropped on
// one path while consumed on another. The Fine functions pin the
// negatives: balanced paths, deferred releases, consuming helpers, and
// data-dependent balancing (which must go silent, not guess).
package fixreflease

import (
	"repro/internal/netsim"
	"repro/internal/sctp"
	"repro/internal/wire"
)

func use(b []byte) { b[0] = 1 }

// recycle summarizes as consuming its parameter on every path.
func recycle(b []byte) { wire.PutBuf(b) }

// LeakOnError drops the buffer on the error path but hands it out on
// the success path.
func LeakOnError(n int, fail bool) []byte {
	b := wire.GetBuf(n)
	if fail {
		return nil // want "return path leaks pooled buffer"
	}
	return b
}

// LeakFallOff acquires and never releases.
func LeakFallOff(n int) {
	b := wire.GetBuf(n)
	use(b) // want "return path leaks pooled buffer"
}

// DoubleRelease releases the same buffer twice on one path.
func DoubleRelease(n int) {
	b := wire.GetBuf(n)
	wire.PutBuf(b)
	wire.PutBuf(b) // want "released more times than acquired"
}

// OverwriteWhileHeld reassigns the variable while the first buffer is
// still owed a release.
func OverwriteWhileHeld(n int) {
	b := wire.GetBuf(n)
	b = wire.GetBuf(2 * n) // want "overwritten while still holding"
	wire.PutBuf(b)
}

// LeakRetainedPacket takes an extra reference and releases only one on
// the early path.
func LeakRetainedPacket(n int, short bool) {
	buf := wire.GetBuf(n)
	pkt := netsim.NewPooledPacket(1, 2, 9, buf)
	pkt.Retain()
	if short {
		pkt.Release()
		return // want "return path leaks pooled packet"
	}
	pkt.Release()
	pkt.Release()
}

// FineBalanced releases on every path.
func FineBalanced(n int, fail bool) {
	b := wire.GetBuf(n)
	if fail {
		wire.PutBuf(b)
		return
	}
	use(b)
	wire.PutBuf(b)
}

// FineDeferred counts the deferred release at every exit.
func FineDeferred(n int, fail bool) {
	b := wire.GetBuf(n)
	defer wire.PutBuf(b)
	if fail {
		return
	}
	use(b)
}

// FineHelperConsumes relies on recycle's consume summary.
func FineHelperConsumes(n int) {
	b := wire.GetBuf(n)
	recycle(b)
}

// FinePacketBalanced pairs every Retain with a Release.
func FinePacketBalanced(n int) {
	pkt := netsim.NewPooledPacket(1, 2, 9, wire.GetBuf(n))
	pkt.Retain()
	pkt.Release()
	pkt.Release()
}

// FineDataDependent balances a loop-conditional Retain with a matching
// conditional Release: the per-path counts differ at the merge, so the
// analysis must go silent rather than guess.
func FineDataDependent(n, fanout int) {
	pkt := netsim.NewPooledPacket(1, 2, 9, wire.GetBuf(n))
	for i := 0; i < fanout; i++ {
		pkt.Retain()
	}
	for i := 0; i < fanout; i++ {
		pkt.Release()
	}
	pkt.Release()
}

// FineEscapes hands the buffer to a channel; obligation moves with it.
func FineEscapes(n int, sink chan []byte) {
	b := wire.GetBuf(n)
	sink <- b
}

// DropOnStale is a carrier mixed function: the stale path drops the
// message while the live path forwards it to the owning callback.
func DropOnStale(m sctp.Message, stale bool, deliver func(sctp.Message)) {
	if stale {
		return // want "drops Message"
	}
	deliver(m)
}

// DropBeforeStore consumes by storing into the reorder map on one path
// and drops on the other.
func DropBeforeStore(m sctp.Message, dup bool, reorder map[uint32]sctp.Message) {
	if dup {
		return // want "drops Message"
	}
	reorder[m.MID] = m
}

// FineRecycleOrDeliver consumes on both paths: recycling the payload is
// as much a consumption as delivering it.
func FineRecycleOrDeliver(m sctp.Message, stale bool, deliver func(sctp.Message)) {
	if stale {
		wire.PutBuf(m.Data)
		return
	}
	deliver(m)
}

// FineBorrower never consumes: ownership stays with the caller by
// convention, so dropping on every path is fine.
func FineBorrower(m sctp.Message) int {
	if len(m.Data) == 0 {
		return 0
	}
	return len(m.Data) + int(m.Stream)
}
