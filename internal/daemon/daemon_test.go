package daemon

import (
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/sctp"
	"repro/internal/sim"
)

// mesh builds n nodes each running a daemon.
func mesh(t *testing.T, seed int64, n int, lp netsim.LinkParams) (*sim.Kernel, []*Daemon, []*netsim.Node) {
	t.Helper()
	k := sim.New(seed)
	net, nodes := netsim.Cluster(k, n, 1, lp)
	_ = net
	daemons := make([]*Daemon, n)
	for i, nd := range nodes {
		st := sctp.NewStack(nd, sctp.Config{HBDisable: true})
		d, err := Start(st)
		if err != nil {
			t.Fatal(err)
		}
		daemons[i] = d
	}
	return k, daemons, nodes
}

func TestPingAndStatus(t *testing.T) {
	k, daemons, nodes := mesh(t, 1, 4, netsim.DefaultLinkParams())
	const job = 77
	daemons[1].RegisterLocal(job, 0, nil)
	daemons[1].RegisterLocal(job, 1, nil)
	daemons[2].RegisterLocal(job, 2, nil)
	daemons[2].RegisterLocal(99, 5, nil) // a different job

	k.Spawn("mpirun", func(p *sim.Proc) {
		cli := daemons[0].NewClient()
		for i := 1; i < 4; i++ {
			if err := cli.Ping(p, nodes[i].Addr()); err != nil {
				t.Errorf("ping node %d: %v", i, err)
			}
		}
		want := []int{2, 1, 0}
		for i := 1; i < 4; i++ {
			n, err := cli.Status(p, nodes[i].Addr(), job)
			if err != nil {
				t.Errorf("status node %d: %v", i, err)
				continue
			}
			if n != want[i-1] {
				t.Errorf("node %d live procs = %d, want %d", i, n, want[i-1])
			}
		}
		// Shut the daemons down so the simulation quiesces.
		for _, d := range daemons {
			d.Close()
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestAbortJobKillsProcesses(t *testing.T) {
	k, daemons, nodes := mesh(t, 2, 3, netsim.DefaultLinkParams())
	const job = 5
	killed := 0
	daemons[1].RegisterLocal(job, 0, func() { killed++ })
	daemons[1].RegisterLocal(job, 1, func() { killed++ })
	daemons[1].RegisterLocal(8, 0, func() { t.Error("wrong job killed") })

	k.Spawn("mpirun", func(p *sim.Proc) {
		cli := daemons[0].NewClient()
		if err := cli.AbortJob(p, nodes[1].Addr(), job); err != nil {
			t.Error(err)
		}
		// Wait for the abort to land, then verify.
		p.Sleep(50 * time.Millisecond)
		n, err := cli.Status(p, nodes[1].Addr(), job)
		if err != nil {
			t.Error(err)
		}
		if n != 0 {
			t.Errorf("%d procs still alive after abort", n)
		}
		for _, d := range daemons {
			d.Close()
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if killed != 2 {
		t.Fatalf("killed %d procs, want 2", killed)
	}
}

func TestIOForwarding(t *testing.T) {
	k, daemons, nodes := mesh(t, 3, 3, netsim.DefaultLinkParams())
	const job = 9
	k.Spawn("worker-node2", func(p *sim.Proc) {
		cli := daemons[2].NewClient()
		for i, line := range []string{"result: 42", "done"} {
			if err := cli.ForwardIO(p, nodes[0].Addr(), job, line); err != nil {
				t.Errorf("forward %d: %v", i, err)
			}
		}
	})
	k.Spawn("origin", func(p *sim.Proc) {
		// Poll the origin daemon for the forwarded lines.
		for i := 0; i < 100; i++ {
			if len(daemons[0].IOLines(job)) == 2 {
				break
			}
			p.Sleep(10 * time.Millisecond)
		}
		lines := daemons[0].IOLines(job)
		if len(lines) != 2 || lines[0] != "result: 42" || lines[1] != "done" {
			t.Errorf("forwarded lines = %q", lines)
		}
		for _, d := range daemons {
			d.Close()
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDaemonSurvivesLoss(t *testing.T) {
	lp := netsim.DefaultLinkParams()
	lp.LossRate = 0.05
	k, daemons, nodes := mesh(t, 4, 2, lp)
	k.Spawn("mpirun", func(p *sim.Proc) {
		cli := daemons[0].NewClient()
		for i := 0; i < 20; i++ {
			if err := cli.Ping(p, nodes[1].Addr()); err != nil {
				t.Errorf("ping %d failed: %v", i, err)
				break
			}
		}
		for _, d := range daemons {
			d.Close()
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMsgRoundTrip(t *testing.T) {
	in := &msg{Kind: mkIOWrite, Job: 7, Rank: -1, Count: 3, Seq: 99, Text: "hello lamd"}
	out, err := decodeMsg(in.encode())
	if err != nil {
		t.Fatal(err)
	}
	if *out != *in {
		t.Fatalf("round trip: %+v != %+v", out, in)
	}
	if _, err := decodeMsg([]byte{1, 2}); err == nil {
		t.Fatal("short message accepted")
	}
}
