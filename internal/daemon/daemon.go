// Package daemon implements the LAM runtime daemons of paper §3.5.3.
//
// LAM runs a user-level daemon on every node for job control: external
// monitoring of running jobs, remote I/O forwarding, and cleanup when a
// user aborts an MPI process. Stock LAM carries this traffic over UDP;
// the paper's authors converted the daemons to SCTP "so that the entire
// execution now uses SCTP and all the components in the LAM environment
// can take advantage of the features of SCTP." This package is that
// converted runtime: one daemon per node, all daemon-to-daemon and
// client-to-daemon traffic on one-to-many SCTP sockets.
//
// The daemon mesh supports:
//   - process registration/exit tracking per job (lamd's process table)
//   - remote status queries (the "external monitoring" role)
//   - job abort fan-out (the "cleanup when a user aborts" role)
//   - remote I/O forwarding to the job's origin node (lam's remote IO)
package daemon

import (
	"errors"
	"fmt"

	"repro/internal/netsim"
	"repro/internal/sctp"
	"repro/internal/sim"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Port is the daemon's well-known SCTP port (lamd's service port).
const Port = 6999

// Errors.
var (
	ErrTimeout = errors.New("daemon: request timed out")
	ErrClosed  = errors.New("daemon: daemon stopped")
)

// msgKind enumerates daemon protocol messages.
type msgKind uint8

const (
	mkRegister  msgKind = iota + 1 // process up: Job, Rank
	mkExit                         // process down: Job, Rank
	mkStatusReq                    // query: Job; reply expected
	mkStatusRep                    // reply: Job, Count = live processes here
	mkAbortJob                     // kill every process of Job on this node
	mkIOWrite                      // forward Text to the job's origin
	mkPing                         // liveness probe
	mkPong
)

// msg is the daemon wire message.
type msg struct {
	Kind  msgKind
	Job   uint32
	Rank  int32
	Count int32
	Seq   uint64
	Text  string
}

func (m *msg) encode() []byte {
	w := wire.NewWriter(24 + len(m.Text))
	w.U8(uint8(m.Kind))
	w.U32(m.Job)
	w.U32(uint32(m.Rank))
	w.U32(uint32(m.Count))
	w.U64(m.Seq)
	w.U16(uint16(len(m.Text)))
	w.Bytes([]byte(m.Text))
	return w.B
}

func decodeMsg(b []byte) (*msg, error) {
	r := wire.NewReader(b)
	m := &msg{}
	m.Kind = msgKind(r.U8())
	m.Job = r.U32()
	m.Rank = int32(r.U32())
	m.Count = int32(r.U32())
	m.Seq = r.U64()
	n := int(r.U16())
	m.Text = string(r.Bytes(n))
	if err := r.Err(); err != nil {
		return nil, err
	}
	return m, nil
}

// procEntry is one registered MPI process.
type procEntry struct {
	job    uint32
	rank   int32
	onKill func()
}

// Daemon is one node's runtime daemon. It is fully event-driven: no
// simulation process is consumed; everything runs off socket
// notifications.
type Daemon struct {
	node *netsim.Node
	sock *sctp.Socket

	procs   []procEntry
	ioLines map[uint32][]string // job → forwarded output (on origin daemons)

	pending map[uint64]*pendingReq // outstanding requests by Seq
	nextSeq uint64

	stats DaemonStats
}

// DaemonStats counts daemon activity.
type DaemonStats struct {
	Registered int64
	Exited     int64
	Aborts     int64
	IOLines    int64
	Pings      int64
}

type pendingReq struct {
	cond  *sim.Cond
	done  bool
	reply *msg
}

// Start launches a daemon on the node's SCTP stack.
func Start(stack *sctp.Stack) (*Daemon, error) {
	cfg := stack.Node().Kernel()
	_ = cfg
	sk, err := stack.SocketConfig(Port, sctp.Config{HBDisable: true})
	if err != nil {
		return nil, err
	}
	sk.Listen()
	d := &Daemon{
		node:    stack.Node(),
		sock:    sk,
		ioLines: make(map[uint32][]string),
		pending: make(map[uint64]*pendingReq),
	}
	sk.SetNotify(func(transport.Ready) { d.drain() })
	return d, nil
}

// Node returns the daemon's node.
func (d *Daemon) Node() *netsim.Node { return d.node }

// Stats returns a copy of the daemon counters.
func (d *Daemon) Stats() DaemonStats { return d.stats }

// drain processes everything queued on the daemon socket.
func (d *Daemon) drain() {
	for {
		m, err := d.sock.TryRecvMsg()
		if err != nil {
			return
		}
		if m.Notification != sctp.NotifyNone {
			continue
		}
		dm, err := decodeMsg(m.Data)
		if err != nil {
			continue
		}
		d.handle(m.Assoc, dm)
	}
}

func (d *Daemon) handle(from sctp.AssocID, m *msg) {
	switch m.Kind {
	case mkRegister:
		d.procs = append(d.procs, procEntry{job: m.Job, rank: m.Rank})
		d.stats.Registered++
	case mkExit:
		for i, p := range d.procs {
			if p.job == m.Job && p.rank == m.Rank {
				d.procs = append(d.procs[:i], d.procs[i+1:]...)
				break
			}
		}
		d.stats.Exited++
	case mkStatusReq:
		n := int32(0)
		for _, p := range d.procs {
			if p.job == m.Job {
				n++
			}
		}
		d.reply(from, &msg{Kind: mkStatusRep, Job: m.Job, Count: n, Seq: m.Seq})
	case mkStatusRep, mkPong:
		if req, ok := d.pending[m.Seq]; ok {
			delete(d.pending, m.Seq)
			req.reply = m
			req.done = true
			req.cond.Broadcast()
		}
	case mkAbortJob:
		// Kill every local process of the job (lamd's cleanup role).
		kept := d.procs[:0]
		for _, p := range d.procs {
			if p.job == m.Job {
				d.stats.Aborts++
				if p.onKill != nil {
					p.onKill()
				}
				continue
			}
			kept = append(kept, p)
		}
		d.procs = kept
	case mkIOWrite:
		d.ioLines[m.Job] = append(d.ioLines[m.Job], m.Text)
		d.stats.IOLines++
	case mkPing:
		d.stats.Pings++
		d.reply(from, &msg{Kind: mkPong, Seq: m.Seq})
	}
}

// reply sends a response on an existing association.
func (d *Daemon) reply(to sctp.AssocID, m *msg) {
	_ = d.sock.TrySendMsg(to, 0, 0, m.encode())
}

// RegisterLocal records a process running on this node without any
// network traffic (the local lamd case) and installs its abort hook.
func (d *Daemon) RegisterLocal(job uint32, rank int, onKill func()) {
	d.procs = append(d.procs, procEntry{job: job, rank: int32(rank), onKill: onKill})
	d.stats.Registered++
}

// ExitLocal removes a locally registered process.
func (d *Daemon) ExitLocal(job uint32, rank int) {
	for i, p := range d.procs {
		if p.job == job && p.rank == int32(rank) {
			d.procs = append(d.procs[:i], d.procs[i+1:]...)
			d.stats.Exited++
			return
		}
	}
}

// LiveProcs returns how many processes of job are registered here.
func (d *Daemon) LiveProcs(job uint32) int {
	n := 0
	for _, p := range d.procs {
		if p.job == job {
			n++
		}
	}
	return n
}

// IOLines returns output forwarded to this daemon for job.
func (d *Daemon) IOLines(job uint32) []string {
	return append([]string(nil), d.ioLines[job]...)
}

// Close shuts the daemon down.
func (d *Daemon) Close() { d.sock.Close() }

// --- client side (the mpirun/lamboot role) -----------------------------

// Client speaks to remote daemons from a simulation process.
type Client struct {
	d      *Daemon
	assocs map[netsim.Addr]sctp.AssocID
}

// NewClient returns a control client multiplexed over the daemon's own
// socket (as lamd does: one endpoint, many associations).
func (d *Daemon) NewClient() *Client {
	return &Client{d: d, assocs: make(map[netsim.Addr]sctp.AssocID)}
}

// connect returns (establishing if needed) the association to the
// daemon at addr.
func (c *Client) connect(p *sim.Proc, addr netsim.Addr) (sctp.AssocID, error) {
	if id, ok := c.assocs[addr]; ok {
		return id, nil
	}
	id, err := c.d.sock.Connect(p, []netsim.Addr{addr}, Port, 1)
	if err != nil {
		return 0, err
	}
	c.assocs[addr] = id
	return id, nil
}

// request sends m to addr and waits for the matching reply.
func (c *Client) request(p *sim.Proc, addr netsim.Addr, m *msg) (*msg, error) {
	id, err := c.connect(p, addr)
	if err != nil {
		return nil, err
	}
	c.d.nextSeq++
	m.Seq = c.d.nextSeq
	req := &pendingReq{cond: sim.NewCond(p.Kernel())}
	c.d.pending[m.Seq] = req
	if err := c.d.sock.SendMsg(p, id, 0, 0, m.encode()); err != nil {
		delete(c.d.pending, m.Seq)
		return nil, err
	}
	for !req.done {
		if !req.cond.WaitTimeout(p, daemonTimeout) {
			delete(c.d.pending, m.Seq)
			return nil, ErrTimeout
		}
	}
	return req.reply, nil
}

const daemonTimeout = 30e9 // 30 virtual seconds

// Ping checks that the daemon at addr is alive.
func (c *Client) Ping(p *sim.Proc, addr netsim.Addr) error {
	_, err := c.request(p, addr, &msg{Kind: mkPing})
	return err
}

// Status returns how many processes of job are alive on addr's node.
func (c *Client) Status(p *sim.Proc, addr netsim.Addr, job uint32) (int, error) {
	rep, err := c.request(p, addr, &msg{Kind: mkStatusReq, Job: job})
	if err != nil {
		return 0, err
	}
	return int(rep.Count), nil
}

// AbortJob tells the daemon at addr to kill its processes of job.
// Fire-and-forget, like lamd's cleanup path.
func (c *Client) AbortJob(p *sim.Proc, addr netsim.Addr, job uint32) error {
	id, err := c.connect(p, addr)
	if err != nil {
		return err
	}
	return c.d.sock.SendMsg(p, id, 0, 0, (&msg{Kind: mkAbortJob, Job: job}).encode())
}

// ForwardIO sends an output line to the daemon at addr (the job's
// origin node), implementing LAM's remote I/O.
func (c *Client) ForwardIO(p *sim.Proc, addr netsim.Addr, job uint32, line string) error {
	id, err := c.connect(p, addr)
	if err != nil {
		return err
	}
	return c.d.sock.SendMsg(p, id, 0, 0, (&msg{Kind: mkIOWrite, Job: job, Text: line}).encode())
}

// String describes the daemon for logs.
func (d *Daemon) String() string {
	return fmt.Sprintf("lamd@%s(%d procs)", d.node.Name(), len(d.procs))
}
