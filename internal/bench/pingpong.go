package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/mpi"
)

// PingPongResult is one MPBench-style measurement.
type PingPongResult struct {
	MsgSize    int
	Iters      int
	Elapsed    time.Duration
	Throughput float64 // bytes/second, one-way payload over total time
}

// PingPong runs the MPBench ping-pong test: two processes repeatedly
// exchange a message of msgSize bytes, all with the same tag (§4.1.1).
func PingPong(opts core.Options, msgSize, iters, warmup int) (PingPongResult, error) {
	opts.Procs = 2
	var res PingPongResult
	_, err := core.Run(opts, func(pr *mpi.Process, comm *mpi.Comm) error {
		msg := make([]byte, msgSize)
		buf := make([]byte, msgSize)
		peer := 1 - comm.Rank()
		// Warmup rounds let RTO estimators and cwnd settle, as MPBench
		// does.
		for i := 0; i < warmup; i++ {
			if err := pingOnce(comm, peer, msg, buf); err != nil {
				return err
			}
		}
		if err := comm.Barrier(); err != nil {
			return err
		}
		t0 := pr.P.Now()
		for i := 0; i < iters; i++ {
			if err := pingOnce(comm, peer, msg, buf); err != nil {
				return err
			}
		}
		if comm.Rank() == 0 {
			el := pr.P.Now() - t0
			res = PingPongResult{
				MsgSize:    msgSize,
				Iters:      iters,
				Elapsed:    el,
				Throughput: float64(msgSize*iters) / el.Seconds(),
			}
		}
		return nil
	})
	if err != nil {
		return res, err
	}
	if res.Iters == 0 {
		return res, fmt.Errorf("bench: ping-pong produced no result")
	}
	return res, nil
}

func pingOnce(comm *mpi.Comm, peer int, msg, buf []byte) error {
	if comm.Rank() == 0 {
		if err := comm.Send(peer, 0, msg); err != nil {
			return err
		}
		_, err := comm.Recv(peer, 0, buf)
		return err
	}
	if _, err := comm.Recv(peer, 0, buf); err != nil {
		return err
	}
	return comm.Send(peer, 0, msg)
}

// Fig8Sizes is the message-size sweep of Figure 8.
var Fig8Sizes = []int{
	1, 16, 64, 256, 1024, 4096, 8192, 16384, 22528, 32768,
	49152, 65535, 98302, 131069,
}

// Fig8 regenerates Figure 8: ping-pong throughput for each size under
// no loss, SCTP normalized to TCP.
func Fig8(seed int64, iters int) (*Table, error) {
	return Fig8Transports(seed, iters, nil)
}

// Fig8Transports is Fig8 over an arbitrary transport list (the -rpi
// flag of cmd/paper): one throughput column per transport plus each
// later transport's throughput normalized to the first. nil selects
// the paper's pair (TCP, SCTP).
func Fig8Transports(seed int64, iters int, transports []core.Transport) (*Table, error) {
	if len(transports) == 0 {
		transports = []core.Transport{core.TCP, core.SCTP}
	}
	base := transports[0]
	t := &Table{
		Title: "Figure 8: MPBench ping-pong, no loss (throughput normalized to " +
			base.String() + ")",
		Notes: []string{
			"paper shape: TCP wins small messages, crossover ~22 KiB, SCTP wins large",
		},
	}
	for _, tr := range transports {
		t.Columns = append(t.Columns, tr.String()+" B/s")
	}
	for _, tr := range transports[1:] {
		t.Columns = append(t.Columns, fmt.Sprintf("%s/%s", tr, base))
	}
	// One sweep cell per (size, transport); each runs in its own
	// simulation and is independent of the rest.
	nt := len(transports)
	results := make([]float64, len(Fig8Sizes)*nt)
	err := RunCells(len(results), func(i int) error {
		sz, tr := Fig8Sizes[i/nt], transports[i%nt]
		it := iters
		if sz >= 32768 && it > 60 {
			it = 60
		}
		r, err := PingPong(core.Options{Transport: tr, Seed: seed}, sz, it, 10)
		if err != nil {
			return fmt.Errorf("fig8 %v size %d: %w", tr, sz, err)
		}
		results[i] = r.Throughput
		return nil
	})
	if err != nil {
		return nil, err
	}
	for si, sz := range Fig8Sizes {
		vals := make([]float64, 0, 2*nt-1)
		vals = append(vals, results[si*nt:(si+1)*nt]...)
		for _, v := range vals[1:nt] {
			vals = append(vals, v/vals[0])
		}
		t.Rows = append(t.Rows, Row{Label: fmt.Sprintf("%d bytes", sz), Values: vals})
	}
	return t, nil
}

// Table1Seeds is how many independent runs Table1 averages: loss-event
// placement (especially burst-tail losses that cost a full RTO)
// dominates single-run variance, as the paper's own multi-run
// methodology for the farm program acknowledges.
const Table1Seeds = 4

// Table1 regenerates Table 1: ping-pong throughput under 1% and 2%
// loss for 30 KiB (short/eager) and 300 KiB (long/rendezvous) messages,
// averaged over Table1Seeds seeds.
func Table1(seed int64, iters int) (*Table, error) {
	t := &Table{
		Title: fmt.Sprintf("Table 1: ping-pong under loss (bytes/second, mean of %d runs)",
			Table1Seeds),
		Columns: []string{"SCTP 1%", "TCP 1%", "SCTP 2%", "TCP 2%"},
		Notes: []string{
			"paper: 30K  -> SCTP 54,779  TCP 1,924 | SCTP 44,614  TCP 1,030",
			"paper: 300K -> SCTP  5,870  TCP 1,818 | SCTP  2,825  TCP   885",
		},
	}
	sizes := []int{30 << 10, 300 << 10}
	losses := []float64{0.01, 0.02}
	trs := []core.Transport{core.SCTP, core.TCP}
	// Flatten the (size, loss, transport, seed) grid into independent
	// cells; sums are assembled afterwards in grid order.
	cells := len(sizes) * len(losses) * len(trs) * Table1Seeds
	results := make([]float64, cells)
	err := RunCells(cells, func(i int) error {
		s := int64(i % Table1Seeds)
		rest := i / Table1Seeds
		tr := trs[rest%len(trs)]
		rest /= len(trs)
		loss := losses[rest%len(losses)]
		sz := sizes[rest/len(losses)]
		r, err := PingPong(core.Options{
			Transport: tr, Seed: seed + s, LossRate: loss,
		}, sz, iters, 2)
		if err != nil {
			return fmt.Errorf("table1 %v loss %.0f%% size %d seed %d: %w",
				tr, loss*100, sz, seed+s, err)
		}
		results[i] = r.Throughput
		return nil
	})
	if err != nil {
		return nil, err
	}
	i := 0
	for _, sz := range sizes {
		var vals []float64
		for range losses {
			for range trs {
				sum := 0.0
				for s := 0; s < Table1Seeds; s++ {
					sum += results[i]
					i++
				}
				vals = append(vals, sum/Table1Seeds)
			}
		}
		t.Rows = append(t.Rows, Row{Label: fmt.Sprintf("%dK", sz>>10), Values: vals})
	}
	return t, nil
}
