package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/mpi/rpi"
)

// RankScalingPoint is one cell of the rank-scaling axis: an N-rank
// mesh in which exactly two ranks exchange traffic, measured under the
// proactor cost model (per-event charge, no descriptor scan) and under
// the select ablation (per-descriptor scan, the paper's §3.3 LAM
// behaviour). ProactorNS should stay flat as Ranks grows — progress
// cost follows *active* peers — while SelectNS grows with the mesh.
type RankScalingPoint struct {
	Ranks       int   `json:"ranks"`
	ProactorNS  int64 `json:"proactor_virtual_ns"`
	SelectNS    int64 `json:"select_virtual_ns"`
	PollPasses  int64 `json:"poll_passes"`   // rank 0, proactor run
	PollEvents  int64 `json:"poll_events"`   // rank 0, proactor run
	PollScanFDs int64 `json:"poll_scan_fds"` // rank 0, select run
}

// rankScalingIters trades resolution against the wall-clock cost of
// bringing up an N^2 TCP mesh; the measured phase is pure virtual time
// and deterministic, so one run per cell suffices.
const rankScalingIters = 100

// RankScaling measures progress cost at fixed active-peer count (2)
// while the mesh grows: ranks 0 and 1 ping-pong 4 KiB messages, every
// other rank joins the mesh and idles. Both cost models charge the
// same 1 µs pass base; they differ only in how the pass scales — 200 ns
// per polled descriptor (select) versus 500 ns per dequeued readiness
// event (proactor).
func RankScaling(ranks int) (RankScalingPoint, error) {
	pt := RankScalingPoint{Ranks: ranks}

	run := func(cost rpi.CostModel) (int64, *core.Report, error) {
		var elapsed time.Duration
		rep, err := core.Run(core.Options{
			Transport: core.TCP,
			Procs:     ranks,
			Seed:      1,
			Cost:      &cost,
			Deadline:  30 * time.Second,
		}, func(pr *mpi.Process, comm *mpi.Comm) error {
			if comm.Rank() > 1 {
				// Idle rank: in the mesh but silent. Hold off Finalize
				// (whose MPI barrier talks to everyone) until well after
				// the measured phase.
				pr.P.Sleep(500 * time.Millisecond)
				return nil
			}
			msg := make([]byte, 4096)
			buf := make([]byte, 4096)
			peer := 1 - comm.Rank()
			t0 := pr.P.Now()
			for i := 0; i < rankScalingIters; i++ {
				if err := pingOnce(comm, peer, msg, buf); err != nil {
					return err
				}
			}
			if comm.Rank() == 0 {
				elapsed = pr.P.Now() - t0
			}
			return nil
		})
		if err != nil {
			return 0, nil, err
		}
		if elapsed == 0 {
			return 0, nil, fmt.Errorf("bench: rank scaling produced no measurement")
		}
		return elapsed.Nanoseconds(), rep, nil
	}

	proactor, prep, err := run(rpi.CostModel{
		PollBase:     time.Microsecond,
		PollPerEvent: 500 * time.Nanosecond,
	})
	if err != nil {
		return pt, fmt.Errorf("rank scaling %d ranks (proactor): %w", ranks, err)
	}
	selectNS, srep, err := run(rpi.CostModel{
		PollBase:  time.Microsecond,
		PollPerFD: 200 * time.Nanosecond,
	})
	if err != nil {
		return pt, fmt.Errorf("rank scaling %d ranks (select): %w", ranks, err)
	}

	pt.ProactorNS = proactor
	pt.SelectNS = selectNS
	pt.PollPasses = prep.RPIStats[0]["poll_passes"]
	pt.PollEvents = prep.RPIStats[0]["poll_events"]
	pt.PollScanFDs = srep.RPIStats[0]["poll_scan_fds"]
	return pt, nil
}

// RankScalingRanks is the mesh-size axis of the bench artifact. The
// 256- and 1024-rank cells exist to pin the claim at scale: proactor
// progress cost stays flat at 2 active peers while the select ablation
// pays for every descriptor (the 1024-rank mesh costs ~2 minutes of
// wall clock to bring up, so it only runs under BENCH_ARTIFACTS;
// TestRankScalingSubLinear asserts the shape on 8/32 every run).
var RankScalingRanks = []int{8, 32, 128, 256, 1024}

// RankScalingSweep runs the full axis.
func RankScalingSweep() ([]RankScalingPoint, error) {
	pts := make([]RankScalingPoint, 0, len(RankScalingRanks))
	for _, n := range RankScalingRanks {
		pt, err := RankScaling(n)
		if err != nil {
			return nil, err
		}
		pts = append(pts, pt)
	}
	return pts, nil
}
