package bench

import (
	"testing"

	"repro/internal/core"
)

// TestCollectiveTreeScalesLog is the collective-scaling claim in
// miniature (the full 8..256 table goes in BENCH_kernel.json): at 32
// ranks the naive linear allreduce must already cost well over twice
// the tree allreduce, and the gap must grow with rank count.
func TestCollectiveTreeScalesLog(t *testing.T) {
	small, err := CollectiveCCT(8)
	if err != nil {
		t.Fatal(err)
	}
	big, err := CollectiveCCT(32)
	if err != nil {
		t.Fatal(err)
	}
	if big.NaiveAllreduceNS < 2*big.TreeAllreduceNS {
		t.Errorf("32-rank naive allreduce (%d ns) not >= 2x tree (%d ns)",
			big.NaiveAllreduceNS, big.TreeAllreduceNS)
	}
	gapSmall := float64(small.NaiveAllreduceNS) / float64(small.TreeAllreduceNS)
	gapBig := float64(big.NaiveAllreduceNS) / float64(big.TreeAllreduceNS)
	if gapBig <= gapSmall {
		t.Errorf("naive/tree allreduce gap shrank with scale: 8 ranks %.2fx, 32 ranks %.2fx",
			gapSmall, gapBig)
	}
	// Broadcast: binomial must beat the root loop at 32 ranks.
	if big.NaiveBcastNS <= big.TreeBcastNS {
		t.Errorf("32-rank naive bcast (%d ns) not slower than tree (%d ns)",
			big.NaiveBcastNS, big.TreeBcastNS)
	}
}

// TestIncastRecovers runs a small 15-to-1 fan-in per backend: the
// drop-tail bottleneck must actually shed packets, and the transport
// must still deliver every byte intact (verified inside Incast).
func TestIncastRecovers(t *testing.T) {
	for _, tr := range []core.Transport{core.TCP, core.SCTP, core.SCTPOneToOne} {
		pt, err := Incast(tr, 16)
		if err != nil {
			t.Fatal(err)
		}
		if pt.QueueDrops == 0 {
			t.Errorf("%s: incast produced no queue drops; bottleneck not exercised", pt.Transport)
		}
		if pt.CompletionNS <= 0 {
			t.Errorf("%s: no completion time recorded", pt.Transport)
		}
	}
}
