package bench

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
)

// TestWriteBenchArtifacts is the `make bench` entry point: with
// BENCH_ARTIFACTS=1 it measures the kernel fast path and the sweep
// runner and writes BENCH_kernel.json and BENCH_sweep.json at the repo
// root. Without the variable it is a no-op, so `go test ./...` stays
// fast and side-effect free.
func TestWriteBenchArtifacts(t *testing.T) {
	if os.Getenv("BENCH_ARTIFACTS") == "" {
		t.Skip("set BENCH_ARTIFACTS=1 to write BENCH_*.json")
	}

	bestOf := func(n int, f func()) time.Duration {
		f() // warm the buffer pools and scheduler
		var best time.Duration
		for i := 0; i < n; i++ {
			t0 := time.Now()
			f()
			if d := time.Since(t0); best == 0 || d < best {
				best = d
			}
		}
		return best
	}

	// Kernel: the lossy 8-rank pairwise ping-pong exercising timers,
	// retransmission, and the pooled packet path end to end.
	kernel := bestOf(5, func() { runPingPong8(t, core.SCTP, 30<<10, 30) })
	kernelTCP := bestOf(5, func() { runPingPong8(t, core.TCP, 30<<10, 30) })

	// Rank scaling: the readiness-engine axis. Virtual-time metrics are
	// deterministic, so each cell runs once; sub-linearity of the
	// proactor column vs ranks is also asserted by
	// TestRankScalingSubLinear on every test run.
	scaling, err := RankScalingSweep()
	if err != nil {
		t.Fatal(err)
	}

	// Collective completion time: tree vs naive on a generated
	// fat-tree, and the 63-to-1 incast across all three backends.
	collectives, err := CollectiveSweep()
	if err != nil {
		t.Fatal(err)
	}
	incast, err := IncastSweep()
	if err != nil {
		t.Fatal(err)
	}
	multicast, err := MulticastSweep()
	if err != nil {
		t.Fatal(err)
	}
	interleaving, err := InterleavingSweep()
	if err != nil {
		t.Fatal(err)
	}

	writeJSON(t, "../../BENCH_kernel.json", map[string]any{
		"benchmark":       "lossy 8-rank pairwise ping-pong, 30 KiB x 30 iters, 2% loss",
		"sctp_wall_ns":    kernel.Nanoseconds(),
		"tcp_wall_ns":     kernelTCP.Nanoseconds(),
		"baseline_ns":     31500000, // pre-optimization SCTP capture, same machine
		"speedup":         float64(31500000) / float64(kernel.Nanoseconds()),
		"gomaxprocs":      runtime.GOMAXPROCS(0),
		"go_version":      runtime.Version(),
		"trace_hash":      goldenTraceHash,
		"trace_identical": true, // enforced by TestTraceHashGolden
		"rank_scaling": map[string]any{
			"benchmark": "4 KiB ping-pong x 100 iters between 2 active peers inside an N-rank TCP mesh, virtual ns",
			"models":    "proactor: 1µs/pass + 500ns/event; select ablation: 1µs/pass + 200ns/descriptor",
			"points":    scaling,
		},
		"collectives": map[string]any{
			"benchmark": "8 KiB Bcast and Allreduce over SCTP on a generated fat-tree, barrier-bracketed completion time, virtual ns",
			"points":    collectives,
		},
		"multicast": map[string]any{
			"benchmark": "8 KiB Bcast over SCTP on a generated fat-tree, link-layer multicast + NAK repair vs binomial tree vs naive linear, barrier-bracketed completion time, virtual ns",
			"points":    multicast,
		},
		"incast": map[string]any{
			"benchmark": "63-to-1 eager Gather of 16 KiB/rank on a fat-tree with 32 KiB drop-tail host queues, virtual ns",
			"points":    incast,
		},
		"interleaving": map[string]any{
			"benchmark": "64 B probe one-way latency while a 4 MiB rendezvous transfer is in flight on the same SCTP association, legacy DATA/FIFO vs RFC 8260 I-DATA/priority, virtual ns",
			"points":    interleaving,
		},
	})

	// Sweep: the figure-8 size sweep serial vs parallel. On a 1-CPU
	// host the two coincide; gomaxprocs is recorded so readers can
	// interpret the ratio, and TestParallelSweepIdentical proves the
	// parallel path correct regardless.
	old := Parallelism()
	defer SetParallelism(old)
	sweep := func() {
		if _, err := Fig8Transports(1, 5, nil); err != nil {
			t.Fatal(err)
		}
	}
	SetParallelism(1)
	serial := bestOf(3, sweep)
	SetParallelism(0)
	parallel := bestOf(3, sweep)

	writeJSON(t, "../../BENCH_sweep.json", map[string]any{
		"benchmark":        "fig8 message-size sweep, tcp+sctp, 5 iters/size",
		"serial_wall_ns":   serial.Nanoseconds(),
		"parallel_wall_ns": parallel.Nanoseconds(),
		"baseline_ns":      268500000, // pre-optimization serial capture, same machine
		"serial_speedup":   float64(268500000) / float64(serial.Nanoseconds()),
		"gomaxprocs":       runtime.GOMAXPROCS(0),
		"go_version":       runtime.Version(),
	})
}

func writeJSON(t *testing.T, path string, v any) {
	t.Helper()
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", path)
}
