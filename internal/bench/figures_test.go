package bench

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func TestFarmSweepTable(t *testing.T) {
	sweep := &FarmSweep{
		Title:      "test sweep",
		Transports: []core.Transport{core.SCTP, core.TCP},
		LossRates:  []float64{0, 0.01},
		Config:     FarmConfig{NumTasks: 50, TaskSize: 8 << 10},
		Opts:       core.Options{Seed: 5},
	}
	tab, err := sweep.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 || len(tab.Columns) != 2 {
		t.Fatalf("table shape %dx%d", len(tab.Rows), len(tab.Columns))
	}
	for _, r := range tab.Rows {
		for i, v := range r.Values {
			if v <= 0 {
				t.Errorf("row %q col %d: nonpositive runtime %v", r.Label, i, v)
			}
		}
	}
	out := tab.Format()
	if !strings.Contains(out, "loss 1%") {
		t.Errorf("formatted sweep missing loss row:\n%s", out)
	}
}

func TestFig8SizesSane(t *testing.T) {
	last := 0
	for _, sz := range Fig8Sizes {
		if sz <= last {
			t.Fatalf("Fig8Sizes not strictly increasing at %d", sz)
		}
		last = sz
	}
	// The sweep must straddle the paper's 22 KiB crossover and the
	// 64 KiB eager limit.
	var below, between, above bool
	for _, sz := range Fig8Sizes {
		switch {
		case sz < 22<<10:
			below = true
		case sz <= 64<<10:
			between = true
		default:
			above = true
		}
	}
	if !below || !between || !above {
		t.Fatal("Fig8Sizes must cover below/around/above the crossover and eager limit")
	}
}

func TestFig8Generator(t *testing.T) {
	if testing.Short() {
		t.Skip("full size sweep")
	}
	tab, err := Fig8(1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(Fig8Sizes) {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Ratio column must increase from well below 1 to at least ~1.
	first := tab.Rows[0].Values[2]
	lastv := tab.Rows[len(tab.Rows)-1].Values[2]
	if first >= 1 {
		t.Errorf("smallest size ratio %.3f, want < 1 (TCP wins small)", first)
	}
	if lastv < 0.98 {
		t.Errorf("largest size ratio %.3f, want ≈>1 (SCTP wins large)", lastv)
	}
}

func TestFigureGenerators(t *testing.T) {
	if testing.Short() {
		t.Skip("farm sweeps")
	}
	for name, gen := range map[string]func(int64, int) ([]*Table, error){
		"fig10": Fig10, "fig11": Fig11, "fig12": Fig12,
	} {
		tables, err := gen(5, 60)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(tables) != 2 {
			t.Fatalf("%s: %d tables", name, len(tables))
		}
		for _, tab := range tables {
			if len(tab.Rows) != 3 {
				t.Fatalf("%s: %d rows", name, len(tab.Rows))
			}
		}
	}
}
