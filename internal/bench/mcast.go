package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/netsim/topo"
)

// MulticastPoint is one row of the reliable-multicast broadcast table:
// the same 8 KiB Bcast measured under the multicast family (link-layer
// group fan-out plus NAK repair), the tree family (binomial), and the
// naive linear family, on a fat-tree sized to Ranks. Times are virtual
// nanoseconds, so rows are deterministic and machine-independent.
type MulticastPoint struct {
	Ranks        int   `json:"ranks"`
	McastBcastNS int64 `json:"multicast_bcast_virtual_ns"`
	TreeBcastNS  int64 `json:"tree_bcast_virtual_ns"`
	NaiveBcastNS int64 `json:"naive_bcast_virtual_ns"`
}

// MulticastRanks is the rank axis of the multicast table. The
// per-hop-fan-out advantage over the binomial tree is already visible
// at 8 ranks and decisive by 256, where the tree pays log2(N) serial
// fabric traversals against multicast's single one.
var MulticastRanks = []int{8, 64, 256}

// multicastBcastCCT measures completion time of one 8 KiB Bcast under
// alg on an N-rank SCTP world over a generated fat-tree, with the same
// tree-barrier bracketing as collectiveCCT: time runs at rank 0 from
// the entry barrier's release to the exit barrier's release, so the
// NAK/repair tail of a multicast operation is fully charged.
func multicastBcastCCT(ranks int, alg mpi.Alg) (int64, error) {
	var bcast time.Duration
	rep, err := core.Run(core.Options{
		Transport: core.SCTP,
		Procs:     ranks,
		Seed:      1,
		Topo:      &topo.Config{Kind: topo.FatTree},
		Deadline:  120 * time.Second,
	}, func(pr *mpi.Process, comm *mpi.Comm) error {
		comm.SetAlg(mpi.AlgTree)
		if err := comm.Barrier(); err != nil {
			return err
		}
		t0 := pr.P.Now()
		comm.SetAlg(alg)
		data := make([]byte, collectiveBytes)
		if err := comm.Bcast(0, data); err != nil {
			return err
		}
		comm.SetAlg(mpi.AlgTree)
		if err := comm.Barrier(); err != nil {
			return err
		}
		if comm.Rank() == 0 {
			bcast = pr.P.Now() - t0
		}
		return nil
	})
	if err != nil {
		return 0, fmt.Errorf("multicast cct %d ranks: %w", ranks, err)
	}
	if err := rep.FirstError(); err != nil {
		return 0, fmt.Errorf("multicast cct %d ranks: %w", ranks, err)
	}
	return bcast.Nanoseconds(), nil
}

// MulticastCCT measures one full row.
func MulticastCCT(ranks int) (MulticastPoint, error) {
	pt := MulticastPoint{Ranks: ranks}
	var err error
	if pt.McastBcastNS, err = multicastBcastCCT(ranks, mpi.AlgMulticast); err != nil {
		return pt, err
	}
	if pt.TreeBcastNS, err = multicastBcastCCT(ranks, mpi.AlgTree); err != nil {
		return pt, err
	}
	if pt.NaiveBcastNS, err = multicastBcastCCT(ranks, mpi.AlgNaive); err != nil {
		return pt, err
	}
	return pt, nil
}

// MulticastSweep runs the full table.
func MulticastSweep() ([]MulticastPoint, error) {
	pts := make([]MulticastPoint, 0, len(MulticastRanks))
	for _, n := range MulticastRanks {
		pt, err := MulticastCCT(n)
		if err != nil {
			return nil, err
		}
		pts = append(pts, pt)
	}
	return pts, nil
}
