// Package bench implements the paper's evaluation workloads: the
// MPBench-style ping-pong test (Figure 8, Table 1), the Bulk Processor
// Farm manager/worker program (Figures 10-12), and table formatting for
// regenerating the paper's artifacts.
package bench

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
)

// Row is one line of an experiment table.
type Row struct {
	Label  string
	Values []float64
}

// Table is a printable experiment result.
type Table struct {
	Title   string
	Columns []string
	Rows    []Row
	Notes   []string
}

// Format renders the table as aligned text.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s ===\n", t.Title)
	width := 24
	fmt.Fprintf(&b, "%-*s", width, "")
	for _, c := range t.Columns {
		fmt.Fprintf(&b, "%16s", c)
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-*s", width, r.Label)
		for _, v := range r.Values {
			fmt.Fprintf(&b, "%16s", formatValue(v))
		}
		b.WriteByte('\n')
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}

func formatValue(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1e6:
		return fmt.Sprintf("%.3g", v)
	case v >= 100:
		return fmt.Sprintf("%.0f", v)
	case v >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// Seconds converts a virtual duration to float seconds.
func Seconds(d time.Duration) float64 { return d.Seconds() }

// FormatRPIStats renders a report's per-rank RPI counters, one line per
// rank with "k=v" pairs in sorted key order, so the same run always
// prints the same text and two backends' stats line up for comparison.
func FormatRPIStats(rep *core.Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "--- %s RPI counters ---\n", rep.Transport)
	for rank, c := range rep.RPIStats {
		if c == nil {
			continue
		}
		fmt.Fprintf(&b, "rank %d: %s\n", rank, c.Format())
	}
	return b.String()
}
