package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/mpi"
)

// Farm tags. Task tags are 0..MaxWorkTags-1 (mapped to SCTP streams by
// the RPI); control tags sit above them.
const (
	farmTagRequest = 1000
	farmTagResult  = 1001
	farmTagStop    = 1002
)

// FarmConfig parameterizes the Bulk Processor Farm program (§4.2.1).
type FarmConfig struct {
	NumTasks    int           // total tasks the manager distributes (paper: 10,000)
	TaskSize    int           // task message size (30 KiB short / 300 KiB long)
	Fanout      int           // tasks sent per request (paper: 1 and 10)
	MaxWorkTags int           // distinct task types/tags (paper default 10)
	Outstanding int           // job requests each worker keeps open (paper: 10)
	ComputePer  time.Duration // per-byte processing time at the worker
	ResultSize  int           // result message size
}

func (fc FarmConfig) withDefaults() FarmConfig {
	if fc.NumTasks == 0 {
		fc.NumTasks = 10000
	}
	if fc.TaskSize == 0 {
		fc.TaskSize = 30 << 10
	}
	if fc.Fanout == 0 {
		fc.Fanout = 1
	}
	if fc.MaxWorkTags == 0 {
		fc.MaxWorkTags = 10
	}
	if fc.Outstanding == 0 {
		fc.Outstanding = 10
	}
	if fc.ComputePer == 0 {
		fc.ComputePer = 10 * time.Nanosecond // ~100 MB/s task processing
	}
	if fc.ResultSize == 0 {
		fc.ResultSize = 64
	}
	return fc
}

// FarmResult reports a farm run.
type FarmResult struct {
	RunTime   time.Duration
	TasksDone int
}

// Farm runs the Bulk Processor Farm: rank 0 is the manager; every other
// rank is a worker with a fixed number of outstanding job requests,
// pre-posted nonblocking receives, and MPI_ANY_TAG willingness to do
// any task type. The manager services requests in arrival order
// (MPI_ANY_SOURCE) and assigns each task a tag in [0, MaxWorkTags).
func Farm(opts core.Options, fc FarmConfig) (FarmResult, error) {
	fc = fc.withDefaults()
	if opts.Procs == 0 {
		opts.Procs = 8
	}
	var res FarmResult
	_, err := core.Run(opts, func(pr *mpi.Process, comm *mpi.Comm) error {
		if err := comm.Barrier(); err != nil {
			return err
		}
		t0 := pr.P.Now()
		var err error
		if comm.Rank() == 0 {
			err = farmManager(pr, comm, fc)
			if err == nil {
				res.RunTime = pr.P.Now() - t0
				res.TasksDone = fc.NumTasks
			}
		} else {
			err = farmWorker(pr, comm, fc)
		}
		if err != nil {
			return err
		}
		return comm.Barrier()
	})
	return res, err
}

// farmManager distributes NumTasks in Fanout batches, collecting one
// result per task. Requests that arrive after the tasks run out go
// unanswered; once every result is in, the manager sends exactly one
// stop to each worker. This termination is robust to tasks, results and
// stops overtaking each other across streams — which they legitimately
// do in the SCTP module.
func farmManager(pr *mpi.Process, comm *mpi.Comm, fc FarmConfig) error {
	tasksSent := 0
	resultsGot := 0
	task := make([]byte, fc.TaskSize)
	buf := make([]byte, fc.ResultSize+8)

	for resultsGot < fc.NumTasks {
		st, err := comm.Recv(mpi.AnySource, mpi.AnyTag, buf)
		if err != nil {
			return err
		}
		switch st.Tag {
		case farmTagResult:
			resultsGot++
		case farmTagRequest:
			if tasksSent < fc.NumTasks {
				n := fc.Fanout
				if tasksSent+n > fc.NumTasks {
					n = fc.NumTasks - tasksSent
				}
				for i := 0; i < n; i++ {
					tag := tasksSent % fc.MaxWorkTags
					if err := comm.Send(st.Source, tag, task); err != nil {
						return err
					}
					tasksSent++
				}
			}
		default:
			return fmt.Errorf("farm manager: unexpected tag %d", st.Tag)
		}
	}
	for w := 1; w < comm.Size(); w++ {
		if err := comm.Send(w, farmTagStop, []byte{0}); err != nil {
			return err
		}
	}
	return nil
}

// farmWorker keeps Outstanding job requests open, pre-posts nonblocking
// receives with MPI_ANY_TAG, processes whatever task arrives first
// (overlap of communication with computation), returns a result, and
// requests more work.
func farmWorker(pr *mpi.Process, comm *mpi.Comm, fc FarmConfig) error {
	slots := fc.Outstanding + fc.Fanout
	bufs := make([][]byte, slots)
	reqs := make([]*mpi.Request, slots)
	var err error
	for i := range bufs {
		bufs[i] = make([]byte, fc.TaskSize)
		reqs[i], err = comm.Irecv(0, mpi.AnyTag, bufs[i])
		if err != nil {
			return err
		}
	}
	result := make([]byte, fc.ResultSize)
	for i := 0; i < fc.Outstanding; i++ {
		if err := comm.Send(0, farmTagRequest, []byte{1}); err != nil {
			return err
		}
	}
	for {
		i, st, err := comm.WaitAny(reqs...)
		if err != nil {
			return err
		}
		switch {
		case st.Tag == farmTagStop:
			// The manager sends the stop only after every result is in,
			// so there is no outstanding work left for this worker.
			// Remaining posted receives are abandoned at Finalize, as
			// MPI programs cancel leftover requests at exit.
			return nil
		case st.Tag < fc.MaxWorkTags:
			// Process the task: compute time proportional to its size.
			pr.P.Sleep(fc.ComputePer * time.Duration(st.Count))
			if err := comm.Send(0, farmTagResult, result); err != nil {
				return err
			}
			if err := comm.Send(0, farmTagRequest, []byte{1}); err != nil {
				return err
			}
		default:
			return fmt.Errorf("farm worker: unexpected tag %d", st.Tag)
		}
		// Re-post the consumed receive slot.
		reqs[i], err = comm.Irecv(0, mpi.AnyTag, bufs[i])
		if err != nil {
			return err
		}
	}
}

// FarmSweep runs the farm across loss rates for one message size,
// producing one figure panel.
type FarmSweep struct {
	Title      string
	Transports []core.Transport
	LossRates  []float64
	Config     FarmConfig
	Opts       core.Options
}

// Run executes the sweep.
func (s *FarmSweep) Run() (*Table, error) {
	t := &Table{Title: s.Title}
	for _, tr := range s.Transports {
		t.Columns = append(t.Columns, tr.String()+" (s)")
	}
	// Each (loss, transport) cell is an independent simulation; run
	// them on the sweep worker pool and assemble rows in order.
	nt := len(s.Transports)
	results := make([]float64, len(s.LossRates)*nt)
	err := RunCells(len(results), func(i int) error {
		loss, tr := s.LossRates[i/nt], s.Transports[i%nt]
		opts := s.Opts
		opts.Transport = tr
		opts.LossRate = loss
		r, err := Farm(opts, s.Config)
		if err != nil {
			return fmt.Errorf("farm %v loss %.0f%%: %w", tr, loss*100, err)
		}
		results[i] = r.RunTime.Seconds()
		return nil
	})
	if err != nil {
		return nil, err
	}
	for li, loss := range s.LossRates {
		t.Rows = append(t.Rows, Row{
			Label:  fmt.Sprintf("loss %.0f%%", loss*100),
			Values: results[li*nt : (li+1)*nt],
		})
	}
	return t, nil
}

// Fig10 regenerates Figure 10: farm with Fanout 1, short and long
// tasks, loss 0/1/2%, TCP vs SCTP.
func Fig10(seed int64, numTasks int) ([]*Table, error) {
	return farmFigure(seed, numTasks, 1, "Figure 10")
}

// Fig11 regenerates Figure 11: the same farm with Fanout 10.
func Fig11(seed int64, numTasks int) ([]*Table, error) {
	return farmFigure(seed, numTasks, 10, "Figure 11")
}

func farmFigure(seed int64, numTasks, fanout int, name string) ([]*Table, error) {
	var out []*Table
	for _, sz := range []struct {
		label string
		size  int
	}{{"short (30K)", 30 << 10}, {"long (300K)", 300 << 10}} {
		sweep := &FarmSweep{
			Title:      fmt.Sprintf("%s: Bulk Processor Farm, %s, fanout %d", name, sz.label, fanout),
			Transports: []core.Transport{core.SCTP, core.TCP},
			LossRates:  []float64{0, 0.01, 0.02},
			Config:     FarmConfig{NumTasks: numTasks, TaskSize: sz.size, Fanout: fanout},
			Opts:       core.Options{Seed: seed},
		}
		t, err := sweep.Run()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}

// Fig12 regenerates Figure 12: the head-of-line ablation, SCTP with 10
// streams versus a single stream, fanout 10.
func Fig12(seed int64, numTasks int) ([]*Table, error) {
	var out []*Table
	for _, sz := range []struct {
		label string
		size  int
	}{{"short (30K)", 30 << 10}, {"long (300K)", 300 << 10}} {
		sweep := &FarmSweep{
			Title: fmt.Sprintf("Figure 12: SCTP 10 streams vs 1 stream, %s, fanout 10",
				sz.label),
			Transports: []core.Transport{core.SCTP, core.SCTPSingleStream},
			LossRates:  []float64{0, 0.01, 0.02},
			Config:     FarmConfig{NumTasks: numTasks, TaskSize: sz.size, Fanout: 10},
			Opts:       core.Options{Seed: seed},
		}
		t, err := sweep.Run()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}
