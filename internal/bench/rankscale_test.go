package bench

import "testing"

// TestRankScalingSubLinear is the readiness-engine scaling claim in
// miniature (the full 8/32/128 axis goes in BENCH_kernel.json): with 2
// active peers, quadrupling the mesh must leave proactor progress cost
// nearly unchanged, while the select ablation visibly pays for every
// extra descriptor per pass.
func TestRankScalingSubLinear(t *testing.T) {
	small, err := RankScaling(8)
	if err != nil {
		t.Fatal(err)
	}
	big, err := RankScaling(32)
	if err != nil {
		t.Fatal(err)
	}

	// Proactor: cost follows active peers, not mesh size. Allow 10%
	// slack for incidental init-state differences.
	if float64(big.ProactorNS) > 1.10*float64(small.ProactorNS) {
		t.Errorf("proactor cost scaled with mesh: 8 ranks %d ns, 32 ranks %d ns",
			small.ProactorNS, big.ProactorNS)
	}
	// Select ablation: each pass scans every descriptor, so the same
	// workload must get measurably slower on the bigger mesh.
	if big.SelectNS <= small.SelectNS {
		t.Errorf("select ablation did not scale with mesh: 8 ranks %d ns, 32 ranks %d ns",
			small.SelectNS, big.SelectNS)
	}
	// And the instrumentation behind the claim: passes scan nfds
	// descriptors, events stay bounded by traffic.
	if small.PollEvents == 0 || small.PollPasses == 0 || small.PollScanFDs == 0 {
		t.Errorf("missing poll counters: %+v", small)
	}
	if big.PollScanFDs <= small.PollScanFDs {
		t.Errorf("poll_scan_fds did not grow with mesh: 8 ranks %d, 32 ranks %d",
			small.PollScanFDs, big.PollScanFDs)
	}
}
