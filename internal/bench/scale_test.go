package bench

import (
	"os"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/netsim/topo"
)

// TestScaleSmoke1024 is the `scripts/check.sh` scale gate: bring up a
// 1024-rank world on a generated k=16 fat-tree and complete one tree
// Allreduce end to end. It exercises the timer wheel, the event arena,
// multi-hop routing, and the O(log N) collectives at the target scale
// in one shot. Gated behind SCALE_SMOKE=1 because full-mesh transport
// bring-up at 1024 ranks costs about a minute of wall clock.
func TestScaleSmoke1024(t *testing.T) {
	if os.Getenv("SCALE_SMOKE") == "" {
		t.Skip("set SCALE_SMOKE=1 to run the 1024-rank smoke")
	}
	const ranks = 1024
	t0 := time.Now()
	sums := make([]int64, ranks)
	rep, err := core.Run(core.Options{
		Transport: core.TCP,
		Procs:     ranks,
		Seed:      1,
		Topo:      &topo.Config{Kind: topo.FatTree},
		Deadline:  300 * time.Second,
	}, func(pr *mpi.Process, comm *mpi.Comm) error {
		data := mpi.I64Bytes([]int64{int64(comm.Rank())})
		if err := comm.Allreduce(data, mpi.OpSumI64); err != nil {
			return err
		}
		sums[comm.Rank()] = mpi.BytesI64(data)[0]
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.FirstError(); err != nil {
		t.Fatal(err)
	}
	want := int64(ranks) * (ranks - 1) / 2
	for r, s := range sums {
		if s != want {
			t.Fatalf("rank %d allreduce sum = %d, want %d", r, s, want)
		}
	}
	t.Logf("1024-rank fat-tree allreduce: %v wall, %v virtual", time.Since(t0), rep.Elapsed)
}
