package bench

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/netsim"
)

// goldenTraceHash is the SHA-256 of the full packet trace — every send,
// receive and drop with its virtual timestamp — of the lossy SCTP
// ping-pong below. Any change to event ordering, RNG consumption, loss
// placement or virtual timing shows up here as a different hash, so
// this test pins the simulator's determinism across optimizations.
// Recaptured when the RPI envelope grew its session-recovery fields
// (epoch/seq/ack), which changed every packet's payload length.
const goldenTraceHash = "266e379dc157fedfa4c31a24993a30505594a583a47d707f265bb4293cb90fbb"

func traceHash(t *testing.T) string {
	t.Helper()
	opts := core.Options{Transport: core.SCTP, Seed: 7, LossRate: 0.02, Procs: 2}
	c, err := core.NewCluster(opts)
	if err != nil {
		t.Fatal(err)
	}
	h := sha256.New()
	c.Net.Trace = func(ev string, pkt *netsim.Packet) {
		fmt.Fprintf(h, "%d|%s|%d|%d|%d|%d\n",
			c.Kernel.Now(), ev, pkt.Src, pkt.Dst, pkt.Proto, len(pkt.Payload))
	}
	msgSize, iters := 30<<10, 30
	c.Start(func(pr *mpi.Process, comm *mpi.Comm) error {
		msg := make([]byte, msgSize)
		buf := make([]byte, msgSize)
		peer := 1 - comm.Rank()
		for i := 0; i < iters; i++ {
			if err := pingOnce(comm, peer, msg, buf); err != nil {
				return err
			}
		}
		return nil
	})
	if _, err := c.Wait(); err != nil {
		t.Fatal(err)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// TestTraceHashGolden verifies the virtual-time packet trace of a lossy
// SCTP ping-pong is byte-identical to the pre-optimization capture.
func TestTraceHashGolden(t *testing.T) {
	if got := traceHash(t); got != goldenTraceHash {
		t.Fatalf("packet trace diverged from pre-optimization golden capture:\n got %s\nwant %s",
			got, goldenTraceHash)
	}
}

// TestParallelSweepIdentical runs the same sweeps serially and on a
// 4-worker pool and requires bit-identical tables: parallelism must be
// invisible in the results.
func TestParallelSweepIdentical(t *testing.T) {
	old := Parallelism()
	defer SetParallelism(old)

	runBoth := func(name string, f func() (*Table, error)) {
		SetParallelism(1)
		serial, err := f()
		if err != nil {
			t.Fatalf("%s serial: %v", name, err)
		}
		SetParallelism(4)
		parallel, err := f()
		if err != nil {
			t.Fatalf("%s parallel: %v", name, err)
		}
		if !reflect.DeepEqual(serial, parallel) {
			t.Errorf("%s: serial and parallel tables differ:\n%s\nvs\n%s",
				name, serial.Format(), parallel.Format())
		}
	}

	runBoth("fig8", func() (*Table, error) { return Fig8Transports(1, 5, nil) })
	runBoth("farm", func() (*Table, error) {
		sweep := &FarmSweep{
			Title:      "parallel identity",
			Transports: []core.Transport{core.SCTP, core.TCP},
			LossRates:  []float64{0, 0.01},
			Config:     FarmConfig{NumTasks: 40, TaskSize: 8 << 10},
			Opts:       core.Options{Seed: 5},
		}
		return sweep.Run()
	})
}
