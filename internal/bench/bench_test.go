package bench

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func TestPingPongBasic(t *testing.T) {
	for _, tr := range []core.Transport{core.TCP, core.SCTP} {
		r, err := PingPong(core.Options{Transport: tr, Seed: 1}, 1024, 20, 5)
		if err != nil {
			t.Fatalf("%v: %v", tr, err)
		}
		if r.Throughput <= 0 || r.Elapsed <= 0 {
			t.Fatalf("%v: degenerate result %+v", tr, r)
		}
	}
}

func TestPingPongThroughputScalesWithSize(t *testing.T) {
	small, err := PingPong(core.Options{Transport: core.SCTP, Seed: 1}, 64, 20, 5)
	if err != nil {
		t.Fatal(err)
	}
	large, err := PingPong(core.Options{Transport: core.SCTP, Seed: 1}, 64<<10, 20, 5)
	if err != nil {
		t.Fatal(err)
	}
	if large.Throughput < 10*small.Throughput {
		t.Fatalf("throughput should grow strongly with size: %f vs %f",
			small.Throughput, large.Throughput)
	}
}

// TestFig8Shape verifies the paper's headline no-loss shape: TCP wins
// at small message sizes, SCTP wins at large ones.
func TestFig8Shape(t *testing.T) {
	ratio := func(sz int) float64 {
		tcp, err := PingPong(core.Options{Transport: core.TCP, Seed: 1}, sz, 30, 5)
		if err != nil {
			t.Fatal(err)
		}
		sctp, err := PingPong(core.Options{Transport: core.SCTP, Seed: 1}, sz, 30, 5)
		if err != nil {
			t.Fatal(err)
		}
		return sctp.Throughput / tcp.Throughput
	}
	if r := ratio(1024); r >= 1 {
		t.Errorf("1 KiB: SCTP/TCP = %.3f, want < 1 (TCP wins small messages)", r)
	}
	if r := ratio(128 << 10); r <= 1 {
		t.Errorf("128 KiB: SCTP/TCP = %.3f, want > 1 (SCTP wins large messages)", r)
	}
}

// TestTable1Shape verifies the under-loss result: SCTP beats TCP for
// both short (eager) and long (rendezvous) ping-pong messages.
func TestTable1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("loss sweep is slow")
	}
	for _, sz := range []int{30 << 10, 300 << 10} {
		tcp, err := PingPong(core.Options{Transport: core.TCP, Seed: 3, LossRate: 0.02}, sz, 40, 2)
		if err != nil {
			t.Fatal(err)
		}
		sctp, err := PingPong(core.Options{Transport: core.SCTP, Seed: 3, LossRate: 0.02}, sz, 40, 2)
		if err != nil {
			t.Fatal(err)
		}
		if sctp.Throughput <= tcp.Throughput {
			t.Errorf("size %d under 2%% loss: SCTP %.0f <= TCP %.0f B/s",
				sz, sctp.Throughput, tcp.Throughput)
		}
	}
}

func TestFarmCompletes(t *testing.T) {
	for _, tr := range []core.Transport{core.TCP, core.SCTP, core.SCTPSingleStream} {
		r, err := Farm(core.Options{Transport: tr, Seed: 1},
			FarmConfig{NumTasks: 100, TaskSize: 10 << 10})
		if err != nil {
			t.Fatalf("%v: %v", tr, err)
		}
		if r.TasksDone != 100 {
			t.Fatalf("%v: %d tasks done", tr, r.TasksDone)
		}
	}
}

func TestFarmFanout(t *testing.T) {
	r1, err := Farm(core.Options{Transport: core.SCTP, Seed: 1},
		FarmConfig{NumTasks: 200, TaskSize: 10 << 10, Fanout: 1})
	if err != nil {
		t.Fatal(err)
	}
	r10, err := Farm(core.Options{Transport: core.SCTP, Seed: 1},
		FarmConfig{NumTasks: 200, TaskSize: 10 << 10, Fanout: 10})
	if err != nil {
		t.Fatal(err)
	}
	if r1.RunTime <= 0 || r10.RunTime <= 0 {
		t.Fatal("degenerate runtimes")
	}
}

// TestFarmLossShape verifies the Figure 10 direction: under loss the
// SCTP farm finishes far sooner than the TCP farm.
func TestFarmLossShape(t *testing.T) {
	if testing.Short() {
		t.Skip("loss sweep is slow")
	}
	cfg := FarmConfig{NumTasks: 800, TaskSize: 30 << 10, Fanout: 1}
	sctp, err := Farm(core.Options{Transport: core.SCTP, Seed: 2, LossRate: 0.02}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tcp, err := Farm(core.Options{Transport: core.TCP, Seed: 2, LossRate: 0.02}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tcp.RunTime < 2*sctp.RunTime {
		t.Errorf("2%% loss farm: TCP %v vs SCTP %v; expected TCP much slower",
			tcp.RunTime, sctp.RunTime)
	}
}

// TestFig12Shape verifies the head-of-line ablation direction: with
// loss and fanout, multiple streams beat a single stream.
func TestFig12Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("loss sweep is slow")
	}
	cfg := FarmConfig{NumTasks: 400, TaskSize: 30 << 10, Fanout: 10}
	multi, err := Farm(core.Options{Transport: core.SCTP, Seed: 2, LossRate: 0.02}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	single, err := Farm(core.Options{Transport: core.SCTPSingleStream, Seed: 2, LossRate: 0.02}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if single.RunTime <= multi.RunTime {
		t.Errorf("2%% loss fanout 10: single-stream %v <= multi-stream %v; expected HOL penalty",
			single.RunTime, multi.RunTime)
	}
}

func TestFarmDeterminism(t *testing.T) {
	cfg := FarmConfig{NumTasks: 100, TaskSize: 10 << 10}
	r1, err := Farm(core.Options{Transport: core.SCTP, Seed: 9, LossRate: 0.01}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Farm(core.Options{Transport: core.SCTP, Seed: 9, LossRate: 0.01}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.RunTime != r2.RunTime {
		t.Fatalf("nondeterministic farm: %v vs %v", r1.RunTime, r2.RunTime)
	}
}

func TestTableFormat(t *testing.T) {
	tab := &Table{
		Title:   "test",
		Columns: []string{"a", "b"},
		Rows:    []Row{{Label: "r1", Values: []float64{1.5, 2e7}}},
		Notes:   []string{"a note"},
	}
	out := tab.Format()
	for _, want := range []string{"test", "r1", "1.50", "2e+07", "a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted table missing %q:\n%s", want, out)
		}
	}
}
