package bench

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The sweep runner: experiment grids (size x transport x loss x seed)
// are embarrassingly parallel because every cell builds its own Kernel,
// Network and stacks from scratch — no state is shared between cells
// except the buffer pool, which is concurrency-safe. Cells are handed
// to a fixed worker pool and results land in slot-indexed storage, so
// the assembled tables are identical whatever the worker count.

// parallelism holds the configured worker count; <=0 means GOMAXPROCS.
var parallelism atomic.Int32

func init() { parallelism.Store(1) }

// SetParallelism sets how many sweep cells run concurrently. n <= 0
// selects GOMAXPROCS. The default is 1 (serial).
func SetParallelism(n int) { parallelism.Store(int32(n)) }

// Parallelism returns the effective worker count.
func Parallelism() int {
	n := int(parallelism.Load())
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// RunCells evaluates fn(0..n-1) on the configured worker pool. fn must
// write its result into slot-indexed storage owned by the caller. All
// cells run even when one fails; the error returned is the failing
// cell with the lowest index, so error reporting is as deterministic as
// the results themselves.
func RunCells(n int, fn func(i int) error) error {
	workers := Parallelism()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
