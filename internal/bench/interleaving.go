package bench

import (
	"encoding/binary"
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/sctp"
)

// InterleavingPoint records the small-message latency distribution
// while a bulk transfer is in flight on the same association. The two
// modes differ only in RFC 8260 interleaving: "legacy" runs DATA
// chunks with the FIFO scheduler (a queued small chunk waits behind
// every already-queued bulk fragment), "interleaved" runs I-DATA with
// the priority scheduler (small chunks preempt bulk fragments at chunk
// granularity). Virtual time makes every number exactly reproducible.
type InterleavingPoint struct {
	Mode       string `json:"mode"`
	Samples    int    `json:"samples"`
	P50NS      int64  `json:"p50_one_way_ns"`
	P99NS      int64  `json:"p99_one_way_ns"`
	MaxNS      int64  `json:"max_one_way_ns"`
	BulkBytes  int    `json:"bulk_bytes"`
	SmallBytes int    `json:"small_bytes"`
}

const (
	interleavingBulk    = 4 << 20 // rendezvous transfer held in flight
	interleavingSmall   = 64      // latency-sensitive probe payload
	interleavingSamples = 64
	interleavingGap     = 100 * time.Microsecond

	// Tag 0 hashes to stream 0, tag 1 to stream 3 (of the 10-stream
	// pool), so the probes and the bulk body ride distinct streams and
	// the scheduler has something to choose between.
	interleavingSmallTag = 0
	interleavingBulkTag  = 1
)

// InterleavingLatency runs the 2-rank overlap experiment over SCTP and
// reports one-way small-message latency percentiles. Rank 0 starts a
// 4 MiB rendezvous send, then paces 64-byte probes carrying virtual
// send timestamps; rank 1 subtracts them from its receive clock. The
// buffer geometry makes the head-of-line cost explicit: the receive
// window caps flight at ~96 KiB, so of the ~1 MiB of bulk admitted to
// the send buffer, most sits *queued but unsent* — exactly the chunks
// a FIFO probe must wait behind and a priority scheduler steps over.
func InterleavingLatency(interleaved bool) (InterleavingPoint, error) {
	pt := InterleavingPoint{
		Mode:       "legacy",
		Samples:    interleavingSamples,
		BulkBytes:  interleavingBulk,
		SmallBytes: interleavingSmall,
	}
	if interleaved {
		pt.Mode = "interleaved"
	}
	opts := core.Options{
		Transport:  core.SCTP,
		Procs:      2,
		Seed:       1,
		Deadline:   60 * time.Second,
		SCTPConfig: &sctp.Config{SndBuf: 1 << 20, RcvBuf: 96 << 10},
	}
	if interleaved {
		opts.SCTPIData = true
		opts.SCTPSched = sctp.SchedPriority
	}

	var lats []time.Duration
	rep, err := core.Run(opts, func(pr *mpi.Process, comm *mpi.Comm) error {
		if err := comm.Barrier(); err != nil {
			return err
		}
		if comm.Rank() == 0 {
			bulk := make([]byte, interleavingBulk)
			for i := range bulk {
				bulk[i] = byte(i * 7)
			}
			req, err := comm.Isend(1, interleavingBulkTag, bulk)
			if err != nil {
				return err
			}
			probe := make([]byte, interleavingSmall)
			for i := 0; i < interleavingSamples; i++ {
				pr.P.Sleep(interleavingGap)
				binary.BigEndian.PutUint64(probe[:8], uint64(pr.P.Now()))
				binary.BigEndian.PutUint32(probe[8:12], uint32(i))
				if err := comm.Send(1, interleavingSmallTag, probe); err != nil {
					return err
				}
				// Keep the rendezvous body flowing between probes: the
				// long-protocol sender advances from the progress engine,
				// which a paced Sleep/Send loop alone never enters.
				if _, _, err := comm.Test(req); err != nil {
					return err
				}
			}
			if _, err := comm.Wait(req); err != nil {
				return err
			}
			return comm.Barrier()
		}
		bulk := make([]byte, interleavingBulk)
		breq, err := comm.Irecv(0, interleavingBulkTag, bulk)
		if err != nil {
			return err
		}
		probe := make([]byte, interleavingSmall)
		for i := 0; i < interleavingSamples; i++ {
			if _, err := comm.Recv(0, interleavingSmallTag, probe); err != nil {
				return err
			}
			sent := time.Duration(binary.BigEndian.Uint64(probe[:8]))
			if got := binary.BigEndian.Uint32(probe[8:12]); got != uint32(i) {
				return fmt.Errorf("probe %d arrived out of order (index %d)", i, got)
			}
			lats = append(lats, pr.P.Now()-sent)
		}
		if _, err := comm.Wait(breq); err != nil {
			return err
		}
		for i := range bulk {
			if bulk[i] != byte(i*7) {
				return fmt.Errorf("bulk byte %d corrupted", i)
			}
		}
		return comm.Barrier()
	})
	if err != nil {
		return pt, fmt.Errorf("interleaving %s: %w", pt.Mode, err)
	}
	if err := rep.FirstError(); err != nil {
		return pt, fmt.Errorf("interleaving %s: %w", pt.Mode, err)
	}
	if len(lats) != interleavingSamples {
		return pt, fmt.Errorf("interleaving %s: %d samples, want %d",
			pt.Mode, len(lats), interleavingSamples)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pt.P50NS = lats[len(lats)/2].Nanoseconds()
	pt.P99NS = lats[len(lats)*99/100].Nanoseconds()
	pt.MaxNS = lats[len(lats)-1].Nanoseconds()
	return pt, nil
}

// InterleavingSweep runs the overlap experiment in both modes.
func InterleavingSweep() ([]InterleavingPoint, error) {
	pts := make([]InterleavingPoint, 0, 2)
	for _, on := range []bool{false, true} {
		pt, err := InterleavingLatency(on)
		if err != nil {
			return nil, err
		}
		pts = append(pts, pt)
	}
	return pts, nil
}
