package bench

import "testing"

// TestInterleavingLatencyWin pins the headline property of RFC 8260
// interleaving: with a 1 MiB transfer in flight on the association,
// the p99 one-way latency of 64-byte probes drops at least 5× when
// I-DATA and the priority scheduler replace FIFO DATA queueing. Both
// modes run the identical workload at the identical seed, so the only
// variable is chunk scheduling.
func TestInterleavingLatencyWin(t *testing.T) {
	pts, err := InterleavingSweep()
	if err != nil {
		t.Fatal(err)
	}
	legacy, inter := pts[0], pts[1]
	t.Logf("legacy:      p50 %9d ns  p99 %9d ns  max %9d ns",
		legacy.P50NS, legacy.P99NS, legacy.MaxNS)
	t.Logf("interleaved: p50 %9d ns  p99 %9d ns  max %9d ns",
		inter.P50NS, inter.P99NS, inter.MaxNS)
	if legacy.P50NS <= 0 || inter.P50NS <= 0 {
		t.Fatalf("non-positive latency: legacy p50 %d, interleaved p50 %d",
			legacy.P50NS, inter.P50NS)
	}
	if inter.P99NS*5 > legacy.P99NS {
		t.Fatalf("interleaving p99 win below 5x: legacy %d ns vs interleaved %d ns (%.1fx)",
			legacy.P99NS, inter.P99NS, float64(legacy.P99NS)/float64(inter.P99NS))
	}
}

// TestInterleavingDeterminism: the experiment is pure virtual time, so
// a rerun must reproduce the percentiles bit for bit.
func TestInterleavingDeterminism(t *testing.T) {
	a, err := InterleavingLatency(true)
	if err != nil {
		t.Fatal(err)
	}
	b, err := InterleavingLatency(true)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("interleaved run not reproducible:\n%+v\nvs\n%+v", a, b)
	}
}
