package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/netsim/topo"
)

// CollectivePoint is one row of the collective completion-time table:
// the same broadcast and allreduce measured under the tree family
// (binomial / recursive-doubling / ring, O(log N) rounds) and under the
// naive linear family (root loops over ranks, O(N)). Times are virtual
// nanoseconds on a generated fat-tree, so rows are deterministic and
// machine-independent.
type CollectivePoint struct {
	Ranks            int   `json:"ranks"`
	TreeBcastNS      int64 `json:"tree_bcast_virtual_ns"`
	NaiveBcastNS     int64 `json:"naive_bcast_virtual_ns"`
	TreeAllreduceNS  int64 `json:"tree_allreduce_virtual_ns"`
	NaiveAllreduceNS int64 `json:"naive_allreduce_virtual_ns"`
}

// collectiveBytes keeps the allreduce on the recursive-doubling path
// (below the ring threshold), the regime where round count dominates
// completion time.
const collectiveBytes = 8 << 10

// CollectiveRanks is the rank axis of the collective table. The
// O(N)-vs-O(log N) separation is unambiguous by 256; the 1024-rank
// regime is covered by the rank-scaling axis and the scale smoke test,
// where world bring-up does not dwarf the measured phase.
var CollectiveRanks = []int{8, 32, 128, 256}

// collectiveCCT measures completion time of one 8 KiB Bcast and one
// 8 KiB Allreduce under alg on an N-rank SCTP world over a generated
// fat-tree. Each measured collective is bracketed by tree barriers
// (identical cost in both columns), and time is taken at rank 0 from
// the entry barrier's release to the exit barrier's release — i.e. true
// completion across all ranks, not rank 0's local return.
func collectiveCCT(ranks int, alg mpi.Alg) (bcastNS, allreduceNS int64, err error) {
	var bcast, allreduce time.Duration
	rep, err := core.Run(core.Options{
		Transport: core.SCTP,
		Procs:     ranks,
		Seed:      1,
		Topo:      &topo.Config{Kind: topo.FatTree},
		Deadline:  120 * time.Second,
	}, func(pr *mpi.Process, comm *mpi.Comm) error {
		measure := func(out *time.Duration, op func() error) error {
			comm.SetAlg(mpi.AlgTree) // brackets always use the log-time barrier
			if err := comm.Barrier(); err != nil {
				return err
			}
			t0 := pr.P.Now()
			comm.SetAlg(alg)
			if err := op(); err != nil {
				return err
			}
			comm.SetAlg(mpi.AlgTree)
			if err := comm.Barrier(); err != nil {
				return err
			}
			if comm.Rank() == 0 {
				*out = pr.P.Now() - t0
			}
			return nil
		}
		data := make([]byte, collectiveBytes)
		if err := measure(&bcast, func() error { return comm.Bcast(0, data) }); err != nil {
			return err
		}
		vec := make([]byte, collectiveBytes)
		return measure(&allreduce, func() error { return comm.Allreduce(vec, mpi.OpSumI64) })
	})
	if err != nil {
		return 0, 0, fmt.Errorf("collective cct %d ranks: %w", ranks, err)
	}
	if err := rep.FirstError(); err != nil {
		return 0, 0, fmt.Errorf("collective cct %d ranks: %w", ranks, err)
	}
	return bcast.Nanoseconds(), allreduce.Nanoseconds(), nil
}

// CollectiveCCT measures one full row.
func CollectiveCCT(ranks int) (CollectivePoint, error) {
	pt := CollectivePoint{Ranks: ranks}
	var err error
	if pt.TreeBcastNS, pt.TreeAllreduceNS, err = collectiveCCT(ranks, mpi.AlgTree); err != nil {
		return pt, err
	}
	if pt.NaiveBcastNS, pt.NaiveAllreduceNS, err = collectiveCCT(ranks, mpi.AlgNaive); err != nil {
		return pt, err
	}
	return pt, nil
}

// CollectiveSweep runs the full table.
func CollectiveSweep() ([]CollectivePoint, error) {
	pts := make([]CollectivePoint, 0, len(CollectiveRanks))
	for _, n := range CollectiveRanks {
		pt, err := CollectiveCCT(n)
		if err != nil {
			return nil, err
		}
		pts = append(pts, pt)
	}
	return pts, nil
}
