// Package nas implements communication-skeleton versions of seven NAS
// Parallel Benchmarks (NPB 3.2): LU, IS, MG, EP, CG, BT and SP — the
// set the paper runs in Figure 9 (FT is excluded there too).
//
// Substitution note (see DESIGN.md): the real NPB kernels spend their
// time in Fortran compute loops; what the paper measures is how the
// transport carries each kernel's communication pattern and message-size
// mix. Each skeleton here performs the kernel's real communication
// pattern with correctly-sized synthetic payloads, and models compute
// with virtual time derived from the class's nominal operation count
// and a fixed per-process compute rate. Reported Mop/s = nominal
// operations / virtual runtime, exactly how NPB reports it.
package nas

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/mpi"
)

// Class is an NPB dataset size.
type Class byte

// Dataset classes, smallest to largest.
const (
	ClassS Class = 'S'
	ClassW Class = 'W'
	ClassA Class = 'A'
	ClassB Class = 'B'
)

// ComputeRate is the modeled per-process compute rate (operations per
// second), calibrated to a 2005-era Pentium 4 cluster node.
const ComputeRate = 600e6

// Kernel is one benchmark: it runs the skeleton on the communicator
// and returns the nominal operation count (in millions).
type Kernel struct {
	Name string
	Run  func(pr *mpi.Process, comm *mpi.Comm, class Class) (mops float64, err error)
}

// Kernels lists the benchmarks in the paper's Figure 9 order.
func Kernels() []Kernel {
	return []Kernel{
		{"LU", RunLU},
		{"SP", RunSP},
		{"EP", RunEP},
		{"CG", RunCG},
		{"BT", RunBT},
		{"MG", RunMG},
		{"IS", RunIS},
	}
}

// Result is one kernel × class measurement.
type Result struct {
	Name    string
	Class   Class
	Mops    float64 // Mop/s total, the NPB metric
	Elapsed time.Duration
}

// Run executes one kernel under the given cluster options and reports
// Mop/s total.
func Run(opts core.Options, k Kernel, class Class) (Result, error) {
	if opts.Procs == 0 {
		opts.Procs = 8
	}
	var res Result
	_, err := core.Run(opts, func(pr *mpi.Process, comm *mpi.Comm) error {
		if err := comm.Barrier(); err != nil {
			return err
		}
		t0 := pr.P.Now()
		mops, err := k.Run(pr, comm, class)
		if err != nil {
			return err
		}
		if err := comm.Barrier(); err != nil {
			return err
		}
		if comm.Rank() == 0 {
			el := pr.P.Now() - t0
			res = Result{Name: k.Name, Class: class, Elapsed: el,
				Mops: mops / el.Seconds()}
		}
		return nil
	})
	if err != nil {
		return res, err
	}
	if res.Name == "" {
		return res, fmt.Errorf("nas: %s produced no result", k.Name)
	}
	return res, nil
}

// compute models local computation of ops floating-point operations.
func compute(pr *mpi.Process, ops float64) {
	pr.P.Sleep(time.Duration(ops / ComputeRate * float64(time.Second)))
}

// classIndex maps a class to 0..3 for parameter tables.
func classIndex(c Class) int {
	switch c {
	case ClassS:
		return 0
	case ClassW:
		return 1
	case ClassA:
		return 2
	default:
		return 3
	}
}

// exchanger provides reusable buffers for symmetric neighbor exchanges.
type exchanger struct {
	snd, rcv []byte
}

// exchange performs a symmetric exchange of n bytes with peer.
func (e *exchanger) exchange(comm *mpi.Comm, peer, tag, n int) error {
	if peer < 0 || peer >= comm.Size() || peer == comm.Rank() {
		return nil
	}
	if len(e.snd) < n {
		e.snd = make([]byte, n)
		e.rcv = make([]byte, n)
	}
	_, err := comm.SendRecv(peer, tag, e.snd[:n], peer, tag, e.rcv[:n])
	return err
}
