package nas

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/mpi"
)

func TestAllKernelsClassS(t *testing.T) {
	for _, k := range Kernels() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			for _, tr := range []core.Transport{core.SCTP, core.TCP} {
				r, err := Run(core.Options{Transport: tr, Seed: 1}, k, ClassS)
				if err != nil {
					t.Fatalf("%v: %v", tr, err)
				}
				if r.Mops <= 0 || r.Elapsed <= 0 {
					t.Fatalf("%v: degenerate result %+v", tr, r)
				}
			}
		})
	}
}

func TestKernelsClassW(t *testing.T) {
	if testing.Short() {
		t.Skip("class W is slower")
	}
	for _, k := range Kernels() {
		r, err := Run(core.Options{Transport: core.SCTP, Seed: 1}, k, ClassW)
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		if r.Mops <= 0 {
			t.Fatalf("%s: no Mop/s", k.Name)
		}
	}
}

func TestClassOrdering(t *testing.T) {
	// Larger classes must do more work: virtual runtime S < A for CG.
	var times [2]float64
	for i, c := range []Class{ClassS, ClassA} {
		r, err := Run(core.Options{Transport: core.SCTP, Seed: 1}, Kernel{"CG", RunCG}, c)
		if err != nil {
			t.Fatal(err)
		}
		times[i] = r.Elapsed.Seconds()
	}
	if times[0] >= times[1] {
		t.Fatalf("class S (%.3fs) should be faster than class A (%.3fs)", times[0], times[1])
	}
}

func TestSmallDatasetsFavorTCP(t *testing.T) {
	// The paper: "TCP does better for the shorter datasets". Check the
	// suite-wide aggregate on class S.
	var sctpTotal, tcpTotal float64
	for _, k := range Kernels() {
		rs, err := Run(core.Options{Transport: core.SCTP, Seed: 1}, k, ClassS)
		if err != nil {
			t.Fatal(err)
		}
		rt, err := Run(core.Options{Transport: core.TCP, Seed: 1}, k, ClassS)
		if err != nil {
			t.Fatal(err)
		}
		sctpTotal += rs.Mops
		tcpTotal += rt.Mops
	}
	if tcpTotal <= sctpTotal {
		t.Errorf("class S aggregate: TCP %.0f <= SCTP %.0f Mop/s; paper expects TCP ahead on small datasets",
			tcpTotal, sctpTotal)
	}
}

func TestDeterministicKernel(t *testing.T) {
	r1, err := Run(core.Options{Transport: core.TCP, Seed: 5}, Kernel{"MG", RunMG}, ClassS)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(core.Options{Transport: core.TCP, Seed: 5}, Kernel{"MG", RunMG}, ClassS)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Elapsed != r2.Elapsed {
		t.Fatalf("nondeterministic: %v vs %v", r1.Elapsed, r2.Elapsed)
	}
}

func TestGridDecompCoverage(t *testing.T) {
	// Every rank must land on a unique in-bounds grid coordinate.
	var mu = make(chan struct{}, 1)
	mu <- struct{}{}
	seen := map[[2]int]bool{}
	_, err := core.Run(core.Options{Procs: 8, Transport: core.SCTP, Seed: 1},
		func(pr *mpi.Process, comm *mpi.Comm) error {
			rows, cols, myRow, myCol := gridDecomp(comm)
			if rows*cols != comm.Size() {
				return fmt.Errorf("grid %dx%d != %d procs", rows, cols, comm.Size())
			}
			if myRow < 0 || myRow >= rows || myCol < 0 || myCol >= cols {
				return fmt.Errorf("rank %d coords (%d,%d) out of %dx%d",
					comm.Rank(), myRow, myCol, rows, cols)
			}
			<-mu
			key := [2]int{myRow, myCol}
			dup := seen[key]
			seen[key] = true
			mu <- struct{}{}
			if dup {
				return fmt.Errorf("duplicate coords %v", key)
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 8 {
		t.Fatalf("coords covered = %d, want 8", len(seen))
	}
}
