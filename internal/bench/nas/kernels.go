package nas

import (
	"fmt"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/mpi"
)

// --- EP: embarrassingly parallel -------------------------------------

// epM is log2 of the number of random pairs per class.
var epM = [4]int{24, 25, 28, 30}

// RunEP generates random pairs independently on each process and
// combines ten counters plus two sums at the end — almost no
// communication, the paper's canonical latency-tolerant extreme.
func RunEP(pr *mpi.Process, comm *mpi.Comm, class Class) (float64, error) {
	m := epM[classIndex(class)]
	pairs := float64(uint64(1) << m)
	opsTotal := pairs * 12 // ~12 flops per pair (generation + tests)
	compute(pr, opsTotal/float64(comm.Size()))
	// Combine sx, sy and the ten annulus counters.
	sums := mpi.F64Bytes(make([]float64, 12))
	if err := comm.Allreduce(sums, mpi.OpSumF64); err != nil {
		return 0, err
	}
	return opsTotal / 1e6, nil
}

// --- IS: integer sort ------------------------------------------------

var isKeysLog = [4]int{16, 20, 23, 25}

const isIters = 10

// RunIS ranks keys with a bucketed counting sort: each iteration does
// an Allreduce of the 1024 bucket counts followed by an all-to-all
// redistribution of the keys — the benchmark is almost pure
// communication, which is why its Mop/s is tiny in Figure 9.
func RunIS(pr *mpi.Process, comm *mpi.Comm, class Class) (float64, error) {
	n := 1 << isKeysLog[classIndex(class)]
	p := comm.Size()
	perProc := n / p
	keyBytes := perProc * 4
	opsTotal := float64(isIters) * float64(n) * 5

	counts := mpi.I64Bytes(make([]int64, 1024))
	// Key redistribution: even split across processes.
	sendCounts := make([]int, p)
	sendOffs := make([]int, p)
	for r := 0; r < p; r++ {
		sendCounts[r] = keyBytes / p
		sendOffs[r] = r * (keyBytes / p)
	}
	sendBuf := make([]byte, keyBytes)
	recvBuf := make([]byte, keyBytes)
	for it := 0; it < isIters; it++ {
		compute(pr, float64(perProc)*5)
		if err := comm.Allreduce(counts, mpi.OpSumI64); err != nil {
			return 0, err
		}
		if err := comm.Alltoallv(sendBuf, sendCounts, sendOffs,
			recvBuf, sendCounts, sendOffs); err != nil {
			return 0, err
		}
	}
	return opsTotal / 1e6, nil
}

// --- CG: conjugate gradient -------------------------------------------

var cgNA = [4]int{1400, 7000, 14000, 75000}
var cgIters = [4]int{15, 15, 15, 75}

// RunCG iterates the CG solver's communication pattern on a 4×2 process
// grid: two vector-segment exchanges across the row plus two scalar
// all-reductions per iteration.
func RunCG(pr *mpi.Process, comm *mpi.Comm, class Class) (float64, error) {
	na := cgNA[classIndex(class)]
	iters := cgIters[classIndex(class)]
	p := comm.Size()
	nnz := float64(na) * 12
	opsPerIter := 2*nnz + 10*float64(na)
	opsTotal := float64(iters) * opsPerIter

	// Row partner for the transpose exchange (4 columns × 2 rows).
	cols := 4
	if p < 4 {
		cols = p
	}
	me := comm.Rank()
	partner := me ^ (cols / 2) // exchange across half the row
	segBytes := na / cols * 8
	ex := &exchanger{}
	dot := mpi.F64Bytes([]float64{0})
	for it := 0; it < iters; it++ {
		compute(pr, opsPerIter/float64(p))
		for s := 0; s < 2; s++ {
			if err := ex.exchange(comm, partner, 7, segBytes); err != nil {
				return 0, err
			}
			if err := comm.Allreduce(dot, mpi.OpSumF64); err != nil {
				return 0, err
			}
		}
	}
	return opsTotal / 1e6, nil
}

// --- MG: multigrid -----------------------------------------------------

var mgDim = [4]int{32, 64, 256, 256}
var mgIters = [4]int{4, 4, 4, 20}

// RunMG runs V-cycles on a 2×2×2 process cube: at every grid level each
// process exchanges one face per dimension with its neighbor, faces
// halving in area as the hierarchy coarsens.
func RunMG(pr *mpi.Process, comm *mpi.Comm, class Class) (float64, error) {
	n := mgDim[classIndex(class)]
	iters := mgIters[classIndex(class)]
	p := comm.Size()
	total := float64(n) * float64(n) * float64(n)
	opsPerIter := total * 14
	opsTotal := float64(iters) * opsPerIter

	me := comm.Rank()
	ex := &exchanger{}
	// Count level visits per V-cycle (descend + ascend) for the
	// compute share per visit.
	visits := 0
	for lev := n; lev >= 4; lev /= 2 {
		visits++
	}
	visits = 2*visits - 1
	sharePerVisit := opsPerIter / float64(p) / float64(visits)

	levelStep := func(lev, tag int) error {
		faceBytes := (lev / 2) * (lev / 2) * 8
		for d := 0; d < 3 && (1<<d) < p; d++ {
			if err := ex.exchange(comm, me^(1<<d), tag, faceBytes); err != nil {
				return err
			}
		}
		compute(pr, sharePerVisit)
		return nil
	}
	for it := 0; it < iters; it++ {
		for lev := n; lev >= 4; lev /= 2 { // restrict
			if err := levelStep(lev, 11); err != nil {
				return 0, err
			}
		}
		for lev := 8; lev <= n; lev *= 2 { // prolongate
			if err := levelStep(lev, 12); err != nil {
				return 0, err
			}
		}
	}
	return opsTotal / 1e6, nil
}

// --- LU, BT, SP: the three pseudo-applications -------------------------

// gridDecomp returns the process grid (rows × cols) and this rank's
// coordinates for the 2D pencil decompositions.
func gridDecomp(comm *mpi.Comm) (rows, cols, myRow, myCol int) {
	p := comm.Size()
	cols = 1
	for cols*cols < p {
		cols <<= 1
	}
	if cols > p {
		cols = p
	}
	rows = p / cols
	if rows == 0 {
		rows = 1
	}
	myRow = comm.Rank() / cols
	myCol = comm.Rank() % cols
	return
}

var luDim = [4]int{12, 33, 64, 102}
var luIters = [4]int{50, 300, 250, 250}

// RunLU runs the SSOR wavefront: each iteration pipelines lower and
// upper triangular sweeps across the process grid in k-blocks, with
// thin 5-variable pencil messages to the south and east neighbors —
// many small messages, the pattern that keeps LU latency-sensitive.
func RunLU(pr *mpi.Process, comm *mpi.Comm, class Class) (float64, error) {
	n := luDim[classIndex(class)]
	iters := luIters[classIndex(class)]
	p := comm.Size()
	opsPerIter := float64(n) * float64(n) * float64(n) * 150
	opsTotal := float64(iters) * opsPerIter

	rows, cols, myRow, myCol := gridDecomp(comm)
	north := -1
	if myRow > 0 {
		north = (myRow-1)*cols + myCol
	}
	south := -1
	if myRow < rows-1 {
		south = (myRow+1)*cols + myCol
	}
	west := -1
	if myCol > 0 {
		west = myRow*cols + myCol - 1
	}
	east := -1
	if myCol < cols-1 {
		east = myRow*cols + myCol + 1
	}

	const stages = 8
	blockDepth := (n + stages - 1) / stages
	pencil := 5 * (n / cols) * blockDepth * 8
	if pencil == 0 {
		pencil = 64
	}
	buf := make([]byte, pencil)
	computePerStage := opsPerIter / float64(p) / float64(2*stages)

	for it := 0; it < iters; it++ {
		// Lower sweep: wavefront from the northwest.
		for s := 0; s < stages; s++ {
			if north >= 0 {
				if _, err := comm.Recv(north, 21, buf); err != nil {
					return 0, err
				}
			}
			if west >= 0 {
				if _, err := comm.Recv(west, 22, buf); err != nil {
					return 0, err
				}
			}
			compute(pr, computePerStage)
			if south >= 0 {
				if err := comm.Send(south, 21, buf[:pencil]); err != nil {
					return 0, err
				}
			}
			if east >= 0 {
				if err := comm.Send(east, 22, buf[:pencil]); err != nil {
					return 0, err
				}
			}
		}
		// Upper sweep: wavefront from the southeast.
		for s := 0; s < stages; s++ {
			if south >= 0 {
				if _, err := comm.Recv(south, 23, buf); err != nil {
					return 0, err
				}
			}
			if east >= 0 {
				if _, err := comm.Recv(east, 24, buf); err != nil {
					return 0, err
				}
			}
			compute(pr, computePerStage)
			if north >= 0 {
				if err := comm.Send(north, 23, buf[:pencil]); err != nil {
					return 0, err
				}
			}
			if west >= 0 {
				if err := comm.Send(west, 24, buf[:pencil]); err != nil {
					return 0, err
				}
			}
		}
	}
	return opsTotal / 1e6, nil
}

var btDim = [4]int{12, 24, 64, 102}
var btIters = [4]int{60, 200, 200, 200}

// RunBT runs the block-tridiagonal ADI pattern: three directional
// solves per iteration, each exchanging large 5×5-block faces with the
// grid neighbors — predominantly long messages at class A/B, which is
// where the paper notes BT shifts toward TCP's strengths.
func RunBT(pr *mpi.Process, comm *mpi.Comm, class Class) (float64, error) {
	return runADI(pr, comm, class, btDim, btIters, 220, 40, 31)
}

var spDim = [4]int{12, 36, 64, 102}
var spIters = [4]int{100, 400, 400, 400}

// RunSP is the scalar-pentadiagonal variant of BT: more iterations,
// thinner faces.
func RunSP(pr *mpi.Process, comm *mpi.Comm, class Class) (float64, error) {
	return runADI(pr, comm, class, spDim, spIters, 100, 16, 41)
}

// runADI is the shared BT/SP skeleton: per iteration, a forward and a
// backward substitution sweep in each of the two decomposed dimensions,
// exchanging faces of faceScale bytes per grid point.
func runADI(pr *mpi.Process, comm *mpi.Comm, class Class, dims, iterTab [4]int, flopsPerPoint, faceScale, tagBase int) (float64, error) {
	n := dims[classIndex(class)]
	iters := iterTab[classIndex(class)]
	p := comm.Size()
	opsPerIter := float64(n) * float64(n) * float64(n) * float64(flopsPerPoint)
	opsTotal := float64(iters) * opsPerIter

	rows, cols, myRow, myCol := gridDecomp(comm)
	faceBytes := n * n / cols * faceScale
	ex := &exchanger{}
	computePerPhase := opsPerIter / float64(p) / 6

	for it := 0; it < iters; it++ {
		for dim := 0; dim < 3; dim++ {
			var peer int
			switch dim {
			case 0: // x: exchange across the row
				if cols > 1 {
					peer = myRow*cols + (myCol^1)%cols
				} else {
					peer = -1
				}
			case 1: // y: exchange across the column
				if rows > 1 {
					peer = ((myRow^1)%rows)*cols + myCol
				} else {
					peer = -1
				}
			default: // z: local sweep, no exchange
				peer = -1
			}
			compute(pr, computePerPhase)
			if peer >= 0 {
				if err := ex.exchange(comm, peer, tagBase+dim, faceBytes); err != nil {
					return 0, err
				}
			}
			compute(pr, computePerPhase)
		}
	}
	return opsTotal / 1e6, nil
}

// Fig9Table builds the Figure 9 comparison across all kernels for one
// class (the paper uses class B on 8 processes).
type Fig9Row struct {
	Kernel string
	SCTP   float64
	TCP    float64
}

// Fig9 runs every kernel under both transports (no loss), the paper's
// Figure 9 bar chart.
func Fig9(seed int64, class Class) ([]Fig9Row, error) {
	ks := Kernels()
	trs := []core.Transport{core.SCTP, core.TCP}
	// One cell per (kernel, transport), run on the sweep worker pool.
	results := make([]float64, len(ks)*len(trs))
	err := bench.RunCells(len(results), func(i int) error {
		k, tr := ks[i/len(trs)], trs[i%len(trs)]
		r, err := Run(core.Options{Transport: tr, Seed: seed}, k, class)
		if err != nil {
			return fmt.Errorf("fig9 %s %v: %w", k.Name, tr, err)
		}
		results[i] = r.Mops
		return nil
	})
	if err != nil {
		return nil, err
	}
	rows := make([]Fig9Row, len(ks))
	for i, k := range ks {
		rows[i] = Fig9Row{Kernel: k.Name, SCTP: results[i*2], TCP: results[i*2+1]}
	}
	return rows, nil
}
