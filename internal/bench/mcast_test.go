package bench

import "testing"

// TestMulticastBeatsTree gates the BENCH_kernel.json multicast table:
// on a 256-rank fat-tree the link-layer multicast broadcast must
// complete faster than the binomial tree — one fabric traversal with
// per-hop fan-out against log2(256) = 8 serial unicast generations.
// The margin is asserted loosely (just "faster") so protocol-constant
// drift doesn't flake the gate; the full spread is in the artifact.
func TestMulticastBeatsTree(t *testing.T) {
	pt, err := MulticastCCT(256)
	if err != nil {
		t.Fatal(err)
	}
	if pt.McastBcastNS <= 0 || pt.TreeBcastNS <= 0 {
		t.Fatalf("empty measurement: %+v", pt)
	}
	if pt.McastBcastNS >= pt.TreeBcastNS {
		t.Errorf("256-rank multicast bcast (%d ns) not faster than tree (%d ns)",
			pt.McastBcastNS, pt.TreeBcastNS)
	}
	if pt.McastBcastNS >= pt.NaiveBcastNS {
		t.Errorf("256-rank multicast bcast (%d ns) not faster than naive (%d ns)",
			pt.McastBcastNS, pt.NaiveBcastNS)
	}
}
