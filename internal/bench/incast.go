package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/netsim"
	"repro/internal/netsim/topo"
)

// IncastPoint records an N-to-1 fan-in (every rank eagerly gathers to
// rank 0) on a fat-tree whose edge-to-host ports carry a tight drop-
// tail queue: the receiver's last-hop port is the bottleneck, sheds
// packets, and the transport's loss recovery determines how fast the
// gather completes. One point per RPI backend.
type IncastPoint struct {
	Transport    string `json:"transport"`
	Senders      int    `json:"senders"`
	BytesPerRank int    `json:"bytes_per_rank"`
	CompletionNS int64  `json:"completion_virtual_ns"`
	QueueDrops   int64  `json:"queue_drops"`
	PacketsSent  int64  `json:"packets_sent"`
}

// incastBytes is per-sender payload, kept under the eager limit so all
// senders blast concurrently — the worst case for the shared port.
const incastBytes = 16 << 10

// Incast runs an (ranks-1)-to-1 gather over tr on a fat-tree with a
// 32 KiB drop-tail queue at every host port, and reports completion
// time plus contention counters.
func Incast(tr core.Transport, ranks int) (IncastPoint, error) {
	pt := IncastPoint{Transport: tr.String(), Senders: ranks - 1, BytesPerRank: incastBytes}
	hostLP := netsim.DefaultLinkParams()
	hostLP.Delay = 5 * time.Microsecond
	hostLP.QueueBytes = 32 << 10
	var cct time.Duration
	rep, err := core.Run(core.Options{
		Transport: tr,
		Procs:     ranks,
		Seed:      1,
		Topo:      &topo.Config{Kind: topo.FatTree, HostLink: &hostLP},
		Deadline:  120 * time.Second,
	}, func(pr *mpi.Process, comm *mpi.Comm) error {
		if err := comm.Barrier(); err != nil {
			return err
		}
		t0 := pr.P.Now()
		send := make([]byte, incastBytes)
		for i := range send {
			send[i] = byte(comm.Rank())
		}
		var recv []byte
		if comm.Rank() == 0 {
			recv = make([]byte, ranks*incastBytes)
		}
		if err := comm.Gather(0, send, recv); err != nil {
			return err
		}
		if err := comm.Barrier(); err != nil {
			return err
		}
		if comm.Rank() == 0 {
			cct = pr.P.Now() - t0
			for r := 0; r < ranks; r++ {
				for i := 0; i < incastBytes; i++ {
					if recv[r*incastBytes+i] != byte(r) {
						return fmt.Errorf("incast: rank %d byte %d corrupted", r, i)
					}
				}
			}
		}
		return nil
	})
	if err != nil {
		return pt, fmt.Errorf("incast %s: %w", pt.Transport, err)
	}
	if err := rep.FirstError(); err != nil {
		return pt, fmt.Errorf("incast %s: %w", pt.Transport, err)
	}
	pt.CompletionNS = cct.Nanoseconds()
	pt.QueueDrops = rep.NetStats.PacketsQueued
	pt.PacketsSent = rep.NetStats.PacketsSent
	return pt, nil
}

// IncastRanks is the world size of the incast benchmark (63-to-1).
const IncastRanks = 64

// IncastSweep runs the incast scenario once per RPI backend.
func IncastSweep() ([]IncastPoint, error) {
	pts := make([]IncastPoint, 0, 3)
	for _, tr := range []core.Transport{core.TCP, core.SCTP, core.SCTPOneToOne} {
		pt, err := Incast(tr, IncastRanks)
		if err != nil {
			return nil, err
		}
		pts = append(pts, pt)
	}
	return pts, nil
}
