package bench

import (
	"testing"

	"repro/internal/core"
	"repro/internal/mpi"
)

// runPingPong8 is the perf workload: 8 ranks in pairs (rank <-> rank^1)
// exchanging msgSize-byte messages over lossy links. Loss drives the
// SCTP retransmission machinery, which is where the simulator spends
// its time in the paper's experiments.
func runPingPong8(tb testing.TB, transport core.Transport, msgSize, iters int) {
	tb.Helper()
	opts := core.Options{Transport: transport, Seed: 3, LossRate: 0.02, Procs: 8}
	_, err := core.Run(opts, func(pr *mpi.Process, comm *mpi.Comm) error {
		msg := make([]byte, msgSize)
		buf := make([]byte, msgSize)
		peer := comm.Rank() ^ 1
		for i := 0; i < iters; i++ {
			if comm.Rank() < peer {
				if err := comm.Send(peer, 0, msg); err != nil {
					return err
				}
				if _, err := comm.Recv(peer, 0, buf); err != nil {
					return err
				}
			} else {
				if _, err := comm.Recv(peer, 0, buf); err != nil {
					return err
				}
				if err := comm.Send(peer, 0, msg); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		tb.Fatal(err)
	}
}

// BenchmarkKernelPingPong8 measures the whole stack — kernel, netsim,
// SCTP, MPI — on the lossy 8-rank ping-pong.
func BenchmarkKernelPingPong8(b *testing.B) {
	for b.Loop() {
		runPingPong8(b, core.SCTP, 30<<10, 30)
	}
}

// BenchmarkKernelPingPong8TCP is the TCP counterpart.
func BenchmarkKernelPingPong8TCP(b *testing.B) {
	for b.Loop() {
		runPingPong8(b, core.TCP, 30<<10, 30)
	}
}

// BenchmarkFig8Sweep measures the figure-8 message-size sweep, serial.
func BenchmarkFig8Sweep(b *testing.B) {
	old := Parallelism()
	SetParallelism(1)
	defer SetParallelism(old)
	for b.Loop() {
		if _, err := Fig8Transports(1, 5, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8SweepParallel measures the same sweep with the worker
// pool sized to GOMAXPROCS.
func BenchmarkFig8SweepParallel(b *testing.B) {
	old := Parallelism()
	SetParallelism(0)
	defer SetParallelism(old)
	for b.Loop() {
		if _, err := Fig8Transports(1, 5, nil); err != nil {
			b.Fatal(err)
		}
	}
}
