package chaos

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

// TestCollectiveWorkloadCleanMulticast runs the bcast corpus with no
// faults on a fat-tree: every operation must commit over the multicast
// path (zero fallbacks) with all the rmcast oracles armed and silent.
func TestCollectiveWorkloadCleanMulticast(t *testing.T) {
	res := Run(Spec{
		Transport:  core.SCTP,
		Seed:       1,
		Prefix:     EmptySchedule,
		Procs:      8,
		Rounds:     6,
		Topology:   "fattree",
		Collective: "bcast",
	})
	if res.Failed() {
		t.Fatalf("clean multicast run failed:\n%s", res)
	}
	if res.McastOps != 6 {
		t.Fatalf("oracle saw %d multicast ops, want 6", res.McastOps)
	}
	if res.McastFallbacks != 0 {
		t.Fatalf("clean run fell back %d times", res.McastFallbacks)
	}
}

// TestCollectiveWorkloadAllreduce runs the allreduce corpus (reduce to
// root zero, multicast fan-out) over the mesh testbed on every backend.
func TestCollectiveWorkloadAllreduce(t *testing.T) {
	for _, tr := range []core.Transport{core.TCP, core.SCTP, core.SCTPOneToOne} {
		res := Run(Spec{
			Transport:  tr,
			Seed:       2,
			Prefix:     EmptySchedule,
			Procs:      4,
			Rounds:     4,
			Collective: "allreduce",
		})
		if res.Failed() {
			t.Fatalf("%v allreduce run failed:\n%s", tr, res)
		}
		if res.McastOps != 4 {
			t.Fatalf("%v: oracle saw %d multicast ops, want 4", tr, res.McastOps)
		}
	}
}

// TestCollectiveTreeFamilyUnderFaults keeps the tree family usable from
// the corpus: the collective workload with -alg tree must survive a
// generated fault schedule (no rmcast traffic, so McastOps stays 0).
func TestCollectiveTreeFamilyUnderFaults(t *testing.T) {
	res := Run(Spec{
		Transport:  core.SCTP,
		Seed:       5,
		Events:     3,
		Procs:      4,
		Rounds:     4,
		Collective: "bcast",
		Alg:        "tree",
	})
	if res.Failed() {
		t.Fatalf("tree-family collective run failed:\n%s", res)
	}
	if res.McastOps != 0 {
		t.Fatalf("tree family produced %d multicast ops", res.McastOps)
	}
}

// TestMcastKillFallsBackToTree pins the degrade path end to end: an
// AssocKill timed to land mid-broadcast must abort the multicast
// operation and replay it over the tree — the run completes, payloads
// self-check, the exactly-once and epoch oracles stay silent, and the
// fallback counter proves the degrade actually happened.
func TestMcastKillFallsBackToTree(t *testing.T) {
	// 64 KiB broadcasts (52 multicast chunks) hold each bcast window
	// open for roughly half a millisecond of virtual time, so the kills
	// below land inside broadcast windows; the burst also overflows the
	// fat-tree port queues, exercising the NAK/repair path on the way.
	sched := Schedule{
		{At: 300 * time.Microsecond, Act: AssocKill(1, 2)},
		{At: 900 * time.Microsecond, Act: AssocKill(3, 0)},
		{At: 2 * time.Millisecond, Act: AssocKill(2, 3)},
	}
	res := Run(Spec{
		Transport:  core.SCTP,
		Seed:       1,
		Schedule:   sched,
		Procs:      4,
		Rounds:     6,
		MsgSize:    64 << 10,
		Topology:   "fattree",
		Collective: "bcast",
	})
	if res.Failed() {
		t.Fatalf("kill run failed:\n%s", res)
	}
	if res.SessionsLost == 0 {
		t.Fatal("kills did not register at the RPI layer")
	}
	if res.McastOps != 6 {
		t.Fatalf("oracle saw %d multicast ops, want 6", res.McastOps)
	}
	if res.McastFallbacks == 0 {
		t.Fatal("no mid-broadcast fallback; kills never landed inside a bcast window")
	}
	if res.McastRepairs == 0 {
		t.Fatal("no repairs; the queue-overflow NAK path went unexercised")
	}
}

// TestMcastOracleCatchesDup mutation-tests the accept-once oracle: the
// DupAcceptEvery knob double-fires the accept probe for every Nth
// chunk, and the run must fail with the accepted-twice violation.
func TestMcastOracleCatchesDup(t *testing.T) {
	res := Run(Spec{
		Transport:  core.SCTP,
		Seed:       1,
		Prefix:     EmptySchedule,
		Procs:      4,
		Rounds:     3,
		Collective: "bcast",
		MCDupEvery: 2,
	})
	if !res.Failed() {
		t.Fatal("dup-accept mutation went unnoticed")
	}
	if !hasViolation(res, "accepted twice") {
		t.Fatalf("expected an accepted-twice violation, got:\n%s", res)
	}
}

// TestMcastOracleCatchesDrop mutation-tests the digest oracle: the
// DropChunkEvery knob accounts a chunk without copying its payload, so
// the mutated rank completes with a different digest than its peers.
func TestMcastOracleCatchesDrop(t *testing.T) {
	res := Run(Spec{
		Transport:   core.SCTP,
		Seed:        1,
		Prefix:      EmptySchedule,
		Procs:       4,
		Rounds:      3,
		Collective:  "bcast",
		MCDropEvery: 3,
	})
	if !res.Failed() {
		t.Fatal("drop-chunk mutation went unnoticed")
	}
	if !hasViolation(res, "digest mismatch") {
		t.Fatalf("expected a digest-mismatch violation, got:\n%s", res)
	}
}

// TestCollectiveRepro checks the repro line round-trips the collective
// corpus flags.
func TestCollectiveRepro(t *testing.T) {
	res := &Result{Spec: Spec{
		Transport:   core.SCTP,
		Seed:        9,
		Events:      5,
		Procs:       256,
		Topology:    "fattree",
		Collective:  "bcast",
		Alg:         "multicast",
		AllowKill:   true,
		MCDupEvery:  2,
		MCDropEvery: 3,
	}}
	repro := res.Repro()
	for _, want := range []string{
		"-topo fattree", "-collective bcast", "-alg multicast",
		"-kill", "-mcdup 2", "-mcdrop 3", "-procs 256",
	} {
		if !strings.Contains(repro, want) {
			t.Fatalf("repro %q missing %q", repro, want)
		}
	}
}
