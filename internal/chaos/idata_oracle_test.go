package chaos

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/sctp"
)

// TestIDataCorpusCoverage: with the default Spec, SCTP seeds run with
// interleaving on, so the per-MID oracles actually see traffic; the
// NoIData opt-out runs the same seed on the legacy DATA path with zero
// I-DATA observations. Both must pass clean.
func TestIDataCorpusCoverage(t *testing.T) {
	for _, tr := range []core.Transport{core.SCTP, core.SCTPOneToOne} {
		res := Run(Spec{Transport: tr, Seed: 1})
		if res.Failed() {
			t.Fatalf("%v idata run failed:\n%s", tr, res)
		}
		if res.IDataFrags == 0 {
			t.Errorf("%v: interleaving on by default but oracle saw no I-DATA chunks", tr)
		}
		legacy := Run(Spec{Transport: tr, Seed: 1, NoIData: true})
		if legacy.Failed() {
			t.Fatalf("%v legacy run failed:\n%s", tr, legacy)
		}
		if legacy.IDataFrags != 0 {
			t.Errorf("%v: NoIData set but oracle saw %d I-DATA chunks", tr, legacy.IDataFrags)
		}
	}
}

// TestOracleCatchesMIDViolations drives the SCTP probe directly with
// fragment sequences a correct stack can never produce, and checks each
// per-MID invariant trips. The zero-value Assoc stands in for a real
// association — the oracle only uses its identity and ID().
func TestOracleCatchesMIDViolations(t *testing.T) {
	mustViolate := func(name, want string, drive func(p *sctp.Probe, a *sctp.Assoc)) {
		t.Helper()
		o := NewOracle(func() time.Duration { return 0 })
		a := &sctp.Assoc{}
		drive(o.SCTPProbe(), a)
		v := o.Violations()
		if len(v) == 0 {
			t.Fatalf("%s: no violation recorded", name)
		}
		found := false
		for _, s := range v {
			if strings.Contains(s, want) {
				found = true
			}
		}
		if !found {
			t.Fatalf("%s: violations %q do not mention %q", name, v, want)
		}
	}

	mustViolate("begin with nonzero FSN", "begin/FSN mismatch",
		func(p *sctp.Probe, a *sctp.Assoc) {
			p.IDataFrag(a, 0, 0, 1, true, false)
		})
	mustViolate("middle fragment with FSN 0", "begin/FSN mismatch",
		func(p *sctp.Probe, a *sctp.Assoc) {
			p.IDataFrag(a, 0, 0, 0, false, false)
		})
	mustViolate("duplicate FSN", "duplicate FSN",
		func(p *sctp.Probe, a *sctp.Assoc) {
			p.IDataFrag(a, 2, 5, 0, true, false)
			p.IDataFrag(a, 2, 5, 1, false, false)
			p.IDataFrag(a, 2, 5, 1, false, false)
		})
	mustViolate("second end fragment", "second end fragment",
		func(p *sctp.Probe, a *sctp.Assoc) {
			p.IDataFrag(a, 1, 3, 0, true, false)
			p.IDataFrag(a, 1, 3, 1, false, true)
			p.IDataFrag(a, 1, 3, 2, false, true)
		})
	mustViolate("fragment beyond end", "beyond end",
		func(p *sctp.Probe, a *sctp.Assoc) {
			p.IDataFrag(a, 1, 3, 1, false, true)
			p.IDataFrag(a, 1, 3, 2, false, false)
		})
	mustViolate("MID skip at delivery", "MID order violated",
		func(p *sctp.Probe, a *sctp.Assoc) {
			p.DeliverMID(a, 4, 1)
		})
	mustViolate("MID replay at delivery", "MID order violated",
		func(p *sctp.Probe, a *sctp.Assoc) {
			p.DeliverMID(a, 4, 0)
			p.DeliverMID(a, 4, 0)
		})

	// A clean interleaved exchange must not trip anything, and a restart
	// resets the MID expectation like it resets SSNs.
	o := NewOracle(func() time.Duration { return 0 })
	a := &sctp.Assoc{}
	p := o.SCTPProbe()
	p.IDataFrag(a, 0, 0, 0, true, false)
	p.IDataFrag(a, 0, 1, 0, true, true) // interleaved unfragmented message
	p.IDataFrag(a, 0, 0, 1, false, true)
	p.DeliverMID(a, 0, 0)
	p.DeliverMID(a, 0, 1)
	p.Restart(a)
	p.IDataFrag(a, 0, 0, 0, true, true) // new incarnation restarts MIDs at 0
	p.DeliverMID(a, 0, 0)
	if v := o.Violations(); len(v) != 0 {
		t.Fatalf("clean sequence tripped the oracle: %q", v)
	}
	if o.IDataFrags != 4 {
		t.Fatalf("IDataFrags = %d, want 4", o.IDataFrags)
	}
}
