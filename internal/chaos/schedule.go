// Package chaos is the deterministic fault-injection harness: seeded,
// declarative fault schedules driven by the simulation clock, plus
// end-to-end protocol invariant oracles wired into netsim, the SCTP and
// TCP stacks, and the RPI contract boundary. It is the Jepsen-style
// counterpart to the paper's Dummynet methodology: instead of measuring
// throughput under loss, it checks that the stacks stay *correct* under
// time-varying faults — link flaps, partitions, burst loss, bandwidth
// collapse, and bit corruption.
package chaos

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/netsim"
)

// applyCtx gives actions what they need to apply and undo themselves:
// the cluster under test and the baseline link parameters to restore.
type applyCtx struct {
	c        *core.Cluster
	baseLoss float64
	baseBW   int64
}

// Action is one fault. Network-shaping actions are paired with a revert
// so that any schedule prefix is self-healing: eventual progress is
// always required of the stacks, never excused by a fault left
// standing. AssocKill is the deliberate exception — it does not heal,
// because repairing a dead session is the session-recovery layer's job,
// and the oracle holds it to the same eventual-progress bar.
type Action interface {
	apply(ctx *applyCtx)
	revert(ctx *applyCtx)
	String() string
}

// Event schedules an action at a virtual time, reverting it Dur later.
type Event struct {
	At  time.Duration
	Dur time.Duration
	Act Action
}

// Schedule is a fault schedule: events applied at fixed virtual times.
type Schedule []Event

// install arms every event's apply/revert on the cluster's kernel. It
// must run before Cluster.Start so relative times share the run's t=0.
func (s Schedule) install(ctx *applyCtx) {
	for i := range s {
		ev := s[i]
		ctx.c.Kernel.After(ev.At, func() { ev.Act.apply(ctx) })
		if ev.Dur > 0 {
			ctx.c.Kernel.After(ev.At+ev.Dur, func() { ev.Act.revert(ctx) })
		}
	}
}

// HasCorrupt reports whether the schedule injects bit corruption; runs
// with corruption enable SCTP CRC32c verification unless a mutation
// test explicitly disables it.
func (s Schedule) HasCorrupt() bool {
	for _, ev := range s {
		if _, ok := ev.Act.(*corruptAct); ok {
			return true
		}
	}
	return false
}

// String renders the schedule one event per line.
func (s Schedule) String() string {
	var b strings.Builder
	for _, ev := range s {
		fmt.Fprintf(&b, "@%-8v +%-7v %s\n", ev.At, ev.Dur, ev.Act)
	}
	return b.String()
}

// LinkDown / LinkUp: an entire subnet loses carrier (the paper's pulled
// cable on one of the multihomed networks). The revert is the LinkUp.

type linkDownAct struct{ subnet int }

// LinkDown downs every interface on subnet for the event's duration.
func LinkDown(subnet int) Action { return &linkDownAct{subnet} }

func (a *linkDownAct) apply(ctx *applyCtx)  { ctx.c.Net.SetSubnetDown(a.subnet, true) }
func (a *linkDownAct) revert(ctx *applyCtx) { ctx.c.Net.SetSubnetDown(a.subnet, false) }
func (a *linkDownAct) String() string       { return fmt.Sprintf("linkdown(subnet=%d)", a.subnet) }

// IfaceDown: one rank loses one NIC.

type ifaceDownAct struct{ rank, iface int }

// IfaceDown downs the iface-th interface of rank for the duration.
func IfaceDown(rank, iface int) Action { return &ifaceDownAct{rank, iface} }

func (a *ifaceDownAct) addr(ctx *applyCtx) (netsim.Addr, bool) {
	if a.rank >= len(ctx.c.Nodes) {
		return 0, false
	}
	addrs := ctx.c.Nodes[a.rank].Addrs()
	if a.iface >= len(addrs) {
		return 0, false
	}
	return addrs[a.iface], true
}

func (a *ifaceDownAct) apply(ctx *applyCtx) {
	if addr, ok := a.addr(ctx); ok {
		ctx.c.Net.SetIfaceDown(addr, true)
	}
}

func (a *ifaceDownAct) revert(ctx *applyCtx) {
	if addr, ok := a.addr(ctx); ok {
		ctx.c.Net.SetIfaceDown(addr, false)
	}
}

func (a *ifaceDownAct) String() string {
	return fmt.Sprintf("ifacedown(rank=%d,iface=%d)", a.rank, a.iface)
}

// Partition / Heal: block every pipe crossing the cut between one group
// of ranks and the rest, both directions. Blocking happens before the
// per-packet RNG draws, so a partition leaves the draw sequence of all
// other traffic untouched.

type partitionAct struct{ group []int }

// Partition isolates the given ranks from all others for the duration
// (the Heal is the revert).
func Partition(group ...int) Action { return &partitionAct{group} }

func (a *partitionAct) set(ctx *applyCtx, down bool) {
	in := make(map[int]bool, len(a.group))
	for _, r := range a.group {
		in[r] = true
	}
	for i, ni := range ctx.c.Nodes {
		for j, nj := range ctx.c.Nodes {
			if i == j || in[i] == in[j] {
				continue
			}
			for _, src := range ni.Addrs() {
				for _, dst := range nj.Addrs() {
					ctx.c.Net.UpdateLinkParamsBetween(src, dst,
						func(lp *netsim.LinkParams) { lp.Down = down })
				}
			}
		}
	}
}

func (a *partitionAct) apply(ctx *applyCtx)  { a.set(ctx, true) }
func (a *partitionAct) revert(ctx *applyCtx) { a.set(ctx, false) }
func (a *partitionAct) String() string       { return fmt.Sprintf("partition(group=%v)", a.group) }

// BurstLoss: every link jumps to a high Bernoulli loss rate, then
// returns to the run's baseline (a Dummynet plr change mid-run).

type burstLossAct struct{ rate float64 }

// BurstLoss sets the loss rate on every link for the duration.
func BurstLoss(rate float64) Action { return &burstLossAct{rate} }

func (a *burstLossAct) apply(ctx *applyCtx) {
	ctx.c.Net.UpdateLinkParams(func(lp *netsim.LinkParams) { lp.LossRate = a.rate })
}

func (a *burstLossAct) revert(ctx *applyCtx) {
	ctx.c.Net.UpdateLinkParams(func(lp *netsim.LinkParams) { lp.LossRate = ctx.baseLoss })
}

func (a *burstLossAct) String() string { return fmt.Sprintf("burstloss(rate=%g)", a.rate) }

// RateChange: every link's bandwidth divides by a factor, then returns
// to baseline.

type rateChangeAct struct{ div int64 }

// RateChange divides link bandwidth by div for the duration.
func RateChange(div int64) Action { return &rateChangeAct{div} }

func (a *rateChangeAct) apply(ctx *applyCtx) {
	if a.div <= 0 {
		return
	}
	bw := ctx.baseBW / a.div
	ctx.c.Net.UpdateLinkParams(func(lp *netsim.LinkParams) { lp.Bandwidth = bw })
}

func (a *rateChangeAct) revert(ctx *applyCtx) {
	ctx.c.Net.UpdateLinkParams(func(lp *netsim.LinkParams) { lp.Bandwidth = ctx.baseBW })
}

func (a *rateChangeAct) String() string { return fmt.Sprintf("ratechange(div=%d)", a.div) }

// Corrupt: every link flips one random bit in a fraction of packets.

type corruptAct struct{ rate float64 }

// Corrupt sets the bit-corruption rate on every link for the duration.
func Corrupt(rate float64) Action { return &corruptAct{rate} }

func (a *corruptAct) apply(ctx *applyCtx) {
	ctx.c.Net.UpdateLinkParams(func(lp *netsim.LinkParams) { lp.CorruptRate = a.rate })
}

func (a *corruptAct) revert(ctx *applyCtx) {
	ctx.c.Net.UpdateLinkParams(func(lp *netsim.LinkParams) { lp.CorruptRate = 0 })
}

func (a *corruptAct) String() string { return fmt.Sprintf("corrupt(rate=%g)", a.rate) }

// AssocKill: one rank's transport session to a peer dies abruptly — the
// connection or association is destroyed in place, as if the remote
// stack reset it while the job was mid-flight. Unlike every other
// action it does not heal: the session-recovery layer must redial,
// replay the unacked tail, and deliver exactly once, or the progress
// and delivery oracles fire.

type assocKillAct struct{ rank, peer int }

// AssocKill destroys rank's transport session to peer at the event
// time. Schedule it with Dur 0: there is nothing to revert.
func AssocKill(rank, peer int) Action { return &assocKillAct{rank, peer} }

func (a *assocKillAct) apply(ctx *applyCtx)  { ctx.c.KillSession(a.rank, a.peer) }
func (a *assocKillAct) revert(ctx *applyCtx) {}
func (a *assocKillAct) String() string {
	return fmt.Sprintf("assockill(rank=%d,peer=%d)", a.rank, a.peer)
}

// GenConfig parameterizes random schedule generation. The default
// window is tuned to the chaos workload's fault-free span (a few
// milliseconds of virtual time): early events hit connection setup,
// mid-window events hit the ring traffic, and the stalls the faults
// cause stretch the run into the later events.
type GenConfig struct {
	Events       int           // number of fault events
	Start        time.Duration // earliest event time (default 200 µs)
	Horizon      time.Duration // latest event time (default 10 ms)
	Procs        int           // world size (partition targets)
	Ifaces       int           // interfaces per node (subnet targets)
	AllowCorrupt bool          // include Corrupt events (SCTP-family backends)

	// AllowKill switches generation to the session-recovery corpus:
	// every event is an AssocKill against a live ring neighbour, none of
	// them heal, and the recovery layer has to earn completion.
	AllowKill bool
}

func (g GenConfig) withDefaults() GenConfig {
	if g.Events == 0 {
		g.Events = 5
	}
	if g.Start == 0 {
		g.Start = 200 * time.Microsecond
	}
	if g.Horizon == 0 {
		g.Horizon = 10 * time.Millisecond
	}
	if g.Procs == 0 {
		g.Procs = 4
	}
	if g.Ifaces == 0 {
		g.Ifaces = 1
	}
	return g
}

// RandomSchedule draws a seeded schedule: every event heals itself, so
// any prefix of the schedule leaves a network the stacks must finish
// on. The same (seed, cfg) always yields the same schedule — this is
// the repro handle the runner prints on failure.
func RandomSchedule(seed int64, cfg GenConfig) Schedule {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(seed))
	if cfg.AllowKill {
		// Kill corpus: AssocKill only, aimed at ring neighbours so every
		// kill lands on a session the workload is actively using.
		s := make(Schedule, 0, cfg.Events)
		for i := 0; i < cfg.Events; i++ {
			at := cfg.Start + time.Duration(rng.Int63n(int64(cfg.Horizon-cfg.Start)))
			rank := rng.Intn(cfg.Procs)
			peer := (rank + 1) % cfg.Procs
			if rng.Intn(2) == 1 {
				peer = (rank + cfg.Procs - 1) % cfg.Procs
			}
			s = append(s, Event{At: at, Act: AssocKill(rank, peer)})
		}
		sort.SliceStable(s, func(i, j int) bool { return s[i].At < s[j].At })
		return s
	}
	kinds := 4 // burstloss, ratechange, ifacedown, partition
	if cfg.Ifaces > 1 {
		kinds++ // linkdown of a whole subnet
	}
	if cfg.AllowCorrupt {
		kinds++
	}
	s := make(Schedule, 0, cfg.Events)
	for i := 0; i < cfg.Events; i++ {
		at := cfg.Start + time.Duration(rng.Int63n(int64(cfg.Horizon-cfg.Start)))
		dur := time.Millisecond + time.Duration(rng.Int63n(int64(7*time.Millisecond)))
		var act Action
		switch k := rng.Intn(kinds); k {
		case 0:
			act = BurstLoss(0.02 + 0.18*rng.Float64())
		case 1:
			act = RateChange(1 << (1 + rng.Intn(5))) // divide bandwidth by 2..32
		case 2:
			act = IfaceDown(rng.Intn(cfg.Procs), rng.Intn(cfg.Ifaces))
		case 3:
			// Cut a random nonempty proper subset of ranks.
			var group []int
			for r := 0; r < cfg.Procs; r++ {
				if rng.Intn(2) == 1 {
					group = append(group, r)
				}
			}
			if len(group) == 0 || len(group) == cfg.Procs {
				group = []int{rng.Intn(cfg.Procs)}
			}
			act = Partition(group...)
		case 4:
			if cfg.Ifaces > 1 {
				act = LinkDown(rng.Intn(cfg.Ifaces))
			} else {
				act = Corrupt(0.01 + 0.09*rng.Float64())
			}
		default:
			act = Corrupt(0.01 + 0.09*rng.Float64())
		}
		s = append(s, Event{At: at, Dur: dur, Act: act})
	}
	sort.SliceStable(s, func(i, j int) bool { return s[i].At < s[j].At })
	return s
}
