package chaos

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/sctp"
	"repro/internal/transport"
)

var allTransports = []core.Transport{core.TCP, core.SCTP, core.SCTPOneToOne}

// failoverSCTP tightens failure detection so a two-second outage is
// decisive: heartbeats every 250 ms, two path retries, 100 ms RTO floor.
var failoverSCTP = sctp.Config{
	HBInterval:     250 * time.Millisecond,
	PathMaxRetrans: 2,
	RTOInitial:     200 * time.Millisecond,
	RTOMin:         100 * time.Millisecond,
}

// TestDeterministicReplay runs the same Spec twice per backend and
// requires bit-identical results: same packet-trace hash, same
// violations. This is the repro guarantee — a failing seed replays
// exactly. Seed 3's generated schedule includes a Corrupt event, so the
// CRC-verify path is part of what is pinned.
func TestDeterministicReplay(t *testing.T) {
	for _, tr := range allTransports {
		// The healing-fault corpus and the session-kill corpus (redial
		// backoff jitter draws from the sim RNG, so recovery timing is
		// part of what must replay exactly).
		for _, spec := range []Spec{
			{Transport: tr, Seed: 3},
			{Transport: tr, Seed: 5, AllowKill: true},
		} {
			r1 := Run(spec)
			r2 := Run(spec)
			if r1.TraceHash != r2.TraceHash {
				t.Errorf("%v (kill=%v): trace hash differs across replays: %s vs %s",
					tr, spec.AllowKill, r1.TraceHash, r2.TraceHash)
			}
			if strings.Join(r1.Violations, "\n") != strings.Join(r2.Violations, "\n") {
				t.Errorf("%v (kill=%v): violations differ across replays:\n%v\nvs\n%v",
					tr, spec.AllowKill, r1.Violations, r2.Violations)
			}
			if r1.Sends != r2.Sends || r1.Deliveries != r2.Deliveries {
				t.Errorf("%v (kill=%v): counters differ across replays", tr, spec.AllowKill)
			}
			if r1.Replayed != r2.Replayed || r1.SessionsLost != r2.SessionsLost {
				t.Errorf("%v (kill=%v): recovery counters differ across replays", tr, spec.AllowKill)
			}
		}
	}
}

// TestCorpusQuick is a fast slice of the `make chaos` corpus: every
// backend must survive the first eight generated schedules with all
// invariants intact.
func TestCorpusQuick(t *testing.T) {
	for _, tr := range allTransports {
		for seed := int64(1); seed <= 8; seed++ {
			if res := Run(Spec{Transport: tr, Seed: seed}); res.Failed() {
				t.Errorf("%v seed %d:\n%s", tr, seed, res)
			}
		}
	}
}

// TestOracleCatchesDupDelivery mutation-tests the oracle: an RPI
// wrapper that delivers every 5th short message twice must trip the
// exactly-once and in-order checks, and the failure must shrink to the
// empty schedule (the bug does not need any fault to fire).
func TestOracleCatchesDupDelivery(t *testing.T) {
	spec := Spec{Transport: core.SCTP, Seed: 1, DupDeliverEvery: 5}
	res := Run(spec)
	if !res.Failed() {
		t.Fatal("duplicate-delivery bug not caught")
	}
	if !hasViolation(res, "exactly-once violated") {
		t.Fatalf("no exactly-once violation in:\n%s", res)
	}
	min, minRes := Shrink(spec)
	if minRes == nil {
		t.Fatal("shrink lost the failure")
	}
	if min.Prefix != EmptySchedule || len(minRes.Schedule) != 0 {
		t.Fatalf("shrunk to %d events, want empty schedule:\n%s",
			len(minRes.Schedule), minRes.Schedule)
	}
	if !minRes.Failed() {
		t.Fatal("minimal spec does not fail")
	}
}

// TestOracleCatchesCorruptionWithoutChecksum mutation-tests the
// integrity oracle: seed 3's schedule corrupts packets mid-run, and
// with CRC32c verification forced off the corrupted payloads reach the
// application. The oracle must flag them, and shrinking must land on
// the prefix that ends at the Corrupt event. The control run (checksum
// on, the harness default under corruption) must pass clean.
func TestOracleCatchesCorruptionWithoutChecksum(t *testing.T) {
	spec := Spec{Transport: core.SCTP, Seed: 3, DisableChecksum: true}
	res := Run(spec)
	if !res.Failed() {
		t.Fatal("delivered corruption not caught")
	}
	if !hasViolation(res, "corrupted") {
		t.Fatalf("no corruption violation in:\n%s", res)
	}

	min, minRes := Shrink(spec)
	if minRes == nil {
		t.Fatal("shrink lost the failure")
	}
	last := minRes.Schedule[len(minRes.Schedule)-1]
	if !strings.HasPrefix(last.Act.String(), "corrupt") {
		t.Fatalf("minimal prefix (%d events) does not end at the Corrupt event:\n%s",
			len(minRes.Schedule), minRes.Schedule)
	}
	if min.Prefix != len(minRes.Schedule) {
		t.Fatalf("Prefix %d != schedule length %d", min.Prefix, len(minRes.Schedule))
	}

	control := Run(Spec{Transport: core.SCTP, Seed: 3})
	if control.Failed() {
		t.Fatalf("control run with CRC verification failed:\n%s", control)
	}
}

// TestMultihomedFailover is the end-to-end failover check: mid-run, the
// subnet carrying every primary path goes down for two seconds. The
// associations must detect the dead path, fail over to an alternate
// interface, finish the workload, and keep every delivery invariant
// intact.
func TestMultihomedFailover(t *testing.T) {
	spec := Spec{
		Transport: core.SCTP,
		Seed:      11,
		Multihome: true,
		Schedule: Schedule{
			{At: time.Millisecond, Dur: 2 * time.Second, Act: LinkDown(0)},
		},
		SCTP: &failoverSCTP,
	}
	res := Run(spec)
	if res.Failed() {
		t.Fatalf("failover run violated invariants:\n%s", res)
	}
	if !res.Completed {
		t.Fatal("run did not complete")
	}
	if res.Failovers == 0 {
		t.Fatal("primary subnet was down for 2s but no association failed over")
	}
}

// killSpec pins an AssocKill at t=2s of virtual time. The 25 ms link
// delay stretches the mixed workload well past the kill, so the fault
// lands mid-traffic on an active ring session.
func killSpec(tr core.Transport, seed int64) Spec {
	return Spec{
		Transport: tr,
		Seed:      seed,
		LinkDelay: 25 * time.Millisecond,
		Rounds:    60,
		Schedule: Schedule{
			{At: 2 * time.Second, Act: AssocKill(1, 2)},
		},
	}
}

// TestSessionKillRecovery is the session-recovery acceptance check: an
// AssocKill at t=2s on every backend, and the full mixed workload must
// still complete with zero invariant violations and zero duplicate
// deliveries — the killed session redials, replays its unacked tail
// exactly once, and the run is bit-identical across replays.
func TestSessionKillRecovery(t *testing.T) {
	for _, tr := range allTransports {
		spec := killSpec(tr, 42)
		res := Run(spec)
		if res.Failed() {
			t.Errorf("%v: kill recovery violated invariants:\n%s", tr, res)
			continue
		}
		if !res.Completed {
			t.Errorf("%v: run did not complete after session kill", tr)
		}
		if res.SessionsLost == 0 {
			t.Errorf("%v: AssocKill at 2s did not kill any session", tr)
		}
		if res.RedialsOK == 0 {
			t.Errorf("%v: session lost but no successful redial", tr)
		}
		replay := Run(spec)
		if replay.TraceHash != res.TraceHash {
			t.Errorf("%v: recovery run not bit-identical across replays: %s vs %s",
				tr, res.TraceHash, replay.TraceHash)
		}
	}
}

// TestSessionKillBudgetExhausted: the same kill with the redial budget
// disabled must abort the job with a diagnostic session-lost error —
// never hang until the deadline, and never deadlock the simulation.
func TestSessionKillBudgetExhausted(t *testing.T) {
	for _, tr := range allTransports {
		spec := killSpec(tr, 42)
		spec.RedialBudget = -1
		res := Run(spec)
		if res.Completed {
			t.Errorf("%v: run completed despite a dead session and no redial budget", tr)
			continue
		}
		rep := res.Report
		if rep == nil {
			t.Fatalf("%v: no report", tr)
		}
		if rep.SimErr != nil {
			t.Errorf("%v: abort was not clean: %v", tr, rep.SimErr)
		}
		found := false
		for _, err := range rep.RankErrs {
			if errors.Is(err, transport.ErrSessionLost) {
				found = true
			}
		}
		if !found {
			t.Errorf("%v: no rank reported transport.ErrSessionLost; errs: %v",
				tr, rep.RankErrs)
		}
	}
}

// TestKillCorpusQuick is a fast slice of the `make chaos` kill corpus:
// every backend must survive the first five generated AssocKill-only
// schedules with recovery keeping all invariants intact.
func TestKillCorpusQuick(t *testing.T) {
	for _, tr := range allTransports {
		for seed := int64(1); seed <= 5; seed++ {
			spec := Spec{Transport: tr, Seed: seed, AllowKill: true}
			if res := Run(spec); res.Failed() {
				t.Errorf("%v seed %d:\n%s", tr, seed, res)
			}
		}
	}
}

// TestTopologyCorpusQuick is the fabric slice of the chaos gate in
// miniature (the full 256-rank fat-tree seed runs in `make chaos`):
// every backend must survive a generated fault schedule on a 32-rank
// fat-tree with exactly-once and monotonicity oracles armed. Faults
// land on shared switch ports, so loss bursts and downed interfaces
// hit many flows at once.
func TestTopologyCorpusQuick(t *testing.T) {
	for _, tr := range allTransports {
		spec := Spec{Transport: tr, Seed: 2, Procs: 32, Topology: "fattree", Rounds: 6}
		if res := Run(spec); res.Failed() {
			t.Errorf("%v fattree:\n%s", tr, res)
		}
	}
	// Leaf-spine takes one SCTP seed to keep the suite bounded.
	spec := Spec{Transport: core.SCTP, Seed: 5, Procs: 32, Topology: "leafspine", Rounds: 6}
	if res := Run(spec); res.Failed() {
		t.Errorf("sctp leafspine:\n%s", res)
	}
	// An unknown fabric must fail setup, not panic.
	if res := Run(Spec{Transport: core.TCP, Topology: "torus"}); !res.Failed() {
		t.Error("unknown topology did not fail setup")
	}
}

// TestOracleCatchesDroppedReplay mutation-tests the recovery oracle: a
// session layer that silently drops one replayed message must trip the
// exactly-once completeness check, and the failure must shrink to the
// schedule prefix ending at the AssocKill event (the bug needs the kill
// to fire).
func TestOracleCatchesDroppedReplay(t *testing.T) {
	spec := killSpec(core.SCTP, 42)
	spec.DropReplayEvery = 1
	res := Run(spec)
	if !res.Failed() {
		t.Fatal("dropped replay not caught")
	}
	if !hasViolation(res, "never delivered") {
		t.Fatalf("no undelivered-message violation in:\n%s", res)
	}
	min, minRes := Shrink(spec)
	if minRes == nil {
		t.Fatal("shrink lost the failure")
	}
	if len(minRes.Schedule) == 0 {
		t.Fatalf("shrunk to the empty schedule; the failure needs the kill:\n%s", minRes)
	}
	last := minRes.Schedule[len(minRes.Schedule)-1]
	if !strings.HasPrefix(last.Act.String(), "assockill") {
		t.Fatalf("minimal prefix does not end at the AssocKill event:\n%s", minRes.Schedule)
	}
	if min.Prefix != len(minRes.Schedule) {
		t.Fatalf("Prefix %d != schedule length %d", min.Prefix, len(minRes.Schedule))
	}
	control := Run(killSpec(core.SCTP, 42))
	if control.Failed() {
		t.Fatalf("control run without the mutation failed:\n%s", control)
	}
}

func hasViolation(r *Result, substr string) bool {
	for _, v := range r.Violations {
		if strings.Contains(v, substr) {
			return true
		}
	}
	return false
}
