package chaos

// prefixVal encodes "keep the first k events" in Spec.Prefix terms
// (0 means the whole schedule, so an empty prefix needs the sentinel).
func prefixVal(k int) int {
	if k == 0 {
		return EmptySchedule
	}
	return k
}

// Shrink minimizes a failing run to the shortest schedule prefix that
// still fails, by binary search on the prefix length. Every probe is a
// full deterministic re-run, so the returned Result is a faithful
// replay of the minimal Spec, not a projection of the original.
//
// Failure need not be monotone in the prefix (a later heal can mask an
// earlier fault), so the result is a locally-minimal prefix: it fails,
// and the binary search found no shorter failing prefix on its path.
// That is the standard property-based-testing contract and is enough
// for a useful repro.
//
// The second return is nil when the full spec does not fail (nothing to
// shrink).
func Shrink(spec Spec) (Spec, *Result) {
	full := Run(spec)
	if !full.Failed() {
		return spec, nil
	}
	n := len(full.Schedule)

	try := func(k int) *Result {
		s := spec
		s.Prefix = prefixVal(k)
		if r := Run(s); r.Failed() {
			return r
		}
		return nil
	}

	// The workload alone failing means the schedule is irrelevant: the
	// minimal repro is the empty prefix.
	if r := try(0); r != nil {
		min := spec
		min.Prefix = EmptySchedule
		return min, r
	}

	// Invariant: try(lo) passed, try(hi) failed.
	lo, hi, best := 0, n, full
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if r := try(mid); r != nil {
			hi, best = mid, r
		} else {
			lo = mid
		}
	}
	min := spec
	min.Prefix = prefixVal(hi)
	if best == full && hi < n {
		// The search never re-ran hi exactly; do it so the Result
		// matches the returned Spec.
		best = Run(min)
	}
	return min, best
}
