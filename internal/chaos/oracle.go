package chaos

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/mpi/rmcast"
	"repro/internal/mpi/rpi"
	"repro/internal/netsim"
	"repro/internal/sctp"
	"repro/internal/seqnum"
	"repro/internal/tcp"
)

// maxViolations bounds the violation log so a badly broken run cannot
// grow it without bound; the count past the cap is still recorded.
const maxViolations = 64

// Oracle is the per-run invariant checker. One Oracle watches all
// ranks of one simulation: every callback runs in kernel context, so no
// locking is needed and the observation order is deterministic.
//
// It checks, end to end:
//   - MPI-level exactly-once, in-order delivery per (rank, tag,
//     context), with payload integrity (hash at Send vs at Delivery);
//   - SCTP per-stream serial-number monotonicity, cumulative-TSN
//     monotonicity, and congestion-window sanity per path;
//   - TCP rcv.nxt monotonicity and congestion-window sanity;
//   - eventual progress (every rank finishes, nothing sent stays
//     undelivered) — the runner feeds completion state into Finish.
type Oracle struct {
	clock func() time.Duration

	violations []string
	suppressed int

	// MPI layer.
	sent      map[msgID]*sentMsg
	sendOrder []msgID
	lastSeq   map[orderKey]uint64

	// SCTP layer.
	expectSSN  map[assocStream]uint16
	lastCumTSN map[*sctp.Assoc]seqnum.V

	// SCTP I-DATA layer (RFC 8260 interleaving).
	expectMID map[assocStream]uint32
	mids      map[midKey]*midState

	// TCP layer.
	lastRcvNxt map[*tcp.Conn]seqnum.V

	// Reliable-multicast layer (rmcast protocol events).
	mcEntered map[mcOpRank]mcEnter
	mcOpRoot  map[uint64]int // first rank's root for each op
	mcLastOp  map[int]uint64 // per-rank op-id monotonicity
	mcEpoch   map[int]uint32 // per-rank group-epoch monotonicity (Enter/Complete)
	mcAccept  map[mcChunk]bool
	mcDecided map[mcOpRank]bool
	mcVerdict map[uint64]mcVerdictRec
	mcDone    map[mcOpRank]bool
	mcOpDone  map[uint64]mcDoneRec // first rank's completion of each op

	// Progress bookkeeping.
	Sends      int64
	Deliveries int64
	Failovers  int64
	IDataFrags int64 // accepted I-DATA chunks observed (coverage witness)

	// Multicast aggregates (distinct operations, not per-rank events).
	McastOps       int64
	McastFallbacks int64
	McastRepairs   int64
}

type msgID struct {
	src, dst int
	seq      uint64
	kind     rpi.Kind
}

type sentMsg struct {
	env       rpi.Envelope
	hash      uint64
	delivered int
}

type orderKey struct {
	src, dst int
	tag, ctx int32
}

type assocStream struct {
	a      *sctp.Assoc
	stream uint16
}

// midKey identifies one in-progress interleaved message.
type midKey struct {
	as  assocStream
	mid uint32
}

// midState tracks the fragments seen for one (assoc, stream, MID) so
// the oracle can check per-MID FSN uniqueness, the single-end
// invariant, and that no fragment lands beyond the end.
type midState struct {
	seen    map[uint32]bool
	haveEnd bool
	endFSN  uint32
}

// mcOpRank identifies one rank's participation in one multicast op.
type mcOpRank struct {
	rank int
	op   uint64
}

// mcChunk identifies one accepted data chunk at one rank.
type mcChunk struct {
	rank  int
	op    uint64
	chunk int
}

// mcEnter records a rank's view of an operation at entry.
type mcEnter struct {
	epoch uint32
	root  int
}

// mcVerdictRec is the first verdict recorded for an operation; every
// other rank must agree with it.
type mcVerdictRec struct {
	commit bool
	epoch  uint32
}

// mcDoneRec is the first completion recorded for an operation; every
// other rank must deliver the same payload through the same path.
type mcDoneRec struct {
	fallback bool
	digest   uint64
}

// NewOracle builds an oracle; clock supplies virtual time for
// violation timestamps (pass the kernel's Now).
func NewOracle(clock func() time.Duration) *Oracle {
	return &Oracle{
		clock:      clock,
		sent:       make(map[msgID]*sentMsg),
		lastSeq:    make(map[orderKey]uint64),
		expectSSN:  make(map[assocStream]uint16),
		lastCumTSN: make(map[*sctp.Assoc]seqnum.V),
		expectMID:  make(map[assocStream]uint32),
		mids:       make(map[midKey]*midState),
		lastRcvNxt: make(map[*tcp.Conn]seqnum.V),
		mcEntered:  make(map[mcOpRank]mcEnter),
		mcOpRoot:   make(map[uint64]int),
		mcLastOp:   make(map[int]uint64),
		mcEpoch:    make(map[int]uint32),
		mcAccept:   make(map[mcChunk]bool),
		mcDecided:  make(map[mcOpRank]bool),
		mcVerdict:  make(map[uint64]mcVerdictRec),
		mcDone:     make(map[mcOpRank]bool),
		mcOpDone:   make(map[uint64]mcDoneRec),
	}
}

// Violations returns the recorded invariant violations in detection
// order (deterministic for a given seed and schedule).
func (o *Oracle) Violations() []string {
	v := o.violations
	if o.suppressed > 0 {
		v = append(v[:len(v):len(v)],
			fmt.Sprintf("... %d further violations suppressed", o.suppressed))
	}
	return v
}

func (o *Oracle) violate(format string, args ...interface{}) {
	if len(o.violations) >= maxViolations {
		o.suppressed++
		return
	}
	o.violations = append(o.violations,
		fmt.Sprintf("[%v] %s", o.clock(), fmt.Sprintf(format, args...)))
}

// fnv1a hashes a body for the integrity check.
func fnv1a(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// dataKind reports whether the kind is subject to the MPI
// non-overtaking order (the kinds a receive matches on; ACK echoes and
// rendezvous bodies may legitimately interleave).
func dataKind(k rpi.Kind) bool {
	return k == rpi.KindShort || k == rpi.KindSync || k == rpi.KindLongReq
}

// Observer returns the rpi.Observer for one rank's module.
func (o *Oracle) Observer(rank int) rpi.Observer {
	return rpi.Observer{
		Send: func(dest int, env rpi.Envelope, body []byte) {
			if env.Kind == rpi.KindHello {
				return
			}
			o.Sends++
			id := msgID{src: int(env.Rank), dst: dest, seq: env.Seq, kind: env.Kind}
			if _, dup := o.sent[id]; dup {
				o.violate("rank %d sent duplicate message %+v", rank, id)
				return
			}
			o.sent[id] = &sentMsg{env: env, hash: fnv1a(body)}
			o.sendOrder = append(o.sendOrder, id)
		},
		Deliver: func(env rpi.Envelope, body []byte) {
			if env.Kind == rpi.KindHello {
				return
			}
			o.Deliveries++
			id := msgID{src: int(env.Rank), dst: rank, seq: env.Seq, kind: env.Kind}
			rec := o.sent[id]
			if rec == nil {
				o.violate("rank %d received never-sent message %+v (env %+v)", rank, id, env)
				return
			}
			rec.delivered++
			if rec.delivered > 1 {
				o.violate("exactly-once violated: %+v delivered %d times at rank %d",
					id, rec.delivered, rank)
			}
			if env != rec.env {
				o.violate("envelope mutated in transit to rank %d: sent %+v, got %+v",
					rank, rec.env, env)
			}
			if env.Kind.HasBody() {
				if h := fnv1a(body); h != rec.hash {
					o.violate("payload corrupted in transit: %+v (hash %x != %x)",
						id, h, rec.hash)
				}
			}
			if dataKind(env.Kind) {
				key := orderKey{src: int(env.Rank), dst: rank, tag: env.Tag, ctx: env.Context}
				if last, seen := o.lastSeq[key]; seen && env.Seq <= last {
					o.violate("in-order delivery violated at rank %d for (src=%d,tag=%d,ctx=%d): seq %d after %d",
						rank, env.Rank, env.Tag, env.Context, env.Seq, last)
				}
				o.lastSeq[key] = env.Seq
			}
		},
	}
}

// SCTPProbe returns the probe checking SCTP TSN/SSN monotonicity and
// congestion-window sanity.
func (o *Oracle) SCTPProbe() *sctp.Probe {
	return &sctp.Probe{
		Deliver: func(a *sctp.Assoc, stream, ssn uint16) {
			key := assocStream{a, stream}
			if want := o.expectSSN[key]; ssn != want {
				o.violate("SSN order violated on assoc %d stream %d: got %d, want %d",
					a.ID(), stream, ssn, want)
				o.expectSSN[key] = ssn + 1
				return
			}
			o.expectSSN[key]++
		},
		DeliverMID: func(a *sctp.Assoc, stream uint16, mid uint32) {
			// Interleaved delivery must be dense and monotone per
			// (assoc, stream): MIDs 0, 1, 2, ... with no skips and no
			// repeats — the I-DATA analogue of SSN monotonicity.
			key := assocStream{a, stream}
			if want := o.expectMID[key]; mid != want {
				o.violate("MID order violated on assoc %d stream %d: delivered %d, want %d",
					a.ID(), stream, mid, want)
				o.expectMID[key] = mid + 1
			} else {
				o.expectMID[key]++
			}
			// Delivery consumes the message; any later fragment for this
			// MID is a duplicate the TSN machinery must have filtered.
			delete(o.mids, midKey{key, mid})
		},
		IDataFrag: func(a *sctp.Assoc, stream uint16, mid, fsn uint32, begin, end bool) {
			// Fires once per accepted (in-window, non-duplicate-TSN)
			// I-DATA chunk. Arrival order is not an invariant under loss
			// and retransmission, but within one MID the fragment
			// *numbering* is: the begin fragment is implicitly FSN 0 and
			// every other fragment is numbered from 1; each FSN appears
			// at most once; at most one fragment carries the end flag;
			// and nothing lands beyond it.
			o.IDataFrags++
			if begin != (fsn == 0) {
				o.violate("I-DATA begin/FSN mismatch on assoc %d stream %d mid %d: begin=%v fsn=%d",
					a.ID(), stream, mid, begin, fsn)
			}
			key := midKey{assocStream{a, stream}, mid}
			st := o.mids[key]
			if st == nil {
				st = &midState{seen: make(map[uint32]bool)}
				o.mids[key] = st
			}
			if st.seen[fsn] {
				o.violate("I-DATA duplicate FSN on assoc %d stream %d mid %d: fsn %d accepted twice",
					a.ID(), stream, mid, fsn)
			}
			st.seen[fsn] = true
			if st.haveEnd && fsn > st.endFSN {
				o.violate("I-DATA fragment beyond end on assoc %d stream %d mid %d: fsn %d > end %d",
					a.ID(), stream, mid, fsn, st.endFSN)
			}
			if end {
				if st.haveEnd {
					o.violate("I-DATA second end fragment on assoc %d stream %d mid %d: fsn %d after end %d",
						a.ID(), stream, mid, fsn, st.endFSN)
				} else {
					st.haveEnd = true
					st.endFSN = fsn
				}
			}
		},
		CumTSN: func(a *sctp.Assoc, tsn seqnum.V) {
			if last, seen := o.lastCumTSN[a]; seen && !tsn.Greater(last) {
				o.violate("cumTSN regressed on assoc %d: %d after %d", a.ID(), tsn, last)
			}
			o.lastCumTSN[a] = tsn
		},
		Cwnd: func(a *sctp.Assoc, addr netsim.Addr, cwnd, ssthresh, flight, mtu, limit int) {
			switch {
			case cwnd < mtu:
				o.violate("sctp cwnd below one MTU on assoc %d path %v: %d < %d",
					a.ID(), addr, cwnd, mtu)
			case cwnd > limit:
				o.violate("sctp cwnd above clamp on assoc %d path %v: %d > %d",
					a.ID(), addr, cwnd, limit)
			}
			if flight < 0 {
				o.violate("sctp negative flight on assoc %d path %v: %d", a.ID(), addr, flight)
			}
			if ssthresh <= 0 {
				o.violate("sctp non-positive ssthresh on assoc %d path %v: %d",
					a.ID(), addr, ssthresh)
			}
		},
		Failover: func(a *sctp.Assoc, from, to netsim.Addr) {
			o.Failovers++
		},
		Restart: func(a *sctp.Assoc) {
			// RFC 4960 §5.2 restart keeps the *Assoc and its ID but
			// resets all transfer state: the peer's SSNs restart at 0 and
			// the cumulative TSN restarts at the new initial TSN. Drop
			// the monotonicity expectations for the old incarnation.
			for key := range o.expectSSN {
				if key.a == a {
					delete(o.expectSSN, key)
				}
			}
			for key := range o.expectMID {
				if key.a == a {
					delete(o.expectMID, key)
				}
			}
			for key := range o.mids {
				if key.as.a == a {
					delete(o.mids, key)
				}
			}
			delete(o.lastCumTSN, a)
		},
	}
}

// RMCProbe returns the probe checking the reliable-multicast protocol
// invariants across all ranks of the run:
//   - op-id and group-epoch monotonicity per rank, and cross-rank
//     agreement on each operation's root;
//   - accept-once per (rank, op, chunk) — the dup-accept mutation's
//     target;
//   - a single verdict per operation, agreed by every rank, with the
//     commit/fallback decision consistent end to end;
//   - completion exactly once per (rank, op), never below the entry
//     epoch, and strictly above it when the tree fallback ran — the
//     fallback-exactly-once-across-the-epoch-bump oracle (the bump may
//     exceed one when a later operation's abort lands before a slow
//     rank finishes replaying this one; epochs only ever grow);
//   - bit-identical payload digests at every rank — the drop-chunk
//     mutation's target;
//   - every entered operation eventually completes (checked in Finish
//     for completed runs: the repair/fallback machinery must
//     terminate).
func (o *Oracle) RMCProbe() *rmcast.Probe {
	epochAtLeast := func(rank int, epoch uint32, where string) {
		if last, seen := o.mcEpoch[rank]; seen && epoch < last {
			o.violate("multicast group epoch regressed at rank %d: %s in epoch %d after %d",
				rank, where, epoch, last)
			return
		}
		o.mcEpoch[rank] = epoch
	}
	return &rmcast.Probe{
		Enter: func(rank int, op uint64, epoch uint32, root int) {
			if last, seen := o.mcLastOp[rank]; seen && op <= last {
				o.violate("multicast op ids not monotone at rank %d: op %d after %d", rank, op, last)
			}
			o.mcLastOp[rank] = op
			epochAtLeast(rank, epoch, "entered")
			key := mcOpRank{rank, op}
			if _, dup := o.mcEntered[key]; dup {
				o.violate("rank %d entered multicast op %d twice", rank, op)
			}
			o.mcEntered[key] = mcEnter{epoch: epoch, root: root}
			if first, ok := o.mcOpRoot[op]; ok {
				if first != root {
					o.violate("multicast root disagreement on op %d: rank %d says %d, first rank said %d",
						op, rank, root, first)
				}
			} else {
				o.mcOpRoot[op] = root
			}
		},
		Accept: func(rank int, op uint64, chunk, total int) {
			if chunk < 0 || chunk >= total {
				o.violate("multicast chunk index out of range at rank %d op %d: chunk %d of %d",
					rank, op, chunk, total)
				return
			}
			key := mcChunk{rank: rank, op: op, chunk: chunk}
			if o.mcAccept[key] {
				o.violate("multicast chunk accepted twice at rank %d: op %d chunk %d",
					rank, op, chunk)
			}
			o.mcAccept[key] = true
		},
		Repair: func(rank int, op uint64, chunk int) {
			o.McastRepairs++
		},
		Decide: func(rank int, op uint64, epoch uint32, commit bool) {
			key := mcOpRank{rank, op}
			if o.mcDecided[key] {
				o.violate("rank %d decided multicast op %d twice", rank, op)
			}
			o.mcDecided[key] = true
			if v, ok := o.mcVerdict[op]; ok {
				if v.commit != commit || v.epoch != epoch {
					o.violate("multicast verdict disagreement on op %d: rank %d decided commit=%v epoch=%d, first rank decided commit=%v epoch=%d",
						op, rank, commit, epoch, v.commit, v.epoch)
				}
			} else {
				o.mcVerdict[op] = mcVerdictRec{commit: commit, epoch: epoch}
			}
		},
		Complete: func(rank int, op uint64, epoch uint32, fallback bool, digest uint64) {
			key := mcOpRank{rank, op}
			if o.mcDone[key] {
				o.violate("multicast op %d completed twice at rank %d (exactly-once violated)", op, rank)
			}
			o.mcDone[key] = true
			epochAtLeast(rank, epoch, "completed")
			if _, entered := o.mcEntered[key]; !entered {
				o.violate("rank %d completed multicast op %d it never entered", rank, op)
			}
			if v, decided := o.mcVerdict[op]; decided {
				if v.commit == fallback {
					o.violate("multicast fallback mismatch at rank %d op %d: verdict commit=%v but fallback=%v",
						rank, op, v.commit, fallback)
				}
				// The abort that forces a fallback bumps the group epoch
				// past the operation's stamped epoch, so the tree replay
				// can never collide with straggler multicast frames. A
				// commit leaves the epoch alone but can never regress it.
				if fallback && epoch <= v.epoch {
					o.violate("multicast fallback without epoch bump at rank %d op %d: verdict epoch %d, completed in %d",
						rank, op, v.epoch, epoch)
				}
				if !fallback && epoch < v.epoch {
					o.violate("multicast commit epoch regressed at rank %d op %d: verdict epoch %d, completed in %d",
						rank, op, v.epoch, epoch)
				}
			}
			if first, ok := o.mcOpDone[op]; ok {
				if first.digest != digest {
					o.violate("multicast payload digest mismatch on op %d: rank %d delivered %x, first rank delivered %x",
						op, rank, digest, first.digest)
				}
				if first.fallback != fallback {
					o.violate("multicast fallback disagreement on op %d: rank %d fallback=%v, first rank fallback=%v",
						op, rank, fallback, first.fallback)
				}
			} else {
				o.mcOpDone[op] = mcDoneRec{fallback: fallback, digest: digest}
				o.McastOps++
				if fallback {
					o.McastFallbacks++
				}
			}
		},
	}
}

// TCPProbe returns the probe checking TCP receive monotonicity and
// congestion-window sanity.
func (o *Oracle) TCPProbe() *tcp.Probe {
	return &tcp.Probe{
		Deliver: func(c *tcp.Conn, rcvNxt seqnum.V) {
			if last, seen := o.lastRcvNxt[c]; seen && rcvNxt.Less(last) {
				o.violate("tcp rcv.nxt regressed on %v:%d: %d after %d",
					c.LocalAddr(), c.LocalPort(), rcvNxt, last)
			}
			o.lastRcvNxt[c] = rcvNxt
		},
		Cwnd: func(c *tcp.Conn, cwnd, ssthresh, flight, mss, limit int) {
			switch {
			case cwnd < mss:
				o.violate("tcp cwnd below one MSS on %v:%d: %d < %d",
					c.LocalAddr(), c.LocalPort(), cwnd, mss)
			case cwnd > limit:
				o.violate("tcp cwnd above clamp on %v:%d: %d > %d",
					c.LocalAddr(), c.LocalPort(), cwnd, limit)
			}
			if flight < 0 {
				o.violate("tcp negative flight on %v:%d: %d", c.LocalAddr(), c.LocalPort(), flight)
			}
			if ssthresh <= 0 {
				o.violate("tcp non-positive ssthresh on %v:%d: %d",
					c.LocalAddr(), c.LocalPort(), ssthresh)
			}
		},
	}
}

// undeliveredCap bounds the undelivered-message diagnostics emitted for
// an aborted run, where an undelivered tail is expected and the first
// few entries are what identify the failure.
const undeliveredCap = 5

// Finish runs the end-of-run checks. completed reports whether every
// rank finished cleanly. A completed run must have delivered everything
// it sent — session kills included, which is the exactly-once-replay
// obligation. An aborted run legitimately strands in-flight traffic, so
// only the first undeliveredCap messages are reported, as diagnostics
// for whatever caused the abort.
func (o *Oracle) Finish(completed bool) {
	undelivered := 0
	for _, id := range o.sendOrder {
		rec := o.sent[id]
		if rec.delivered > 0 {
			continue
		}
		undelivered++
		if completed || undelivered <= undeliveredCap {
			o.violate("sent but never delivered: %+v (env %+v)", id, rec.env)
		}
	}
	if !completed && undelivered > undeliveredCap {
		o.violate("... %d further undelivered messages at abort", undelivered-undeliveredCap)
	}
	// Multicast termination: a completed run must have finished every
	// broadcast it entered — commit or tree fallback, never a strand.
	// (An aborted run legitimately leaves the in-flight op unfinished.)
	if completed {
		var open []mcOpRank
		for key := range o.mcEntered {
			if !o.mcDone[key] {
				open = append(open, key)
			}
		}
		sort.Slice(open, func(i, j int) bool {
			if open[i].op != open[j].op {
				return open[i].op < open[j].op
			}
			return open[i].rank < open[j].rank
		})
		for _, key := range open {
			o.violate("multicast op %d entered at rank %d but never completed", key.op, key.rank)
		}
	}
}
