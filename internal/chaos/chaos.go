package chaos

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/mpi/rmcast"
	"repro/internal/mpi/rpi"
	"repro/internal/netsim"
	"repro/internal/netsim/topo"
	"repro/internal/sctp"
)

// EmptySchedule as a Spec.Prefix drops every event: the workload runs
// with no faults at all (the shrinker's base case). A Prefix of 0 — the
// zero value — keeps the whole schedule.
const EmptySchedule = -1

// Spec describes one chaos run. The pair (Seed, Events, Prefix) is the
// complete repro handle for a generated schedule: RandomSchedule is
// deterministic, so re-running the same Spec reproduces the run bit for
// bit, including the packet trace hash.
type Spec struct {
	Transport core.Transport
	Seed      int64 // schedule *and* simulation seed
	Events    int   // generated schedule length (default 5)
	Prefix    int   // >0: keep only the first Prefix events; 0: all; <0: none

	// Schedule, when non-nil, overrides generation (Prefix still
	// applies). Tests use this to pin a specific fault sequence.
	Schedule Schedule

	Procs     int  // world size (default 4)
	Multihome bool // three interfaces per node, heartbeats on
	LossRate  float64

	// Topology, when non-empty ("fattree" or "leafspine"), replaces the
	// full-mesh testbed with a generated multi-hop fabric sized to
	// Procs, so faults land on a network with shared switch ports and
	// real queueing. Mutually exclusive with Multihome.
	Topology string

	Rounds    int // ring-exchange rounds (default 10)
	MsgSize   int // short-protocol payload (default 4 KiB)
	LongEvery int // every LongEvery-th round sends LongSize (default 4)
	LongSize  int // rendezvous payload (default 96 KiB, above the eager limit)

	// Collective, when non-empty ("bcast" or "allreduce"), switches the
	// run to the collective workload: a short ring exchange each round
	// keeps the neighbour sessions warm (so AssocKill stays detectable),
	// then a rotating-root collective of MsgSize bytes runs under the
	// algorithm family named by Alg. The rmcast protocol oracles arm on
	// every run but only see traffic here.
	Collective string
	// Alg names the collective algorithm family: "tree", "naive", or
	// "multicast" (the default when Collective is set).
	Alg string

	// Horizon stretches the generated schedule's event window (default
	// 10 ms). Large collective runs need it: at 256 ranks the startup and
	// first ring phase alone span tens of milliseconds of virtual time,
	// so a default-horizon kill corpus never reaches a broadcast window.
	Horizon time.Duration

	Deadline time.Duration // virtual-time abort (default 10 min; <0 = none)

	// SCTP, when non-nil, overrides the stack config (failover tests
	// tighten heartbeat and RTO timing).
	SCTP *sctp.Config

	// NoIData opts an SCTP run out of RFC 8260 interleaving. By default
	// the chaos corpus runs SCTP transports with I-DATA and the priority
	// scheduler enabled, so every seed exercises the interleaved
	// reassembly path and the per-MID oracles; TCP runs ignore this.
	NoIData bool

	// Session-recovery knobs.
	AllowKill    bool          // generated schedules are AssocKill-only (recovery corpus)
	RedialBudget int           // redials per loss episode: 0 = default (8), <0 = none
	LinkDelay    time.Duration // one-way link delay override (stretch virtual time)

	// Mutation knobs — deliberate bugs the oracle must catch.
	DisableChecksum bool // keep CRC32c verify off even under Corrupt events
	DupDeliverEvery int  // deliver every Nth short message twice (0 = off)
	DropReplayEvery int  // silently drop the Nth replayed message job-wide (0 = off)
	MCDupEvery      int  // double-count every Nth accepted multicast chunk (0 = off)
	MCDropEvery     int  // account every Nth multicast chunk without copying it (0 = off)
}

func (s Spec) withDefaults() Spec {
	if s.Events == 0 {
		s.Events = 5
	}
	if s.Procs == 0 {
		s.Procs = 4
	}
	if s.Rounds == 0 {
		s.Rounds = 30
	}
	if s.MsgSize == 0 {
		s.MsgSize = 4 << 10
	}
	if s.LongEvery == 0 {
		s.LongEvery = 4
	}
	if s.LongSize == 0 {
		s.LongSize = 96 << 10
	}
	if s.Deadline == 0 {
		s.Deadline = 10 * time.Minute
	} else if s.Deadline < 0 {
		s.Deadline = 0
	}
	if s.Collective != "" && s.Alg == "" {
		s.Alg = "multicast"
	}
	return s
}

func (s Spec) ifaces() int {
	if s.Multihome {
		return 3
	}
	return 1
}

// schedule resolves the effective fault schedule, applying Prefix.
func (s Spec) schedule() Schedule {
	sched := s.Schedule
	if sched == nil {
		sched = RandomSchedule(s.Seed, GenConfig{
			Events:       s.Events,
			Horizon:      s.Horizon,
			Procs:        s.Procs,
			Ifaces:       s.ifaces(),
			AllowCorrupt: s.Transport != core.TCP,
			AllowKill:    s.AllowKill,
		})
	}
	switch {
	case s.Prefix < 0:
		sched = sched[:0]
	case s.Prefix > 0 && s.Prefix < len(sched):
		sched = sched[:s.Prefix]
	}
	return sched
}

// transportFlag is the -rpi value naming the transport in the repro
// command line.
func transportFlag(t core.Transport) string {
	switch t {
	case core.TCP:
		return "tcp"
	case core.SCTPOneToOne:
		return "sctp1to1"
	default:
		return "sctp"
	}
}

// Result is one chaos run's outcome.
type Result struct {
	Spec     Spec
	Schedule Schedule // the resolved, prefix-trimmed schedule that ran

	Violations []string // invariant violations, detection order
	Completed  bool     // every rank finished cleanly before the deadline
	TraceHash  string   // SHA-256 of the packet trace (determinism witness)
	LeakDelta  int64    // pooled packets still live at quiescence

	Sends      int64
	Deliveries int64
	Failovers  int64
	IDataFrags int64 // accepted I-DATA chunks the oracle checked

	// Session-recovery aggregates, summed over every rank's counters.
	SessionsLost   int64
	Redials        int64
	RedialsOK      int64
	Replayed       int64
	DupsSuppressed int64

	// Reliable-multicast aggregates (distinct operations, oracle view).
	McastOps       int64
	McastFallbacks int64
	McastRepairs   int64

	Report *core.Report
}

// Failed reports whether the run violated any invariant.
func (r *Result) Failed() bool { return len(r.Violations) > 0 }

// Repro returns the one-line command reproducing this run.
func (r *Result) Repro() string {
	s := r.Spec
	cmd := fmt.Sprintf("go run ./cmd/chaos -rpi %s -seed %d -events %d -prefix %d -procs %d",
		transportFlag(s.Transport), s.Seed, s.Events, s.Prefix, s.Procs)
	if s.Multihome {
		cmd += " -multihome"
	}
	if s.Topology != "" {
		cmd += fmt.Sprintf(" -topo %s", s.Topology)
	}
	if s.Collective != "" {
		cmd += fmt.Sprintf(" -collective %s -alg %s", s.Collective, s.Alg)
	}
	if s.Rounds != 0 && s.Rounds != 30 {
		cmd += fmt.Sprintf(" -rounds %d", s.Rounds)
	}
	if s.MsgSize != 0 && s.MsgSize != 4<<10 {
		cmd += fmt.Sprintf(" -msgsize %d", s.MsgSize)
	}
	if s.Horizon != 0 {
		cmd += fmt.Sprintf(" -horizon %s", s.Horizon)
	}
	if s.AllowKill {
		cmd += " -kill"
	}
	if s.NoIData {
		cmd += " -noidata"
	}
	if s.RedialBudget != 0 {
		cmd += fmt.Sprintf(" -budget %d", s.RedialBudget)
	}
	if s.DupDeliverEvery > 0 {
		cmd += fmt.Sprintf(" -dup %d", s.DupDeliverEvery)
	}
	if s.DropReplayEvery > 0 {
		cmd += fmt.Sprintf(" -dropreplay %d", s.DropReplayEvery)
	}
	if s.MCDupEvery > 0 {
		cmd += fmt.Sprintf(" -mcdup %d", s.MCDupEvery)
	}
	if s.MCDropEvery > 0 {
		cmd += fmt.Sprintf(" -mcdrop %d", s.MCDropEvery)
	}
	if s.DisableChecksum {
		cmd += " -nochecksum"
	}
	return cmd
}

// String renders a failure report: violations, the schedule that ran,
// and the repro command.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s seed=%d: ", transportFlag(r.Spec.Transport), r.Spec.Seed)
	if !r.Failed() {
		fmt.Fprintf(&b, "ok (%d sends, %d deliveries, trace %s)",
			r.Sends, r.Deliveries, r.TraceHash[:12])
		if r.SessionsLost > 0 {
			fmt.Fprintf(&b, " recovery: lost=%d redials=%d/%d replayed=%d dups=%d",
				r.SessionsLost, r.RedialsOK, r.Redials, r.Replayed, r.DupsSuppressed)
		}
		if r.McastOps > 0 {
			fmt.Fprintf(&b, " mcast: ops=%d fallbacks=%d repairs=%d",
				r.McastOps, r.McastFallbacks, r.McastRepairs)
		}
		return b.String()
	}
	fmt.Fprintf(&b, "%d violation(s)\n", len(r.Violations))
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "  %s\n", v)
	}
	if len(r.Schedule) > 0 {
		fmt.Fprintf(&b, "schedule:\n%s", r.Schedule)
	} else {
		fmt.Fprintf(&b, "schedule: (empty)\n")
	}
	fmt.Fprintf(&b, "repro: %s", r.Repro())
	return b.String()
}

// Run executes one chaos run: build the cluster, wire the oracle into
// the RPI boundary and both protocol stacks, arm the fault schedule,
// run the ring workload on every rank, and return the verdict. The
// same Spec always produces the same Result, byte for byte.
func Run(spec Spec) *Result {
	spec = spec.withDefaults()
	sched := spec.schedule()

	opts := core.Options{
		Procs:           spec.Procs,
		Transport:       spec.Transport,
		Seed:            spec.Seed,
		LossRate:        spec.LossRate,
		IfacesPerNode:   spec.ifaces(),
		NoCost:          true,
		Deadline:        spec.Deadline,
		SCTPConfig:      spec.SCTP,
		RedialBudget:    spec.RedialBudget,
		DropReplayEvery: spec.DropReplayEvery,
		MCDupEvery:      spec.MCDupEvery,
		MCDropEvery:     spec.MCDropEvery,
		// Corruption on the wire requires the receiver to verify CRC32c,
		// exactly the paper's trade-off (it ran with verification off on
		// a clean LAN). A mutation test disables it to prove the oracle
		// notices corrupted payloads sneaking through.
		SCTPChecksum: sched.HasCorrupt() && !spec.DisableChecksum,
	}
	if spec.Transport != core.TCP && !spec.NoIData {
		opts.SCTPIData = true
		opts.SCTPSched = sctp.SchedPriority
	}
	if spec.LinkDelay > 0 {
		lp := netsim.DefaultLinkParams()
		lp.Delay = spec.LinkDelay
		opts.Link = &lp
	}
	if spec.Topology != "" {
		kind, err := topo.ParseKind(spec.Topology)
		if err != nil {
			res := &Result{Spec: spec, Schedule: sched}
			res.Violations = append(res.Violations, fmt.Sprintf("setup: %v", err))
			return res
		}
		opts.Topo = &topo.Config{Kind: kind}
	}

	var clock func() time.Duration
	oracle := NewOracle(func() time.Duration { return clock() })
	if spec.Transport == core.TCP {
		opts.TCPProbe = oracle.TCPProbe()
	} else {
		opts.SCTPProbe = oracle.SCTPProbe()
	}
	opts.RMCProbe = oracle.RMCProbe()
	opts.WrapRPI = func(rank int, m rpi.RPI) rpi.RPI {
		if spec.DupDeliverEvery > 0 {
			m = &dupDeliverRPI{RPI: m, every: spec.DupDeliverEvery}
		}
		return rpi.Observe(m, oracle.Observer(rank))
	}

	res := &Result{Spec: spec, Schedule: sched}
	leakBase := netsim.LivePooledPackets()

	c, err := core.NewCluster(opts)
	if err != nil {
		res.Violations = append(res.Violations, fmt.Sprintf("setup: %v", err))
		return res
	}
	clock = c.Kernel.Now

	h := sha256.New()
	c.Net.Trace = func(ev string, pkt *netsim.Packet) {
		fmt.Fprintf(h, "%d|%s|%d|%d|%d|%d\n",
			c.Kernel.Now(), ev, pkt.Src, pkt.Dst, pkt.Proto, len(pkt.Payload))
	}

	base := netsim.DefaultLinkParams()
	sched.install(&applyCtx{c: c, baseLoss: spec.LossRate, baseBW: base.Bandwidth})

	work := workload
	if spec.Collective != "" {
		work = collectiveWorkload
	}
	done := make([]bool, spec.Procs)
	c.Start(func(pr *mpi.Process, comm *mpi.Comm) error {
		if err := work(spec, comm); err != nil {
			return err
		}
		done[comm.Rank()] = true
		return nil
	})
	rep, _ := c.Wait()
	res.Report = rep
	res.TraceHash = hex.EncodeToString(h.Sum(nil))

	completed := rep.SimErr == nil
	for rank := 0; rank < spec.Procs; rank++ {
		if rep.RankErrs[rank] != nil || !done[rank] {
			completed = false
		}
	}
	res.Completed = completed

	for _, cs := range rep.RPIStats {
		res.SessionsLost += cs["sessions_lost"]
		res.Redials += cs["redials_attempted"]
		res.RedialsOK += cs["redials_ok"]
		res.Replayed += cs["msgs_replayed"]
		res.DupsSuppressed += cs["dups_suppressed"]
	}

	// Progress oracle: a clean run finishes every rank. Deadlocks and
	// deadline aborts are invariant violations — the shaping faults all
	// heal, and killed sessions are the recovery layer's to repair, so
	// the stacks have no excuse not to finish.
	if rep.SimErr != nil {
		res.Violations = append(res.Violations, fmt.Sprintf("progress: %v", rep.SimErr))
	}
	for rank := 0; rank < spec.Procs; rank++ {
		if err := rep.RankErrs[rank]; err != nil {
			res.Violations = append(res.Violations, fmt.Sprintf("workload: rank %d: %v", rank, err))
		} else if !done[rank] {
			res.Violations = append(res.Violations,
				fmt.Sprintf("progress: rank %d did not finish by the %v deadline", rank, spec.Deadline))
		}
	}

	oracle.Finish(completed)
	res.Violations = append(res.Violations, oracle.Violations()...)
	res.Sends = oracle.Sends
	res.Deliveries = oracle.Deliveries
	res.Failovers = oracle.Failovers
	res.IDataFrags = oracle.IDataFrags
	res.McastOps = oracle.McastOps
	res.McastFallbacks = oracle.McastFallbacks
	res.McastRepairs = oracle.McastRepairs

	// Pool-leak oracle: at quiescence of a clean run every pooled packet
	// payload must be back in the pool.
	if completed {
		res.LeakDelta = netsim.LivePooledPackets() - leakBase
		if res.LeakDelta != 0 {
			res.Violations = append(res.Violations,
				fmt.Sprintf("leak: %+d pooled packets still live at shutdown", res.LeakDelta))
		}
	}
	return res
}

// pattern fills a deterministic payload for (rank, round).
func pattern(rank, round, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(rank*31 + round*7 + i)
	}
	return b
}

// workload is the per-rank program: ring exchanges mixing the short and
// long (rendezvous) protocols across three tags, a synchronous-send
// pass, a barrier, and a broadcast. It self-checks every payload, so a
// run can fail at the MPI surface even before the oracle weighs in.
func workload(spec Spec, comm *mpi.Comm) error {
	rank, size := comm.Rank(), comm.Size()
	right := (rank + 1) % size
	left := (rank + size - 1) % size

	for r := 0; r < spec.Rounds; r++ {
		n := spec.MsgSize
		if r%spec.LongEvery == spec.LongEvery-1 {
			n = spec.LongSize
		}
		tag := r % 3
		msg := pattern(rank, r, n)
		buf := make([]byte, n)
		st, err := comm.SendRecv(right, tag, msg, left, tag, buf)
		if err != nil {
			return fmt.Errorf("round %d: %w", r, err)
		}
		if st.Count != n {
			return fmt.Errorf("round %d: got %d bytes, want %d", r, st.Count, n)
		}
		want := pattern(left, r, n)
		for i := range buf {
			if buf[i] != want[i] {
				return fmt.Errorf("round %d: payload mismatch at byte %d: got %#x, want %#x",
					r, i, buf[i], want[i])
			}
		}
	}

	// Synchronous-send pass: even ranks Ssend right, odd ranks receive.
	if rank%2 == 0 && rank+1 < size {
		if err := comm.Ssend(rank+1, 7, pattern(rank, 99, 256)); err != nil {
			return fmt.Errorf("ssend: %w", err)
		}
	} else if rank%2 == 1 {
		buf := make([]byte, 256)
		if _, err := comm.Recv(rank-1, 7, buf); err != nil {
			return fmt.Errorf("ssend recv: %w", err)
		}
	}

	if err := comm.Barrier(); err != nil {
		return fmt.Errorf("barrier: %w", err)
	}

	bc := make([]byte, 1024)
	if rank == 0 {
		copy(bc, pattern(0, 123, 1024))
	}
	if err := comm.Bcast(0, bc); err != nil {
		return fmt.Errorf("bcast: %w", err)
	}
	want := pattern(0, 123, 1024)
	for i := range bc {
		if bc[i] != want[i] {
			return fmt.Errorf("bcast: payload mismatch at byte %d", i)
		}
	}
	return nil
}

// parseAlg resolves a Spec.Alg name to the mpi algorithm family.
func parseAlg(name string) (mpi.Alg, error) {
	switch name {
	case "", "multicast":
		return mpi.AlgMulticast, nil
	case "tree":
		return mpi.AlgTree, nil
	case "naive":
		return mpi.AlgNaive, nil
	}
	return mpi.AlgTree, fmt.Errorf("unknown algorithm family %q (want tree, naive, multicast)", name)
}

// collectivePattern gives (rank, round) a deterministic int64 vector
// with rank-distinguishing values, so a wrong fallback replay or a
// dropped chunk shows up as a digest mismatch.
func collectivePattern(rank, round, words int) []int64 {
	v := make([]int64, words)
	for i := range v {
		v[i] = int64(rank+1)*1_000_003 + int64(round)*257 + int64(i)*7
	}
	return v
}

// collectiveWorkload is the collective-corpus program: each round runs
// a short ring exchange (keeping every neighbour session warm so an
// AssocKill lands on traffic the RPI layer is watching) followed by a
// rotating-root collective under the configured algorithm family. All
// payloads are self-checked, so a wrong fallback replay fails at the
// MPI surface even before the rmcast oracle weighs in.
func collectiveWorkload(spec Spec, comm *mpi.Comm) error {
	alg, err := parseAlg(spec.Alg)
	if err != nil {
		return err
	}
	comm.SetAlg(alg)
	rank, size := comm.Rank(), comm.Size()
	right := (rank + 1) % size
	left := (rank + size - 1) % size
	words := spec.MsgSize / 8
	if words == 0 {
		words = 1
	}
	for r := 0; r < spec.Rounds; r++ {
		msg := pattern(rank, r, 256)
		buf := make([]byte, 256)
		if _, err := comm.SendRecv(right, r%3, msg, left, r%3, buf); err != nil {
			return fmt.Errorf("round %d ring: %w", r, err)
		}
		want := pattern(left, r, 256)
		for i := range buf {
			if buf[i] != want[i] {
				return fmt.Errorf("round %d ring: payload mismatch at byte %d", r, i)
			}
		}
		root := r % size
		switch spec.Collective {
		case "bcast":
			data := make([]byte, 8*words)
			if rank == root {
				copy(data, mpi.I64Bytes(collectivePattern(root, r, words)))
			}
			if err := comm.Bcast(root, data); err != nil {
				return fmt.Errorf("round %d bcast: %w", r, err)
			}
			wantB := mpi.I64Bytes(collectivePattern(root, r, words))
			if rmcast.Digest(data) != rmcast.Digest(wantB) {
				return fmt.Errorf("round %d bcast: payload mismatch at rank %d", r, rank)
			}
		case "allreduce":
			data := mpi.I64Bytes(collectivePattern(rank, r, words))
			if err := comm.Allreduce(data, mpi.OpSumI64); err != nil {
				return fmt.Errorf("round %d allreduce: %w", r, err)
			}
			sum := make([]int64, words)
			for rr := 0; rr < size; rr++ {
				for i, v := range collectivePattern(rr, r, words) {
					sum[i] += v
				}
			}
			if rmcast.Digest(data) != rmcast.Digest(mpi.I64Bytes(sum)) {
				return fmt.Errorf("round %d allreduce: result mismatch at rank %d", r, rank)
			}
		default:
			return fmt.Errorf("unknown collective %q (want bcast or allreduce)", spec.Collective)
		}
	}
	return comm.Barrier()
}

// dupDeliverRPI is a deliberate bug for mutation-testing the oracle: it
// delivers every Nth short message twice. The wrapper sits below the
// observer, so the oracle sees the duplicate exactly as the middleware
// would.
type dupDeliverRPI struct {
	rpi.RPI
	every int
	n     int
}

func (w *dupDeliverRPI) SetDelivery(d rpi.Delivery) {
	w.RPI.SetDelivery(func(env rpi.Envelope, body []byte) {
		d(env, body)
		if env.Kind == rpi.KindShort {
			w.n++
			if w.n%w.every == 0 {
				d(env, body)
			}
		}
	})
}
