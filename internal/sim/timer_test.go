package sim

import (
	"testing"
	"time"
)

func TestTimerStopAfterFire(t *testing.T) {
	k := New(1)
	fired := 0
	tm := k.After(time.Second, func() { fired++ })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("fired %d times, want 1", fired)
	}
	if tm.Stop() {
		t.Fatal("Stop after fire returned true")
	}
	if tm.Active() {
		t.Fatal("Active after fire")
	}
}

func TestTimerStopTwice(t *testing.T) {
	k := New(1)
	tm := k.After(time.Second, func() { t.Error("cancelled timer fired") })
	if !tm.Stop() {
		t.Fatal("first Stop returned false")
	}
	if tm.Stop() {
		t.Fatal("second Stop returned true")
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestTimerActiveZeroDelay(t *testing.T) {
	k := New(1)
	tm := k.After(0, func() {})
	if !tm.Active() {
		t.Fatal("zero-delay timer not Active before Run")
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if tm.Active() {
		t.Fatal("zero-delay timer Active after firing")
	}
}

func TestZeroTimerInert(t *testing.T) {
	var tm Timer
	if tm.Stop() {
		t.Fatal("zero Timer Stop returned true")
	}
	if tm.Active() {
		t.Fatal("zero Timer Active returned true")
	}
}

// TestTimerStaleAfterRecycle holds a Timer past its event's recycling
// and reuse. The generation counter must keep the stale handle inert so
// it cannot cancel the unrelated timer now occupying the pooled event.
func TestTimerStaleAfterRecycle(t *testing.T) {
	k := New(1)
	stale := k.After(time.Second, func() {})
	fired := false
	k.After(2*time.Second, func() {
		// stale's event fired at t=1s and is back on the free list;
		// this After reuses it.
		fresh := k.After(time.Second, func() { fired = true })
		if stale.Stop() {
			t.Error("stale Stop returned true")
		}
		if stale.Active() {
			t.Error("stale Timer reports Active")
		}
		if !fresh.Active() {
			t.Error("fresh timer cancelled through stale handle")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("reused-event timer did not fire")
	}
}

// TestStopBoundsHeap churns set-then-cancel cycles — the
// retransmission-timer pattern — and checks the event heap does not
// accumulate cancelled entries. Before Stop removed events from the
// heap, PendingEvents would grow by one per cycle here.
func TestStopBoundsHeap(t *testing.T) {
	k := New(1)
	k.Spawn("churn", func(p *Proc) {
		for i := 0; i < 10000; i++ {
			tm := k.After(time.Hour, func() { t.Error("cancelled timer fired") })
			p.Sleep(time.Microsecond)
			tm.Stop()
		}
		if n := k.PendingEvents(); n > 1 {
			t.Errorf("PendingEvents = %d after churn, want <= 1", n)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestRunQueueWrapFIFO pushes enough ready processes through the ring
// buffer to force it to wrap and grow, and checks wakeup order stays
// FIFO throughout.
func TestRunQueueWrapFIFO(t *testing.T) {
	k := New(1)
	const n = 100
	var order []int
	for i := 0; i < n; i++ {
		i := i
		k.Spawn("p", func(p *Proc) {
			for round := 0; round < 5; round++ {
				p.Yield()
			}
			order = append(order, i)
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != n {
		t.Fatalf("%d procs finished, want %d", len(order), n)
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("finish order[%d] = %d, want %d (ring lost FIFO)", i, got, i)
		}
	}
}
