package sim

import "time"

type procState int

const (
	stateReady procState = iota
	stateRunning
	stateParked
	stateDone
)

// Proc is a cooperatively scheduled simulation process. All of its
// methods must be called from the process's own goroutine.
type Proc struct {
	k      *Kernel
	name   string
	id     int
	resume chan struct{}
	state  procState

	// waitGen guards against stale timer wakeups: each park increments
	// it, and a wakeup crafted for an earlier generation is ignored.
	waitGen  uint64
	timedOut bool
}

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// ID returns a dense per-kernel process index.
func (p *Proc) ID() int { return p.id }

// Kernel returns the owning kernel.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current virtual time.
func (p *Proc) Now() time.Duration { return p.k.now }

// park blocks the process until another actor calls k.ready(p). The
// successor (the next runnable process, or the kernel loop) is resumed
// directly; all of p's state is written before the handoff, so the
// successor observes a fully parked process.
func (p *Proc) park() {
	p.state = stateParked
	p.waitGen++
	p.k.schedNext()
	<-p.resume
}

// Yield gives up the processor; the process stays runnable and will be
// rescheduled after currently pending work.
func (p *Proc) Yield() {
	k := p.k
	if k.run.len == 0 && !k.stopped {
		// No other process is runnable: handing control away would
		// schedule p itself right back, so just keep running.
		return
	}
	p.state = stateReady
	k.run.push(p)
	k.schedNext()
	<-p.resume
}

// Sleep blocks the process for d of virtual time.
func (p *Proc) Sleep(d time.Duration) {
	if d <= 0 {
		p.Yield()
		return
	}
	gen := p.waitGen + 1
	p.k.After(d, func() {
		if p.waitGen == gen && p.state == stateParked {
			p.k.ready(p)
		}
	})
	p.park()
}

// Cond is a condition variable for simulation processes. The zero value
// is not usable; create one with NewCond.
type Cond struct {
	k       *Kernel
	waiters []*Proc
}

// NewCond returns a condition variable bound to k.
func NewCond(k *Kernel) *Cond { return &Cond{k: k} }

// Wait blocks p until Signal or Broadcast wakes it. There is no
// associated mutex: the simulation is cooperatively scheduled, so the
// caller's predicate cannot change between checking it and parking.
// As with sync.Cond, callers should re-check their predicate on wakeup.
func (c *Cond) Wait(p *Proc) {
	c.waiters = append(c.waiters, p)
	p.park()
}

// WaitTimeout blocks p until a wakeup or until d elapses. It reports
// whether the process was woken by Signal/Broadcast (true) rather than
// by the timeout (false).
func (c *Cond) WaitTimeout(p *Proc, d time.Duration) bool {
	if d <= 0 {
		return false
	}
	gen := p.waitGen + 1
	p.timedOut = false
	t := c.k.After(d, func() {
		if p.waitGen == gen && p.state == stateParked {
			c.remove(p)
			p.timedOut = true
			c.k.ready(p)
		}
	})
	c.waiters = append(c.waiters, p)
	p.park()
	t.Stop()
	return !p.timedOut
}

// Signal wakes the longest-waiting process, if any.
func (c *Cond) Signal() {
	if len(c.waiters) == 0 {
		return
	}
	p := c.waiters[0]
	c.waiters[0] = nil // release the slot; head-slicing pins the array
	c.waiters = c.waiters[1:]
	c.k.ready(p)
}

// Broadcast wakes every waiting process.
func (c *Cond) Broadcast() {
	ws := c.waiters
	c.waiters = nil
	for _, p := range ws {
		c.k.ready(p)
	}
}

// Waiters returns the number of processes currently blocked on c.
func (c *Cond) Waiters() int { return len(c.waiters) }

func (c *Cond) remove(p *Proc) {
	for i, w := range c.waiters {
		if w == p {
			c.waiters = append(c.waiters[:i], c.waiters[i+1:]...)
			return
		}
	}
}

// WaitGroup counts outstanding work items; Wait blocks processes until
// the count reaches zero. It is the virtual-time analogue of
// sync.WaitGroup.
type WaitGroup struct {
	n    int
	cond *Cond
}

// NewWaitGroup returns a WaitGroup bound to k.
func NewWaitGroup(k *Kernel) *WaitGroup {
	return &WaitGroup{cond: NewCond(k)}
}

// Add adds delta to the counter. When the counter reaches zero all
// waiters are released.
func (w *WaitGroup) Add(delta int) {
	w.n += delta
	if w.n < 0 {
		panic("sim: negative WaitGroup counter")
	}
	if w.n == 0 {
		w.cond.Broadcast()
	}
}

// Done decrements the counter by one.
func (w *WaitGroup) Done() { w.Add(-1) }

// Wait blocks p until the counter is zero.
func (w *WaitGroup) Wait(p *Proc) {
	for w.n > 0 {
		w.cond.Wait(p)
	}
}
