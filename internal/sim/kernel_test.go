package sim

import (
	"testing"
	"time"
)

func TestEventOrdering(t *testing.T) {
	k := New(1)
	var got []int
	k.After(2*time.Second, func() { got = append(got, 2) })
	k.After(1*time.Second, func() { got = append(got, 1) })
	k.After(3*time.Second, func() { got = append(got, 3) })
	k.After(1*time.Second, func() { got = append(got, 11) }) // same time: FIFO by seq
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 11, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
	if k.Now() != 3*time.Second {
		t.Fatalf("clock = %v, want 3s", k.Now())
	}
}

func TestTimerStop(t *testing.T) {
	k := New(1)
	fired := false
	tm := k.After(time.Second, func() { fired = true })
	k.After(500*time.Millisecond, func() {
		if !tm.Stop() {
			t.Error("Stop returned false on pending timer")
		}
		if tm.Stop() {
			t.Error("second Stop returned true")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("cancelled timer fired")
	}
}

func TestProcSleep(t *testing.T) {
	k := New(1)
	var wake time.Duration
	k.Spawn("sleeper", func(p *Proc) {
		p.Sleep(5 * time.Second)
		wake = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if wake != 5*time.Second {
		t.Fatalf("woke at %v, want 5s", wake)
	}
}

func TestCondSignalOrder(t *testing.T) {
	k := New(1)
	c := NewCond(k)
	var order []string
	for _, name := range []string{"a", "b", "c"} {
		name := name
		k.Spawn(name, func(p *Proc) {
			c.Wait(p)
			order = append(order, name)
		})
	}
	k.After(time.Second, func() {
		c.Signal()
		c.Signal()
		c.Signal()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Fatalf("wake order %v, want [a b c]", order)
	}
}

func TestCondWaitTimeout(t *testing.T) {
	k := New(1)
	c := NewCond(k)
	var timedOut, signaled bool
	k.Spawn("w1", func(p *Proc) {
		timedOut = !c.WaitTimeout(p, time.Second)
	})
	k.Spawn("w2", func(p *Proc) {
		signaled = c.WaitTimeout(p, 10*time.Second)
	})
	k.After(2*time.Second, func() { c.Broadcast() })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !timedOut {
		t.Error("w1 should have timed out")
	}
	if !signaled {
		t.Error("w2 should have been signaled")
	}
	if c.Waiters() != 0 {
		t.Errorf("%d stale waiters", c.Waiters())
	}
}

func TestDeadlockDetection(t *testing.T) {
	k := New(1)
	c := NewCond(k)
	k.Spawn("stuck", func(p *Proc) { c.Wait(p) })
	err := k.Run()
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("expected DeadlockError, got %v", err)
	}
	if len(de.Blocked) != 1 || de.Blocked[0] != "stuck" {
		t.Fatalf("blocked = %v", de.Blocked)
	}
}

func TestWaitGroup(t *testing.T) {
	k := New(1)
	wg := NewWaitGroup(k)
	wg.Add(3)
	done := false
	for i := 0; i < 3; i++ {
		i := i
		k.Spawn("worker", func(p *Proc) {
			p.Sleep(time.Duration(i+1) * time.Second)
			wg.Done()
		})
	}
	k.Spawn("waiter", func(p *Proc) {
		wg.Wait(p)
		done = true
		if p.Now() != 3*time.Second {
			t.Errorf("released at %v, want 3s", p.Now())
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("waiter never released")
	}
}

func TestRunFor(t *testing.T) {
	k := New(1)
	n := 0
	var tick func()
	tick = func() {
		n++
		k.After(time.Second, tick)
	}
	k.After(time.Second, tick)
	if err := k.RunFor(10500 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Fatalf("ticks = %d, want 10", n)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (time.Duration, int64) {
		k := New(42)
		var sum int64
		for i := 0; i < 50; i++ {
			k.Spawn("p", func(p *Proc) {
				for j := 0; j < 20; j++ {
					p.Sleep(time.Duration(k.Rand().Intn(1000)) * time.Millisecond)
					sum += int64(k.Rand().Intn(100))
				}
			})
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return k.Now(), sum
	}
	t1, s1 := run()
	t2, s2 := run()
	if t1 != t2 || s1 != s2 {
		t.Fatalf("nondeterministic: (%v,%d) vs (%v,%d)", t1, s1, t2, s2)
	}
}

func TestYield(t *testing.T) {
	k := New(1)
	var order []int
	k.Spawn("a", func(p *Proc) {
		order = append(order, 1)
		p.Yield()
		order = append(order, 3)
	})
	k.Spawn("b", func(p *Proc) {
		order = append(order, 2)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v", order)
		}
	}
}
