package sim

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

// TestWheelStopAfterCascade stops a timer after a level-1 cascade has
// re-bucketed its event into level 0: the removal must come out of the
// wheel slot (swap-remove path), not the heap path, and the callback
// must never run.
func TestWheelStopAfterCascade(t *testing.T) {
	k := New(1)
	fired := false
	// 3 ms and 2.5 ms are both past the level-0 horizon (~2.1 ms), so
	// both events start in the same level-1 slot.
	victim := k.After(3*time.Millisecond, func() { fired = true })
	if victim.ev.where != locL1 {
		t.Fatalf("victim scheduled in container %d, want locL1", victim.ev.where)
	}
	stopped := false
	k.After(2500*time.Microsecond, func() {
		// Reaching this callback required cascading the shared level-1
		// slot; the victim must have landed in level 0.
		if victim.ev.where != locL0 {
			t.Fatalf("victim in container %d after cascade, want locL0", victim.ev.where)
		}
		stopped = victim.Stop()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !stopped {
		t.Fatal("Stop after cascade returned false")
	}
	if fired {
		t.Fatal("stopped timer fired")
	}
	if victim.Active() {
		t.Fatal("stopped timer still active")
	}
	if k.PendingEvents() != 0 {
		t.Fatalf("PendingEvents = %d after Stop, want 0", k.PendingEvents())
	}
}

// TestWheelZeroDelayAfter checks that zero-delay events scheduled from
// inside a callback run at the same virtual instant, after everything
// already scheduled for that instant, in FIFO order.
func TestWheelZeroDelayAfter(t *testing.T) {
	k := New(1)
	var order []int
	at := 700 * time.Microsecond // level-0 territory
	k.After(at, func() {
		order = append(order, 1)
		k.After(0, func() {
			order = append(order, 3)
			if k.Now() != at {
				t.Fatalf("zero-delay fired at %v, want %v", k.Now(), at)
			}
			k.After(0, func() { order = append(order, 5) })
		})
		k.After(0, func() { order = append(order, 4) })
	})
	k.After(at, func() { order = append(order, 2) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i+1 {
			t.Fatalf("execution order %v, want 1..5", order)
		}
	}
}

// TestWheelFarFuturePromotion parks an event beyond the wheel horizon
// (~537 ms) and checks it is promoted and fires at exactly its due
// time, interleaved correctly with near-future work.
func TestWheelFarFuturePromotion(t *testing.T) {
	k := New(1)
	var order []string
	far := k.After(10*time.Minute, func() { order = append(order, "far") })
	if far.ev.where != locFar {
		t.Fatalf("10-minute timer in container %d, want locFar", far.ev.where)
	}
	k.After(time.Millisecond, func() { order = append(order, "near") })
	// A second far event in a different level-2 epoch must survive the
	// first promotion round untouched.
	k.After(20*time.Minute, func() {
		order = append(order, "farther")
		if k.Now() != 20*time.Minute {
			t.Fatalf("farther fired at %v", k.Now())
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != "near" || order[1] != "far" || order[2] != "farther" {
		t.Fatalf("execution order %v", order)
	}
	if k.Now() != 20*time.Minute {
		t.Fatalf("final time %v, want 20m", k.Now())
	}
}

// TestWheelStaleTimerAfterReuse recycles a fired timer's event into a
// new wheel slot and checks the stale handle neither stops nor reports
// the new event.
func TestWheelStaleTimerAfterReuse(t *testing.T) {
	k := New(1)
	var stale Timer
	fired := 0
	stale = k.After(100*time.Microsecond, func() {})
	k.After(200*time.Microsecond, func() {
		// Both earlier events have fired and been recycled (LIFO free
		// list: this callback's own event is on top). Burn one alloc so
		// the next reuses the stale handle's event for a new pending
		// timer in a different container.
		k.After(0, func() {})
		fresh := k.After(5*time.Minute, func() { fired++ })
		if fresh.ev != stale.ev {
			t.Skip("free list did not reuse the event; pooling changed")
		}
		if stale.Active() {
			t.Fatal("stale handle reports active")
		}
		if stale.Stop() {
			t.Fatal("stale handle stopped the reused event")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("reused event fired %d times, want 1", fired)
	}
}

// TestWheelOrderingFuzz schedules thousands of timers across every
// container (ready, both wheel levels, overflow) with ties and random
// cancellations, and checks the kernel fires them in exactly (when,
// seq) order — the single-heap contract the golden trace hash relies
// on.
func TestWheelOrderingFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	horizons := []time.Duration{
		50 * time.Microsecond,  // ready/level-0 ties
		2 * time.Millisecond,   // level-0
		400 * time.Millisecond, // level-1
		3 * time.Second,        // overflow
	}
	type expect struct {
		when time.Duration
		seq  int
	}
	k := New(1)
	var fired []expect
	var want []expect
	timers := make([]Timer, 0, 2000)
	for i := 0; i < 2000; i++ {
		h := horizons[rng.Intn(len(horizons))]
		d := time.Duration(rng.Int63n(int64(h)))
		if rng.Intn(10) == 0 {
			d = h // exact ties across insertions
		}
		seq := i
		when := d
		timers = append(timers, k.After(d, func() {
			fired = append(fired, expect{when, seq})
		}))
		want = append(want, expect{when, seq})
	}
	// Cancel a third of them before running.
	cancelled := make(map[int]bool)
	for i := 0; i < 700; i++ {
		j := rng.Intn(len(timers))
		if timers[j].Stop() {
			cancelled[j] = true
		}
	}
	kept := want[:0]
	for i, e := range want {
		if !cancelled[i] {
			kept = append(kept, e)
		}
	}
	sort.SliceStable(kept, func(i, j int) bool {
		if kept[i].when != kept[j].when {
			return kept[i].when < kept[j].when
		}
		return kept[i].seq < kept[j].seq
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(fired) != len(kept) {
		t.Fatalf("fired %d events, want %d", len(fired), len(kept))
	}
	for i := range fired {
		if fired[i] != kept[i] {
			t.Fatalf("event %d fired as %+v, want %+v", i, fired[i], kept[i])
		}
	}
	if k.PendingEvents() != 0 {
		t.Fatalf("PendingEvents = %d at quiescence", k.PendingEvents())
	}
}

// TestAfterNoAllocSteadyState pins the arena contract: once the free
// list and container capacities are warm, scheduling and firing events
// allocates nothing.
func TestAfterNoAllocSteadyState(t *testing.T) {
	k := New(1)
	cycle := func() {
		for i := 0; i < 64; i++ {
			k.After(time.Duration(i)*37*time.Microsecond, func() {})
		}
		k.After(3*time.Millisecond, func() {})   // level-1
		k.After(800*time.Millisecond, func() {}) // overflow
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
	}
	// Warm the free list and every wheel slot: virtual time advances
	// each cycle, so the burst straddling the level-0 epoch boundary
	// lands in a rotating level-1 slot; enough laps grow them all.
	for i := 0; i < 1024; i++ {
		cycle()
	}
	if n := testing.AllocsPerRun(50, cycle); n > 0 {
		t.Fatalf("steady-state event cycle allocates %.1f times per run, want 0", n)
	}
}
