// Package sim provides a deterministic discrete-event simulation kernel
// with virtual time and cooperatively scheduled processes.
//
// The kernel is single-threaded in the scheduling sense: although each
// process runs on its own goroutine, exactly one process (or one event
// callback) executes at any instant, and control is handed back to the
// kernel whenever a process blocks. All state reachable from events and
// processes can therefore be mutated without locks, and a run is exactly
// reproducible from its seed.
package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"
)

// Kernel is a discrete-event scheduler with virtual time.
type Kernel struct {
	now      time.Duration
	seq      uint64
	sched    timerWheel
	run      procRing
	free     []*event // recycled event structs
	arena    []event  // current allocation block (see allocEvent)
	arenaPos int
	procs    map[*Proc]struct{}
	yield    chan struct{}
	rng      *rand.Rand
	running  bool
	stopped  bool
	nprocs   int
}

// New returns a kernel whose random source is seeded with seed.
// The same seed always produces the same run.
func New(seed int64) *Kernel {
	k := &Kernel{
		procs: make(map[*Proc]struct{}),
		yield: make(chan struct{}),
		rng:   rand.New(rand.NewSource(seed)),
	}
	k.sched.init()
	return k
}

// Now returns the current virtual time.
func (k *Kernel) Now() time.Duration { return k.now }

// Rand returns the kernel's deterministic random source.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// PendingEvents returns the number of events currently scheduled. With
// timers removed from the schedule on Stop, this stays proportional to
// the genuinely outstanding work, not to cancellation churn.
func (k *Kernel) PendingEvents() int { return k.sched.Len() }

// Timer is a cancellable scheduled callback. The zero Timer is inert:
// Stop and Active return false. Timers are values; event structs behind
// them are pooled, and a generation counter makes a Timer held across
// its event's recycling safely report inactive.
type Timer struct {
	ev  *event
	gen uint64
}

// Stop cancels the timer, removing its event from the schedule. It is
// safe to call on a zero, already-fired or already-stopped timer. It
// reports whether the call prevented the callback from running.
func (t Timer) Stop() bool {
	ev := t.ev
	if ev == nil || ev.gen != t.gen || ev.where == locNone {
		return false
	}
	ev.k.sched.remove(ev)
	ev.k.recycle(ev)
	return true
}

// Active reports whether the timer is still pending.
func (t Timer) Active() bool {
	return t.ev != nil && t.ev.gen == t.gen && t.ev.where != locNone
}

// arenaBlock is the number of event structs carved out of one arena
// allocation. Blocks stay reachable through the events pointing into
// them; the steady state cycles through the free list and never
// allocates.
const arenaBlock = 256

// allocEvent takes an event from the free list (or the current arena
// block) and stamps it with the next sequence number.
func (k *Kernel) allocEvent(when time.Duration, fn func()) *event {
	var ev *event
	if n := len(k.free); n > 0 {
		ev = k.free[n-1]
		k.free[n-1] = nil
		k.free = k.free[:n-1]
	} else {
		if k.arenaPos == len(k.arena) {
			k.arena = make([]event, arenaBlock)
			k.arenaPos = 0
		}
		ev = &k.arena[k.arenaPos]
		k.arenaPos++
		ev.k = k
	}
	ev.when = when
	ev.seq = k.seq
	ev.fn = fn
	k.seq++
	return ev
}

// recycle returns a fired or cancelled event to the free list. Bumping
// the generation invalidates every Timer still pointing at it.
func (k *Kernel) recycle(ev *event) {
	ev.fn = nil
	ev.gen++
	ev.where = locNone
	ev.index = -1
	k.free = append(k.free, ev)
}

// After schedules fn to run at Now()+d in kernel context.
// A negative d is treated as zero.
func (k *Kernel) After(d time.Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	ev := k.allocEvent(k.now+d, fn)
	k.sched.insert(ev)
	return Timer{ev: ev, gen: ev.gen}
}

// Spawn creates a process named name running fn and marks it runnable.
// The process starts the next time the scheduler picks it.
func (k *Kernel) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{
		k:      k,
		name:   name,
		id:     k.nprocs,
		resume: make(chan struct{}),
		state:  stateReady,
	}
	k.nprocs++
	k.procs[p] = struct{}{}
	go func() {
		<-p.resume
		fn(p)
		p.state = stateDone
		delete(k.procs, p)
		k.schedNext()
	}()
	k.run.push(p)
	return p
}

// DeadlockError is returned by Run when live processes remain but no
// process is runnable and no event is pending.
type DeadlockError struct {
	Time    time.Duration
	Blocked []string
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at %v: blocked processes: %s",
		e.Time, strings.Join(e.Blocked, ", "))
}

// schedNext hands the single execution token to the next runnable
// process, or back to the kernel loop when none is runnable (or the
// kernel is stopping). It must be the caller's last scheduling action:
// a process calls it right before blocking on its own resume channel.
// Resuming the successor directly halves the channel operations per
// process switch compared to bouncing through the kernel loop, while
// preserving exact FIFO order.
func (k *Kernel) schedNext() {
	if !k.stopped && k.run.len > 0 {
		p := k.run.pop()
		p.state = stateRunning
		p.resume <- struct{}{}
		return
	}
	k.yield <- struct{}{}
}

// Run executes events and processes until the simulation quiesces: no
// runnable process and no pending event. If live processes remain at
// quiescence it returns a *DeadlockError naming them.
func (k *Kernel) Run() error {
	if k.running {
		panic("sim: Run called re-entrantly")
	}
	k.running = true
	k.stopped = false
	defer func() { k.running = false }()
	for {
		if !k.stopped && k.run.len > 0 {
			// Kick off the first runnable process; the processes then
			// hand control to each other directly and the last one
			// yields back here once the run queue drains.
			p := k.run.pop()
			p.state = stateRunning
			p.resume <- struct{}{}
			<-k.yield
		}
		if k.stopped {
			return nil
		}
		ev := k.sched.pop()
		if ev == nil {
			if len(k.procs) > 0 {
				return &DeadlockError{Time: k.now, Blocked: k.blockedNames()}
			}
			return nil
		}
		k.now = ev.when
		fn := ev.fn
		k.recycle(ev)
		fn()
	}
}

// RunFor runs the simulation for d of virtual time (or until quiescence,
// whichever comes first). Unlike Run it does not treat blocked processes
// as a deadlock; it simply returns.
func (k *Kernel) RunFor(d time.Duration) error {
	deadline := k.now + d
	k.After(d, func() { k.stopped = true })
	err := k.Run()
	if err != nil {
		return err
	}
	if k.now < deadline {
		// Quiesced early: the schedule is empty, so the jump cannot
		// strand events behind the wheel's current tick.
		k.now = deadline
		k.sched.syncNow(deadline)
	}
	return nil
}

// Stop halts Run after the currently executing process or event yields.
// It may only be called from kernel context (an event or a process).
func (k *Kernel) Stop() { k.stopped = true }

// LiveProcs returns the number of processes that have not finished.
func (k *Kernel) LiveProcs() int { return len(k.procs) }

func (k *Kernel) blockedNames() []string {
	names := make([]string, 0, len(k.procs))
	for p := range k.procs {
		names = append(names, p.name)
	}
	sort.Strings(names)
	return names
}

// ready marks p runnable. It must be called from kernel context.
func (k *Kernel) ready(p *Proc) {
	if p.state != stateParked {
		return
	}
	p.state = stateReady
	k.run.push(p)
}

// procRing is a growable FIFO ring buffer for the run queue. Unlike the
// former head-sliced []* queue, popped slots are nilled out immediately,
// so the backing array never pins finished processes.
type procRing struct {
	buf  []*Proc // len(buf) is always a power of two (or zero)
	head int
	len  int
}

func (r *procRing) push(p *Proc) {
	if r.len == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.len)&(len(r.buf)-1)] = p
	r.len++
}

func (r *procRing) pop() *Proc {
	p := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.len--
	return p
}

func (r *procRing) grow() {
	nbuf := make([]*Proc, max(2*len(r.buf), 8))
	for i := 0; i < r.len; i++ {
		nbuf[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf = nbuf
	r.head = 0
}

type event struct {
	when  time.Duration
	seq   uint64
	fn    func()
	gen   uint64 // bumped on recycle; stale Timers compare unequal
	index int    // position within the holding container, -1 when popped
	slot  int32  // wheel slot when where is locL0/locL1
	where int8   // which schedule container holds the event (loc*)
	k     *Kernel
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}
