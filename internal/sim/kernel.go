// Package sim provides a deterministic discrete-event simulation kernel
// with virtual time and cooperatively scheduled processes.
//
// The kernel is single-threaded in the scheduling sense: although each
// process runs on its own goroutine, exactly one process (or one event
// callback) executes at any instant, and control is handed back to the
// kernel whenever a process blocks. All state reachable from events and
// processes can therefore be mutated without locks, and a run is exactly
// reproducible from its seed.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"
)

// Kernel is a discrete-event scheduler with virtual time.
type Kernel struct {
	now     time.Duration
	seq     uint64
	events  eventHeap
	run     []*Proc
	procs   map[*Proc]struct{}
	yield   chan struct{}
	rng     *rand.Rand
	running bool
	stopped bool
	nprocs  int
}

// New returns a kernel whose random source is seeded with seed.
// The same seed always produces the same run.
func New(seed int64) *Kernel {
	return &Kernel{
		procs: make(map[*Proc]struct{}),
		yield: make(chan struct{}),
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// Now returns the current virtual time.
func (k *Kernel) Now() time.Duration { return k.now }

// Rand returns the kernel's deterministic random source.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// Timer is a cancellable scheduled callback.
type Timer struct {
	ev *event
}

// Stop cancels the timer. It is safe to call on an already-fired or
// already-stopped timer. It reports whether the call prevented the
// callback from running.
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil || t.ev.cancelled || t.ev.fired {
		return false
	}
	t.ev.cancelled = true
	return true
}

// Active reports whether the timer is still pending.
func (t *Timer) Active() bool {
	return t != nil && t.ev != nil && !t.ev.cancelled && !t.ev.fired
}

// After schedules fn to run at Now()+d in kernel context.
// A negative d is treated as zero.
func (k *Kernel) After(d time.Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	ev := &event{when: k.now + d, seq: k.seq, fn: fn}
	k.seq++
	heap.Push(&k.events, ev)
	return &Timer{ev: ev}
}

// Spawn creates a process named name running fn and marks it runnable.
// The process starts the next time the scheduler picks it.
func (k *Kernel) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{
		k:      k,
		name:   name,
		id:     k.nprocs,
		resume: make(chan struct{}),
		state:  stateReady,
	}
	k.nprocs++
	k.procs[p] = struct{}{}
	go func() {
		<-p.resume
		fn(p)
		p.state = stateDone
		delete(k.procs, p)
		k.yield <- struct{}{}
	}()
	k.run = append(k.run, p)
	return p
}

// DeadlockError is returned by Run when live processes remain but no
// process is runnable and no event is pending.
type DeadlockError struct {
	Time    time.Duration
	Blocked []string
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at %v: blocked processes: %s",
		e.Time, strings.Join(e.Blocked, ", "))
}

// Run executes events and processes until the simulation quiesces: no
// runnable process and no pending event. If live processes remain at
// quiescence it returns a *DeadlockError naming them.
func (k *Kernel) Run() error {
	if k.running {
		panic("sim: Run called re-entrantly")
	}
	k.running = true
	k.stopped = false
	defer func() { k.running = false }()
	for {
		for len(k.run) > 0 && !k.stopped {
			p := k.run[0]
			k.run = k.run[1:]
			p.state = stateRunning
			p.resume <- struct{}{}
			<-k.yield
		}
		if k.stopped {
			return nil
		}
		ev := k.nextEvent()
		if ev == nil {
			if len(k.procs) > 0 {
				return &DeadlockError{Time: k.now, Blocked: k.blockedNames()}
			}
			return nil
		}
		k.now = ev.when
		ev.fired = true
		ev.fn()
	}
}

// RunFor runs the simulation for d of virtual time (or until quiescence,
// whichever comes first). Unlike Run it does not treat blocked processes
// as a deadlock; it simply returns.
func (k *Kernel) RunFor(d time.Duration) error {
	deadline := k.now + d
	k.After(d, func() { k.stopped = true })
	err := k.Run()
	if err != nil {
		return err
	}
	if k.now < deadline {
		k.now = deadline
	}
	return nil
}

// Stop halts Run after the currently executing process or event yields.
// It may only be called from kernel context (an event or a process).
func (k *Kernel) Stop() { k.stopped = true }

// LiveProcs returns the number of processes that have not finished.
func (k *Kernel) LiveProcs() int { return len(k.procs) }

func (k *Kernel) nextEvent() *event {
	for k.events.Len() > 0 {
		ev := heap.Pop(&k.events).(*event)
		if ev.cancelled {
			continue
		}
		return ev
	}
	return nil
}

func (k *Kernel) blockedNames() []string {
	names := make([]string, 0, len(k.procs))
	for p := range k.procs {
		names = append(names, p.name)
	}
	sort.Strings(names)
	return names
}

// ready marks p runnable. It must be called from kernel context.
func (k *Kernel) ready(p *Proc) {
	if p.state != stateParked {
		return
	}
	p.state = stateReady
	k.run = append(k.run, p)
}

type event struct {
	when      time.Duration
	seq       uint64
	fn        func()
	cancelled bool
	fired     bool
	index     int
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
