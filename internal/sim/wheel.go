package sim

import (
	"container/heap"
	"time"
)

// The schedule is a two-level hashed timer wheel with a heap on either
// side of it. Near-future events — RTOs, delayed SACKs, link delivery,
// the bulk of a large run's schedule — bucket into fixed slots in O(1);
// only the handful of events sharing the current tick ever sit in an
// ordered heap. Far-future events (idle heartbeats, watchdog deadlines)
// park in an overflow heap until their epoch comes into view.
//
// Geometry: a tick is 2^tickShift ns ≈ 8.2 µs. Level 0 has one tick per
// slot and spans ~2.1 ms — RTT-scale work. Level 1 has 256 ticks per
// slot and spans ~537 ms — RTO/backoff-scale work. Everything beyond
// goes to the overflow heap.
//
// Virtual-time order is exactly the old single heap's (when, seq)
// order: ticks partition the time axis monotonically, the wheel always
// drains strictly tick by tick, and every event sharing the current
// tick is merged into the `ready` heap where the original comparator
// breaks ties. The golden trace hash pins this equivalence.
const (
	tickShift  = 13
	wheelBits  = 8
	wheelSlots = 1 << wheelBits
	wheelMask  = wheelSlots - 1
)

// Event locations, kept in event.where so Stop can unlink from the
// right container in O(1) (heaps track a position index; wheel slots
// swap-remove).
const (
	locNone int8 = iota
	locReady
	locL0
	locL1
	locFar
)

func tickOf(when time.Duration) int64 { return int64(when) >> tickShift }

type timerWheel struct {
	cur   int64 // current tick; no scheduled event has tick < cur... (see insert)
	ready eventHeap
	far   eventHeap
	l0    [wheelSlots][]*event
	l1    [wheelSlots][]*event
	n0    int
	n1    int
}

// init carves every slot's initial capacity out of one backing block
// (32 KiB per kernel), so the common case — a few events per slot —
// never allocates on insert; an overfull slot grows individually via
// append and keeps its larger capacity from then on.
func (w *timerWheel) init() {
	const slotCap = 8
	block := make([]*event, 2*wheelSlots*slotCap)
	for i := range w.l0 {
		w.l0[i] = block[:0:slotCap]
		block = block[slotCap:]
	}
	for i := range w.l1 {
		w.l1[i] = block[:0:slotCap]
		block = block[slotCap:]
	}
}

func (w *timerWheel) Len() int {
	return len(w.ready) + w.n0 + w.n1 + len(w.far)
}

// insert places ev by its tick relative to cur. Events at or before the
// current tick go straight to the ready heap (zero-delay After, and
// every event flushed out of the slot the wheel just reached); events
// within the level-0 epoch hash into a level-0 slot, within the level-1
// epoch into a level-1 slot, and anything farther into the overflow
// heap.
func (w *timerWheel) insert(ev *event) {
	tick := tickOf(ev.when)
	switch {
	case tick <= w.cur:
		ev.where = locReady
		heap.Push(&w.ready, ev)
	case tick>>wheelBits == w.cur>>wheelBits:
		s := tick & wheelMask
		ev.where = locL0
		ev.slot = int32(s)
		ev.index = len(w.l0[s])
		w.l0[s] = append(w.l0[s], ev)
		w.n0++
	case tick>>(2*wheelBits) == w.cur>>(2*wheelBits):
		s := (tick >> wheelBits) & wheelMask
		ev.where = locL1
		ev.slot = int32(s)
		ev.index = len(w.l1[s])
		w.l1[s] = append(w.l1[s], ev)
		w.n1++
	default:
		ev.where = locFar
		heap.Push(&w.far, ev)
	}
}

// pop removes and returns the globally next event in (when, seq) order,
// or nil when the schedule is empty. It advances cur as it goes: drain
// the current tick's ready heap; else scan level 0 forward to the next
// occupied slot and flush it into ready; else cascade the next occupied
// level-1 slot down (its events re-bucket into level 0 or ready); else
// promote the overflow heap's epoch into the wheel.
func (w *timerWheel) pop() *event {
	for {
		if len(w.ready) > 0 {
			ev := heap.Pop(&w.ready).(*event)
			ev.where = locNone
			return ev
		}
		if w.n0 > 0 {
			epoch := w.cur >> wheelBits
			found := false
			for t := w.cur + 1; t>>wheelBits == epoch; t++ {
				if s := t & wheelMask; len(w.l0[s]) > 0 {
					w.cur = t
					w.flushSlot(&w.l0[s], &w.n0)
					found = true
					break
				}
			}
			if !found {
				panic("sim: timer wheel level-0 occupancy out of epoch")
			}
			continue
		}
		if w.n1 > 0 {
			epoch := w.cur >> (2 * wheelBits)
			found := false
			for t1 := w.cur>>wheelBits + 1; t1>>wheelBits == epoch; t1++ {
				if s := t1 & wheelMask; len(w.l1[s]) > 0 {
					// Land at the slot's first tick; the flushed events
					// re-bucket into level 0 (or ready, for the slot
					// boundary itself) and the level-0 scan finds the
					// earliest.
					w.cur = t1 << wheelBits
					w.flushSlot(&w.l1[s], &w.n1)
					found = true
					break
				}
			}
			if !found {
				panic("sim: timer wheel level-1 occupancy out of epoch")
			}
			continue
		}
		if len(w.far) > 0 {
			minTick := tickOf(w.far[0].when)
			epoch := minTick >> (2 * wheelBits)
			w.cur = minTick
			for len(w.far) > 0 && tickOf(w.far[0].when)>>(2*wheelBits) == epoch {
				ev := heap.Pop(&w.far).(*event)
				w.insert(ev)
			}
			continue
		}
		return nil
	}
}

// flushSlot empties one wheel slot, re-inserting every event relative
// to the freshly advanced cur. Slot slices keep their capacity, so the
// steady state recycles the same backing arrays. Re-insertion never
// targets the slot being flushed (insert routes tick <= cur to ready
// and a level-1 flush only targets level 0), so iterating the old
// contents while the slot refills is alias-free.
func (w *timerWheel) flushSlot(slot *[]*event, n *int) {
	evs := *slot
	*slot = evs[:0]
	*n -= len(evs)
	for i, ev := range evs {
		evs[i] = nil
		w.insert(ev)
	}
}

// remove unlinks a stopped timer's event from whichever container holds
// it. Wheel slots are unordered, so removal is a swap with the last
// element; heaps use container/heap.Remove via the tracked index.
func (w *timerWheel) remove(ev *event) {
	switch ev.where {
	case locReady:
		heap.Remove(&w.ready, ev.index)
	case locFar:
		heap.Remove(&w.far, ev.index)
	case locL0:
		removeSlot(&w.l0[ev.slot], ev)
		w.n0--
	case locL1:
		removeSlot(&w.l1[ev.slot], ev)
		w.n1--
	}
	ev.where = locNone
}

func removeSlot(slot *[]*event, ev *event) {
	s := *slot
	last := len(s) - 1
	if ev.index != last {
		moved := s[last]
		s[ev.index] = moved
		moved.index = ev.index
	}
	s[last] = nil
	*slot = s[:last]
}

// syncNow aligns cur with a virtual-time jump taken outside pop (the
// RunFor quiescence fast-forward). Only ever called with an empty
// schedule, so no event can be stranded behind the new cur.
func (w *timerWheel) syncNow(now time.Duration) {
	if t := tickOf(now); t > w.cur {
		w.cur = t
	}
}
