package core

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/mpi"
	"repro/internal/netsim"
)

// hostileLink is a WAN from hell: loss, duplication and jitter-driven
// reordering all at once.
func hostileLink() *netsim.LinkParams {
	lp := netsim.DefaultLinkParams()
	lp.LossRate = 0.02
	lp.DupRate = 0.02
	lp.Jitter = 300 * time.Microsecond
	return &lp
}

// TestHostileNetworkIntegrity: both transports must deliver intact,
// correctly matched MPI traffic through loss + duplication + reordering
// (Dummynet can inject all three; the protocols' sequence machinery
// must absorb them).
func TestHostileNetworkIntegrity(t *testing.T) {
	for _, tr := range []Transport{TCP, SCTP} {
		tr := tr
		t.Run(tr.String(), func(t *testing.T) {
			_, err := Run(Options{Procs: 4, Transport: tr, Seed: 17, Link: hostileLink()},
				func(pr *mpi.Process, comm *mpi.Comm) error {
					me := comm.Rank()
					n := comm.Size()
					// Every pair exchanges checksummable payloads on
					// several tags.
					for round := 0; round < 3; round++ {
						for peer := 0; peer < n; peer++ {
							if peer == me {
								continue
							}
							out := make([]byte, 20<<10)
							for i := range out {
								out[i] = byte(i*me + round + peer)
							}
							in := make([]byte, 20<<10)
							if _, err := comm.SendRecv(peer, round, out, peer, round, in); err != nil {
								return err
							}
							for i := range in {
								if in[i] != byte(i*peer+round+me) {
									return fmt.Errorf("round %d peer %d corrupt at %d", round, peer, i)
								}
							}
						}
					}
					return comm.Barrier()
				})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestHostileCollectives: the full collective suite through the same
// hostile network.
func TestHostileCollectives(t *testing.T) {
	_, err := Run(Options{Procs: 8, Transport: SCTP, Seed: 18, Link: hostileLink()},
		func(pr *mpi.Process, comm *mpi.Comm) error {
			me := comm.Rank()
			n := comm.Size()
			v := mpi.F64Bytes([]float64{float64(me + 1)})
			if err := comm.Allreduce(v, mpi.OpSumF64); err != nil {
				return err
			}
			if got := mpi.BytesF64(v)[0]; got != float64(n*(n+1)/2) {
				return fmt.Errorf("allreduce = %v", got)
			}
			data := make([]byte, 10<<10)
			if me == 3 {
				for i := range data {
					data[i] = byte(i)
				}
			}
			if err := comm.Bcast(3, data); err != nil {
				return err
			}
			for i := range data {
				if data[i] != byte(i) {
					return fmt.Errorf("bcast corrupt at %d", i)
				}
			}
			return comm.Barrier()
		})
	if err != nil {
		t.Fatal(err)
	}
}

// TestDuplicationOnlyDoesNotConfuse: pure duplication (no loss) must be
// absorbed silently by both transports' sequence logic.
func TestDuplicationOnlyDoesNotConfuse(t *testing.T) {
	lp := netsim.DefaultLinkParams()
	lp.DupRate = 0.2
	for _, tr := range []Transport{TCP, SCTP} {
		rep, err := Run(Options{Procs: 2, Transport: tr, Seed: 19, Link: &lp},
			func(pr *mpi.Process, comm *mpi.Comm) error {
				if comm.Rank() == 0 {
					return comm.Send(1, 0, make([]byte, 100<<10))
				}
				buf := make([]byte, 100<<10)
				st, err := comm.Recv(0, 0, buf)
				if err != nil {
					return err
				}
				if st.Count != 100<<10 {
					return fmt.Errorf("count %d", st.Count)
				}
				return nil
			})
		if err != nil {
			t.Fatalf("%v: %v", tr, err)
		}
		if rep.NetStats.PacketsDuped == 0 {
			t.Fatalf("%v: duplication never triggered", tr)
		}
	}
}
