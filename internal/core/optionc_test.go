package core

import (
	"fmt"
	"testing"

	"repro/internal/mpi"
)

// TestLongMessageRaceScenario reproduces the paper's Figure 6 situation:
// two processes simultaneously exchange long messages on the same
// stream (same tag), so each side's rendezvous ACK for the inbound
// message competes with its own outbound body on that stream. Option B
// serializes them; Option C interleaves the ACK. Both must deliver the
// bodies intact.
func TestLongMessageRaceScenario(t *testing.T) {
	const n = 300 << 10
	for _, optC := range []bool{false, true} {
		optC := optC
		name := "OptionB"
		if optC {
			name = "OptionC"
		}
		t.Run(name, func(t *testing.T) {
			_, err := Run(Options{Procs: 2, Transport: SCTP, Seed: 6, SCTPOptionC: optC},
				func(pr *mpi.Process, comm *mpi.Comm) error {
					other := 1 - comm.Rank()
					out := make([]byte, n)
					for i := range out {
						out[i] = byte(i + comm.Rank())
					}
					in := make([]byte, n)
					sreq, err := comm.Isend(other, 0, out) // same tag both ways
					if err != nil {
						return err
					}
					rreq, err := comm.Irecv(other, 0, in)
					if err != nil {
						return err
					}
					if err := comm.WaitAll(sreq, rreq); err != nil {
						return err
					}
					for i := range in {
						if in[i] != byte(i+other) {
							return fmt.Errorf("corrupt byte %d", i)
						}
					}
					return nil
				})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestOptionCInterleavesControl checks that Option C actually exercises
// its control fast path and that Option B actually queues.
func TestOptionCInterleavesControl(t *testing.T) {
	counters := func(optC bool) (ctrl, queued int64) {
		rep, err := Run(Options{Procs: 2, Transport: SCTP, Seed: 6, SCTPOptionC: optC},
			func(pr *mpi.Process, comm *mpi.Comm) error {
				other := 1 - comm.Rank()
				// Several crossing long transfers on one tag keep the
				// stream busy while ACKs need to flow.
				for i := 0; i < 4; i++ {
					out := make([]byte, 200<<10)
					in := make([]byte, 200<<10)
					sreq, err := comm.Isend(other, 0, out)
					if err != nil {
						return err
					}
					rreq, err := comm.Irecv(other, 0, in)
					if err != nil {
						return err
					}
					if err := comm.WaitAll(sreq, rreq); err != nil {
						return err
					}
				}
				return nil
			})
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range rep.RPIStats {
			ctrl += c["optionc_ctrl"]
			queued += c["optionb_queued"]
		}
		return
	}
	ctrlC, _ := counters(true)
	if ctrlC == 0 {
		t.Error("Option C never used its control fast path")
	}
	ctrlB, _ := counters(false)
	if ctrlB != 0 {
		t.Errorf("Option B run used the Option C path %d times", ctrlB)
	}
}

// TestOptionCFasterAckTurnaround: with crossing long messages under
// loss-free conditions, Option C should never be slower than Option B
// (ACKs do not wait behind bodies).
func TestOptionCFasterAckTurnaround(t *testing.T) {
	elapsed := func(optC bool) float64 {
		rep, err := Run(Options{Procs: 2, Transport: SCTP, Seed: 6, SCTPOptionC: optC},
			func(pr *mpi.Process, comm *mpi.Comm) error {
				other := 1 - comm.Rank()
				for i := 0; i < 6; i++ {
					out := make([]byte, 200<<10)
					in := make([]byte, 200<<10)
					sreq, _ := comm.Isend(other, 0, out)
					rreq, _ := comm.Irecv(other, 0, in)
					if err := comm.WaitAll(sreq, rreq); err != nil {
						return err
					}
				}
				return nil
			})
		if err != nil {
			t.Fatal(err)
		}
		return rep.Elapsed.Seconds()
	}
	b := elapsed(false)
	c := elapsed(true)
	if c > b*1.05 {
		t.Errorf("Option C (%.6fs) noticeably slower than Option B (%.6fs)", c, b)
	}
}
