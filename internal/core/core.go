// Package core is the public facade of the reproduction: it builds the
// simulated cluster (the paper's eight FreeBSD nodes behind a gigabit
// switch with Dummynet loss), attaches the chosen transport and RPI
// module to every node, and runs an MPI program function on each rank.
//
// Minimal use:
//
//	report, err := core.Run(core.Options{Procs: 8, Transport: core.SCTP},
//	    func(pr *mpi.Process, comm *mpi.Comm) error {
//	        if comm.Rank() == 0 { return comm.Send(1, 0, []byte("hi")) }
//	        ...
//	    })
package core

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/mpi"
	"repro/internal/mpi/rmcast"
	"repro/internal/mpi/rpi"
	"repro/internal/mpi/sctp1to1rpi"
	"repro/internal/mpi/sctprpi"
	"repro/internal/mpi/tcprpi"
	"repro/internal/netsim"
	"repro/internal/netsim/topo"
	"repro/internal/sctp"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/transport"
)

// Transport selects the RPI module under test.
type Transport int

// Transports.
const (
	TCP              Transport = iota // LAM-TCP analogue
	SCTP                              // the paper's multistream SCTP module
	SCTPSingleStream                  // SCTP reduced to one stream (Figure 12 ablation)
	SCTPOneToOne                      // one-to-one socket style: one association per peer (§2.1 ablation)
)

func (t Transport) String() string {
	switch t {
	case TCP:
		return "LAM_TCP"
	case SCTP:
		return "LAM_SCTP"
	case SCTPSingleStream:
		return "LAM_SCTP_1stream"
	case SCTPOneToOne:
		return "LAM_SCTP_1to1"
	}
	return "?"
}

// transportNames maps the command-line names to transports; the RPI
// registry below maps each transport to its module builder.
var transportNames = map[string]Transport{
	"tcp":      TCP,
	"sctp":     SCTP,
	"sctp1":    SCTPSingleStream,
	"sctp1to1": SCTPOneToOne,
}

// ParseTransport resolves a command-line transport name.
func ParseTransport(name string) (Transport, error) {
	if t, ok := transportNames[name]; ok {
		return t, nil
	}
	return 0, fmt.Errorf("core: unknown transport %q (have %v)", name, TransportNames())
}

// TransportNames returns the selectable transport names, sorted.
func TransportNames() []string {
	names := make([]string, 0, len(transportNames))
	for n := range transportNames {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// PaperBufSize is the socket buffer size used in all the paper's
// experiments (220 KiB for both transports).
const PaperBufSize = 220 << 10

// Options configures a run.
type Options struct {
	Procs     int       // world size (default 8, the paper's cluster)
	Transport Transport // which RPI to use
	Seed      int64     // simulation seed (default 1)

	LossRate float64            // Dummynet-style Bernoulli loss on every link
	Link     *netsim.LinkParams // link-parameter override (default: 1 Gb/s LAN)

	// Topo, when non-nil, replaces the full-mesh testbed with a
	// generated multi-hop topology (fat-tree or leaf-spine) sized to
	// Procs: packets traverse switch ports with per-hop serialization
	// and queueing, so N-to-1 incast contention is expressible. Mutually
	// exclusive with IfacesPerNode > 1 (no multihoming on fabrics). A
	// Link override styles both host and fabric ports unless the config
	// sets them explicitly.
	Topo *topo.Config

	BufSize    int // socket snd/rcv buffer (default 220 KiB, the paper's setting)
	EagerLimit int // short/long threshold (default 64 KiB)
	Streams    int // SCTP stream pool (default 10)

	// IfacesPerNode > 1 gives every node one interface per subnet, the
	// paper's three-NIC multihomed setup. Heartbeats are enabled only
	// when multihomed.
	IfacesPerNode int

	// Cost overrides the transport-specific CPU cost model; nil uses
	// the calibrated defaults (see DefaultTCPCost / DefaultSCTPCost).
	Cost *rpi.CostModel

	// NoCost disables CPU cost modeling entirely (pure protocol
	// dynamics; useful in unit tests).
	NoCost bool

	SCTPChecksum bool // verify CRC32c on receive (the paper turned it off)

	// CMT enables SCTP Concurrent Multipath Transfer (requires
	// IfacesPerNode ≥ 2): new data stripes across all active paths,
	// the University of Delaware extension the paper's §5 describes as
	// the future replacement for TEG-style middleware striping.
	CMT bool

	// SCTPIData enables RFC 8260 message interleaving on the SCTP
	// transports: user messages travel as I-DATA chunks with per-stream
	// message IDs, so a sender-side stream scheduler can preempt a bulk
	// fragment train at chunk granularity. Negotiated at handshake; a
	// peer without it falls back to legacy DATA.
	SCTPIData bool

	// SCTPSched selects the sender-side stream scheduler used when
	// SCTPIData is on (default sctp.SchedFIFO, which preserves legacy
	// wire order). With SchedPriority or SchedWeightedFair, the SCTP
	// RPI stamps stream classes from message kinds (control < eager <
	// bulk), the chunk-granular remedy for the paper's head-of-line
	// observation.
	SCTPSched sctp.SchedPolicy

	// SCTPOptionC enables the paper's §3.4.3 Option C in the SCTP RPI:
	// control envelopes interleave with long-message bodies instead of
	// queueing behind them (Option B, the default and what the paper
	// shipped).
	SCTPOptionC bool

	// TCPConfig / SCTPConfig, when non-nil, replace the default stack
	// configuration entirely (buffer sizes are still filled from
	// BufSize when left zero). Used by the ablation benchmarks to turn
	// individual protocol mechanisms on and off.
	TCPConfig  *tcp.Config
	SCTPConfig *sctp.Config

	// TCPProbe / SCTPProbe install protocol-event callbacks on every
	// stack built for this run (invariant-oracle hook points; see
	// tcp.Probe and sctp.Probe). Applied on top of any TCPConfig /
	// SCTPConfig override.
	TCPProbe  *tcp.Probe
	SCTPProbe *sctp.Probe

	// WrapRPI, when non-nil, wraps each rank's RPI module after it is
	// built — the hook the chaos harness uses to interpose its MPI-level
	// delivery oracle (see rpi.Observe).
	WrapRPI func(rank int, m rpi.RPI) rpi.RPI

	// RedialBudget bounds session-recovery redial attempts per loss
	// episode: 0 means the default (8), negative disables recovery (the
	// first session loss is terminal). See rpi.SessionConfig.
	RedialBudget int

	// DropReplayEvery, when N > 0, silently drops the Nth replayed
	// message across the whole job — a mutation knob that must trip the
	// chaos harness's exactly-once oracle. See rpi.SessionConfig.
	DropReplayEvery int

	// RMCProbe installs protocol-event callbacks on every rank's
	// reliable-multicast endpoint (the chaos harness's multicast
	// oracle hook; see rmcast.Probe).
	RMCProbe *rmcast.Probe

	// MCRepairBudget caps multicast repairs per broadcast operation
	// before the root aborts to the tree (0 = rmcast default).
	MCRepairBudget int

	// MCDupEvery / MCDropEvery seed the rmcast mutation knobs (double-
	// accounted and never-copied chunks) that the chaos multicast
	// oracles must flag. Test-only; see rmcast.Options.
	MCDupEvery  int
	MCDropEvery int

	// Deadline aborts the simulation after this much virtual time
	// (0 = none). Used defensively by long benchmark sweeps.
	Deadline time.Duration
}

func (o Options) withDefaults() Options {
	if o.Procs == 0 {
		o.Procs = 8
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.BufSize == 0 {
		o.BufSize = PaperBufSize
	}
	if o.EagerLimit == 0 {
		o.EagerLimit = mpi.DefaultEagerLimit
	}
	if o.Streams == 0 {
		o.Streams = 10
	}
	if o.IfacesPerNode == 0 {
		o.IfacesPerNode = 1
	}
	return o
}

// DefaultTCPCost is the calibrated CPU cost model for the TCP module:
// a mature kernel path with NIC checksum offload (low per-message
// cost), but byte-stream framing and extra copies in the middleware
// (higher per-byte cost) plus a select() whose cost grows with the
// descriptor count (paper §3.3).
func DefaultTCPCost() rpi.CostModel {
	return rpi.CostModel{
		SendPerMsg: 1 * time.Microsecond,
		RecvPerMsg: 1 * time.Microsecond,
		SendPerKB:  520 * time.Nanosecond,
		RecvPerKB:  520 * time.Nanosecond,
		PollBase:   1 * time.Microsecond,
		PollPerFD:  200 * time.Nanosecond,
	}
}

// DefaultSCTPCost is the calibrated model for the 2005-era SCTP stack:
// higher per-message processing (immature stack, chunk bookkeeping —
// the reason TCP wins the no-loss ping-pong below ~22 KiB in Figure 8)
// but cheaper per byte (message framing avoids the middleware scan and
// a copy) and a single descriptor to poll.
func DefaultSCTPCost() rpi.CostModel {
	return rpi.CostModel{
		SendPerMsg: 8500 * time.Nanosecond,
		RecvPerMsg: 8500 * time.Nanosecond,
		SendPerKB:  180 * time.Nanosecond,
		RecvPerKB:  180 * time.Nanosecond,
		PollBase:   1 * time.Microsecond,
		PollPerFD:  0,
	}
}

// DefaultSCTP1to1Cost is the model for the one-to-one socket style:
// the same 2005-era SCTP stack costs as DefaultSCTPCost, but with the
// TCP module's select() descriptor scan back, because each peer owns a
// descriptor again (paper §2.1 / §3.3).
func DefaultSCTP1to1Cost() rpi.CostModel {
	return rpi.CostModel{
		SendPerMsg: 8500 * time.Nanosecond,
		RecvPerMsg: 8500 * time.Nanosecond,
		SendPerKB:  180 * time.Nanosecond,
		RecvPerKB:  180 * time.Nanosecond,
		PollBase:   1 * time.Microsecond,
		PollPerFD:  200 * time.Nanosecond,
	}
}

// meshEnv bundles the per-cluster context every module builder needs.
type meshEnv struct {
	addrs     []netsim.Addr
	addrLists [][]netsim.Addr
	barrier   *rpi.Barrier
}

// moduleBuilder constructs one rank's RPI module on its node.
type moduleBuilder func(opts Options, nd *netsim.Node, rank int, env *meshEnv) rpi.RPI

// builders is the RPI registry: adding a transport means adding a name
// in transportNames and a builder here.
var builders = map[Transport]moduleBuilder{
	TCP:              buildTCP,
	SCTP:             buildSCTP,
	SCTPSingleStream: buildSCTP,
	SCTPOneToOne:     buildSCTP1to1,
}

// cost resolves the effective cost model given the transport default.
func (o Options) cost(def rpi.CostModel) rpi.CostModel {
	if o.NoCost {
		return rpi.CostModel{}
	}
	if o.Cost != nil {
		return *o.Cost
	}
	return def
}

// tcpConfig resolves the effective TCP stack configuration.
func (o Options) tcpConfig() tcp.Config {
	cfg := tcp.Config{SndBuf: o.BufSize, RcvBuf: o.BufSize, NoDelay: true}
	if o.TCPConfig != nil {
		cfg = *o.TCPConfig
		if cfg.SndBuf == 0 {
			cfg.SndBuf = o.BufSize
		}
		if cfg.RcvBuf == 0 {
			cfg.RcvBuf = o.BufSize
		}
	}
	if o.TCPProbe != nil {
		cfg.Probe = o.TCPProbe
	}
	return cfg
}

// sctpConfig resolves the effective SCTP stack configuration.
func (o Options) sctpConfig() sctp.Config {
	cfg := sctp.Config{
		SndBuf:         o.BufSize,
		RcvBuf:         o.BufSize,
		Streams:        o.Streams,
		HBDisable:      o.IfacesPerNode < 2,
		ChecksumVerify: o.SCTPChecksum,
		CMT:            o.CMT && o.IfacesPerNode >= 2,
	}
	if o.SCTPConfig != nil {
		cfg = *o.SCTPConfig
		if cfg.SndBuf == 0 {
			cfg.SndBuf = o.BufSize
		}
		if cfg.RcvBuf == 0 {
			cfg.RcvBuf = o.BufSize
		}
		if cfg.Streams == 0 {
			cfg.Streams = o.Streams
		}
	}
	if o.SCTPIData {
		cfg.IData = true
		if cfg.Scheduler == sctp.SchedFIFO {
			cfg.Scheduler = o.SCTPSched
		}
	}
	if o.SCTPProbe != nil {
		cfg.Probe = o.SCTPProbe
	}
	return cfg
}

func buildTCP(opts Options, nd *netsim.Node, rank int, env *meshEnv) rpi.RPI {
	cfg := opts.tcpConfig()
	st := tcp.NewStack(nd, cfg)
	return tcprpi.New(st, rank, env.addrs, env.barrier, tcprpi.Options{
		Cost:            opts.cost(DefaultTCPCost()),
		TCP:             cfg,
		RedialBudget:    opts.RedialBudget,
		DropReplayEvery: opts.DropReplayEvery,
	})
}

func buildSCTP(opts Options, nd *netsim.Node, rank int, env *meshEnv) rpi.RPI {
	cfg := opts.sctpConfig()
	st := sctp.NewStack(nd, cfg)
	return sctprpi.New(st, rank, env.addrLists, env.barrier, sctprpi.Options{
		Cost:            opts.cost(DefaultSCTPCost()),
		SCTP:            cfg,
		SingleStream:    opts.Transport == SCTPSingleStream,
		OptionC:         opts.SCTPOptionC,
		RedialBudget:    opts.RedialBudget,
		DropReplayEvery: opts.DropReplayEvery,
	})
}

func buildSCTP1to1(opts Options, nd *netsim.Node, rank int, env *meshEnv) rpi.RPI {
	cfg := opts.sctpConfig()
	st := sctp.NewStack(nd, cfg)
	return sctp1to1rpi.New(st, rank, env.addrLists, env.barrier, sctp1to1rpi.Options{
		Cost:            opts.cost(DefaultSCTP1to1Cost()),
		SCTP:            cfg,
		OptionC:         opts.SCTPOptionC,
		RedialBudget:    opts.RedialBudget,
		DropReplayEvery: opts.DropReplayEvery,
	})
}

// Report summarizes a completed run.
type Report struct {
	Elapsed   time.Duration // total virtual time, including setup/teardown
	NetStats  netsim.Stats
	RPIStats  []rpi.Counters // per rank; deterministic iteration via Keys()
	RankErrs  []error
	SimErr    error // deadlock or run error
	Transport Transport
}

// FirstError returns the first per-rank or simulation error.
func (r *Report) FirstError() error {
	if r.SimErr != nil {
		return r.SimErr
	}
	for _, e := range r.RankErrs {
		if e != nil {
			return e
		}
	}
	return nil
}

// Program is the per-rank MPI program body.
type Program func(pr *mpi.Process, comm *mpi.Comm) error

// Cluster is a built simulated testbed with transports attached but no
// program started yet. It exposes the kernel and network so callers can
// inject faults (loss changes, interface failures) while a program
// runs — the knobs the paper turns with Dummynet and pulled cables.
type Cluster struct {
	Opts    Options
	Kernel  *sim.Kernel
	Net     *netsim.Network
	Nodes   []*netsim.Node
	Mcast   []*rmcast.Endpoint // per-rank reliable-multicast endpoints
	modules []rpi.RPI
	report  *Report
	started bool
}

// NewCluster builds the testbed for opts.
func NewCluster(opts Options) (*Cluster, error) {
	opts = opts.withDefaults()
	k := sim.New(opts.Seed)
	lp := netsim.DefaultLinkParams()
	if opts.Link != nil {
		lp = *opts.Link
	}
	lp.LossRate = opts.LossRate
	var net *netsim.Network
	var nodes []*netsim.Node
	if opts.Topo != nil {
		if opts.IfacesPerNode > 1 {
			return nil, fmt.Errorf("core: Topo is mutually exclusive with IfacesPerNode > 1")
		}
		cfg := *opts.Topo
		if opts.Link != nil && cfg.HostLink == nil {
			cfg.HostLink = &lp
		}
		if opts.Link != nil && cfg.FabricLink == nil {
			cfg.FabricLink = &lp
		}
		tn, err := topo.Build(k, opts.Procs, cfg)
		if err != nil {
			return nil, err
		}
		net, nodes = tn.Network, tn.Hosts
		if opts.LossRate > 0 {
			net.SetLoss(opts.LossRate)
		}
	} else {
		net, nodes = netsim.Cluster(k, opts.Procs, opts.IfacesPerNode, lp)
	}

	barrier := rpi.NewBarrier(k, opts.Procs)
	report := &Report{
		RPIStats:  make([]rpi.Counters, opts.Procs),
		RankErrs:  make([]error, opts.Procs),
		Transport: opts.Transport,
	}

	addrs := make([]netsim.Addr, opts.Procs)
	addrLists := make([][]netsim.Addr, opts.Procs)
	for i, nd := range nodes {
		addrs[i] = nd.Addr()
		addrLists[i] = nd.Addrs()
	}

	build, ok := builders[opts.Transport]
	if !ok {
		return nil, fmt.Errorf("core: unknown transport %d", opts.Transport)
	}
	modules := make([]rpi.RPI, opts.Procs)
	for i, nd := range nodes {
		modules[i] = build(opts, nd, i, &meshEnv{addrs: addrs, addrLists: addrLists, barrier: barrier})
		if opts.WrapRPI != nil {
			modules[i] = opts.WrapRPI(i, modules[i])
		}
	}

	// Every rank joins one world-spanning multicast group and gets a
	// reliable-multicast endpoint; communicators opt in per run with
	// SetAlg(AlgMulticast), so building the endpoints unconditionally
	// costs nothing on tree/naive runs.
	group := netsim.MakeGroupAddr(1)
	mcast := make([]*rmcast.Endpoint, opts.Procs)
	for _, nd := range nodes {
		net.JoinGroup(group, nd.Addr())
	}
	for i, nd := range nodes {
		mcast[i] = rmcast.New(nd, group, i, addrs, rmcast.Options{
			Probe:          opts.RMCProbe,
			RepairBudget:   opts.MCRepairBudget,
			DupAcceptEvery: opts.MCDupEvery,
			DropChunkEvery: opts.MCDropEvery,
		})
	}

	return &Cluster{
		Opts:    opts,
		Kernel:  k,
		Net:     net,
		Nodes:   nodes,
		Mcast:   mcast,
		modules: modules,
		report:  report,
	}, nil
}

// Start spawns fn on every rank. It may be called once.
func (c *Cluster) Start(fn Program) {
	if c.started {
		panic("core: Cluster.Start called twice")
	}
	c.started = true
	for i := 0; i < c.Opts.Procs; i++ {
		rank := i
		c.Kernel.Spawn(fmt.Sprintf("rank%d", rank), func(p *sim.Proc) {
			pr := mpi.NewProcess(p, rank, c.Opts.Procs, c.modules[rank], c.Opts.EagerLimit)
			pr.SetMulticast(c.Mcast[rank])
			comm, err := pr.Init()
			if err != nil {
				c.report.RankErrs[rank] = err
				c.modules[rank].Abort(p)
				c.report.RPIStats[rank] = c.modules[rank].Counters()
				return
			}
			err = fn(pr, comm)
			if err != nil {
				c.report.RankErrs[rank] = err
			}
			if errors.Is(err, transport.ErrSessionLost) {
				// Terminal transport failure: an orderly Finalize is
				// impossible (its barrier would hang on the dead peer).
				// Abort releases every socket, so peers talking to this
				// rank fail fast, exhaust their own redial budgets, and
				// cascade to a clean job-wide shutdown instead of a
				// simulation deadlock.
				c.modules[rank].Abort(p)
			} else if ferr := pr.Finalize(); ferr != nil {
				if c.report.RankErrs[rank] == nil {
					c.report.RankErrs[rank] = ferr
				}
				if errors.Is(ferr, transport.ErrSessionLost) {
					c.modules[rank].Abort(p)
				}
			}
			c.report.RPIStats[rank] = c.modules[rank].Counters()
		})
	}
}

// KillSession destroys rank's transport session to peer from kernel
// context, as if the connection or association died on the wire — the
// chaos harness's AssocKill fault. It walks WrapRPI wrappers via
// Unwrap and reports whether the module supports session kills.
func (c *Cluster) KillSession(rank, peer int) bool {
	m := c.modules[rank]
	for {
		if k, ok := m.(interface{ KillSession(peer int) }); ok {
			k.KillSession(peer)
			return true
		}
		u, ok := m.(interface{ Unwrap() rpi.RPI })
		if !ok {
			return false
		}
		m = u.Unwrap()
	}
}

// Wait runs the simulation to quiescence and returns the report.
func (c *Cluster) Wait() (*Report, error) {
	if c.Opts.Deadline > 0 {
		c.report.SimErr = c.Kernel.RunFor(c.Opts.Deadline)
	} else {
		c.report.SimErr = c.Kernel.Run()
	}
	c.report.Elapsed = c.Kernel.Now()
	c.report.NetStats = c.Net.Stats
	return c.report, c.report.FirstError()
}

// Run executes fn on every rank of a freshly built cluster and returns
// the report. The error return is the first failure (if any).
func Run(opts Options, fn Program) (*Report, error) {
	c, err := NewCluster(opts)
	if err != nil {
		return nil, err
	}
	c.Start(fn)
	return c.Wait()
}
