// Package core is the public facade of the reproduction: it builds the
// simulated cluster (the paper's eight FreeBSD nodes behind a gigabit
// switch with Dummynet loss), attaches the chosen transport and RPI
// module to every node, and runs an MPI program function on each rank.
//
// Minimal use:
//
//	report, err := core.Run(core.Options{Procs: 8, Transport: core.SCTP},
//	    func(pr *mpi.Process, comm *mpi.Comm) error {
//	        if comm.Rank() == 0 { return comm.Send(1, 0, []byte("hi")) }
//	        ...
//	    })
package core

import (
	"fmt"
	"time"

	"repro/internal/mpi"
	"repro/internal/mpi/rpi"
	"repro/internal/mpi/sctprpi"
	"repro/internal/mpi/tcprpi"
	"repro/internal/netsim"
	"repro/internal/sctp"
	"repro/internal/sim"
	"repro/internal/tcp"
)

// Transport selects the RPI module under test.
type Transport int

// Transports.
const (
	TCP              Transport = iota // LAM-TCP analogue
	SCTP                              // the paper's multistream SCTP module
	SCTPSingleStream                  // SCTP reduced to one stream (Figure 12 ablation)
)

func (t Transport) String() string {
	switch t {
	case TCP:
		return "LAM_TCP"
	case SCTP:
		return "LAM_SCTP"
	case SCTPSingleStream:
		return "LAM_SCTP_1stream"
	}
	return "?"
}

// PaperBufSize is the socket buffer size used in all the paper's
// experiments (220 KiB for both transports).
const PaperBufSize = 220 << 10

// Options configures a run.
type Options struct {
	Procs     int       // world size (default 8, the paper's cluster)
	Transport Transport // which RPI to use
	Seed      int64     // simulation seed (default 1)

	LossRate float64            // Dummynet-style Bernoulli loss on every link
	Link     *netsim.LinkParams // topology override (default: 1 Gb/s LAN)

	BufSize    int // socket snd/rcv buffer (default 220 KiB, the paper's setting)
	EagerLimit int // short/long threshold (default 64 KiB)
	Streams    int // SCTP stream pool (default 10)

	// IfacesPerNode > 1 gives every node one interface per subnet, the
	// paper's three-NIC multihomed setup. Heartbeats are enabled only
	// when multihomed.
	IfacesPerNode int

	// Cost overrides the transport-specific CPU cost model; nil uses
	// the calibrated defaults (see DefaultTCPCost / DefaultSCTPCost).
	Cost *rpi.CostModel

	// NoCost disables CPU cost modeling entirely (pure protocol
	// dynamics; useful in unit tests).
	NoCost bool

	SCTPChecksum bool // verify CRC32c on receive (the paper turned it off)

	// CMT enables SCTP Concurrent Multipath Transfer (requires
	// IfacesPerNode ≥ 2): new data stripes across all active paths,
	// the University of Delaware extension the paper's §5 describes as
	// the future replacement for TEG-style middleware striping.
	CMT bool

	// SCTPOptionC enables the paper's §3.4.3 Option C in the SCTP RPI:
	// control envelopes interleave with long-message bodies instead of
	// queueing behind them (Option B, the default and what the paper
	// shipped).
	SCTPOptionC bool

	// TCPConfig / SCTPConfig, when non-nil, replace the default stack
	// configuration entirely (buffer sizes are still filled from
	// BufSize when left zero). Used by the ablation benchmarks to turn
	// individual protocol mechanisms on and off.
	TCPConfig  *tcp.Config
	SCTPConfig *sctp.Config

	// Deadline aborts the simulation after this much virtual time
	// (0 = none). Used defensively by long benchmark sweeps.
	Deadline time.Duration
}

func (o Options) withDefaults() Options {
	if o.Procs == 0 {
		o.Procs = 8
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.BufSize == 0 {
		o.BufSize = PaperBufSize
	}
	if o.EagerLimit == 0 {
		o.EagerLimit = mpi.DefaultEagerLimit
	}
	if o.Streams == 0 {
		o.Streams = 10
	}
	if o.IfacesPerNode == 0 {
		o.IfacesPerNode = 1
	}
	return o
}

// DefaultTCPCost is the calibrated CPU cost model for the TCP module:
// a mature kernel path with NIC checksum offload (low per-message
// cost), but byte-stream framing and extra copies in the middleware
// (higher per-byte cost) plus a select() whose cost grows with the
// descriptor count (paper §3.3).
func DefaultTCPCost() rpi.CostModel {
	return rpi.CostModel{
		SendPerMsg: 1 * time.Microsecond,
		RecvPerMsg: 1 * time.Microsecond,
		SendPerKB:  520 * time.Nanosecond,
		RecvPerKB:  520 * time.Nanosecond,
		PollBase:   1 * time.Microsecond,
		PollPerFD:  200 * time.Nanosecond,
	}
}

// DefaultSCTPCost is the calibrated model for the 2005-era SCTP stack:
// higher per-message processing (immature stack, chunk bookkeeping —
// the reason TCP wins the no-loss ping-pong below ~22 KiB in Figure 8)
// but cheaper per byte (message framing avoids the middleware scan and
// a copy) and a single descriptor to poll.
func DefaultSCTPCost() rpi.CostModel {
	return rpi.CostModel{
		SendPerMsg: 8500 * time.Nanosecond,
		RecvPerMsg: 8500 * time.Nanosecond,
		SendPerKB:  180 * time.Nanosecond,
		RecvPerKB:  180 * time.Nanosecond,
		PollBase:   1 * time.Microsecond,
		PollPerFD:  0,
	}
}

// Report summarizes a completed run.
type Report struct {
	Elapsed   time.Duration // total virtual time, including setup/teardown
	NetStats  netsim.Stats
	RPIStats  []map[string]int64 // per rank
	RankErrs  []error
	SimErr    error // deadlock or run error
	Transport Transport
}

// FirstError returns the first per-rank or simulation error.
func (r *Report) FirstError() error {
	if r.SimErr != nil {
		return r.SimErr
	}
	for _, e := range r.RankErrs {
		if e != nil {
			return e
		}
	}
	return nil
}

// Program is the per-rank MPI program body.
type Program func(pr *mpi.Process, comm *mpi.Comm) error

// Cluster is a built simulated testbed with transports attached but no
// program started yet. It exposes the kernel and network so callers can
// inject faults (loss changes, interface failures) while a program
// runs — the knobs the paper turns with Dummynet and pulled cables.
type Cluster struct {
	Opts    Options
	Kernel  *sim.Kernel
	Net     *netsim.Network
	Nodes   []*netsim.Node
	modules []rpi.RPI
	report  *Report
	started bool
}

// NewCluster builds the testbed for opts.
func NewCluster(opts Options) (*Cluster, error) {
	opts = opts.withDefaults()
	k := sim.New(opts.Seed)
	lp := netsim.DefaultLinkParams()
	if opts.Link != nil {
		lp = *opts.Link
	}
	lp.LossRate = opts.LossRate
	net, nodes := netsim.Cluster(k, opts.Procs, opts.IfacesPerNode, lp)

	barrier := rpi.NewBarrier(k, opts.Procs)
	report := &Report{
		RPIStats:  make([]map[string]int64, opts.Procs),
		RankErrs:  make([]error, opts.Procs),
		Transport: opts.Transport,
	}

	addrs := make([]netsim.Addr, opts.Procs)
	addrLists := make([][]netsim.Addr, opts.Procs)
	for i, nd := range nodes {
		addrs[i] = nd.Addr()
		addrLists[i] = nd.Addrs()
	}

	modules := make([]rpi.RPI, opts.Procs)
	for i, nd := range nodes {
		switch opts.Transport {
		case TCP:
			cfg := tcp.Config{SndBuf: opts.BufSize, RcvBuf: opts.BufSize, NoDelay: true}
			if opts.TCPConfig != nil {
				cfg = *opts.TCPConfig
				if cfg.SndBuf == 0 {
					cfg.SndBuf = opts.BufSize
				}
				if cfg.RcvBuf == 0 {
					cfg.RcvBuf = opts.BufSize
				}
			}
			cost := DefaultTCPCost()
			if opts.Cost != nil {
				cost = *opts.Cost
			}
			if opts.NoCost {
				cost = rpi.CostModel{}
			}
			st := tcp.NewStack(nd, cfg)
			modules[i] = tcprpi.New(st, i, addrs, barrier, tcprpi.Options{Cost: cost, TCP: cfg})
		case SCTP, SCTPSingleStream:
			cfg := sctp.Config{
				SndBuf:         opts.BufSize,
				RcvBuf:         opts.BufSize,
				Streams:        opts.Streams,
				HBDisable:      opts.IfacesPerNode < 2,
				ChecksumVerify: opts.SCTPChecksum,
				CMT:            opts.CMT && opts.IfacesPerNode >= 2,
			}
			if opts.SCTPConfig != nil {
				cfg = *opts.SCTPConfig
				if cfg.SndBuf == 0 {
					cfg.SndBuf = opts.BufSize
				}
				if cfg.RcvBuf == 0 {
					cfg.RcvBuf = opts.BufSize
				}
				if cfg.Streams == 0 {
					cfg.Streams = opts.Streams
				}
			}
			cost := DefaultSCTPCost()
			if opts.Cost != nil {
				cost = *opts.Cost
			}
			if opts.NoCost {
				cost = rpi.CostModel{}
			}
			st := sctp.NewStack(nd, cfg)
			modules[i] = sctprpi.New(st, i, addrLists, barrier, sctprpi.Options{
				Cost:         cost,
				SCTP:         cfg,
				SingleStream: opts.Transport == SCTPSingleStream,
				OptionC:      opts.SCTPOptionC,
			})
		default:
			return nil, fmt.Errorf("core: unknown transport %d", opts.Transport)
		}
	}
	return &Cluster{
		Opts:    opts,
		Kernel:  k,
		Net:     net,
		Nodes:   nodes,
		modules: modules,
		report:  report,
	}, nil
}

// Start spawns fn on every rank. It may be called once.
func (c *Cluster) Start(fn Program) {
	if c.started {
		panic("core: Cluster.Start called twice")
	}
	c.started = true
	for i := 0; i < c.Opts.Procs; i++ {
		rank := i
		c.Kernel.Spawn(fmt.Sprintf("rank%d", rank), func(p *sim.Proc) {
			pr := mpi.NewProcess(p, rank, c.Opts.Procs, c.modules[rank], c.Opts.EagerLimit)
			comm, err := pr.Init()
			if err != nil {
				c.report.RankErrs[rank] = err
				return
			}
			if err := fn(pr, comm); err != nil {
				c.report.RankErrs[rank] = err
			}
			if err := pr.Finalize(); err != nil && c.report.RankErrs[rank] == nil {
				c.report.RankErrs[rank] = err
			}
			c.report.RPIStats[rank] = c.modules[rank].Counters()
		})
	}
}

// Wait runs the simulation to quiescence and returns the report.
func (c *Cluster) Wait() (*Report, error) {
	if c.Opts.Deadline > 0 {
		c.report.SimErr = c.Kernel.RunFor(c.Opts.Deadline)
	} else {
		c.report.SimErr = c.Kernel.Run()
	}
	c.report.Elapsed = c.Kernel.Now()
	c.report.NetStats = c.Net.Stats
	return c.report, c.report.FirstError()
}

// Run executes fn on every rank of a freshly built cluster and returns
// the report. The error return is the first failure (if any).
func Run(opts Options, fn Program) (*Report, error) {
	c, err := NewCluster(opts)
	if err != nil {
		return nil, err
	}
	c.Start(fn)
	return c.Wait()
}
