package core

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/mpi"
)

var allTransports = []Transport{TCP, SCTP, SCTPSingleStream, SCTPOneToOne}

func TestPingPongBothTransports(t *testing.T) {
	for _, tr := range allTransports {
		tr := tr
		t.Run(tr.String(), func(t *testing.T) {
			_, err := Run(Options{Procs: 2, Transport: tr, Seed: 1},
				func(pr *mpi.Process, comm *mpi.Comm) error {
					msg := []byte("hello world")
					buf := make([]byte, 64)
					if comm.Rank() == 0 {
						if err := comm.Send(1, 42, msg); err != nil {
							return err
						}
						st, err := comm.Recv(1, 43, buf)
						if err != nil {
							return err
						}
						if st.Count != len(msg) || !bytes.Equal(buf[:st.Count], msg) {
							return fmt.Errorf("echo mismatch: %q", buf[:st.Count])
						}
						return nil
					}
					st, err := comm.Recv(0, 42, buf)
					if err != nil {
						return err
					}
					return comm.Send(0, 43, buf[:st.Count])
				})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestLongMessageRendezvous(t *testing.T) {
	for _, tr := range allTransports {
		tr := tr
		t.Run(tr.String(), func(t *testing.T) {
			const n = 300 << 10 // long message, past the 64 KiB eager limit
			_, err := Run(Options{Procs: 2, Transport: tr, Seed: 2},
				func(pr *mpi.Process, comm *mpi.Comm) error {
					if comm.Rank() == 0 {
						data := make([]byte, n)
						for i := range data {
							data[i] = byte(i * 7)
						}
						return comm.Send(1, 0, data)
					}
					buf := make([]byte, n)
					st, err := comm.Recv(0, 0, buf)
					if err != nil {
						return err
					}
					if st.Count != n {
						return fmt.Errorf("count = %d", st.Count)
					}
					for i := range buf {
						if buf[i] != byte(i*7) {
							return fmt.Errorf("corrupt at %d", i)
						}
					}
					return nil
				})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestUnexpectedMessagesBuffered(t *testing.T) {
	for _, tr := range []Transport{TCP, SCTP} {
		tr := tr
		t.Run(tr.String(), func(t *testing.T) {
			_, err := Run(Options{Procs: 2, Transport: tr, Seed: 3},
				func(pr *mpi.Process, comm *mpi.Comm) error {
					if comm.Rank() == 0 {
						// Send before the receiver posts anything.
						for i := 0; i < 5; i++ {
							if err := comm.Send(1, i, []byte{byte(i)}); err != nil {
								return err
							}
						}
						return nil
					}
					// Receive in reverse tag order: every message is
					// unexpected when it arrives.
					buf := make([]byte, 1)
					for i := 4; i >= 0; i-- {
						st, err := comm.Recv(0, i, buf)
						if err != nil {
							return err
						}
						if st.Tag != i || buf[0] != byte(i) {
							return fmt.Errorf("tag %d: got tag %d val %d", i, st.Tag, buf[0])
						}
					}
					return nil
				})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestWildcards(t *testing.T) {
	_, err := Run(Options{Procs: 4, Transport: SCTP, Seed: 4},
		func(pr *mpi.Process, comm *mpi.Comm) error {
			if comm.Rank() == 0 {
				got := map[int]bool{}
				buf := make([]byte, 8)
				for i := 0; i < 3; i++ {
					st, err := comm.Recv(mpi.AnySource, mpi.AnyTag, buf)
					if err != nil {
						return err
					}
					got[st.Source] = true
					if st.Tag != st.Source*10 {
						return fmt.Errorf("tag %d from %d", st.Tag, st.Source)
					}
				}
				if len(got) != 3 {
					return fmt.Errorf("sources: %v", got)
				}
				return nil
			}
			return comm.Send(0, comm.Rank()*10, []byte("x"))
		})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSsendSynchronous(t *testing.T) {
	// A synchronous send must not complete before the receive is
	// posted: check via virtual time.
	_, err := Run(Options{Procs: 2, Transport: SCTP, Seed: 5, NoCost: true},
		func(pr *mpi.Process, comm *mpi.Comm) error {
			if comm.Rank() == 0 {
				t0 := pr.P.Now()
				if err := comm.Ssend(1, 0, []byte("sync")); err != nil {
					return err
				}
				if pr.P.Now()-t0 < 400*time.Millisecond {
					return fmt.Errorf("Ssend completed in %v, receiver was asleep for 500ms", pr.P.Now()-t0)
				}
				return nil
			}
			pr.P.Sleep(500 * time.Millisecond)
			buf := make([]byte, 16)
			_, err := comm.Recv(0, 0, buf)
			return err
		})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNonblockingOverlap(t *testing.T) {
	// The Figure 4 pattern: two Irecvs with different tags, Waitany,
	// compute, Waitall.
	for _, tr := range []Transport{TCP, SCTP} {
		tr := tr
		t.Run(tr.String(), func(t *testing.T) {
			_, err := Run(Options{Procs: 2, Transport: tr, Seed: 6},
				func(pr *mpi.Process, comm *mpi.Comm) error {
					if comm.Rank() == 0 {
						bufA := make([]byte, 30<<10)
						bufB := make([]byte, 30<<10)
						ra, err := comm.Irecv(1, 1, bufA)
						if err != nil {
							return err
						}
						rb, err := comm.Irecv(1, 2, bufB)
						if err != nil {
							return err
						}
						if _, _, err := comm.WaitAny(ra, rb); err != nil {
							return err
						}
						pr.P.Sleep(time.Millisecond) // compute
						return comm.WaitAll(ra, rb)
					}
					if err := comm.Send(0, 1, make([]byte, 30<<10)); err != nil {
						return err
					}
					return comm.Send(0, 2, make([]byte, 30<<10))
				})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestCollectives(t *testing.T) {
	for _, tr := range []Transport{TCP, SCTP} {
		tr := tr
		t.Run(tr.String(), func(t *testing.T) {
			_, err := Run(Options{Procs: 8, Transport: tr, Seed: 7},
				func(pr *mpi.Process, comm *mpi.Comm) error {
					n := comm.Size()
					me := comm.Rank()

					// Barrier.
					if err := comm.Barrier(); err != nil {
						return err
					}

					// Bcast.
					data := make([]byte, 1000)
					if me == 2 {
						for i := range data {
							data[i] = byte(i)
						}
					}
					if err := comm.Bcast(2, data); err != nil {
						return err
					}
					for i := range data {
						if data[i] != byte(i) {
							return fmt.Errorf("bcast corrupt at %d", i)
						}
					}

					// Reduce (sum of ranks) to root 1.
					v := mpi.F64Bytes([]float64{float64(me), 1})
					if err := comm.Reduce(1, v, mpi.OpSumF64); err != nil {
						return err
					}
					if me == 1 {
						got := mpi.BytesF64(v)
						wantSum := float64(n*(n-1)) / 2
						if got[0] != wantSum || got[1] != float64(n) {
							return fmt.Errorf("reduce got %v", got)
						}
					}

					// Allreduce max.
					w := mpi.F64Bytes([]float64{float64(me)})
					if err := comm.Allreduce(w, mpi.OpMaxF64); err != nil {
						return err
					}
					if got := mpi.BytesF64(w)[0]; got != float64(n-1) {
						return fmt.Errorf("allreduce max = %v", got)
					}

					// Gather/Scatter round trip.
					part := []byte{byte(me), byte(me + 1)}
					var all []byte
					if me == 0 {
						all = make([]byte, 2*n)
					}
					if err := comm.Gather(0, part, all); err != nil {
						return err
					}
					back := make([]byte, 2)
					if err := comm.Scatter(0, all, back); err != nil {
						return err
					}
					if back[0] != byte(me) || back[1] != byte(me+1) {
						return fmt.Errorf("gather/scatter corrupt: %v", back)
					}

					// Allgather.
					ag := make([]byte, n)
					if err := comm.Allgather([]byte{byte(me * 3)}, ag); err != nil {
						return err
					}
					for r := 0; r < n; r++ {
						if ag[r] != byte(r*3) {
							return fmt.Errorf("allgather[%d] = %d", r, ag[r])
						}
					}

					// Alltoall.
					snd := make([]byte, n)
					for r := range snd {
						snd[r] = byte(me*10 + r)
					}
					rcv := make([]byte, n)
					if err := comm.Alltoall(snd, rcv); err != nil {
						return err
					}
					for r := 0; r < n; r++ {
						if rcv[r] != byte(r*10+me) {
							return fmt.Errorf("alltoall[%d] = %d want %d", r, rcv[r], r*10+me)
						}
					}
					return nil
				})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestCommDupAndSplit(t *testing.T) {
	_, err := Run(Options{Procs: 8, Transport: SCTP, Seed: 8},
		func(pr *mpi.Process, comm *mpi.Comm) error {
			dup, err := comm.Dup()
			if err != nil {
				return err
			}
			// Messages on dup must not match receives on world.
			if dup.Context() == comm.Context() {
				return fmt.Errorf("dup context not fresh")
			}
			// Split into even/odd.
			sub, err := comm.Split(comm.Rank()%2, comm.Rank())
			if err != nil {
				return err
			}
			if sub.Size() != 4 {
				return fmt.Errorf("split size = %d", sub.Size())
			}
			// Ring send inside the subgroup.
			me := sub.Rank()
			next := (me + 1) % sub.Size()
			prev := (me - 1 + sub.Size()) % sub.Size()
			buf := make([]byte, 1)
			if _, err := sub.SendRecv(next, 9, []byte{byte(me)}, prev, 9, buf); err != nil {
				return err
			}
			if buf[0] != byte(prev) {
				return fmt.Errorf("ring got %d want %d", buf[0], prev)
			}
			return sub.Barrier()
		})
	if err != nil {
		t.Fatal(err)
	}
}

func TestProbe(t *testing.T) {
	_, err := Run(Options{Procs: 2, Transport: SCTP, Seed: 9},
		func(pr *mpi.Process, comm *mpi.Comm) error {
			if comm.Rank() == 0 {
				return comm.Send(1, 5, []byte("probe me"))
			}
			st, err := comm.Probe(mpi.AnySource, mpi.AnyTag)
			if err != nil {
				return err
			}
			if st.Tag != 5 || st.Count != 8 {
				return fmt.Errorf("probe status %+v", st)
			}
			buf := make([]byte, st.Count)
			if _, err := comm.Recv(st.Source, st.Tag, buf); err != nil {
				return err
			}
			if string(buf) != "probe me" {
				return fmt.Errorf("got %q", buf)
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
}

func TestUnderLossBothTransports(t *testing.T) {
	for _, tr := range []Transport{TCP, SCTP} {
		tr := tr
		t.Run(tr.String(), func(t *testing.T) {
			_, err := Run(Options{Procs: 4, Transport: tr, Seed: 10, LossRate: 0.02},
				func(pr *mpi.Process, comm *mpi.Comm) error {
					// All-pairs exchange under loss.
					buf := make([]byte, 10<<10)
					for r := 0; r < comm.Size(); r++ {
						if r == comm.Rank() {
							continue
						}
						if _, err := comm.SendRecv(r, 1, make([]byte, 10<<10), r, 1, buf); err != nil {
							return err
						}
					}
					return comm.Barrier()
				})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestSendToSelfDeadlockDetected(t *testing.T) {
	// Two blocking sends with no receives: a classic MPI deadlock that
	// the kernel's detector must catch (long/rendezvous path).
	rep, _ := Run(Options{Procs: 2, Transport: TCP, Seed: 11},
		func(pr *mpi.Process, comm *mpi.Comm) error {
			other := 1 - comm.Rank()
			return comm.Send(other, 0, make([]byte, 256<<10)) // rendezvous; no recv
		})
	if rep.SimErr == nil {
		t.Fatal("expected deadlock to be detected")
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() time.Duration {
		rep, err := Run(Options{Procs: 4, Transport: SCTP, Seed: 42, LossRate: 0.01},
			func(pr *mpi.Process, comm *mpi.Comm) error {
				for i := 0; i < 10; i++ {
					if err := comm.Barrier(); err != nil {
						return err
					}
				}
				return nil
			})
		if err != nil {
			t.Fatal(err)
		}
		return rep.Elapsed
	}
	if d1, d2 := run(), run(); d1 != d2 {
		t.Fatalf("nondeterministic: %v vs %v", d1, d2)
	}
}

func TestTruncationError(t *testing.T) {
	_, err := Run(Options{Procs: 2, Transport: SCTP, Seed: 12},
		func(pr *mpi.Process, comm *mpi.Comm) error {
			if comm.Rank() == 0 {
				return comm.Send(1, 0, make([]byte, 1000))
			}
			buf := make([]byte, 10) // too small
			_, err := comm.Recv(0, 0, buf)
			if err != mpi.ErrTruncated {
				return fmt.Errorf("err = %v, want ErrTruncated", err)
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
}
