package core

import (
	"fmt"
	"testing"

	"repro/internal/mpi"
	"repro/internal/mpi/rmcast"
	"repro/internal/netsim/topo"
)

// TestCollectiveConformanceMatrix runs Bcast and Allreduce across the
// full {transport} × {ranks} × {algorithm family} grid over the real
// backends (the multicast column this time with a live rmcast service,
// unlike the loopback conformance pass in internal/mpi) and requires
// bit-identical per-rank digests across the three families. The rank
// list deliberately includes the single-rank and non-power-of-two
// communicators the binomial/multicast shapes find awkward.
func TestCollectiveConformanceMatrix(t *testing.T) {
	transports := []Transport{TCP, SCTP, SCTPOneToOne}
	ranks := []int{1, 2, 3, 17, 64}
	algs := []mpi.Alg{mpi.AlgTree, mpi.AlgNaive, mpi.AlgMulticast}
	algNames := []string{"tree", "naive", "multicast"}

	const words = 1536 // 12 KiB: several multicast chunks per op
	for _, tr := range transports {
		for _, n := range ranks {
			// digests[alg][rank]
			digests := make([][]uint64, len(algs))
			for ai, alg := range algs {
				alg := alg
				digests[ai] = make([]uint64, n)
				_, err := Run(Options{Procs: n, Transport: tr, Seed: 7},
					func(pr *mpi.Process, comm *mpi.Comm) error {
						comm.SetAlg(alg)
						root := (n - 1) / 2
						data := make([]byte, 8*words)
						if comm.Rank() == root {
							copy(data, mpi.I64Bytes(matrixPattern(root, words)))
						}
						if err := comm.Bcast(root, data); err != nil {
							return err
						}
						h := rmcast.Digest(data)
						red := mpi.I64Bytes(matrixPattern(comm.Rank(), words))
						if err := comm.Allreduce(red, mpi.OpSumI64); err != nil {
							return err
						}
						digests[ai][comm.Rank()] = h ^ rmcast.Digest(red)<<1
						return nil
					})
				if err != nil {
					t.Fatalf("%s n=%d %s: %v", tr, n, algNames[ai], err)
				}
			}
			for ai := 1; ai < len(algs); ai++ {
				for r := 0; r < n; r++ {
					if digests[ai][r] != digests[0][r] {
						t.Fatalf("%s n=%d rank %d: %s digest %#x differs from tree %#x",
							tr, n, r, algNames[ai], digests[ai][r], digests[0][r])
					}
				}
			}
		}
	}
}

func matrixPattern(r, words int) []int64 {
	v := make([]int64, words)
	for i := range v {
		v[i] = int64(r+1)*1_000_003 + int64(i)*7 + int64((r*31+i)%13)
	}
	return v
}

// TestMulticastBcastOnFatTree pins the routed multicast path end to
// end: a world-group broadcast under AlgMulticast on a fat-tree fabric
// must commit (no fallback) and deliver bit-identical payloads, with
// the fabric reporting switch-level fan-out (more multicast deliveries
// than packets sent).
func TestMulticastBcastOnFatTree(t *testing.T) {
	const n = 17
	c, err := NewCluster(Options{Procs: n, Transport: SCTP, Seed: 3,
		Topo: &topo.Config{Kind: topo.FatTree}})
	if err != nil {
		t.Fatal(err)
	}
	want := mpi.I64Bytes(matrixPattern(4, 2048))
	c.Start(func(pr *mpi.Process, comm *mpi.Comm) error {
		comm.SetAlg(mpi.AlgMulticast)
		data := make([]byte, len(want))
		if comm.Rank() == 4 {
			copy(data, want)
		}
		if err := comm.Bcast(4, data); err != nil {
			return err
		}
		if rmcast.Digest(data) != rmcast.Digest(want) {
			return fmt.Errorf("rank %d: bcast payload mismatch", comm.Rank())
		}
		return nil
	})
	if _, err := c.Wait(); err != nil {
		t.Fatal(err)
	}
	var fallbacks int64
	for _, ep := range c.Mcast {
		fallbacks += ep.Counters()["mc_fallbacks"]
	}
	if fallbacks != 0 {
		t.Fatalf("clean fat-tree bcast fell back %d times", fallbacks)
	}
	st := c.Net.Stats
	if st.PacketsMcast == 0 {
		t.Fatal("no multicast packets on the wire")
	}
	if st.McastDeliveries <= st.PacketsMcast {
		t.Fatalf("no switch fan-out: %d multicast sends, %d deliveries",
			st.PacketsMcast, st.McastDeliveries)
	}
}
