package core

import (
	"testing"
	"time"

	"repro/internal/mpi"
)

// TestTeardownPrompt is a regression test: MPI_Finalize plus socket
// close must complete within milliseconds of virtual time, not ride a
// T3 retransmission death spiral (a closed one-to-many socket must keep
// servicing its associations until their SHUTDOWN handshakes finish).
func TestTeardownPrompt(t *testing.T) {
	for _, tr := range []Transport{TCP, SCTP} {
		rep, err := Run(Options{Procs: 4, Transport: tr, Seed: 1},
			func(pr *mpi.Process, comm *mpi.Comm) error {
				if comm.Rank() == 0 {
					for r := 1; r < comm.Size(); r++ {
						if err := comm.Send(r, 0, []byte("x")); err != nil {
							return err
						}
					}
					return nil
				}
				buf := make([]byte, 8)
				_, err := comm.Recv(0, 0, buf)
				return err
			})
		if err != nil {
			t.Fatalf("%v: %v", tr, err)
		}
		if rep.Elapsed > 500*time.Millisecond {
			t.Errorf("%v: teardown took %v of virtual time", tr, rep.Elapsed)
		}
	}
}
