package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/netsim/topo"
)

func TestTopoEndToEnd(t *testing.T) {
	for _, tr := range []core.Transport{core.TCP, core.SCTP, core.SCTPOneToOne} {
		rep, err := core.Run(core.Options{
			Procs:     16,
			Transport: tr,
			NoCost:    true,
			Topo:      &topo.Config{Kind: topo.FatTree},
		}, func(pr *mpi.Process, comm *mpi.Comm) error {
			buf := mpi.I64Bytes([]int64{int64(comm.Rank())})
			if err := comm.Allreduce(buf, mpi.OpSumI64); err != nil {
				return err
			}
			if got := mpi.BytesI64(buf)[0]; got != 120 {
				t.Errorf("%v: allreduce sum = %d, want 120", tr, got)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("%v: %v (report %+v)", tr, err, rep)
		}
	}
}
