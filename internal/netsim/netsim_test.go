package netsim

import (
	"testing"
	"time"

	"repro/internal/sim"
)

func twoNodes(seed int64, lp LinkParams) (*sim.Kernel, *Network, *Node, *Node) {
	k := sim.New(seed)
	net := NewNetwork(k)
	net.SetDefaultLinkParams(lp)
	a := net.NewNode("a")
	a.AddInterface(MakeAddr(0, 1))
	b := net.NewNode("b")
	b.AddInterface(MakeAddr(0, 2))
	return k, net, a, b
}

func TestAddrString(t *testing.T) {
	a := MakeAddr(2, 7)
	if a.String() != "10.2.0.7" {
		t.Fatalf("addr = %s", a)
	}
	if a.Subnet() != 2 {
		t.Fatalf("subnet = %d", a.Subnet())
	}
}

func TestDeliveryLatency(t *testing.T) {
	lp := LinkParams{Delay: time.Millisecond, Bandwidth: 8000} // 1000 bytes/s
	k, _, a, b := twoNodes(1, lp)
	var arrived time.Duration
	b.Handle(99, func(pkt *Packet, ifc *Iface) { arrived = k.Now() })
	payload := make([]byte, 80) // 100 bytes on wire = 100ms serialization
	a.Send(&Packet{Src: a.Addr(), Dst: b.Addr(), Proto: 99, Payload: payload})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := 100*time.Millisecond + time.Millisecond
	if arrived != want {
		t.Fatalf("arrived at %v, want %v", arrived, want)
	}
}

func TestSerializationQueuing(t *testing.T) {
	lp := LinkParams{Delay: 0, Bandwidth: 8000, QueueBytes: 1 << 20}
	k, _, a, b := twoNodes(1, lp)
	var times []time.Duration
	b.Handle(99, func(pkt *Packet, ifc *Iface) { times = append(times, k.Now()) })
	for i := 0; i < 3; i++ {
		a.Send(&Packet{Src: a.Addr(), Dst: b.Addr(), Proto: 99, Payload: make([]byte, 80)})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(times) != 3 {
		t.Fatalf("delivered %d", len(times))
	}
	// Back-to-back packets serialize at 100ms each.
	for i, want := range []time.Duration{100 * time.Millisecond, 200 * time.Millisecond, 300 * time.Millisecond} {
		if times[i] != want {
			t.Fatalf("pkt %d at %v, want %v", i, times[i], want)
		}
	}
}

func TestBernoulliLoss(t *testing.T) {
	lp := DefaultLinkParams()
	lp.LossRate = 0.1
	lp.Bandwidth = 0 // infinite, so the drop-tail queue never engages
	k, net, a, b := twoNodes(7, lp)
	got := 0
	b.Handle(99, func(pkt *Packet, ifc *Iface) { got++ })
	const n = 10000
	for i := 0; i < n; i++ {
		a.Send(&Packet{Src: a.Addr(), Dst: b.Addr(), Proto: 99, Payload: make([]byte, 100)})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	lost := n - got
	if lost < 800 || lost > 1200 {
		t.Fatalf("lost %d of %d at 10%% loss", lost, n)
	}
	if net.Stats.PacketsLost != int64(lost) {
		t.Fatalf("stats.PacketsLost = %d, want %d", net.Stats.PacketsLost, lost)
	}
}

func TestQueueDrop(t *testing.T) {
	lp := LinkParams{Bandwidth: 8000, QueueBytes: 250} // ~2 packets of backlog
	k, net, a, b := twoNodes(1, lp)
	got := 0
	b.Handle(99, func(pkt *Packet, ifc *Iface) { got++ })
	for i := 0; i < 10; i++ {
		a.Send(&Packet{Src: a.Addr(), Dst: b.Addr(), Proto: 99, Payload: make([]byte, 80)})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if net.Stats.PacketsQueued == 0 {
		t.Fatal("no queue drops despite overload")
	}
	if got+int(net.Stats.PacketsQueued) != 10 {
		t.Fatalf("got %d + dropped %d != 10", got, net.Stats.PacketsQueued)
	}
}

func TestIfaceDown(t *testing.T) {
	k, net, a, b := twoNodes(1, DefaultLinkParams())
	got := 0
	b.Handle(99, func(pkt *Packet, ifc *Iface) { got++ })
	net.SetIfaceDown(b.Addr(), true)
	a.Send(&Packet{Src: a.Addr(), Dst: b.Addr(), Proto: 99, Payload: []byte{1}})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatal("packet delivered to down interface")
	}
	net.SetIfaceDown(b.Addr(), false)
	a.Send(&Packet{Src: a.Addr(), Dst: b.Addr(), Proto: 99, Payload: []byte{1}})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatal("packet not delivered after interface up")
	}
}

func TestSubnetDownMultihomed(t *testing.T) {
	k := sim.New(1)
	net, nodes := Cluster(k, 2, 3, DefaultLinkParams())
	a, b := nodes[0], nodes[1]
	if len(b.Addrs()) != 3 {
		t.Fatalf("expected 3 interfaces, got %d", len(b.Addrs()))
	}
	got := map[int]int{}
	b.Handle(99, func(pkt *Packet, ifc *Iface) { got[ifc.Addr().Subnet()]++ })
	net.SetSubnetDown(0, true)
	for s := 0; s < 3; s++ {
		a.Send(&Packet{Src: a.Addrs()[s], Dst: b.Addrs()[s], Proto: 99, Payload: []byte{1}})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got[0] != 0 || got[1] != 1 || got[2] != 1 {
		t.Fatalf("deliveries per subnet: %v", got)
	}
}

func TestPerPairOverride(t *testing.T) {
	k, net, a, b := twoNodes(1, DefaultLinkParams())
	net.SetLinkParamsBetween(a.Addr(), b.Addr(), LinkParams{Delay: time.Second, Bandwidth: 1e9})
	var fwd, rev time.Duration
	b.Handle(99, func(pkt *Packet, ifc *Iface) { fwd = k.Now() })
	a.Handle(99, func(pkt *Packet, ifc *Iface) { rev = k.Now() })
	a.Send(&Packet{Src: a.Addr(), Dst: b.Addr(), Proto: 99, Payload: []byte{1}})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	start := k.Now()
	b.Send(&Packet{Src: b.Addr(), Dst: a.Addr(), Proto: 99, Payload: []byte{1}})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fwd < time.Second {
		t.Fatalf("forward delay %v, want >= 1s", fwd)
	}
	if rev-start > 100*time.Millisecond {
		t.Fatalf("reverse should use default params, took %v", rev-start)
	}
}

func TestSetLossAppliesEverywhere(t *testing.T) {
	k, net, a, b := twoNodes(3, DefaultLinkParams())
	got := 0
	b.Handle(99, func(pkt *Packet, ifc *Iface) { got++ })
	// Create the pipe first, then set loss; existing pipes must update.
	a.Send(&Packet{Src: a.Addr(), Dst: b.Addr(), Proto: 99, Payload: []byte{1}})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	net.SetLoss(1.0)
	a.Send(&Packet{Src: a.Addr(), Dst: b.Addr(), Proto: 99, Payload: []byte{1}})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("got %d deliveries, want 1 (second packet lost)", got)
	}
}

func TestCorruptRateFlipsOneBit(t *testing.T) {
	lp := DefaultLinkParams()
	lp.CorruptRate = 1.0
	k, net, a, b := twoNodes(5, lp)
	const n = 50
	flipped := 0
	b.Handle(99, func(pkt *Packet, ifc *Iface) {
		// Count bits differing from the all-zero original.
		diff := 0
		for _, c := range pkt.Payload {
			for ; c != 0; c &= c - 1 {
				diff++
			}
		}
		if diff != 1 {
			t.Errorf("packet has %d flipped bits, want exactly 1", diff)
		}
		flipped++
	})
	for i := 0; i < n; i++ {
		a.Send(&Packet{Src: a.Addr(), Dst: b.Addr(), Proto: 99, Payload: make([]byte, 64)})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if flipped != n {
		t.Fatalf("delivered %d of %d (corruption must not drop)", flipped, n)
	}
	if net.Stats.PacketsCorrupted != n {
		t.Fatalf("stats.PacketsCorrupted = %d, want %d", net.Stats.PacketsCorrupted, n)
	}
}

func TestLinkDownBlocksAndCounts(t *testing.T) {
	k, net, a, b := twoNodes(1, DefaultLinkParams())
	got := 0
	b.Handle(99, func(pkt *Packet, ifc *Iface) { got++ })
	net.UpdateLinkParamsBetween(a.Addr(), b.Addr(), func(lp *LinkParams) { lp.Down = true })
	a.Send(&Packet{Src: a.Addr(), Dst: b.Addr(), Proto: 99, Payload: []byte{1}})
	// The reverse direction is its own pipe and stays up.
	b.Send(&Packet{Src: b.Addr(), Dst: a.Addr(), Proto: 99, Payload: []byte{1}})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatal("packet crossed an administratively-down link")
	}
	if net.Stats.PacketsBlocked != 1 {
		t.Fatalf("stats.PacketsBlocked = %d, want 1", net.Stats.PacketsBlocked)
	}
	net.UpdateLinkParamsBetween(a.Addr(), b.Addr(), func(lp *LinkParams) { lp.Down = false })
	a.Send(&Packet{Src: a.Addr(), Dst: b.Addr(), Proto: 99, Payload: []byte{1}})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatal("packet not delivered after link came back up")
	}
}

// TestRuntimeMutationNoReorder changes link bandwidth while packets are
// queued on the pipe: arrival times are computed at send time, so
// in-flight packets must keep their order relative to packets sent
// after the change, never overtaking or being overtaken.
func TestRuntimeMutationNoReorder(t *testing.T) {
	lp := LinkParams{Bandwidth: 8000, QueueBytes: 1 << 20} // 1000 bytes/s
	k, net, a, b := twoNodes(1, lp)
	var order []int
	b.Handle(99, func(pkt *Packet, ifc *Iface) { order = append(order, int(pkt.Payload[0])) })
	send := func(i int) {
		p := make([]byte, 80) // 100 bytes on wire = 100 ms serialization
		p[0] = byte(i)
		a.Send(&Packet{Src: a.Addr(), Dst: b.Addr(), Proto: 99, Payload: p})
	}
	for i := 0; i < 5; i++ {
		send(i)
	}
	// Mid-drain, make the link 1000x faster; the five queued packets
	// still own their original arrival times.
	k.After(150*time.Millisecond, func() {
		net.UpdateLinkParams(func(lp *LinkParams) { lp.Bandwidth = 8e6 })
		for i := 5; i < 10; i++ {
			send(i)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 10 {
		t.Fatalf("delivered %d of 10", len(order))
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("delivery order %v: packet %d overtook", order, got)
		}
	}
}

func TestMTU(t *testing.T) {
	lp := DefaultLinkParams()
	lp.MTU = 9000
	k, _, a, b := twoNodes(1, lp)
	_ = k
	if a.MTU(a.Addr(), b.Addr()) != 9000 {
		t.Fatalf("MTU = %d", a.MTU(a.Addr(), b.Addr()))
	}
}
