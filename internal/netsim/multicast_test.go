package netsim

import (
	"testing"

	"repro/internal/sim"
)

func mcastMesh(t *testing.T, seed int64, n int, lp LinkParams) (*sim.Kernel, *Network, []*Node, Addr) {
	t.Helper()
	k := sim.New(seed)
	net, nodes := Cluster(k, n, 1, lp)
	group := MakeGroupAddr(7)
	for _, nd := range nodes {
		net.JoinGroup(group, nd.Addr())
	}
	return k, net, nodes, group
}

func countDeliveries(nodes []*Node, proto uint8) []int {
	got := make([]int, len(nodes))
	for i, nd := range nodes {
		idx := i
		nd.Handle(proto, func(pkt *Packet, ifc *Iface) { got[idx]++ })
	}
	return got
}

func TestGroupAddrSpace(t *testing.T) {
	g := MakeGroupAddr(7)
	if !g.IsMulticast() {
		t.Fatalf("%s should be multicast", g)
	}
	if g.String() != "224.0.0.7" {
		t.Fatalf("group addr = %s", g)
	}
	if MakeAddr(1, 2).IsMulticast() {
		t.Fatal("unicast address classified as multicast")
	}
}

func TestMulticastMeshFanOut(t *testing.T) {
	k, net, nodes, group := mcastMesh(t, 1, 4, DefaultLinkParams())
	got := countDeliveries(nodes, 99)
	nodes[0].Send(&Packet{Src: nodes[0].Addr(), Dst: group, Proto: 99, Payload: []byte("x")})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got[0] != 0 {
		t.Fatalf("sender self-delivered %d copies", got[0])
	}
	for i := 1; i < 4; i++ {
		if got[i] != 1 {
			t.Fatalf("node %d got %d copies, want 1", i, got[i])
		}
	}
	if net.Stats.PacketsMcast != 1 || net.Stats.PacketsSent != 1 {
		t.Fatalf("mcast packets = %d / sent = %d, want 1/1",
			net.Stats.PacketsMcast, net.Stats.PacketsSent)
	}
	if net.Stats.McastDeliveries != 3 {
		t.Fatalf("deliveries = %d, want 3", net.Stats.McastDeliveries)
	}
}

// TestMulticastMeshIndependentLoss pins the mesh fallback semantics:
// each member is reached over its own (src, member) pipe, so a lossy
// pipe to one member leaves the others untouched.
func TestMulticastMeshIndependentLoss(t *testing.T) {
	k, net, nodes, group := mcastMesh(t, 1, 4, DefaultLinkParams())
	lossy := DefaultLinkParams()
	lossy.LossRate = 1.0
	net.SetLinkParamsBetween(nodes[0].Addr(), nodes[2].Addr(), lossy)
	got := countDeliveries(nodes, 99)
	nodes[0].Send(&Packet{Src: nodes[0].Addr(), Dst: group, Proto: 99, Payload: []byte("x")})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got[1] != 1 || got[3] != 1 {
		t.Fatalf("healthy members got %d/%d copies, want 1/1", got[1], got[3])
	}
	if got[2] != 0 {
		t.Fatalf("member behind the lossy pipe got %d copies, want 0", got[2])
	}
	// One loss draw per member pipe: exactly the lossy one fired.
	if net.Stats.PacketsLost != 1 {
		t.Fatalf("losses = %d, want 1", net.Stats.PacketsLost)
	}
}

// TestMulticastMeshPerReceiverDraws: with loss on every pipe, a mesh
// multicast takes an independent Bernoulli draw per receiver — so
// LossRate 1.0 records one loss per member, not one for the packet.
// (The routed counterpart in topo's tests shows the shared-hop dual:
// one draw at the first shared port.)
func TestMulticastMeshPerReceiverDraws(t *testing.T) {
	k, net, nodes, group := mcastMesh(t, 1, 5, DefaultLinkParams())
	net.SetLoss(1.0)
	got := countDeliveries(nodes, 99)
	nodes[0].Send(&Packet{Src: nodes[0].Addr(), Dst: group, Proto: 99, Payload: []byte("x")})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, g := range got {
		if g != 0 {
			t.Fatalf("node %d got %d copies through LossRate 1.0", i, g)
		}
	}
	if net.Stats.PacketsLost != 4 {
		t.Fatalf("losses = %d, want 4 (one independent draw per member)", net.Stats.PacketsLost)
	}
}

func TestMulticastDownMemberSkipped(t *testing.T) {
	k, net, nodes, group := mcastMesh(t, 1, 4, DefaultLinkParams())
	net.SetIfaceDown(nodes[2].Addr(), true)
	got := countDeliveries(nodes, 99)
	nodes[0].Send(&Packet{Src: nodes[0].Addr(), Dst: group, Proto: 99, Payload: []byte("x")})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got[1] != 1 || got[3] != 1 || got[2] != 0 {
		t.Fatalf("deliveries = %v, want down member skipped, others 1", got)
	}
	if net.Stats.PacketsDown != 1 {
		t.Fatalf("down drops = %d, want 1", net.Stats.PacketsDown)
	}
}

func TestLeaveGroup(t *testing.T) {
	k, net, nodes, group := mcastMesh(t, 1, 4, DefaultLinkParams())
	net.LeaveGroup(group, nodes[3].Addr())
	if m := net.GroupMembers(group); len(m) != 3 {
		t.Fatalf("members after leave = %d, want 3", len(m))
	}
	got := countDeliveries(nodes, 99)
	nodes[0].Send(&Packet{Src: nodes[0].Addr(), Dst: group, Proto: 99, Payload: []byte("x")})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got[3] != 0 {
		t.Fatalf("departed member still got %d copies", got[3])
	}
	if got[1] != 1 || got[2] != 1 {
		t.Fatalf("deliveries = %v, want remaining members served", got)
	}
}

func TestMulticastNoMembers(t *testing.T) {
	k := sim.New(1)
	net, nodes := Cluster(k, 2, 1, DefaultLinkParams())
	nodes[0].Send(&Packet{Src: nodes[0].Addr(), Dst: MakeGroupAddr(9), Proto: 99, Payload: []byte("x")})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if net.Stats.PacketsNoRoute != 1 {
		t.Fatalf("no-route drops = %d, want 1", net.Stats.PacketsNoRoute)
	}
}

// TestMulticastPooledPacketRefs runs a pooled payload through a mesh
// fan-out and checks the pool reference accounting balances: the leak
// counter must return to its baseline after delivery.
func TestMulticastPooledPacketRefs(t *testing.T) {
	base := LivePooledPackets()
	k, _, nodes, group := mcastMesh(t, 1, 5, DefaultLinkParams())
	countDeliveries(nodes, 99)
	buf := append(make([]byte, 0, 64), []byte("pooled")...)
	pkt := NewPooledPacket(nodes[0].Addr(), group, 99, buf)
	nodes[0].Send(pkt)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if live := LivePooledPackets(); live != base {
		t.Fatalf("pooled packets leaked: %d -> %d", base, live)
	}
}
