// Package netsim simulates an IP network: nodes with (possibly several)
// interfaces, connected by point-to-point pipes with propagation delay,
// serialization at a configured bandwidth, drop-tail queueing, and
// Bernoulli packet loss. The loss model is the Dummynet configuration
// the paper used on its FreeBSD cluster.
//
// The topology is a full mesh of unidirectional pipes created lazily per
// (source interface, destination interface) pair; a LinkParams override
// may be installed per pair, per subnet, or globally. Multihoming is
// modeled by giving a node one interface per subnet.
package netsim

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/sim"
	"repro/internal/wire"
)

// Protocol numbers used by the stacks in this repository.
const (
	ProtoTCP  = 6
	ProtoSCTP = 132
)

// IPHeaderSize is the overhead charged per packet on the wire.
const IPHeaderSize = 20

// Addr is an IPv4-style address.
type Addr uint32

// MakeAddr builds the address 10.subnet.host/16: the host occupies the
// low 16 bits so generated topologies can address up to 65535 hosts
// per subnet. Hosts below 256 produce exactly the historical
// 10.subnet.0.host addresses.
func MakeAddr(subnet, host int) Addr {
	return Addr(10<<24 | uint32(subnet&0xff)<<16 | uint32(host&0xffff))
}

// Subnet returns the subnet component of an address built by MakeAddr.
func (a Addr) Subnet() int { return int(a >> 16 & 0xff) }

// MakeGroupAddr builds a link-layer multicast group address in the
// 224.0.0.0/8 block, disjoint from every MakeAddr unicast address.
func MakeGroupAddr(group int) Addr {
	return Addr(0xe0<<24 | uint32(group&0xffffff))
}

// IsMulticast reports whether the address is a multicast group address.
func (a Addr) IsMulticast() bool { return a>>24 == 0xe0 }

// String renders the address in dotted-quad form.
func (a Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", a>>24&0xff, a>>16&0xff, a>>8&0xff, a&0xff)
}

// Packet is an IP datagram in flight.
//
// A packet built with NewPooledPacket carries a payload from the shared
// buffer pool and a reference count. Ownership transfers to the network
// at Node.Send; the network releases the payload on every drop path and
// after delivering it to the protocol handler. A handler that keeps a
// sub-slice of the payload alive past its return (e.g. SCTP reassembly
// fragments) must Retain the packet and Release it when done. Packets
// built as plain literals have no pool backing, and Retain/Release are
// no-ops on them.
type Packet struct {
	Src, Dst Addr
	Proto    uint8
	Payload  []byte
	refs     int32 // remaining pool references; 0 when not pooled
}

// livePooled counts pooled packets whose payload has not yet been
// returned to the pool, across every network in the process. At
// simulation quiescence the count must return to its starting value;
// the chaos harness uses the delta as its packet-leak oracle.
var livePooled int64

// LivePooledPackets returns the number of pooled packets currently
// holding a payload. Meaningful as a leak check only when a single
// simulation is running in the process.
//
//simlint:allow nopreempt process-global leak counter shared by kernels running concurrently in parallel sweeps; it is observability only and never feeds back into virtual-time behavior
func LivePooledPackets() int64 { return atomic.LoadInt64(&livePooled) }

// NewPooledPacket wraps a payload obtained from wire.GetBuf in a packet
// that returns it to the pool once the last reference is released.
func NewPooledPacket(src, dst Addr, proto uint8, payload []byte) *Packet {
	//simlint:allow nopreempt leak counter is shared across concurrently sweeping kernels; the value never influences simulation decisions
	atomic.AddInt64(&livePooled, 1)
	return &Packet{Src: src, Dst: dst, Proto: proto, Payload: payload, refs: 1}
}

// Retain adds a reference to a pooled payload.
func (p *Packet) Retain() {
	if p.refs > 0 {
		p.refs++
	}
}

// Release drops one reference; the last drop recycles the payload. The
// payload is nilled so a use-after-release fails loudly instead of
// reading recycled bytes.
func (p *Packet) Release() {
	if p.refs == 0 {
		return
	}
	p.refs--
	if p.refs == 0 {
		wire.PutBuf(p.Payload)
		p.Payload = nil
		//simlint:allow nopreempt leak counter is shared across concurrently sweeping kernels; the value never influences simulation decisions
		atomic.AddInt64(&livePooled, -1)
	}
}

// WireSize returns the on-the-wire size of the packet including the IP
// header.
func (p *Packet) WireSize() int { return len(p.Payload) + IPHeaderSize }

// LinkParams describes one direction of a link. All fields may be
// changed at runtime through UpdateLinkParams; because a packet's
// arrival time is fixed at send time, parameter changes only affect
// packets sent afterwards and can never reorder traffic already in
// flight.
type LinkParams struct {
	Delay       time.Duration // one-way propagation delay
	Bandwidth   int64         // bits per second; 0 means infinite
	LossRate    float64       // Bernoulli drop probability in [0,1)
	DupRate     float64       // Bernoulli duplication probability (Dummynet supports this too)
	CorruptRate float64       // Bernoulli bit-corruption probability: one random payload bit flips
	Jitter      time.Duration // uniform extra delay in [0, Jitter); causes reordering
	QueueBytes  int           // drop-tail queue bound; 0 means unbounded
	MTU         int           // maximum packet payload size; 0 means 1500
	Down        bool          // administratively down: drop everything (fault injection)
}

// DefaultLinkParams matches the paper's testbed: 1 Gb/s Ethernet through
// a layer-two switch, LAN-scale latency, no loss.
func DefaultLinkParams() LinkParams {
	return LinkParams{
		Delay:      50 * time.Microsecond,
		Bandwidth:  1e9,
		LossRate:   0,
		QueueBytes: 256 << 10,
		MTU:        1500,
	}
}

func (lp LinkParams) mtu() int {
	if lp.MTU <= 0 {
		return 1500
	}
	return lp.MTU
}

// Stats counts network-wide events.
type Stats struct {
	PacketsSent      int64
	PacketsLost      int64 // Bernoulli loss
	PacketsDuped     int64 // Bernoulli duplication
	PacketsCorrupted int64 // Bernoulli bit corruption (packet still delivered)
	PacketsQueued    int64 // dropped by drop-tail queue
	PacketsDown      int64 // dropped because an interface was down
	PacketsBlocked   int64 // dropped because the pipe was administratively down
	PacketsNoRoute   int64
	BytesSent        int64
	PacketsMcast     int64 // multicast packets entering the network (one per Send)
	McastDeliveries  int64 // multicast copies handed to receivers
}

// Network is the simulated internetwork.
type Network struct {
	K       *sim.Kernel
	def     LinkParams
	nodes   []*Node
	routes  map[Addr]*Iface
	pipes   map[pipeKey]*Pipe
	perPair map[pipeKey]LinkParams
	ports   []*Port
	router  Router
	groups  map[Addr][]*Iface
	Stats   Stats
	Trace   func(ev string, pkt *Packet)
}

type pipeKey struct{ src, dst Addr }

// NewNetwork returns an empty network scheduled on k.
func NewNetwork(k *sim.Kernel) *Network {
	return &Network{
		K:       k,
		def:     DefaultLinkParams(),
		routes:  make(map[Addr]*Iface),
		pipes:   make(map[pipeKey]*Pipe),
		perPair: make(map[pipeKey]LinkParams),
	}
}

// SetDefaultLinkParams replaces the parameters used for pipes without a
// per-pair override. Existing pipes created from the defaults are
// updated in place.
func (n *Network) SetDefaultLinkParams(lp LinkParams) {
	n.def = lp
	for key, p := range n.pipes {
		if _, over := n.perPair[key]; !over {
			p.params = lp
		}
	}
}

// DefaultLinkParamsValue returns the current defaults.
func (n *Network) DefaultLinkParamsValue() LinkParams { return n.def }

// SetLoss sets the Bernoulli loss rate on every pipe, existing and
// future, mirroring a cluster-wide Dummynet plr setting.
func (n *Network) SetLoss(rate float64) {
	n.def.LossRate = rate
	for key := range n.perPair {
		lp := n.perPair[key]
		lp.LossRate = rate
		n.perPair[key] = lp
	}
	for _, p := range n.pipes {
		p.params.LossRate = rate
	}
	for _, p := range n.ports {
		p.params.LossRate = rate
	}
}

// SetLinkParamsBetween installs a per-pair override for packets from src
// to dst (one direction).
func (n *Network) SetLinkParamsBetween(src, dst Addr, lp LinkParams) {
	key := pipeKey{src, dst}
	n.perPair[key] = lp
	if p, ok := n.pipes[key]; ok {
		p.params = lp
	}
}

// UpdateLinkParams applies mutate to the defaults, every per-pair
// override, and every live pipe — the runtime fault-injection knob the
// chaos scheduler turns mid-run (Dummynet `pipe config` on a running
// experiment). Packets already in flight keep their scheduled arrival
// times.
func (n *Network) UpdateLinkParams(mutate func(lp *LinkParams)) {
	mutate(&n.def)
	for key := range n.perPair {
		lp := n.perPair[key]
		mutate(&lp)
		n.perPair[key] = lp
	}
	for _, p := range n.pipes {
		mutate(&p.params)
	}
	for _, p := range n.ports {
		mutate(&p.params)
	}
}

// UpdateLinkParamsBetween applies mutate to the one-directional pipe
// from src to dst, materializing a per-pair override from the current
// effective parameters when none exists yet.
func (n *Network) UpdateLinkParamsBetween(src, dst Addr, mutate func(lp *LinkParams)) {
	key := pipeKey{src, dst}
	lp, ok := n.perPair[key]
	if !ok {
		if p, live := n.pipes[key]; live {
			lp = p.params
		} else {
			lp = n.def
		}
	}
	mutate(&lp)
	n.perPair[key] = lp
	if p, live := n.pipes[key]; live {
		p.params = lp
	}
}

// NewNode adds a node named name.
func (n *Network) NewNode(name string) *Node {
	node := &Node{net: n, name: name, protos: make(map[uint8]Handler)}
	n.nodes = append(n.nodes, node)
	return node
}

// Nodes returns all nodes in creation order.
func (n *Network) Nodes() []*Node { return n.nodes }

// Lookup returns the interface owning addr, or nil.
func (n *Network) Lookup(addr Addr) *Iface { return n.routes[addr] }

// SetIfaceDown marks the interface with the given address down (or up).
// Packets to or from a down interface are silently dropped, as with an
// unplugged cable.
func (n *Network) SetIfaceDown(addr Addr, down bool) {
	if ifc := n.routes[addr]; ifc != nil {
		ifc.down = down
	}
}

// SetSubnetDown marks every interface on the subnet down (or up),
// simulating the failure of one of the independent networks in the
// paper's multihoming setup.
func (n *Network) SetSubnetDown(subnet int, down bool) {
	for addr, ifc := range n.routes {
		if addr.Subnet() == subnet {
			ifc.down = down
		}
	}
}

// JoinGroup subscribes the interface owning member to the multicast
// group. Membership order is join order, which fixes the fan-out (and
// therefore RNG draw) order for deterministic replay. Joining twice is
// a no-op.
func (n *Network) JoinGroup(group, member Addr) {
	if !group.IsMulticast() {
		panic("netsim: JoinGroup on non-multicast address " + group.String())
	}
	ifc := n.routes[member]
	if ifc == nil {
		panic("netsim: JoinGroup for unknown member " + member.String())
	}
	if n.groups == nil {
		n.groups = make(map[Addr][]*Iface)
	}
	for _, m := range n.groups[group] {
		if m == ifc {
			return
		}
	}
	n.groups[group] = append(n.groups[group], ifc)
}

// LeaveGroup removes the interface owning member from the group,
// preserving the join order of the remaining members.
func (n *Network) LeaveGroup(group, member Addr) {
	ifc := n.routes[member]
	ms := n.groups[group]
	for i, m := range ms {
		if m == ifc {
			n.groups[group] = append(ms[:i:i], ms[i+1:]...)
			return
		}
	}
}

// GroupMembers returns the member addresses of a group in join order.
func (n *Network) GroupMembers(group Addr) []Addr {
	ms := n.groups[group]
	out := make([]Addr, len(ms))
	for i, m := range ms {
		out[i] = m.addr
	}
	return out
}

func (n *Network) pipe(src, dst Addr) *Pipe {
	key := pipeKey{src, dst}
	if p, ok := n.pipes[key]; ok {
		return p
	}
	lp, ok := n.perPair[key]
	if !ok {
		lp = n.def
	}
	p := &Pipe{params: lp}
	n.pipes[key] = p
	return p
}

// send routes a packet from the source interface to its destination.
func (n *Network) send(src *Iface, pkt *Packet) {
	if pkt.Dst.IsMulticast() {
		n.sendMulticast(src, pkt)
		return
	}
	n.Stats.PacketsSent++
	n.Stats.BytesSent += int64(pkt.WireSize())
	if n.Trace != nil {
		n.Trace("send", pkt)
	}
	if n.router != nil {
		if path := n.router.Route(pkt.Src, pkt.Dst); path == nil {
			n.Stats.PacketsNoRoute++
			pkt.Release()
			return
		} else if len(path) > 0 {
			n.sendRouted(src, pkt, path)
			return
		}
		// Empty path: the router defers to the direct pipe below.
	}
	dst := n.routes[pkt.Dst]
	if dst == nil {
		n.Stats.PacketsNoRoute++
		pkt.Release()
		return
	}
	if src.down || dst.down {
		n.Stats.PacketsDown++
		if n.Trace != nil {
			n.Trace("drop-down", pkt)
		}
		pkt.Release()
		return
	}
	p := n.pipe(pkt.Src, pkt.Dst)
	if p.params.Down {
		// Administratively blocked pipe (partition injection). Checked
		// before any RNG draw so that blocking one pair leaves the draw
		// sequence of all other traffic untouched.
		n.Stats.PacketsBlocked++
		p.BlockedDrops++
		if n.Trace != nil {
			n.Trace("drop-blocked", pkt)
		}
		pkt.Release()
		return
	}
	now := n.K.Now()
	txTime := time.Duration(0)
	if p.params.Bandwidth > 0 {
		txTime = time.Duration(int64(pkt.WireSize()) * 8 * int64(time.Second) / p.params.Bandwidth)
	}
	start := now
	if p.busyUntil > start {
		start = p.busyUntil
	}
	if p.params.QueueBytes > 0 && p.params.Bandwidth > 0 {
		backlogBytes := int64(p.busyUntil-now) * p.params.Bandwidth / (8 * int64(time.Second))
		if backlogBytes > int64(p.params.QueueBytes) {
			n.Stats.PacketsQueued++
			p.QueueDrops++
			if n.Trace != nil {
				n.Trace("drop-queue", pkt)
			}
			pkt.Release()
			return
		}
	}
	p.busyUntil = start + txTime
	if p.params.LossRate > 0 && n.K.Rand().Float64() < p.params.LossRate {
		n.Stats.PacketsLost++
		p.LossDrops++
		if n.Trace != nil {
			n.Trace("drop-loss", pkt)
		}
		pkt.Release()
		return
	}
	copies := 1
	if p.params.DupRate > 0 && n.K.Rand().Float64() < p.params.DupRate {
		copies = 2
		n.Stats.PacketsDuped++
		pkt.Retain() // both deliveries alias the same payload; each releases one ref
	}
	if p.params.CorruptRate > 0 && len(pkt.Payload) > 0 &&
		n.K.Rand().Float64() < p.params.CorruptRate {
		// Flip one random payload bit in place (a duplicated copy shares
		// the payload and is corrupted too, like a bad switch port). Both
		// draws are gated on CorruptRate so links without corruption
		// consume exactly the same RNG sequence as before.
		bit := n.K.Rand().Int63n(int64(len(pkt.Payload)) * 8)
		pkt.Payload[bit/8] ^= 1 << uint(bit%8)
		n.Stats.PacketsCorrupted++
		p.CorruptHits++
		if n.Trace != nil {
			n.Trace("corrupt", pkt)
		}
	}
	for i := 0; i < copies; i++ {
		arrive := p.busyUntil - now + p.params.Delay
		if p.params.Jitter > 0 {
			arrive += time.Duration(n.K.Rand().Int63n(int64(p.params.Jitter)))
		}
		n.K.After(arrive, func() {
			if dst.down {
				n.Stats.PacketsDown++
				pkt.Release()
				return
			}
			if n.Trace != nil {
				n.Trace("recv", pkt)
			}
			dst.node.deliver(pkt, dst)
			pkt.Release()
		})
	}
}

// Pipe is one direction of a link between two interfaces.
type Pipe struct {
	params       LinkParams
	busyUntil    time.Duration
	LossDrops    int64
	QueueDrops   int64
	BlockedDrops int64
	CorruptHits  int64
}

// Params returns the pipe's current link parameters.
func (p *Pipe) Params() LinkParams { return p.params }

// SetParams replaces the pipe's link parameters. Topology tests use it
// to inject faults on one specific port without disturbing the rest of
// the fabric.
func (p *Pipe) SetParams(lp LinkParams) { p.params = lp }

// Port is one directed hop in a generated multi-hop topology: a switch
// egress (or host NIC) with its own serialization rate, propagation
// delay, and drop-tail queue, shared by every flow routed through it.
// Contention — the incast pathology — emerges from the shared busyUntil
// the same way it does on a mesh pipe.
type Port struct {
	Pipe
	name string
}

// Name returns the port's topology-assigned name (for diagnostics).
func (p *Port) Name() string { return p.name }

// NewPort registers a directed port with the given parameters. Ports
// participate in UpdateLinkParams and SetLoss like pipes do, so the
// chaos scheduler's link mutations reach generated topologies.
func (n *Network) NewPort(name string, lp LinkParams) *Port {
	p := &Port{Pipe: Pipe{params: lp}, name: name}
	n.ports = append(n.ports, p)
	return p
}

// Router supplies the hop sequence for a packet in a generated
// topology. Returning nil means "no route" (the packet is dropped and
// counted); returning an empty path falls back to the direct per-pair
// pipe, which keeps self-sends and loopback traffic on the mesh path.
type Router interface {
	Route(src, dst Addr) []*Port
}

// SetRouter installs a multi-hop router. With no router (the default)
// the network is the original full mesh of lazy per-pair pipes, and
// the send path is byte-for-byte the historical one.
func (n *Network) SetRouter(r Router) { n.router = r }

// RouterValue returns the installed router, or nil on a mesh network.
func (n *Network) RouterValue() Router { return n.router }

// sendRouted is the multi-hop twin of send: the packet traverses each
// port in order, store-and-forward, paying serialization + queueing +
// propagation per hop and taking loss/duplication/corruption draws only
// on hops configured with nonzero rates. Per-pair admin blocks
// (partition injection) still apply end to end, checked before any RNG
// draw.
func (n *Network) sendRouted(src *Iface, pkt *Packet, path []*Port) {
	dst := n.routes[pkt.Dst]
	if dst == nil {
		n.Stats.PacketsNoRoute++
		pkt.Release()
		return
	}
	if src.down || dst.down {
		n.Stats.PacketsDown++
		if n.Trace != nil {
			n.Trace("drop-down", pkt)
		}
		pkt.Release()
		return
	}
	if lp, ok := n.perPair[pipeKey{pkt.Src, pkt.Dst}]; ok && lp.Down {
		n.Stats.PacketsBlocked++
		if n.Trace != nil {
			n.Trace("drop-blocked", pkt)
		}
		pkt.Release()
		return
	}
	n.hop(path, 0, pkt, dst)
}

// hop runs one store-and-forward stage and schedules the next.
func (n *Network) hop(path []*Port, i int, pkt *Packet, dst *Iface) {
	p := path[i]
	if p.params.Down {
		n.Stats.PacketsBlocked++
		p.BlockedDrops++
		if n.Trace != nil {
			n.Trace("drop-blocked", pkt)
		}
		pkt.Release()
		return
	}
	now := n.K.Now()
	txTime := time.Duration(0)
	if p.params.Bandwidth > 0 {
		txTime = time.Duration(int64(pkt.WireSize()) * 8 * int64(time.Second) / p.params.Bandwidth)
	}
	start := now
	if p.busyUntil > start {
		start = p.busyUntil
	}
	if p.params.QueueBytes > 0 && p.params.Bandwidth > 0 {
		backlogBytes := int64(p.busyUntil-now) * p.params.Bandwidth / (8 * int64(time.Second))
		if backlogBytes > int64(p.params.QueueBytes) {
			n.Stats.PacketsQueued++
			p.QueueDrops++
			if n.Trace != nil {
				n.Trace("drop-queue", pkt)
			}
			pkt.Release()
			return
		}
	}
	p.busyUntil = start + txTime
	if p.params.LossRate > 0 && n.K.Rand().Float64() < p.params.LossRate {
		n.Stats.PacketsLost++
		p.LossDrops++
		if n.Trace != nil {
			n.Trace("drop-loss", pkt)
		}
		pkt.Release()
		return
	}
	copies := 1
	if p.params.DupRate > 0 && n.K.Rand().Float64() < p.params.DupRate {
		copies = 2
		n.Stats.PacketsDuped++
		pkt.Retain() // both copies continue independently; each releases one ref
	}
	if p.params.CorruptRate > 0 && len(pkt.Payload) > 0 &&
		n.K.Rand().Float64() < p.params.CorruptRate {
		bit := n.K.Rand().Int63n(int64(len(pkt.Payload)) * 8)
		pkt.Payload[bit/8] ^= 1 << uint(bit%8)
		n.Stats.PacketsCorrupted++
		p.CorruptHits++
		if n.Trace != nil {
			n.Trace("corrupt", pkt)
		}
	}
	last := i == len(path)-1
	for c := 0; c < copies; c++ {
		arrive := p.busyUntil - now + p.params.Delay
		if p.params.Jitter > 0 {
			arrive += time.Duration(n.K.Rand().Int63n(int64(p.params.Jitter)))
		}
		n.K.After(arrive, func() {
			if last {
				if dst.down {
					n.Stats.PacketsDown++
					pkt.Release()
					return
				}
				if n.Trace != nil {
					n.Trace("recv", pkt)
				}
				dst.node.deliver(pkt, dst)
				pkt.Release()
				return
			}
			n.hop(path, i+1, pkt, dst)
		})
	}
}

// sendMulticast fans a group-addressed packet out to every member of
// the group except those on the sending node. On a mesh network each
// member is reached over its own (src, member) pipe — independent
// serialization, queue, and loss draws per receiver, like sender-side
// replication at the NIC. On a routed topology the per-member unicast
// routes are merged by shared port prefix so shared hops are traversed
// (charged, and drawn) once on behalf of everyone behind them, with
// fan-out happening where the routes diverge — link-layer multicast in
// the switches. All delivered copies alias one payload, like the
// duplication path, so handlers must copy anything they keep.
func (n *Network) sendMulticast(src *Iface, pkt *Packet) {
	n.Stats.PacketsSent++
	n.Stats.PacketsMcast++
	n.Stats.BytesSent += int64(pkt.WireSize())
	if n.Trace != nil {
		n.Trace("msend", pkt)
	}
	if src.down {
		n.Stats.PacketsDown++
		if n.Trace != nil {
			n.Trace("drop-down", pkt)
		}
		pkt.Release()
		return
	}
	members := n.groups[pkt.Dst]
	if len(members) == 0 {
		n.Stats.PacketsNoRoute++
		pkt.Release()
		return
	}
	if n.router != nil {
		n.mcastRouted(src, pkt, members)
		return
	}
	for _, m := range members {
		if m.node == src.node {
			continue
		}
		dst := m
		p := n.pipe(pkt.Src, dst.addr)
		pkt.Retain()
		n.mcastTraverse(p, pkt, func() { n.mcastDeliver(pkt, dst) })
	}
	pkt.Release()
}

// mcastRouted resolves each member's unicast route and starts the
// prefix-merged hop walk. Members the router cannot reach are counted
// as no-route, and an empty route defers to the direct pipe exactly as
// the unicast path does.
func (n *Network) mcastRouted(src *Iface, pkt *Packet, members []*Iface) {
	var dsts []*Iface
	var paths [][]*Port
	for _, m := range members {
		if m.node == src.node {
			continue
		}
		path := n.router.Route(pkt.Src, m.addr)
		if path == nil {
			n.Stats.PacketsNoRoute++
			continue
		}
		if len(path) == 0 {
			dst := m
			p := n.pipe(pkt.Src, dst.addr)
			pkt.Retain()
			n.mcastTraverse(p, pkt, func() { n.mcastDeliver(pkt, dst) })
			continue
		}
		dsts = append(dsts, m)
		paths = append(paths, path)
	}
	if len(dsts) > 0 {
		pkt.Retain()
		n.mcastHop(pkt, dsts, paths, 0)
	}
	pkt.Release()
}

// mcastHop advances one store-and-forward stage of a routed multicast
// subtree. Members are partitioned by their egress port at this stage
// in first-seen (join) order, so replay is deterministic; each distinct
// port is traversed once — one serialization slot, one loss draw — on
// behalf of every member behind it. The final hop of each route is the
// receiver's host-facing port, which no other member shares, so
// last-hop loss and queue draws are independent per receiver. The
// caller hands over one packet reference per call.
func (n *Network) mcastHop(pkt *Packet, dsts []*Iface, paths [][]*Port, stage int) {
	type subgroup struct {
		port *Port
		idx  []int
	}
	var groups []subgroup
	for i := range paths {
		p := paths[i][stage]
		found := false
		for g := range groups {
			if groups[g].port == p {
				groups[g].idx = append(groups[g].idx, i)
				found = true
				break
			}
		}
		if !found {
			groups = append(groups, subgroup{port: p, idx: []int{i}})
		}
	}
	for _, g := range groups {
		gDsts := make([]*Iface, len(g.idx))
		gPaths := make([][]*Port, len(g.idx))
		for j, i := range g.idx {
			gDsts[j], gPaths[j] = dsts[i], paths[i]
		}
		st := stage
		pkt.Retain()
		n.mcastTraverse(&g.port.Pipe, pkt, func() {
			n.mcastArrive(pkt, gDsts, gPaths, st)
		})
	}
	pkt.Release()
}

// mcastArrive handles a multicast copy emerging from a port: members
// whose route ends at this stage are delivered, the rest continue to
// the next stage as one subtree.
func (n *Network) mcastArrive(pkt *Packet, dsts []*Iface, paths [][]*Port, stage int) {
	var contDsts []*Iface
	var contPaths [][]*Port
	for i := range paths {
		if stage == len(paths[i])-1 {
			pkt.Retain()
			n.mcastDeliver(pkt, dsts[i])
		} else {
			contDsts = append(contDsts, dsts[i])
			contPaths = append(contPaths, paths[i])
		}
	}
	if len(contDsts) > 0 {
		pkt.Retain()
		n.mcastHop(pkt, contDsts, contPaths, stage+1)
	}
	pkt.Release()
}

// mcastTraverse charges one traversal of a pipe or port to a multicast
// packet and schedules the continuation at the arrival time, once per
// surviving copy. The draw sequence — admin-down, queue backlog, loss,
// duplication, corruption, jitter — matches the unicast path exactly,
// so a multicast hop perturbs a link's RNG stream the same way a
// unicast packet would. The caller hands over one packet reference;
// each invocation of then owns one.
func (n *Network) mcastTraverse(p *Pipe, pkt *Packet, then func()) {
	if p.params.Down {
		n.Stats.PacketsBlocked++
		p.BlockedDrops++
		if n.Trace != nil {
			n.Trace("drop-blocked", pkt)
		}
		pkt.Release()
		return
	}
	now := n.K.Now()
	txTime := time.Duration(0)
	if p.params.Bandwidth > 0 {
		txTime = time.Duration(int64(pkt.WireSize()) * 8 * int64(time.Second) / p.params.Bandwidth)
	}
	start := now
	if p.busyUntil > start {
		start = p.busyUntil
	}
	if p.params.QueueBytes > 0 && p.params.Bandwidth > 0 {
		backlogBytes := int64(p.busyUntil-now) * p.params.Bandwidth / (8 * int64(time.Second))
		if backlogBytes > int64(p.params.QueueBytes) {
			n.Stats.PacketsQueued++
			p.QueueDrops++
			if n.Trace != nil {
				n.Trace("drop-queue", pkt)
			}
			pkt.Release()
			return
		}
	}
	p.busyUntil = start + txTime
	if p.params.LossRate > 0 && n.K.Rand().Float64() < p.params.LossRate {
		n.Stats.PacketsLost++
		p.LossDrops++
		if n.Trace != nil {
			n.Trace("drop-loss", pkt)
		}
		pkt.Release()
		return
	}
	copies := 1
	if p.params.DupRate > 0 && n.K.Rand().Float64() < p.params.DupRate {
		copies = 2
		n.Stats.PacketsDuped++
		pkt.Retain() // both copies continue independently; each owns one ref
	}
	if p.params.CorruptRate > 0 && len(pkt.Payload) > 0 &&
		n.K.Rand().Float64() < p.params.CorruptRate {
		bit := n.K.Rand().Int63n(int64(len(pkt.Payload)) * 8)
		pkt.Payload[bit/8] ^= 1 << uint(bit%8)
		n.Stats.PacketsCorrupted++
		p.CorruptHits++
		if n.Trace != nil {
			n.Trace("corrupt", pkt)
		}
	}
	for c := 0; c < copies; c++ {
		arrive := p.busyUntil - now + p.params.Delay
		if p.params.Jitter > 0 {
			arrive += time.Duration(n.K.Rand().Int63n(int64(p.params.Jitter)))
		}
		n.K.After(arrive, then)
	}
}

// mcastDeliver hands one multicast copy to the receiving interface,
// consuming one packet reference.
func (n *Network) mcastDeliver(pkt *Packet, dst *Iface) {
	if dst.down {
		n.Stats.PacketsDown++
		pkt.Release()
		return
	}
	n.Stats.McastDeliveries++
	if n.Trace != nil {
		n.Trace("mrecv", pkt)
	}
	dst.node.deliver(pkt, dst)
	pkt.Release()
}

// Handler receives packets demultiplexed to a protocol on a node.
type Handler func(pkt *Packet, ifc *Iface)

// Node is a host with one or more interfaces.
type Node struct {
	net    *Network
	name   string
	ifaces []*Iface
	protos map[uint8]Handler
}

// Name returns the node name.
func (nd *Node) Name() string { return nd.name }

// Network returns the owning network.
func (nd *Node) Network() *Network { return nd.net }

// Kernel returns the simulation kernel.
func (nd *Node) Kernel() *sim.Kernel { return nd.net.K }

// AddInterface attaches an interface with the given address.
func (nd *Node) AddInterface(addr Addr) *Iface {
	if nd.net.routes[addr] != nil {
		panic("netsim: duplicate address " + addr.String())
	}
	ifc := &Iface{node: nd, addr: addr}
	nd.ifaces = append(nd.ifaces, ifc)
	nd.net.routes[addr] = ifc
	return ifc
}

// Interfaces returns the node's interfaces in creation order.
func (nd *Node) Interfaces() []*Iface { return nd.ifaces }

// Addrs returns the addresses of all the node's interfaces.
func (nd *Node) Addrs() []Addr {
	out := make([]Addr, len(nd.ifaces))
	for i, ifc := range nd.ifaces {
		out[i] = ifc.addr
	}
	return out
}

// Addr returns the node's primary (first) address.
func (nd *Node) Addr() Addr { return nd.ifaces[0].addr }

// Handle registers the handler for an IP protocol number.
func (nd *Node) Handle(proto uint8, h Handler) { nd.protos[proto] = h }

// Owns reports whether addr belongs to one of the node's interfaces.
func (nd *Node) Owns(addr Addr) bool {
	for _, ifc := range nd.ifaces {
		if ifc.addr == addr {
			return true
		}
	}
	return false
}

// MTU returns the payload MTU for packets sent from src to dst: the
// minimum along the routed path in a generated topology, the per-pair
// pipe's otherwise.
func (nd *Node) MTU(src, dst Addr) int {
	if nd.net.router != nil {
		if path := nd.net.router.Route(src, dst); len(path) > 0 {
			m := path[0].params.mtu()
			for _, p := range path[1:] {
				if pm := p.params.mtu(); pm < m {
					m = pm
				}
			}
			return m
		}
	}
	return nd.net.pipe(src, dst).params.mtu()
}

// Send transmits a packet whose Src must be one of the node's interface
// addresses.
func (nd *Node) Send(pkt *Packet) {
	for _, ifc := range nd.ifaces {
		if ifc.addr == pkt.Src {
			nd.net.send(ifc, pkt)
			return
		}
	}
	panic(fmt.Sprintf("netsim: node %s sending from foreign address %s", nd.name, pkt.Src))
}

func (nd *Node) deliver(pkt *Packet, ifc *Iface) {
	if h := nd.protos[pkt.Proto]; h != nil {
		h(pkt, ifc)
	}
}

// Iface is a network interface bound to one address.
type Iface struct {
	node *Node
	addr Addr
	down bool
}

// Addr returns the interface address.
func (i *Iface) Addr() Addr { return i.addr }

// Node returns the owning node.
func (i *Iface) Node() *Node { return i.node }

// Down reports whether the interface is administratively down.
func (i *Iface) Down() bool { return i.down }

// Cluster builds the paper's testbed: n nodes, each with ifacesPerNode
// interfaces on distinct subnets (three in the paper), full-mesh
// connectivity with the given default link parameters.
func Cluster(k *sim.Kernel, n, ifacesPerNode int, lp LinkParams) (*Network, []*Node) {
	net := NewNetwork(k)
	net.SetDefaultLinkParams(lp)
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		nd := net.NewNode(fmt.Sprintf("n%d", i))
		for s := 0; s < ifacesPerNode; s++ {
			nd.AddInterface(MakeAddr(s, i+1))
		}
		nodes[i] = nd
	}
	return net, nodes
}
