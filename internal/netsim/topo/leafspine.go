package topo

import (
	"fmt"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// leafSpine routes over a two-tier Clos: host h under leaf h/hostsPerLeaf,
// every leaf wired to every spine. Cross-leaf traffic takes 4 hops
// (host NIC, leaf uplink, spine downlink, leaf downlink); the spine is
// a deterministic ECMP hash of the flow.
type leafSpine struct {
	hosts, perLeaf int

	hostUp    []*netsim.Port   // host NIC -> leaf
	hostDown  []*netsim.Port   // leaf -> host
	leafUp    [][]*netsim.Port // [leaf][spine]
	spineDown [][]*netsim.Port // [spine][leaf]

	arena []*netsim.Port
}

func buildLeafSpine(k *sim.Kernel, hosts int, cfg Config, hostLP, fabricLP netsim.LinkParams) (*Net, error) {
	perLeaf := cfg.HostsPerLeaf
	if perLeaf == 0 {
		perLeaf = 16
	}
	leaves := cfg.Leaves
	if leaves == 0 {
		leaves = (hosts + perLeaf - 1) / perLeaf
		if leaves < 2 {
			leaves = 2
		}
	}
	spines := cfg.Spines
	if spines == 0 {
		spines = leaves / 2
		if spines < 2 {
			spines = 2
		}
	}
	if perLeaf < 1 || leaves < 1 || spines < 1 {
		return nil, fmt.Errorf("topo: leaf-spine needs positive dimensions (leaves=%d spines=%d hostsPerLeaf=%d)", leaves, spines, perLeaf)
	}
	if hosts > leaves*perLeaf {
		return nil, fmt.Errorf("topo: %d hosts exceed %d leaves x %d hosts/leaf", hosts, leaves, perLeaf)
	}
	net := netsim.NewNetwork(k)
	nodes, hostUp := newHosts(net, hosts, hostLP)
	ls := &leafSpine{hosts: hosts, perLeaf: perLeaf, hostUp: hostUp}
	ls.hostDown = make([]*netsim.Port, hosts)
	for h := 0; h < hosts; h++ {
		ls.hostDown[h] = net.NewPort(fmt.Sprintf("l%d-h%d", h/perLeaf, h), hostLP)
	}
	ls.leafUp = make([][]*netsim.Port, leaves)
	ls.spineDown = make([][]*netsim.Port, spines)
	for s := 0; s < spines; s++ {
		ls.spineDown[s] = make([]*netsim.Port, leaves)
	}
	for l := 0; l < leaves; l++ {
		ls.leafUp[l] = make([]*netsim.Port, spines)
		for s := 0; s < spines; s++ {
			ls.leafUp[l][s] = net.NewPort(fmt.Sprintf("l%d-s%d", l, s), fabricLP)
			ls.spineDown[s][l] = net.NewPort(fmt.Sprintf("s%d-l%d", s, l), fabricLP)
		}
	}
	net.SetRouter(ls)
	return &Net{
		Network:  net,
		Hosts:    nodes,
		Kind:     LeafSpine,
		Switches: leaves + spines,
		Ports:    2*hosts + 2*leaves*spines,
		MaxHops:  4,
	}, nil
}

func (ls *leafSpine) path(n int) []*netsim.Port {
	if len(ls.arena) < n {
		ls.arena = make([]*netsim.Port, 4096)
	}
	p := ls.arena[:n:n]
	ls.arena = ls.arena[n:]
	return p
}

func (ls *leafSpine) Route(src, dst netsim.Addr) []*netsim.Port {
	hs := hostIndex(src, ls.hosts)
	hd := hostIndex(dst, ls.hosts)
	if hs < 0 || hd < 0 {
		return nil
	}
	if hs == hd {
		return []*netsim.Port{}
	}
	leafS, leafD := hs/ls.perLeaf, hd/ls.perLeaf
	if leafS == leafD {
		p := ls.path(2)
		p[0] = ls.hostUp[hs]
		p[1] = ls.hostDown[hd]
		return p
	}
	s := pathHash(hs, hd, 0) % len(ls.spineDown)
	p := ls.path(4)
	p[0] = ls.hostUp[hs]
	p[1] = ls.leafUp[leafS][s]
	p[2] = ls.spineDown[s][leafD]
	p[3] = ls.hostDown[hd]
	return p
}
