package topo

import (
	"fmt"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// fatTree routes over the classic k-ary fat-tree (Al-Fahad-style): host
// h sits under edge switch h/(k/2) of pod h/((k/2)^2). Aggregation
// switch a of every pod uplinks to cores [a*k/2, (a+1)*k/2), so a core
// determines the aggregation switch it reaches in every pod — the
// standard two-level ECMP: choosing (agg, core) at the source edge
// fixes the whole path.
type fatTree struct {
	k     int
	hosts int

	// Directed egress ports, indexed by the switch the packet leaves.
	hostUp   []*netsim.Port   // host NIC -> edge
	hostDown []*netsim.Port   // edge -> host
	edgeUp   [][]*netsim.Port // [pod*k/2+edge][agg] edge -> aggregation
	aggDown  [][]*netsim.Port // [pod*k/2+agg][edge] aggregation -> edge
	aggUp    [][]*netsim.Port // [pod*k/2+agg][j] aggregation -> core a*k/2+j
	coreDown [][]*netsim.Port // [core][pod] core -> aggregation core/(k/2) of pod

	// scratch reused across Route calls: routing is synchronous (the
	// caller copies nothing and the network schedules hops before the
	// next send), but hop closures retain the slice, so each route gets
	// a fresh small slice from a chunked arena instead.
	arena []*netsim.Port
}

func buildFatTree(k *sim.Kernel, hosts, radix int, hostLP, fabricLP netsim.LinkParams) (*Net, error) {
	if radix == 0 {
		for radix = 4; radix*radix*radix/4 < hosts; radix += 2 {
		}
	}
	if radix < 2 || radix%2 != 0 {
		return nil, fmt.Errorf("topo: fat-tree radix must be even and >= 2, got %d", radix)
	}
	capacity := radix * radix * radix / 4
	if hosts > capacity {
		return nil, fmt.Errorf("topo: %d hosts exceed k=%d fat-tree capacity %d", hosts, radix, capacity)
	}
	net := netsim.NewNetwork(k)
	half := radix / 2
	nodes, hostUp := newHosts(net, hosts, hostLP)

	ft := &fatTree{k: radix, hosts: hosts, hostUp: hostUp}
	ft.hostDown = make([]*netsim.Port, hosts)
	for h := 0; h < hosts; h++ {
		ft.hostDown[h] = net.NewPort(fmt.Sprintf("e%d-h%d", h/half, h), hostLP)
	}
	nEdge := radix * half // == nAgg
	ft.edgeUp = make([][]*netsim.Port, nEdge)
	ft.aggDown = make([][]*netsim.Port, nEdge)
	ft.aggUp = make([][]*netsim.Port, nEdge)
	for i := 0; i < nEdge; i++ {
		pod := i / half
		ft.edgeUp[i] = make([]*netsim.Port, half)
		ft.aggDown[i] = make([]*netsim.Port, half)
		ft.aggUp[i] = make([]*netsim.Port, half)
		for j := 0; j < half; j++ {
			ft.edgeUp[i][j] = net.NewPort(fmt.Sprintf("p%de%d-a%d", pod, i%half, j), fabricLP)
			ft.aggDown[i][j] = net.NewPort(fmt.Sprintf("p%da%d-e%d", pod, i%half, j), fabricLP)
			ft.aggUp[i][j] = net.NewPort(fmt.Sprintf("p%da%d-c%d", pod, i%half, (i%half)*half+j), fabricLP)
		}
	}
	nCore := half * half
	ft.coreDown = make([][]*netsim.Port, nCore)
	for c := 0; c < nCore; c++ {
		ft.coreDown[c] = make([]*netsim.Port, radix)
		for pod := 0; pod < radix; pod++ {
			ft.coreDown[c][pod] = net.NewPort(fmt.Sprintf("c%d-p%d", c, pod), fabricLP)
		}
	}
	net.SetRouter(ft)
	ports := 2*hosts + nEdge*3*half + nCore*radix
	return &Net{
		Network:  net,
		Hosts:    nodes,
		Kind:     FatTree,
		Switches: 2*nEdge + nCore,
		Ports:    ports,
		MaxHops:  6,
	}, nil
}

// path carves an n-hop slice out of the arena.
func (ft *fatTree) path(n int) []*netsim.Port {
	if len(ft.arena) < n {
		ft.arena = make([]*netsim.Port, 4096)
	}
	p := ft.arena[:n:n]
	ft.arena = ft.arena[n:]
	return p
}

func (ft *fatTree) Route(src, dst netsim.Addr) []*netsim.Port {
	hs := hostIndex(src, ft.hosts)
	hd := hostIndex(dst, ft.hosts)
	if hs < 0 || hd < 0 {
		return nil
	}
	if hs == hd {
		// Loopback: defer to the direct pipe, like the mesh.
		return []*netsim.Port{}
	}
	half := ft.k / 2
	es, ed := hs/half, hd/half // global edge indices
	if es == ed {
		p := ft.path(2)
		p[0] = ft.hostUp[hs]
		p[1] = ft.hostDown[hd]
		return p
	}
	ps, pd := es/half, ed/half // pods
	a := pathHash(hs, hd, 0) % half
	if ps == pd {
		p := ft.path(4)
		p[0] = ft.hostUp[hs]
		p[1] = ft.edgeUp[es][a]
		p[2] = ft.aggDown[ps*half+a][ed%half]
		p[3] = ft.hostDown[hd]
		return p
	}
	j := pathHash(hs, hd, 1) % half
	core := a*half + j
	p := ft.path(6)
	p[0] = ft.hostUp[hs]
	p[1] = ft.edgeUp[es][a]
	p[2] = ft.aggUp[ps*half+a][j]
	p[3] = ft.coreDown[core][pd]
	p[4] = ft.aggDown[pd*half+a][ed%half]
	p[5] = ft.hostDown[hd]
	return p
}
