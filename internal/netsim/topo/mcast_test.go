package topo

import (
	"testing"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// buildMcastFabric joins every host of a freshly built fabric into one
// multicast group and installs per-host delivery counters.
func buildMcastFabric(t *testing.T, seed int64, hosts int, cfg Config) (*sim.Kernel, *Net, netsim.Addr, []int) {
	t.Helper()
	k := sim.New(seed)
	n, err := Build(k, hosts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	group := netsim.MakeGroupAddr(3)
	got := make([]int, hosts)
	for h, host := range n.Hosts {
		n.Network.JoinGroup(group, host.Addr())
		idx := h
		host.Handle(99, func(pkt *netsim.Packet, ifc *netsim.Iface) { got[idx]++ })
	}
	return k, n, group, got
}

// TestFatTreeMulticastFanOut pins the routed multicast path through a
// fat-tree: one wire send reaches every other member exactly once, and
// the fabric replicates at switch stages rather than at the source (the
// delivery count exceeds the send count while PacketsSent stays 1).
func TestFatTreeMulticastFanOut(t *testing.T) {
	k, n, group, got := buildMcastFabric(t, 1, 16, Config{Kind: FatTree, K: 4})
	src := n.Hosts[0]
	k.After(0, func() {
		src.Send(&netsim.Packet{Src: src.Addr(), Dst: group, Proto: 99, Payload: []byte("mc")})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got[0] != 0 {
		t.Fatalf("sender self-delivered %d copies", got[0])
	}
	for h := 1; h < len(got); h++ {
		if got[h] != 1 {
			t.Fatalf("host %d got %d copies, want 1", h, got[h])
		}
	}
	st := n.Network.Stats
	if st.PacketsSent != 1 || st.PacketsMcast != 1 {
		t.Fatalf("sent/mcast = %d/%d, want 1/1 (hops are not sends)", st.PacketsSent, st.PacketsMcast)
	}
	if st.McastDeliveries != 15 {
		t.Fatalf("deliveries = %d, want 15", st.McastDeliveries)
	}
}

// TestFatTreeMulticastSharedHopDraw is the routed dual of the mesh
// per-receiver-draw test in netsim: all 15 receiver paths leave host 0
// through the same up-port, so LossRate 1.0 burns the packet in ONE
// draw at that shared first hop — not one loss per receiver the way the
// mesh fallback does.
func TestFatTreeMulticastSharedHopDraw(t *testing.T) {
	k, n, group, got := buildMcastFabric(t, 1, 16, Config{Kind: FatTree, K: 4})
	n.Network.SetLoss(1.0)
	src := n.Hosts[0]
	k.After(0, func() {
		src.Send(&netsim.Packet{Src: src.Addr(), Dst: group, Proto: 99, Payload: []byte("mc")})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for h, g := range got {
		if g != 0 {
			t.Fatalf("host %d got %d copies through LossRate 1.0", h, g)
		}
	}
	if n.Network.Stats.PacketsLost != 1 {
		t.Fatalf("losses = %d, want 1 (single draw at the shared first hop)",
			n.Network.Stats.PacketsLost)
	}
}

// TestFatTreeMulticastSubtreeLoss drops the replicated copy on one
// host's last-hop port and checks the blast radius: only the host
// behind that port misses the packet.
func TestFatTreeMulticastSubtreeLoss(t *testing.T) {
	k, n, group, got := buildMcastFabric(t, 1, 16, Config{Kind: FatTree, K: 4})
	// The last hop toward host 5 is its edge switch's down-port; kill it.
	r := n.Network.RouterValue()
	path := r.Route(n.Hosts[0].Addr(), n.Hosts[5].Addr())
	if len(path) == 0 {
		t.Fatal("expected a routed path to host 5")
	}
	lossy := path[len(path)-1].Params()
	lossy.LossRate = 1.0
	path[len(path)-1].SetParams(lossy)
	src := n.Hosts[0]
	k.After(0, func() {
		src.Send(&netsim.Packet{Src: src.Addr(), Dst: group, Proto: 99, Payload: []byte("mc")})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for h := 1; h < len(got); h++ {
		want := 1
		if h == 5 {
			want = 0
		}
		if got[h] != want {
			t.Fatalf("host %d got %d copies, want %d", h, got[h], want)
		}
	}
	if n.Network.Stats.PacketsLost != 1 {
		t.Fatalf("losses = %d, want 1 (only host 5's last hop)", n.Network.Stats.PacketsLost)
	}
}

// TestLeafSpineMulticastFanOut runs the same world-group fan-out over a
// leaf-spine fabric: same-leaf members replicate at the leaf without
// touching a spine, so deliveries again exceed wire sends.
func TestLeafSpineMulticastFanOut(t *testing.T) {
	k, n, group, got := buildMcastFabric(t, 1, 48, Config{Kind: LeafSpine})
	src := n.Hosts[0]
	k.After(0, func() {
		src.Send(&netsim.Packet{Src: src.Addr(), Dst: group, Proto: 99, Payload: []byte("mc")})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for h := 1; h < len(got); h++ {
		if got[h] != 1 {
			t.Fatalf("host %d got %d copies, want 1", h, got[h])
		}
	}
	st := n.Network.Stats
	if st.PacketsMcast != 1 || st.McastDeliveries != 47 {
		t.Fatalf("mcast/deliveries = %d/%d, want 1/47", st.PacketsMcast, st.McastDeliveries)
	}
}
