// Package topo generates multi-hop data-centre topologies — k-ary
// fat-trees and leaf-spine fabrics — on top of netsim's Router/Port
// machinery. Switches are not netsim nodes: a route is the ordered list
// of directed egress ports a packet serializes through, so only hosts
// carry protocol stacks and the fabric stays cheap at 1024 hosts.
//
// Path selection is deterministic ECMP: the uplink at each stage is an
// arithmetic hash of (src, dst), so a flow always takes the same path
// and a run is exactly reproducible — no RNG draws are consumed by
// routing.
package topo

import (
	"fmt"
	"time"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// Kind selects the generated topology family.
type Kind int

// Topology families.
const (
	// FatTree is the classic k-ary fat-tree: k pods of k/2 edge and
	// k/2 aggregation switches, (k/2)^2 cores, k^3/4 hosts, full
	// bisection bandwidth.
	FatTree Kind = iota
	// LeafSpine is a two-tier Clos: every leaf connects to every
	// spine; hosts hang off leaves.
	LeafSpine
)

func (k Kind) String() string {
	switch k {
	case FatTree:
		return "fattree"
	case LeafSpine:
		return "leafspine"
	}
	return "?"
}

// ParseKind resolves a command-line topology name ("fattree",
// "leafspine").
func ParseKind(name string) (Kind, error) {
	switch name {
	case "fattree":
		return FatTree, nil
	case "leafspine":
		return LeafSpine, nil
	}
	return 0, fmt.Errorf("topo: unknown topology %q (have fattree, leafspine)", name)
}

// Config describes a generated topology. Zero structural fields are
// auto-sized from the host count passed to Build, so callers can say
// just {Kind: FatTree} and scale with the job.
type Config struct {
	Kind Kind

	// K is the fat-tree switch radix (even). 0 auto-sizes to the
	// smallest radix whose k^3/4 host capacity fits the job.
	K int

	// Leaves/Spines/HostsPerLeaf shape a leaf-spine fabric. Zero
	// auto-sizes: hostsPerLeaf defaults to 16, leaves to fit the job,
	// spines to leaves/2 (2:1 oversubscription), minimum 2.
	Leaves, Spines, HostsPerLeaf int

	// HostLink styles host NIC and switch-to-host ports; FabricLink
	// styles switch-to-switch ports. Nil uses netsim defaults with a
	// 5 µs per-hop delay (a 6-hop fat-tree worst case stays LAN-scale).
	HostLink, FabricLink *netsim.LinkParams
}

// Net is a built topology: the network with its router installed, the
// host nodes in rank order, and structural counts for reporting.
type Net struct {
	Network  *netsim.Network
	Hosts    []*netsim.Node
	Kind     Kind
	Switches int
	Ports    int
	MaxHops  int
}

// defaultLink is the per-hop port style: same 1 Gb/s rate and queue
// bound as the mesh testbed, but a shorter per-hop propagation delay so
// multi-hop paths stay LAN-scale end to end.
func defaultLink() netsim.LinkParams {
	lp := netsim.DefaultLinkParams()
	lp.Delay = 5 * time.Microsecond
	return lp
}

// Build constructs the topology for `hosts` hosts on a fresh network.
func Build(k *sim.Kernel, hosts int, cfg Config) (*Net, error) {
	if hosts < 1 {
		return nil, fmt.Errorf("topo: need at least 1 host, got %d", hosts)
	}
	hostLP := defaultLink()
	if cfg.HostLink != nil {
		hostLP = *cfg.HostLink
	}
	fabricLP := defaultLink()
	if cfg.FabricLink != nil {
		fabricLP = *cfg.FabricLink
	}
	switch cfg.Kind {
	case FatTree:
		return buildFatTree(k, hosts, cfg.K, hostLP, fabricLP)
	case LeafSpine:
		return buildLeafSpine(k, hosts, cfg, hostLP, fabricLP)
	}
	return nil, fmt.Errorf("topo: unknown kind %d", int(cfg.Kind))
}

// newHosts creates the host nodes with contiguous rank-ordered
// addresses 10.0.0.1+ (16-bit host field) and a NIC-up port each.
func newHosts(net *netsim.Network, hosts int, hostLP netsim.LinkParams) ([]*netsim.Node, []*netsim.Port) {
	nodes := make([]*netsim.Node, hosts)
	up := make([]*netsim.Port, hosts)
	for h := 0; h < hosts; h++ {
		nd := net.NewNode(fmt.Sprintf("h%d", h))
		nd.AddInterface(netsim.MakeAddr(0, h+1))
		nodes[h] = nd
		up[h] = net.NewPort(fmt.Sprintf("h%d-up", h), hostLP)
	}
	return nodes, up
}

// hostIndex maps an address back to the dense host index, or -1.
func hostIndex(a netsim.Addr, n int) int {
	h := int(a) - int(netsim.MakeAddr(0, 1))
	if h < 0 || h >= n {
		return -1
	}
	return h
}

// pathHash mixes (src, dst, stage) into a deterministic uplink choice.
func pathHash(src, dst, stage int) int {
	x := uint64(src)*0x9e3779b97f4a7c15 ^ uint64(dst)*0xc2b2ae3d27d4eb4f ^ uint64(stage)*0x165667b19e3779f9
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return int(x >> 1) // keep it non-negative
}
