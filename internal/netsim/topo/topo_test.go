package topo

import (
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/sim"
)

func TestFatTreeStructure(t *testing.T) {
	k := sim.New(1)
	n, err := Build(k, 16, Config{Kind: FatTree})
	if err != nil {
		t.Fatal(err)
	}
	// 16 hosts auto-size to radix 4: 4 pods x (2 edge + 2 agg) + 4 cores.
	if n.Switches != 20 {
		t.Fatalf("k=4 fat-tree has %d switches, want 20", n.Switches)
	}
	if len(n.Hosts) != 16 {
		t.Fatalf("hosts = %d, want 16", len(n.Hosts))
	}
	if n.MaxHops != 6 {
		t.Fatalf("max hops = %d, want 6", n.MaxHops)
	}
	// 1024 hosts need radix 16 (16^3/4 = 1024).
	big, err := Build(sim.New(1), 1024, Config{Kind: FatTree})
	if err != nil {
		t.Fatal(err)
	}
	if len(big.Hosts) != 1024 {
		t.Fatalf("hosts = %d, want 1024", len(big.Hosts))
	}
	if big.Switches != 2*16*8+64 {
		t.Fatalf("k=16 fat-tree has %d switches, want %d", big.Switches, 2*16*8+64)
	}
	if _, err := Build(sim.New(1), 17, Config{Kind: FatTree, K: 4}); err == nil {
		t.Fatal("17 hosts on a k=4 tree must fail")
	}
	if _, err := Build(sim.New(1), 8, Config{Kind: FatTree, K: 3}); err == nil {
		t.Fatal("odd radix must fail")
	}
}

func TestFatTreeRouteShape(t *testing.T) {
	k := sim.New(1)
	n, err := Build(k, 16, Config{Kind: FatTree, K: 4})
	if err != nil {
		t.Fatal(err)
	}
	ft := func(h int) netsim.Addr { return n.Hosts[h].Addr() }
	r := routerOf(t, n)
	cases := []struct {
		src, dst, hops int
	}{
		{0, 1, 2},  // same edge
		{0, 2, 4},  // same pod, different edge
		{0, 4, 6},  // different pod
		{3, 15, 6}, // far corner
	}
	for _, c := range cases {
		p := r.Route(ft(c.src), ft(c.dst))
		if len(p) != c.hops {
			t.Fatalf("route %d->%d has %d hops, want %d", c.src, c.dst, len(p), c.hops)
		}
		// Deterministic ECMP: the same flow always takes the same path.
		q := r.Route(ft(c.src), ft(c.dst))
		for i := range p {
			if p[i] != q[i] {
				t.Fatalf("route %d->%d not deterministic at hop %d", c.src, c.dst, i)
			}
		}
	}
	if p := r.Route(ft(5), ft(5)); p == nil || len(p) != 0 {
		t.Fatal("self route must defer to the direct pipe (empty non-nil path)")
	}
	if p := r.Route(netsim.MakeAddr(3, 9), ft(0)); p != nil {
		t.Fatal("foreign source must have no route")
	}
}

func routerOf(t *testing.T, n *Net) netsim.Router {
	t.Helper()
	return n.Network.RouterValue()
}

// TestFatTreeDelivery sends one packet across pods and checks
// store-and-forward arithmetic: each hop charges serialization plus
// propagation.
func TestFatTreeDelivery(t *testing.T) {
	k := sim.New(1)
	n, err := Build(k, 16, Config{Kind: FatTree, K: 4})
	if err != nil {
		t.Fatal(err)
	}
	src, dst := n.Hosts[0], n.Hosts[12]
	var got []byte
	var at time.Duration
	dst.Handle(netsim.ProtoTCP, func(pkt *netsim.Packet, ifc *netsim.Iface) {
		got = append([]byte(nil), pkt.Payload...)
		at = k.Now()
	})
	payload := make([]byte, 1000)
	payload[0] = 0xAB
	k.After(0, func() {
		src.Send(&netsim.Packet{Src: src.Addr(), Dst: dst.Addr(), Proto: netsim.ProtoTCP, Payload: payload})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got == nil || got[0] != 0xAB {
		t.Fatal("packet not delivered")
	}
	// 6 hops x (tx + 5 µs): tx = 1020 B * 8 / 1 Gb/s = 8.16 µs.
	tx := time.Duration(int64(1020) * 8 * int64(time.Second) / 1e9)
	want := 6 * (tx + 5*time.Microsecond)
	if at != want {
		t.Fatalf("cross-pod delivery at %v, want %v", at, want)
	}
	if n.Network.Stats.PacketsSent != 1 {
		t.Fatalf("PacketsSent = %d, want 1 (hops are not packet sends)", n.Network.Stats.PacketsSent)
	}
}

// TestFatTreeIncast drives an N-to-1 fan-in and checks the receiver's
// edge-to-host port serializes the aggregate: total time ~= N x tx, and
// a tight queue bound sheds packets at that port.
func TestFatTreeIncast(t *testing.T) {
	k := sim.New(1)
	n, err := Build(k, 16, Config{Kind: FatTree, K: 4})
	if err != nil {
		t.Fatal(err)
	}
	recv := 0
	n.Hosts[0].Handle(netsim.ProtoTCP, func(pkt *netsim.Packet, ifc *netsim.Iface) { recv++ })
	senders := 15
	size := 1000
	k.After(0, func() {
		for s := 1; s <= senders; s++ {
			src := n.Hosts[s]
			src.Send(&netsim.Packet{Src: src.Addr(), Dst: n.Hosts[0].Addr(), Proto: netsim.ProtoTCP, Payload: make([]byte, size)})
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if recv != senders {
		t.Fatalf("received %d packets, want %d", recv, senders)
	}
	tx := time.Duration(int64(size+20) * 8 * int64(time.Second) / 1e9)
	// The last arrival must be gated by the shared down-port draining
	// all 15 transmissions, not by path latency.
	if k.Now() < time.Duration(senders)*tx {
		t.Fatalf("incast drained in %v, faster than the bottleneck port allows (%v)", k.Now(), time.Duration(senders)*tx)
	}

	// Same fan-in with a queue bound of ~4 packets must shed load at
	// exactly one place: the receiver's edge-to-host port.
	k2 := sim.New(1)
	lp := defaultLink()
	lp.QueueBytes = 4 * (size + 20)
	n2, err := Build(k2, 16, Config{Kind: FatTree, K: 4, HostLink: &lp})
	if err != nil {
		t.Fatal(err)
	}
	recv2 := 0
	n2.Hosts[0].Handle(netsim.ProtoTCP, func(pkt *netsim.Packet, ifc *netsim.Iface) { recv2++ })
	k2.After(0, func() {
		for s := 1; s <= senders; s++ {
			src := n2.Hosts[s]
			src.Send(&netsim.Packet{Src: src.Addr(), Dst: n2.Hosts[0].Addr(), Proto: netsim.ProtoTCP, Payload: make([]byte, size)})
		}
	})
	if err := k2.Run(); err != nil {
		t.Fatal(err)
	}
	if n2.Network.Stats.PacketsQueued == 0 {
		t.Fatal("tight queue bound produced no incast drops")
	}
	if recv2+int(n2.Network.Stats.PacketsQueued) != senders {
		t.Fatalf("delivered %d + dropped %d != sent %d", recv2, n2.Network.Stats.PacketsQueued, senders)
	}
}

func TestLeafSpine(t *testing.T) {
	k := sim.New(1)
	n, err := Build(k, 48, Config{Kind: LeafSpine})
	if err != nil {
		t.Fatal(err)
	}
	// 48 hosts / 16 per leaf = 3 leaves, spines = max(2, 3/2) = 2... spines=1? leaves/2=1 -> min 2.
	if n.Switches != 3+2 {
		t.Fatalf("leaf-spine has %d switches, want 5", n.Switches)
	}
	r := n.Network.RouterValue()
	same := r.Route(n.Hosts[0].Addr(), n.Hosts[1].Addr())
	if len(same) != 2 {
		t.Fatalf("same-leaf route has %d hops, want 2", len(same))
	}
	cross := r.Route(n.Hosts[0].Addr(), n.Hosts[40].Addr())
	if len(cross) != 4 {
		t.Fatalf("cross-leaf route has %d hops, want 4", len(cross))
	}
	var got bool
	n.Hosts[40].Handle(netsim.ProtoSCTP, func(pkt *netsim.Packet, ifc *netsim.Iface) { got = true })
	k.After(0, func() {
		src := n.Hosts[0]
		src.Send(&netsim.Packet{Src: src.Addr(), Dst: n.Hosts[40].Addr(), Proto: netsim.ProtoSCTP, Payload: []byte{1}})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Fatal("leaf-spine packet not delivered")
	}
}

// TestTopoDeterminism runs the same incast twice and checks the event
// outcome is bit-identical (no RNG draws, no map iteration in routing).
func TestTopoDeterminism(t *testing.T) {
	run := func() (time.Duration, int64) {
		k := sim.New(7)
		n, err := Build(k, 64, Config{Kind: FatTree})
		if err != nil {
			t.Fatal(err)
		}
		n.Hosts[0].Handle(netsim.ProtoTCP, func(pkt *netsim.Packet, ifc *netsim.Iface) {})
		k.After(0, func() {
			for s := 1; s < 64; s++ {
				src := n.Hosts[s]
				src.Send(&netsim.Packet{Src: src.Addr(), Dst: n.Hosts[0].Addr(), Proto: netsim.ProtoTCP, Payload: make([]byte, 512)})
			}
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return k.Now(), n.Network.Stats.BytesSent
	}
	t1, b1 := run()
	t2, b2 := run()
	if t1 != t2 || b1 != b2 {
		t.Fatalf("two identical runs diverged: %v/%d vs %v/%d", t1, b1, t2, b2)
	}
}
