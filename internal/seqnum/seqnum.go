// Package seqnum implements 32-bit serial number arithmetic (in the
// style of RFC 1982) shared by the TCP sequence space and the SCTP
// TSN/SSN spaces. Comparisons are made modulo 2^32, so values that wrap
// compare correctly as long as they are within half the space of each
// other.
package seqnum

// V is a 32-bit serial number.
type V uint32

// Add returns s advanced by n, wrapping modulo 2^32.
func (s V) Add(n uint32) V { return s + V(n) }

// Sub returns the forward distance from o to s (s - o) modulo 2^32.
// It is only meaningful when o is "before or equal to" s.
func (s V) Sub(o V) uint32 { return uint32(s - o) }

// Less reports whether s is strictly before o in serial order.
func (s V) Less(o V) bool { return int32(s-o) < 0 }

// LessEq reports whether s is before or equal to o in serial order.
func (s V) LessEq(o V) bool { return int32(s-o) <= 0 }

// Greater reports whether s is strictly after o in serial order.
func (s V) Greater(o V) bool { return int32(s-o) > 0 }

// GreaterEq reports whether s is after or equal to o in serial order.
func (s V) GreaterEq(o V) bool { return int32(s-o) >= 0 }

// InWindow reports whether s lies in the half-open window
// [first, first+size).
func (s V) InWindow(first V, size uint32) bool {
	return s.GreaterEq(first) && s.Less(first.Add(size))
}

// Max returns the serial-order maximum of a and b.
func Max(a, b V) V {
	if a.Greater(b) {
		return a
	}
	return b
}

// Min returns the serial-order minimum of a and b.
func Min(a, b V) V {
	if a.Less(b) {
		return a
	}
	return b
}

// S16 is a 16-bit serial number (SCTP stream sequence numbers).
type S16 uint16

// Less reports whether s is strictly before o in serial order.
func (s S16) Less(o S16) bool { return int16(s-o) < 0 }

// Greater reports whether s is strictly after o in serial order.
func (s S16) Greater(o S16) bool { return int16(s-o) > 0 }

// MID is a 32-bit user message identifier (RFC 8260 I-DATA). Like the
// TSN it is assigned monotonically per stream and wraps modulo 2^32, so
// it must be compared with the serial-order helpers.
type MID uint32

// Add returns m advanced by n, wrapping modulo 2^32.
func (m MID) Add(n uint32) MID { return m + MID(n) }

// Less reports whether m is strictly before o in serial order.
func (m MID) Less(o MID) bool { return int32(m-o) < 0 }

// Greater reports whether m is strictly after o in serial order.
func (m MID) Greater(o MID) bool { return int32(m-o) > 0 }

// FSN is a 32-bit fragment sequence number within one user message
// (RFC 8260 I-DATA). Fragments are numbered 0..n-1; the space wraps
// modulo 2^32 like every other serial number here.
type FSN uint32

// Add returns f advanced by n, wrapping modulo 2^32.
func (f FSN) Add(n uint32) FSN { return f + FSN(n) }

// Sub returns the forward distance from o to f (f - o) modulo 2^32.
func (f FSN) Sub(o FSN) uint32 { return uint32(f - o) }

// Less reports whether f is strictly before o in serial order.
func (f FSN) Less(o FSN) bool { return int32(f-o) < 0 }

// Greater reports whether f is strictly after o in serial order.
func (f FSN) Greater(o FSN) bool { return int32(f-o) > 0 }
