package seqnum

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBasicOrder(t *testing.T) {
	cases := []struct {
		a, b    V
		aLessB  bool
		aGreatB bool
	}{
		{0, 1, true, false},
		{1, 0, false, true},
		{5, 5, false, false},
		{math.MaxUint32, 0, true, false}, // wraparound
		{0, math.MaxUint32, false, true},
		{math.MaxUint32 - 10, 10, true, false},
	}
	for _, c := range cases {
		if got := c.a.Less(c.b); got != c.aLessB {
			t.Errorf("%d.Less(%d) = %v", c.a, c.b, got)
		}
		if got := c.a.Greater(c.b); got != c.aGreatB {
			t.Errorf("%d.Greater(%d) = %v", c.a, c.b, got)
		}
	}
}

func TestAddSub(t *testing.T) {
	var s V = math.MaxUint32 - 1
	s2 := s.Add(5)
	if s2 != 3 {
		t.Fatalf("wrap add: got %d want 3", s2)
	}
	if d := s2.Sub(s); d != 5 {
		t.Fatalf("wrap sub: got %d want 5", d)
	}
}

func TestInWindow(t *testing.T) {
	var first V = math.MaxUint32 - 2
	if !first.InWindow(first, 10) {
		t.Error("first not in its own window")
	}
	if !V(2).InWindow(first, 10) {
		t.Error("wrapped value not in window")
	}
	if V(8).InWindow(first, 10) {
		t.Error("value past window reported inside")
	}
	if V(math.MaxUint32-3).InWindow(first, 10) {
		t.Error("value before window reported inside")
	}
}

func TestMinMax(t *testing.T) {
	if Max(V(math.MaxUint32), V(3)) != 3 {
		t.Error("Max across wrap")
	}
	if Min(V(math.MaxUint32), V(3)) != math.MaxUint32 {
		t.Error("Min across wrap")
	}
}

// Property: for offsets within half the space, order is consistent with
// integer order of the offsets.
func TestQuickConsistentWithOffsets(t *testing.T) {
	f := func(base uint32, d1, d2 uint16) bool {
		a := V(base).Add(uint32(d1))
		b := V(base).Add(uint32(d2))
		return a.Less(b) == (d1 < d2) && a.GreaterEq(b) == (d1 >= d2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Add then Sub round-trips.
func TestQuickAddSubRoundTrip(t *testing.T) {
	f := func(base, n uint32) bool {
		return V(base).Add(n).Sub(V(base)) == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: exactly one of Less, Greater, equal holds.
func TestQuickTrichotomy(t *testing.T) {
	f := func(a, b uint32) bool {
		x, y := V(a), V(b)
		if a == b {
			return !x.Less(y) && !x.Greater(y) && x.LessEq(y) && x.GreaterEq(y)
		}
		// Ambiguous at exactly half the space; skip that measure-zero case.
		if uint32(a-b) == 1<<31 {
			return true
		}
		return x.Less(y) != x.Greater(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestS16(t *testing.T) {
	if !S16(math.MaxUint16).Less(0) {
		t.Error("S16 wraparound Less")
	}
	if !S16(0).Greater(math.MaxUint16) {
		t.Error("S16 wraparound Greater")
	}
}
