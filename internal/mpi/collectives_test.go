package mpi

import (
	"bytes"
	"fmt"
	"testing"
	"time"
)

// These tests exercise the collective algorithms over the loopback
// fabric (no transport), so failures point at the algorithms.

func TestBcastAllRootsAllSizes(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8} {
		n := n
		t.Run(fmt.Sprintf("procs%d", n), func(t *testing.T) {
			run(t, n, func(pr *Process, comm *Comm) error {
				for root := 0; root < n; root++ {
					data := make([]byte, 333)
					if comm.Rank() == root {
						for i := range data {
							data[i] = byte(i + root)
						}
					}
					if err := comm.Bcast(root, data); err != nil {
						return err
					}
					for i := range data {
						if data[i] != byte(i+root) {
							return fmt.Errorf("root %d corrupt at %d", root, i)
						}
					}
				}
				return nil
			})
		})
	}
}

func TestReduceAllRoots(t *testing.T) {
	const n = 7 // non-power-of-two exercises the binomial edge cases
	run(t, n, func(pr *Process, comm *Comm) error {
		for root := 0; root < n; root++ {
			v := mpi64(float64(comm.Rank()) * 2)
			if err := comm.Reduce(root, v, OpSumF64); err != nil {
				return err
			}
			if comm.Rank() == root {
				want := float64(n * (n - 1)) // 2 * sum(0..n-1)
				if got := BytesF64(v)[0]; got != want {
					return fmt.Errorf("root %d: reduce = %v want %v", root, got, want)
				}
			}
		}
		return nil
	})
}

func mpi64(v float64) []byte { return F64Bytes([]float64{v}) }

func TestAllreduceOps(t *testing.T) {
	run(t, 6, func(pr *Process, comm *Comm) error {
		me := int64(comm.Rank())
		n := int64(comm.Size())

		sum := I64Bytes([]int64{me, me * me})
		if err := comm.Allreduce(sum, OpSumI64); err != nil {
			return err
		}
		got := BytesI64(sum)
		if got[0] != n*(n-1)/2 {
			return fmt.Errorf("sum = %v", got)
		}

		max := I64Bytes([]int64{-me})
		if err := comm.Allreduce(max, OpMaxI64); err != nil {
			return err
		}
		if BytesI64(max)[0] != 0 {
			return fmt.Errorf("max = %v", BytesI64(max))
		}

		fmax := F64Bytes([]float64{float64(me) / 2})
		if err := comm.Allreduce(fmax, OpMaxF64); err != nil {
			return err
		}
		if BytesF64(fmax)[0] != float64(n-1)/2 {
			return fmt.Errorf("fmax = %v", BytesF64(fmax))
		}
		return nil
	})
}

func TestGathervScatterv(t *testing.T) {
	const n = 5
	run(t, n, func(pr *Process, comm *Comm) error {
		me := comm.Rank()
		// Rank r contributes r+1 bytes.
		counts := make([]int, n)
		offs := make([]int, n)
		total := 0
		for r := 0; r < n; r++ {
			counts[r] = r + 1
			offs[r] = total
			total += counts[r]
		}
		send := make([]byte, counts[me])
		for i := range send {
			send[i] = byte(me*16 + i)
		}
		var recv []byte
		if me == 2 {
			recv = make([]byte, total)
		}
		if err := comm.Gatherv(2, send, recv, counts, offs); err != nil {
			return err
		}
		if me == 2 {
			for r := 0; r < n; r++ {
				for i := 0; i < counts[r]; i++ {
					if recv[offs[r]+i] != byte(r*16+i) {
						return fmt.Errorf("gatherv rank %d byte %d wrong", r, i)
					}
				}
			}
		}
		// Scatter it back out and verify round trip.
		back := make([]byte, counts[me])
		if err := comm.Scatterv(2, recv, back, counts, offs); err != nil {
			return err
		}
		if !bytes.Equal(back, send) {
			return fmt.Errorf("scatterv round trip: %v != %v", back, send)
		}
		return nil
	})
}

func TestAllgatherv(t *testing.T) {
	const n = 4
	run(t, n, func(pr *Process, comm *Comm) error {
		me := comm.Rank()
		counts := []int{3, 1, 4, 1}
		offs := []int{0, 3, 4, 8}
		send := make([]byte, counts[me])
		for i := range send {
			send[i] = byte(me + 100)
		}
		recv := make([]byte, 9)
		if err := comm.Allgatherv(send, recv, counts, offs); err != nil {
			return err
		}
		for r := 0; r < n; r++ {
			for i := 0; i < counts[r]; i++ {
				if recv[offs[r]+i] != byte(r+100) {
					return fmt.Errorf("allgatherv rank %d wrong", r)
				}
			}
		}
		return nil
	})
}

func TestReduceScatter(t *testing.T) {
	const n = 4
	run(t, n, func(pr *Process, comm *Comm) error {
		me := comm.Rank()
		// Each rank contributes the vector [me, me, me, me] (one int64
		// per destination rank).
		data := I64Bytes([]int64{int64(me), int64(me), int64(me), int64(me)})
		block := make([]byte, 8)
		if err := comm.ReduceScatter(data, block, OpSumI64); err != nil {
			return err
		}
		want := int64(n * (n - 1) / 2)
		if got := BytesI64(block)[0]; got != want {
			return fmt.Errorf("rank %d reduce-scatter = %d want %d", me, got, want)
		}
		return nil
	})
}

func TestScanAndExscan(t *testing.T) {
	const n = 6
	run(t, n, func(pr *Process, comm *Comm) error {
		me := comm.Rank()
		v := I64Bytes([]int64{int64(me + 1)})
		if err := comm.Scan(v, OpSumI64); err != nil {
			return err
		}
		want := int64((me + 1) * (me + 2) / 2) // 1+2+...+(me+1)
		if got := BytesI64(v)[0]; got != want {
			return fmt.Errorf("scan rank %d = %d want %d", me, got, want)
		}

		e := I64Bytes([]int64{int64(me + 1)})
		if err := comm.Exscan(e, OpSumI64); err != nil {
			return err
		}
		if me > 0 {
			wantE := int64(me * (me + 1) / 2) // 1+...+me
			if got := BytesI64(e)[0]; got != wantE {
				return fmt.Errorf("exscan rank %d = %d want %d", me, got, wantE)
			}
		}
		return nil
	})
}

func TestAlltoallLoopback(t *testing.T) {
	for _, n := range []int{2, 3, 8} {
		n := n
		t.Run(fmt.Sprintf("procs%d", n), func(t *testing.T) {
			run(t, n, func(pr *Process, comm *Comm) error {
				me := comm.Rank()
				snd := make([]byte, n*2)
				for r := 0; r < n; r++ {
					snd[2*r] = byte(me)
					snd[2*r+1] = byte(r)
				}
				rcv := make([]byte, n*2)
				if err := comm.Alltoall(snd, rcv); err != nil {
					return err
				}
				for r := 0; r < n; r++ {
					if rcv[2*r] != byte(r) || rcv[2*r+1] != byte(me) {
						return fmt.Errorf("alltoall slot %d = %v", r, rcv[2*r:2*r+2])
					}
				}
				return nil
			})
		})
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	run(t, 5, func(pr *Process, comm *Comm) error {
		// Stagger arrival; everyone must leave at (or after) the
		// latest arrival.
		me := comm.Rank()
		pr.P.Sleep(sleepFor(me))
		if err := comm.Barrier(); err != nil {
			return err
		}
		if pr.P.Now() < sleepFor(4) {
			return fmt.Errorf("rank %d left the barrier at %v, before the last arrival", me, pr.P.Now())
		}
		return nil
	})
}

func sleepFor(rank int) time.Duration {
	return time.Duration(rank+1) * 50 * time.Millisecond
}
