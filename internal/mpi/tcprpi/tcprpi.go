// Package tcprpi is the LAM-TCP analogue: a request progression module
// that keeps one TCP connection per peer process (a full mesh built at
// MPI_Init), polls all sockets select()-style with a cost linear in the
// descriptor count, and reads envelopes and bodies out of each byte
// stream with a per-socket framing state machine. Because each peer
// pair shares a single ordered byte stream, a lost segment blocks every
// later message from that peer — the transport-level head-of-line
// blocking the paper's SCTP module removes.
package tcprpi

import (
	"fmt"

	"repro/internal/mpi/rpi"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/tcp"
)

// DefaultPort is the mesh listener port.
const DefaultPort = 7001

// Options configures the module.
type Options struct {
	Port uint16
	Cost rpi.CostModel
	TCP  tcp.Config // per-connection config; NoDelay is forced on (LAM default)
}

// Module is one process's TCP RPI instance.
type Module struct {
	stack   *tcp.Stack
	opts    Options
	rank    int
	size    int
	addrs   []netsim.Addr // rank → primary address
	barrier *rpi.Barrier
	deliver rpi.Delivery

	self     *sim.Proc
	listener *tcp.Listener
	peers    []*peer
	cond     *sim.Cond
	dirty    bool

	counters map[string]int64
}

type peer struct {
	conn *tcp.Conn

	// Read framing state: envelope bytes, then Length body bytes.
	envBuf  [rpi.EnvelopeSize]byte
	envGot  int
	env     rpi.Envelope
	haveEnv bool
	body    []byte

	// Write queue: one message at a time per socket, with partial-write
	// state, exactly as LAM's nonblocking TCP writer works.
	wq  []*outMsg
	cur *outMsg
}

type outMsg struct {
	env      []byte
	body     []byte
	off      int // bytes written across env+body
	onQueued func()
}

func (m *outMsg) total() int { return len(m.env) + len(m.body) }

// New builds the module for one rank. addrs maps world rank to primary
// address; barrier must be shared by all ranks in the job.
func New(stack *tcp.Stack, rank int, addrs []netsim.Addr, barrier *rpi.Barrier, opts Options) *Module {
	if opts.Port == 0 {
		opts.Port = DefaultPort
	}
	// Note: LAM-TCP disables Nagle by default (paper §4); the core
	// facade sets opts.TCP.NoDelay accordingly, and the Nagle ablation
	// benchmark turns it back on.
	return &Module{
		stack:    stack,
		opts:     opts,
		rank:     rank,
		size:     len(addrs),
		addrs:    addrs,
		barrier:  barrier,
		peers:    make([]*peer, len(addrs)),
		counters: make(map[string]int64),
	}
}

// SetDelivery implements rpi.RPI.
func (m *Module) SetDelivery(d rpi.Delivery) { m.deliver = d }

// Counters implements rpi.RPI.
func (m *Module) Counters() map[string]int64 { return m.counters }

// Init implements rpi.RPI: listener up, full mesh established (lower
// ranks connect to higher ranks), hello exchange identifies accepted
// connections.
func (m *Module) Init(p *sim.Proc) error {
	m.self = p
	m.cond = sim.NewCond(p.Kernel())
	l, err := m.stack.ListenConfig(m.opts.Port, m.opts.TCP)
	if err != nil {
		return err
	}
	m.listener = l
	// Everyone's listener must exist before anyone connects.
	m.barrier.Arrive(p)

	// Connect to higher ranks and introduce ourselves.
	hello := rpi.Envelope{Kind: rpi.KindHello, Rank: int32(m.rank)}
	for j := m.rank + 1; j < m.size; j++ {
		c, err := m.stack.ConnectConfig(p, m.opts.TCP, m.addrs[j], m.opts.Port)
		if err != nil {
			return fmt.Errorf("tcprpi: rank %d connect to %d: %w", m.rank, j, err)
		}
		if _, err := c.Write(p, hello.Encode()); err != nil {
			return err
		}
		m.attach(j, c)
	}
	// Accept from lower ranks; the hello tells us who each one is.
	for i := 0; i < m.rank; i++ {
		c, err := l.Accept(p)
		if err != nil {
			return err
		}
		buf := make([]byte, rpi.EnvelopeSize)
		got := 0
		for got < len(buf) {
			n, err := c.Read(p, buf[got:])
			if err != nil {
				return err
			}
			got += n
		}
		env, err := rpi.DecodeEnvelope(buf)
		if err != nil || env.Kind != rpi.KindHello {
			return fmt.Errorf("tcprpi: bad hello")
		}
		m.attach(int(env.Rank), c)
	}
	// All connections up before any MPI traffic.
	m.barrier.Arrive(p)
	return nil
}

func (m *Module) attach(rank int, c *tcp.Conn) {
	pe := &peer{conn: c}
	m.peers[rank] = pe
	c.SetNotify(func() {
		m.dirty = true
		m.cond.Broadcast()
	})
	m.counters["connections"]++
}

// Send implements rpi.RPI.
func (m *Module) Send(dest int, env rpi.Envelope, body []byte, onQueued func()) {
	pe := m.peers[dest]
	if pe == nil {
		panic(fmt.Sprintf("tcprpi: send to unconnected rank %d", dest))
	}
	msg := &outMsg{env: env.Encode(), body: body, onQueued: onQueued}
	pe.wq = append(pe.wq, msg)
	m.counters["msgs_sent"]++
	m.counters["bytes_sent"] += int64(len(body))
	if d := m.opts.Cost.SendCost(len(body)); d > 0 && m.self != nil {
		m.self.Sleep(d)
	}
	m.flush(pe)
}

// flush writes queued messages until the socket would block, returning
// the number of bytes moved into the transport.
func (m *Module) flush(pe *peer) int {
	wrote := 0
	for {
		if pe.cur == nil {
			if len(pe.wq) == 0 {
				return wrote
			}
			pe.cur = pe.wq[0]
			pe.wq = pe.wq[1:]
		}
		msg := pe.cur
		for msg.off < msg.total() {
			var chunk []byte
			if msg.off < len(msg.env) {
				chunk = msg.env[msg.off:]
			} else {
				chunk = msg.body[msg.off-len(msg.env):]
			}
			n, err := pe.conn.TryWrite(chunk)
			msg.off += n
			wrote += n
			if err == tcp.ErrWouldBlock {
				return wrote
			}
			if err != nil {
				// Connection failure: drop the message; MPI treats
				// communication failure as fatal (paper §3.5).
				m.counters["send_errors"]++
				msg.off = msg.total()
			}
		}
		pe.cur = nil
		if msg.onQueued != nil {
			msg.onQueued()
		}
	}
}

// Advance implements rpi.RPI: one select()-style pass over all
// sockets, reading every ready byte stream and flushing writers.
func (m *Module) Advance(p *sim.Proc, block bool) {
	for {
		m.dirty = false
		// The select() cost the paper discusses: linear in descriptors.
		if d := m.opts.Cost.PollCost(m.size - 1); d > 0 {
			p.Sleep(d)
		}
		progress := false
		for _, pe := range m.peers {
			if pe == nil {
				continue
			}
			if pe.cur != nil || len(pe.wq) > 0 {
				if m.flush(pe) > 0 {
					progress = true
				}
			}
			if m.readPeer(p, pe) {
				progress = true
			}
		}
		if progress || !block {
			return
		}
		if m.dirty {
			continue // socket state changed while we were scanning
		}
		m.cond.Wait(p)
		// Loop around for another pass.
	}
}

// readPeer drains the peer's byte stream through the framing state
// machine, delivering complete messages. Returns whether anything
// arrived.
func (m *Module) readPeer(p *sim.Proc, pe *peer) bool {
	progress := false
	for {
		if !pe.haveEnv {
			n, err := pe.conn.TryRead(pe.envBuf[pe.envGot:])
			if n > 0 {
				progress = true
			}
			if n == 0 {
				// Would block, EOF (peer finalized), or reset.
				return progress
			}
			_ = err
			pe.envGot += n
			if pe.envGot < rpi.EnvelopeSize {
				continue
			}
			env, derr := rpi.DecodeEnvelope(pe.envBuf[:])
			if derr != nil {
				m.counters["frame_errors"]++
				return progress
			}
			pe.env = env
			pe.envGot = 0
			pe.haveEnv = true
			pe.body = nil
			if env.Kind.HasBody() && env.Length > 0 {
				pe.body = make([]byte, 0, env.Length)
			}
		}
		// Body bytes, if any.
		bodyLen := 0
		if pe.env.Kind.HasBody() {
			bodyLen = pe.env.Length
		}
		for len(pe.body) < bodyLen {
			need := bodyLen - len(pe.body)
			buf := make([]byte, min(need, 64<<10))
			n, err := pe.conn.TryRead(buf)
			if n > 0 {
				pe.body = append(pe.body, buf[:n]...)
				progress = true
			}
			if err == tcp.ErrWouldBlock || n == 0 {
				if len(pe.body) < bodyLen {
					return progress
				}
			} else if err != nil {
				return progress
			}
		}
		// Complete message.
		env, body := pe.env, pe.body
		pe.haveEnv = false
		pe.body = nil
		m.counters["msgs_rcvd"]++
		m.counters["bytes_rcvd"] += int64(len(body))
		if d := m.opts.Cost.RecvCost(len(body)); d > 0 {
			p.Sleep(d)
		}
		m.deliver(env, body)
		progress = true
	}
}

// Finalize implements rpi.RPI.
func (m *Module) Finalize(p *sim.Proc) {
	for _, pe := range m.peers {
		if pe != nil {
			pe.conn.Close()
		}
	}
	if m.listener != nil {
		m.listener.Close()
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
