// Package tcprpi is the LAM-TCP analogue: a request progression module
// that keeps one TCP connection per peer process (a full mesh built at
// MPI_Init), polls all sockets select()-style with a cost linear in the
// descriptor count, and reads envelopes and bodies out of each byte
// stream with a per-socket framing state machine. Because each peer
// pair shares a single ordered byte stream, a lost segment blocks every
// later message from that peer — the transport-level head-of-line
// blocking the paper's SCTP module removes.
//
// The progression machinery (counters, cost charging, the Advance poll
// loop, connection bring-up, session recovery) lives in the shared
// rpi.Engine/rpi.Sessions; this file is only the TCP byte-stream
// binding. When a connection dies abortively the module redials it and
// runs the KindReconnect handshake; the side that loses the redial
// collision tie-break (lower rank's dial wins) adopts the peer's
// replacement connection instead.
package tcprpi

import (
	"errors"

	"repro/internal/mpi/rpi"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/transport"
	"repro/internal/wire"
)

// DefaultPort is the mesh listener port.
const DefaultPort = 7001

// Poller source tags for non-peer endpoints; peer connections use the
// peer's rank (>= 0) as their tag.
const (
	tagAccept  = -1 // the mesh listener
	tagPending = -2 // all undecided inbound connections, coalesced
)

// Options configures the module.
type Options struct {
	Port uint16
	Cost rpi.CostModel
	TCP  tcp.Config // per-connection config; NoDelay is forced on (LAM default)

	// RedialBudget and DropReplayEvery configure the session recovery
	// layer (see rpi.SessionConfig).
	RedialBudget    int
	DropReplayEvery int
}

// Module is one process's TCP RPI instance.
type Module struct {
	rpi.Engine
	stack   *tcp.Stack
	opts    Options
	addrs   []netsim.Addr // rank → primary address
	barrier *rpi.Barrier

	listener  *tcp.Listener
	peers     []*peer
	sess      *rpi.Sessions
	pending   []*pendingConn
	helloSeen []bool // lower ranks confirmed during bring-up (distinct)
	hellos    int

	srcID   []int // rank → poller source id, -1 until first attach
	pendSrc int   // shared source for undecided inbound connections
}

// peer is one mesh connection: the socket plus its framing reader and
// partial-write queue. conn is nil while the session to that rank is
// down (between loss detection and redial success).
type peer struct {
	conn *tcp.Conn
	out  rpi.OutQueue
	in   rpi.StreamFramer
}

// pendingConn is an accepted connection whose first envelope has not
// arrived yet. After MPI_Init every inbound connection is a session
// recovery attempt that must announce itself with KindReconnect before
// it is adopted as a peer's replacement connection.
type pendingConn struct {
	conn     *tcp.Conn
	in       rpi.StreamFramer
	rank     int
	decided  bool
	rejected bool
}

// New builds the module for one rank. addrs maps world rank to primary
// address; barrier must be shared by all ranks in the job.
func New(stack *tcp.Stack, rank int, addrs []netsim.Addr, barrier *rpi.Barrier, opts Options) *Module {
	if opts.Port == 0 {
		opts.Port = DefaultPort
	}
	// Note: LAM-TCP disables Nagle by default (paper §4); the core
	// facade sets opts.TCP.NoDelay accordingly, and the Nagle ablation
	// benchmark turns it back on.
	m := &Module{
		stack:   stack,
		opts:    opts,
		addrs:   addrs,
		barrier: barrier,
		peers:   make([]*peer, len(addrs)),
	}
	m.SetupEngine(rank, len(addrs), opts.Cost)
	return m
}

// lost reports whether err is a session-loss signal: aborts (reset,
// kill) and timeouts, but not graceful teardown (ErrClosed, EOF), which
// is what Finalize produces.
func lost(err error) bool {
	return err != nil &&
		(errors.Is(err, transport.ErrAborted) || errors.Is(err, transport.ErrTimeout))
}

// Init implements rpi.RPI: listener up, full mesh established (lower
// ranks connect to higher ranks), hello exchange identifies accepted
// connections. The accept phase is pump-driven (inbound connections
// identify themselves through the pending-connection machinery) so a
// session kill during bring-up is detected and recovered like any
// other: a killed dialer redials and announces itself with
// KindReconnect instead of a hello, and the final rendezvous keeps
// pumping so that handshake is answered even by ranks already done
// with their own setup.
func (m *Module) Init(p *sim.Proc) error {
	m.BindProc(p)
	m.helloSeen = make([]bool, m.Size)
	m.srcID = make([]int, m.Size)
	for i := range m.srcID {
		m.srcID[i] = -1
	}
	m.pendSrc = m.Poller().Register(tagPending)
	m.sess = rpi.NewSessions(&m.Engine, p.Kernel(), m.Size, rpi.SessionConfig{
		RedialBudget:    m.opts.RedialBudget,
		DropReplayEvery: m.opts.DropReplayEvery,
	})
	l, err := m.stack.ListenConfig(m.opts.Port, m.opts.TCP)
	if err != nil {
		return err
	}
	m.listener = l
	lsrc := m.Poller().Register(tagAccept)
	l.SetNotify(m.Poller().Hook(lsrc))
	dial := func(j int, hello rpi.Envelope) error {
		c, err := m.stack.ConnectConfig(p, m.opts.TCP, m.addrs[j], m.opts.Port)
		if err != nil {
			return err
		}
		if _, err := c.Write(p, hello.Encode()); err != nil {
			return err
		}
		m.attach(j, c)
		return nil
	}
	accept := func() error {
		for m.hellos < m.Rank {
			if err := m.Advance(p, true); err != nil {
				return err
			}
		}
		return nil
	}
	wait := func(done func() bool) error {
		return m.DriveUntil(p, m.Size-1, done,
			func(tag int, ev transport.Ready) bool { return m.onEvent(p, tag, ev) },
			m.tail)
	}
	return rpi.MeshInit(p, m.barrier, m.Rank, m.Size, dial, accept, m.Notify, wait)
}

// markHello records that lower rank r is confirmed for the bring-up
// barrier: its hello arrived, or (if a session kill hit the bring-up)
// its replacement connection identified itself with KindReconnect —
// hellos are unsessioned and never replayed, so the recovery handshake
// stands in for a lost one.
func (m *Module) markHello(r int) {
	if r >= 0 && r < m.Rank && !m.helloSeen[r] {
		m.helloSeen[r] = true
		m.hellos++
	}
}

func (m *Module) attach(rank int, c *tcp.Conn) {
	m.peers[rank] = &peer{conn: c}
	m.bindPeerConn(rank, c)
	m.Counters().Add("connections", 1)
}

// bindPeerConn points peer r's poller source at conn and posts one
// synthetic readable edge: readiness is edge-triggered, so bytes that
// arrived before this registration produced no event and the first
// pump must not depend on one.
func (m *Module) bindPeerConn(r int, c *tcp.Conn) {
	if m.srcID[r] < 0 {
		m.srcID[r] = m.Poller().Register(r)
	}
	id := m.srcID[r]
	c.SetNotify(m.Poller().Hook(id))
	m.Poller().Post(id, transport.ReadyRecv)
}

// Send implements rpi.RPI. Every middleware message is stamped and
// retained by the session layer; the retained copy is the buffered-send
// completion point, so onQueued fires here regardless of session state.
// While the session is down the message is retention-only and reaches
// the peer in the replay gap after recovery.
func (m *Module) Send(dest int, env rpi.Envelope, body []byte, onQueued func()) {
	up := m.sess.StampOut(dest, &env, body)
	m.CountSend(len(body))
	if onQueued != nil {
		onQueued()
	}
	if !up {
		return
	}
	pe := m.peers[dest]
	pe.out.Push(env, body, nil)
	pe.out.Flush(pe.conn.TryWrite, m.sendError)
}

func (m *Module) sendError(error) { m.Counters().Add("send_errors", 1) }

func (m *Module) frameError() { m.Counters().Add("frame_errors", 1) }

// Advance implements rpi.RPI: drain the readiness queue, pumping only
// the endpoints whose state actually changed. The pass cost stays
// charged over all Size-1 descriptors — the select() scan ablation the
// paper discusses — but the work done is proportional to ready events.
func (m *Module) Advance(p *sim.Proc, block bool) error {
	return m.Drive(p, block, m.Size-1,
		func(tag int, ev transport.Ready) bool { return m.onEvent(p, tag, ev) },
		m.tail)
}

// onEvent dispatches one readiness edge to the endpoint its tag names.
func (m *Module) onEvent(p *sim.Proc, tag int, ev transport.Ready) bool {
	switch tag {
	case tagAccept:
		return m.acceptPending()
	case tagPending:
		return m.drainPending(p)
	default:
		return m.pumpPeer(p, tag)
	}
}

// tail services the time-driven recovery state on a Notify kick: redial
// attempts that came due (session scheduling and backoff timers kick,
// endpoint traffic never needs this sweep).
func (m *Module) tail(kicked bool) bool {
	if !kicked {
		return false
	}
	progress := false
	for r, pe := range m.peers {
		if pe != nil && pe.conn == nil && m.sess.RedialDue(r) {
			m.redial(m.Proc(), r)
			progress = true
		}
	}
	return progress
}

// pumpPeer moves every ready byte on one peer connection: flush the
// write queue, drain the framing reader, detect abortive death, and
// run a due redial for a downed slot.
func (m *Module) pumpPeer(p *sim.Proc, r int) bool {
	pe := m.peers[r]
	if pe == nil {
		return false
	}
	progress := false
	if pe.conn != nil {
		if pe.out.Pending() && pe.out.Flush(pe.conn.TryWrite, m.sendError) > 0 {
			progress = true
		}
		if pe.in.Drain(pe.conn, func(env rpi.Envelope, body []byte) {
			m.inbound(p, r, env, body)
		}, m.frameError) {
			progress = true
		}
		if pe.conn != nil && lost(pe.conn.Err()) {
			m.onConnDeath(r)
			progress = true
		}
	}
	if pe.conn == nil && m.sess.RedialDue(r) {
		m.redial(p, r)
		progress = true
	}
	return progress
}

// onConnDeath handles an abortive connection loss: tear down per-peer
// transport state and either start the recovery episode or, if this
// was already a replacement connection that died before its handshake
// completed, charge a failed redial attempt.
func (m *Module) onConnDeath(r int) {
	pe := m.peers[r]
	pe.conn.Kill() // idempotent; the connection already failed locally
	pe.conn = nil
	pe.out.Reset()
	pe.in.Reset()
	if m.sess.MarkLost(r) {
		m.sess.ScheduleRedial(r)
	} else {
		m.sess.AttemptFailed(r)
	}
}

// redial runs one redial attempt: claim budget (terminal error when
// exhausted), dial blocking in process context, and send the
// KindReconnect handshake on the fresh connection. The connection is
// the peer's candidate until the ReconnectAck arrives.
func (m *Module) redial(p *sim.Proc, r int) {
	if err := m.sess.BeginAttempt(r); err != nil {
		m.Fail(err)
		return
	}
	c, err := m.stack.ConnectConfig(p, m.opts.TCP, m.addrs[r], m.opts.Port)
	if err != nil {
		m.sess.AttemptFailed(r)
		return
	}
	m.sess.DialSucceeded(r)
	m.bindPeerConn(r, c)
	pe := m.peers[r]
	pe.conn = c
	pe.out.Reset()
	pe.in.Reset()
	m.Counters().Add("connections", 1)
	pe.out.Push(m.sess.ReconnectEnv(r), nil, nil)
	pe.out.Flush(c.TryWrite, m.sendError)
}

// inbound dispatches one complete framed message from peer r: recovery
// handshakes are handled here, everything else passes receiver-side
// session processing (retention pruning, duplicate suppression) before
// delivery.
func (m *Module) inbound(p *sim.Proc, r int, env rpi.Envelope, body []byte) {
	switch env.Kind {
	case rpi.KindReconnect:
		pe := m.peers[r]
		ack, gap := m.sess.OnReconnect(r, env)
		pe.out.Push(ack, nil, nil)
		m.pushReplay(pe, gap)
		pe.out.Flush(pe.conn.TryWrite, m.sendError)
		m.sess.Resume(r)
		return
	case rpi.KindReconnectAck:
		pe := m.peers[r]
		m.pushReplay(pe, m.sess.OnReconnectAck(r, env))
		pe.out.Flush(pe.conn.TryWrite, m.sendError)
		m.sess.Resume(r)
		return
	case rpi.KindHello:
		return
	}
	if !m.sess.Accept(r, &env) {
		if body != nil {
			wire.PutBuf(body)
		}
		return
	}
	m.Complete(p, env, body)
}

// pushReplay queues the negotiated retention gap on the replacement
// connection. Replays bypass CountSend and the observer: the original
// send was already counted and recorded.
func (m *Module) pushReplay(pe *peer, gap []rpi.Retained) {
	for _, rt := range gap {
		pe.out.Push(rt.Env, rt.Body, nil)
	}
}

// acceptPending pulls every completed inbound connection off the
// listener backlog onto the pending list. All undecided connections
// share one coalesced poller source; the synthetic post makes their
// bytes that landed before hook registration (a hello piggybacked on
// the handshake) visible to the edge-triggered drain.
func (m *Module) acceptPending() bool {
	progress := false
	for {
		c, err := m.listener.TryAccept()
		if err != nil {
			break
		}
		c.SetNotify(m.Poller().Hook(m.pendSrc))
		m.Poller().Post(m.pendSrc, transport.ReadyRecv)
		m.pending = append(m.pending, &pendingConn{conn: c})
		progress = true
	}
	return progress
}

// drainPending drives each undecided inbound connection until its
// first envelope decides its fate: a valid KindReconnect is adopted as
// the peer's replacement connection (unless our own dial wins the
// collision tie-break), anything else is reset.
func (m *Module) drainPending(p *sim.Proc) bool {
	progress := false
	kept := m.pending[:0]
	for _, pc := range m.pending {
		if pc.in.Drain(pc.conn, func(env rpi.Envelope, body []byte) {
			m.pendingMsg(p, pc, env, body)
		}, m.frameError) {
			progress = true
		}
		switch {
		case pc.decided && !pc.rejected:
			// Adopted: hand the framer (with any bytes it already
			// buffered past the handshake) to the peer slot.
			m.peers[pc.rank].in = pc.in
		case pc.rejected:
			// dropped
		case pc.conn.Err() != nil:
			pc.in.Reset()
		default:
			kept = append(kept, pc)
		}
	}
	m.pending = kept
	return progress
}

// pendingMsg handles one message on an undecided inbound connection.
// The first envelope must announce the dialing rank: a KindHello during
// mesh bring-up (the pump-driven form of the accept loop) or a
// KindReconnect opening session recovery. Once adopted, later messages
// in the same drain pass flow through the normal inbound path.
func (m *Module) pendingMsg(p *sim.Proc, pc *pendingConn, env rpi.Envelope, body []byte) {
	if pc.rejected {
		if body != nil {
			wire.PutBuf(body)
		}
		return
	}
	if pc.decided {
		m.inbound(p, pc.rank, env, body)
		return
	}
	pc.decided = true
	r := int(env.Rank)
	reject := func() {
		pc.rejected = true
		pc.conn.Reset()
		if body != nil {
			wire.PutBuf(body)
		}
	}
	if r < 0 || r >= m.Size || r == m.Rank {
		reject()
		return
	}
	if env.Kind == rpi.KindHello {
		// Mesh bring-up: a lower rank announcing its dialed connection.
		// A hello for a slot already connected is stray — reject it.
		if r >= m.Rank || m.peers[r] != nil {
			reject()
			return
		}
		pc.rank = r
		m.attach(r, pc.conn)
		m.markHello(r)
		return
	}
	if env.Kind != rpi.KindReconnect {
		reject()
		return
	}
	pe := m.peers[r]
	if pe != nil && pe.conn != nil && m.sess.Get(r).State != rpi.SessUp && r > m.Rank {
		// Redial collision: both sides dialed. The lower rank's dial
		// wins, and that is ours — reject theirs; they will adopt ours.
		pc.rejected = true
		pc.conn.Reset()
		return
	}
	pc.rank = r
	if pe == nil {
		// A session kill hit the bring-up before this peer's hello ever
		// arrived; its replacement connection announces itself with
		// KindReconnect instead.
		pe = &peer{}
		m.peers[r] = pe
	}
	if pe.conn != nil {
		// Either the peer noticed a loss we have not seen yet (our
		// connection is dead on the wire but locally quiet), or we lost
		// the collision tie-break. Drop ours silently, adopt theirs.
		m.sess.MarkLost(r)
		pe.conn.Kill()
		pe.conn = nil
		pe.out.Reset()
		pe.in.Reset()
	}
	pe.conn = pc.conn
	m.bindPeerConn(r, pc.conn)
	m.Counters().Add("connections", 1)
	ack, gap := m.sess.OnReconnect(r, env)
	pe.out.Push(ack, nil, nil)
	m.pushReplay(pe, gap)
	pe.out.Flush(pe.conn.TryWrite, m.sendError)
	m.sess.Resume(r)
	m.markHello(r)
}

// KillSession implements the chaos harness's session-kill hook: destroy
// the transport session to peer silently (no RST — as if the host
// vanished), in kernel context. Detection and recovery run later from
// the owning process's Advance.
func (m *Module) KillSession(peer int) {
	pe := m.peers[peer]
	if pe != nil && pe.conn != nil {
		pe.conn.Kill()
	}
}

// Finalize implements rpi.RPI.
func (m *Module) Finalize(p *sim.Proc) {
	for _, pe := range m.peers {
		if pe != nil && pe.conn != nil {
			pe.conn.Close()
		}
	}
	for _, pc := range m.pending {
		pc.conn.Close()
	}
	if m.listener != nil {
		m.listener.Close()
	}
}

// Abort implements rpi.RPI: abortive teardown after a terminal error.
// Connections are reset (peers fail fast instead of waiting out
// timeouts) and the listener is released so redials aimed at this rank
// are refused immediately.
func (m *Module) Abort(p *sim.Proc) {
	for _, pe := range m.peers {
		if pe != nil && pe.conn != nil {
			pe.conn.Reset()
			pe.conn = nil
		}
	}
	for _, pc := range m.pending {
		pc.conn.Reset()
	}
	m.pending = nil
	if m.listener != nil {
		m.listener.Close()
	}
}
