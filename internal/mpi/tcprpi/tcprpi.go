// Package tcprpi is the LAM-TCP analogue: a request progression module
// that keeps one TCP connection per peer process (a full mesh built at
// MPI_Init), polls all sockets select()-style with a cost linear in the
// descriptor count, and reads envelopes and bodies out of each byte
// stream with a per-socket framing state machine. Because each peer
// pair shares a single ordered byte stream, a lost segment blocks every
// later message from that peer — the transport-level head-of-line
// blocking the paper's SCTP module removes.
//
// The progression machinery (counters, cost charging, the Advance poll
// loop, connection bring-up) lives in the shared rpi.Engine; this file
// is only the TCP byte-stream binding.
package tcprpi

import (
	"fmt"

	"repro/internal/mpi/rpi"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/tcp"
)

// DefaultPort is the mesh listener port.
const DefaultPort = 7001

// Options configures the module.
type Options struct {
	Port uint16
	Cost rpi.CostModel
	TCP  tcp.Config // per-connection config; NoDelay is forced on (LAM default)
}

// Module is one process's TCP RPI instance.
type Module struct {
	rpi.Engine
	stack   *tcp.Stack
	opts    Options
	addrs   []netsim.Addr // rank → primary address
	barrier *rpi.Barrier

	listener *tcp.Listener
	peers    []*peer
}

// peer is one mesh connection: the socket plus its framing reader and
// partial-write queue.
type peer struct {
	conn *tcp.Conn
	out  rpi.OutQueue
	in   rpi.StreamFramer
}

// New builds the module for one rank. addrs maps world rank to primary
// address; barrier must be shared by all ranks in the job.
func New(stack *tcp.Stack, rank int, addrs []netsim.Addr, barrier *rpi.Barrier, opts Options) *Module {
	if opts.Port == 0 {
		opts.Port = DefaultPort
	}
	// Note: LAM-TCP disables Nagle by default (paper §4); the core
	// facade sets opts.TCP.NoDelay accordingly, and the Nagle ablation
	// benchmark turns it back on.
	m := &Module{
		stack:   stack,
		opts:    opts,
		addrs:   addrs,
		barrier: barrier,
		peers:   make([]*peer, len(addrs)),
	}
	m.SetupEngine(rank, len(addrs), opts.Cost)
	return m
}

// Init implements rpi.RPI: listener up, full mesh established (lower
// ranks connect to higher ranks), hello exchange identifies accepted
// connections.
func (m *Module) Init(p *sim.Proc) error {
	m.BindProc(p)
	l, err := m.stack.ListenConfig(m.opts.Port, m.opts.TCP)
	if err != nil {
		return err
	}
	m.listener = l
	dial := func(j int, hello rpi.Envelope) error {
		c, err := m.stack.ConnectConfig(p, m.opts.TCP, m.addrs[j], m.opts.Port)
		if err != nil {
			return err
		}
		if _, err := c.Write(p, hello.Encode()); err != nil {
			return err
		}
		m.attach(j, c)
		return nil
	}
	accept := func() error {
		for i := 0; i < m.Rank; i++ {
			c, err := l.Accept(p)
			if err != nil {
				return err
			}
			buf := make([]byte, rpi.EnvelopeSize)
			for got := 0; got < len(buf); {
				n, err := c.Read(p, buf[got:])
				if err != nil {
					return err
				}
				got += n
			}
			env, err := rpi.DecodeEnvelope(buf)
			if err != nil || env.Kind != rpi.KindHello {
				return fmt.Errorf("tcprpi: bad hello")
			}
			m.attach(int(env.Rank), c)
		}
		return nil
	}
	return rpi.MeshInit(p, m.barrier, m.Rank, m.Size, dial, accept)
}

func (m *Module) attach(rank int, c *tcp.Conn) {
	m.peers[rank] = &peer{conn: c}
	c.SetNotify(m.Notify)
	m.Counters().Add("connections", 1)
}

// Send implements rpi.RPI.
func (m *Module) Send(dest int, env rpi.Envelope, body []byte, onQueued func()) {
	pe := m.peers[dest]
	if pe == nil {
		panic(fmt.Sprintf("tcprpi: send to unconnected rank %d", dest))
	}
	pe.out.Push(env, body, onQueued)
	m.CountSend(len(body))
	pe.out.Flush(pe.conn.TryWrite, m.sendError)
}

func (m *Module) sendError(error) { m.Counters().Add("send_errors", 1) }

func (m *Module) frameError() { m.Counters().Add("frame_errors", 1) }

// Advance implements rpi.RPI: one select()-style pass over all
// sockets, reading every ready byte stream and flushing writers. The
// poll cost is linear in the descriptor count — the select() scan the
// paper discusses.
func (m *Module) Advance(p *sim.Proc, block bool) {
	m.Loop(p, block, m.Size-1, func() bool {
		progress := false
		for _, pe := range m.peers {
			if pe == nil {
				continue
			}
			if pe.out.Pending() && pe.out.Flush(pe.conn.TryWrite, m.sendError) > 0 {
				progress = true
			}
			if pe.in.Drain(pe.conn.TryRead, func(env rpi.Envelope, body []byte) {
				m.Complete(p, env, body)
			}, m.frameError) {
				progress = true
			}
		}
		return progress
	})
}

// Finalize implements rpi.RPI.
func (m *Module) Finalize(p *sim.Proc) {
	for _, pe := range m.peers {
		if pe != nil {
			pe.conn.Close()
		}
	}
	if m.listener != nil {
		m.listener.Close()
	}
}
