package tcprpi

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/mpi"
	"repro/internal/mpi/rpi"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/tcp"
)

// world builds n nodes with TCP stacks and tcprpi modules sharing a
// setup barrier, and runs fn per rank.
func world(t *testing.T, n int, opts Options, fn func(pr *mpi.Process, comm *mpi.Comm) error) []*Module {
	t.Helper()
	k := sim.New(1)
	net := netsim.NewNetwork(k)
	net.SetDefaultLinkParams(netsim.DefaultLinkParams())
	barrier := rpi.NewBarrier(k, n)
	addrs := make([]netsim.Addr, n)
	stacks := make([]*tcp.Stack, n)
	for i := 0; i < n; i++ {
		nd := net.NewNode(fmt.Sprintf("n%d", i))
		addrs[i] = netsim.MakeAddr(0, i+1)
		nd.AddInterface(addrs[i])
		stacks[i] = tcp.NewStack(nd, tcp.Config{NoDelay: true})
	}
	modules := make([]*Module, n)
	for i := 0; i < n; i++ {
		o := opts
		o.TCP.NoDelay = true
		modules[i] = New(stacks[i], i, addrs, barrier, o)
	}
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		rank := i
		k.Spawn(fmt.Sprintf("rank%d", rank), func(p *sim.Proc) {
			pr := mpi.NewProcess(p, rank, n, modules[rank], 0)
			comm, err := pr.Init()
			if err != nil {
				errs[rank] = err
				return
			}
			errs[rank] = fn(pr, comm)
			pr.Finalize()
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	return modules
}

func TestFullMeshEstablished(t *testing.T) {
	const n = 5
	modules := world(t, n, Options{}, func(pr *mpi.Process, comm *mpi.Comm) error {
		return comm.Barrier()
	})
	for r, m := range modules {
		if got := m.Counters()["connections"]; got != n-1 {
			t.Errorf("rank %d has %d connections, want %d (one socket per peer)", r, got, n-1)
		}
	}
}

func TestMessageCounters(t *testing.T) {
	modules := world(t, 2, Options{}, func(pr *mpi.Process, comm *mpi.Comm) error {
		if comm.Rank() == 0 {
			return comm.Send(1, 0, make([]byte, 1000))
		}
		buf := make([]byte, 1000)
		_, err := comm.Recv(0, 0, buf)
		return err
	})
	c0 := modules[0].Counters()
	c1 := modules[1].Counters()
	if c0["bytes_sent"] < 1000 {
		t.Errorf("rank 0 bytes_sent = %d", c0["bytes_sent"])
	}
	if c1["bytes_rcvd"] < 1000 {
		t.Errorf("rank 1 bytes_rcvd = %d", c1["bytes_rcvd"])
	}
	if c1["frame_errors"] != 0 {
		t.Errorf("frame errors: %d", c1["frame_errors"])
	}
}

// TestByteStreamFramingAcrossSegments: messages whose envelope+body do
// not align with segment boundaries must still frame correctly (a 3-byte
// message and a 100 KiB one interleave several segment sizes).
func TestByteStreamFramingAcrossSegments(t *testing.T) {
	world(t, 2, Options{}, func(pr *mpi.Process, comm *mpi.Comm) error {
		if comm.Rank() == 0 {
			for i := 0; i < 10; i++ {
				if err := comm.Send(1, 1, []byte{1, 2, 3}); err != nil {
					return err
				}
				big := make([]byte, 100<<10)
				for j := range big {
					big[j] = byte(j * (i + 1))
				}
				if err := comm.Send(1, 2, big); err != nil {
					return err
				}
			}
			return nil
		}
		small := make([]byte, 3)
		big := make([]byte, 100<<10)
		for i := 0; i < 10; i++ {
			if _, err := comm.Recv(0, 1, small); err != nil {
				return err
			}
			if small[0] != 1 || small[2] != 3 {
				return fmt.Errorf("small corrupt: %v", small)
			}
			st, err := comm.Recv(0, 2, big)
			if err != nil {
				return err
			}
			if st.Count != len(big) {
				return fmt.Errorf("big count %d", st.Count)
			}
			for j := range big {
				if big[j] != byte(j*(i+1)) {
					return fmt.Errorf("big corrupt at %d (round %d)", j, i)
				}
			}
		}
		return nil
	})
}

// TestSelectCostCharged: with a poll cost configured, advancing must
// consume virtual time proportional to the descriptor count.
func TestSelectCostCharged(t *testing.T) {
	run := func(pollPerFD time.Duration) float64 {
		k := sim.New(1)
		net := netsim.NewNetwork(k)
		net.SetDefaultLinkParams(netsim.DefaultLinkParams())
		const n = 4
		barrier := rpi.NewBarrier(k, n)
		addrs := make([]netsim.Addr, n)
		stacks := make([]*tcp.Stack, n)
		for i := 0; i < n; i++ {
			nd := net.NewNode(fmt.Sprintf("n%d", i))
			addrs[i] = netsim.MakeAddr(0, i+1)
			nd.AddInterface(addrs[i])
			stacks[i] = tcp.NewStack(nd, tcp.Config{NoDelay: true})
		}
		var end float64
		for i := 0; i < n; i++ {
			rank := i
			m := New(stacks[rank], rank, addrs, barrier, Options{
				Cost: rpi.CostModel{PollPerFD: pollPerFD},
				TCP:  tcp.Config{NoDelay: true},
			})
			k.Spawn("r", func(p *sim.Proc) {
				pr := mpi.NewProcess(p, rank, n, m, 0)
				comm, err := pr.Init()
				if err != nil {
					return
				}
				for j := 0; j < 20; j++ {
					comm.Barrier()
				}
				end = p.Now().Seconds()
				pr.Finalize()
			})
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return end
	}
	cheap := run(0)
	costly := run(100 * time.Microsecond)
	if costly <= cheap {
		t.Errorf("select cost not charged: %.6f vs %.6f", costly, cheap)
	}
}
