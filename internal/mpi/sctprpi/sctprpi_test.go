package sctprpi

import (
	"testing"
	"testing/quick"
)

func moduleWithStreams(n int, single bool) *Module {
	m := &Module{streams: n}
	m.opts.SingleStream = single
	return m
}

func TestStreamForDeterministic(t *testing.T) {
	m := moduleWithStreams(10, false)
	for ctx := int32(0); ctx < 5; ctx++ {
		for tag := int32(-3); tag < 20; tag++ {
			a := m.StreamFor(ctx, tag)
			b := m.StreamFor(ctx, tag)
			if a != b {
				t.Fatalf("StreamFor(%d,%d) not deterministic: %d vs %d", ctx, tag, a, b)
			}
			if int(a) >= 10 {
				t.Fatalf("stream %d out of pool", a)
			}
		}
	}
}

func TestStreamForSpreadsTags(t *testing.T) {
	// The paper's farm uses 10 task tags over a pool of 10 streams; the
	// mapping must spread them across several streams or multistreaming
	// buys nothing.
	m := moduleWithStreams(10, false)
	used := map[uint16]bool{}
	for tag := int32(0); tag < 10; tag++ {
		used[m.StreamFor(0, tag)] = true
	}
	if len(used) < 5 {
		t.Fatalf("10 tags mapped to only %d streams", len(used))
	}
}

func TestStreamForSingleStreamMode(t *testing.T) {
	m := moduleWithStreams(10, true)
	for tag := int32(0); tag < 100; tag++ {
		if m.StreamFor(1, tag) != 0 {
			t.Fatal("single-stream mode must pin everything to stream 0")
		}
	}
	one := moduleWithStreams(1, false)
	if one.StreamFor(3, 17) != 0 {
		t.Fatal("pool of one must use stream 0")
	}
}

func TestQuickStreamForInPool(t *testing.T) {
	f := func(ctx, tag int32, pool uint8) bool {
		n := int(pool%63) + 2
		m := moduleWithStreams(n, false)
		return int(m.StreamFor(ctx, tag)) < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: same TRC always maps to the same stream (ordering relies on
// this).
func TestQuickStreamForStable(t *testing.T) {
	f := func(ctx, tag int32) bool {
		m := moduleWithStreams(10, false)
		return m.StreamFor(ctx, tag) == m.StreamFor(ctx, tag)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
