// Package sctprpi is the paper's contribution: a request progression
// module over a single one-to-many SCTP socket per process.
//
//   - Associations map to ranks; streams map to (tag, context) so
//     messages with different TRCs deliver independently and
//     transport-level head-of-line blocking disappears (paper §3.1-3.2).
//   - No select(): the module retrieves whatever arrived with
//     sctp_recvmsg-style calls and demultiplexes on association then
//     stream (paper §3.3).
//   - Messages larger than the socket send buffer are split into
//     middleware-level chunks on one stream; a per-(peer, stream)
//     writer lock implements the paper's Option B fix for the long
//     message race (§3.4.2): no message may start on a stream while
//     another is partially written to it.
//   - Association setup ends with a barrier before any MPI traffic,
//     the paper's MPI_Init fix (§3.4.3).
//   - A single-stream mode reduces the module to one stream per
//     association for the Figure 12 head-of-line ablation.
//
// The progression machinery (counters, cost charging, the Advance
// loop, the Option B/C writer lock, chunk reassembly) lives in the
// shared rpi.Engine/rpi.MsgSender/rpi.Reassembler; this file is only
// the one-to-many socket binding.
package sctprpi

import (
	"repro/internal/mpi/rpi"
	"repro/internal/netsim"
	"repro/internal/sctp"
	"repro/internal/sim"
)

// DefaultPort is the one-to-many socket port.
const DefaultPort = 7002

// Options configures the module.
type Options struct {
	Port         uint16
	Cost         rpi.CostModel
	SCTP         sctp.Config
	SingleStream bool // Figure 12 ablation: ignore TRC, use stream 0
	// BodyChunk is the middleware chunk size for messages larger than
	// the transport send buffer. 0 derives it from the send buffer.
	BodyChunk int

	// OptionC enables the paper's §3.4.3 "Option C": control messages
	// (bodiless envelopes such as the rendezvous ACK) are tagged with a
	// distinct payload identifier and may be interleaved between the
	// body chunks of an in-progress long message on the same stream.
	// The receiver tells them apart by PPID, so the long-message race
	// cannot occur, and ACKs are never delayed behind bulk data — the
	// option the paper judged most concurrent but did not implement.
	// Off by default (the paper shipped Option B).
	OptionC bool
}

// Module is one process's SCTP RPI instance.
type Module struct {
	rpi.Engine
	stack   *sctp.Stack
	opts    Options
	addrs   [][]netsim.Addr // rank → all interface addresses (multihoming)
	barrier *rpi.Barrier

	sock        *sctp.Socket
	assocByRank []sctp.AssocID
	rankByAssoc map[sctp.AssocID]int
	streams     int
	sender      *rpi.MsgSender
	recv        *rpi.Reassembler
	hellos      int
}

// New builds the module for one rank. addrs maps each world rank to
// its full interface list (index 0 = primary); barrier must be shared
// by all ranks.
func New(stack *sctp.Stack, rank int, addrs [][]netsim.Addr, barrier *rpi.Barrier, opts Options) *Module {
	if opts.Port == 0 {
		opts.Port = DefaultPort
	}
	cfg := opts.SCTP
	if cfg.Streams == 0 {
		cfg.Streams = 10 // the paper's default stream pool
	}
	if opts.SingleStream {
		cfg.Streams = 1
	}
	opts.SCTP = cfg
	m := &Module{
		stack:       stack,
		opts:        opts,
		addrs:       addrs,
		barrier:     barrier,
		assocByRank: make([]sctp.AssocID, len(addrs)),
		rankByAssoc: make(map[sctp.AssocID]int),
	}
	m.SetupEngine(rank, len(addrs), opts.Cost)
	return m
}

// StreamFor exposes the TRC→stream mapping (for tests): messages with
// the same (context, tag) always share a stream; different TRCs spread
// across the pool.
func (m *Module) StreamFor(context, tag int32) uint16 {
	if m.opts.SingleStream {
		return 0
	}
	return rpi.StreamFor(m.streams, context, tag)
}

// Init implements rpi.RPI.
func (m *Module) Init(p *sim.Proc) error {
	m.BindProc(p)
	sk, err := m.stack.SocketConfig(m.opts.Port, m.opts.SCTP)
	if err != nil {
		return err
	}
	m.sock = sk
	m.streams = sk.Config().Streams
	m.sender = rpi.NewMsgSender(
		rpi.DeriveBodyChunk(m.opts.BodyChunk, sk.Config().SndBuf),
		m.opts.OptionC, m.Counters(), m.trySend)
	m.recv = rpi.NewReassembler(m.Counters())
	sk.Listen()
	sk.SetNotify(m.Notify)
	dial := func(j int, hello rpi.Envelope) error {
		id, err := sk.Connect(p, m.addrs[j], m.opts.Port, m.streams)
		if err != nil {
			return err
		}
		m.assocByRank[j] = id
		m.rankByAssoc[id] = j
		return sk.SendMsg(p, id, 0, 0, hello.Encode())
	}
	// The paper's §3.4.3 barrier: wait until a hello has arrived from
	// every peer (acceptors learn the association→rank mapping from it
	// and reply), then rendezvous globally so no process starts MPI
	// traffic before all associations exist.
	accept := func() error {
		for m.hellos < m.Size-1 {
			m.Advance(p, true)
		}
		return nil
	}
	return rpi.MeshInit(p, m.barrier, m.Rank, m.Size, dial, accept)
}

func (m *Module) trySend(key rpi.MsgKey, ppid uint32, data []byte) error {
	return m.sock.TrySendMsg(m.assocByRank[key.Rank], key.Stream, ppid, data)
}

// Send implements rpi.RPI: pick the stream from the envelope's TRC and
// queue behind any in-progress message on that (peer, stream). Under
// Option C, bodiless control messages (ACKs) bypass the queue and are
// interleaved between body chunks, distinguished on the wire by PPID.
func (m *Module) Send(dest int, env rpi.Envelope, body []byte, onQueued func()) {
	key := rpi.MsgKey{Rank: dest, Stream: m.StreamFor(env.Context, env.Tag)}
	m.CountSend(len(body))
	m.sender.Send(key, env, body, onQueued)
}

// Advance implements rpi.RPI: drain the one-to-many socket (no select;
// messages arrive in network order and are demultiplexed on association
// then stream), then flush writers. The poll cost covers a single
// descriptor regardless of world size.
func (m *Module) Advance(p *sim.Proc, block bool) {
	m.Loop(p, block, 1, func() bool {
		progress := false
		for {
			msg, err := m.sock.TryRecvMsg()
			if err != nil {
				break
			}
			if m.handleInbound(p, msg) {
				progress = true
			}
		}
		if m.sender.FlushActive() {
			progress = true
		}
		return progress
	})
}

// handleInbound processes one socket message: notification, hello,
// envelope, or body chunk. Returns whether middleware-visible progress
// happened.
func (m *Module) handleInbound(p *sim.Proc, msg *sctp.Message) bool {
	if msg.Notification != sctp.NotifyNone {
		switch msg.Notification {
		case sctp.NotifyCommUp:
			m.Counters().Add("assocs_up", 1)
		case sctp.NotifyCommLost:
			m.Counters().Add("assocs_lost", 1)
		case sctp.NotifyShutdownComplete:
			m.Counters().Add("assocs_closed", 1)
		}
		return false
	}
	key := rpi.RecvKey{ID: int64(msg.Assoc), Stream: msg.Stream}
	res, env, body := m.recv.Feed(key, msg.PPID, msg.Data)
	switch res {
	case rpi.FeedMessage:
		m.Complete(p, env, body)
		return true
	case rpi.FeedHello:
		r := int(env.Rank)
		if m.assocByRank[r] == 0 && r != m.Rank {
			// We are the acceptor: learn the mapping and reply.
			m.assocByRank[r] = msg.Assoc
			m.rankByAssoc[msg.Assoc] = r
			reply := rpi.Envelope{Kind: rpi.KindHello, Rank: int32(m.Rank)}
			if err := m.sock.SendMsg(p, msg.Assoc, 0, 0, reply.Encode()); err != nil {
				m.Counters().Add("send_errors", 1)
			}
		}
		m.hellos++
		return true
	default:
		return false
	}
}

// Finalize implements rpi.RPI: close the socket; graceful SHUTDOWN of
// every association proceeds in the background.
func (m *Module) Finalize(p *sim.Proc) {
	if m.sock != nil {
		m.sock.Close()
	}
}
