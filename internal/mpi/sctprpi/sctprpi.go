// Package sctprpi is the paper's contribution: a request progression
// module over a single one-to-many SCTP socket per process.
//
//   - Associations map to ranks; streams map to (tag, context) so
//     messages with different TRCs deliver independently and
//     transport-level head-of-line blocking disappears (paper §3.1-3.2).
//   - No select(): the module retrieves whatever arrived with
//     sctp_recvmsg-style calls and demultiplexes on association then
//     stream (paper §3.3).
//   - Messages larger than the socket send buffer are split into
//     middleware-level chunks on one stream; a per-(peer, stream)
//     writer lock implements the paper's Option B fix for the long
//     message race (§3.4.2): no message may start on a stream while
//     another is partially written to it.
//   - Association setup ends with a barrier before any MPI traffic,
//     the paper's MPI_Init fix (§3.4.3).
//   - A single-stream mode reduces the module to one stream per
//     association for the Figure 12 head-of-line ablation.
//
// The progression machinery (counters, cost charging, the Advance
// loop, the Option B/C writer lock, chunk reassembly, session
// recovery) lives in the shared rpi.Engine/rpi.MsgSender/
// rpi.Reassembler/rpi.Sessions; this file is only the one-to-many
// socket binding. Because both endpoints keep fixed ports, a redial
// from the same socket restarts the dead association in place on the
// peer (RFC 4960 §5.2): the survivor sees NotifyRestart with the same
// association id rather than a fresh association.
package sctprpi

import (
	"repro/internal/mpi/rpi"
	"repro/internal/netsim"
	"repro/internal/sctp"
	"repro/internal/sim"
	"repro/internal/transport"
	"repro/internal/wire"
)

// DefaultPort is the one-to-many socket port.
const DefaultPort = 7002

// Options configures the module.
type Options struct {
	Port         uint16
	Cost         rpi.CostModel
	SCTP         sctp.Config
	SingleStream bool // Figure 12 ablation: ignore TRC, use stream 0
	// BodyChunk is the middleware chunk size for messages larger than
	// the transport send buffer. 0 derives it from the send buffer.
	BodyChunk int

	// OptionC enables the paper's §3.4.3 "Option C": control messages
	// (bodiless envelopes such as the rendezvous ACK) are tagged with a
	// distinct payload identifier and may be interleaved between the
	// body chunks of an in-progress long message on the same stream.
	// The receiver tells them apart by PPID, so the long-message race
	// cannot occur, and ACKs are never delayed behind bulk data — the
	// option the paper judged most concurrent but did not implement.
	// Off by default (the paper shipped Option B).
	OptionC bool

	// RedialBudget and DropReplayEvery configure the session recovery
	// layer (see rpi.SessionConfig).
	RedialBudget    int
	DropReplayEvery int
}

// Module is one process's SCTP RPI instance.
type Module struct {
	rpi.Engine
	stack   *sctp.Stack
	opts    Options
	addrs   [][]netsim.Addr // rank → all interface addresses (multihoming)
	barrier *rpi.Barrier

	sock        *sctp.Socket
	assocByRank []sctp.AssocID
	rankByAssoc map[sctp.AssocID]int
	streams     int
	classed     map[uint64]uint8 // (assoc, stream) → last stamped class
	sender      *rpi.MsgSender
	recv        *rpi.Reassembler
	sess        *rpi.Sessions
	helloSeen   []bool // peers confirmed during bring-up (distinct)
	hellos      int
}

// New builds the module for one rank. addrs maps each world rank to
// its full interface list (index 0 = primary); barrier must be shared
// by all ranks.
func New(stack *sctp.Stack, rank int, addrs [][]netsim.Addr, barrier *rpi.Barrier, opts Options) *Module {
	if opts.Port == 0 {
		opts.Port = DefaultPort
	}
	cfg := opts.SCTP
	if cfg.Streams == 0 {
		cfg.Streams = 10 // the paper's default stream pool
	}
	if opts.SingleStream {
		cfg.Streams = 1
	}
	opts.SCTP = cfg
	m := &Module{
		stack:       stack,
		opts:        opts,
		addrs:       addrs,
		barrier:     barrier,
		assocByRank: make([]sctp.AssocID, len(addrs)),
		rankByAssoc: make(map[sctp.AssocID]int),
		classed:     make(map[uint64]uint8),
	}
	m.SetupEngine(rank, len(addrs), opts.Cost)
	return m
}

// StreamFor exposes the TRC→stream mapping (for tests): messages with
// the same (context, tag) always share a stream; different TRCs spread
// across the pool.
func (m *Module) StreamFor(context, tag int32) uint16 {
	if m.opts.SingleStream {
		return 0
	}
	return rpi.StreamFor(m.streams, context, tag)
}

// Init implements rpi.RPI.
func (m *Module) Init(p *sim.Proc) error {
	m.BindProc(p)
	m.helloSeen = make([]bool, m.Size)
	m.sess = rpi.NewSessions(&m.Engine, p.Kernel(), m.Size, rpi.SessionConfig{
		RedialBudget:    m.opts.RedialBudget,
		DropReplayEvery: m.opts.DropReplayEvery,
	})
	sk, err := m.stack.SocketConfig(m.opts.Port, m.opts.SCTP)
	if err != nil {
		return err
	}
	m.sock = sk
	m.streams = sk.Config().Streams
	m.sender = rpi.NewMsgSender(
		rpi.DeriveBodyChunk(m.opts.BodyChunk, sk.Config().SndBuf),
		m.opts.OptionC, m.Counters(), m.trySend)
	m.recv = rpi.NewReassembler(m.Counters())
	sk.Listen()
	// One endpoint, one poller source: every association's readiness
	// multiplexes onto the shared one-to-many socket, which is exactly
	// the paper's no-select() point — the hook is registered before any
	// Connect, so no message can arrive ahead of it.
	src := m.Poller().Register(0)
	sk.SetNotify(m.Poller().Hook(src))
	dial := func(j int, hello rpi.Envelope) error {
		id, err := sk.Connect(p, m.addrs[j], m.opts.Port, m.streams)
		if err != nil {
			return err
		}
		m.assocByRank[j] = id
		m.rankByAssoc[id] = j
		return sk.SendMsg(p, id, 0, 0, hello.Encode())
	}
	// The paper's §3.4.3 barrier: wait until every peer is confirmed —
	// by its hello (acceptors learn the association→rank mapping from
	// it and reply) or, if a session kill hit the bring-up, by a
	// completed recovery handshake — then rendezvous globally so no
	// process starts MPI traffic before all associations exist. The
	// rendezvous itself keeps pumping (DriveUntil): a rank whose peer is
	// still redialing must answer the recovery handshake.
	accept := func() error {
		for m.hellos < m.Size-1 {
			if err := m.Advance(p, true); err != nil {
				return err
			}
		}
		return nil
	}
	wait := func(done func() bool) error {
		return m.DriveUntil(p, 1, done,
			func(tag int, ev transport.Ready) bool { return m.onEvent(p, ev) },
			m.tail)
	}
	return rpi.MeshInit(p, m.barrier, m.Rank, m.Size, dial, accept, m.Notify, wait)
}

// markHello records that peer r is confirmed for the bring-up barrier:
// its hello arrived, or a recovery handshake completed with it (the
// hello's liveness-plus-mapping proof, for sessions killed mid-init —
// hellos are unsessioned and never replayed, so the handshake must
// stand in for a lost one).
func (m *Module) markHello(r int) {
	if r >= 0 && r < m.Size && r != m.Rank && !m.helloSeen[r] {
		m.helloSeen[r] = true
		m.hellos++
	}
}

func (m *Module) trySend(key rpi.MsgKey, ppid uint32, data []byte) error {
	id := m.assocByRank[key.Rank]
	if id == 0 {
		return sctp.ErrAborted
	}
	return m.sock.TrySendMsg(id, key.Stream, ppid, data)
}

// Send implements rpi.RPI: pick the stream from the envelope's TRC and
// queue behind any in-progress message on that (peer, stream). Under
// Option C, bodiless control messages (ACKs) bypass the queue and are
// interleaved between body chunks, distinguished on the wire by PPID.
// The session layer retains every message until acknowledged; the
// retained copy is the buffered-send completion point, so onQueued
// fires here. While the session is down the message is retention-only.
func (m *Module) Send(dest int, env rpi.Envelope, body []byte, onQueued func()) {
	up := m.sess.StampOut(dest, &env, body)
	m.CountSend(len(body))
	if onQueued != nil {
		onQueued()
	}
	if !up {
		return
	}
	key := rpi.MsgKey{Rank: dest, Stream: m.StreamFor(env.Context, env.Tag)}
	m.stampClass(key, env.Kind)
	m.sender.Send(key, env, body, nil)
}

// stampClass tells a chunk-interleaving transport scheduler what this
// stream is about to carry: the priority class (or weighted share)
// derived from the message kind. Stamps are cached per (association,
// stream) and re-applied automatically after a redial, because the
// replacement association has a different id. On legacy or FIFO/RR
// associations the socket calls are no-ops, so this costs one map probe.
func (m *Module) stampClass(key rpi.MsgKey, kind rpi.Kind) {
	sched := m.opts.SCTP.Scheduler
	if !m.opts.SCTP.IData ||
		(sched != sctp.SchedPriority && sched != sctp.SchedWeightedFair) {
		return
	}
	id := m.assocByRank[key.Rank]
	if id == 0 {
		return
	}
	class := rpi.ClassFor(kind)
	ck := uint64(id)<<16 | uint64(key.Stream)
	if prev, ok := m.classed[ck]; ok && prev == class {
		return
	}
	m.classed[ck] = class
	if sched == sctp.SchedPriority {
		_ = m.sock.SetStreamPriority(id, key.Stream, class)
	} else {
		_ = m.sock.SetStreamWeight(id, key.Stream, rpi.WeightFor(class))
	}
}

// Advance implements rpi.RPI: drain the one-to-many socket when its
// readiness edge fires (no select; messages arrive in network order
// and are demultiplexed on association then stream) and flush writers.
// The poll cost covers a single descriptor regardless of world size.
func (m *Module) Advance(p *sim.Proc, block bool) error {
	return m.Drive(p, block, 1,
		func(tag int, ev transport.Ready) bool { return m.onEvent(p, ev) },
		m.tail)
}

// onEvent is the socket's readiness handler: edge-triggered, so it
// drains the receive queue to would-block and flushes every writer
// with queued work (a ReadySend edge means SACKs freed buffer space).
func (m *Module) onEvent(p *sim.Proc, ev transport.Ready) bool {
	progress := false
	for {
		msg, err := m.sock.TryRecvMsg()
		if err != nil {
			break
		}
		if m.handleInbound(p, msg) {
			progress = true
		}
	}
	if m.sender.FlushActive() {
		progress = true
	}
	return progress
}

// tail services the time-driven recovery state on a Notify kick: redial
// attempts that came due.
func (m *Module) tail(kicked bool) bool {
	if !kicked {
		return false
	}
	progress := false
	for r := 0; r < m.Size; r++ {
		if r != m.Rank && m.assocByRank[r] == 0 && m.sess.RedialDue(r) {
			m.redial(m.Proc(), r)
			progress = true
		}
	}
	return progress
}

// redial runs one redial attempt: claim budget (terminal error when
// exhausted), reconnect from the same one-to-many socket blocking in
// process context (on the peer this restarts the association in
// place), and open the KindReconnect handshake.
func (m *Module) redial(p *sim.Proc, r int) {
	if err := m.sess.BeginAttempt(r); err != nil {
		m.Fail(err)
		return
	}
	id, err := m.sock.Connect(p, m.addrs[r], m.opts.Port, m.streams)
	if err != nil {
		m.sess.AttemptFailed(r)
		return
	}
	m.sess.DialSucceeded(r)
	m.assocByRank[r] = id
	m.rankByAssoc[id] = r
	m.sendHandshake(r, m.sess.ReconnectEnv(r))
}

// sendHandshake queues one recovery handshake envelope (stream 0,
// unsessioned) through the shared writer.
func (m *Module) sendHandshake(r int, env rpi.Envelope) {
	key := rpi.MsgKey{Rank: r, Stream: 0}
	m.stampClass(key, env.Kind)
	m.sender.Send(key, env, nil, nil)
}

// replayGap queues the negotiated retention gap, each message on its
// original TRC stream. Replays bypass CountSend and the observer: the
// original send was already counted.
func (m *Module) replayGap(r int, gap []rpi.Retained) {
	for _, rt := range gap {
		key := rpi.MsgKey{Rank: r, Stream: m.StreamFor(rt.Env.Context, rt.Env.Tag)}
		m.stampClass(key, rt.Env.Kind)
		m.sender.Send(key, rt.Env, rt.Body, nil)
	}
}

// onAssocLost handles an abortive association loss (NotifyCommLost):
// tear down per-peer state and either start the recovery episode or,
// if a replacement association died before its handshake completed,
// charge a failed redial attempt.
func (m *Module) onAssocLost(id sctp.AssocID) {
	r, ok := m.rankByAssoc[id]
	if !ok {
		return
	}
	delete(m.rankByAssoc, id)
	m.assocByRank[r] = 0
	m.sender.DropPeer(r)
	m.recv.Drop(int64(id))
	if m.sess.MarkLost(r) {
		m.sess.ScheduleRedial(r)
	} else {
		m.sess.AttemptFailed(r)
	}
}

// onAssocRestart handles an in-place association restart
// (NotifyRestart, RFC 4960 §5.2): the peer redialed us after losing
// its half of the association. Same association id, but all transfer
// state reset — so partial reassembly and queued output are garbage.
// The session goes Suspect and waits for the peer's KindReconnect (no
// redial from this side: the peer brought the replacement session).
func (m *Module) onAssocRestart(id sctp.AssocID) {
	r, ok := m.rankByAssoc[id]
	if !ok {
		return
	}
	m.sender.DropPeer(r)
	m.recv.Drop(int64(id))
	m.sess.MarkLost(r)
}

// adoptAssoc binds rank r to association id, retiring any previous
// association (an implicit loss if we had not noticed it yet).
func (m *Module) adoptAssoc(r int, id sctp.AssocID) {
	old := m.assocByRank[r]
	if old == id {
		return
	}
	if old != 0 {
		m.sess.MarkLost(r)
		m.sender.DropPeer(r)
		m.recv.Drop(int64(old))
		delete(m.rankByAssoc, old)
		_ = m.sock.KillAssoc(old)
	}
	m.assocByRank[r] = id
	m.rankByAssoc[id] = r
}

// handleInbound processes one socket message: notification, hello,
// recovery handshake, envelope, or body chunk. Returns whether
// middleware-visible progress happened.
func (m *Module) handleInbound(p *sim.Proc, msg *sctp.Message) bool {
	if msg.Notification != sctp.NotifyNone {
		switch msg.Notification {
		case sctp.NotifyCommUp:
			m.Counters().Add("assocs_up", 1)
		case sctp.NotifyCommLost:
			m.Counters().Add("assocs_lost", 1)
			m.onAssocLost(msg.Assoc)
			return true
		case sctp.NotifyRestart:
			m.Counters().Add("assocs_restarted", 1)
			m.onAssocRestart(msg.Assoc)
			return true
		case sctp.NotifyShutdownComplete:
			m.Counters().Add("assocs_closed", 1)
		}
		return false
	}
	key := rpi.RecvKey{ID: int64(msg.Assoc), Stream: msg.Stream}
	res, env, body := m.recv.Feed(key, msg.PPID, msg.Data)
	switch res {
	case rpi.FeedMessage:
		// Every middleware envelope carries the sender's world rank, so
		// an association the mapping does not know yet (a fresh inbound
		// replacement, whose data can overtake its KindReconnect on
		// another stream) still routes correctly.
		r, known := m.rankByAssoc[msg.Assoc]
		if !known {
			r = int(env.Rank)
			if r < 0 || r >= m.Size || r == m.Rank {
				if body != nil {
					wire.PutBuf(body)
				}
				return true
			}
		}
		switch env.Kind {
		case rpi.KindReconnect:
			m.adoptAssoc(r, msg.Assoc)
			ack, gap := m.sess.OnReconnect(r, env)
			m.sendHandshake(r, ack)
			m.replayGap(r, gap)
			m.sess.Resume(r)
			m.markHello(r)
			return true
		case rpi.KindReconnectAck:
			m.adoptAssoc(r, msg.Assoc)
			m.replayGap(r, m.sess.OnReconnectAck(r, env))
			m.sess.Resume(r)
			m.markHello(r)
			return true
		}
		if !known {
			m.adoptAssoc(r, msg.Assoc)
		}
		if !m.sess.Accept(r, &env) {
			if body != nil {
				wire.PutBuf(body)
			}
			return true
		}
		m.Complete(p, env, body)
		return true
	case rpi.FeedHello:
		r := int(env.Rank)
		if r < 0 || r >= m.Size || r == m.Rank {
			return true
		}
		if m.assocByRank[r] == 0 {
			// We are the acceptor: learn the mapping and reply.
			m.assocByRank[r] = msg.Assoc
			m.rankByAssoc[msg.Assoc] = r
			reply := rpi.Envelope{Kind: rpi.KindHello, Rank: int32(m.Rank)}
			if err := m.sock.SendMsg(p, msg.Assoc, 0, 0, reply.Encode()); err != nil {
				m.Counters().Add("send_errors", 1)
			}
		}
		m.markHello(r)
		return true
	default:
		return false
	}
}

// KillSession implements the chaos harness's session-kill hook: destroy
// the association to peer silently (no ABORT chunk — as if the host
// vanished), in kernel context. Detection and recovery run later from
// the owning process's Advance.
func (m *Module) KillSession(peer int) {
	if id := m.assocByRank[peer]; id != 0 {
		_ = m.sock.KillAssoc(id)
	}
}

// Finalize implements rpi.RPI: close the socket; graceful SHUTDOWN of
// every association proceeds in the background.
func (m *Module) Finalize(p *sim.Proc) {
	if m.sock != nil {
		m.sock.Close()
	}
}

// Abort implements rpi.RPI: abortive teardown after a terminal error.
// Every association is aborted (peers fail fast on the ABORT chunk)
// and the socket released, so redials aimed at this rank are refused
// with an out-of-the-blue ABORT instead of hanging.
func (m *Module) Abort(p *sim.Proc) {
	if m.sock == nil {
		return
	}
	for r, id := range m.assocByRank {
		if id != 0 {
			_ = m.sock.Abort(id, "job aborted")
			m.assocByRank[r] = 0
		}
	}
	m.sock.Close()
}
