// Package sctprpi is the paper's contribution: a request progression
// module over a single one-to-many SCTP socket per process.
//
//   - Associations map to ranks; streams map to (tag, context) so
//     messages with different TRCs deliver independently and
//     transport-level head-of-line blocking disappears (paper §3.1-3.2).
//   - No select(): the module retrieves whatever arrived with
//     sctp_recvmsg-style calls and demultiplexes on association then
//     stream (paper §3.3).
//   - Messages larger than the socket send buffer are split into
//     middleware-level chunks on one stream; a per-(peer, stream)
//     writer lock implements the paper's Option B fix for the long
//     message race (§3.4.2): no message may start on a stream while
//     another is partially written to it.
//   - Association setup ends with a barrier before any MPI traffic,
//     the paper's MPI_Init fix (§3.4.3).
//   - A single-stream mode reduces the module to one stream per
//     association for the Figure 12 head-of-line ablation.
package sctprpi

import (
	"fmt"

	"repro/internal/mpi/rpi"
	"repro/internal/netsim"
	"repro/internal/sctp"
	"repro/internal/sim"
)

// DefaultPort is the one-to-many socket port.
const DefaultPort = 7002

// Options configures the module.
type Options struct {
	Port         uint16
	Cost         rpi.CostModel
	SCTP         sctp.Config
	SingleStream bool // Figure 12 ablation: ignore TRC, use stream 0
	// BodyChunk is the middleware chunk size for messages larger than
	// the transport send buffer. 0 derives it from the send buffer.
	BodyChunk int

	// OptionC enables the paper's §3.4.3 "Option C": control messages
	// (bodiless envelopes such as the rendezvous ACK) are tagged with a
	// distinct payload identifier and may be interleaved between the
	// body chunks of an in-progress long message on the same stream.
	// The receiver tells them apart by PPID, so the long-message race
	// cannot occur, and ACKs are never delayed behind bulk data — the
	// option the paper judged most concurrent but did not implement.
	// Off by default (the paper shipped Option B).
	OptionC bool
}

// Payload protocol identifiers distinguishing middleware frame types on
// the wire (the SCTP PPID field, which the paper notes is free for
// application use).
const (
	ppidEnvelope = 1
	ppidBody     = 2
)

type streamKey struct {
	rank   int
	stream uint16
}

type recvKey struct {
	assoc  sctp.AssocID
	stream uint16
}

// Module is one process's SCTP RPI instance.
type Module struct {
	stack   *sctp.Stack
	opts    Options
	rank    int
	size    int
	addrs   [][]netsim.Addr // rank → all interface addresses (multihoming)
	barrier *rpi.Barrier
	deliver rpi.Delivery

	self        *sim.Proc
	sock        *sctp.Socket
	assocByRank []sctp.AssocID
	rankByAssoc map[sctp.AssocID]int
	streams     int
	bodyChunk   int

	// Option B state: at most one in-progress outbound message per
	// (peer, stream); the rest queue behind it. Under Option C,
	// bodiless control messages jump this queue via ctrlQ.
	inProg map[streamKey]*outMsg
	queued map[streamKey][]*outMsg
	ctrlQ  map[streamKey][][]byte
	active []streamKey // keys with work, in arrival order (deterministic)

	// Per-(association, stream) inbound reassembly of middleware
	// chunks. This is the "maintaining state per stream" design of
	// paper §3.2.4.
	rstate map[recvKey]*recvState

	hellos   int
	cond     *sim.Cond
	dirty    bool
	counters map[string]int64
}

type outMsg struct {
	env      []byte
	body     []byte
	off      int
	envSent  bool
	onQueued func()
}

type recvState struct {
	env     rpi.Envelope
	haveEnv bool
	body    []byte
}

// New builds the module for one rank. addrs maps each world rank to
// its full interface list (index 0 = primary); barrier must be shared
// by all ranks.
func New(stack *sctp.Stack, rank int, addrs [][]netsim.Addr, barrier *rpi.Barrier, opts Options) *Module {
	if opts.Port == 0 {
		opts.Port = DefaultPort
	}
	cfg := opts.SCTP
	if cfg.Streams == 0 {
		cfg.Streams = 10 // the paper's default stream pool
	}
	if opts.SingleStream {
		cfg.Streams = 1
	}
	opts.SCTP = cfg
	m := &Module{
		stack:       stack,
		opts:        opts,
		rank:        rank,
		size:        len(addrs),
		addrs:       addrs,
		barrier:     barrier,
		assocByRank: make([]sctp.AssocID, len(addrs)),
		rankByAssoc: make(map[sctp.AssocID]int),
		inProg:      make(map[streamKey]*outMsg),
		queued:      make(map[streamKey][]*outMsg),
		ctrlQ:       make(map[streamKey][][]byte),
		rstate:      make(map[recvKey]*recvState),
		counters:    make(map[string]int64),
	}
	return m
}

// SetDelivery implements rpi.RPI.
func (m *Module) SetDelivery(d rpi.Delivery) { m.deliver = d }

// Counters implements rpi.RPI.
func (m *Module) Counters() map[string]int64 { return m.counters }

// StreamFor exposes the TRC→stream mapping (for tests): messages with
// the same (context, tag) always share a stream; different TRCs spread
// across the pool.
func (m *Module) StreamFor(context, tag int32) uint16 {
	if m.opts.SingleStream || m.streams <= 1 {
		return 0
	}
	h := uint32(context)*2654435761 + uint32(tag)*40503
	return uint16(h % uint32(m.streams))
}

// Init implements rpi.RPI.
func (m *Module) Init(p *sim.Proc) error {
	m.self = p
	m.cond = sim.NewCond(p.Kernel())
	sk, err := m.stack.SocketConfig(m.opts.Port, m.opts.SCTP)
	if err != nil {
		return err
	}
	m.sock = sk
	m.streams = sk.Config().Streams
	m.bodyChunk = m.opts.BodyChunk
	if m.bodyChunk <= 0 {
		m.bodyChunk = sk.Config().SndBuf / 4
		if m.bodyChunk > 64<<10 {
			m.bodyChunk = 64 << 10
		}
		if m.bodyChunk < 4<<10 {
			m.bodyChunk = 4 << 10
		}
	}
	sk.Listen()
	sk.SetNotify(func() {
		m.dirty = true
		m.cond.Broadcast()
	})
	// Every socket must be listening before anyone INITs.
	m.barrier.Arrive(p)

	// Lower rank initiates each association (avoids INIT collision).
	hello := rpi.Envelope{Kind: rpi.KindHello, Rank: int32(m.rank)}
	for j := m.rank + 1; j < m.size; j++ {
		id, err := sk.Connect(p, m.addrs[j], m.opts.Port, m.streams)
		if err != nil {
			return fmt.Errorf("sctprpi: rank %d connect to %d: %w", m.rank, j, err)
		}
		m.assocByRank[j] = id
		m.rankByAssoc[id] = j
		if err := sk.SendMsg(p, id, 0, 0, hello.Encode()); err != nil {
			return err
		}
	}
	// The paper's §3.4.3 barrier: wait until a hello has arrived from
	// every peer (acceptors learn the association→rank mapping from it
	// and reply), then rendezvous globally so no process starts MPI
	// traffic before all associations exist.
	for m.hellos < m.size-1 {
		m.Advance(p, true)
	}
	m.barrier.Arrive(p)
	return nil
}

// Send implements rpi.RPI: pick the stream from the envelope's TRC and
// queue behind any in-progress message on that (peer, stream). Under
// Option C, bodiless control messages (ACKs) bypass the queue and are
// interleaved between body chunks, distinguished on the wire by PPID.
func (m *Module) Send(dest int, env rpi.Envelope, body []byte, onQueued func()) {
	st := m.StreamFor(env.Context, env.Tag)
	key := streamKey{dest, st}
	m.counters["msgs_sent"]++
	m.counters["bytes_sent"] += int64(len(body))
	if d := m.opts.Cost.SendCost(len(body)); d > 0 && m.self != nil {
		m.self.Sleep(d)
	}
	if m.opts.OptionC && len(body) == 0 && !env.Kind.HasBody() {
		m.counters["optionc_ctrl"]++
		m.ctrlQ[key] = append(m.ctrlQ[key], env.Encode())
		m.ensureActive(key)
		m.flushKey(key)
		if onQueued != nil {
			onQueued()
		}
		return
	}
	msg := &outMsg{env: env.Encode(), body: body, onQueued: onQueued}
	if m.inProg[key] != nil {
		// Option B: the stream is busy; wait behind it.
		m.counters["optionb_queued"]++
		m.queued[key] = append(m.queued[key], msg)
		return
	}
	m.inProg[key] = msg
	m.ensureActive(key)
	m.flushKey(key)
}

func (m *Module) ensureActive(key streamKey) {
	for _, k := range m.active {
		if k == key {
			return
		}
	}
	m.active = append(m.active, key)
}

// flushKey pushes pending work on one (peer, stream) as far as the
// transport allows: Option C control messages first, then the
// in-progress message, then the next queued one. It returns the number
// of transport messages accepted.
func (m *Module) flushKey(key streamKey) int {
	sent := 0
	id := m.assocByRank[key.rank]
	for {
		// Control messages jump the line (Option C); interleaving them
		// between body chunks is safe because frame types are
		// distinguished by PPID.
		for len(m.ctrlQ[key]) > 0 {
			envBytes := m.ctrlQ[key][0]
			err := m.sock.TrySendMsg(id, key.stream, ppidEnvelope, envBytes)
			if err == sctp.ErrWouldBlock {
				return sent
			}
			if err != nil {
				m.counters["send_errors"]++
			}
			m.ctrlQ[key] = m.ctrlQ[key][1:]
			sent++
		}
		msg := m.inProg[key]
		if msg == nil {
			if q := m.queued[key]; len(q) > 0 {
				msg = q[0]
				m.queued[key] = q[1:]
				m.inProg[key] = msg
			} else {
				m.removeActive(key)
				return sent
			}
		}
		if !msg.envSent {
			err := m.sock.TrySendMsg(id, key.stream, ppidEnvelope, msg.env)
			if err == sctp.ErrWouldBlock {
				return sent
			}
			if err != nil {
				m.counters["send_errors"]++
				m.finishMsg(key, msg)
				continue
			}
			msg.envSent = true
			sent++
		}
		for msg.off < len(msg.body) {
			end := msg.off + m.bodyChunk
			if end > len(msg.body) {
				end = len(msg.body)
			}
			err := m.sock.TrySendMsg(id, key.stream, ppidBody, msg.body[msg.off:end])
			if err == sctp.ErrWouldBlock {
				return sent
			}
			if err != nil {
				m.counters["send_errors"]++
				break
			}
			msg.off = end
			sent++
		}
		m.finishMsg(key, msg)
	}
}

func (m *Module) finishMsg(key streamKey, msg *outMsg) {
	m.inProg[key] = nil
	if msg.onQueued != nil {
		msg.onQueued()
	}
}

func (m *Module) removeActive(key streamKey) {
	for i, k := range m.active {
		if k == key {
			m.active = append(m.active[:i], m.active[i+1:]...)
			return
		}
	}
}

// Advance implements rpi.RPI: drain the one-to-many socket (no select;
// messages arrive in network order and are demultiplexed on association
// then stream), then flush writers.
func (m *Module) Advance(p *sim.Proc, block bool) {
	for {
		m.dirty = false
		if d := m.opts.Cost.PollCost(1); d > 0 {
			p.Sleep(d)
		}
		progress := false
		// Inbound: retrieve messages as long as any are pending.
		for {
			msg, err := m.sock.TryRecvMsg()
			if err != nil {
				break
			}
			if m.handleInbound(p, msg) {
				progress = true
			}
		}
		// Outbound: flush every (peer, stream) with pending work.
		for i := 0; i < len(m.active); i++ {
			key := m.active[i]
			before := len(m.active)
			if m.flushKey(key) > 0 {
				progress = true
			}
			if len(m.active) < before {
				i-- // key retired
			}
		}
		if progress || !block {
			return
		}
		if m.dirty {
			continue
		}
		m.cond.Wait(p)
	}
}

// handleInbound processes one socket message: notification, hello,
// envelope, or body chunk. Returns whether middleware-visible progress
// happened.
func (m *Module) handleInbound(p *sim.Proc, msg *sctp.Message) bool {
	if msg.Notification != sctp.NotifyNone {
		switch msg.Notification {
		case sctp.NotifyCommUp:
			m.counters["assocs_up"]++
		case sctp.NotifyCommLost:
			m.counters["assocs_lost"]++
		case sctp.NotifyShutdownComplete:
			m.counters["assocs_closed"]++
		}
		return false
	}
	key := recvKey{msg.Assoc, msg.Stream}
	rs := m.rstate[key]
	if rs != nil && rs.haveEnv && msg.PPID != ppidEnvelope {
		// Continuation chunk of a long middleware message on this
		// stream. Under Option B the chunks are contiguous; under
		// Option C a control envelope may be interleaved, but it
		// carries ppidEnvelope and is routed below instead — the
		// disambiguation that fixes the paper's §3.4 race.
		rs.body = append(rs.body, msg.Data...)
		if len(rs.body) >= rs.env.Length {
			env, body := rs.env, rs.body
			delete(m.rstate, key)
			m.complete(p, env, body)
			return true
		}
		return false
	}
	// An envelope: either fresh traffic on this stream or an Option C
	// control message interleaved with a body.
	env, err := rpi.DecodeEnvelope(msg.Data)
	if err != nil {
		m.counters["frame_errors"]++
		return false
	}
	if env.Kind == rpi.KindHello {
		r := int(env.Rank)
		if m.assocByRank[r] == 0 && r != m.rank {
			// We are the acceptor: learn the mapping and reply.
			m.assocByRank[r] = msg.Assoc
			m.rankByAssoc[msg.Assoc] = r
			reply := rpi.Envelope{Kind: rpi.KindHello, Rank: int32(m.rank)}
			if err := m.sock.SendMsg(p, msg.Assoc, 0, 0, reply.Encode()); err != nil {
				m.counters["send_errors"]++
			}
		}
		m.hellos++
		return true
	}
	if !env.Kind.HasBody() || env.Length == 0 {
		m.complete(p, env, nil)
		return true
	}
	if rs != nil && rs.haveEnv {
		// A data envelope arriving inside another message's body train
		// violates the writer lock (Option B) / PPID protocol.
		m.counters["frame_errors"]++
		return false
	}
	m.rstate[key] = &recvState{env: env, haveEnv: true, body: make([]byte, 0, env.Length)}
	return false
}

func (m *Module) complete(p *sim.Proc, env rpi.Envelope, body []byte) {
	m.counters["msgs_rcvd"]++
	m.counters["bytes_rcvd"] += int64(len(body))
	if d := m.opts.Cost.RecvCost(len(body)); d > 0 {
		p.Sleep(d)
	}
	m.deliver(env, body)
}

// Finalize implements rpi.RPI: close the socket; graceful SHUTDOWN of
// every association proceeds in the background.
func (m *Module) Finalize(p *sim.Proc) {
	if m.sock != nil {
		m.sock.Close()
	}
}
