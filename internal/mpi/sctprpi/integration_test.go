package sctprpi

import (
	"fmt"
	"testing"

	"repro/internal/mpi"
	"repro/internal/mpi/rpi"
	"repro/internal/netsim"
	"repro/internal/sctp"
	"repro/internal/sim"
)

// world builds n single-homed nodes with SCTP stacks and sctprpi
// modules, runs fn per rank, and returns the modules for inspection.
func world(t *testing.T, n int, lp netsim.LinkParams, opts Options, fn func(pr *mpi.Process, comm *mpi.Comm) error) []*Module {
	t.Helper()
	k := sim.New(1)
	net := netsim.NewNetwork(k)
	net.SetDefaultLinkParams(lp)
	barrier := rpi.NewBarrier(k, n)
	addrs := make([][]netsim.Addr, n)
	stacks := make([]*sctp.Stack, n)
	for i := 0; i < n; i++ {
		nd := net.NewNode(fmt.Sprintf("n%d", i))
		nd.AddInterface(netsim.MakeAddr(0, i+1))
		addrs[i] = nd.Addrs()
		stacks[i] = sctp.NewStack(nd, sctp.Config{HBDisable: true})
	}
	modules := make([]*Module, n)
	for i := 0; i < n; i++ {
		o := opts
		o.SCTP.HBDisable = true
		modules[i] = New(stacks[i], i, addrs, barrier, o)
	}
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		rank := i
		k.Spawn(fmt.Sprintf("rank%d", rank), func(p *sim.Proc) {
			pr := mpi.NewProcess(p, rank, n, modules[rank], 0)
			comm, err := pr.Init()
			if err != nil {
				errs[rank] = err
				return
			}
			errs[rank] = fn(pr, comm)
			pr.Finalize()
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	return modules
}

func TestOneSocketManyAssociations(t *testing.T) {
	const n = 6
	modules := world(t, n, netsim.DefaultLinkParams(), Options{},
		func(pr *mpi.Process, comm *mpi.Comm) error {
			return comm.Barrier()
		})
	// Unlike the TCP module's N-1 sockets, each rank has exactly one
	// one-to-many socket and N-1 associations on it (paper §3.3).
	for r, m := range modules {
		up := m.Counters()["assocs_up"]
		if up != n-1 {
			t.Errorf("rank %d: %d associations, want %d", r, up, n-1)
		}
	}
}

func TestTagsSpreadAcrossStreams(t *testing.T) {
	modules := world(t, 2, netsim.DefaultLinkParams(), Options{},
		func(pr *mpi.Process, comm *mpi.Comm) error {
			if comm.Rank() == 0 {
				for tag := 0; tag < 10; tag++ {
					if err := comm.Send(1, tag, make([]byte, 100)); err != nil {
						return err
					}
				}
				return nil
			}
			buf := make([]byte, 100)
			for tag := 0; tag < 10; tag++ {
				if _, err := comm.Recv(0, tag, buf); err != nil {
					return err
				}
			}
			return nil
		})
	// Sanity via the mapping itself (counters do not track streams).
	used := map[uint16]bool{}
	for tag := int32(0); tag < 10; tag++ {
		used[modules[0].StreamFor(0, tag)] = true
	}
	if len(used) < 5 {
		t.Errorf("tags used only %d streams", len(used))
	}
}

func TestLongMessageChunkingCounters(t *testing.T) {
	opts := Options{BodyChunk: 16 << 10}
	modules := world(t, 2, netsim.DefaultLinkParams(), opts,
		func(pr *mpi.Process, comm *mpi.Comm) error {
			if comm.Rank() == 0 {
				// 200 KiB long message: rendezvous + 13 middleware chunks.
				return comm.Send(1, 0, make([]byte, 200<<10))
			}
			buf := make([]byte, 200<<10)
			st, err := comm.Recv(0, 0, buf)
			if err != nil {
				return err
			}
			if st.Count != 200<<10 {
				return fmt.Errorf("count %d", st.Count)
			}
			return nil
		})
	c := modules[0].Counters()
	if c["bytes_sent"] < 200<<10 {
		t.Errorf("bytes_sent = %d", c["bytes_sent"])
	}
	if c["frame_errors"] != 0 {
		t.Errorf("frame errors: %d", c["frame_errors"])
	}
}

func TestOptionBQueueing(t *testing.T) {
	// Two overlapping long sends on the same tag: the second must queue
	// behind the first on the shared stream (Option B).
	modules := world(t, 2, netsim.DefaultLinkParams(), Options{},
		func(pr *mpi.Process, comm *mpi.Comm) error {
			if comm.Rank() == 0 {
				r1, err := comm.Isend(1, 5, make([]byte, 150<<10))
				if err != nil {
					return err
				}
				r2, err := comm.Isend(1, 5, make([]byte, 150<<10))
				if err != nil {
					return err
				}
				return comm.WaitAll(r1, r2)
			}
			// Post both receives up front so both rendezvous ACKs fire
			// and the two bodies compete for the same stream.
			b1 := make([]byte, 150<<10)
			b2 := make([]byte, 150<<10)
			r1, err := comm.Irecv(0, 5, b1)
			if err != nil {
				return err
			}
			r2, err := comm.Irecv(0, 5, b2)
			if err != nil {
				return err
			}
			return comm.WaitAll(r1, r2)
		})
	if q := modules[0].Counters()["optionb_queued"]; q == 0 {
		t.Error("Option B never queued despite overlapping sends on one stream")
	}
}

func TestSingleStreamModeCounters(t *testing.T) {
	modules := world(t, 2, netsim.DefaultLinkParams(), Options{SingleStream: true},
		func(pr *mpi.Process, comm *mpi.Comm) error {
			if comm.Rank() == 0 {
				for tag := 0; tag < 5; tag++ {
					if err := comm.Send(1, tag, []byte("x")); err != nil {
						return err
					}
				}
				return nil
			}
			buf := make([]byte, 4)
			for tag := 0; tag < 5; tag++ {
				if _, err := comm.Recv(0, tag, buf); err != nil {
					return err
				}
			}
			return nil
		})
	for tag := int32(0); tag < 100; tag++ {
		if modules[0].StreamFor(0, tag) != 0 {
			t.Fatal("single-stream module used a nonzero stream")
		}
	}
}

func TestUnderLossIntegration(t *testing.T) {
	lp := netsim.DefaultLinkParams()
	lp.LossRate = 0.02
	world(t, 3, lp, Options{},
		func(pr *mpi.Process, comm *mpi.Comm) error {
			me := comm.Rank()
			for round := 0; round < 5; round++ {
				for peer := 0; peer < comm.Size(); peer++ {
					if peer == me {
						continue
					}
					in := make([]byte, 20<<10)
					if _, err := comm.SendRecv(peer, round, make([]byte, 20<<10), peer, round, in); err != nil {
						return err
					}
				}
			}
			return nil
		})
}

func TestOptionCModule(t *testing.T) {
	modules := world(t, 2, netsim.DefaultLinkParams(), Options{OptionC: true},
		func(pr *mpi.Process, comm *mpi.Comm) error {
			other := 1 - comm.Rank()
			out := make([]byte, 150<<10)
			in := make([]byte, 150<<10)
			sreq, err := comm.Isend(other, 0, out)
			if err != nil {
				return err
			}
			rreq, err := comm.Irecv(other, 0, in)
			if err != nil {
				return err
			}
			return comm.WaitAll(sreq, rreq)
		})
	total := modules[0].Counters()["optionc_ctrl"] + modules[1].Counters()["optionc_ctrl"]
	if total == 0 {
		t.Error("Option C control path never used")
	}
}
