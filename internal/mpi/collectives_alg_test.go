package mpi

import (
	"bytes"
	"fmt"
	"testing"
)

// Conformance: the tree/ring/recursive-doubling collectives must
// produce bit-identical buffers to the naive linear reference across
// awkward communicator sizes (powers of two, odd, prime, and large).
// Operators are chosen to be order-independent at the bit level
// (int64 sum, float64 max), since the tree and ring algorithms apply
// op in a different order than the linear loop.

var conformanceRanks = []int{2, 3, 8, 17, 64}

// rankPattern gives rank r a deterministic, rank-distinguishing int64
// vector.
func rankPattern(r, words int) []int64 {
	v := make([]int64, words)
	for i := range v {
		v[i] = int64(r+1)*1_000_003 + int64(i)*7 + int64((r*31+i)%13)
	}
	return v
}

// collect runs body on an n-rank loopback world under alg and returns
// each rank's resulting buffer.
func collect(t *testing.T, n int, alg Alg, body func(comm *Comm) ([]byte, error)) [][]byte {
	t.Helper()
	res := make([][]byte, n)
	run(t, n, func(pr *Process, comm *Comm) error {
		comm.SetAlg(alg)
		out, err := body(comm)
		res[comm.Rank()] = out
		return err
	})
	return res
}

func compareAlgs(t *testing.T, n int, name string, body func(comm *Comm) ([]byte, error)) {
	t.Helper()
	tree := collect(t, n, AlgTree, body)
	naive := collect(t, n, AlgNaive, body)
	// Loopback worlds have no multicast service, so AlgMulticast must
	// transparently degrade to the tree algorithms — the mcastEligible
	// escape hatch this pass pins.
	mcast := collect(t, n, AlgMulticast, body)
	for r := 0; r < n; r++ {
		if !bytes.Equal(tree[r], naive[r]) {
			t.Fatalf("n=%d %s: rank %d tree result differs from naive", n, name, r)
		}
		if !bytes.Equal(mcast[r], naive[r]) {
			t.Fatalf("n=%d %s: rank %d multicast(degraded) result differs from naive", n, name, r)
		}
	}
}

func TestTreeMatchesNaiveBcast(t *testing.T) {
	for _, n := range conformanceRanks {
		root := (n - 1) / 2
		compareAlgs(t, n, "bcast", func(comm *Comm) ([]byte, error) {
			data := make([]byte, 96)
			if comm.Rank() == root {
				copy(data, I64Bytes(rankPattern(root, 12)))
			}
			err := comm.Bcast(root, data)
			return data, err
		})
	}
}

func TestTreeMatchesNaiveReduce(t *testing.T) {
	for _, n := range conformanceRanks {
		root := n - 1
		compareAlgs(t, n, "reduce", func(comm *Comm) ([]byte, error) {
			data := I64Bytes(rankPattern(comm.Rank(), 16))
			if err := comm.Reduce(root, data, OpSumI64); err != nil {
				return nil, err
			}
			if comm.Rank() != root {
				return nil, nil // only the root's buffer is defined
			}
			return data, nil
		})
	}
}

func TestTreeMatchesNaiveAllreduce(t *testing.T) {
	// Small payload exercises recursive doubling; the large one crosses
	// ringMinBytes with len/8 >= 64 so every n > 2 takes the ring.
	sizes := []int{16, (32 << 10) / 8}
	for _, n := range conformanceRanks {
		for _, words := range sizes {
			name := fmt.Sprintf("allreduce-sum-%dw", words)
			compareAlgs(t, n, name, func(comm *Comm) ([]byte, error) {
				data := I64Bytes(rankPattern(comm.Rank(), words))
				err := comm.Allreduce(data, OpSumI64)
				return data, err
			})
			name = fmt.Sprintf("allreduce-max-%dw", words)
			compareAlgs(t, n, name, func(comm *Comm) ([]byte, error) {
				v := make([]float64, words)
				for i := range v {
					v[i] = float64((comm.Rank()*17+i*3)%101) - 50
				}
				data := F64Bytes(v)
				err := comm.Allreduce(data, OpMaxF64)
				return data, err
			})
		}
	}
}

// TestRingAllreduceUnevenChunks hits the ring path with a word count
// that does not divide evenly by n, so chunk sizes differ across the
// ring.
func TestRingAllreduceUnevenChunks(t *testing.T) {
	n := 17
	words := (32<<10)/8 + 5 // 4101 words across 17 ranks
	compareAlgs(t, n, "allreduce-uneven", func(comm *Comm) ([]byte, error) {
		data := I64Bytes(rankPattern(comm.Rank(), words))
		err := comm.Allreduce(data, OpSumI64)
		return data, err
	})
}

// TestNaiveBarrier checks the linear barrier actually synchronizes:
// every rank observes all other ranks' entry flags set once released.
func TestNaiveBarrier(t *testing.T) {
	for _, n := range conformanceRanks {
		entered := make([]bool, n)
		run(t, n, func(pr *Process, comm *Comm) error {
			comm.SetAlg(AlgNaive)
			entered[comm.Rank()] = true
			if err := comm.Barrier(); err != nil {
				return err
			}
			for r, ok := range entered {
				if !ok {
					return fmt.Errorf("rank %d passed barrier before rank %d entered", comm.Rank(), r)
				}
			}
			return nil
		})
	}
}

// TestAlgInheritance: Dup and Split must carry the algorithm family.
func TestAlgInheritance(t *testing.T) {
	run(t, 4, func(pr *Process, comm *Comm) error {
		comm.SetAlg(AlgNaive)
		d, err := comm.Dup()
		if err != nil {
			return err
		}
		if d.AlgValue() != AlgNaive {
			return fmt.Errorf("Dup dropped AlgNaive")
		}
		s, err := d.Split(comm.Rank()%2, comm.Rank())
		if err != nil {
			return err
		}
		if s.AlgValue() != AlgNaive {
			return fmt.Errorf("Split dropped AlgNaive")
		}
		return nil
	})
}
