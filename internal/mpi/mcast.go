package mpi

import "repro/internal/sim"

// Multicast is the reliable-multicast service the AlgMulticast family
// rides on (implemented by rmcast.Endpoint; an interface here so the
// middleware never imports the network layers). Bcast runs one
// broadcast operation: the root publishes data, receivers fill data in
// place on commit, and committed=false means the operation aborted —
// the caller must replay it over the point-to-point tree in the bumped
// epoch. health is polled while parked; it should advance the
// transport non-blockingly and report whether a session died.
// NoteComplete closes the operation's books once the payload is
// delivered (directly or via the fallback replay), so observers see
// exactly one completion per operation per rank.
type Multicast interface {
	Bcast(p *sim.Proc, root int, data []byte, health func() (bool, error)) (committed bool, err error)
	NoteComplete(fallback bool, data []byte)
}

// SetMulticast installs the process's reliable-multicast service.
// Without one (loop worlds, tests), AlgMulticast communicators degrade
// to the tree algorithms.
func (pr *Process) SetMulticast(m Multicast) { pr.mcast = m }

// mcastEligible reports whether this communicator can run multicast
// collectives: a service must be installed and the communicator must be
// the world group in world order, since the multicast group spans every
// rank. Split/shrunken communicators degrade to the tree.
func (c *Comm) mcastEligible() bool {
	if c.pr.mcast == nil || len(c.group) != c.pr.size {
		return false
	}
	for i, w := range c.group {
		if w != i {
			return false
		}
	}
	return true
}

// mcastBcast is Bcast under AlgMulticast: reliable multicast first,
// tree replay on abort. The health probe advances the transport
// without blocking and reports any newly lost session, so a mid-
// broadcast AssocKill is detected while the process is parked in the
// multicast wait loop, not just at the next point-to-point call.
func (c *Comm) mcastBcast(root int, data []byte) error {
	pr := c.pr
	base := pr.rpi.Counters()["sessions_lost"]
	health := func() (bool, error) {
		if err := pr.rpi.Advance(pr.P, false); err != nil {
			return false, err
		}
		return pr.rpi.Counters()["sessions_lost"] > base, nil
	}
	committed, err := pr.mcast.Bcast(pr.P, c.group[root], data, health)
	if err != nil {
		return err
	}
	if !committed {
		// Replay on the binomial tree, on its own tag so a straggling
		// multicast-era message can never satisfy a replay receive. The
		// multicast layer delivers nothing on abort, so the replay is
		// the operation's only delivery — exactly-once across the epoch
		// bump.
		if err := c.treeBcast(root, tagMcastFB, data); err != nil {
			return err
		}
	}
	pr.mcast.NoteComplete(!committed, data)
	return nil
}
