package mpi

import (
	"encoding/binary"
	"math"

	"repro/internal/mpi/rpi"
)

// Internal collective tags. Collectives run on the communicator's
// collective context (ctx+1), so they can never match user traffic.
const (
	tagBarrier  = 1
	tagBcast    = 2
	tagReduce   = 3
	tagGather   = 4
	tagScatter  = 5
	tagGatherA  = 6
	tagAlltoall = 7
)

// Op folds src into acc (acc op= src). Implementations must be
// element-wise over the encoded representation.
type Op func(acc, src []byte)

// csend/crecv are point-to-point on the collective context.
func (c *Comm) csend(dest, tag int, data []byte) error {
	w, err := c.worldOf(dest)
	if err != nil {
		return err
	}
	req := c.pr.isend(w, tag, c.ctx+1, data, false)
	_, err = c.pr.Wait(req)
	return err
}

func (c *Comm) cisend(dest, tag int, data []byte) (*Request, error) {
	w, err := c.worldOf(dest)
	if err != nil {
		return nil, err
	}
	return c.pr.isend(w, tag, c.ctx+1, data, false), nil
}

func (c *Comm) crecv(src, tag int, buf []byte) (Status, error) {
	w, err := c.worldOf(src)
	if err != nil {
		return Status{}, err
	}
	req := c.pr.irecv(w, tag, c.ctx+1, buf)
	st, err := c.pr.Wait(req)
	return c.fixStatus(st), err
}

// Barrier blocks until every process in the communicator has entered
// it (dissemination algorithm, log2(n) rounds).
func (c *Comm) Barrier() error {
	n := c.Size()
	if n == 1 {
		return nil
	}
	me := c.Rank()
	var tok [1]byte
	for k := 1; k < n; k <<= 1 {
		to := (me + k) % n
		from := (me - k + n) % n
		sreq, err := c.cisend(to, tagBarrier, tok[:])
		if err != nil {
			return err
		}
		if _, err := c.crecv(from, tagBarrier, tok[:]); err != nil {
			return err
		}
		if _, err := c.pr.Wait(sreq); err != nil {
			return err
		}
	}
	return nil
}

// Bcast broadcasts root's data to every process (binomial tree). Every
// caller passes a data slice of the same length; non-root slices are
// overwritten.
func (c *Comm) Bcast(root int, data []byte) error {
	n := c.Size()
	if n == 1 {
		return nil
	}
	rel := (c.Rank() - root + n) % n
	// Receive from the parent: the node that differs in our lowest set
	// bit.
	mask := 1
	for mask < n {
		if rel&mask != 0 {
			src := ((rel ^ mask) + root) % n
			if _, err := c.crecv(src, tagBcast, data); err != nil {
				return err
			}
			break
		}
		mask <<= 1
	}
	// Forward to children below the bit where we received.
	mask >>= 1
	for mask > 0 {
		if rel+mask < n {
			dst := ((rel + mask) + root) % n
			if err := c.csend(dst, tagBcast, data); err != nil {
				return err
			}
		}
		mask >>= 1
	}
	return nil
}

// Reduce folds everyone's data into root's acc using op (binomial
// tree). data is each caller's contribution; on root, the result is
// left in data. op must be associative and commutative.
func (c *Comm) Reduce(root int, data []byte, op Op) error {
	n := c.Size()
	if n == 1 {
		return nil
	}
	rel := (c.Rank() - root + n) % n
	tmp := make([]byte, len(data))
	for k := 1; k < n; k <<= 1 {
		if rel&k != 0 {
			// Send partial to the sibling and leave.
			dst := ((rel ^ k) + root) % n
			return c.csend(dst, tagReduce, data)
		}
		srcRel := rel | k
		if srcRel < n {
			src := (srcRel + root) % n
			if _, err := c.crecv(src, tagReduce, tmp); err != nil {
				return err
			}
			op(data, tmp)
		}
	}
	return nil
}

// Allreduce is Reduce to rank 0 followed by Bcast, as LAM implements
// it.
func (c *Comm) Allreduce(data []byte, op Op) error {
	if err := c.Reduce(0, data, op); err != nil {
		return err
	}
	return c.Bcast(0, data)
}

// Gather collects equal-size contributions into recv on root
// (recv length = Size()*len(send)); recv may be nil elsewhere.
func (c *Comm) Gather(root int, send []byte, recv []byte) error {
	if c.Rank() != root {
		return c.csend(root, tagGather, send)
	}
	m := len(send)
	copy(recv[root*m:], send)
	for r := 0; r < c.Size(); r++ {
		if r == root {
			continue
		}
		if _, err := c.crecv(r, tagGather, recv[r*m:(r+1)*m]); err != nil {
			return err
		}
	}
	return nil
}

// Scatter distributes equal-size slices of send (on root) to every
// process's recv.
func (c *Comm) Scatter(root int, send []byte, recv []byte) error {
	m := len(recv)
	if c.Rank() != root {
		_, err := c.crecv(root, tagScatter, recv)
		return err
	}
	var reqs []*Request
	for r := 0; r < c.Size(); r++ {
		if r == root {
			copy(recv, send[r*m:(r+1)*m])
			continue
		}
		req, err := c.cisend(r, tagScatter, send[r*m:(r+1)*m])
		if err != nil {
			return err
		}
		reqs = append(reqs, req)
	}
	return c.pr.WaitAll(reqs...)
}

// Allgather concatenates everyone's equal-size contribution at every
// process (gather at 0 + broadcast).
func (c *Comm) Allgather(send []byte, recv []byte) error {
	if err := c.Gather(0, send, recv); err != nil {
		return err
	}
	return c.Bcast(0, recv)
}

// Alltoall sends the r-th equal-size slice of send to rank r and
// receives into the r-th slice of recv, using a phased pairwise
// exchange.
func (c *Comm) Alltoall(send []byte, recv []byte) error {
	n := c.Size()
	m := len(send) / n
	me := c.Rank()
	copy(recv[me*m:(me+1)*m], send[me*m:(me+1)*m])
	for phase := 1; phase < n; phase++ {
		dst := (me + phase) % n
		src := (me - phase + n) % n
		if _, err := c.SendRecvColl(dst, send[dst*m:(dst+1)*m], src, recv[src*m:(src+1)*m]); err != nil {
			return err
		}
	}
	return nil
}

// Alltoallv is Alltoall with per-rank counts: sendCounts[r] bytes go to
// rank r from offset sendOffs[r]; symmetric for receive.
func (c *Comm) Alltoallv(send []byte, sendCounts, sendOffs []int, recv []byte, recvCounts, recvOffs []int) error {
	n := c.Size()
	me := c.Rank()
	copy(recv[recvOffs[me]:recvOffs[me]+recvCounts[me]],
		send[sendOffs[me]:sendOffs[me]+sendCounts[me]])
	for phase := 1; phase < n; phase++ {
		dst := (me + phase) % n
		src := (me - phase + n) % n
		sslice := send[sendOffs[dst] : sendOffs[dst]+sendCounts[dst]]
		rslice := recv[recvOffs[src] : recvOffs[src]+recvCounts[src]]
		if _, err := c.SendRecvColl(dst, sslice, src, rslice); err != nil {
			return err
		}
	}
	return nil
}

// SendRecvColl is SendRecv on the collective context.
func (c *Comm) SendRecvColl(dest int, sendData []byte, src int, recvBuf []byte) (Status, error) {
	wd, err := c.worldOf(dest)
	if err != nil {
		return Status{}, err
	}
	ws, err := c.worldOf(src)
	if err != nil {
		return Status{}, err
	}
	sreq := c.pr.isend(wd, tagAlltoall, c.ctx+1, sendData, false)
	rreq := c.pr.irecv(ws, tagAlltoall, c.ctx+1, recvBuf)
	if _, err := c.pr.Wait(sreq); err != nil {
		return Status{}, err
	}
	st, err := c.pr.Wait(rreq)
	return c.fixStatus(st), err
}

// AllgatherI64 is a convenience Allgather over int64 slices (used by
// Split and by benchmarks).
func (c *Comm) AllgatherI64(send []int64, recv []int64) error {
	sb := make([]byte, 8*len(send))
	for i, v := range send {
		binary.LittleEndian.PutUint64(sb[8*i:], uint64(v))
	}
	rb := make([]byte, 8*len(recv))
	if err := c.Allgather(sb, rb); err != nil {
		return err
	}
	for i := range recv {
		recv[i] = int64(binary.LittleEndian.Uint64(rb[8*i:]))
	}
	return nil
}

// --- built-in reduction operators and codecs -------------------------

// OpSumF64 adds float64 vectors element-wise.
func OpSumF64(acc, src []byte) {
	for i := 0; i+8 <= len(acc); i += 8 {
		a := math.Float64frombits(binary.LittleEndian.Uint64(acc[i:]))
		b := math.Float64frombits(binary.LittleEndian.Uint64(src[i:]))
		binary.LittleEndian.PutUint64(acc[i:], math.Float64bits(a+b))
	}
}

// OpMaxF64 takes the element-wise maximum of float64 vectors.
func OpMaxF64(acc, src []byte) {
	for i := 0; i+8 <= len(acc); i += 8 {
		a := math.Float64frombits(binary.LittleEndian.Uint64(acc[i:]))
		b := math.Float64frombits(binary.LittleEndian.Uint64(src[i:]))
		if b > a {
			binary.LittleEndian.PutUint64(acc[i:], math.Float64bits(b))
		}
	}
}

// OpSumI64 adds int64 vectors element-wise.
func OpSumI64(acc, src []byte) {
	for i := 0; i+8 <= len(acc); i += 8 {
		a := int64(binary.LittleEndian.Uint64(acc[i:]))
		b := int64(binary.LittleEndian.Uint64(src[i:]))
		binary.LittleEndian.PutUint64(acc[i:], uint64(a+b))
	}
}

// OpMaxI64 takes the element-wise maximum of int64 vectors.
func OpMaxI64(acc, src []byte) {
	for i := 0; i+8 <= len(acc); i += 8 {
		a := int64(binary.LittleEndian.Uint64(acc[i:]))
		b := int64(binary.LittleEndian.Uint64(src[i:]))
		if b > a {
			binary.LittleEndian.PutUint64(acc[i:], uint64(b))
		}
	}
}

// F64Bytes encodes a float64 slice (little endian).
func F64Bytes(v []float64) []byte {
	b := make([]byte, 8*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(x))
	}
	return b
}

// BytesF64 decodes into a float64 slice of len(b)/8.
func BytesF64(b []byte) []float64 {
	v := make([]float64, len(b)/8)
	for i := range v {
		v[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return v
}

// I64Bytes encodes an int64 slice (little endian).
func I64Bytes(v []int64) []byte {
	b := make([]byte, 8*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(b[8*i:], uint64(x))
	}
	return b
}

// BytesI64 decodes into an int64 slice of len(b)/8.
func BytesI64(b []byte) []int64 {
	v := make([]int64, len(b)/8)
	for i := range v {
		v[i] = int64(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return v
}

var _ = rpi.KindShort // keep the import pinned for doc references
