package mpi

import (
	"encoding/binary"
	"math"

	"repro/internal/mpi/rpi"
)

// Internal collective tags. Collectives run on the communicator's
// collective context (ctx+1), so they can never match user traffic.
const (
	tagBarrier   = 1
	tagBcast     = 2
	tagReduce    = 3
	tagGather    = 4
	tagScatter   = 5
	tagGatherA   = 6
	tagAlltoall  = 7
	tagAllreduce = 12 // 8..11 belong to the variable-count collectives
	tagMcastFB   = 13 // tree replay of an aborted multicast broadcast
)

// Alg selects a communicator's collective algorithm family.
type Alg int

// Collective algorithm families.
const (
	// AlgTree is the scalable default: binomial-tree broadcast and
	// reduce, dissemination barrier, and an allreduce that picks ring
	// (bandwidth-optimal) or recursive doubling (latency-optimal) by
	// message size — O(log N) rounds where the naive family is O(N).
	AlgTree Alg = iota
	// AlgNaive is the linear root-loops-over-ranks ablation (LAM's
	// basic algorithms): every collective serializes through a root.
	// Kept selectable for the O(N)-vs-O(log N) benchmark tables and as
	// the reference implementation the conformance tests compare
	// against.
	AlgNaive
	// AlgMulticast rides the reliable-multicast service for Bcast (and
	// for the fan-out half of Allreduce, after a tree reduce to rank
	// 0): one link-layer multicast reaches every receiver, NAKs repair
	// gaps, and any member death or repair-budget exhaustion degrades
	// the operation to the AlgTree path on the same communicator,
	// replayed exactly-once across the epoch bump. Collectives without
	// a multicast shape — and communicators without a multicast service
	// or narrower than the world — run the AlgTree algorithms.
	AlgMulticast
)

// SetAlg switches the communicator's collective algorithms. It must be
// called symmetrically on every rank (like any collective property).
// New communicators default to AlgTree; Dup and Split inherit.
func (c *Comm) SetAlg(a Alg) { c.alg = a }

// AlgValue returns the communicator's collective algorithm family.
func (c *Comm) AlgValue() Alg { return c.alg }

// Op folds src into acc (acc op= src). Implementations must be
// element-wise over the encoded representation.
type Op func(acc, src []byte)

// csend/crecv are point-to-point on the collective context.
func (c *Comm) csend(dest, tag int, data []byte) error {
	w, err := c.worldOf(dest)
	if err != nil {
		return err
	}
	req := c.pr.isend(w, tag, c.ctx+1, data, false)
	_, err = c.pr.Wait(req)
	return err
}

func (c *Comm) cisend(dest, tag int, data []byte) (*Request, error) {
	w, err := c.worldOf(dest)
	if err != nil {
		return nil, err
	}
	return c.pr.isend(w, tag, c.ctx+1, data, false), nil
}

func (c *Comm) cirecv(src, tag int, buf []byte) (*Request, error) {
	w, err := c.worldOf(src)
	if err != nil {
		return nil, err
	}
	return c.pr.irecv(w, tag, c.ctx+1, buf), nil
}

func (c *Comm) crecv(src, tag int, buf []byte) (Status, error) {
	req, err := c.cirecv(src, tag, buf)
	if err != nil {
		return Status{}, err
	}
	st, err := c.pr.Wait(req)
	return c.fixStatus(st), err
}

// Barrier blocks until every process in the communicator has entered
// it (dissemination algorithm, log2(n) rounds; linear fan-in/fan-out
// through rank 0 under AlgNaive).
func (c *Comm) Barrier() error {
	n := c.Size()
	if n == 1 {
		return nil
	}
	if c.alg == AlgNaive {
		return c.naiveBarrier()
	}
	me := c.Rank()
	var tok [1]byte
	for k := 1; k < n; k <<= 1 {
		to := (me + k) % n
		from := (me - k + n) % n
		sreq, err := c.cisend(to, tagBarrier, tok[:])
		if err != nil {
			return err
		}
		if _, err := c.crecv(from, tagBarrier, tok[:]); err != nil {
			return err
		}
		if _, err := c.pr.Wait(sreq); err != nil {
			return err
		}
	}
	return nil
}

// Bcast broadcasts root's data to every process (binomial tree, or a
// linear root loop under AlgNaive). Every caller passes a data slice of
// the same length; non-root slices are overwritten.
func (c *Comm) Bcast(root int, data []byte) error {
	n := c.Size()
	if n == 1 {
		return nil
	}
	if c.alg == AlgNaive {
		return c.naiveBcast(root, data)
	}
	if c.alg == AlgMulticast && c.mcastEligible() {
		return c.mcastBcast(root, data)
	}
	return c.treeBcast(root, tagBcast, data)
}

// treeBcast is the binomial-tree broadcast body, parameterized by tag
// so the multicast fallback replay runs on its own tag and can never
// match a regular tree broadcast's traffic.
func (c *Comm) treeBcast(root, tag int, data []byte) error {
	n := c.Size()
	rel := (c.Rank() - root + n) % n
	// Receive from the parent: the node that differs in our lowest set
	// bit.
	mask := 1
	for mask < n {
		if rel&mask != 0 {
			src := ((rel ^ mask) + root) % n
			if _, err := c.crecv(src, tag, data); err != nil {
				return err
			}
			break
		}
		mask <<= 1
	}
	// Forward to children below the bit where we received.
	mask >>= 1
	for mask > 0 {
		if rel+mask < n {
			dst := ((rel + mask) + root) % n
			if err := c.csend(dst, tag, data); err != nil {
				return err
			}
		}
		mask >>= 1
	}
	return nil
}

// Reduce folds everyone's data into root's acc using op (binomial
// tree, or a linear root loop under AlgNaive). data is each caller's
// contribution; on root, the result is left in data. op must be
// associative and commutative.
func (c *Comm) Reduce(root int, data []byte, op Op) error {
	n := c.Size()
	if n == 1 {
		return nil
	}
	if c.alg == AlgNaive {
		return c.naiveReduce(root, data, op)
	}
	rel := (c.Rank() - root + n) % n
	tmp := make([]byte, len(data))
	for k := 1; k < n; k <<= 1 {
		if rel&k != 0 {
			// Send partial to the sibling and leave.
			dst := ((rel ^ k) + root) % n
			return c.csend(dst, tagReduce, data)
		}
		srcRel := rel | k
		if srcRel < n {
			src := (srcRel + root) % n
			if _, err := c.crecv(src, tagReduce, tmp); err != nil {
				return err
			}
			op(data, tmp)
		}
	}
	return nil
}

// ringMinBytes is the payload size above which Allreduce switches from
// recursive doubling (log2(n) rounds of full-length exchanges) to the
// bandwidth-optimal ring (2(n-1) rounds moving len/n bytes each).
const ringMinBytes = 32 << 10

// Allreduce folds everyone's data with op and leaves the result at
// every rank. Under AlgTree it runs recursive doubling for short
// payloads and a ring reduce-scatter + allgather for long 8-byte-
// aligned ones; under AlgNaive it is a linear reduce to rank 0
// followed by a linear broadcast (LAM's basic algorithm). op must be
// associative and commutative; note that ring and recursive doubling
// apply op in different orders, so floating-point sums may differ in
// the last ulp between sizes.
func (c *Comm) Allreduce(data []byte, op Op) error {
	n := c.Size()
	if n == 1 {
		return nil
	}
	if c.alg == AlgNaive {
		if err := c.naiveReduce(0, data, op); err != nil {
			return err
		}
		return c.naiveBcast(0, data)
	}
	if c.alg == AlgMulticast && c.mcastEligible() {
		// Reduce-to-root then multicast fan-out: the binomial reduce
		// funnels partials to rank 0 and the reliable multicast (with
		// its tree replay on abort) distributes the result.
		if err := c.Reduce(0, data, op); err != nil {
			return err
		}
		return c.mcastBcast(0, data)
	}
	if n > 2 && len(data) >= ringMinBytes && len(data)%8 == 0 && len(data)/8 >= n {
		return c.ringAllreduce(data, op)
	}
	return c.rdAllreduce(data, op)
}

// exchange swaps data with peer on the allreduce tag: post the send,
// block on the receive, then wait for the send before the caller
// mutates data.
func (c *Comm) exchange(peer int, data, tmp []byte) error {
	sreq, err := c.cisend(peer, tagAllreduce, data)
	if err != nil {
		return err
	}
	if _, err := c.crecv(peer, tagAllreduce, tmp); err != nil {
		return err
	}
	_, err = c.pr.Wait(sreq)
	return err
}

// rdAllreduce is recursive doubling with the MPICH fold for non-power-
// of-two sizes: the first 2*rem ranks pair up so rem of them sit out,
// the surviving pof2 ranks run log2(pof2) butterfly exchanges, and the
// folded ranks get the result back at the end.
func (c *Comm) rdAllreduce(data []byte, op Op) error {
	n := c.Size()
	me := c.Rank()
	pof2 := 1
	for pof2*2 <= n {
		pof2 *= 2
	}
	rem := n - pof2
	tmp := make([]byte, len(data))
	newrank := -1
	switch {
	case me < 2*rem && me%2 == 0:
		// Donate to the odd neighbor and sit out the butterfly.
		if err := c.csend(me+1, tagAllreduce, data); err != nil {
			return err
		}
	case me < 2*rem:
		if _, err := c.crecv(me-1, tagAllreduce, tmp); err != nil {
			return err
		}
		op(data, tmp)
		newrank = me / 2
	default:
		newrank = me - rem
	}
	if newrank >= 0 {
		for mask := 1; mask < pof2; mask <<= 1 {
			np := newrank ^ mask
			peer := np + rem
			if np < rem {
				peer = np*2 + 1
			}
			if err := c.exchange(peer, data, tmp); err != nil {
				return err
			}
			op(data, tmp)
		}
	}
	// Return the result to the ranks that folded out.
	if me < 2*rem {
		if me%2 == 0 {
			_, err := c.crecv(me+1, tagAllreduce, data)
			return err
		}
		return c.csend(me-1, tagAllreduce, data)
	}
	return nil
}

// ringAllreduce is the bandwidth-optimal reduce-scatter + allgather
// ring: each of the 2(n-1) steps moves one len/n chunk to the right
// neighbor, so every byte crosses each link at most twice regardless
// of n. Requires len%8 == 0 (chunks stay element-aligned for the
// 8-byte ops) and len/8 >= n.
func (c *Comm) ringAllreduce(data []byte, op Op) error {
	n := c.Size()
	me := c.Rank()
	words := len(data) / 8
	chunk := func(i int) (int, int) { return i * words / n * 8, (i + 1) * words / n * 8 }
	left := (me - 1 + n) % n
	right := (me + 1) % n
	_, maxEnd := chunk(0)
	for i := 1; i < n; i++ {
		lo, hi := chunk(i)
		if hi-lo > maxEnd {
			maxEnd = hi - lo
		}
	}
	tmp := make([]byte, maxEnd)
	// Reduce-scatter: after step s, rank me holds the partial fold of
	// s+1 contributions in chunk (me-s-1+n)%n; after n-1 steps it owns
	// the fully reduced chunk (me+1)%n.
	for s := 0; s < n-1; s++ {
		sc := (me - s + n) % n
		rc := (me - s - 1 + n) % n
		slo, shi := chunk(sc)
		rlo, rhi := chunk(rc)
		sreq, err := c.cisend(right, tagAllreduce, data[slo:shi])
		if err != nil {
			return err
		}
		if _, err := c.crecv(left, tagAllreduce, tmp[:rhi-rlo]); err != nil {
			return err
		}
		if _, err := c.pr.Wait(sreq); err != nil {
			return err
		}
		op(data[rlo:rhi], tmp[:rhi-rlo])
	}
	// Allgather: circulate the reduced chunks around the ring.
	for s := 0; s < n-1; s++ {
		sc := (me + 1 - s + 2*n) % n
		rc := (me - s + n) % n
		slo, shi := chunk(sc)
		rlo, rhi := chunk(rc)
		sreq, err := c.cisend(right, tagAllreduce, data[slo:shi])
		if err != nil {
			return err
		}
		if _, err := c.crecv(left, tagAllreduce, data[rlo:rhi]); err != nil {
			return err
		}
		if _, err := c.pr.Wait(sreq); err != nil {
			return err
		}
	}
	return nil
}

// --- naive (linear) ablations ---------------------------------------
//
// These are the O(N) root-serialized algorithms the tree family
// replaces. They stay selectable via SetAlg(AlgNaive) so benchmarks can
// quantify the O(N) vs O(log N) gap and conformance tests have an
// independent reference implementation.

func (c *Comm) naiveBarrier() error {
	n := c.Size()
	var tok [1]byte
	if c.Rank() != 0 {
		if err := c.csend(0, tagBarrier, tok[:]); err != nil {
			return err
		}
		_, err := c.crecv(0, tagBarrier, tok[:])
		return err
	}
	for r := 1; r < n; r++ {
		if _, err := c.crecv(r, tagBarrier, tok[:]); err != nil {
			return err
		}
	}
	for r := 1; r < n; r++ {
		if err := c.csend(r, tagBarrier, tok[:]); err != nil {
			return err
		}
	}
	return nil
}

func (c *Comm) naiveBcast(root int, data []byte) error {
	if c.Rank() != root {
		_, err := c.crecv(root, tagBcast, data)
		return err
	}
	// Post every send before waiting on any (the posting-order audit
	// Gather/Gatherv/naiveReduce/Scatter(v) already passed): a blocking
	// send per rank in turn would serialize n-1 rendezvous round-trips
	// through the root, when the network could run the handshakes
	// concurrently. The payload is read-only here, so all sends may
	// safely alias it.
	reqs := make([]*Request, 0, c.Size()-1)
	for r := 0; r < c.Size(); r++ {
		if r == root {
			continue
		}
		req, err := c.cisend(r, tagBcast, data)
		if err != nil {
			return err
		}
		reqs = append(reqs, req)
	}
	return c.pr.WaitAll(reqs...)
}

func (c *Comm) naiveReduce(root int, data []byte, op Op) error {
	if c.Rank() != root {
		return c.csend(root, tagReduce, data)
	}
	// Post every receive before waiting on any (the same posting-order
	// fix Gather and Gatherv carry): a blocking recv per rank in turn
	// would hold each sender's rendezvous body until the root reaches
	// its slot, serializing n-1 transfers that the network could
	// overlap. The fold still runs in ascending rank order afterwards,
	// so non-commutative ops see a deterministic reduction order.
	bufs := make([][]byte, c.Size())
	reqs := make([]*Request, 0, c.Size()-1)
	for r := 0; r < c.Size(); r++ {
		if r == root {
			continue
		}
		bufs[r] = make([]byte, len(data))
		req, err := c.cirecv(r, tagReduce, bufs[r])
		if err != nil {
			return err
		}
		reqs = append(reqs, req)
	}
	if err := c.pr.WaitAll(reqs...); err != nil {
		return err
	}
	for r := 0; r < c.Size(); r++ {
		if r != root {
			op(data, bufs[r])
		}
	}
	return nil
}

// Gather collects equal-size contributions into recv on root
// (recv length = Size()*len(send)); recv may be nil elsewhere.
func (c *Comm) Gather(root int, send []byte, recv []byte) error {
	if c.Rank() != root {
		return c.csend(root, tagGather, send)
	}
	m := len(send)
	copy(recv[root*m:], send)
	// Post every receive before waiting on any: the n-1 inbound
	// transfers land as they arrive instead of serializing in rank
	// order through the root.
	reqs := make([]*Request, 0, c.Size()-1)
	for r := 0; r < c.Size(); r++ {
		if r == root {
			continue
		}
		req, err := c.cirecv(r, tagGather, recv[r*m:(r+1)*m])
		if err != nil {
			return err
		}
		reqs = append(reqs, req)
	}
	return c.pr.WaitAll(reqs...)
}

// Scatter distributes equal-size slices of send (on root) to every
// process's recv.
func (c *Comm) Scatter(root int, send []byte, recv []byte) error {
	m := len(recv)
	if c.Rank() != root {
		_, err := c.crecv(root, tagScatter, recv)
		return err
	}
	var reqs []*Request
	for r := 0; r < c.Size(); r++ {
		if r == root {
			copy(recv, send[r*m:(r+1)*m])
			continue
		}
		req, err := c.cisend(r, tagScatter, send[r*m:(r+1)*m])
		if err != nil {
			return err
		}
		reqs = append(reqs, req)
	}
	return c.pr.WaitAll(reqs...)
}

// Allgather concatenates everyone's equal-size contribution at every
// process (gather at 0 + broadcast).
func (c *Comm) Allgather(send []byte, recv []byte) error {
	if err := c.Gather(0, send, recv); err != nil {
		return err
	}
	return c.Bcast(0, recv)
}

// Alltoall sends the r-th equal-size slice of send to rank r and
// receives into the r-th slice of recv. All n-1 receives are posted
// before any send (staggered by distance from me, so no two ranks hit
// the same destination in lockstep), letting every transfer overlap
// instead of running n-1 pairwise phases back to back.
func (c *Comm) Alltoall(send []byte, recv []byte) error {
	n := c.Size()
	m := len(send) / n
	me := c.Rank()
	copy(recv[me*m:(me+1)*m], send[me*m:(me+1)*m])
	reqs := make([]*Request, 0, 2*(n-1))
	for phase := 1; phase < n; phase++ {
		src := (me - phase + n) % n
		req, err := c.cirecv(src, tagAlltoall, recv[src*m:(src+1)*m])
		if err != nil {
			return err
		}
		reqs = append(reqs, req)
	}
	for phase := 1; phase < n; phase++ {
		dst := (me + phase) % n
		req, err := c.cisend(dst, tagAlltoall, send[dst*m:(dst+1)*m])
		if err != nil {
			return err
		}
		reqs = append(reqs, req)
	}
	return c.pr.WaitAll(reqs...)
}

// Alltoallv is Alltoall with per-rank counts: sendCounts[r] bytes go to
// rank r from offset sendOffs[r]; symmetric for receive. Like Alltoall,
// every receive is posted before any send.
func (c *Comm) Alltoallv(send []byte, sendCounts, sendOffs []int, recv []byte, recvCounts, recvOffs []int) error {
	n := c.Size()
	me := c.Rank()
	copy(recv[recvOffs[me]:recvOffs[me]+recvCounts[me]],
		send[sendOffs[me]:sendOffs[me]+sendCounts[me]])
	reqs := make([]*Request, 0, 2*(n-1))
	for phase := 1; phase < n; phase++ {
		src := (me - phase + n) % n
		req, err := c.cirecv(src, tagAlltoall, recv[recvOffs[src]:recvOffs[src]+recvCounts[src]])
		if err != nil {
			return err
		}
		reqs = append(reqs, req)
	}
	for phase := 1; phase < n; phase++ {
		dst := (me + phase) % n
		req, err := c.cisend(dst, tagAlltoall, send[sendOffs[dst]:sendOffs[dst]+sendCounts[dst]])
		if err != nil {
			return err
		}
		reqs = append(reqs, req)
	}
	return c.pr.WaitAll(reqs...)
}

// SendRecvColl is SendRecv on the collective context.
func (c *Comm) SendRecvColl(dest int, sendData []byte, src int, recvBuf []byte) (Status, error) {
	wd, err := c.worldOf(dest)
	if err != nil {
		return Status{}, err
	}
	ws, err := c.worldOf(src)
	if err != nil {
		return Status{}, err
	}
	sreq := c.pr.isend(wd, tagAlltoall, c.ctx+1, sendData, false)
	rreq := c.pr.irecv(ws, tagAlltoall, c.ctx+1, recvBuf)
	if _, err := c.pr.Wait(sreq); err != nil {
		return Status{}, err
	}
	st, err := c.pr.Wait(rreq)
	return c.fixStatus(st), err
}

// AllgatherI64 is a convenience Allgather over int64 slices (used by
// Split and by benchmarks).
func (c *Comm) AllgatherI64(send []int64, recv []int64) error {
	sb := make([]byte, 8*len(send))
	for i, v := range send {
		binary.LittleEndian.PutUint64(sb[8*i:], uint64(v))
	}
	rb := make([]byte, 8*len(recv))
	if err := c.Allgather(sb, rb); err != nil {
		return err
	}
	for i := range recv {
		recv[i] = int64(binary.LittleEndian.Uint64(rb[8*i:]))
	}
	return nil
}

// --- built-in reduction operators and codecs -------------------------

// OpSumF64 adds float64 vectors element-wise.
func OpSumF64(acc, src []byte) {
	for i := 0; i+8 <= len(acc); i += 8 {
		a := math.Float64frombits(binary.LittleEndian.Uint64(acc[i:]))
		b := math.Float64frombits(binary.LittleEndian.Uint64(src[i:]))
		binary.LittleEndian.PutUint64(acc[i:], math.Float64bits(a+b))
	}
}

// OpMaxF64 takes the element-wise maximum of float64 vectors.
func OpMaxF64(acc, src []byte) {
	for i := 0; i+8 <= len(acc); i += 8 {
		a := math.Float64frombits(binary.LittleEndian.Uint64(acc[i:]))
		b := math.Float64frombits(binary.LittleEndian.Uint64(src[i:]))
		if b > a {
			binary.LittleEndian.PutUint64(acc[i:], math.Float64bits(b))
		}
	}
}

// OpSumI64 adds int64 vectors element-wise.
func OpSumI64(acc, src []byte) {
	for i := 0; i+8 <= len(acc); i += 8 {
		a := int64(binary.LittleEndian.Uint64(acc[i:]))
		b := int64(binary.LittleEndian.Uint64(src[i:]))
		binary.LittleEndian.PutUint64(acc[i:], uint64(a+b))
	}
}

// OpMaxI64 takes the element-wise maximum of int64 vectors.
func OpMaxI64(acc, src []byte) {
	for i := 0; i+8 <= len(acc); i += 8 {
		a := int64(binary.LittleEndian.Uint64(acc[i:]))
		b := int64(binary.LittleEndian.Uint64(src[i:]))
		if b > a {
			binary.LittleEndian.PutUint64(acc[i:], uint64(b))
		}
	}
}

// F64Bytes encodes a float64 slice (little endian).
func F64Bytes(v []float64) []byte {
	b := make([]byte, 8*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(x))
	}
	return b
}

// BytesF64 decodes into a float64 slice of len(b)/8.
func BytesF64(b []byte) []float64 {
	v := make([]float64, len(b)/8)
	for i := range v {
		v[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return v
}

// I64Bytes encodes an int64 slice (little endian).
func I64Bytes(v []int64) []byte {
	b := make([]byte, 8*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(b[8*i:], uint64(x))
	}
	return b
}

// BytesI64 decodes into an int64 slice of len(b)/8.
func BytesI64(b []byte) []int64 {
	v := make([]int64, len(b)/8)
	for i := range v {
		v[i] = int64(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return v
}

var _ = rpi.KindShort // keep the import pinned for doc references
