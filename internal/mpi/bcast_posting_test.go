package mpi

import (
	"bytes"
	"testing"
	"time"
)

// TestNaiveBcastPostsAllSends pins the posting-order fix in naiveBcast
// (the outbound mirror of the naiveReduce audit): the root must post
// every send before waiting on any, so the n-1 rendezvous handshakes
// overlap instead of each blocking send serializing a full
// req/ack/body round-trip through the root.
//
// Same timing argument as TestNaiveReducePostsAllReceives: on the loop
// fabric's flat 100µs hops, the posted shape finishes the fan-out in a
// few hops (~300µs) while a rank-at-a-time loop needs ~two hops per
// receiver (~3.2ms at 17 ranks). The 1 ms ceiling cleanly separates
// the regimes without being sensitive to protocol-constant drift.
func TestNaiveBcastPostsAllSends(t *testing.T) {
	const n = 17
	const words = (96 << 10) / 8 // rendezvous territory, well above eager
	var elapsed time.Duration
	results := make([][]byte, n)
	run(t, n, func(pr *Process, comm *Comm) error {
		comm.SetAlg(AlgNaive)
		data := make([]byte, 8*words)
		if comm.Rank() == 0 {
			copy(data, I64Bytes(rankPattern(0, words)))
		}
		t0 := pr.P.Now()
		if err := comm.Bcast(0, data); err != nil {
			return err
		}
		if comm.Rank() == 0 {
			elapsed = pr.P.Now() - t0
		}
		results[comm.Rank()] = data
		return nil
	})

	want := I64Bytes(rankPattern(0, words))
	for r := 0; r < n; r++ {
		if !bytes.Equal(results[r], want) {
			t.Fatalf("rank %d bcast payload incorrect", r)
		}
	}
	if limit := 1 * time.Millisecond; elapsed > limit {
		t.Fatalf("naive bcast root took %v, want < %v: root sends look serialized again",
			elapsed, limit)
	}
}
