package rmcast

import (
	"fmt"
	"testing"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// TestStaleVerdictIgnoredByLiveOp pins the onVerdictFrame epoch filter:
// a straggler ABORT stamped with a deposed root's epoch must neither
// settle a live operation the current epoch's root still owns nor wind
// the operation's epoch backwards. Before the filter, a delayed
// retransmit of a pre-failover ABORT killed the replacement root's
// in-flight operation and regressed o.epoch.
func TestStaleVerdictIgnoredByLiveOp(t *testing.T) {
	world(t, 2, Options{}, netsim.DefaultLinkParams(),
		func(rank int, p *sim.Proc, e *Endpoint) error {
			if rank != 1 {
				return nil
			}
			// A live receiver-side op in epoch 2 (two failovers deep).
			o := e.newOp(7)
			o.epoch = 2
			o.root = 0
			e.ops[7] = o

			// Straggler ABORT from the epoch-1 root: discard.
			e.onVerdictFrame(frame{typ: fAbort, epoch: 1, op: 7, root: 0, from: 0}, false)
			if o.decided {
				return fmt.Errorf("stale-epoch ABORT settled a live op")
			}
			if o.epoch != 2 {
				return fmt.Errorf("stale-epoch ABORT regressed the op epoch to %d", o.epoch)
			}

			// A verdict from a newer epoch (a failover we have not heard
			// about yet) must still land, raising the op's epoch with it.
			e.onVerdictFrame(frame{typ: fAbort, epoch: 3, op: 7, root: 0, from: 0}, false)
			if !o.decided || o.commit {
				return fmt.Errorf("newer-epoch ABORT did not settle the op")
			}
			if o.epoch != 3 {
				return fmt.Errorf("newer-epoch ABORT left the op epoch at %d, want 3", o.epoch)
			}
			if e.Epoch() != 4 {
				return fmt.Errorf("abort should bump the group epoch to 4, got %d", e.Epoch())
			}
			return nil
		})
}

// TestStaleNakDoesNotSuppressRepair pins the onNak receiver-path epoch
// filter: an overheard NAK stamped with a dead epoch says nothing about
// the current root's liveness, so it must not push back our own repair
// requests (SRM suppression applies only to peers chasing the same
// root).
func TestStaleNakDoesNotSuppressRepair(t *testing.T) {
	world(t, 2, Options{}, netsim.DefaultLinkParams(),
		func(rank int, p *sim.Proc, e *Endpoint) error {
			if rank != 1 {
				return nil
			}
			o := e.newOp(9)
			o.epoch = 2
			o.root = 0
			e.ops[9] = o

			e.onNak(frame{typ: fNak, epoch: 1, op: 9, root: 0, from: 0})
			if o.nakNotBefore != 0 {
				return fmt.Errorf("stale-epoch NAK armed suppression backoff %v", o.nakNotBefore)
			}

			// A current-epoch NAK from another receiver does suppress.
			e.onNak(frame{typ: fNak, epoch: 2, op: 9, root: 0, from: 0})
			if o.nakNotBefore == 0 {
				return fmt.Errorf("current-epoch NAK should arm the suppression backoff")
			}
			return nil
		})
}
