package rmcast

import "repro/internal/wire"

// Frame types. DATA and REPAIR carry payload chunks (REPAIR is a
// unicast retransmission); ANNOUNCE advertises an operation's chunk
// count so receivers that lost every DATA packet can still detect the
// gap; NAK is a multicast repair request (multicast so other receivers
// missing the same chunks can suppress their own); DONE, COMMIT, ABORT
// and FAULT drive the termination handshake.
const (
	fData uint8 = iota + 1
	fRepair
	fAnnounce
	fNak
	fDone
	fCommit
	fAbort
	fFault
)

// Wire layout: every frame starts with a fixed header
//
//	type u8 | epoch u32 | op u64 | root u16 | from u16
//
// followed by a per-type body:
//
//	DATA/REPAIR: idx u32 | total u32 | totalLen u32 | chunk bytes
//	ANNOUNCE:    total u32 | totalLen u32
//	NAK:         count u16 | count × (lo u32, hi u32)   inclusive ranges
//	             count == probeNak means "re-announce, I have nothing"
//	DONE/COMMIT/ABORT/FAULT: header only
const headerLen = 1 + 4 + 8 + 2 + 2

// probeNak is the NAK range count marking an announce probe: the
// receiver has not learned the operation's chunk count and asks the
// root for a unicast ANNOUNCE.
const probeNak = 0xffff

// maxNakRanges bounds the ranges carried by one NAK; remaining gaps
// wait for the next NAK round.
const maxNakRanges = 32

type frame struct {
	typ      uint8
	epoch    uint32
	op       uint64
	root     int
	from     int
	idx      int    // data/repair
	total    int    // data/repair/announce
	totalLen int    // data/repair/announce
	chunk    []byte // data/repair; aliases the packet payload
	ranges   []nakRange
	probe    bool // nak announce probe
}

type nakRange struct{ lo, hi int }

func (e *Endpoint) header(typ uint8, epoch uint32, op uint64, root int, extra int) *wire.Writer {
	w := wire.NewWriter(headerLen + extra)
	w.U8(typ)
	w.U32(epoch)
	w.U64(op)
	w.U16(uint16(root))
	w.U16(uint16(e.rank))
	return w
}

func (e *Endpoint) encodeChunk(typ uint8, o *op, idx int) []byte {
	lo := idx * ChunkSize
	hi := min(lo+ChunkSize, o.totalLen)
	w := e.header(typ, o.epoch, o.id, o.root, 12+(hi-lo))
	w.U32(uint32(idx))
	w.U32(uint32(o.total))
	w.U32(uint32(o.totalLen))
	w.Bytes(o.buf[lo:hi])
	return w.B
}

func (e *Endpoint) encodeAnnounce(o *op) []byte {
	w := e.header(fAnnounce, o.epoch, o.id, o.root, 8)
	w.U32(uint32(o.total))
	w.U32(uint32(o.totalLen))
	return w.B
}

func (e *Endpoint) encodeNak(o *op, ranges []nakRange) []byte {
	w := e.header(fNak, o.epoch, o.id, o.root, 2+8*len(ranges))
	w.U16(uint16(len(ranges)))
	for _, r := range ranges {
		w.U32(uint32(r.lo))
		w.U32(uint32(r.hi))
	}
	return w.B
}

func (e *Endpoint) encodeProbe(o *op) []byte {
	w := e.header(fNak, o.epoch, o.id, o.root, 2)
	w.U16(probeNak)
	return w.B
}

func (e *Endpoint) encodeBare(typ uint8, epoch uint32, op uint64, root int) []byte {
	return e.header(typ, epoch, op, root, 0).B
}

func parseFrame(b []byte) (frame, bool) {
	r := wire.NewReader(b)
	var f frame
	f.typ = r.U8()
	f.epoch = r.U32()
	f.op = r.U64()
	f.root = int(r.U16())
	f.from = int(r.U16())
	switch f.typ {
	case fData, fRepair:
		f.idx = int(r.U32())
		f.total = int(r.U32())
		f.totalLen = int(r.U32())
		f.chunk = r.Rest()
	case fAnnounce:
		f.total = int(r.U32())
		f.totalLen = int(r.U32())
	case fNak:
		count := int(r.U16())
		if count == probeNak {
			f.probe = true
			break
		}
		if count > maxNakRanges {
			return frame{}, false
		}
		for i := 0; i < count; i++ {
			lo := int(r.U32())
			hi := int(r.U32())
			if r.Err() != nil || lo > hi {
				return frame{}, false
			}
			f.ranges = append(f.ranges, nakRange{lo, hi})
		}
	case fDone, fCommit, fAbort, fFault:
	default:
		return frame{}, false
	}
	if r.Err() != nil {
		return frame{}, false
	}
	return f, true
}
