// Package rmcast implements a NAK-based reliable broadcast over
// netsim's link-layer multicast, in the style of SRM and of Hudzia &
// Petiton's fault-tolerant MPI multicast: the root multicasts an
// operation's payload as sequenced chunks, receivers detect gaps and
// multicast rank-staggered NAKs (suppressed when another receiver asks
// for the same operation first), and the root answers with unicast
// repairs. Completion is a positive handshake — every receiver DONEs
// to the root, the root multicasts COMMIT — so a committed operation is
// proof that every member holds the payload.
//
// Fault handling is epoch-based, mirroring rpi session recovery: a
// member that observes transport-layer death mid-operation unicasts
// FAULT to the root, and the root aborts — as it also does when the
// per-operation repair budget or the announce-round cap is exhausted.
// ABORT bumps the group epoch; frames stamped with an older epoch are
// discarded on arrival, and the endpoint keeps a per-operation verdict
// ledger for the lifetime of the run, so retransmitted DONEs or NAKs
// for settled operations are answered with the recorded verdict instead
// of reviving state. The collective layer replays an aborted operation
// over the point-to-point tree in the bumped epoch; the ledger plus the
// epoch stamp make that replay exactly-once — stragglers from the dead
// epoch can neither deliver twice nor resurrect the multicast attempt.
//
// Endpoints are reactive: frame handling, gap repair, and the DONE
// handshake all run from the network handler and kernel timers, so an
// endpoint makes progress on an operation before its own process has
// entered it (buffering early chunks) and after its process has moved
// on (answering retransmits from the ledger).
package rmcast

import (
	"time"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// Proto is the IP protocol number rmcast frames travel on.
const Proto = 200

// ChunkSize is the payload carried per DATA/REPAIR frame; with the
// frame header it stays under the default 1500-byte MTU.
const ChunkSize = 1280

// DefaultRepairBudget caps unicast repairs per operation; past it the
// root aborts and the collective degrades to the tree.
const DefaultRepairBudget = 4096

// Protocol timing. The NAK delay is rank-staggered so concurrent
// requesters spread out, and a receiver that hears another member's NAK
// for the same operation backs off a full nakBackoff before asking
// itself — classic SRM suppression, with virtual-time determinism
// instead of random timers.
const (
	nakDelay    = 150 * time.Microsecond
	nakStagger  = 25 * time.Microsecond
	nakBackoff  = 400 * time.Microsecond
	probeDelay  = 300 * time.Microsecond
	doneRetry   = 500 * time.Microsecond
	announceIvl = 500 * time.Microsecond
	healthPoll  = 100 * time.Microsecond
	maxRounds   = 40
)

// Options configures an endpoint.
type Options struct {
	// Probe receives protocol events (chaos oracle); nil disables.
	Probe *Probe
	// RepairBudget caps unicast repairs per operation
	// (DefaultRepairBudget when 0).
	RepairBudget int
	// DupAcceptEvery, when > 0, seeds a dedup-accounting bug: every Nth
	// accepted chunk reports Accept twice, which a correct chaos oracle
	// must flag. Test-only.
	DupAcceptEvery int
	// DropChunkEvery, when > 0, seeds a delivery bug: every Nth
	// accepted chunk is accounted for but its payload is never copied,
	// so the rank completes with a wrong digest. Test-only.
	DropChunkEvery int
}

// Endpoint is one rank's reliable-multicast engine.
type Endpoint struct {
	node  *netsim.Node
	k     *sim.Kernel
	group netsim.Addr
	rank  int
	addrs []netsim.Addr // world rank -> unicast address
	opts  Options
	cond  *sim.Cond

	epoch    uint32
	nextOp   uint64
	ops      map[uint64]*op
	outcomes map[uint64]verdict // settled operations, kept for the run

	lastOp  uint64
	accepts int // accepted-chunk counter driving the mutation knobs
	ctrs    map[string]int64
}

type verdict struct {
	commit bool
	epoch  uint32
}

// op is the per-operation state; it lives in Endpoint.ops from first
// contact (frame or process entry) until the owning process collects
// the verdict.
type op struct {
	id       uint64
	epoch    uint32
	root     int // -1 until learned
	isRoot   bool
	entered  bool
	buf      []byte
	total    int // chunk count; -1 until learned
	totalLen int
	have     []bool
	haveCnt  int

	decided bool
	commit  bool

	// root-side state
	done    []bool
	doneCnt int
	repairs int
	rounds  int

	// receiver-side state
	doneSent     bool
	faulted      bool
	retryArmed   bool
	nakNotBefore time.Duration
}

// New builds an endpoint for rank on node, joined to group. addrs maps
// every world rank to its unicast address (used for DONE/FAULT/repair
// traffic). The endpoint registers itself as node's handler for Proto.
func New(node *netsim.Node, group netsim.Addr, rank int, addrs []netsim.Addr, opts Options) *Endpoint {
	if opts.RepairBudget <= 0 {
		opts.RepairBudget = DefaultRepairBudget
	}
	e := &Endpoint{
		node:     node,
		k:        node.Kernel(),
		group:    group,
		rank:     rank,
		addrs:    addrs,
		opts:     opts,
		cond:     sim.NewCond(node.Kernel()),
		ops:      make(map[uint64]*op),
		outcomes: make(map[uint64]verdict),
		ctrs:     make(map[string]int64),
	}
	node.Handle(Proto, e.handle)
	return e
}

// Rank returns the endpoint's world rank.
func (e *Endpoint) Rank() int { return e.rank }

// Epoch returns the current group epoch (bumped once per abort).
func (e *Endpoint) Epoch() uint32 { return e.epoch }

// Counters returns a snapshot of the endpoint's protocol counters.
func (e *Endpoint) Counters() map[string]int64 {
	out := make(map[string]int64, len(e.ctrs))
	for k, v := range e.ctrs {
		out[k] = v
	}
	return out
}

func (e *Endpoint) size() int { return len(e.addrs) }

// Bcast runs one reliable-multicast broadcast as rank's side of the
// collective. The root multicasts data; receivers fill data in place on
// commit. health is polled between protocol events (with a non-blocking
// transport Advance inside, so session death is detected even while the
// process is parked here); when it reports trouble the member FAULTs
// (or, at the root, aborts). The return value reports whether the
// operation committed — false means the caller must replay it over the
// tree in the bumped epoch.
func (e *Endpoint) Bcast(p *sim.Proc, root int, data []byte, health func() (bool, error)) (bool, error) {
	id := e.nextOp
	e.nextOp++
	e.lastOp = id
	o := e.ops[id]
	if o == nil {
		o = e.newOp(id)
		e.ops[id] = o
	}
	o.entered = true
	if pb := e.opts.Probe; pb != nil && pb.Enter != nil {
		pb.Enter(e.rank, id, e.epoch, root)
	}
	if root == e.rank {
		o.isRoot = true
		o.root = root
		e.rootPublish(o, data)
	} else {
		if o.root < 0 {
			o.root = root
		}
		e.recvProgress(o)
	}
	for !o.decided {
		bad, err := health()
		if err != nil {
			if o.isRoot {
				e.abortOp(o)
			}
			delete(e.ops, id)
			return false, err
		}
		if bad && !o.faulted {
			o.faulted = true
			if o.isRoot {
				e.abortOp(o)
				continue
			}
			e.ctr("mc_faults", 1)
			e.sendToRank(o.root, e.encodeBare(fFault, o.epoch, o.id, o.root))
			e.armRetry(o, doneRetry)
		}
		e.cond.WaitTimeout(p, healthPoll)
	}
	committed := o.commit
	if committed && !o.isRoot {
		copy(data, o.buf[:min(len(data), o.totalLen)])
	}
	delete(e.ops, id)
	return committed, nil
}

// NoteComplete records that the collective layer finished the last
// operation (after the tree fallback when fallback is true) and reports
// the delivered payload's digest to the probe. Part of the
// mpi.Multicast contract.
func (e *Endpoint) NoteComplete(fallback bool, data []byte) {
	e.ctr("mc_ops", 1)
	if fallback {
		e.ctr("mc_fallbacks", 1)
	}
	if pb := e.opts.Probe; pb != nil && pb.Complete != nil {
		pb.Complete(e.rank, e.lastOp, e.epoch, fallback, Digest(data))
	}
}

func (e *Endpoint) newOp(id uint64) *op {
	return &op{id: id, epoch: e.epoch, root: -1, total: -1}
}

func (e *Endpoint) ctr(name string, delta int64) { e.ctrs[name] += delta }

func (e *Endpoint) sendToRank(r int, b []byte) {
	if r < 0 || r >= len(e.addrs) {
		return
	}
	e.node.Send(&netsim.Packet{Src: e.node.Addr(), Dst: e.addrs[r], Proto: Proto, Payload: b})
}

func (e *Endpoint) mcastFrame(b []byte) {
	e.node.Send(&netsim.Packet{Src: e.node.Addr(), Dst: e.group, Proto: Proto, Payload: b})
}

// --- root side -------------------------------------------------------

// rootPublish multicasts the announce and every data chunk, then starts
// the re-announce rounds that bound the operation's lifetime.
func (e *Endpoint) rootPublish(o *op, data []byte) {
	o.buf = data
	o.totalLen = len(data)
	o.total = (len(data) + ChunkSize - 1) / ChunkSize
	o.done = make([]bool, e.size())
	o.done[e.rank] = true
	o.doneCnt = 1
	if o.doneCnt == e.size() {
		e.commitOp(o)
		return
	}
	e.mcastFrame(e.encodeAnnounce(o))
	for idx := 0; idx < o.total; idx++ {
		e.mcastFrame(e.encodeChunk(fData, o, idx))
	}
	e.ctr("mc_data_sent", int64(o.total))
	e.armAnnounce(o)
}

func (e *Endpoint) armAnnounce(o *op) {
	e.k.After(announceIvl, func() {
		if e.ops[o.id] != o || o.decided {
			return
		}
		o.rounds++
		if o.rounds > maxRounds {
			// A member has been silent for the whole window: declare the
			// operation undeliverable rather than re-announce forever.
			e.abortOp(o)
			return
		}
		e.mcastFrame(e.encodeAnnounce(o))
		e.armAnnounce(o)
	})
}

func (e *Endpoint) commitOp(o *op) {
	if o.decided {
		return
	}
	e.mcastFrame(e.encodeBare(fCommit, o.epoch, o.id, o.root))
	e.decide(o, true)
}

func (e *Endpoint) abortOp(o *op) {
	if o.decided {
		return
	}
	e.mcastFrame(e.encodeBare(fAbort, o.epoch, o.id, o.root))
	e.decide(o, false)
}

// --- verdicts --------------------------------------------------------

// decide settles an operation locally and records the verdict in the
// run-lifetime ledger. An abort bumps the group epoch: the collective
// replay and all subsequent operations run in the new epoch, and
// straggler frames stamped with the dead epoch are discarded on
// arrival — the exactly-once half that frame filtering provides; the
// ledger provides the other half by keeping finished operations
// answerable without reviving them.
func (e *Endpoint) decide(o *op, commit bool) {
	if o.decided {
		return
	}
	o.decided = true
	o.commit = commit
	e.outcomes[o.id] = verdict{commit: commit, epoch: o.epoch}
	if commit {
		e.ctr("mc_commits", 1)
	} else {
		e.ctr("mc_aborts", 1)
		if o.epoch+1 > e.epoch {
			e.epoch = o.epoch + 1
		}
	}
	if pb := e.opts.Probe; pb != nil && pb.Decide != nil {
		pb.Decide(e.rank, o.id, o.epoch, commit)
	}
	e.cond.Broadcast()
}

// replyVerdict answers a retransmitted DONE/NAK/FAULT for a settled
// operation with the recorded verdict, unicast to the asker.
func (e *Endpoint) replyVerdict(f frame) {
	v, ok := e.outcomes[f.op]
	if !ok {
		return
	}
	typ := fAbort
	if v.commit {
		typ = fCommit
	}
	e.sendToRank(f.from, e.encodeBare(typ, v.epoch, f.op, e.rank))
}

// --- receiver side ---------------------------------------------------

// recvProgress advances a receiver-side operation after any state
// change: send DONE once complete, otherwise make sure the retry timer
// (probe, NAK, or DONE retransmit) is armed.
func (e *Endpoint) recvProgress(o *op) {
	if o.decided || o.isRoot {
		return
	}
	if o.total >= 0 && o.haveCnt == o.total && !o.doneSent {
		o.doneSent = true
		e.ctr("mc_done", 1)
		e.sendToRank(o.root, e.encodeBare(fDone, o.epoch, o.id, o.root))
		e.armRetry(o, doneRetry)
		return
	}
	if !o.doneSent {
		e.armRetry(o, nakDelay+time.Duration(e.rank%8)*nakStagger)
	}
}

// armRetry schedules the receiver's single retry timer, which keeps
// whichever request is pending (announce probe, NAK, DONE, FAULT)
// flowing until the operation is settled.
func (e *Endpoint) armRetry(o *op, d time.Duration) {
	if o.retryArmed {
		return
	}
	o.retryArmed = true
	e.k.After(d, func() {
		o.retryArmed = false
		e.retryFire(o)
	})
}

func (e *Endpoint) retryFire(o *op) {
	if e.ops[o.id] != o || o.decided || o.isRoot {
		return
	}
	if o.faulted {
		e.ctr("mc_faults", 1)
		e.sendToRank(o.root, e.encodeBare(fFault, o.epoch, o.id, o.root))
		e.armRetry(o, doneRetry)
		return
	}
	if o.doneSent {
		// The verdict may have been lost: re-offer DONE so the root (or
		// its ledger) answers with COMMIT/ABORT.
		e.sendToRank(o.root, e.encodeBare(fDone, o.epoch, o.id, o.root))
		e.armRetry(o, doneRetry)
		return
	}
	if o.root < 0 {
		// Nothing received and the process has not entered the op yet;
		// there is no one to ask. A frame or the process entry re-arms.
		return
	}
	if o.total < 0 {
		e.sendToRank(o.root, e.encodeProbe(o))
		e.armRetry(o, probeDelay)
		return
	}
	if now := e.k.Now(); now < o.nakNotBefore {
		e.armRetry(o, o.nakNotBefore-now)
		return
	}
	e.ctr("mc_naks", 1)
	e.mcastFrame(e.encodeNak(o, e.gaps(o)))
	e.armRetry(o, nakBackoff)
}

// gaps lists the operation's missing chunk ranges, capped at
// maxNakRanges (the rest wait for the next round).
func (e *Endpoint) gaps(o *op) []nakRange {
	var out []nakRange
	for i := 0; i < o.total && len(out) < maxNakRanges; {
		if o.have[i] {
			i++
			continue
		}
		lo := i
		for i < o.total && !o.have[i] {
			i++
		}
		out = append(out, nakRange{lo, i - 1})
	}
	return out
}

// --- frame handling --------------------------------------------------

func (e *Endpoint) handle(pkt *netsim.Packet, _ *netsim.Iface) {
	f, ok := parseFrame(pkt.Payload)
	if !ok || f.from == e.rank || f.from >= e.size() {
		return
	}
	switch f.typ {
	case fData, fRepair:
		e.onData(f)
	case fAnnounce:
		e.onAnnounce(f)
	case fNak:
		e.onNak(f)
	case fDone:
		e.onDone(f)
	case fCommit:
		e.onVerdictFrame(f, true)
	case fAbort:
		e.onVerdictFrame(f, false)
	case fFault:
		e.onFault(f)
	}
}

// recvOp returns live receiver-side state for a frame, creating it for
// first contact; nil when the frame is stale (settled op, old epoch) or
// addressed to our own root role.
func (e *Endpoint) recvOp(f frame) *op {
	if _, settled := e.outcomes[f.op]; settled {
		return nil
	}
	o := e.ops[f.op]
	if o == nil {
		o = e.newOp(f.op)
		e.ops[f.op] = o
	}
	if o.decided || o.isRoot || f.epoch < o.epoch {
		return nil
	}
	if f.epoch > o.epoch {
		o.epoch = f.epoch
	}
	if o.root < 0 {
		o.root = f.root
	}
	return o
}

// learnTotal initializes the chunk map once the operation's geometry is
// known (from the first DATA or ANNOUNCE frame).
func (e *Endpoint) learnTotal(o *op, total, totalLen int) {
	if o.total >= 0 || total < 0 || totalLen < 0 || totalLen > total*ChunkSize {
		return
	}
	o.total = total
	o.totalLen = totalLen
	o.buf = make([]byte, totalLen)
	o.have = make([]bool, total)
}

func (e *Endpoint) onData(f frame) {
	o := e.recvOp(f)
	if o == nil {
		return
	}
	e.learnTotal(o, f.total, f.totalLen)
	if o.total == f.total && f.idx >= 0 && f.idx < o.total && !o.have[f.idx] {
		lo := f.idx * ChunkSize
		hi := min(lo+ChunkSize, o.totalLen)
		if len(f.chunk) == hi-lo {
			o.have[f.idx] = true
			o.haveCnt++
			e.accepts++
			e.ctr("mc_accepts", 1)
			if e.opts.DropChunkEvery > 0 && e.accepts%e.opts.DropChunkEvery == 0 {
				// Seeded bug: the chunk is accounted for but its bytes
				// never land, so this rank commits a wrong payload.
			} else {
				copy(o.buf[lo:hi], f.chunk)
			}
			if pb := e.opts.Probe; pb != nil && pb.Accept != nil {
				pb.Accept(e.rank, o.id, f.idx, o.total)
				if e.opts.DupAcceptEvery > 0 && e.accepts%e.opts.DupAcceptEvery == 0 {
					// Seeded bug: double-count the accept, as a broken
					// dedup path would.
					pb.Accept(e.rank, o.id, f.idx, o.total)
				}
			}
		}
	}
	e.recvProgress(o)
}

func (e *Endpoint) onAnnounce(f frame) {
	o := e.recvOp(f)
	if o == nil {
		return
	}
	e.learnTotal(o, f.total, f.totalLen)
	e.recvProgress(o)
}

func (e *Endpoint) onNak(f frame) {
	o := e.ops[f.op]
	if o == nil {
		e.replyVerdict(f)
		return
	}
	if o.isRoot {
		if o.decided {
			e.replyVerdict(f)
			return
		}
		if f.epoch != o.epoch {
			return
		}
		if f.probe {
			e.sendToRank(f.from, e.encodeAnnounce(o))
			return
		}
		for _, rg := range f.ranges {
			for idx := rg.lo; idx <= rg.hi && idx < o.total; idx++ {
				o.repairs++
				if o.repairs > e.opts.RepairBudget {
					// Repair-budget exhaustion: the loss pattern is too
					// hostile for multicast; degrade to the tree.
					e.abortOp(o)
					return
				}
				e.ctr("mc_repairs", 1)
				if pb := e.opts.Probe; pb != nil && pb.Repair != nil {
					pb.Repair(e.rank, o.id, idx)
				}
				e.sendToRank(f.from, e.encodeChunk(fRepair, o, idx))
			}
		}
		return
	}
	// Another receiver asked first: suppress our own NAK for a backoff,
	// SRM style. The retry timer re-checks nakNotBefore when it fires.
	// A NAK from another epoch says nothing about the current root's
	// liveness, so it must not delay our own repair requests.
	if f.epoch != o.epoch {
		return
	}
	if !o.decided && !o.doneSent {
		o.nakNotBefore = e.k.Now() + nakBackoff
	}
}

func (e *Endpoint) onDone(f frame) {
	o := e.ops[f.op]
	if o == nil || !o.isRoot || o.decided {
		e.replyVerdict(f)
		return
	}
	if f.epoch != o.epoch || f.from >= len(o.done) || o.done[f.from] {
		return
	}
	o.done[f.from] = true
	o.doneCnt++
	if o.doneCnt == e.size() {
		e.commitOp(o)
	}
}

func (e *Endpoint) onFault(f frame) {
	o := e.ops[f.op]
	if o == nil || !o.isRoot || o.decided {
		e.replyVerdict(f)
		return
	}
	if f.epoch != o.epoch {
		return
	}
	// A member saw transport-layer death mid-operation: degrade the
	// whole operation so the collective replays on the tree, where the
	// session-recovery machinery owns the problem.
	e.abortOp(o)
}

func (e *Endpoint) onVerdictFrame(f frame, commit bool) {
	o := e.ops[f.op]
	if o == nil || o.decided || o.isRoot {
		return
	}
	if f.epoch < o.epoch {
		// Stale verdict from a deposed root (or a delayed retransmit
		// from before a failover): applying it would abort — or worse,
		// commit — an operation the current epoch's root still owns,
		// and the epoch write below would regress o.epoch.
		return
	}
	if commit && (o.total < 0 || o.haveCnt != o.total) {
		// COMMIT requires our own DONE, so an incomplete receiver can
		// only see one via reordering pathologies; ignore and keep
		// repairing rather than deliver a short payload.
		return
	}
	if o.root < 0 {
		o.root = f.root
	}
	o.epoch = f.epoch
	e.decide(o, commit)
}
