package rmcast

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// world builds n endpoints on a mesh cluster and runs body as each
// rank's process. health defaults to "all good".
func world(t *testing.T, n int, opts Options, lp netsim.LinkParams,
	body func(rank int, p *sim.Proc, e *Endpoint) error) (*netsim.Network, []*Endpoint) {
	t.Helper()
	k := sim.New(1)
	net, nodes := netsim.Cluster(k, n, 1, lp)
	group := netsim.MakeGroupAddr(1)
	addrs := make([]netsim.Addr, n)
	for i, nd := range nodes {
		addrs[i] = nd.Addr()
		net.JoinGroup(group, nd.Addr())
	}
	eps := make([]*Endpoint, n)
	for i, nd := range nodes {
		eps[i] = New(nd, group, i, addrs, opts)
	}
	errs := make([]error, n)
	for i := range eps {
		rank, ep := i, eps[i]
		k.Spawn(fmt.Sprintf("rank%d", rank), func(p *sim.Proc) {
			errs[rank] = body(rank, p, ep)
		})
	}
	if err := k.Run(); err != nil {
		t.Fatalf("kernel: %v", err)
	}
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	return net, eps
}

func okHealth() (bool, error) { return false, nil }

func payload(op int, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(op*31 + i)
	}
	return b
}

func TestBcastCommitsClean(t *testing.T) {
	const n, size = 8, 10 << 10
	want := payload(0, size)
	_, eps := world(t, n, Options{}, netsim.DefaultLinkParams(),
		func(rank int, p *sim.Proc, e *Endpoint) error {
			data := make([]byte, size)
			if rank == 0 {
				copy(data, want)
			}
			committed, err := e.Bcast(p, 0, data, okHealth)
			if err != nil {
				return err
			}
			if !committed {
				return fmt.Errorf("expected commit on a clean network")
			}
			if !bytes.Equal(data, want) {
				return fmt.Errorf("payload mismatch")
			}
			return nil
		})
	for r, e := range eps {
		if e.Epoch() != 0 {
			t.Fatalf("rank %d epoch bumped (%d) on a clean commit", r, e.Epoch())
		}
	}
}

// TestBcastRepairsUnderLoss drives the NAK/repair machinery: with 20%
// loss on every pipe the initial multicast misses many receivers, and
// the operation must still commit with the exact payload everywhere.
func TestBcastRepairsUnderLoss(t *testing.T) {
	const n, size, rounds = 6, 32 << 10, 4
	lp := netsim.DefaultLinkParams()
	lp.LossRate = 0.2
	_, eps := world(t, n, Options{}, lp,
		func(rank int, p *sim.Proc, e *Endpoint) error {
			for op := 0; op < rounds; op++ {
				root := op % n
				want := payload(op, size)
				data := make([]byte, size)
				if rank == root {
					copy(data, want)
				}
				committed, err := e.Bcast(p, root, data, okHealth)
				if err != nil {
					return err
				}
				if !committed {
					return fmt.Errorf("op %d: expected commit under recoverable loss", op)
				}
				if !bytes.Equal(data, want) {
					return fmt.Errorf("op %d: payload mismatch", op)
				}
			}
			return nil
		})
	var repairs int64
	for _, e := range eps {
		repairs += e.Counters()["mc_repairs"]
	}
	if repairs == 0 {
		t.Fatal("expected NAK-driven repairs under 20% loss, saw none")
	}
}

// TestBcastFaultAborts checks the degrade path: one receiver reports an
// unhealthy transport mid-operation, so the root must abort, every rank
// must agree on the abort, and the group epoch must bump exactly once.
func TestBcastFaultAborts(t *testing.T) {
	const n, size = 5, 8 << 10
	_, eps := world(t, n, Options{}, netsim.DefaultLinkParams(),
		func(rank int, p *sim.Proc, e *Endpoint) error {
			data := make([]byte, size)
			if rank == 0 {
				copy(data, payload(0, size))
			}
			health := okHealth
			if rank == 3 {
				health = func() (bool, error) { return true, nil }
			}
			committed, err := e.Bcast(p, 0, data, health)
			if err != nil {
				return err
			}
			if committed {
				return fmt.Errorf("expected abort when rank 3 faults")
			}
			return nil
		})
	for r, e := range eps {
		if e.Epoch() != 1 {
			t.Fatalf("rank %d: epoch = %d after one abort, want 1", r, e.Epoch())
		}
	}
}

// TestBcastRecoversAfterAbort runs a faulted op and then a clean one on
// the same endpoints: the second op must commit in the bumped epoch,
// proving straggler state from the dead epoch cannot wedge the group.
func TestBcastRecoversAfterAbort(t *testing.T) {
	const n, size = 5, 8 << 10
	_, eps := world(t, n, Options{}, netsim.DefaultLinkParams(),
		func(rank int, p *sim.Proc, e *Endpoint) error {
			faulty := rank == 2
			data := make([]byte, size)
			if rank == 0 {
				copy(data, payload(0, size))
			}
			health := okHealth
			if faulty {
				health = func() (bool, error) { return true, nil }
			}
			if committed, err := e.Bcast(p, 0, data, health); err != nil {
				return err
			} else if committed {
				return fmt.Errorf("first op should abort")
			}
			want := payload(1, size)
			data = make([]byte, size)
			if rank == 1 {
				copy(data, want)
			}
			committed, err := e.Bcast(p, 1, data, okHealth)
			if err != nil {
				return err
			}
			if !committed {
				return fmt.Errorf("second op should commit after the epoch bump")
			}
			if !bytes.Equal(data, want) {
				return fmt.Errorf("second op payload mismatch")
			}
			return nil
		})
	for r, e := range eps {
		if e.Epoch() != 1 {
			t.Fatalf("rank %d: epoch = %d, want 1", r, e.Epoch())
		}
	}
}

// TestRepairBudgetAborts sets a repair budget of one chunk and a loss
// rate guaranteeing far more repairs than that, so the root must give
// up and abort rather than repair forever.
func TestRepairBudgetAborts(t *testing.T) {
	const n, size = 6, 64 << 10
	lp := netsim.DefaultLinkParams()
	lp.LossRate = 0.35
	world(t, n, Options{RepairBudget: 1}, lp,
		func(rank int, p *sim.Proc, e *Endpoint) error {
			data := make([]byte, size)
			if rank == 0 {
				copy(data, payload(0, size))
			}
			committed, err := e.Bcast(p, 0, data, okHealth)
			if err != nil {
				return err
			}
			if committed {
				return fmt.Errorf("expected repair-budget abort at 35%% loss")
			}
			return nil
		})
}

// TestZeroLengthBcast pins the empty-payload edge: zero chunks, commit
// via announce alone.
func TestZeroLengthBcast(t *testing.T) {
	world(t, 3, Options{}, netsim.DefaultLinkParams(),
		func(rank int, p *sim.Proc, e *Endpoint) error {
			committed, err := e.Bcast(p, 0, nil, okHealth)
			if err != nil {
				return err
			}
			if !committed {
				return fmt.Errorf("zero-length bcast should commit")
			}
			return nil
		})
}

// TestNakSuppression checks the SRM-style backoff: with the root's
// initial burst partially lost at every receiver, the total NAK count
// should stay well below one NAK per receiver per missing chunk.
func TestNakSuppression(t *testing.T) {
	const n, size = 8, 64 << 10
	lp := netsim.DefaultLinkParams()
	lp.LossRate = 0.15
	_, eps := world(t, n, Options{}, lp,
		func(rank int, p *sim.Proc, e *Endpoint) error {
			data := make([]byte, size)
			if rank == 0 {
				copy(data, payload(0, size))
			}
			committed, err := e.Bcast(p, 0, data, okHealth)
			if err != nil {
				return err
			}
			if !committed {
				return fmt.Errorf("expected commit")
			}
			return nil
		})
	var naks int64
	for _, e := range eps {
		naks += e.Counters()["mc_naks"]
	}
	// 64 KiB is 51 chunks; at 15% loss about 54 chunks are lost across
	// 7 receivers. Unsuppressed per-chunk NAKs would number ~50+; the
	// range encoding plus suppression should keep the total far lower.
	if naks == 0 || naks > 40 {
		t.Fatalf("NAK count %d outside suppressed range (0, 40]", naks)
	}
}

// TestBcastVirtualTime sanity-checks the commit latency: on a clean
// 1 Gb/s mesh an 8 KiB broadcast to 7 receivers should settle in well
// under a millisecond of virtual time (chunks + DONE + COMMIT, each
// ~50µs of propagation), nowhere near the announce-round cap.
func TestBcastVirtualTime(t *testing.T) {
	const n, size = 8, 8 << 10
	var elapsed time.Duration
	world(t, n, Options{}, netsim.DefaultLinkParams(),
		func(rank int, p *sim.Proc, e *Endpoint) error {
			start := p.Now()
			data := make([]byte, size)
			if rank == 0 {
				copy(data, payload(0, size))
			}
			committed, err := e.Bcast(p, 0, data, okHealth)
			if err != nil {
				return err
			}
			if !committed {
				return fmt.Errorf("expected commit")
			}
			if rank == 0 {
				elapsed = p.Now() - start
			}
			return nil
		})
	if limit := 1 * time.Millisecond; elapsed <= 0 || elapsed > limit {
		t.Fatalf("clean 8 KiB bcast took %v, want (0, %v]", elapsed, limit)
	}
}
