package rmcast

// Probe exposes the protocol's state transitions to an observer (the
// chaos oracle). Every field is optional; a nil Probe disables all
// hooks. Callbacks run synchronously at the simulated instant of the
// event, on whichever goroutine the kernel is driving, exactly like
// rpi.Observe delivery hooks.
type Probe struct {
	// Enter fires when a rank's process enters a broadcast operation
	// (root and receivers alike), before any protocol activity on its
	// behalf.
	Enter func(rank int, op uint64, epoch uint32, root int)
	// Accept fires when a receiver accepts a data chunk it did not have
	// yet. A correct endpoint never fires it twice for one (rank, op,
	// chunk); the chaos dup mutation violates exactly that.
	Accept func(rank int, op uint64, chunk, total int)
	// Repair fires at the root for every chunk retransmitted in
	// response to a NAK.
	Repair func(rank int, op uint64, chunk int)
	// Decide fires when a rank learns the operation's verdict: commit
	// (multicast delivered everywhere) or abort (degrade to the tree).
	Decide func(rank int, op uint64, epoch uint32, commit bool)
	// Complete fires when the collective layer finishes the operation,
	// after the tree fallback if one ran. digest is an FNV-1a hash of
	// the delivered payload; epoch is the group epoch at completion,
	// which sits one past the operation's epoch when the fallback path
	// ran.
	Complete func(rank int, op uint64, epoch uint32, fallback bool, digest uint64)
}

// Digest returns the FNV-1a hash rmcast stamps on completed payloads,
// exported so observers can compare against independently computed
// values.
func Digest(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}
