// Tree-collective conformance over the real backends: the O(log N)
// algorithms must deliver bit-identical buffers to the naive linear
// reference on every RPI module, across awkward communicator sizes.
// Operators are order-independent at the bit level (int64 sum), so the
// naive result is a valid golden reference regardless of fold order.
package rpi_test

import (
	"bytes"
	"testing"

	"repro/internal/mpi"
)

var collectiveRanks = []int{2, 3, 8, 17, 64}

func backendPattern(r, words int) []byte {
	v := make([]int64, words)
	for i := range v {
		v[i] = int64(r+1)*999_983 + int64(i)*11
	}
	return mpi.I64Bytes(v)
}

// runCollective executes body under alg on an n-rank world over b and
// returns every rank's buffer.
func runCollective(t *testing.T, b backend, n int, alg mpi.Alg,
	body func(comm *mpi.Comm) ([]byte, error)) [][]byte {
	t.Helper()
	res := make([][]byte, n)
	runWorld(t, b, n, 0, func(pr *mpi.Process, comm *mpi.Comm) error {
		comm.SetAlg(alg)
		out, err := body(comm)
		res[comm.Rank()] = out
		return err
	})
	return res
}

func TestTreeCollectivesConformAcrossBackends(t *testing.T) {
	// Small vectors keep 64-rank worlds cheap; the allreduce still
	// exercises the non-power-of-two fold (3, 17) and the full
	// butterfly (8, 64). The ring path is covered once per backend at
	// n=8 with a payload crossing the size threshold.
	for _, b := range backends() {
		b := b
		t.Run(b.name, func(t *testing.T) {
			for _, n := range collectiveRanks {
				bcast := func(comm *mpi.Comm) ([]byte, error) {
					data := make([]byte, 64)
					if comm.Rank() == 0 {
						copy(data, backendPattern(0, 8))
					}
					err := comm.Bcast(0, data)
					return data, err
				}
				allreduce := func(comm *mpi.Comm) ([]byte, error) {
					data := backendPattern(comm.Rank(), 8)
					err := comm.Allreduce(data, mpi.OpSumI64)
					return data, err
				}
				for name, body := range map[string]func(*mpi.Comm) ([]byte, error){
					"bcast": bcast, "allreduce": allreduce,
				} {
					tree := runCollective(t, b, n, mpi.AlgTree, body)
					naive := runCollective(t, b, n, mpi.AlgNaive, body)
					for r := 0; r < n; r++ {
						if !bytes.Equal(tree[r], naive[r]) {
							t.Fatalf("%s n=%d %s: rank %d tree != naive", b.name, n, name, r)
						}
					}
				}
			}
			// Ring allreduce: 4 KiB/rank-chunk payload over 8 ranks.
			words := (32 << 10) / 8
			big := func(comm *mpi.Comm) ([]byte, error) {
				data := backendPattern(comm.Rank(), words)
				err := comm.Allreduce(data, mpi.OpSumI64)
				return data, err
			}
			tree := runCollective(t, b, 8, mpi.AlgTree, big)
			naive := runCollective(t, b, 8, mpi.AlgNaive, big)
			for r := 0; r < 8; r++ {
				if !bytes.Equal(tree[r], naive[r]) {
					t.Fatalf("%s ring allreduce: rank %d tree != naive", b.name, r)
				}
			}
		})
	}
}
