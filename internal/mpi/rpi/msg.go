package rpi

import (
	"errors"

	"repro/internal/transport"
	"repro/internal/wire"
)

// This file is the message-oriented half of the shared engine: the
// Option B/C outbound writer lock and the per-stream inbound chunk
// reassembler that SCTP-style transports (one-to-many and one-to-one
// alike) need, where the transport preserves message boundaries and the
// middleware chunks long messages itself (paper §3.6).

// Payload protocol identifiers distinguishing middleware frame types on
// the wire (the SCTP PPID field, which the paper notes is free for
// application use).
const (
	PPIDEnvelope = 1
	PPIDBody     = 2
)

// StreamFor is the shared TRC→stream mapping: messages with the same
// (context, tag) always share a stream; different TRCs spread across
// the pool (paper §3.2.3).
func StreamFor(streams int, context, tag int32) uint16 {
	if streams <= 1 {
		return 0
	}
	h := uint32(context)*2654435761 + uint32(tag)*40503
	return uint16(h % uint32(streams))
}

// DeriveBodyChunk picks the middleware chunk size for messages larger
// than the transport send buffer: explicit if positive, otherwise a
// quarter of the send buffer clamped to [4 KiB, 64 KiB].
func DeriveBodyChunk(explicit, sndBuf int) int {
	if explicit > 0 {
		return explicit
	}
	c := sndBuf / 4
	if c > 64<<10 {
		c = 64 << 10
	}
	if c < 4<<10 {
		c = 4 << 10
	}
	return c
}

// MsgKey identifies one outbound (peer rank, stream) writer lock.
type MsgKey struct {
	Rank   int
	Stream uint16
}

// RecvKey identifies one inbound reassembly slot. ID is
// transport-specific: the association id for a one-to-many socket, the
// peer rank for one-to-one connections.
type RecvKey struct {
	ID     int64
	Stream uint16
}

type msgOut struct {
	env      []byte
	body     []byte
	off      int
	envSent  bool
	onQueued func()
}

// MsgSender queues outbound middleware messages for a message-oriented
// transport with at most one in-progress message per (peer, stream) —
// the paper's Option B fix for the long message race (§3.4.2): no
// message may start on a stream while another is partially written to
// it. Under Option C, bodiless control messages jump this queue via a
// separate control queue and are distinguished on the wire by PPID.
type MsgSender struct {
	BodyChunk int
	OptionC   bool

	trySend func(key MsgKey, ppid uint32, data []byte) error
	ctrs    Counters

	inProg map[MsgKey]*msgOut
	queued map[MsgKey][]*msgOut
	ctrlQ  map[MsgKey][][]byte
	active []MsgKey // keys with work, in arrival order (deterministic)
}

// NewMsgSender builds a sender that pushes transport messages through
// trySend, which must fail with a transport.ErrWouldBlock-matching
// error when the endpoint has no buffer space.
func NewMsgSender(bodyChunk int, optionC bool, ctrs Counters,
	trySend func(key MsgKey, ppid uint32, data []byte) error) *MsgSender {
	return &MsgSender{
		BodyChunk: bodyChunk,
		OptionC:   optionC,
		trySend:   trySend,
		ctrs:      ctrs,
		inProg:    make(map[MsgKey]*msgOut),
		queued:    make(map[MsgKey][]*msgOut),
		ctrlQ:     make(map[MsgKey][][]byte),
	}
}

// Send queues one middleware message on its (peer, stream) writer and
// flushes as far as the transport allows. Under Option C, bodiless
// control envelopes (ACKs) bypass the writer lock.
func (s *MsgSender) Send(key MsgKey, env Envelope, body []byte, onQueued func()) {
	if s.OptionC && len(body) == 0 && !env.Kind.HasBody() {
		s.ctrs.Add("optionc_ctrl", 1)
		s.ctrlQ[key] = append(s.ctrlQ[key], env.Encode())
		s.ensureActive(key)
		s.FlushKey(key)
		if onQueued != nil {
			onQueued()
		}
		return
	}
	msg := &msgOut{env: env.Encode(), body: body, onQueued: onQueued}
	if s.inProg[key] != nil {
		// Option B: the stream is busy; wait behind it.
		s.ctrs.Add("optionb_queued", 1)
		s.queued[key] = append(s.queued[key], msg)
		return
	}
	s.inProg[key] = msg
	s.ensureActive(key)
	s.FlushKey(key)
}

func (s *MsgSender) ensureActive(key MsgKey) {
	for _, k := range s.active {
		if k == key {
			return
		}
	}
	s.active = append(s.active, key)
}

func (s *MsgSender) removeActive(key MsgKey) {
	for i, k := range s.active {
		if k == key {
			s.active = append(s.active[:i], s.active[i+1:]...)
			return
		}
	}
}

// FlushKey pushes pending work on one (peer, stream) as far as the
// transport allows: Option C control messages first, then the
// in-progress message, then the next queued one. It returns the number
// of transport messages accepted.
func (s *MsgSender) FlushKey(key MsgKey) int {
	sent := 0
	for {
		// Control messages jump the line (Option C); interleaving them
		// between body chunks is safe because frame types are
		// distinguished by PPID.
		for len(s.ctrlQ[key]) > 0 {
			envBytes := s.ctrlQ[key][0]
			err := s.trySend(key, PPIDEnvelope, envBytes)
			if errors.Is(err, transport.ErrWouldBlock) {
				return sent
			}
			if err != nil {
				s.ctrs.Add("send_errors", 1)
			}
			s.ctrlQ[key] = s.ctrlQ[key][1:]
			sent++
		}
		msg := s.inProg[key]
		if msg == nil {
			if q := s.queued[key]; len(q) > 0 {
				msg = q[0]
				s.queued[key] = q[1:]
				s.inProg[key] = msg
			} else {
				s.removeActive(key)
				return sent
			}
		}
		if !msg.envSent {
			err := s.trySend(key, PPIDEnvelope, msg.env)
			if errors.Is(err, transport.ErrWouldBlock) {
				return sent
			}
			if err != nil {
				s.ctrs.Add("send_errors", 1)
				s.finishMsg(key, msg)
				continue
			}
			msg.envSent = true
			sent++
		}
		for msg.off < len(msg.body) {
			end := msg.off + s.BodyChunk
			if end > len(msg.body) {
				end = len(msg.body)
			}
			err := s.trySend(key, PPIDBody, msg.body[msg.off:end])
			if errors.Is(err, transport.ErrWouldBlock) {
				return sent
			}
			if err != nil {
				s.ctrs.Add("send_errors", 1)
				break
			}
			msg.off = end
			sent++
		}
		s.finishMsg(key, msg)
	}
}

func (s *MsgSender) finishMsg(key MsgKey, msg *msgOut) {
	s.inProg[key] = nil
	if msg.onQueued != nil {
		msg.onQueued()
	}
}

// DropPeer discards all outbound state destined for peer rank: queued
// and in-progress messages, control frames, and active keys. Used when
// the session to that peer dies — retained messages are replayed from
// the session layer on a fresh transport session, so partially written
// frames must not linger here.
func (s *MsgSender) DropPeer(rank int) {
	for key := range s.inProg {
		if key.Rank == rank {
			delete(s.inProg, key)
		}
	}
	for key := range s.queued {
		if key.Rank == rank {
			delete(s.queued, key)
		}
	}
	for key := range s.ctrlQ {
		if key.Rank == rank {
			delete(s.ctrlQ, key)
		}
	}
	for i := 0; i < len(s.active); i++ {
		if s.active[i].Rank == rank {
			s.active = append(s.active[:i], s.active[i+1:]...)
			i--
		}
	}
}

// FlushActive flushes every (peer, stream) with pending work, in
// arrival order, and reports whether any transport message was
// accepted.
func (s *MsgSender) FlushActive() bool {
	progress := false
	for i := 0; i < len(s.active); i++ {
		key := s.active[i]
		before := len(s.active)
		if s.FlushKey(key) > 0 {
			progress = true
		}
		if len(s.active) < before {
			i-- // key retired
		}
	}
	return progress
}

// FeedResult classifies what one transport message produced.
type FeedResult int

// Feed outcomes.
const (
	FeedNone    FeedResult = iota // chunk absorbed or envelope stored; nothing complete
	FeedMessage                   // a complete middleware message (env, body)
	FeedHello                     // a hello envelope (env)
	FeedError                     // a framing error (counted)
)

type recvState struct {
	env     Envelope
	haveEnv bool
	body    []byte
}

// Reassembler rebuilds middleware messages from per-stream chunk
// trains: an envelope frame announces the message, body frames follow
// on the same (peer, stream). This is the "maintaining state per
// stream" design of paper §3.2.4, with PPID disambiguating envelope
// from body so Option C interleaving is safe.
type Reassembler struct {
	ctrs   Counters
	rstate map[RecvKey]*recvState
}

// NewReassembler builds a reassembler charging frame errors to ctrs.
func NewReassembler(ctrs Counters) *Reassembler {
	return &Reassembler{ctrs: ctrs, rstate: make(map[RecvKey]*recvState)}
}

// Drop discards all partial reassembly state for transport identity id
// (every stream), releasing any partially accumulated body buffers.
// Used when the session owning that identity dies: replayed messages
// arrive as fresh, complete chunk trains on the new session.
func (r *Reassembler) Drop(id int64) {
	for key, rs := range r.rstate {
		if key.ID != id {
			continue
		}
		if rs.body != nil {
			wire.PutBuf(rs.body)
		}
		delete(r.rstate, key)
	}
}

// Feed processes one transport message on (peer, stream) key and
// reports what it produced. Feed takes ownership of data: when a single
// transport message carries an entire body it is returned directly,
// without a copy, so the caller must not reuse the slice.
func (r *Reassembler) Feed(key RecvKey, ppid uint32, data []byte) (FeedResult, Envelope, []byte) {
	rs := r.rstate[key]
	if rs != nil && rs.haveEnv && ppid != PPIDEnvelope {
		// Continuation chunk of a long middleware message on this
		// stream. Under Option B the chunks are contiguous; under
		// Option C a control envelope may be interleaved, but it
		// carries PPIDEnvelope and is routed below instead — the
		// disambiguation that fixes the paper's §3.4 race.
		if rs.body == nil && len(data) >= rs.env.Length {
			// The whole body in one message (the common case for
			// message-oriented transports): hand it through as-is.
			env := rs.env
			delete(r.rstate, key)
			return FeedMessage, env, data
		}
		if rs.body == nil {
			rs.body = wire.GetBuf(rs.env.Length)[:0]
		}
		rs.body = append(rs.body, data...)
		wire.PutBuf(data) // copied out; recycle the transport's buffer
		if len(rs.body) >= rs.env.Length {
			env, body := rs.env, rs.body
			delete(r.rstate, key)
			return FeedMessage, env, body
		}
		return FeedNone, Envelope{}, nil
	}
	// An envelope: either fresh traffic on this stream or an Option C
	// control message interleaved with a body. The envelope's fields are
	// decoded by value, so the transport's buffer is recycled here on
	// every branch.
	env, err := DecodeEnvelope(data)
	wire.PutBuf(data)
	if err != nil {
		r.ctrs.Add("frame_errors", 1)
		return FeedError, Envelope{}, nil
	}
	if env.Kind == KindHello {
		return FeedHello, env, nil
	}
	if !env.Kind.HasBody() || env.Length == 0 {
		return FeedMessage, env, nil
	}
	if rs != nil && rs.haveEnv {
		// A data envelope arriving inside another message's body train
		// violates the writer lock (Option B) / PPID protocol.
		r.ctrs.Add("frame_errors", 1)
		return FeedError, Envelope{}, nil
	}
	// body stays nil until the first continuation chunk so a
	// single-message body can be passed through without copying.
	r.rstate[key] = &recvState{env: env, haveEnv: true}
	return FeedNone, Envelope{}, nil
}
