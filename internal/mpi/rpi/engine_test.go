package rpi

import (
	"errors"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/transport"
)

// TestDriveLostWakeupPost is the lost-wakeup regression: a readiness
// edge posted after the pass concluded no-progress but before the park
// must start another pass, not be slept through. The poller's wake
// broadcast fires while the process is still running (nobody waiting),
// so without the pre-park pending check the event would sit queued in
// a deadlocked simulation.
func TestDriveLostWakeupPost(t *testing.T) {
	k := sim.New(1)
	var e Engine
	e.SetupEngine(0, 2, CostModel{})
	events := 0
	k.Spawn("drv", func(p *sim.Proc) {
		e.BindProc(p)
		src := e.Poller().Register(7)
		posted := false
		err := e.Drive(p, true, 1,
			func(tag int, ev transport.Ready) bool {
				if tag != 7 || !ev.Has(transport.ReadyRecv) {
					t.Errorf("event (%d, %v), want (7, recv)", tag, ev)
				}
				events++
				return true
			},
			func(kicked bool) bool {
				if !posted {
					posted = true
					e.Poller().Post(src, transport.ReadyRecv)
				}
				return false
			})
		if err != nil {
			t.Errorf("Drive: %v", err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatalf("run (lost wakeup deadlock?): %v", err)
	}
	if events != 1 {
		t.Fatalf("dispatched %d events, want 1", events)
	}
}

// TestDriveLostWakeupNotify is the same window for the generic kick: a
// Notify raised by the tail itself (e.g. ScheduleRedial during loss
// handling) must be seen by a follow-up pass with kicked=true.
func TestDriveLostWakeupNotify(t *testing.T) {
	k := sim.New(1)
	var e Engine
	e.SetupEngine(0, 2, CostModel{})
	kickedPasses := 0
	k.Spawn("drv", func(p *sim.Proc) {
		e.BindProc(p)
		err := e.Drive(p, true, 1,
			func(int, transport.Ready) bool { return false },
			func(kicked bool) bool {
				if kicked {
					kickedPasses++
					return true
				}
				e.Notify()
				return false
			})
		if err != nil {
			t.Errorf("Drive: %v", err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if kickedPasses != 1 {
		t.Fatalf("kicked passes = %d, want 1", kickedPasses)
	}
}

// TestDriveSameUnitKick verifies a kick raised by an event handler
// reaches the same pass's tail — the old scan loop ran redials in the
// pass that drained the loss, and recovery timing depends on it.
func TestDriveSameUnitKick(t *testing.T) {
	k := sim.New(1)
	var e Engine
	e.SetupEngine(0, 2, CostModel{})
	var order []string
	k.Spawn("drv", func(p *sim.Proc) {
		e.BindProc(p)
		src := e.Poller().Register(1)
		e.Poller().Post(src, transport.ReadyErr)
		err := e.Drive(p, true, 1,
			func(tag int, ev transport.Ready) bool {
				order = append(order, "event")
				e.Notify() // what ScheduleRedial does on loss
				return true
			},
			func(kicked bool) bool {
				if kicked {
					order = append(order, "tail-kicked")
				}
				return false
			})
		if err != nil {
			t.Errorf("Drive: %v", err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(order) != 2 || order[0] != "event" || order[1] != "tail-kicked" {
		t.Fatalf("order = %v, want [event tail-kicked]", order)
	}
}

// TestDriveParkAndTimerWake checks the blocking park: with nothing
// ready, Drive must sleep in virtual time until a kernel-context post
// (a transport notify) arrives, then dispatch it.
func TestDriveParkAndTimerWake(t *testing.T) {
	k := sim.New(1)
	var e Engine
	e.SetupEngine(0, 2, CostModel{})
	var woke time.Duration
	k.Spawn("drv", func(p *sim.Proc) {
		e.BindProc(p)
		src := e.Poller().Register(3)
		hook := e.Poller().Hook(src)
		p.Kernel().After(5*time.Millisecond, func() { hook(transport.ReadyRecv) })
		err := e.Drive(p, true, 1,
			func(tag int, ev transport.Ready) bool {
				woke = p.Now()
				return true
			}, nil)
		if err != nil {
			t.Errorf("Drive: %v", err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if woke != 5*time.Millisecond {
		t.Fatalf("dispatched at %v, want 5ms", woke)
	}
}

// TestDriveFailStopsDispatch is the Fail-ordering regression: when an
// event handler records a terminal error, readiness events already
// queued behind it must NOT be pumped — their endpoints are dead with
// the module — and Drive returns the sticky error, as does every later
// call.
func TestDriveFailStopsDispatch(t *testing.T) {
	k := sim.New(1)
	var e Engine
	e.SetupEngine(0, 2, CostModel{})
	boom := errors.New("boom")
	var seen []int
	k.Spawn("drv", func(p *sim.Proc) {
		e.BindProc(p)
		a := e.Poller().Register(1)
		b := e.Poller().Register(2)
		e.Poller().Post(a, transport.ReadyErr)
		e.Poller().Post(b, transport.ReadyRecv)
		onEvent := func(tag int, ev transport.Ready) bool {
			seen = append(seen, tag)
			if tag == 1 {
				e.Fail(boom)
			}
			return true
		}
		tail := func(bool) bool {
			t.Error("tail ran after Fail")
			return false
		}
		if err := e.Drive(p, true, 1, onEvent, tail); !errors.Is(err, boom) {
			t.Errorf("Drive after Fail: %v, want boom", err)
		}
		if err := e.Drive(p, true, 1, onEvent, tail); !errors.Is(err, boom) {
			t.Errorf("second Drive: %v, want sticky boom", err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(seen) != 1 || seen[0] != 1 {
		t.Fatalf("dispatched %v, want only the failing source [1]", seen)
	}
}

// TestDriveNonBlockingSinglePass: non-blocking Advance semantics — one
// pass, no park, even with nothing ready.
func TestDriveNonBlockingSinglePass(t *testing.T) {
	k := sim.New(1)
	var e Engine
	e.SetupEngine(0, 2, CostModel{PollBase: time.Microsecond})
	k.Spawn("drv", func(p *sim.Proc) {
		e.BindProc(p)
		if err := e.Drive(p, false, 4, func(int, transport.Ready) bool { return true }, nil); err != nil {
			t.Errorf("Drive: %v", err)
		}
		if got := p.Now(); got != time.Microsecond {
			t.Errorf("poll charge %v, want 1µs", got)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if got := e.Counters()["poll_passes"]; got != 1 {
		t.Fatalf("poll_passes = %d, want 1", got)
	}
	if got := e.Counters()["poll_scan_fds"]; got != 4 {
		t.Fatalf("poll_scan_fds = %d, want 4", got)
	}
}

// TestEventCostCharged: each dequeued readiness event charges the
// per-event cost — the proactor's knob, scaling with active peers
// rather than mesh size.
func TestEventCostCharged(t *testing.T) {
	k := sim.New(1)
	var e Engine
	e.SetupEngine(0, 2, CostModel{PollPerEvent: 3 * time.Microsecond})
	k.Spawn("drv", func(p *sim.Proc) {
		e.BindProc(p)
		a := e.Poller().Register(1)
		b := e.Poller().Register(2)
		e.Poller().Post(a, transport.ReadyRecv)
		e.Poller().Post(b, transport.ReadyRecv)
		if err := e.Drive(p, true, 8, func(int, transport.Ready) bool { return true }, nil); err != nil {
			t.Errorf("Drive: %v", err)
		}
		if got := p.Now(); got != 6*time.Microsecond {
			t.Errorf("event charge %v, want 6µs", got)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if got := e.Counters()["poll_events"]; got != 2 {
		t.Fatalf("poll_events = %d, want 2", got)
	}
}
