package rpi

import (
	"errors"

	"repro/internal/transport"
	"repro/internal/wire"
)

// This file is the byte-stream half of the shared engine: the outbound
// queue with partial-write resumption and the envelope-framing read
// state machine that byte-oriented transports (the TCP module) need
// and message-oriented ones do not.

// outMsg is one queued outbound message: encoded envelope plus body,
// with partial-write state.
type outMsg struct {
	env      []byte
	body     []byte
	off      int // bytes written across env+body
	onQueued func()
}

func (m *outMsg) total() int { return len(m.env) + len(m.body) }

// OutQueue is a per-connection outbound queue for byte-stream
// transports: one message at a time with partial-write resumption,
// exactly as LAM's nonblocking TCP writer works.
type OutQueue struct {
	wq  []*outMsg
	cur *outMsg
}

// Push appends one message to the queue.
func (q *OutQueue) Push(env Envelope, body []byte, onQueued func()) {
	q.wq = append(q.wq, &outMsg{env: env.Encode(), body: body, onQueued: onQueued})
}

// Pending reports whether the queue holds unfinished work.
func (q *OutQueue) Pending() bool { return q.cur != nil || len(q.wq) > 0 }

// Flush writes queued messages until the transport would block,
// returning the number of bytes moved into it. A terminal write error
// drops the in-progress message after invoking onError — MPI treats
// communication failure as fatal (paper §3.5).
func (q *OutQueue) Flush(tryWrite func([]byte) (int, error), onError func(error)) int {
	wrote := 0
	for {
		if q.cur == nil {
			if len(q.wq) == 0 {
				return wrote
			}
			q.cur = q.wq[0]
			q.wq = q.wq[1:]
		}
		msg := q.cur
		for msg.off < msg.total() {
			var chunk []byte
			if msg.off < len(msg.env) {
				chunk = msg.env[msg.off:]
			} else {
				chunk = msg.body[msg.off-len(msg.env):]
			}
			n, err := tryWrite(chunk)
			msg.off += n
			wrote += n
			if errors.Is(err, transport.ErrWouldBlock) {
				return wrote
			}
			if err != nil {
				onError(err)
				msg.off = msg.total()
			}
		}
		q.cur = nil
		if msg.onQueued != nil {
			msg.onQueued()
		}
	}
}

// Reset discards all queued and partially written messages. Used when
// the connection dies: unacknowledged messages are replayed from the
// session layer's retention on the replacement connection, so nothing
// here is worth keeping (bodies are caller-owned and not pooled).
func (q *OutQueue) Reset() { q.wq, q.cur = nil, nil }

// StreamFramer is the per-connection inbound state machine for
// byte-stream transports: EnvelopeSize envelope bytes, then Length
// body bytes, repeated.
type StreamFramer struct {
	envBuf  [EnvelopeSize]byte
	envGot  int
	env     Envelope
	haveEnv bool
	body    []byte
}

// Reset abandons any partially framed message (the connection died
// mid-message), releasing the pooled body buffer.
func (f *StreamFramer) Reset() {
	if f.body != nil {
		wire.PutBuf(f.body)
	}
	*f = StreamFramer{}
}

// beginMessage latches a decoded envelope and allocates the pooled
// body buffer ownership of which passes to onMsg with the complete
// message; the RPI engine recycles it after delivery.
func (f *StreamFramer) beginMessage(env Envelope) {
	f.env = env
	f.envGot = 0
	f.haveEnv = true
	f.body = nil
	if env.Kind.HasBody() && env.Length > 0 {
		f.body = wire.GetBuf(env.Length)[:0]
	}
}

// readEnvelope advances the envelope half of the state machine. The
// fast path parses the envelope in place from the stream's contiguous
// head region — no copy, no scratch buffer; with a bip-buffer receive
// queue underneath, that is the overwhelmingly common case. Only an
// envelope straddling the region boundary (or arriving in fragments)
// is assembled byte-by-byte in envBuf. Returns true once f.haveEnv;
// false when out of bytes or on a frame error (which it reports).
func (f *StreamFramer) readEnvelope(src transport.ByteStream, progress *bool, onFrameError func()) bool {
	if f.envGot == 0 {
		if h, _ := src.Peek(); len(h) >= EnvelopeSize {
			env, derr := DecodeEnvelope(h[:EnvelopeSize])
			src.Discard(EnvelopeSize)
			*progress = true
			if derr != nil {
				onFrameError()
				return false
			}
			f.beginMessage(env)
			return true
		}
	}
	n, _ := src.TryRead(f.envBuf[f.envGot:])
	if n == 0 {
		// Would block, EOF (peer finalized), or reset.
		return false
	}
	*progress = true
	f.envGot += n
	if f.envGot < EnvelopeSize {
		return false // a short read means the stream is drained
	}
	env, derr := DecodeEnvelope(f.envBuf[:])
	if derr != nil {
		onFrameError()
		return false
	}
	f.beginMessage(env)
	return true
}

// Drain pulls every available byte through the framing state machine,
// invoking onMsg for each complete message and onFrameError for an
// undecodable envelope (which also abandons the read pass). It reports
// whether anything arrived.
func (f *StreamFramer) Drain(src transport.ByteStream,
	onMsg func(Envelope, []byte), onFrameError func()) bool {
	progress := false
	for {
		if !f.haveEnv {
			if !f.readEnvelope(src, &progress, onFrameError) {
				return progress
			}
		}
		// Body bytes, if any.
		bodyLen := 0
		if f.env.Kind.HasBody() {
			bodyLen = f.env.Length
		}
		for len(f.body) < bodyLen {
			// Read straight into the body's free capacity; no scratch
			// buffer, no second copy. The 64 KiB cap mirrors a socket
			// read size and bounds how much one call consumes.
			need := bodyLen - len(f.body)
			if need > 64<<10 {
				need = 64 << 10
			}
			n, err := src.TryRead(f.body[len(f.body) : len(f.body)+need])
			if n > 0 {
				f.body = f.body[:len(f.body)+n]
				progress = true
			}
			if errors.Is(err, transport.ErrWouldBlock) || n == 0 {
				if len(f.body) < bodyLen {
					return progress
				}
			} else if err != nil {
				return progress
			}
		}
		// Complete message.
		env, body := f.env, f.body
		f.haveEnv = false
		f.body = nil
		onMsg(env, body)
		progress = true
	}
}
