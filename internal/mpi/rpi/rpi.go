// Package rpi defines the contract between the MPI middleware and its
// request-progression-interface (RPI) modules, mirroring LAM's RPI
// layer: the middleware posts sends and progresses requests; the RPI
// moves envelopes and bodies over a transport and delivers inbound
// traffic back to the middleware.
package rpi

import (
	"time"

	"repro/internal/sim"
	"repro/internal/wire"
)

// Kind enumerates middleware message kinds carried in envelope flags
// (the LAM envelope "flags" field, §2.2.2 of the paper).
type Kind uint8

// Envelope kinds.
const (
	KindShort        Kind = iota // eager short message: body follows
	KindSync                     // eager synchronous short: body follows, ACK expected
	KindSyncAck                  // completes a synchronous send
	KindLongReq                  // rendezvous request: no body, Length = full size
	KindLongAck                  // receiver ready: sender may transmit the body
	KindLongBody                 // rendezvous body: body follows
	KindHello                    // RPI-internal: connection setup barrier
	KindReconnect                // RPI-internal: session recovery handshake (carries SEpoch/SAck)
	KindReconnectAck             // RPI-internal: completes a recovery handshake
)

// HasBody reports whether a message of this kind carries a body on the
// wire. KindLongReq advertises its Length for matching, but the body
// only travels later as KindLongBody.
func (k Kind) HasBody() bool {
	return k == KindShort || k == KindSync || k == KindLongBody
}

func (k Kind) String() string {
	switch k {
	case KindShort:
		return "short"
	case KindSync:
		return "sync"
	case KindSyncAck:
		return "syncack"
	case KindLongReq:
		return "longreq"
	case KindLongAck:
		return "longack"
	case KindLongBody:
		return "longbody"
	case KindHello:
		return "hello"
	case KindReconnect:
		return "reconnect"
	case KindReconnectAck:
		return "reconnectack"
	}
	return "?"
}

// Envelope precedes every message body (Figure 2 of the paper). Rank is
// always a world rank; communicator rank translation happens in the
// middleware.
type Envelope struct {
	Length  int    // body length in bytes
	Tag     int32  // message tag
	Context int32  // communicator context id
	Rank    int32  // world rank of the sender
	Kind    Kind   // message kind (LAM's flags field)
	Seq     uint64 // sender-local sequence number; ACKs echo it

	// Session-recovery fields, managed by the per-peer session layer
	// inside each module (the middleware and the Observe boundary never
	// see them set). SSeq is the per-peer dense message sequence number
	// (1-based; 0 marks unsessioned control traffic such as hellos and
	// the recovery handshake itself). SAck piggybacks the sender's
	// last-delivered-in-order SSeq for this peer, pruning the peer's
	// retention. SEpoch counts recovery handshakes on this peering; on
	// KindReconnect/KindReconnectAck, SAck carries the cumulative
	// delivered seq the replay negotiates from.
	SSeq   uint64
	SAck   uint64
	SEpoch uint32
}

// EnvelopeSize is the fixed wire size of an encoded envelope.
const EnvelopeSize = 48

// Encode serializes the envelope.
func (e *Envelope) Encode() []byte {
	w := wire.NewWriter(EnvelopeSize)
	w.U32(uint32(e.Length))
	w.U32(uint32(e.Tag))
	w.U32(uint32(e.Context))
	w.U32(uint32(e.Rank))
	w.U32(uint32(e.Kind))
	w.U64(e.Seq)
	w.U64(e.SSeq)
	w.U64(e.SAck)
	w.U32(e.SEpoch)
	w.Pad(EnvelopeSize)
	return w.B
}

// DecodeEnvelope parses an envelope from b.
func DecodeEnvelope(b []byte) (Envelope, error) {
	r := wire.NewReader(b)
	var e Envelope
	e.Length = int(int32(r.U32()))
	e.Tag = int32(r.U32())
	e.Context = int32(r.U32())
	e.Rank = int32(r.U32())
	e.Kind = Kind(r.U32())
	e.Seq = r.U64()
	e.SSeq = r.U64()
	e.SAck = r.U64()
	e.SEpoch = r.U32()
	return e, r.Err()
}

// Delivery receives a complete inbound message (envelope plus body; the
// body is nil for bodiless kinds). The callee must not retain body.
type Delivery func(env Envelope, body []byte)

// RPI is a request progression module. All methods are called from the
// owning process's simulation context; implementations need no locking.
type RPI interface {
	// Init establishes transport connectivity with every other process
	// and returns once the module is ready to carry messages (for the
	// SCTP module this includes the paper's post-setup barrier).
	Init(p *sim.Proc) error

	// SetDelivery installs the middleware's inbound handler. Must be
	// called before Init.
	SetDelivery(d Delivery)

	// Send queues one message to the destination world rank. onQueued,
	// if non-nil, runs when the message has been fully handed to the
	// transport (the completion point for buffered eager sends).
	Send(dest int, env Envelope, body []byte, onQueued func())

	// Advance progresses outstanding transport work, invoking the
	// delivery callback for anything that arrived. With block set it
	// parks the process until there is at least potential progress.
	// A non-nil error is terminal (session recovery exhausted its
	// redial budget): the job must abort via Abort, not Finalize.
	Advance(p *sim.Proc, block bool) error

	// Finalize flushes and tears down transport state.
	Finalize(p *sim.Proc)

	// Abort abandons all transport state abortively (no handshakes, no
	// flushes) after a terminal Advance error, releasing listener and
	// socket resources so peers redialing this rank fail fast instead
	// of hanging the simulation.
	Abort(p *sim.Proc)

	// Counters exposes per-module statistics for reports and tests.
	// Iteration helpers on the returned Counters are deterministic.
	Counters() Counters
}

// CostModel charges virtual CPU time for middleware/transport API work.
// This is how the reproduction expresses the stack-efficiency asymmetry
// the paper measured on real hardware (TCP's kernel maturity and
// checksum offload versus SCTP's per-message processing; the TCP
// module's select() and byte-stream framing scan versus one-to-many
// sctp_recvmsg).
type CostModel struct {
	SendPerMsg time.Duration // per message handed to the transport
	RecvPerMsg time.Duration // per message delivered up
	SendPerKB  time.Duration // per 1024 body bytes sent
	RecvPerKB  time.Duration // per 1024 body bytes received
	PollBase   time.Duration // per Advance poll pass (select/recvmsg syscall)
	PollPerFD  time.Duration // additional per polled descriptor (select scan)
	// PollPerEvent charges each readiness event the proactor engine
	// dequeues. Unlike PollPerFD it scales with *active* peers, not mesh
	// size — the epoll-vs-select distinction the rank-scaling benchmark
	// measures. Zero in the default models so the paper's figures keep
	// their select-era charging.
	PollPerEvent time.Duration
}

// SendCost returns the virtual CPU cost of sending n body bytes.
func (c CostModel) SendCost(n int) time.Duration {
	return c.SendPerMsg + c.SendPerKB*time.Duration(n)/1024
}

// RecvCost returns the virtual CPU cost of receiving n body bytes.
func (c CostModel) RecvCost(n int) time.Duration {
	return c.RecvPerMsg + c.RecvPerKB*time.Duration(n)/1024
}

// PollCost returns the virtual CPU cost of one poll over nfds
// descriptors.
func (c CostModel) PollCost(nfds int) time.Duration {
	return c.PollBase + c.PollPerFD*time.Duration(nfds)
}

// EventCost returns the virtual CPU cost of dequeuing one readiness
// event in the proactor loop.
func (c CostModel) EventCost() time.Duration {
	return c.PollPerEvent
}
