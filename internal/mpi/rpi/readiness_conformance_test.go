// Readiness conformance: the proactor contract every backend must
// uphold. Events are edge-triggered — an endpoint is queued once per
// edge and the module must drain it to would-block — so a lost edge is
// a hang, and a session kill/redial must retire the dead endpoint's
// registration and re-arm the replacement without dropping an edge.
package rpi_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/mpi"
	"repro/internal/mpi/rpi"
)

// Edge-triggered registrations must survive session kill/redial on
// either side: the dying endpoint's hook is retired by its terminal
// event, the redialed endpoint is re-registered (with a synthetic
// readable edge for anything that landed before registration), and no
// message is lost or reordered across any number of recovery cycles.
func TestConformanceReadinessAcrossKillCycles(t *testing.T) {
	for _, b := range backends() {
		t.Run(b.name, func(t *testing.T) {
			runWorldMods(t, b, 2, 0, func(mods []rpi.RPI, pr *mpi.Process, comm *mpi.Comm) error {
				const rounds = 30
				if comm.Rank() == 0 {
					for i := 0; i < rounds; i++ {
						if err := comm.Send(1, 0, pattern(700, byte(i))); err != nil {
							return err
						}
						// Kill after every tenth send: buffered bytes die
						// with the session and must be replayed into a
						// fresh endpoint whose readiness hook was armed
						// after the data could already be queued.
						if i%10 == 9 {
							kill(t, mods, 0, 1)
						}
					}
					return nil
				}
				buf := make([]byte, 700)
				for i := 0; i < rounds; i++ {
					if i == 15 {
						// Receiver-side kill mid-stream: the sender keeps
						// writing into a session the receiver destroyed.
						kill(t, mods, 1, 0)
					}
					if _, err := comm.Recv(0, 0, buf); err != nil {
						return err
					}
					if err := checkPattern(buf, byte(i)); err != nil {
						return fmt.Errorf("round %d: %w", i, err)
					}
				}
				return nil
			})
		})
	}
}

// A receiver parked in a blocking receive before any bytes exist must
// be woken by the transport readiness edge alone — and must actually
// park, not busy-poll, while the sender idles.
func TestConformanceReadinessParkedWake(t *testing.T) {
	for _, b := range backends() {
		t.Run(b.name, func(t *testing.T) {
			mods := runWorld(t, b, 2, 0, func(pr *mpi.Process, comm *mpi.Comm) error {
				if comm.Rank() == 0 {
					pr.P.Sleep(40 * time.Millisecond)
					return comm.Send(1, 0, pattern(4096, 2))
				}
				buf := make([]byte, 4096)
				if _, err := comm.Recv(0, 0, buf); err != nil {
					return err
				}
				return checkPattern(buf, 2)
			})
			for r, m := range mods {
				c := m.Counters()
				if c["poll_events"] == 0 {
					t.Errorf("rank %d: poll_events = 0; progress never consumed a readiness event", r)
				}
				// The whole exchange is a handful of edges. Thousands of
				// passes would mean the blocking path regressed to a spin.
				if got := c["poll_passes"]; got > 1000 {
					t.Errorf("rank %d: poll_passes = %d; blocking progress is spinning instead of parking", r, got)
				}
			}
		})
	}
}
