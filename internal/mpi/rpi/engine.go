package rpi

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/wire"
)

// Engine is the progression machinery shared by every RPI module, so a
// module reduces to a transport binding (the paper's §3 thesis). It
// owns the typed counters, the delivery callback, CostModel charging,
// the transport-notify wake-up plumbing, and the canonical Advance
// poll loop. Modules embed it and bind it to a transport by supplying
// a pump function that moves bytes or messages.
type Engine struct {
	Rank int
	Size int
	Cost CostModel

	deliver Delivery
	ctrs    Counters
	self    *sim.Proc
	cond    *sim.Cond
	dirty   bool
	err     error
}

// SetupEngine initializes the engine at module construction time.
func (e *Engine) SetupEngine(rank, size int, cost CostModel) {
	e.Rank, e.Size, e.Cost = rank, size, cost
	e.ctrs = NewCounters()
}

// BindProc attaches the engine to its owning simulation process. Must
// be called at the top of the module's Init.
func (e *Engine) BindProc(p *sim.Proc) {
	e.self = p
	e.cond = sim.NewCond(p.Kernel())
}

// SetDelivery implements RPI.
func (e *Engine) SetDelivery(d Delivery) { e.deliver = d }

// Counters implements RPI.
func (e *Engine) Counters() Counters { return e.ctrs }

// Notify is the transport event hook: pass it to the endpoint's
// SetNotify. It records that socket state changed and wakes a blocked
// Advance.
func (e *Engine) Notify() {
	e.dirty = true
	e.cond.Broadcast()
}

// Fail records a terminal module error (session recovery exhausted).
// The first error sticks; every subsequent Advance returns it.
func (e *Engine) Fail(err error) {
	if e.err == nil {
		e.err = err
	}
	e.Notify()
}

// Err returns the sticky terminal error, if any.
func (e *Engine) Err() error { return e.err }

// CountSend records one outbound message of n body bytes and charges
// the send-side CPU cost.
func (e *Engine) CountSend(n int) {
	e.ctrs.Add("msgs_sent", 1)
	e.ctrs.Add("bytes_sent", int64(n))
	if d := e.Cost.SendCost(n); d > 0 && e.self != nil {
		e.self.Sleep(d)
	}
}

// Complete records one complete inbound message, charges the
// receive-side CPU cost, and hands it to the middleware.
func (e *Engine) Complete(p *sim.Proc, env Envelope, body []byte) {
	e.ctrs.Add("msgs_rcvd", 1)
	e.ctrs.Add("bytes_rcvd", int64(len(body)))
	if d := e.Cost.RecvCost(len(body)); d > 0 {
		p.Sleep(d)
	}
	e.deliver(env, body)
	// Delivery copies the payload into the posted receive buffer (or an
	// unexpected-message copy); the transport-side body buffer is dead
	// now and goes back to the wire pool.
	wire.PutBuf(body)
}

// Loop is the canonical Advance scaffold: charge one poll pass over
// nfds descriptors (the select()/sctp_recvmsg syscall cost the paper
// discusses), run pump to move transport work, and — when blocking
// with no progress — park the process until a transport notify fires.
func (e *Engine) Loop(p *sim.Proc, block bool, nfds int, pump func() bool) {
	for {
		e.dirty = false
		if d := e.Cost.PollCost(nfds); d > 0 {
			p.Sleep(d)
		}
		progress := pump()
		if progress || !block || e.err != nil {
			return
		}
		if e.dirty {
			continue // socket state changed while we were scanning
		}
		e.cond.Wait(p)
		// Loop around for another pass.
	}
}

// LoopUntil is Loop with an external completion condition instead of a
// progress requirement: it pumps until stop() holds (or the module
// fails terminally), parking between transport events. MeshInit's
// final rendezvous runs on it so a process waiting for slower peers
// keeps serving inbound traffic — a peer recovering from a session
// kill during bring-up needs its redial handshake answered even by
// ranks already done with their own setup.
func (e *Engine) LoopUntil(p *sim.Proc, nfds int, stop func() bool, pump func() bool) {
	for !stop() && e.err == nil {
		e.dirty = false
		if d := e.Cost.PollCost(nfds); d > 0 {
			p.Sleep(d)
		}
		pump()
		if stop() || e.err != nil {
			return
		}
		if e.dirty {
			continue // socket state changed while we were scanning
		}
		e.cond.Wait(p)
	}
}

// MeshInit runs the connection bring-up shared by all modules: a
// rendezvous so every listener exists before anyone connects, a dial
// to every higher rank announcing ourselves with a hello envelope
// (lower ranks initiate, avoiding handshake collision), the module's
// accept step for the remaining peers, and a final rendezvous so no
// MPI traffic precedes full connectivity — the paper's §3.4.3 MPI_Init
// fix.
//
// The final rendezvous must not park the process dead: a session kill
// during bring-up forces one rank back into recovery, and its redial
// handshake needs the surviving side to keep pumping. wake is the
// module's Notify hook (invoked when the last party arrives) and wait
// drives the module until the passed check holds, typically via
// Engine.LoopUntil with the module's Advance pump.
func MeshInit(p *sim.Proc, b *Barrier, rank, size int,
	dial func(peer int, hello Envelope) error,
	accept func() error,
	wake func(),
	wait func(done func() bool) error) error {
	b.Arrive(p)
	hello := Envelope{Kind: KindHello, Rank: int32(rank)}
	for j := rank + 1; j < size; j++ {
		if err := dial(j, hello); err != nil {
			return fmt.Errorf("rpi: rank %d dial %d: %w", rank, j, err)
		}
	}
	if err := accept(); err != nil {
		return err
	}
	if wait == nil {
		b.Arrive(p)
		return nil
	}
	return wait(b.ArriveFunc(wake))
}
