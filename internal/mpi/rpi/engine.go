package rpi

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Engine is the progression machinery shared by every RPI module, so a
// module reduces to a transport binding (the paper's §3 thesis). It
// owns the typed counters, the delivery callback, CostModel charging,
// the readiness poller, and the canonical Advance loop. Modules embed
// it, register one poller source per endpoint they own, and supply an
// onEvent handler that pumps exactly the endpoint a readiness edge
// names — the proactor replacement for the old scan-every-peer pump.
type Engine struct {
	Rank int
	Size int
	Cost CostModel

	deliver Delivery
	ctrs    Counters
	self    *sim.Proc
	cond    *sim.Cond
	poller  *transport.Poller
	kick    bool
	err     error
}

// SetupEngine initializes the engine at module construction time.
func (e *Engine) SetupEngine(rank, size int, cost CostModel) {
	e.Rank, e.Size, e.Cost = rank, size, cost
	e.ctrs = NewCounters()
}

// BindProc attaches the engine to its owning simulation process. Must
// be called at the top of the module's Init.
func (e *Engine) BindProc(p *sim.Proc) {
	e.self = p
	e.cond = sim.NewCond(p.Kernel())
	e.poller = transport.NewPoller(e.cond.Broadcast)
}

// SetDelivery implements RPI.
func (e *Engine) SetDelivery(d Delivery) { e.deliver = d }

// Proc returns the owning simulation process bound by BindProc.
func (e *Engine) Proc() *sim.Proc { return e.self }

// Counters implements RPI.
func (e *Engine) Counters() Counters { return e.ctrs }

// Poller returns the engine's readiness queue. Modules Register one
// source per endpoint (tagged however suits them — peer rank, or a
// module-local tag for listeners and pending connections) and hand
// Hook(id) to the endpoint's SetNotify.
func (e *Engine) Poller() *transport.Poller { return e.poller }

// Notify is the generic progress kick for events that are not endpoint
// readiness: timers (session redial backoff), barrier arrival, and any
// other "re-examine module state" signal. It wakes a parked Drive and
// makes the next pass run its tail with kicked=true.
func (e *Engine) Notify() {
	e.kick = true
	e.cond.Broadcast()
}

// Fail records a terminal module error (session recovery exhausted).
// The first error sticks; every subsequent Advance returns it. A pass
// in flight stops dispatching queued readiness events immediately —
// endpoints queued before the failure are dead with the module, and
// pumping them would resurrect I/O on torn-down sessions.
func (e *Engine) Fail(err error) {
	if e.err == nil {
		e.err = err
	}
	e.Notify()
}

// Err returns the sticky terminal error, if any.
func (e *Engine) Err() error { return e.err }

// CountSend records one outbound message of n body bytes and charges
// the send-side CPU cost.
func (e *Engine) CountSend(n int) {
	e.ctrs.Add("msgs_sent", 1)
	e.ctrs.Add("bytes_sent", int64(n))
	if d := e.Cost.SendCost(n); d > 0 && e.self != nil {
		e.self.Sleep(d)
	}
}

// Complete records one complete inbound message, charges the
// receive-side CPU cost, and hands it to the middleware.
func (e *Engine) Complete(p *sim.Proc, env Envelope, body []byte) {
	e.ctrs.Add("msgs_rcvd", 1)
	e.ctrs.Add("bytes_rcvd", int64(len(body)))
	if d := e.Cost.RecvCost(len(body)); d > 0 {
		p.Sleep(d)
	}
	e.deliver(env, body)
	// Delivery copies the payload into the posted receive buffer (or an
	// unexpected-message copy); the transport-side body buffer is dead
	// now and goes back to the wire pool.
	wire.PutBuf(body)
}

// drivePass runs one poll pass: charge the pass cost, drain the ready
// queue through onEvent (each dequeue charges the per-event cost), then
// run the module's tail work. kicked tells the tail whether a generic
// Notify arrived since the last pass — that is when time-driven module
// state (redial backoff, rendezvous arrival) needs a sweep; endpoint
// traffic never requires one.
func (e *Engine) drivePass(p *sim.Proc, nfds int,
	onEvent func(tag int, ev transport.Ready) bool,
	tail func(kicked bool) bool) bool {
	if d := e.Cost.PollCost(nfds); d > 0 {
		p.Sleep(d)
	}
	e.ctrs.Add("poll_passes", 1)
	e.ctrs.Add("poll_scan_fds", int64(nfds))
	kicked := e.kick
	e.kick = false
	progress := false
	for e.err == nil {
		tag, ev, ok := e.poller.Next()
		if !ok {
			break
		}
		e.ctrs.Add("poll_events", 1)
		if d := e.Cost.EventCost(); d > 0 {
			p.Sleep(d)
		}
		if onEvent(tag, ev) {
			progress = true
		}
	}
	// A kick raised by an event handler (ScheduleRedial after a loss)
	// belongs to this pass: the tail must see it now, in the pass that
	// drained the loss, not one poll charge later.
	if e.kick {
		kicked = true
		e.kick = false
	}
	if e.err == nil && tail != nil && tail(kicked) {
		progress = true
	}
	return progress
}

// Drive is the canonical Advance scaffold: run poll passes until one
// makes progress (or, non-blocking, exactly one pass), parking the
// process between passes when nothing is ready. nfds is the descriptor
// count the pass cost is charged over — the select() ablation knob; the
// work itself is proportional to ready events, not nfds.
//
// The park is guarded against the lost-wakeup window: a readiness edge
// or Notify that lands between the pass returning no-progress and the
// wait must start another pass, not be slept through.
func (e *Engine) Drive(p *sim.Proc, block bool, nfds int,
	onEvent func(tag int, ev transport.Ready) bool,
	tail func(kicked bool) bool) error {
	for {
		progress := e.drivePass(p, nfds, onEvent, tail)
		if e.err != nil {
			return e.err
		}
		if progress || !block {
			return nil
		}
		if e.poller.Pending() || e.kick {
			continue // arrived while we were pumping: no park
		}
		e.cond.Wait(p)
	}
}

// DriveUntil is Drive with an external completion condition instead of
// a progress requirement: it pumps until stop() holds (or the module
// fails terminally), parking between events. MeshInit's final
// rendezvous runs on it so a process waiting for slower peers keeps
// serving inbound traffic — a peer recovering from a session kill
// during bring-up needs its redial handshake answered even by ranks
// already done with their own setup.
func (e *Engine) DriveUntil(p *sim.Proc, nfds int, stop func() bool,
	onEvent func(tag int, ev transport.Ready) bool,
	tail func(kicked bool) bool) error {
	for !stop() && e.err == nil {
		e.drivePass(p, nfds, onEvent, tail)
		if stop() || e.err != nil {
			break
		}
		if e.poller.Pending() || e.kick {
			continue
		}
		e.cond.Wait(p)
	}
	return e.err
}

// MeshInit runs the connection bring-up shared by all modules: a
// rendezvous so every listener exists before anyone connects, a dial
// to every higher rank announcing ourselves with a hello envelope
// (lower ranks initiate, avoiding handshake collision), the module's
// accept step for the remaining peers, and a final rendezvous so no
// MPI traffic precedes full connectivity — the paper's §3.4.3 MPI_Init
// fix.
//
// The final rendezvous must not park the process dead: a session kill
// during bring-up forces one rank back into recovery, and its redial
// handshake needs the surviving side to keep pumping. wake is the
// module's Notify hook (invoked when the last party arrives) and wait
// drives the module until the passed check holds, typically via
// Engine.DriveUntil with the module's event handler.
func MeshInit(p *sim.Proc, b *Barrier, rank, size int,
	dial func(peer int, hello Envelope) error,
	accept func() error,
	wake func(),
	wait func(done func() bool) error) error {
	b.Arrive(p)
	hello := Envelope{Kind: KindHello, Rank: int32(rank)}
	for j := rank + 1; j < size; j++ {
		if err := dial(j, hello); err != nil {
			return fmt.Errorf("rpi: rank %d dial %d: %w", rank, j, err)
		}
	}
	if err := accept(); err != nil {
		return err
	}
	if wait == nil {
		b.Arrive(p)
		return nil
	}
	return wait(b.ArriveFunc(wake))
}
