package rpi

import (
	"fmt"
	"time"

	"repro/internal/sim"
	"repro/internal/transport"
)

// This file is the session-recovery half of the shared engine: a
// per-peer state machine that lets an RPI module survive the death of
// its transport session (TCP connection, SCTP association) with
// exactly-once, in-order message delivery across the recovery.
//
// The mechanism is the classic reliable-session design: every
// middleware message bound for a peer is stamped with a dense per-peer
// sequence number (SSeq) and retained (body copied) until the peer
// acknowledges delivery via the SAck field piggybacked on its own
// traffic. When the transport session dies, the module redials (capped
// exponential backoff, deterministic jitter from the sim RNG, bounded
// attempt budget) and the two sides exchange a
// KindReconnect/KindReconnectAck handshake carrying a new epoch and
// each side's cumulative delivered sequence; each side then replays
// exactly the retained gap above the peer's cumulative. The receiver
// dedups on SSeq (cumulative floor plus an above-floor seen set, so
// multistream out-of-order arrival is handled), which keeps delivery
// exactly-once even when the ack was lost with the session.
//
// The session fields never cross the module boundary: Send stamps
// below the Observe wrapper and Accept zeroes SSeq/SAck/SEpoch before
// the engine delivers, so the middleware and the chaos oracle see
// plain envelopes.

// SessState is a per-peer session recovery state.
type SessState int

// Session states. The steady state is SessUp; loss detection moves to
// SessSuspect (transport cleanup pending), scheduling a redial moves
// to SessReconnecting, a reconnect handshake moves to SessReplay for
// the duration of gap retransmission, and back to SessUp.
const (
	SessUp SessState = iota
	SessSuspect
	SessReconnecting
	SessReplay
)

func (s SessState) String() string {
	switch s {
	case SessUp:
		return "up"
	case SessSuspect:
		return "suspect"
	case SessReconnecting:
		return "reconnecting"
	case SessReplay:
		return "replay"
	}
	return "?"
}

// Session recovery tuning. The backoff base/cap are deliberately
// aggressive for a LAN: the first redial is immediate (the transport
// itself fails fast on a dead endpoint), later ones back off
// exponentially to the cap.
const (
	redialBackoffBase = 100 * time.Millisecond
	redialBackoffCap  = 2 * time.Second
	defaultRedials    = 8
)

// SessionConfig tunes the recovery layer.
type SessionConfig struct {
	// RedialBudget bounds redial attempts per loss episode: 0 means
	// the default (8), negative means no redials are allowed (the
	// first loss is terminal).
	RedialBudget int

	// DropReplayEvery, when N > 0, silently drops the Nth replayed
	// message (once). It exists only to mutation-test the recovery
	// oracle: the dropped message must trip the exactly-once /
	// completeness invariants.
	DropReplayEvery int
}

func (c SessionConfig) budget() int {
	switch {
	case c.RedialBudget == 0:
		return defaultRedials
	case c.RedialBudget < 0:
		return 0
	}
	return c.RedialBudget
}

// Retained is one unacknowledged outbound message held for possible
// replay. Env is the stamped envelope (SSeq assigned); SEpoch and SAck
// are refreshed when the entry is replayed.
type Retained struct {
	Env  Envelope
	Body []byte
}

// Session is the recovery state for one peer.
type Session struct {
	Peer  int
	State SessState
	Epoch uint32

	nextSeq uint64 // next SSeq to assign (1-based)
	retain  []Retained

	recvCum  uint64          // highest in-order delivered SSeq from the peer
	recvSeen map[uint64]bool // delivered SSeqs above the floor

	attempts     int
	backoff      time.Duration
	nextAttempt  time.Duration // virtual time of the next allowed redial
	dialing      bool          // a redial attempt is in flight
	pendingEpoch uint32        // epoch proposed in our outstanding Reconnect
}

// Retention returns the number of retained (unacknowledged) messages.
func (s *Session) Retention() int { return len(s.retain) }

// Sessions manages per-peer recovery state for one module.
type Sessions struct {
	e    *Engine
	k    *sim.Kernel
	cfg  SessionConfig
	sess []*Session

	replayed int // global replay counter for the drop mutation
}

// NewSessions builds the recovery layer for a module of the given
// world size.
func NewSessions(e *Engine, k *sim.Kernel, size int, cfg SessionConfig) *Sessions {
	ss := &Sessions{e: e, k: k, cfg: cfg, sess: make([]*Session, size)}
	for i := range ss.sess {
		ss.sess[i] = &Session{Peer: i, nextSeq: 1, recvSeen: make(map[uint64]bool)}
	}
	return ss
}

// Get returns the session for peer.
func (ss *Sessions) Get(peer int) *Session { return ss.sess[peer] }

// StampOut stamps one outbound middleware envelope with its session
// fields, retains a copy (body included) for possible replay, and
// reports whether the module should transmit it now. While the session
// is recovering the message is retention-only: it will reach the peer
// as part of the replay gap once the handshake completes.
func (ss *Sessions) StampOut(peer int, env *Envelope, body []byte) bool {
	s := ss.sess[peer]
	env.SSeq = s.nextSeq
	s.nextSeq++
	env.SEpoch = s.Epoch
	env.SAck = s.recvCum
	var kept []byte
	if len(body) > 0 {
		kept = append([]byte(nil), body...)
	}
	s.retain = append(s.retain, Retained{Env: *env, Body: kept})
	return s.State == SessUp
}

// Accept runs receiver-side session processing on one complete inbound
// middleware message: prune our retention by the peer's piggybacked
// SAck, then dedup on SSeq. It returns false when the message is a
// duplicate (already delivered before the session died) and must be
// suppressed. On true, the session fields have been zeroed so the
// middleware sees a plain envelope.
func (ss *Sessions) Accept(peer int, env *Envelope) bool {
	s := ss.sess[peer]
	ss.prune(s, env.SAck)
	if env.SSeq == 0 { // unsessioned control traffic
		env.SAck, env.SEpoch = 0, 0
		return true
	}
	seq := env.SSeq
	if seq <= s.recvCum || s.recvSeen[seq] {
		ss.e.ctrs.Add("dups_suppressed", 1)
		return false
	}
	s.recvSeen[seq] = true
	for s.recvSeen[s.recvCum+1] {
		delete(s.recvSeen, s.recvCum+1)
		s.recvCum++
	}
	env.SSeq, env.SAck, env.SEpoch = 0, 0, 0
	return true
}

// prune drops retained messages the peer has acknowledged delivering.
func (ss *Sessions) prune(s *Session, ack uint64) {
	i := 0
	for i < len(s.retain) && s.retain[i].Env.SSeq <= ack {
		i++
	}
	if i > 0 {
		s.retain = append(s.retain[:0], s.retain[i:]...)
	}
}

// MarkLost records a session-loss signal: Up → Suspect. It returns
// true on the first signal for this episode (the caller then tears
// down per-peer transport state and decides whether to redial); false
// for stale or repeated signals.
func (ss *Sessions) MarkLost(peer int) bool {
	s := ss.sess[peer]
	if s.State != SessUp {
		return false
	}
	s.State = SessSuspect
	s.attempts = 0
	s.backoff = redialBackoffBase
	ss.e.ctrs.Add("sessions_lost", 1)
	return true
}

// ScheduleRedial moves a suspect session to Reconnecting with the
// first attempt due immediately. The engine kick makes the proactor
// loop's next tail sweep run the attempt: redial state is time-driven,
// not endpoint readiness, so it rides the Notify channel.
func (ss *Sessions) ScheduleRedial(peer int) {
	s := ss.sess[peer]
	s.State = SessReconnecting
	s.dialing = false
	s.nextAttempt = ss.k.Now()
	ss.e.Notify()
}

// RedialDue reports whether a redial attempt should start now.
func (ss *Sessions) RedialDue(peer int) bool {
	s := ss.sess[peer]
	return s.State == SessReconnecting && !s.dialing && ss.k.Now() >= s.nextAttempt
}

// BeginAttempt claims one unit of redial budget. The returned error is
// terminal (wraps transport.ErrSessionLost) when the budget is
// exhausted: the module must fail its Advance with it.
func (ss *Sessions) BeginAttempt(peer int) error {
	s := ss.sess[peer]
	if s.attempts >= ss.cfg.budget() {
		return fmt.Errorf("rpi: rank %d: session to peer %d dead (epoch %d) after %d redial attempt(s): %w",
			ss.e.Rank, peer, s.Epoch, s.attempts, transport.ErrSessionLost)
	}
	s.attempts++
	s.dialing = true
	ss.e.ctrs.Add("redials_attempted", 1)
	return nil
}

// AttemptFailed records a failed redial (or a replacement session that
// died before its handshake completed) and schedules the next attempt
// with capped exponential backoff and deterministic jitter drawn from
// the simulation RNG.
func (ss *Sessions) AttemptFailed(peer int) {
	s := ss.sess[peer]
	s.State = SessReconnecting
	s.dialing = false
	delay := s.backoff + time.Duration(ss.k.Rand().Int63n(int64(s.backoff/2)+1))
	s.backoff *= 2
	if s.backoff > redialBackoffCap {
		s.backoff = redialBackoffCap
	}
	s.nextAttempt = ss.k.Now() + delay
	ss.k.After(delay, ss.e.Notify)
}

// DialSucceeded records a transport-level redial success; the module
// then sends its KindReconnect handshake on the new session.
func (ss *Sessions) DialSucceeded(peer int) {
	s := ss.sess[peer]
	s.dialing = false
	ss.e.ctrs.Add("redials_ok", 1)
}

// ReconnectEnv builds the KindReconnect handshake envelope announcing
// a proposed new epoch and our cumulative delivered sequence.
func (ss *Sessions) ReconnectEnv(peer int) Envelope {
	s := ss.sess[peer]
	s.pendingEpoch = s.Epoch + 1
	return Envelope{
		Kind:   KindReconnect,
		Rank:   int32(ss.e.Rank),
		SEpoch: s.pendingEpoch,
		SAck:   s.recvCum,
	}
}

// OnReconnect processes a peer's KindReconnect handshake (the acceptor
// side, which may not even have noticed the loss yet): adopt the
// epoch, enter Replay, and return the ReconnectAck to send followed by
// the retained gap to replay. The caller sends the ack, replays the
// gap, and calls Resume.
func (ss *Sessions) OnReconnect(peer int, env Envelope) (ack Envelope, replay []Retained) {
	s := ss.sess[peer]
	epoch := s.Epoch + 1
	if env.SEpoch > epoch {
		epoch = env.SEpoch
	}
	if s.pendingEpoch > epoch {
		epoch = s.pendingEpoch
	}
	s.Epoch = epoch
	s.State = SessReplay
	ack = Envelope{
		Kind:   KindReconnectAck,
		Rank:   int32(ss.e.Rank),
		SEpoch: s.Epoch,
		SAck:   s.recvCum,
	}
	return ack, ss.gap(s, env.SAck)
}

// OnReconnectAck processes the peer's KindReconnectAck (the dialer
// side): adopt the final epoch and return the retained gap to replay.
// The caller replays it and calls Resume.
func (ss *Sessions) OnReconnectAck(peer int, env Envelope) (replay []Retained) {
	s := ss.sess[peer]
	if env.SEpoch > s.Epoch {
		s.Epoch = env.SEpoch
	}
	if s.pendingEpoch > s.Epoch {
		s.Epoch = s.pendingEpoch
	}
	s.State = SessReplay
	return ss.gap(s, env.SAck)
}

// gap selects the retained messages above the peer's cumulative
// delivered sequence, refreshing their session fields for the new
// epoch, and applies the drop-replay mutation if configured.
func (ss *Sessions) gap(s *Session, peerCum uint64) []Retained {
	ss.prune(s, peerCum)
	var out []Retained
	for _, r := range s.retain {
		ss.replayed++
		if ss.cfg.DropReplayEvery > 0 && ss.replayed == ss.cfg.DropReplayEvery {
			ss.e.ctrs.Add("replays_dropped", 1)
			continue
		}
		r.Env.SEpoch = s.Epoch
		r.Env.SAck = s.recvCum
		out = append(out, r)
		ss.e.ctrs.Add("msgs_replayed", 1)
	}
	return out
}

// Resume completes a recovery: Replay → Up. Middleware sends posted
// after this point transmit immediately again.
func (ss *Sessions) Resume(peer int) {
	s := ss.sess[peer]
	s.State = SessUp
	s.pendingEpoch = 0
}
