// I-DATA conformance matrix: enabling RFC 8260 interleaving (with a
// non-FIFO scheduler) is a transport-level change and must be invisible
// to MPI semantics. Every backend × world size runs the same mixed
// point-to-point program twice — interleaving off and on — and the
// per-rank digests of everything received must match bit for bit.
package rpi_test

import (
	"fmt"
	"hash/fnv"
	"testing"

	"repro/internal/mpi"
	"repro/internal/mpi/rpi"
	"repro/internal/mpi/sctp1to1rpi"
	"repro/internal/mpi/sctprpi"
	"repro/internal/mpi/tcprpi"
	"repro/internal/netsim"
	"repro/internal/sctp"
	"repro/internal/sim"
	"repro/internal/tcp"
)

// idataBackend builds one backend with an explicit SCTP configuration
// (ignored by the TCP module, which has no interleaving to toggle).
func idataBackend(name string, cfg sctp.Config) backend {
	switch name {
	case "tcp":
		return backend{name, func(k *sim.Kernel, net *netsim.Network, n int) []rpi.RPI {
			addrs, _, nodes := makeNodes(net, n)
			barrier := rpi.NewBarrier(k, n)
			mods := make([]rpi.RPI, n)
			for i, nd := range nodes {
				st := tcp.NewStack(nd, tcp.Config{NoDelay: true})
				mods[i] = tcprpi.New(st, i, addrs, barrier,
					tcprpi.Options{TCP: tcp.Config{NoDelay: true}})
			}
			return mods
		}}
	case "sctp":
		return backend{name, func(k *sim.Kernel, net *netsim.Network, n int) []rpi.RPI {
			_, lists, nodes := makeNodes(net, n)
			barrier := rpi.NewBarrier(k, n)
			mods := make([]rpi.RPI, n)
			for i, nd := range nodes {
				st := sctp.NewStack(nd, cfg)
				mods[i] = sctprpi.New(st, i, lists, barrier, sctprpi.Options{SCTP: cfg})
			}
			return mods
		}}
	default: // sctp1to1
		return backend{name, func(k *sim.Kernel, net *netsim.Network, n int) []rpi.RPI {
			_, lists, nodes := makeNodes(net, n)
			barrier := rpi.NewBarrier(k, n)
			mods := make([]rpi.RPI, n)
			for i, nd := range nodes {
				st := sctp.NewStack(nd, cfg)
				mods[i] = sctp1to1rpi.New(st, i, lists, barrier, sctp1to1rpi.Options{SCTP: cfg})
			}
			return mods
		}}
	}
}

// idataDigestProgram is the mixed workload: a ring exchange at three
// sizes spanning eager and rendezvous, then a deterministic
// many-to-one sweep. Every received byte folds into a per-rank FNV
// digest; receive posting order is fixed (no wildcards), so equal
// digests mean bit-identical MPI results.
func idataDigestProgram(digests []uint64) func(pr *mpi.Process, comm *mpi.Comm) error {
	return func(pr *mpi.Process, comm *mpi.Comm) error {
		n := comm.Size()
		rank := comm.Rank()
		h := fnv.New64a()
		sizes := []int{64, 2 << 10, 96 << 10}
		next := (rank + 1) % n
		prev := (rank - 1 + n) % n
		for tag, sz := range sizes {
			req, err := comm.Isend(next, tag, pattern(sz, byte(next)+byte(tag)))
			if err != nil {
				return err
			}
			buf := make([]byte, sz)
			st, err := comm.Recv(prev, tag, buf)
			if err != nil {
				return err
			}
			if st.Count != sz {
				return fmt.Errorf("ring size %d: count %d", sz, st.Count)
			}
			if err := checkPattern(buf, byte(rank)+byte(tag)); err != nil {
				return fmt.Errorf("ring size %d: %w", sz, err)
			}
			h.Write(buf)
			if _, err := comm.Wait(req); err != nil {
				return err
			}
		}
		// Many-to-one with fixed posting order so completion order (and
		// hence the digest) is deterministic by construction.
		if rank == 0 {
			buf := make([]byte, 1<<10)
			for src := 1; src < n; src++ {
				if _, err := comm.Recv(src, 100+src, buf); err != nil {
					return err
				}
				if err := checkPattern(buf, byte(src)); err != nil {
					return fmt.Errorf("incast from %d: %w", src, err)
				}
				h.Write(buf)
			}
		} else {
			if err := comm.Send(0, 100+rank, pattern(1<<10, byte(rank))); err != nil {
				return err
			}
		}
		digests[rank] = h.Sum64()
		return nil
	}
}

func TestConformanceIDataMatrix(t *testing.T) {
	worlds := []int{2, 3, 8, 17}
	for _, name := range []string{"tcp", "sctp", "sctp1to1"} {
		for _, n := range worlds {
			t.Run(fmt.Sprintf("%s/n%d", name, n), func(t *testing.T) {
				var sawIData int
				run := func(idata bool) []uint64 {
					cfg := sctp.Config{}
					if idata {
						cfg.IData = true
						cfg.Scheduler = sctp.SchedPriority
						cfg.Probe = &sctp.Probe{
							IDataFrag: func(*sctp.Assoc, uint16, uint32, uint32, bool, bool) {
								sawIData++
							},
						}
					}
					digests := make([]uint64, n)
					runWorld(t, idataBackend(name, cfg), n, 0, idataDigestProgram(digests))
					return digests
				}
				off := run(false)
				sawIData = 0
				on := run(true)
				for r := range off {
					if off[r] != on[r] {
						t.Errorf("rank %d digest differs: off %016x on %016x", r, off[r], on[r])
					}
				}
				if name != "tcp" && sawIData == 0 {
					t.Error("interleaving enabled but no I-DATA chunks observed")
				}
			})
		}
	}
}
