package rpi

// Priority classes for RFC 8260 chunk-interleaved transports. The
// paper's head-of-line observation stops at stream granularity; with
// I-DATA a scheduler can also keep a bulk fragment train from delaying
// a latency-sensitive envelope on another stream, provided the
// middleware tells the transport which streams carry what. The mapping
// is by message kind: rendezvous bodies are bulk, eager payloads are
// latency-sensitive, and bodiless control traffic (ACKs, rendezvous
// handshakes) is the most urgent of all — a delayed LongAck stalls an
// entire transfer.
const (
	ClassControl uint8 = 0 // bodiless control: SyncAck, LongReq, LongAck, ...
	ClassEager   uint8 = 1 // short/sync eager payloads
	ClassBulk    uint8 = 2 // rendezvous long-message bodies
)

// ClassFor maps a message kind to its stream priority class (0 is most
// urgent, matching the transport scheduler's convention).
func ClassFor(k Kind) uint8 {
	switch k {
	case KindLongBody:
		return ClassBulk
	case KindShort, KindSync:
		return ClassEager
	default:
		return ClassControl
	}
}

// WeightFor maps a class to a weighted-fair share, for schedulers that
// divide bandwidth instead of ranking it: control 8, eager 4, bulk 1.
func WeightFor(class uint8) int {
	switch class {
	case ClassControl:
		return 8
	case ClassEager:
		return 4
	default:
		return 1
	}
}
