package rpi

import "repro/internal/sim"

// Observer taps the middleware↔module boundary without changing
// behavior. Send sees every envelope (and body) the middleware posts;
// Deliver sees every completed inbound message just before the
// middleware's handler runs. Either callback may be nil. The chaos
// harness builds its MPI-level delivery oracle on this hook.
type Observer struct {
	Send    func(dest int, env Envelope, body []byte)
	Deliver func(env Envelope, body []byte)
}

// Observe wraps an RPI module so obs sees all traffic crossing the
// contract boundary. The wrapper is transparent: all calls forward to
// the inner module unchanged.
func Observe(m RPI, obs Observer) RPI {
	return &observedRPI{inner: m, obs: obs}
}

type observedRPI struct {
	inner RPI
	obs   Observer
}

func (o *observedRPI) Init(p *sim.Proc) error { return o.inner.Init(p) }

func (o *observedRPI) SetDelivery(d Delivery) {
	if o.obs.Deliver == nil {
		o.inner.SetDelivery(d)
		return
	}
	o.inner.SetDelivery(func(env Envelope, body []byte) {
		o.obs.Deliver(env, body)
		d(env, body)
	})
}

func (o *observedRPI) Send(dest int, env Envelope, body []byte, onQueued func()) {
	if o.obs.Send != nil {
		o.obs.Send(dest, env, body)
	}
	o.inner.Send(dest, env, body, onQueued)
}

func (o *observedRPI) Advance(p *sim.Proc, block bool) error { return o.inner.Advance(p, block) }
func (o *observedRPI) Finalize(p *sim.Proc)                  { o.inner.Finalize(p) }
func (o *observedRPI) Abort(p *sim.Proc)                     { o.inner.Abort(p) }
func (o *observedRPI) Counters() Counters                    { return o.inner.Counters() }

// Unwrap exposes the wrapped module so capability probes (e.g. the
// chaos harness's session killer) can reach through the observer.
func (o *observedRPI) Unwrap() RPI { return o.inner }
