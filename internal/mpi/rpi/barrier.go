package rpi

import "repro/internal/sim"

// Barrier is a reusable n-party rendezvous used during RPI setup (the
// out-of-band role LAM's daemons play during MPI_Init: every process
// must have its listener up before anyone connects, and every
// connection must exist before anyone sends MPI traffic).
type Barrier struct {
	n       int
	arrived int
	gen     int
	cond    *sim.Cond
	wakers  []func()
}

// NewBarrier returns a barrier for n parties.
func NewBarrier(k *sim.Kernel, n int) *Barrier {
	return &Barrier{n: n, cond: sim.NewCond(k)}
}

// Arrive blocks p until all n parties have arrived; the barrier then
// resets for reuse.
func (b *Barrier) Arrive(p *sim.Proc) {
	gen := b.gen
	b.arrived++
	if b.arrived == b.n {
		b.complete()
		return
	}
	for b.gen == gen {
		b.cond.Wait(p)
	}
}

// ArriveFunc registers one arrival without blocking and returns a
// completion check. If the rendezvous is still open, wake is retained
// and invoked (in kernel context) when the last party arrives, so a
// caller parked on a different condition can re-check. The caller must
// keep servicing its module until the check holds — this is how a
// process waiting out the MeshInit rendezvous keeps answering a
// recovering peer's handshake instead of deadlocking it.
func (b *Barrier) ArriveFunc(wake func()) func() bool {
	gen := b.gen
	b.arrived++
	if b.arrived == b.n {
		b.complete()
		return func() bool { return true }
	}
	if wake != nil {
		b.wakers = append(b.wakers, wake)
	}
	return func() bool { return b.gen != gen }
}

func (b *Barrier) complete() {
	b.arrived = 0
	b.gen++
	b.cond.Broadcast()
	for _, w := range b.wakers {
		w()
	}
	b.wakers = nil
}
