package rpi

import "repro/internal/sim"

// Barrier is a reusable n-party rendezvous used during RPI setup (the
// out-of-band role LAM's daemons play during MPI_Init: every process
// must have its listener up before anyone connects, and every
// connection must exist before anyone sends MPI traffic).
type Barrier struct {
	n       int
	arrived int
	gen     int
	cond    *sim.Cond
}

// NewBarrier returns a barrier for n parties.
func NewBarrier(k *sim.Kernel, n int) *Barrier {
	return &Barrier{n: n, cond: sim.NewCond(k)}
}

// Arrive blocks p until all n parties have arrived; the barrier then
// resets for reuse.
func (b *Barrier) Arrive(p *sim.Proc) {
	gen := b.gen
	b.arrived++
	if b.arrived == b.n {
		b.arrived = 0
		b.gen++
		b.cond.Broadcast()
		return
	}
	for b.gen == gen {
		b.cond.Wait(p)
	}
}
