package rpi

import (
	"fmt"
	"sort"
	"strings"
)

// Counters is the statistics type shared by every RPI module: a
// string-keyed counter map whose iteration helpers are deterministic
// (sorted keys), so reports and tests can compare output across runs
// and backends without hand-rolled ordering.
type Counters map[string]int64

// NewCounters returns an empty counter set.
func NewCounters() Counters { return make(Counters) }

// Add increments key by delta.
func (c Counters) Add(key string, delta int64) { c[key] += delta }

// Keys returns the counter names in sorted order.
func (c Counters) Keys() []string {
	keys := make([]string, 0, len(c))
	for k := range c {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Format renders the counters as "k=v" pairs in key order, one
// deterministic line.
func (c Counters) Format() string {
	var b strings.Builder
	for i, k := range c.Keys() {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", k, c[k])
	}
	return b.String()
}
