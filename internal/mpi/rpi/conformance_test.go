// Backend conformance suite: every RPI module — TCP byte-stream, SCTP
// one-to-many, SCTP one-to-one — must provide identical MPI semantics
// through the shared engine, differing only in transport dynamics and
// cost. Each test runs once per backend over the same program.
package rpi_test

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"repro/internal/mpi"
	"repro/internal/mpi/rpi"
	"repro/internal/mpi/sctp1to1rpi"
	"repro/internal/mpi/sctprpi"
	"repro/internal/mpi/tcprpi"
	"repro/internal/netsim"
	"repro/internal/sctp"
	"repro/internal/sim"
	"repro/internal/tcp"
)

type backend struct {
	name  string
	build func(k *sim.Kernel, net *netsim.Network, n int) []rpi.RPI
}

func makeNodes(net *netsim.Network, n int) ([]netsim.Addr, [][]netsim.Addr, []*netsim.Node) {
	addrs := make([]netsim.Addr, n)
	lists := make([][]netsim.Addr, n)
	nodes := make([]*netsim.Node, n)
	for i := 0; i < n; i++ {
		nd := net.NewNode(fmt.Sprintf("n%d", i))
		addrs[i] = netsim.MakeAddr(0, i+1)
		nd.AddInterface(addrs[i])
		lists[i] = nd.Addrs()
		nodes[i] = nd
	}
	return addrs, lists, nodes
}

func backends() []backend {
	return []backend{
		{"tcp", func(k *sim.Kernel, net *netsim.Network, n int) []rpi.RPI {
			addrs, _, nodes := makeNodes(net, n)
			barrier := rpi.NewBarrier(k, n)
			mods := make([]rpi.RPI, n)
			for i, nd := range nodes {
				st := tcp.NewStack(nd, tcp.Config{NoDelay: true})
				mods[i] = tcprpi.New(st, i, addrs, barrier,
					tcprpi.Options{TCP: tcp.Config{NoDelay: true}})
			}
			return mods
		}},
		{"sctp", func(k *sim.Kernel, net *netsim.Network, n int) []rpi.RPI {
			_, lists, nodes := makeNodes(net, n)
			barrier := rpi.NewBarrier(k, n)
			mods := make([]rpi.RPI, n)
			for i, nd := range nodes {
				st := sctp.NewStack(nd, sctp.Config{})
				mods[i] = sctprpi.New(st, i, lists, barrier, sctprpi.Options{})
			}
			return mods
		}},
		{"sctp1to1", func(k *sim.Kernel, net *netsim.Network, n int) []rpi.RPI {
			_, lists, nodes := makeNodes(net, n)
			barrier := rpi.NewBarrier(k, n)
			mods := make([]rpi.RPI, n)
			for i, nd := range nodes {
				st := sctp.NewStack(nd, sctp.Config{})
				mods[i] = sctp1to1rpi.New(st, i, lists, barrier, sctp1to1rpi.Options{})
			}
			return mods
		}},
	}
}

// runWorld runs fn on every rank of an n-process world over backend b
// and returns the modules for counter inspection.
func runWorld(t *testing.T, b backend, n int, loss float64,
	fn func(pr *mpi.Process, comm *mpi.Comm) error) []rpi.RPI {
	t.Helper()
	k := sim.New(1)
	net := netsim.NewNetwork(k)
	lp := netsim.DefaultLinkParams()
	lp.LossRate = loss
	net.SetDefaultLinkParams(lp)
	modules := b.build(k, net, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		rank := i
		k.Spawn(fmt.Sprintf("rank%d", rank), func(p *sim.Proc) {
			pr := mpi.NewProcess(p, rank, n, modules[rank], 0)
			comm, err := pr.Init()
			if err != nil {
				errs[rank] = err
				return
			}
			if err := fn(pr, comm); err != nil {
				errs[rank] = err
			}
			if err := pr.Finalize(); err != nil && errs[rank] == nil {
				errs[rank] = err
			}
		})
	}
	if err := k.Run(); err != nil {
		t.Fatalf("%s: %v", b.name, err)
	}
	for r, err := range errs {
		if err != nil {
			t.Fatalf("%s rank %d: %v", b.name, r, err)
		}
	}
	checkPooledLeaks(t, b)
	return modules
}

// checkPooledLeaks asserts that every pooled wire buffer was released
// by the time the kernel quiesced. A nonzero count means some path
// (loss, retransmit, session kill) dropped a packet without Release,
// which would slowly poison the buffer pool on long runs.
func checkPooledLeaks(t *testing.T, b backend) {
	t.Helper()
	if n := netsim.LivePooledPackets(); n != 0 {
		t.Fatalf("%s: %d pooled packet(s) still live at teardown; a delivery or drop path is missing a Release", b.name, n)
	}
}

// runWorldMods is runWorld with the modules exposed to the per-rank
// program, so recovery tests can kill transport sessions mid-protocol.
func runWorldMods(t *testing.T, b backend, n int, loss float64,
	fn func(mods []rpi.RPI, pr *mpi.Process, comm *mpi.Comm) error) {
	t.Helper()
	k := sim.New(1)
	net := netsim.NewNetwork(k)
	lp := netsim.DefaultLinkParams()
	lp.LossRate = loss
	net.SetDefaultLinkParams(lp)
	modules := b.build(k, net, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		rank := i
		k.Spawn(fmt.Sprintf("rank%d", rank), func(p *sim.Proc) {
			pr := mpi.NewProcess(p, rank, n, modules[rank], 0)
			comm, err := pr.Init()
			if err != nil {
				errs[rank] = err
				return
			}
			if err := fn(modules, pr, comm); err != nil {
				errs[rank] = err
			}
			if err := pr.Finalize(); err != nil && errs[rank] == nil {
				errs[rank] = err
			}
		})
	}
	if err := k.Run(); err != nil {
		t.Fatalf("%s: %v", b.name, err)
	}
	for r, err := range errs {
		if err != nil {
			t.Fatalf("%s rank %d: %v", b.name, r, err)
		}
	}
	checkPooledLeaks(t, b)
}

// kill destroys rank's transport session to peer, as the chaos
// harness's AssocKill fault does. Every backend must support it.
func kill(t *testing.T, mods []rpi.RPI, rank, peer int) {
	t.Helper()
	k, ok := mods[rank].(interface{ KillSession(peer int) })
	if !ok {
		t.Fatalf("module %T does not implement KillSession", mods[rank])
	}
	k.KillSession(peer)
}

func pattern(n int, salt byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i)*7 + salt
	}
	return b
}

func checkPattern(buf []byte, salt byte) error {
	for i, v := range buf {
		if v != byte(i)*7+salt {
			return fmt.Errorf("corrupt at %d: got %d", i, v)
		}
	}
	return nil
}

// Short eager messages must arrive intact and in order.
func TestConformanceShortEager(t *testing.T) {
	for _, b := range backends() {
		t.Run(b.name, func(t *testing.T) {
			runWorld(t, b, 2, 0, func(pr *mpi.Process, comm *mpi.Comm) error {
				if comm.Rank() == 0 {
					for i := 0; i < 5; i++ {
						if err := comm.Send(1, 0, pattern(1000, byte(i))); err != nil {
							return err
						}
					}
					return nil
				}
				buf := make([]byte, 1000)
				for i := 0; i < 5; i++ {
					st, err := comm.Recv(0, 0, buf)
					if err != nil {
						return err
					}
					if st.Count != 1000 {
						return fmt.Errorf("count %d", st.Count)
					}
					if err := checkPattern(buf, byte(i)); err != nil {
						return err
					}
				}
				return nil
			})
		})
	}
}

// Synchronous sends must not complete before the matching receive.
func TestConformanceSsend(t *testing.T) {
	for _, b := range backends() {
		t.Run(b.name, func(t *testing.T) {
			runWorld(t, b, 2, 0, func(pr *mpi.Process, comm *mpi.Comm) error {
				if comm.Rank() == 0 {
					if err := comm.Ssend(1, 1, pattern(512, 3)); err != nil {
						return err
					}
					buf := make([]byte, 512)
					_, err := comm.Recv(1, 2, buf)
					if err != nil {
						return err
					}
					return checkPattern(buf, 9)
				}
				buf := make([]byte, 512)
				if _, err := comm.Recv(0, 1, buf); err != nil {
					return err
				}
				if err := checkPattern(buf, 3); err != nil {
					return err
				}
				return comm.Ssend(0, 2, pattern(512, 9))
			})
		})
	}
}

// Long messages cross the eager limit into the rendezvous path; content
// must survive middleware chunking and reassembly.
func TestConformanceLongRendezvous(t *testing.T) {
	for _, b := range backends() {
		t.Run(b.name, func(t *testing.T) {
			runWorld(t, b, 2, 0, func(pr *mpi.Process, comm *mpi.Comm) error {
				const size = 300 << 10
				if comm.Rank() == 0 {
					return comm.Send(1, 0, pattern(size, 5))
				}
				buf := make([]byte, size)
				st, err := comm.Recv(0, 0, buf)
				if err != nil {
					return err
				}
				if st.Count != size {
					return fmt.Errorf("count %d", st.Count)
				}
				return checkPattern(buf, 5)
			})
		})
	}
}

// Wildcard receives (AnySource, AnyTag) must match and report the true
// source and tag.
func TestConformanceWildcards(t *testing.T) {
	for _, b := range backends() {
		t.Run(b.name, func(t *testing.T) {
			const n = 4
			runWorld(t, b, n, 0, func(pr *mpi.Process, comm *mpi.Comm) error {
				if comm.Rank() != 0 {
					return comm.Send(0, 10+comm.Rank(), pattern(64, byte(comm.Rank())))
				}
				seen := map[int]bool{}
				buf := make([]byte, 64)
				for i := 0; i < n-1; i++ {
					st, err := comm.Recv(mpi.AnySource, mpi.AnyTag, buf)
					if err != nil {
						return err
					}
					if st.Tag != 10+st.Source {
						return fmt.Errorf("tag %d from %d", st.Tag, st.Source)
					}
					if err := checkPattern(buf, byte(st.Source)); err != nil {
						return err
					}
					seen[st.Source] = true
				}
				if len(seen) != n-1 {
					return fmt.Errorf("sources %v", seen)
				}
				return nil
			})
		})
	}
}

// Messages arriving before their receive is posted must buffer as
// unexpected and match later receives in any posting order.
func TestConformanceUnexpectedBuffering(t *testing.T) {
	for _, b := range backends() {
		t.Run(b.name, func(t *testing.T) {
			runWorld(t, b, 2, 0, func(pr *mpi.Process, comm *mpi.Comm) error {
				if comm.Rank() == 0 {
					for _, tag := range []int{3, 2, 1} {
						if err := comm.Send(1, tag, pattern(256, byte(tag))); err != nil {
							return err
						}
					}
					return nil
				}
				// Receive in the opposite order: tags 3 and 2 arrive
				// first and must sit in the unexpected queue while tag 1
				// is matched.
				buf := make([]byte, 256)
				for _, tag := range []int{1, 2, 3} {
					if _, err := comm.Recv(0, tag, buf); err != nil {
						return err
					}
					if err := checkPattern(buf, byte(tag)); err != nil {
						return err
					}
				}
				return nil
			})
		})
	}
}

// Messages with the same (tag, rank, context) must be received in send
// order — MPI's non-overtaking rule, which the SCTP modules must uphold
// even while spreading different TRCs across streams.
func TestConformanceSameTRCOrdering(t *testing.T) {
	for _, b := range backends() {
		t.Run(b.name, func(t *testing.T) {
			runWorld(t, b, 2, 0, func(pr *mpi.Process, comm *mpi.Comm) error {
				const rounds = 50
				if comm.Rank() == 0 {
					for i := 0; i < rounds; i++ {
						if err := comm.Send(1, 5, []byte{byte(i)}); err != nil {
							return err
						}
					}
					return nil
				}
				buf := make([]byte, 1)
				for i := 0; i < rounds; i++ {
					if _, err := comm.Recv(0, 5, buf); err != nil {
						return err
					}
					if buf[0] != byte(i) {
						return fmt.Errorf("message %d arrived at slot %d", buf[0], i)
					}
				}
				return nil
			})
		})
	}
}

// A buffered eager send followed immediately by Finalize must still be
// delivered: Finalize drains in-flight traffic before teardown.
func TestConformanceFinalizeDrains(t *testing.T) {
	for _, b := range backends() {
		t.Run(b.name, func(t *testing.T) {
			runWorld(t, b, 2, 0, func(pr *mpi.Process, comm *mpi.Comm) error {
				if comm.Rank() == 0 {
					// Send returns once buffered; the runWorld harness
					// calls Finalize right after we return.
					return comm.Send(1, 7, pattern(2048, 1))
				}
				buf := make([]byte, 2048)
				if _, err := comm.Recv(0, 7, buf); err != nil {
					return err
				}
				return checkPattern(buf, 1)
			})
		})
	}
}

// All of the above must hold under packet loss (retransmission paths).
func TestConformanceUnderLoss(t *testing.T) {
	for _, b := range backends() {
		t.Run(b.name, func(t *testing.T) {
			runWorld(t, b, 2, 0.02, func(pr *mpi.Process, comm *mpi.Comm) error {
				sizes := []int{100, 30 << 10, 100 << 10}
				if comm.Rank() == 0 {
					for i, sz := range sizes {
						if err := comm.Send(1, i, pattern(sz, byte(sz))); err != nil {
							return err
						}
					}
					return nil
				}
				for i, sz := range sizes {
					buf := make([]byte, sz)
					if _, err := comm.Recv(0, i, buf); err != nil {
						return err
					}
					if err := checkPattern(buf, byte(sz)); err != nil {
						return fmt.Errorf("size %d: %w", sz, err)
					}
				}
				return nil
			})
		})
	}
}

// A session killed mid-rendezvous must recover: the sender posts a
// long (rendezvous) Isend, its transport session dies before the
// handshake can finish, and exactly-once replay across the reconnect
// must still deliver the full payload once the receiver posts.
func TestConformanceKillMidRendezvous(t *testing.T) {
	for _, b := range backends() {
		t.Run(b.name, func(t *testing.T) {
			runWorldMods(t, b, 2, 0, func(mods []rpi.RPI, pr *mpi.Process, comm *mpi.Comm) error {
				const size = 300 << 10
				if comm.Rank() == 0 {
					req, err := comm.Isend(1, 0, pattern(size, 5))
					if err != nil {
						return err
					}
					// The rendezvous request is in flight (or queued);
					// killing the session now forces the recovery layer to
					// redial and replay it.
					kill(t, mods, 0, 1)
					_, err = comm.Wait(req)
					return err
				}
				pr.P.Sleep(20 * time.Millisecond)
				buf := make([]byte, size)
				st, err := comm.Recv(0, 0, buf)
				if err != nil {
					return err
				}
				if st.Count != size {
					return fmt.Errorf("count %d", st.Count)
				}
				return checkPattern(buf, 5)
			})
		})
	}
}

// A session killed mid-handshake must recover: the synchronous-send
// handshake (KindSync out, KindSyncAck back) is interrupted on both
// sides — the sender kills its session right after posting, and the
// receiver kills its own side before posting the receive — so the
// reconnect races the handshake in both directions.
func TestConformanceKillMidHandshake(t *testing.T) {
	for _, b := range backends() {
		t.Run(b.name, func(t *testing.T) {
			runWorldMods(t, b, 2, 0, func(mods []rpi.RPI, pr *mpi.Process, comm *mpi.Comm) error {
				if comm.Rank() == 0 {
					req, err := comm.Issend(1, 1, pattern(512, 3))
					if err != nil {
						return err
					}
					kill(t, mods, 0, 1)
					_, err = comm.Wait(req)
					return err
				}
				pr.P.Sleep(5 * time.Millisecond)
				kill(t, mods, 1, 0)
				buf := make([]byte, 512)
				if _, err := comm.Recv(0, 1, buf); err != nil {
					return err
				}
				return checkPattern(buf, 3)
			})
		})
	}
}

// Counter iteration must be deterministic: Keys() sorted, Format()
// stable, and the transport-specific keys present.
func TestConformanceCounters(t *testing.T) {
	for _, b := range backends() {
		t.Run(b.name, func(t *testing.T) {
			modules := runWorld(t, b, 2, 0, func(pr *mpi.Process, comm *mpi.Comm) error {
				if comm.Rank() == 0 {
					return comm.Send(1, 0, pattern(1000, 0))
				}
				buf := make([]byte, 1000)
				_, err := comm.Recv(0, 0, buf)
				return err
			})
			for r, m := range modules {
				c := m.Counters()
				keys := c.Keys()
				if !sort.StringsAreSorted(keys) {
					t.Fatalf("rank %d keys not sorted: %v", r, keys)
				}
				if c.Format() != c.Format() {
					t.Fatalf("rank %d Format not stable", r)
				}
				if c["msgs_sent"] == 0 {
					t.Errorf("rank %d msgs_sent = 0 (keys %v)", r, keys)
				}
			}
		})
	}
}
