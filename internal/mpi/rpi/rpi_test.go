package rpi

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/sim"
)

func TestEnvelopeRoundTrip(t *testing.T) {
	in := Envelope{
		Length:  300 << 10,
		Tag:     -42,
		Context: 7,
		Rank:    3,
		Kind:    KindLongReq,
		Seq:     0xdeadbeefcafe,
	}
	b := in.Encode()
	if len(b) != EnvelopeSize {
		t.Fatalf("encoded size %d, want %d", len(b), EnvelopeSize)
	}
	out, err := DecodeEnvelope(b)
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: %+v != %+v", out, in)
	}
}

func TestEnvelopeQuickRoundTrip(t *testing.T) {
	f := func(length int32, tag, ctx, rank int32, kind uint8, seq uint64) bool {
		in := Envelope{
			Length:  int(length),
			Tag:     tag,
			Context: ctx,
			Rank:    rank,
			Kind:    Kind(kind % 7),
			Seq:     seq,
		}
		out, err := DecodeEnvelope(in.Encode())
		return err == nil && out == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeShort(t *testing.T) {
	if _, err := DecodeEnvelope([]byte{1, 2, 3}); err == nil {
		t.Fatal("short envelope accepted")
	}
}

func TestKindHasBody(t *testing.T) {
	withBody := map[Kind]bool{
		KindShort: true, KindSync: true, KindLongBody: true,
		KindSyncAck: false, KindLongReq: false, KindLongAck: false, KindHello: false,
	}
	for k, want := range withBody {
		if k.HasBody() != want {
			t.Errorf("%v.HasBody() = %v, want %v", k, k.HasBody(), want)
		}
	}
}

func TestKindStrings(t *testing.T) {
	for k := KindShort; k <= KindHello; k++ {
		if k.String() == "?" {
			t.Errorf("kind %d has no name", k)
		}
	}
	if Kind(250).String() != "?" {
		t.Error("unknown kind should stringify as ?")
	}
}

func TestBarrier(t *testing.T) {
	k := sim.New(1)
	b := NewBarrier(k, 3)
	var releases []time.Duration
	for i := 0; i < 3; i++ {
		i := i
		k.Spawn("p", func(p *sim.Proc) {
			p.Sleep(time.Duration(i+1) * time.Second)
			b.Arrive(p)
			releases = append(releases, p.Now())
			// Reuse: second round.
			p.Sleep(time.Duration(3-i) * time.Second)
			b.Arrive(p)
			releases = append(releases, p.Now())
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(releases) != 6 {
		t.Fatalf("%d releases", len(releases))
	}
	for i := 0; i < 3; i++ {
		if releases[i] != 3*time.Second {
			t.Errorf("round 1 release %d at %v, want 3s", i, releases[i])
		}
	}
	for i := 3; i < 6; i++ {
		if releases[i] != 6*time.Second {
			t.Errorf("round 2 release %d at %v, want 6s", i, releases[i])
		}
	}
}

func TestCostModel(t *testing.T) {
	c := CostModel{
		SendPerMsg: time.Microsecond,
		SendPerKB:  time.Microsecond,
		RecvPerMsg: 2 * time.Microsecond,
		RecvPerKB:  500 * time.Nanosecond,
		PollBase:   time.Microsecond,
		PollPerFD:  100 * time.Nanosecond,
	}
	if got := c.SendCost(2048); got != 3*time.Microsecond {
		t.Errorf("SendCost(2048) = %v", got)
	}
	if got := c.RecvCost(0); got != 2*time.Microsecond {
		t.Errorf("RecvCost(0) = %v", got)
	}
	if got := c.PollCost(7); got != time.Microsecond+700*time.Nanosecond {
		t.Errorf("PollCost(7) = %v", got)
	}
	var zero CostModel
	if zero.SendCost(1<<20) != 0 || zero.PollCost(100) != 0 {
		t.Error("zero cost model should charge nothing")
	}
}
