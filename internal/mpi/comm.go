package mpi

import (
	"errors"
	"sort"
)

// ErrRank is returned for out-of-range ranks.
var ErrRank = errors.New("mpi: rank out of range")

// Comm is a communicator: an ordered group of world ranks plus a pair
// of context ids (point-to-point and collective), the MPI "context"
// that scopes message matching (paper Figure 2/3).
type Comm struct {
	pr     *Process
	ctx    int32 // point-to-point context; ctx+1 is the collective context
	group  []int // group[commRank] = worldRank
	myrank int   // this process's comm rank
	alg    Alg   // collective algorithm family (AlgTree default)
}

// Rank returns the calling process's rank within the communicator.
func (c *Comm) Rank() int { return c.myrank }

// Size returns the number of processes in the communicator.
func (c *Comm) Size() int { return len(c.group) }

// Process returns the owning middleware process.
func (c *Comm) Process() *Process { return c.pr }

// Context returns the point-to-point context id (for diagnostics).
func (c *Comm) Context() int32 { return c.ctx }

// worldOf translates a comm rank (or AnySource) to a world rank.
func (c *Comm) worldOf(rank int) (int, error) {
	if rank == AnySource {
		return AnySource, nil
	}
	if rank < 0 || rank >= len(c.group) {
		return 0, ErrRank
	}
	return c.group[rank], nil
}

// commOf translates a world rank back to a comm rank for Status.
func (c *Comm) commOf(world int) int {
	for i, w := range c.group {
		if w == world {
			return i
		}
	}
	return world // not in group; should not happen for delivered traffic
}

func (c *Comm) fixStatus(st Status) Status {
	st.Source = c.commOf(st.Source)
	return st
}

// Send is a standard-mode blocking send (eager below the 64 KiB
// threshold, rendezvous above it).
func (c *Comm) Send(dest, tag int, data []byte) error {
	req, err := c.Isend(dest, tag, data)
	if err != nil {
		return err
	}
	_, err = c.pr.Wait(req)
	return err
}

// Ssend is a synchronous-mode blocking send: it completes only after
// the receiver has matched the message.
func (c *Comm) Ssend(dest, tag int, data []byte) error {
	req, err := c.Issend(dest, tag, data)
	if err != nil {
		return err
	}
	_, err = c.pr.Wait(req)
	return err
}

// Isend posts a nonblocking standard-mode send.
func (c *Comm) Isend(dest, tag int, data []byte) (*Request, error) {
	w, err := c.worldOf(dest)
	if err != nil || w == AnySource {
		return nil, ErrRank
	}
	return c.pr.isend(w, tag, c.ctx, data, false), nil
}

// Issend posts a nonblocking synchronous-mode send.
func (c *Comm) Issend(dest, tag int, data []byte) (*Request, error) {
	w, err := c.worldOf(dest)
	if err != nil || w == AnySource {
		return nil, ErrRank
	}
	return c.pr.isend(w, tag, c.ctx, data, true), nil
}

// Recv blocks until a matching message arrives. src may be AnySource
// and tag may be AnyTag.
func (c *Comm) Recv(src, tag int, buf []byte) (Status, error) {
	req, err := c.Irecv(src, tag, buf)
	if err != nil {
		return Status{}, err
	}
	st, err := c.pr.Wait(req)
	return c.fixStatus(st), err
}

// Irecv posts a nonblocking receive.
func (c *Comm) Irecv(src, tag int, buf []byte) (*Request, error) {
	w, err := c.worldOf(src)
	if err != nil {
		return nil, err
	}
	return c.pr.irecv(w, tag, c.ctx, buf), nil
}

// Wait blocks on a request and translates the status source rank.
func (c *Comm) Wait(req *Request) (Status, error) {
	st, err := c.pr.Wait(req)
	return c.fixStatus(st), err
}

// WaitAll blocks on all requests.
func (c *Comm) WaitAll(reqs ...*Request) error { return c.pr.WaitAll(reqs...) }

// WaitAny blocks until one request completes.
func (c *Comm) WaitAny(reqs ...*Request) (int, Status, error) {
	i, st, err := c.pr.WaitAny(reqs...)
	return i, c.fixStatus(st), err
}

// Test polls a request.
func (c *Comm) Test(req *Request) (bool, Status, error) {
	done, st, err := c.pr.Test(req)
	return done, c.fixStatus(st), err
}

// Probe blocks until a matching message can be received.
func (c *Comm) Probe(src, tag int) (Status, error) {
	w, err := c.worldOf(src)
	if err != nil {
		return Status{}, err
	}
	st, err := c.pr.probe(w, tag, c.ctx)
	return c.fixStatus(st), err
}

// Iprobe checks for a matching message without blocking.
func (c *Comm) Iprobe(src, tag int) (bool, Status, error) {
	w, err := c.worldOf(src)
	if err != nil {
		return false, Status{}, err
	}
	ok, st, err := c.pr.iprobe(w, tag, c.ctx)
	return ok, c.fixStatus(st), err
}

// SendRecv exchanges messages with possibly different partners without
// deadlocking.
func (c *Comm) SendRecv(dest, sendTag int, sendData []byte, src, recvTag int, recvBuf []byte) (Status, error) {
	sreq, err := c.Isend(dest, sendTag, sendData)
	if err != nil {
		return Status{}, err
	}
	rreq, err := c.Irecv(src, recvTag, recvBuf)
	if err != nil {
		return Status{}, err
	}
	if _, err := c.pr.Wait(sreq); err != nil {
		return Status{}, err
	}
	st, err := c.pr.Wait(rreq)
	return c.fixStatus(st), err
}

// Dup creates a duplicate communicator with fresh contexts. It is
// collective: every process in the communicator must call it in the
// same order, which is how all ranks deterministically agree on the new
// context id without extra traffic (a simplification over LAM's
// context-id negotiation; the paper's PID-mapping discussion covers the
// same design space).
func (c *Comm) Dup() (*Comm, error) {
	if err := c.Barrier(); err != nil {
		return nil, err
	}
	ctx := c.pr.nextCtx
	c.pr.nextCtx += 2
	group := append([]int(nil), c.group...)
	return &Comm{pr: c.pr, ctx: ctx, group: group, myrank: c.myrank, alg: c.alg}, nil
}

// Split partitions the communicator by color, ordering each new group
// by key (then by parent rank). Processes passing color < 0 receive nil
// (MPI_UNDEFINED).
func (c *Comm) Split(color, key int) (*Comm, error) {
	n := c.Size()
	mine := []int64{int64(color), int64(key)}
	all := make([]int64, 2*n)
	if err := c.AllgatherI64(mine, all); err != nil {
		return nil, err
	}
	// Context ids advance identically at every rank, including ranks
	// with color < 0, keeping the deterministic allocator in sync.
	// Each distinct color gets its own context pair.
	maxColor := 0
	for r := 0; r < n; r++ {
		if int(all[2*r]) > maxColor {
			maxColor = int(all[2*r])
		}
	}
	ctx := c.pr.nextCtx
	c.pr.nextCtx += 2 * int32(maxColor+1)
	if color < 0 {
		return nil, nil
	}
	type member struct{ color, key, parentRank int }
	var ms []member
	for r := 0; r < n; r++ {
		if int(all[2*r]) == color {
			ms = append(ms, member{int(all[2*r]), int(all[2*r+1]), r})
		}
	}
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].key != ms[j].key {
			return ms[i].key < ms[j].key
		}
		return ms[i].parentRank < ms[j].parentRank
	})
	group := make([]int, len(ms))
	myrank := -1
	for i, m := range ms {
		group[i] = c.group[m.parentRank]
		if m.parentRank == c.myrank {
			myrank = i
		}
	}
	// Distinct colors share a context id; their groups are disjoint, so
	// matching cannot cross groups.
	return &Comm{pr: c.pr, ctx: ctx + int32(color)*2, group: group, myrank: myrank, alg: c.alg}, nil
}
