// Package mpi implements a LAM-style MPI middleware over a pluggable
// request-progression (RPI) module: envelopes precede bodies, short
// (≤64 KiB) messages are sent eagerly, long messages use an
// envelope/ACK/body rendezvous, synchronous sends are eager plus ACK,
// and unexpected messages are buffered until a matching receive is
// posted (paper §2.2). Collectives are built on point-to-point exactly
// as in LAM's TCP module.
package mpi

import (
	"errors"
	"fmt"

	"repro/internal/mpi/rpi"
	"repro/internal/sim"
)

// Wildcards for Recv/Probe.
const (
	AnySource = -1
	AnyTag    = -1
)

// DefaultEagerLimit is LAM's short/long message threshold.
const DefaultEagerLimit = 64 << 10

// Errors surfaced by the middleware.
var (
	ErrTruncated = errors.New("mpi: message truncated (receive buffer too small)")
	ErrFinalized = errors.New("mpi: process already finalized")
)

// Status describes a completed receive.
type Status struct {
	Source int // communicator rank of the sender
	Tag    int
	Count  int // received bytes
}

// Request is a nonblocking operation handle.
type Request struct {
	pr     *Process
	isSend bool
	Done   bool
	Err    error
	status Status

	// Receive matching spec (world rank or AnySource).
	srcWorld int
	tag      int
	ctx      int32
	buf      []byte

	// Long-protocol state.
	seq      uint64
	sendKind rpi.Kind
	dest     int
	expected int
}

// Status returns the completion status; valid once Done.
func (r *Request) Status() Status { return r.status }

func (r *Request) complete(err error) {
	r.Done = true
	if err != nil && r.Err == nil {
		r.Err = err
	}
}

// inboxMsg is a buffered unexpected message.
type inboxMsg struct {
	env  rpi.Envelope
	body []byte
}

type seqKey struct {
	rank int32
	seq  uint64
}

// Process is the per-rank middleware instance. It is owned by exactly
// one simulation process.
type Process struct {
	P          *sim.Proc
	rank, size int
	rpi        rpi.RPI
	eagerLimit int

	posted     []*Request
	unexpected []inboxMsg
	sendBySeq  map[uint64]*Request
	recvBySeq  map[seqKey]*Request
	nextSeq    uint64
	nextCtx    int32
	world      *Comm
	finalized  bool
	mcast      Multicast

	// Stats counts middleware-level events.
	Stats ProcStats
}

// ProcStats counts middleware events for a process.
type ProcStats struct {
	SendsPosted      int64
	RecvsPosted      int64
	EagerSends       int64
	SyncSends        int64
	RendezvousSends  int64
	UnexpectedMsgs   int64
	UnexpectedBytes  int64
	MatchedFromQueue int64
}

// NewProcess builds the middleware instance for one rank. The caller
// must invoke Init from the owning simulation process before use.
func NewProcess(p *sim.Proc, rank, size int, module rpi.RPI, eagerLimit int) *Process {
	if eagerLimit <= 0 {
		eagerLimit = DefaultEagerLimit
	}
	pr := &Process{
		P:          p,
		rank:       rank,
		size:       size,
		rpi:        module,
		eagerLimit: eagerLimit,
		sendBySeq:  make(map[uint64]*Request),
		recvBySeq:  make(map[seqKey]*Request),
		nextCtx:    2, // 0 = world point-to-point, 1 = world collectives
	}
	module.SetDelivery(pr.deliver)
	return pr
}

// Init brings up the transport mesh and returns the world communicator.
func (pr *Process) Init() (*Comm, error) {
	if err := pr.rpi.Init(pr.P); err != nil {
		return nil, err
	}
	group := make([]int, pr.size)
	for i := range group {
		group[i] = i
	}
	pr.world = &Comm{pr: pr, ctx: 0, group: group, myrank: pr.rank}
	return pr.world, nil
}

// Finalize completes all outstanding work and shuts the transport down.
// It performs a barrier first, as MPI_Finalize implementations do, so
// no process tears down connections another is still using.
func (pr *Process) Finalize() error {
	if pr.finalized {
		return ErrFinalized
	}
	if err := pr.world.Barrier(); err != nil {
		return err
	}
	pr.finalized = true
	pr.rpi.Finalize(pr.P)
	return nil
}

// Rank returns the world rank.
func (pr *Process) Rank() int { return pr.rank }

// Size returns the world size.
func (pr *Process) Size() int { return pr.size }

// World returns the world communicator.
func (pr *Process) World() *Comm { return pr.world }

// Wtime returns elapsed virtual time in seconds, like MPI_Wtime.
func (pr *Process) Wtime() float64 { return pr.P.Now().Seconds() }

// RPI exposes the underlying progression module (for statistics).
func (pr *Process) RPI() rpi.RPI { return pr.rpi }

// --- send path -------------------------------------------------------

// isend posts a send to a world rank and returns its request.
func (pr *Process) isend(destWorld int, tag int, ctx int32, data []byte, sync bool) *Request {
	req := &Request{pr: pr, isSend: true, dest: destWorld, tag: tag, ctx: ctx}
	pr.Stats.SendsPosted++
	seq := pr.nextSeq
	pr.nextSeq++
	req.seq = seq
	env := rpi.Envelope{
		Length:  len(data),
		Tag:     int32(tag),
		Context: ctx,
		Rank:    int32(pr.rank),
		Seq:     seq,
	}
	switch {
	case !sync && len(data) <= pr.eagerLimit:
		// Eager short: done when handed to the transport (buffered
		// semantics, as in LAM).
		env.Kind = rpi.KindShort
		req.sendKind = rpi.KindShort
		pr.Stats.EagerSends++
		pr.rpi.Send(destWorld, env, data, func() { req.complete(nil) })
	case sync && len(data) <= pr.eagerLimit:
		// Synchronous short: eager body, completion on ACK.
		env.Kind = rpi.KindSync
		req.sendKind = rpi.KindSync
		pr.Stats.SyncSends++
		pr.sendBySeq[seq] = req
		pr.rpi.Send(destWorld, env, data, nil)
	default:
		// Long: rendezvous. The envelope travels alone; the body waits
		// for the receiver's ACK.
		env.Kind = rpi.KindLongReq
		req.sendKind = rpi.KindLongReq
		req.buf = data
		pr.Stats.RendezvousSends++
		pr.sendBySeq[seq] = req
		pr.rpi.Send(destWorld, env, nil, nil)
	}
	return req
}

// --- receive path ----------------------------------------------------

// irecv posts a receive. srcWorld is a world rank or AnySource.
func (pr *Process) irecv(srcWorld int, tag int, ctx int32, buf []byte) *Request {
	req := &Request{pr: pr, srcWorld: srcWorld, tag: tag, ctx: ctx, buf: buf}
	pr.Stats.RecvsPosted++
	// Check the unexpected queue first, in arrival order.
	for i := range pr.unexpected {
		m := &pr.unexpected[i]
		if pr.matches(req, m.env) {
			env := m.env
			body := m.body
			pr.unexpected = append(pr.unexpected[:i], pr.unexpected[i+1:]...)
			pr.Stats.MatchedFromQueue++
			pr.arrived(req, env, body)
			return req
		}
	}
	pr.posted = append(pr.posted, req)
	return req
}

// matches implements MPI envelope matching: context must equal, source
// and tag honor wildcards.
func (pr *Process) matches(req *Request, env rpi.Envelope) bool {
	if env.Context != req.ctx {
		return false
	}
	if req.srcWorld != AnySource && int32(req.srcWorld) != env.Rank {
		return false
	}
	if req.tag != AnyTag && int32(req.tag) != env.Tag {
		return false
	}
	return true
}

// deliver is the RPI inbound callback: route ACKs to their requests,
// match data envelopes against posted receives, or buffer them as
// unexpected (paper §2.2.2).
func (pr *Process) deliver(env rpi.Envelope, body []byte) {
	switch env.Kind {
	case rpi.KindSyncAck:
		if req, ok := pr.sendBySeq[env.Seq]; ok {
			delete(pr.sendBySeq, env.Seq)
			req.complete(nil)
		}
	case rpi.KindLongAck:
		if req, ok := pr.sendBySeq[env.Seq]; ok {
			delete(pr.sendBySeq, env.Seq)
			bodyEnv := rpi.Envelope{
				Length:  len(req.buf),
				Tag:     int32(req.tag),
				Context: req.ctx,
				Rank:    int32(pr.rank),
				Kind:    rpi.KindLongBody,
				Seq:     req.seq,
			}
			pr.rpi.Send(req.dest, bodyEnv, req.buf, func() { req.complete(nil) })
		}
	case rpi.KindLongBody:
		key := seqKey{env.Rank, env.Seq}
		if req, ok := pr.recvBySeq[key]; ok {
			delete(pr.recvBySeq, key)
			pr.copyBody(req, env, body)
			req.complete(req.Err)
		}
	case rpi.KindShort, rpi.KindSync, rpi.KindLongReq:
		for i, req := range pr.posted {
			if pr.matches(req, env) {
				pr.posted = append(pr.posted[:i], pr.posted[i+1:]...)
				pr.arrived(req, env, body)
				return
			}
		}
		// Unexpected: buffer a copy (the transport may reuse body).
		cp := append([]byte(nil), body...)
		pr.unexpected = append(pr.unexpected, inboxMsg{env: env, body: cp})
		pr.Stats.UnexpectedMsgs++
		pr.Stats.UnexpectedBytes += int64(len(cp))
	}
}

// arrived advances a matched receive for the given envelope.
func (pr *Process) arrived(req *Request, env rpi.Envelope, body []byte) {
	switch env.Kind {
	case rpi.KindShort:
		pr.copyBody(req, env, body)
		req.complete(req.Err)
	case rpi.KindSync:
		pr.copyBody(req, env, body)
		pr.sendAck(env, rpi.KindSyncAck)
		req.complete(req.Err)
	case rpi.KindLongReq:
		// Rendezvous: remember which body completes this request and
		// tell the sender to go ahead.
		req.status = Status{Source: int(env.Rank), Tag: int(env.Tag), Count: env.Length}
		pr.recvBySeq[seqKey{env.Rank, env.Seq}] = req
		pr.sendAck(env, rpi.KindLongAck)
	default:
		panic(fmt.Sprintf("mpi: arrived with kind %v", env.Kind))
	}
}

// sendAck returns a control envelope echoing the sender's sequence
// number, preserving its tag and context so it travels the same stream.
func (pr *Process) sendAck(env rpi.Envelope, kind rpi.Kind) {
	ack := rpi.Envelope{
		Tag:     env.Tag,
		Context: env.Context,
		Rank:    int32(pr.rank),
		Kind:    kind,
		Seq:     env.Seq,
	}
	pr.rpi.Send(int(env.Rank), ack, nil, nil)
}

// copyBody moves a message body into the receive buffer, flagging
// truncation as MPI does.
func (pr *Process) copyBody(req *Request, env rpi.Envelope, body []byte) {
	n := copy(req.buf, body)
	if len(body) > len(req.buf) {
		req.Err = ErrTruncated
	}
	req.status = Status{Source: int(env.Rank), Tag: int(env.Tag), Count: n}
}

// --- progression -----------------------------------------------------

// Wait blocks until the request completes. A terminal RPI error
// (session recovery exhausted) aborts the wait: the job cannot make
// further progress and must shut down.
func (pr *Process) Wait(req *Request) (Status, error) {
	for !req.Done {
		if err := pr.rpi.Advance(pr.P, true); err != nil {
			return req.status, err
		}
	}
	return req.status, req.Err
}

// Test reports completion without blocking (it still progresses I/O
// once, like MPI_Test).
func (pr *Process) Test(req *Request) (bool, Status, error) {
	if !req.Done {
		if err := pr.rpi.Advance(pr.P, false); err != nil {
			return req.Done, req.status, err
		}
	}
	return req.Done, req.status, req.Err
}

// WaitAll blocks until every request completes, returning the first
// error encountered.
func (pr *Process) WaitAll(reqs ...*Request) error {
	var firstErr error
	for _, r := range reqs {
		if _, err := pr.Wait(r); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// WaitAny blocks until at least one request completes and returns its
// index.
func (pr *Process) WaitAny(reqs ...*Request) (int, Status, error) {
	for {
		for i, r := range reqs {
			if r.Done {
				return i, r.status, r.Err
			}
		}
		if err := pr.rpi.Advance(pr.P, true); err != nil {
			return -1, Status{}, err
		}
	}
}

// iprobe checks for a matching message without receiving it.
func (pr *Process) iprobe(srcWorld, tag int, ctx int32) (bool, Status, error) {
	if err := pr.rpi.Advance(pr.P, false); err != nil {
		return false, Status{}, err
	}
	spec := &Request{srcWorld: srcWorld, tag: tag, ctx: ctx}
	for i := range pr.unexpected {
		m := &pr.unexpected[i]
		if pr.matches(spec, m.env) {
			return true, Status{
				Source: int(m.env.Rank),
				Tag:    int(m.env.Tag),
				Count:  m.env.Length,
			}, nil
		}
	}
	return false, Status{}, nil
}

// probe blocks until a matching message is available.
func (pr *Process) probe(srcWorld, tag int, ctx int32) (Status, error) {
	for {
		ok, st, err := pr.iprobe(srcWorld, tag, ctx)
		if err != nil {
			return st, err
		}
		if ok {
			return st, nil
		}
		if err := pr.rpi.Advance(pr.P, true); err != nil {
			return Status{}, err
		}
	}
}
