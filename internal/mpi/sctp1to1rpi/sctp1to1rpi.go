// Package sctp1to1rpi is the ablation backend implied by paper §2.1's
// one-to-one socket style: SCTP message orientation and multistreaming,
// but one socket per peer like TCP. The process keeps N-1 one-to-one
// associations (a full mesh built at MPI_Init) and polls them
// select()-style, so the descriptor-scan cost that the one-to-many
// module eliminates comes back — while per-peer multistreaming and
// message boundaries are retained. Comparing this module against
// sctprpi isolates how much of the paper's result comes from the
// one-to-many socket itself rather than from SCTP's other features.
//
// The progression machinery (counters, cost charging, the Advance
// loop, the Option B/C writer lock, chunk reassembly, session
// recovery) lives in the shared rpi.Engine/rpi.MsgSender/
// rpi.Reassembler/rpi.Sessions; this file is only the one-to-one
// socket binding. A dead association is redialed as a fresh one-to-one
// socket; the KindReconnect handshake and collision tie-break work as
// in the TCP module.
package sctp1to1rpi

import (
	"errors"

	"repro/internal/mpi/rpi"
	"repro/internal/netsim"
	"repro/internal/sctp"
	"repro/internal/sim"
	"repro/internal/transport"
	"repro/internal/wire"
)

// DefaultPort is the mesh listener port.
const DefaultPort = 7003

// Poller source tags for non-peer endpoints; peer associations use the
// peer's rank (>= 0) as their tag.
const (
	tagAccept  = -1 // the one-to-one listener
	tagPending = -2 // all undecided inbound associations, coalesced
)

// Options configures the module.
type Options struct {
	Port         uint16
	Cost         rpi.CostModel
	SCTP         sctp.Config
	SingleStream bool // ignore TRC, use stream 0
	// BodyChunk is the middleware chunk size for messages larger than
	// the transport send buffer. 0 derives it from the send buffer.
	BodyChunk int
	// OptionC interleaves bodiless control envelopes between body
	// chunks, distinguished by PPID (see sctprpi.Options).
	OptionC bool

	// RedialBudget and DropReplayEvery configure the session recovery
	// layer (see rpi.SessionConfig).
	RedialBudget    int
	DropReplayEvery int
}

// Module is one process's one-to-one SCTP RPI instance.
type Module struct {
	rpi.Engine
	stack   *sctp.Stack
	opts    Options
	addrs   [][]netsim.Addr // rank → all interface addresses (multihoming)
	barrier *rpi.Barrier

	listener  *sctp.OneToOneListener
	peers     []*sctp.Conn // rank → dedicated association; nil while down
	streams   int
	sender    *rpi.MsgSender
	recv      *rpi.Reassembler
	sess      *rpi.Sessions
	pending   []*sctp.Conn // accepted, awaiting their first envelope
	helloSeen []bool       // lower ranks confirmed during bring-up (distinct)
	hellos    int

	srcID   []int // rank → poller source id, -1 until first attach
	pendSrc int   // shared source for undecided inbound associations
}

// New builds the module for one rank. addrs maps each world rank to
// its full interface list (index 0 = primary); barrier must be shared
// by all ranks.
func New(stack *sctp.Stack, rank int, addrs [][]netsim.Addr, barrier *rpi.Barrier, opts Options) *Module {
	if opts.Port == 0 {
		opts.Port = DefaultPort
	}
	cfg := opts.SCTP
	if cfg.Streams == 0 {
		cfg.Streams = 10 // the paper's default stream pool
	}
	if opts.SingleStream {
		cfg.Streams = 1
	}
	opts.SCTP = cfg
	m := &Module{
		stack:   stack,
		opts:    opts,
		addrs:   addrs,
		barrier: barrier,
		peers:   make([]*sctp.Conn, len(addrs)),
		streams: cfg.Streams,
	}
	m.SetupEngine(rank, len(addrs), opts.Cost)
	return m
}

// lost reports whether err is a session-loss signal: aborts and
// timeouts, but not graceful teardown (ErrClosed), which Finalize
// produces.
func lost(err error) bool {
	return err != nil &&
		(errors.Is(err, transport.ErrAborted) || errors.Is(err, transport.ErrTimeout))
}

// StreamFor exposes the TRC→stream mapping (for tests): same hash as
// the one-to-many module, applied per-peer association.
func (m *Module) StreamFor(context, tag int32) uint16 {
	if m.opts.SingleStream {
		return 0
	}
	return rpi.StreamFor(m.streams, context, tag)
}

// Init implements rpi.RPI: listener up, full mesh of one-to-one
// associations established (lower ranks dial higher ranks), hello
// exchange identifies accepted associations. The accept phase is
// pump-driven (inbound associations identify themselves through the
// pending machinery) so a session kill during bring-up is detected and
// recovered like any other: a killed dialer redials and announces
// itself with KindReconnect instead of a hello, and the final
// rendezvous keeps pumping so that handshake is answered even by ranks
// already done with their own setup.
func (m *Module) Init(p *sim.Proc) error {
	m.BindProc(p)
	m.helloSeen = make([]bool, m.Size)
	m.srcID = make([]int, m.Size)
	for i := range m.srcID {
		m.srcID[i] = -1
	}
	m.pendSrc = m.Poller().Register(tagPending)
	m.sess = rpi.NewSessions(&m.Engine, p.Kernel(), m.Size, rpi.SessionConfig{
		RedialBudget:    m.opts.RedialBudget,
		DropReplayEvery: m.opts.DropReplayEvery,
	})
	l, err := m.stack.ListenOneToOneConfig(m.opts.Port, m.opts.SCTP)
	if err != nil {
		return err
	}
	m.listener = l
	lsrc := m.Poller().Register(tagAccept)
	l.SetNotify(m.Poller().Hook(lsrc))
	m.sender = rpi.NewMsgSender(
		rpi.DeriveBodyChunk(m.opts.BodyChunk, l.Config().SndBuf),
		m.opts.OptionC, m.Counters(), m.trySend)
	m.recv = rpi.NewReassembler(m.Counters())
	dial := func(j int, hello rpi.Envelope) error {
		c, err := m.stack.DialConfig(p, m.opts.SCTP, m.addrs[j], m.opts.Port, m.streams)
		if err != nil {
			return err
		}
		if err := c.SendMsg(p, 0, hello.Encode()); err != nil {
			return err
		}
		m.attach(j, c)
		return nil
	}
	accept := func() error {
		for m.hellos < m.Rank {
			if err := m.Advance(p, true); err != nil {
				return err
			}
		}
		return nil
	}
	wait := func(done func() bool) error {
		return m.DriveUntil(p, m.Size-1, done,
			func(tag int, ev transport.Ready) bool { return m.onEvent(p, tag, ev) },
			m.tail)
	}
	return rpi.MeshInit(p, m.barrier, m.Rank, m.Size, dial, accept, m.Notify, wait)
}

// markHello records that lower rank r is confirmed for the bring-up
// barrier: its hello arrived, or (if a session kill hit the bring-up)
// its replacement association identified itself with KindReconnect —
// hellos are unsessioned and never replayed, so the recovery handshake
// stands in for a lost one.
func (m *Module) markHello(r int) {
	if r >= 0 && r < m.Rank && !m.helloSeen[r] {
		m.helloSeen[r] = true
		m.hellos++
	}
}

// attach wires one association in. Conn.SetNotify registers
// per-association on the underlying socket (shared listening socket or
// dedicated dial-side socket alike), so each peer's readiness edges
// carry its own rank tag. The synthetic post covers messages that
// landed on the socket queue before this registration — edge-triggered
// readiness produces no event for them.
func (m *Module) attach(rank int, c *sctp.Conn) {
	m.peers[rank] = c
	if m.srcID[rank] < 0 {
		m.srcID[rank] = m.Poller().Register(rank)
	}
	id := m.srcID[rank]
	c.SetNotify(m.Poller().Hook(id))
	m.Poller().Post(id, transport.ReadyRecv)
	m.Counters().Add("connections", 1)
}

func (m *Module) trySend(key rpi.MsgKey, ppid uint32, data []byte) error {
	c := m.peers[key.Rank]
	if c == nil {
		return sctp.ErrAborted
	}
	return c.TrySendMsg(key.Stream, ppid, data)
}

// Send implements rpi.RPI: same Option B/C writer lock as the
// one-to-many module, keyed by (peer, stream). The session layer
// retains every message until acknowledged; the retained copy is the
// buffered-send completion point, so onQueued fires here. While the
// session is down the message is retention-only.
func (m *Module) Send(dest int, env rpi.Envelope, body []byte, onQueued func()) {
	up := m.sess.StampOut(dest, &env, body)
	m.CountSend(len(body))
	if onQueued != nil {
		onQueued()
	}
	if !up {
		return
	}
	key := rpi.MsgKey{Rank: dest, Stream: m.StreamFor(env.Context, env.Tag)}
	m.sender.Send(key, env, body, nil)
}

// Advance implements rpi.RPI: drain the readiness queue, pumping only
// the associations whose state changed. The pass cost stays charged
// over all Size-1 descriptors — the select() scan this ablation exists
// to keep — but the work done is proportional to ready events.
func (m *Module) Advance(p *sim.Proc, block bool) error {
	return m.Drive(p, block, m.Size-1,
		func(tag int, ev transport.Ready) bool { return m.onEvent(p, tag, ev) },
		m.tail)
}

// onEvent dispatches one readiness edge to the endpoint its tag names.
func (m *Module) onEvent(p *sim.Proc, tag int, ev transport.Ready) bool {
	switch tag {
	case tagAccept:
		return m.acceptPending()
	case tagPending:
		return m.drainPending(p)
	default:
		return m.pumpPeer(p, tag)
	}
}

// tail runs every pass: flush writers with queued work (the per-pass
// flush the old scan loop did), and on a Notify kick service redial
// attempts that came due.
func (m *Module) tail(kicked bool) bool {
	progress := false
	if kicked {
		for r := range m.peers {
			if r != m.Rank && m.peers[r] == nil && m.sess.RedialDue(r) {
				m.redial(m.Proc(), r)
				progress = true
			}
		}
	}
	if m.sender.FlushActive() {
		progress = true
	}
	return progress
}

// pumpPeer drains one peer association to would-block, detecting
// abortive death and running a due redial for a downed slot.
func (m *Module) pumpPeer(p *sim.Proc, r int) bool {
	progress := false
	c := m.peers[r]
	for c != nil && m.peers[r] == c {
		msg, err := c.TryRecvMsg()
		if err != nil {
			if lost(err) {
				m.onConnDeath(r)
				progress = true
			}
			break
		}
		if m.handleInbound(p, r, msg) {
			progress = true
		}
	}
	if r != m.Rank && m.peers[r] == nil && m.sess.RedialDue(r) {
		m.redial(p, r)
		progress = true
	}
	return progress
}

// onConnDeath handles an abortive association loss: tear down per-peer
// middleware state and either start the recovery episode or, if a
// replacement association died before its handshake completed, charge
// a failed redial attempt.
func (m *Module) onConnDeath(r int) {
	m.dropPeer(r)
	if m.sess.MarkLost(r) {
		m.sess.ScheduleRedial(r)
	} else {
		m.sess.AttemptFailed(r)
	}
}

// dropPeer kills the association (idempotent when already dead) and
// discards all per-peer sender/reassembly state; retained messages
// replay on the replacement association.
func (m *Module) dropPeer(r int) {
	if c := m.peers[r]; c != nil {
		c.Kill()
		m.peers[r] = nil
	}
	m.sender.DropPeer(r)
	m.recv.Drop(int64(r))
}

// redial runs one redial attempt: claim budget (terminal error when
// exhausted), dial a fresh one-to-one socket blocking in process
// context, and open the KindReconnect handshake on it.
func (m *Module) redial(p *sim.Proc, r int) {
	if err := m.sess.BeginAttempt(r); err != nil {
		m.Fail(err)
		return
	}
	c, err := m.stack.DialConfig(p, m.opts.SCTP, m.addrs[r], m.opts.Port, m.streams)
	if err != nil {
		m.sess.AttemptFailed(r)
		return
	}
	m.sess.DialSucceeded(r)
	m.attach(r, c)
	m.sendHandshake(r, m.sess.ReconnectEnv(r))
}

// sendHandshake queues one recovery handshake envelope (stream 0,
// unsessioned) through the shared writer.
func (m *Module) sendHandshake(r int, env rpi.Envelope) {
	m.sender.Send(rpi.MsgKey{Rank: r, Stream: 0}, env, nil, nil)
}

// replayGap queues the negotiated retention gap on the replacement
// association, each message on its original TRC stream. Replays bypass
// CountSend and the observer: the original send was already counted.
func (m *Module) replayGap(r int, gap []rpi.Retained) {
	for _, rt := range gap {
		key := rpi.MsgKey{Rank: r, Stream: m.StreamFor(rt.Env.Context, rt.Env.Tag)}
		m.sender.Send(key, rt.Env, rt.Body, nil)
	}
}

// acceptPending pulls every completed inbound association off the
// listener onto the pending list. Undecided associations share one
// coalesced poller source; the synthetic post covers a first message
// that reached the socket queue before the hook registration.
func (m *Module) acceptPending() bool {
	progress := false
	for {
		c, err := m.listener.TryAccept()
		if err != nil {
			break
		}
		c.SetNotify(m.Poller().Hook(m.pendSrc))
		m.Poller().Post(m.pendSrc, transport.ReadyRecv)
		m.pending = append(m.pending, c)
		progress = true
	}
	return progress
}

// drainPending reads each undecided association's first message, which
// must announce the dialing rank: a KindHello during mesh bring-up
// (the pump-driven form of the accept loop) or a KindReconnect opening
// session recovery. Valid reconnects are adopted as the peer's
// replacement association (unless our own dial wins the collision
// tie-break); anything else is aborted.
func (m *Module) drainPending(p *sim.Proc) bool {
	progress := false
	kept := m.pending[:0]
	for _, c := range m.pending {
		msg, err := c.TryRecvMsg()
		if err != nil {
			if errors.Is(err, transport.ErrWouldBlock) {
				kept = append(kept, c)
			}
			continue // lost or closed before identifying itself: drop
		}
		progress = true
		env, derr := rpi.DecodeEnvelope(msg.Data)
		wire.PutBuf(msg.Data)
		r := int(env.Rank)
		if derr != nil || r < 0 || r >= m.Size || r == m.Rank {
			c.Abort()
			continue
		}
		if env.Kind == rpi.KindHello {
			// Mesh bring-up: a lower rank announcing its dialed
			// association. A hello for an occupied slot is stray.
			if r >= m.Rank || m.peers[r] != nil {
				c.Abort()
				continue
			}
			m.attach(r, c)
			m.markHello(r)
			continue
		}
		if env.Kind != rpi.KindReconnect {
			c.Abort()
			continue
		}
		if m.peers[r] != nil && m.sess.Get(r).State != rpi.SessUp && r > m.Rank {
			// Redial collision: both sides dialed, the lower rank's dial
			// wins, and that is ours — reject theirs.
			c.Abort()
			continue
		}
		if m.peers[r] != nil {
			// The peer noticed a loss we have not seen yet, or we lost
			// the collision tie-break: drop ours silently, adopt theirs.
			m.sess.MarkLost(r)
			m.dropPeer(r)
		}
		m.attach(r, c)
		ack, gap := m.sess.OnReconnect(r, env)
		m.sendHandshake(r, ack)
		m.replayGap(r, gap)
		m.sess.Resume(r)
		m.markHello(r)
	}
	m.pending = kept
	return progress
}

// handleInbound feeds one data message into the per-(peer, stream)
// reassembler and dispatches the result: recovery handshakes are
// handled here, everything else passes receiver-side session
// processing (retention pruning, duplicate suppression) before
// delivery.
func (m *Module) handleInbound(p *sim.Proc, rank int, msg *sctp.Message) bool {
	key := rpi.RecvKey{ID: int64(rank), Stream: msg.Stream}
	res, env, body := m.recv.Feed(key, msg.PPID, msg.Data)
	switch res {
	case rpi.FeedMessage:
		switch env.Kind {
		case rpi.KindReconnect:
			ack, gap := m.sess.OnReconnect(rank, env)
			m.sendHandshake(rank, ack)
			m.replayGap(rank, gap)
			m.sess.Resume(rank)
			return true
		case rpi.KindReconnectAck:
			m.replayGap(rank, m.sess.OnReconnectAck(rank, env))
			m.sess.Resume(rank)
			return true
		}
		if !m.sess.Accept(rank, &env) {
			if body != nil {
				wire.PutBuf(body)
			}
			return true
		}
		m.Complete(p, env, body)
		return true
	case rpi.FeedHello:
		return true // connection already identified at Init
	default:
		return false
	}
}

// KillSession implements the chaos harness's session-kill hook: destroy
// the association to peer silently (no ABORT chunk — as if the host
// vanished), in kernel context. Detection and recovery run later from
// the owning process's Advance.
func (m *Module) KillSession(peer int) {
	if c := m.peers[peer]; c != nil {
		c.Kill()
	}
}

// Finalize implements rpi.RPI: close every association and the
// listener; graceful SHUTDOWN proceeds in the background.
func (m *Module) Finalize(p *sim.Proc) {
	for _, c := range m.peers {
		if c != nil {
			c.Close()
		}
	}
	for _, c := range m.pending {
		c.Close()
	}
	if m.listener != nil {
		m.listener.Close()
	}
}

// Abort implements rpi.RPI: abortive teardown after a terminal error.
// Associations are aborted (peers fail fast on the ABORT chunk) and
// the listening socket is released so redials aimed at this rank are
// refused with an out-of-the-blue ABORT.
func (m *Module) Abort(p *sim.Proc) {
	for r, c := range m.peers {
		if c != nil {
			c.Abort()
			m.peers[r] = nil
		}
	}
	for _, c := range m.pending {
		c.Abort()
	}
	m.pending = nil
	if m.listener != nil {
		m.listener.Close()
	}
}
