// Package sctp1to1rpi is the ablation backend implied by paper §2.1's
// one-to-one socket style: SCTP message orientation and multistreaming,
// but one socket per peer like TCP. The process keeps N-1 one-to-one
// associations (a full mesh built at MPI_Init) and polls them
// select()-style, so the descriptor-scan cost that the one-to-many
// module eliminates comes back — while per-peer multistreaming and
// message boundaries are retained. Comparing this module against
// sctprpi isolates how much of the paper's result comes from the
// one-to-many socket itself rather than from SCTP's other features.
//
// The progression machinery (counters, cost charging, the Advance
// loop, the Option B/C writer lock, chunk reassembly) lives in the
// shared rpi.Engine/rpi.MsgSender/rpi.Reassembler; this file is only
// the one-to-one socket binding.
package sctp1to1rpi

import (
	"fmt"

	"repro/internal/mpi/rpi"
	"repro/internal/netsim"
	"repro/internal/sctp"
	"repro/internal/sim"
)

// DefaultPort is the mesh listener port.
const DefaultPort = 7003

// Options configures the module.
type Options struct {
	Port         uint16
	Cost         rpi.CostModel
	SCTP         sctp.Config
	SingleStream bool // ignore TRC, use stream 0
	// BodyChunk is the middleware chunk size for messages larger than
	// the transport send buffer. 0 derives it from the send buffer.
	BodyChunk int
	// OptionC interleaves bodiless control envelopes between body
	// chunks, distinguished by PPID (see sctprpi.Options).
	OptionC bool
}

// Module is one process's one-to-one SCTP RPI instance.
type Module struct {
	rpi.Engine
	stack   *sctp.Stack
	opts    Options
	addrs   [][]netsim.Addr // rank → all interface addresses (multihoming)
	barrier *rpi.Barrier

	listener *sctp.OneToOneListener
	peers    []*sctp.Conn // rank → dedicated association
	streams  int
	sender   *rpi.MsgSender
	recv     *rpi.Reassembler
}

// New builds the module for one rank. addrs maps each world rank to
// its full interface list (index 0 = primary); barrier must be shared
// by all ranks.
func New(stack *sctp.Stack, rank int, addrs [][]netsim.Addr, barrier *rpi.Barrier, opts Options) *Module {
	if opts.Port == 0 {
		opts.Port = DefaultPort
	}
	cfg := opts.SCTP
	if cfg.Streams == 0 {
		cfg.Streams = 10 // the paper's default stream pool
	}
	if opts.SingleStream {
		cfg.Streams = 1
	}
	opts.SCTP = cfg
	m := &Module{
		stack:   stack,
		opts:    opts,
		addrs:   addrs,
		barrier: barrier,
		peers:   make([]*sctp.Conn, len(addrs)),
		streams: cfg.Streams,
	}
	m.SetupEngine(rank, len(addrs), opts.Cost)
	return m
}

// StreamFor exposes the TRC→stream mapping (for tests): same hash as
// the one-to-many module, applied per-peer association.
func (m *Module) StreamFor(context, tag int32) uint16 {
	if m.opts.SingleStream {
		return 0
	}
	return rpi.StreamFor(m.streams, context, tag)
}

// Init implements rpi.RPI: listener up, full mesh of one-to-one
// associations established (lower ranks dial higher ranks), hello
// exchange identifies accepted associations.
func (m *Module) Init(p *sim.Proc) error {
	m.BindProc(p)
	l, err := m.stack.ListenOneToOneConfig(m.opts.Port, m.opts.SCTP)
	if err != nil {
		return err
	}
	m.listener = l
	l.SetNotify(m.Notify)
	m.sender = rpi.NewMsgSender(
		rpi.DeriveBodyChunk(m.opts.BodyChunk, l.Config().SndBuf),
		m.opts.OptionC, m.Counters(), m.trySend)
	m.recv = rpi.NewReassembler(m.Counters())
	dial := func(j int, hello rpi.Envelope) error {
		c, err := m.stack.DialConfig(p, m.opts.SCTP, m.addrs[j], m.opts.Port, m.streams)
		if err != nil {
			return err
		}
		if err := c.SendMsg(p, 0, hello.Encode()); err != nil {
			return err
		}
		m.attach(j, c)
		return nil
	}
	accept := func() error {
		for i := 0; i < m.Rank; i++ {
			c, err := l.Accept(p)
			if err != nil {
				return err
			}
			msg, err := c.RecvMsg(p)
			if err != nil {
				return err
			}
			env, derr := rpi.DecodeEnvelope(msg.Data)
			if derr != nil || env.Kind != rpi.KindHello {
				return fmt.Errorf("sctp1to1rpi: bad hello")
			}
			m.attach(int(env.Rank), c)
		}
		return nil
	}
	return rpi.MeshInit(p, m.barrier, m.Rank, m.Size, dial, accept)
}

// attach wires one association in. Accepted Conns share the listener's
// socket, so re-registering the same notify hook there is a no-op;
// dialed Conns own a dedicated socket that needs it.
func (m *Module) attach(rank int, c *sctp.Conn) {
	m.peers[rank] = c
	c.SetNotify(m.Notify)
	m.Counters().Add("connections", 1)
}

func (m *Module) trySend(key rpi.MsgKey, ppid uint32, data []byte) error {
	return m.peers[key.Rank].TrySendMsg(key.Stream, ppid, data)
}

// Send implements rpi.RPI: same Option B/C writer lock as the
// one-to-many module, keyed by (peer, stream).
func (m *Module) Send(dest int, env rpi.Envelope, body []byte, onQueued func()) {
	key := rpi.MsgKey{Rank: dest, Stream: m.StreamFor(env.Context, env.Tag)}
	m.CountSend(len(body))
	m.sender.Send(key, env, body, onQueued)
}

// Advance implements rpi.RPI: one select()-style pass over all N-1
// associations — the descriptor scan is back (poll cost linear in
// Size-1, like the TCP module) even though each association is
// message-oriented and multistreamed.
func (m *Module) Advance(p *sim.Proc, block bool) {
	m.Loop(p, block, m.Size-1, func() bool {
		progress := false
		for r, c := range m.peers {
			if c == nil {
				continue
			}
			for {
				msg, err := c.TryRecvMsg()
				if err != nil {
					break
				}
				if m.handleInbound(p, r, msg) {
					progress = true
				}
			}
		}
		if m.sender.FlushActive() {
			progress = true
		}
		return progress
	})
}

// handleInbound feeds one data message into the per-(peer, stream)
// reassembler. Association events surface as errors from TryRecvMsg,
// so only data reaches here; the reassembly key uses the peer rank
// since each rank owns a dedicated association.
func (m *Module) handleInbound(p *sim.Proc, rank int, msg *sctp.Message) bool {
	key := rpi.RecvKey{ID: int64(rank), Stream: msg.Stream}
	res, env, body := m.recv.Feed(key, msg.PPID, msg.Data)
	switch res {
	case rpi.FeedMessage:
		m.Complete(p, env, body)
		return true
	case rpi.FeedHello:
		return true // connection already identified at Init
	default:
		return false
	}
}

// Finalize implements rpi.RPI: close every association and the
// listener; graceful SHUTDOWN proceeds in the background.
func (m *Module) Finalize(p *sim.Proc) {
	for _, c := range m.peers {
		if c != nil {
			c.Close()
		}
	}
	if m.listener != nil {
		m.listener.Close()
	}
}
