package sctp1to1rpi

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/mpi"
	"repro/internal/mpi/rpi"
	"repro/internal/netsim"
	"repro/internal/sctp"
	"repro/internal/sim"
)

// world builds n nodes with SCTP stacks and one-to-one modules sharing
// a setup barrier, runs fn per rank, and returns the modules.
func world(t *testing.T, n int, opts Options, fn func(pr *mpi.Process, comm *mpi.Comm) error) []*Module {
	t.Helper()
	k := sim.New(1)
	net := netsim.NewNetwork(k)
	net.SetDefaultLinkParams(netsim.DefaultLinkParams())
	barrier := rpi.NewBarrier(k, n)
	lists := make([][]netsim.Addr, n)
	stacks := make([]*sctp.Stack, n)
	for i := 0; i < n; i++ {
		nd := net.NewNode(fmt.Sprintf("n%d", i))
		nd.AddInterface(netsim.MakeAddr(0, i+1))
		lists[i] = nd.Addrs()
		stacks[i] = sctp.NewStack(nd, sctp.Config{})
	}
	modules := make([]*Module, n)
	for i := 0; i < n; i++ {
		modules[i] = New(stacks[i], i, lists, barrier, opts)
	}
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		rank := i
		k.Spawn(fmt.Sprintf("rank%d", rank), func(p *sim.Proc) {
			pr := mpi.NewProcess(p, rank, n, modules[rank], 0)
			comm, err := pr.Init()
			if err != nil {
				errs[rank] = err
				return
			}
			errs[rank] = fn(pr, comm)
			pr.Finalize()
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	return modules
}

// Every rank must hold one dedicated association per peer — the
// one-to-one mesh, not a shared one-to-many socket.
func TestFullMeshOfAssociations(t *testing.T) {
	const n = 5
	modules := world(t, n, Options{}, func(pr *mpi.Process, comm *mpi.Comm) error {
		return comm.Barrier()
	})
	for r, m := range modules {
		if got := m.Counters()["connections"]; got != n-1 {
			t.Errorf("rank %d has %d associations, want %d (one per peer)", r, got, n-1)
		}
	}
}

func TestMessageCounters(t *testing.T) {
	modules := world(t, 2, Options{}, func(pr *mpi.Process, comm *mpi.Comm) error {
		if comm.Rank() == 0 {
			return comm.Send(1, 0, make([]byte, 1000))
		}
		buf := make([]byte, 1000)
		_, err := comm.Recv(0, 0, buf)
		return err
	})
	if got := modules[0].Counters()["bytes_sent"]; got < 1000 {
		t.Errorf("rank 0 bytes_sent = %d", got)
	}
	if got := modules[1].Counters()["bytes_rcvd"]; got < 1000 {
		t.Errorf("rank 1 bytes_rcvd = %d", got)
	}
	if got := modules[1].Counters()["frame_errors"]; got != 0 {
		t.Errorf("frame errors: %d", got)
	}
}

// The TRC→stream mapping is shared with the one-to-many module.
func TestStreamForMatchesOneToMany(t *testing.T) {
	m := &Module{streams: 10}
	for ctx := int32(0); ctx < 4; ctx++ {
		for tag := int32(0); tag < 20; tag++ {
			if got, want := m.StreamFor(ctx, tag), rpi.StreamFor(10, ctx, tag); got != want {
				t.Fatalf("StreamFor(%d,%d) = %d, want %d", ctx, tag, got, want)
			}
		}
	}
	single := &Module{streams: 10}
	single.opts.SingleStream = true
	if single.StreamFor(1, 2) != 0 {
		t.Fatal("single-stream mode must pin to stream 0")
	}
}

// TestSelectCostCharged: unlike the one-to-many module, the one-to-one
// style pays a per-descriptor poll cost again; with it configured,
// advancing must consume virtual time.
func TestSelectCostCharged(t *testing.T) {
	run := func(pollPerFD time.Duration) float64 {
		k := sim.New(1)
		net := netsim.NewNetwork(k)
		net.SetDefaultLinkParams(netsim.DefaultLinkParams())
		const n = 4
		barrier := rpi.NewBarrier(k, n)
		lists := make([][]netsim.Addr, n)
		stacks := make([]*sctp.Stack, n)
		for i := 0; i < n; i++ {
			nd := net.NewNode(fmt.Sprintf("n%d", i))
			nd.AddInterface(netsim.MakeAddr(0, i+1))
			lists[i] = nd.Addrs()
			stacks[i] = sctp.NewStack(nd, sctp.Config{})
		}
		var end float64
		for i := 0; i < n; i++ {
			rank := i
			m := New(stacks[rank], rank, lists, barrier, Options{
				Cost: rpi.CostModel{PollPerFD: pollPerFD},
			})
			k.Spawn("r", func(p *sim.Proc) {
				pr := mpi.NewProcess(p, rank, n, m, 0)
				comm, err := pr.Init()
				if err != nil {
					return
				}
				for j := 0; j < 20; j++ {
					comm.Barrier()
				}
				end = p.Now().Seconds()
				pr.Finalize()
			})
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return end
	}
	cheap := run(0)
	costly := run(100 * time.Microsecond)
	if costly <= cheap {
		t.Errorf("select cost not charged: %.6f vs %.6f", costly, cheap)
	}
}
