package mpi

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/mpi/rpi"
	"repro/internal/sim"
)

// loopRPI is a transport-free RPI: messages hop between processes via
// kernel events with a fixed delay. It isolates the middleware's
// matching, protocol and progression logic from any real transport.
type loopRPI struct {
	k       *sim.Kernel
	rank    int
	fabric  *loopFabric
	deliver rpi.Delivery
	cond    *sim.Cond
	sent    int64
}

type loopFabric struct {
	modules []*loopRPI
	delay   time.Duration
}

func newLoopFabric(k *sim.Kernel, n int, delay time.Duration) *loopFabric {
	f := &loopFabric{delay: delay}
	for i := 0; i < n; i++ {
		f.modules = append(f.modules, &loopRPI{
			k: k, rank: i, fabric: f, cond: sim.NewCond(k),
		})
	}
	return f
}

func (l *loopRPI) Init(p *sim.Proc) error     { return nil }
func (l *loopRPI) SetDelivery(d rpi.Delivery) { l.deliver = d }
func (l *loopRPI) Finalize(p *sim.Proc)       {}
func (l *loopRPI) Counters() rpi.Counters     { return rpi.Counters{"sent": l.sent} }

func (l *loopRPI) Send(dest int, env rpi.Envelope, body []byte, onQueued func()) {
	l.sent++
	cp := append([]byte(nil), body...)
	target := l.fabric.modules[dest]
	l.k.After(l.fabric.delay, func() {
		target.deliver(env, cp)
		target.cond.Broadcast()
	})
	if onQueued != nil {
		l.k.After(0, func() {
			onQueued()
			l.cond.Broadcast()
		})
	}
}

func (l *loopRPI) Advance(p *sim.Proc, block bool) error {
	if block {
		l.cond.Wait(p)
	}
	return nil
}

func (l *loopRPI) Abort(p *sim.Proc) {}

// run spawns n middleware processes over a loop fabric and executes fn
// on each.
func run(t *testing.T, n int, fn func(pr *Process, comm *Comm) error) {
	t.Helper()
	k := sim.New(1)
	fabric := newLoopFabric(k, n, 100*time.Microsecond)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		rank := i
		k.Spawn(fmt.Sprintf("rank%d", rank), func(p *sim.Proc) {
			pr := NewProcess(p, rank, n, fabric.modules[rank], 0)
			comm, err := pr.Init()
			if err != nil {
				errs[rank] = err
				return
			}
			errs[rank] = fn(pr, comm)
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}

func TestEagerShortDelivery(t *testing.T) {
	run(t, 2, func(pr *Process, comm *Comm) error {
		if comm.Rank() == 0 {
			return comm.Send(1, 9, []byte("short and eager"))
		}
		buf := make([]byte, 64)
		st, err := comm.Recv(0, 9, buf)
		if err != nil {
			return err
		}
		if st.Tag != 9 || st.Source != 0 || string(buf[:st.Count]) != "short and eager" {
			return fmt.Errorf("bad status/body: %+v %q", st, buf[:st.Count])
		}
		return nil
	})
}

func TestSameTRCOrderingPreserved(t *testing.T) {
	const n = 50
	run(t, 2, func(pr *Process, comm *Comm) error {
		if comm.Rank() == 0 {
			for i := 0; i < n; i++ {
				if err := comm.Send(1, 4, []byte{byte(i)}); err != nil {
					return err
				}
			}
			return nil
		}
		buf := make([]byte, 1)
		for i := 0; i < n; i++ {
			if _, err := comm.Recv(0, 4, buf); err != nil {
				return err
			}
			if buf[0] != byte(i) {
				return fmt.Errorf("message %d overtaken by %d (same TRC must stay ordered)", i, buf[0])
			}
		}
		return nil
	})
}

func TestUnexpectedQueueFIFOPerTRC(t *testing.T) {
	run(t, 2, func(pr *Process, comm *Comm) error {
		if comm.Rank() == 0 {
			for i := 0; i < 10; i++ {
				if err := comm.Send(1, i%2, []byte{byte(i)}); err != nil {
					return err
				}
			}
			return nil
		}
		// Let everything become unexpected.
		pr.P.Sleep(50 * time.Millisecond)
		buf := make([]byte, 1)
		// Tag 1 messages must come out 1,3,5,... in order even though
		// tag 0 messages interleaved in the queue.
		for _, want := range []byte{1, 3, 5, 7, 9} {
			if _, err := comm.Recv(0, 1, buf); err != nil {
				return err
			}
			if buf[0] != want {
				return fmt.Errorf("tag 1: got %d want %d", buf[0], want)
			}
		}
		for _, want := range []byte{0, 2, 4, 6, 8} {
			if _, err := comm.Recv(0, 0, buf); err != nil {
				return err
			}
			if buf[0] != want {
				return fmt.Errorf("tag 0: got %d want %d", buf[0], want)
			}
		}
		return nil
	})
}

func TestWildcardMatchesFirstArrival(t *testing.T) {
	run(t, 2, func(pr *Process, comm *Comm) error {
		if comm.Rank() == 0 {
			if err := comm.Send(1, 5, []byte("five")); err != nil {
				return err
			}
			return comm.Send(1, 6, []byte("six"))
		}
		pr.P.Sleep(50 * time.Millisecond)
		buf := make([]byte, 8)
		st, err := comm.Recv(AnySource, AnyTag, buf)
		if err != nil {
			return err
		}
		if st.Tag != 5 {
			return fmt.Errorf("wildcard matched tag %d, want first arrival (5)", st.Tag)
		}
		return nil
	})
}

func TestPostedReceiveOrderRespected(t *testing.T) {
	run(t, 2, func(pr *Process, comm *Comm) error {
		if comm.Rank() == 0 {
			pr.P.Sleep(10 * time.Millisecond)
			return comm.Send(1, AnyTagValueForTest, nil)
		}
		// Two receives that both match the incoming message: the one
		// posted first must win.
		b1 := make([]byte, 4)
		b2 := make([]byte, 4)
		r1, err := comm.Irecv(0, AnyTag, b1)
		if err != nil {
			return err
		}
		r2, err := comm.Irecv(0, AnyTagValueForTest, b2)
		if err != nil {
			return err
		}
		i, _, err := comm.WaitAny(r1, r2)
		if err != nil {
			return err
		}
		if i != 0 {
			return fmt.Errorf("second-posted receive matched first")
		}
		_ = r2
		return nil
	})
}

// AnyTagValueForTest is an ordinary tag used by the posted-order test.
const AnyTagValueForTest = 77

func TestRendezvousLongMessage(t *testing.T) {
	const size = 128 << 10 // above the default eager limit
	run(t, 2, func(pr *Process, comm *Comm) error {
		if comm.Rank() == 0 {
			data := make([]byte, size)
			for i := range data {
				data[i] = byte(i)
			}
			req, err := comm.Isend(1, 0, data)
			if err != nil {
				return err
			}
			// Rendezvous: must not complete before the receiver posts.
			done, _, _ := comm.Test(req)
			if done {
				return fmt.Errorf("long send completed before matching receive was posted")
			}
			_, err = comm.Wait(req)
			return err
		}
		pr.P.Sleep(20 * time.Millisecond)
		buf := make([]byte, size)
		st, err := comm.Recv(0, 0, buf)
		if err != nil {
			return err
		}
		if st.Count != size {
			return fmt.Errorf("count %d", st.Count)
		}
		for i := range buf {
			if buf[i] != byte(i) {
				return fmt.Errorf("corrupt at %d", i)
			}
		}
		return nil
	})
}

func TestSyncSendWaitsForMatch(t *testing.T) {
	run(t, 2, func(pr *Process, comm *Comm) error {
		if comm.Rank() == 0 {
			t0 := pr.P.Now()
			if err := comm.Ssend(1, 0, []byte("sync")); err != nil {
				return err
			}
			if pr.P.Now()-t0 < 30*time.Millisecond {
				return fmt.Errorf("Ssend returned before the receive was posted")
			}
			return nil
		}
		pr.P.Sleep(40 * time.Millisecond)
		buf := make([]byte, 8)
		_, err := comm.Recv(0, 0, buf)
		return err
	})
}

func TestTruncation(t *testing.T) {
	run(t, 2, func(pr *Process, comm *Comm) error {
		if comm.Rank() == 0 {
			return comm.Send(1, 0, []byte("0123456789"))
		}
		buf := make([]byte, 4)
		st, err := comm.Recv(0, 0, buf)
		if err != ErrTruncated {
			return fmt.Errorf("err = %v, want ErrTruncated", err)
		}
		if st.Count != 4 || !bytes.Equal(buf, []byte("0123")) {
			return fmt.Errorf("partial copy wrong: %q", buf[:st.Count])
		}
		return nil
	})
}

func TestIprobeDoesNotConsume(t *testing.T) {
	run(t, 2, func(pr *Process, comm *Comm) error {
		if comm.Rank() == 0 {
			return comm.Send(1, 3, []byte("peek"))
		}
		pr.P.Sleep(20 * time.Millisecond)
		for i := 0; i < 3; i++ {
			ok, st, err := comm.Iprobe(0, 3)
			if err != nil {
				return err
			}
			if !ok || st.Count != 4 {
				return fmt.Errorf("iprobe %d: ok=%v st=%+v", i, ok, st)
			}
		}
		buf := make([]byte, 8)
		st, err := comm.Recv(0, 3, buf)
		if err != nil {
			return err
		}
		if string(buf[:st.Count]) != "peek" {
			return fmt.Errorf("body %q", buf[:st.Count])
		}
		return nil
	})
}

func TestWaitAllMixed(t *testing.T) {
	run(t, 2, func(pr *Process, comm *Comm) error {
		if comm.Rank() == 0 {
			var reqs []*Request
			for i := 0; i < 5; i++ {
				r, err := comm.Isend(1, i, []byte{byte(i)})
				if err != nil {
					return err
				}
				reqs = append(reqs, r)
			}
			return comm.WaitAll(reqs...)
		}
		buf := make([]byte, 1)
		for i := 4; i >= 0; i-- {
			if _, err := comm.Recv(0, i, buf); err != nil {
				return err
			}
		}
		return nil
	})
}

func TestStatsCounters(t *testing.T) {
	run(t, 2, func(pr *Process, comm *Comm) error {
		if comm.Rank() == 0 {
			if err := comm.Send(1, 0, []byte("a")); err != nil {
				return err
			}
			return comm.Ssend(1, 0, []byte("b"))
		}
		pr.P.Sleep(10 * time.Millisecond)
		buf := make([]byte, 4)
		if _, err := comm.Recv(0, 0, buf); err != nil {
			return err
		}
		if _, err := comm.Recv(0, 0, buf); err != nil {
			return err
		}
		if pr.Stats.UnexpectedMsgs == 0 {
			return fmt.Errorf("expected unexpected-message accounting")
		}
		if pr.Stats.RecvsPosted != 2 {
			return fmt.Errorf("RecvsPosted = %d", pr.Stats.RecvsPosted)
		}
		return nil
	})
}

func TestFinalizeTwice(t *testing.T) {
	run(t, 2, func(pr *Process, comm *Comm) error {
		if err := pr.Finalize(); err != nil {
			return err
		}
		if err := pr.Finalize(); err != ErrFinalized {
			return fmt.Errorf("second Finalize: %v, want ErrFinalized", err)
		}
		return nil
	})
}
