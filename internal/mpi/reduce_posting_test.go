package mpi

import (
	"bytes"
	"testing"
	"time"
)

// TestNaiveReducePostsAllReceives pins the posting-order fix in
// naiveReduce (the same audit Gather and Gatherv already passed): the
// root must pre-post every receive so the n-1 rendezvous bodies flow
// concurrently, instead of holding each sender's body hostage until a
// blocking rank-at-a-time loop reaches its slot.
//
// The loop fabric charges a flat 100µs per hop with no bandwidth
// limit, so the timing separates the two shapes sharply: with all
// receives posted up front the whole fan-in costs a few hops (~300µs
// for req/ack/body), while the old serialized loop needed about two
// hops per sender (~3.2ms at 17 ranks). The 1 ms ceiling sits far
// from both, so the test is insensitive to protocol-constant drift
// but fails immediately if the receives serialize again.
func TestNaiveReducePostsAllReceives(t *testing.T) {
	const n = 17
	const words = (96 << 10) / 8 // rendezvous territory, well above eager
	var elapsed time.Duration
	var got []byte
	run(t, n, func(pr *Process, comm *Comm) error {
		comm.SetAlg(AlgNaive)
		data := I64Bytes(rankPattern(comm.Rank(), words))
		t0 := pr.P.Now()
		if err := comm.Reduce(0, data, OpSumI64); err != nil {
			return err
		}
		if comm.Rank() == 0 {
			elapsed = pr.P.Now() - t0
			got = data
		}
		return nil
	})

	want := make([]int64, words)
	for r := 0; r < n; r++ {
		for i, v := range rankPattern(r, words) {
			want[i] += v
		}
	}
	if !bytes.Equal(got, I64Bytes(want)) {
		t.Fatal("naive reduce result incorrect at root")
	}
	if limit := 1 * time.Millisecond; elapsed > limit {
		t.Fatalf("naive reduce root took %v, want < %v: root receives look serialized again",
			elapsed, limit)
	}
}
