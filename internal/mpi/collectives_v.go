package mpi

// Variable-count collectives and scan/reduce-scatter, completing the
// LAM collective set the middleware exposes. All are built on
// point-to-point on the collective context, like the fixed-size ones.

// Internal tags for the variable collectives.
const (
	tagGatherv  = 8
	tagScatterv = 9
	tagScan     = 10
	tagRedScat  = 11
)

// Gatherv collects variable-size contributions: rank r's send (of
// counts[r] bytes) lands at recv[offs[r]] on root. counts and offs must
// be identical at every rank; recv may be nil on non-roots.
func (c *Comm) Gatherv(root int, send []byte, recv []byte, counts, offs []int) error {
	me := c.Rank()
	if len(send) != counts[me] {
		return ErrRank
	}
	if me != root {
		return c.csend(root, tagGatherv, send)
	}
	copy(recv[offs[root]:offs[root]+counts[root]], send)
	// Post every receive up front (see Gather).
	reqs := make([]*Request, 0, c.Size()-1)
	for r := 0; r < c.Size(); r++ {
		if r == root {
			continue
		}
		req, err := c.cirecv(r, tagGatherv, recv[offs[r]:offs[r]+counts[r]])
		if err != nil {
			return err
		}
		reqs = append(reqs, req)
	}
	return c.pr.WaitAll(reqs...)
}

// Scatterv distributes variable-size slices: rank r receives counts[r]
// bytes from send[offs[r]] on root.
func (c *Comm) Scatterv(root int, send []byte, recv []byte, counts, offs []int) error {
	me := c.Rank()
	if me != root {
		_, err := c.crecv(root, tagScatterv, recv[:counts[me]])
		return err
	}
	var reqs []*Request
	for r := 0; r < c.Size(); r++ {
		if r == root {
			copy(recv[:counts[r]], send[offs[r]:offs[r]+counts[r]])
			continue
		}
		req, err := c.cisend(r, tagScatterv, send[offs[r]:offs[r]+counts[r]])
		if err != nil {
			return err
		}
		reqs = append(reqs, req)
	}
	return c.pr.WaitAll(reqs...)
}

// Allgatherv is Gatherv to rank 0 followed by a broadcast of the full
// buffer.
func (c *Comm) Allgatherv(send []byte, recv []byte, counts, offs []int) error {
	if err := c.Gatherv(0, send, recv, counts, offs); err != nil {
		return err
	}
	return c.Bcast(0, recv)
}

// ReduceScatter reduces data element-wise across all ranks, then
// scatters equal blocks of the result: each rank ends with its own
// block (len(data)/Size() bytes) in block. Implemented as Reduce to 0 +
// Scatter, as LAM's basic algorithm does.
func (c *Comm) ReduceScatter(data []byte, block []byte, op Op) error {
	if err := c.Reduce(0, data, op); err != nil {
		return err
	}
	var full []byte
	if c.Rank() == 0 {
		full = data
	}
	return c.Scatter(0, full, block)
}

// Scan computes the inclusive prefix reduction: rank r's data becomes
// op-fold of ranks 0..r. Linear pipeline, as in LAM.
func (c *Comm) Scan(data []byte, op Op) error {
	me := c.Rank()
	if me > 0 {
		prev := make([]byte, len(data))
		if _, err := c.crecv(me-1, tagScan, prev); err != nil {
			return err
		}
		// data = prev op data (commutative ops make the order moot;
		// for non-commutative ops fold the lower ranks in first).
		op(prev, data)
		copy(data, prev)
	}
	if me < c.Size()-1 {
		return c.csend(me+1, tagScan, data)
	}
	return nil
}

// Exscan computes the exclusive prefix reduction: rank r receives the
// fold of ranks 0..r-1; rank 0's buffer is left untouched.
func (c *Comm) Exscan(data []byte, op Op) error {
	me := c.Rank()
	mine := append([]byte(nil), data...)
	var incoming []byte
	if me > 0 {
		incoming = make([]byte, len(data))
		if _, err := c.crecv(me-1, tagScan, incoming); err != nil {
			return err
		}
	}
	if me < c.Size()-1 {
		out := mine
		if me > 0 {
			out = append([]byte(nil), incoming...)
			op(out, mine)
		}
		if err := c.csend(me+1, tagScan, out); err != nil {
			return err
		}
	}
	if me > 0 {
		copy(data, incoming)
	}
	return nil
}
