package sctp

import (
	"time"

	"repro/internal/netsim"
	"repro/internal/seqnum"
	"repro/internal/sim"
	"repro/internal/wire"
)

type assocState int

const (
	aClosed assocState = iota
	aCookieWait
	aCookieEchoed
	aEstablished
	aShutdownPending
	aShutdownSent
	aShutdownReceived
	aShutdownAckSent
	aDone
)

// Stats counts per-association protocol events.
type Stats struct {
	PacketsSent     int64
	PacketsRcvd     int64
	ChunksSent      int64
	ChunksRcvd      int64
	BytesSent       int64
	BytesRcvd       int64
	Retransmits     int64
	FastRetransmits int64
	T3Expiries      int64
	SacksSent       int64
	SacksRcvd       int64
	DupChunksRcvd   int64
	IDataChunksSent int64 // RFC 8260 I-DATA chunks transmitted
	IDataChunksRcvd int64 // RFC 8260 I-DATA chunks received
	BadTagDrops     int64
	Failovers       int64
	HeartbeatsSent  int64
	Restarts        int64 // RFC 4960 §5.2 in-place association restarts
}

// path holds per-destination-address transport state: SCTP keeps
// congestion control variables per path (paper §2.1).
type path struct {
	addr netsim.Addr // peer address
	src  netsim.Addr // local address used to reach it
	mtu  int         // payload MTU for DATA chunks

	cwnd, ssthresh, pba int
	flight              int
	active              bool
	errors              int

	srtt, rttvar, rto time.Duration
	rttActive         bool
	rttTSN            seqnum.V
	rttStart          time.Duration

	inFastRec  bool
	recoverTSN seqnum.V

	t3            sim.Timer
	hbTimer       sim.Timer
	t3Fn          func() // cached After callback; avoids a closure per T3 arm
	hbOutstanding bool
	hbNonce       uint64
	lastSend      time.Duration
}

// msgBuf is a pooled copy of one user message, shared by the chunks it
// was fragmented into. refs counts chunks still holding a share; the
// last release recycles the buffer.
type msgBuf struct {
	b    []byte
	refs int32
}

func (mb *msgBuf) release() {
	mb.refs--
	if mb.refs == 0 {
		wire.PutBuf(mb.b)
		mb.b = nil
	}
}

// outChunk tracks one DATA chunk through transmission. The chunk is
// embedded by value so queuing a message costs one allocation per
// fragment, not two.
type outChunk struct {
	c         chunk
	mb        *msgBuf
	size      int
	pathIdx   int
	transmits int
	sacked    bool
	missing   int
	inRtxQ    bool
	// inFlight records whether this chunk's bytes are currently counted
	// in its path's flight. It is the accounting ground truth: flight is
	// only ever decremented for a chunk whose bytes are in it, so a SACK
	// arriving for a chunk that T3 or fast retransmit already pulled out
	// of flight cannot steal bytes that belong to other outstanding
	// chunks (which would zero flight early, stop the T3 timer, and
	// strand the still-unacked chunks forever).
	inFlight bool
}

// releaseBuf drops this chunk's share of the message buffer. Idempotent:
// called when the chunk is first sacked and again defensively at
// teardown.
func (oc *outChunk) releaseBuf() {
	if oc.mb != nil {
		oc.mb.release()
		oc.mb = nil
	}
}

type tsnRange struct {
	start, end seqnum.V // inclusive
}

// frag is one stored fragment: the data slice plus a retained reference
// to the pooled packet it aliases (nil when the data is unpooled).
type frag struct {
	data []byte
	buf  *netsim.Packet
}

// partialMsg reassembles a fragmented user message.
type partialMsg struct {
	stream uint16
	ssn    seqnum.S16
	ppid   uint32
	frags  map[seqnum.V]frag
	haveB  bool
	haveE  bool
	bTSN   seqnum.V
	eTSN   seqnum.V
	bytes  int
}

// releaseFrags drops the packet references held by an unfinished
// reassembly, e.g. at association teardown.
func (pm *partialMsg) releaseFrags() {
	for tsn, f := range pm.frags {
		if f.buf != nil {
			f.buf.Release()
		}
		delete(pm.frags, tsn)
	}
}

// Assoc is one SCTP association endpoint.
type Assoc struct {
	sock *Socket
	cfg  Config
	id   AssocID

	state      assocState
	err        error
	peerPort   uint16
	myTag      uint32
	peerTag    uint32
	localAddrs []netsim.Addr
	peerAddrs  []netsim.Addr
	paths      []*path
	primary    int
	cmtNext    int // round-robin cursor for Concurrent Multipath Transfer
	numOut     int
	numIn      int

	// Send side.
	nextTSN  seqnum.V
	outSSN   []uint16
	outQ     []*outChunk
	rtxQ     []*outChunk
	inflight []*outChunk // TSN order
	sndUsed  int
	peerRwnd int
	sndCond  *sim.Cond

	// I-DATA mode (RFC 8260), committed at handshake when both ends
	// enable Config.IData. Outbound messages take a per-stream MID and
	// queue in the stream scheduler instead of outQ; their TSNs are
	// assigned at transmit time so TSN order equals wire order even when
	// the scheduler interleaves streams.
	useIData bool
	outMID   []seqnum.MID // next message ID per outbound stream
	sched    *sched       // sender-side stream scheduler
	ireasm   ireasm       // per-(stream, MID) interleaved reassembly

	// Receive side.
	cumTSN      seqnum.V
	rcvRanges   []tsnRange
	dupTSNs     []seqnum.V
	partial     map[uint32]*partialMsg
	expectedSSN []seqnum.S16
	reorder     []map[seqnum.S16]*Message
	rcvUsed     int
	lastRwnd    int
	pktsNoSack  int
	sackTimer   sim.Timer
	sackFn      func() // cached delayed-SACK callback
	sackNow     bool
	sackScratch chunk // reused by buildSack; dead once encoded
	lastDataSrc netsim.Addr

	assocErrors    int
	reqStreams     int
	cookie         []byte
	initTimer      sim.Timer
	initTries      int
	shutdownTimer  sim.Timer
	shutdownTries  int
	autocloseTimer sim.Timer
	connCond       *sim.Cond

	stats Stats
}

// Statistics returns a copy of the association counters.
func (a *Assoc) Statistics() Stats { return a.stats }

// ID returns the association identifier.
func (a *Assoc) ID() AssocID { return a.id }

// PrimaryPath returns the current primary destination address.
func (a *Assoc) PrimaryPath() netsim.Addr { return a.paths[a.primary].addr }

// PeerAddrs returns the peer's addresses.
func (a *Assoc) PeerAddrs() []netsim.Addr { return a.peerAddrs }

// PathActive reports whether the path to addr is active.
func (a *Assoc) PathActive(addr netsim.Addr) bool {
	for _, pt := range a.paths {
		if pt.addr == addr {
			return pt.active
		}
	}
	return false
}

// Established reports whether the association is fully set up.
func (a *Assoc) Established() bool { return a.state == aEstablished }

// NumOutStreams returns the negotiated number of outbound streams.
func (a *Assoc) NumOutStreams() int { return a.numOut }

// SndBufAvailable returns free send-buffer space in bytes.
func (a *Assoc) SndBufAvailable() int { return a.cfg.SndBuf - a.sndUsed }

func (a *Assoc) kernel() *sim.Kernel { return a.sock.kernel() }

// newAssoc builds the shared association skeleton.
func (sk *Socket) newAssoc(peerPort uint16, peerAddrs []netsim.Addr) *Assoc {
	sk.stack.nextID++
	a := &Assoc{
		sock:       sk,
		cfg:        sk.cfg,
		id:         sk.stack.nextID,
		peerPort:   peerPort,
		peerAddrs:  peerAddrs,
		localAddrs: sk.stack.node.Addrs(),
		partial:    make(map[uint32]*partialMsg),
		sndCond:    sim.NewCond(sk.kernel()),
		connCond:   sim.NewCond(sk.kernel()),
		peerRwnd:   4380, // until the peer advertises
	}
	a.sackFn = func() {
		if a.state != aDone {
			a.sendSack()
		}
	}
	for _, pa := range peerAddrs {
		key := addrPort{pa, peerPort}
		sk.assocs[key] = a
	}
	sk.byID[a.id] = a
	sk.Stats.AssocsOpened++
	return a
}

// buildPaths creates per-destination state once peer addresses are
// known. The local source for each peer address is the interface on the
// same subnet when one exists (the multihomed cluster pairs subnets).
func (a *Assoc) buildPaths() {
	a.paths = nil
	for _, pa := range a.peerAddrs {
		src := a.localAddrs[0]
		for _, la := range a.localAddrs {
			if la.Subnet() == pa.Subnet() {
				src = la
				break
			}
		}
		mtu := a.sock.stack.node.MTU(src, pa) - netsim.IPHeaderSize - commonHeaderSize
		pt := &path{
			addr:   pa,
			src:    src,
			mtu:    mtu,
			active: true,
			rto:    a.cfg.RTOInitial,
		}
		pt.cwnd = initialCwnd(mtu)
		pt.ssthresh = 1 << 30
		pi := len(a.paths)
		pt.t3Fn = func() { a.onT3(pi) }
		a.paths = append(a.paths, pt)
	}
	a.primary = 0
}

// initialCwnd follows RFC 4960: min(4*MTU, max(2*MTU, 4380)).
func initialCwnd(mtu int) int {
	v := 4380
	if v < 2*mtu {
		v = 2 * mtu
	}
	if v > 4*mtu {
		v = 4 * mtu
	}
	return v
}

// initStreams sizes stream state after negotiation. useIData must be
// committed before this is called (it sizes the I-DATA structures).
func (a *Assoc) initStreams(out, in int) {
	a.numOut = out
	a.numIn = in
	a.outSSN = make([]uint16, out)
	a.expectedSSN = make([]seqnum.S16, in)
	a.reorder = make([]map[seqnum.S16]*Message, in)
	for i := range a.reorder {
		a.reorder[i] = make(map[seqnum.S16]*Message)
	}
	if a.useIData {
		a.outMID = make([]seqnum.MID, out)
		a.sched = newSched(a.cfg.Scheduler, out)
		a.ireasm.init(in)
	} else {
		a.outMID = nil
		a.sched = nil
	}
}

// UsesIData reports whether RFC 8260 interleaving was negotiated for
// this association (both endpoints enabled Config.IData).
func (a *Assoc) UsesIData() bool { return a.useIData }

// outPending counts chunks queued for first transmission, wherever they
// live (legacy outQ or the I-DATA stream scheduler).
func (a *Assoc) outPending() int {
	n := len(a.outQ)
	if a.sched != nil {
		n += a.sched.pending()
	}
	return n
}

// establish finalizes the handshake on either side.
func (a *Assoc) establish() {
	a.state = aEstablished
	a.startHeartbeats()
	a.resetAutoclose()
	a.sock.enqueue(&Message{
		Assoc:        a.id,
		Peer:         a.peerAddrs[0],
		Notification: NotifyCommUp,
	})
	a.connCond.Broadcast()
	a.sndCond.Broadcast()
}

// handlePacket processes one inbound packet for this association.
func (a *Assoc) handlePacket(src, dst netsim.Addr, pkt *packet) {
	if a.state == aDone {
		return
	}
	a.stats.PacketsRcvd++
	a.resetAutoclose()
	hadData := false
	for _, c := range pkt.Chunks {
		switch c.Type {
		case ctData:
			a.handleData(src, c)
			hadData = true
		case ctIData:
			a.handleIData(src, c)
			hadData = true
		case ctSack:
			a.stats.SacksRcvd++
			a.processSack(c)
		case ctHeartbeat:
			// Echo the heartbeat info back to the sender on the same
			// path.
			a.sendChunks(dst, src, []*chunk{{
				Type: ctHeartbeatAck, HBPath: c.HBPath, HBNonce: c.HBNonce,
			}})
		case ctHeartbeatAck:
			a.handleHeartbeatAck(c)
		case ctInit:
			a.handleInitCollision(src, dst, c)
		case ctInitAck:
			a.handleInitAck(src, c)
		case ctCookieAck:
			a.handleCookieAck()
		case ctCookieEcho:
			a.handleCookieEchoOnAssoc(src, dst, c)
		case ctShutdown:
			a.handleShutdown(c)
		case ctShutdownAck:
			a.handleShutdownAck(src, dst)
		case ctShutdownComplete:
			a.finish()
			return
		case ctAbort:
			a.fail(ErrAborted, false)
			return
		}
		if a.state == aDone {
			return
		}
	}
	if hadData {
		a.lastDataSrc = src
		a.sackPolicy()
	}
}

// inRanges reports whether tsn was already received (above cumTSN).
func (a *Assoc) inRanges(tsn seqnum.V) bool {
	for _, r := range a.rcvRanges {
		if tsn.GreaterEq(r.start) && tsn.LessEq(r.end) {
			return true
		}
	}
	return false
}

// insertRange records tsn as received, merging adjacent ranges.
func (a *Assoc) insertRange(tsn seqnum.V) {
	for i := range a.rcvRanges {
		r := &a.rcvRanges[i]
		if tsn == r.start.Add(^uint32(0)) { // tsn == start-1
			r.start = tsn
			a.mergeRanges()
			return
		}
		if tsn == r.end.Add(1) {
			r.end = tsn
			a.mergeRanges()
			return
		}
		if tsn.Less(r.start) {
			a.rcvRanges = append(a.rcvRanges[:i],
				append([]tsnRange{{tsn, tsn}}, a.rcvRanges[i:]...)...)
			return
		}
	}
	a.rcvRanges = append(a.rcvRanges, tsnRange{tsn, tsn})
}

func (a *Assoc) mergeRanges() {
	out := a.rcvRanges[:0]
	for _, r := range a.rcvRanges {
		if n := len(out); n > 0 && r.start.LessEq(out[n-1].end.Add(1)) {
			if r.end.Greater(out[n-1].end) {
				out[n-1].end = r.end
			}
			continue
		}
		out = append(out, r)
	}
	a.rcvRanges = out
}

// acceptTSN runs the TSN-level acceptance shared by DATA and I-DATA:
// duplicate detection, receive-buffer admission, range bookkeeping and
// cumulative-TSN advance. It reports whether the chunk's payload was
// accepted for reassembly.
func (a *Assoc) acceptTSN(c *chunk) bool {
	a.stats.ChunksRcvd++
	tsn := c.TSN
	if tsn.LessEq(a.cumTSN) || a.inRanges(tsn) {
		a.stats.DupChunksRcvd++
		a.dupTSNs = append(a.dupTSNs, tsn)
		a.sackNow = true
		return false
	}
	if a.rcvUsed+len(c.Data) > a.cfg.RcvBuf {
		// No receive-buffer space: drop silently; the sender's rwnd
		// tracking normally prevents this.
		return false
	}
	if int(c.Stream) >= a.numIn {
		return false // invalid stream; a real stack sends an ERROR chunk
	}
	a.insertRange(tsn)
	a.rcvUsed += len(c.Data)
	a.stats.BytesRcvd += int64(len(c.Data))

	// Advance the cumulative TSN through the first range if contiguous.
	if len(a.rcvRanges) > 0 && a.rcvRanges[0].start == a.cumTSN.Add(1) {
		a.cumTSN = a.rcvRanges[0].end
		a.rcvRanges = a.rcvRanges[1:]
		if p := a.cfg.Probe; p != nil && p.CumTSN != nil {
			p.CumTSN(a, a.cumTSN)
		}
	}
	return true
}

// handleData processes one DATA chunk.
func (a *Assoc) handleData(src netsim.Addr, c *chunk) {
	if !a.acceptTSN(c) {
		return
	}

	// Reassembly: fragments of one message share (stream, SSN) and
	// occupy consecutive TSNs.
	tsn := c.TSN
	key := uint32(c.Stream)<<16 | uint32(uint16(c.SSN))
	pm := a.partial[key]
	if pm == nil {
		if c.Flags&flagBeginFragment != 0 && c.Flags&flagEndFragment != 0 {
			// Unfragmented message: deliver directly, skipping the
			// reassembly map. This is the common case for small sends.
			a.deliverOrdered(&Message{
				Assoc:  a.id,
				Peer:   a.peerAddrs[0],
				Stream: c.Stream,
				SSN:    uint16(c.SSN),
				PPID:   c.PPID,
				Data:   append(wire.GetBuf(len(c.Data))[:0], c.Data...),
			})
			return
		}
		pm = &partialMsg{
			stream: c.Stream, ssn: c.SSN, ppid: c.PPID,
			frags: make(map[seqnum.V]frag),
		}
		a.partial[key] = pm
	}
	if _, dup := pm.frags[tsn]; !dup {
		if c.buf != nil {
			c.buf.Retain()
		}
		pm.frags[tsn] = frag{data: c.Data, buf: c.buf}
		pm.bytes += len(c.Data)
	}
	if c.Flags&flagBeginFragment != 0 {
		pm.haveB = true
		pm.bTSN = tsn
	}
	if c.Flags&flagEndFragment != 0 {
		pm.haveE = true
		pm.eTSN = tsn
	}
	if pm.haveB && pm.haveE && int(pm.eTSN.Sub(pm.bTSN))+1 == len(pm.frags) {
		delete(a.partial, key)
		a.completeMessage(pm)
	}
}

// handleIData processes one RFC 8260 I-DATA chunk: the shared TSN
// machinery, then interleaved reassembly keyed by (stream, MID, FSN)
// instead of consecutive TSNs.
func (a *Assoc) handleIData(src netsim.Addr, c *chunk) {
	if !a.useIData {
		// Protocol violation: the peer sent I-DATA without negotiating
		// it. Count and drop, like a chunk for an invalid stream.
		a.stats.ChunksRcvd++
		return
	}
	if !a.acceptTSN(c) {
		return
	}
	a.stats.IDataChunksRcvd++
	a.probeIDataFrag(c)
	a.ireasm.feed(c, func(m *Message) {
		m.Assoc = a.id
		m.Peer = a.peerAddrs[0]
		a.probeDeliverMID(m)
		a.sock.enqueue(m)
	})
}

// completeMessage assembles a reassembled message and delivers it in
// per-stream SSN order. Different streams deliver independently: this
// is the multistreaming property that removes head-of-line blocking.
func (a *Assoc) completeMessage(pm *partialMsg) {
	// Message.Data is a pooled buffer: the receiver (the RPI engine)
	// returns it to the wire pool once the payload has been copied out.
	data := wire.GetBuf(pm.bytes)[:0]
	for tsn := pm.bTSN; ; tsn = tsn.Add(1) {
		f := pm.frags[tsn]
		data = append(data, f.data...)
		if f.buf != nil {
			f.buf.Release()
		}
		if tsn == pm.eTSN {
			break
		}
	}
	a.deliverOrdered(&Message{
		Assoc:  a.id,
		Peer:   a.peerAddrs[0],
		Stream: pm.stream,
		SSN:    uint16(pm.ssn),
		PPID:   pm.ppid,
		Data:   data,
	})
}

// deliverOrdered enqueues a reassembled message in per-stream SSN order,
// draining any messages the arrival unblocks.
func (a *Assoc) deliverOrdered(m *Message) {
	st := int(m.Stream)
	ssn := seqnum.S16(m.SSN)
	if ssn == a.expectedSSN[st] {
		a.probeDeliver(m)
		a.sock.enqueue(m)
		a.expectedSSN[st]++
		for {
			next, ok := a.reorder[st][a.expectedSSN[st]]
			if !ok {
				break
			}
			delete(a.reorder[st], a.expectedSSN[st])
			a.probeDeliver(next)
			a.sock.enqueue(next)
			a.expectedSSN[st]++
		}
	} else {
		a.reorder[st][ssn] = m
	}
}

// creditRwnd returns receive-buffer space after the application reads a
// message, and advertises the opened window when it grew materially.
func (a *Assoc) creditRwnd(n int) {
	a.rcvUsed -= n
	if a.rcvUsed < 0 {
		a.rcvUsed = 0
	}
	if a.state != aEstablished {
		return
	}
	avail := a.cfg.RcvBuf - a.rcvUsed
	threshold := 2 * a.paths[a.primary].mtu
	if a.cfg.RcvBuf/2 < threshold {
		threshold = a.cfg.RcvBuf / 2
	}
	if avail-a.lastRwnd >= threshold {
		a.sendSack()
	}
}

// sackPolicy decides whether to SACK immediately or delay, per RFC
// 4960: immediately when there are gaps or duplicates, otherwise every
// second packet or after the delayed-SACK timer.
func (a *Assoc) sackPolicy() {
	if a.sackNow || len(a.rcvRanges) > 0 || len(a.dupTSNs) > 0 {
		a.sendSack()
		return
	}
	a.pktsNoSack++
	if a.pktsNoSack >= a.cfg.SackEveryPkts {
		a.sendSack()
		return
	}
	if !a.sackTimer.Active() {
		a.sackTimer = a.kernel().After(a.cfg.SackDelay, a.sackFn)
	}
}

// buildSack constructs the SACK chunk for the current receive state.
// Unlike TCP's four-block option limit, the number of gap-ack blocks is
// bounded only by the MTU (paper §4.1.1).
func (a *Assoc) buildSack() *chunk {
	// The SACK is encoded into a packet before the next buildSack call,
	// so one scratch chunk per assoc (with its gap slice) is reused for
	// every SACK instead of allocating each time.
	c := &a.sackScratch
	gaps := c.Gaps[:0]
	*c = chunk{
		Type:      ctSack,
		CumTSNAck: a.cumTSN,
		ARwnd:     uint32(a.cfg.RcvBuf - a.rcvUsed),
		DupTSNs:   a.dupTSNs,
		Gaps:      gaps,
	}
	maxGaps := (a.paths[a.primary].mtu - 20) / 4
	for _, r := range a.rcvRanges {
		if len(c.Gaps) >= maxGaps {
			break
		}
		c.Gaps = append(c.Gaps, gapBlock{
			Start: uint16(r.start.Sub(a.cumTSN)),
			End:   uint16(r.end.Sub(a.cumTSN)),
		})
	}
	return c
}

// sendSack emits a SACK to the source of the most recent data.
func (a *Assoc) sendSack() {
	if a.state == aDone {
		return
	}
	c := a.buildSack()
	a.dupTSNs = nil
	a.pktsNoSack = 0
	a.sackNow = false
	a.sackTimer.Stop()
	a.lastRwnd = int(c.ARwnd)
	a.stats.SacksSent++
	dst := a.lastDataSrc
	if dst == 0 {
		dst = a.paths[a.primary].addr
	}
	src := a.srcFor(dst)
	a.sendChunks(src, dst, []*chunk{c})
}

// srcFor picks the local source address for a peer destination.
func (a *Assoc) srcFor(dst netsim.Addr) netsim.Addr {
	for _, pt := range a.paths {
		if pt.addr == dst {
			return pt.src
		}
	}
	return a.localAddrs[0]
}

// sendChunks transmits a control-only packet.
func (a *Assoc) sendChunks(src, dst netsim.Addr, chunks []*chunk) {
	p := &packet{
		SrcPort:         a.sock.port,
		DstPort:         a.peerPort,
		VerificationTag: a.peerTag,
		Chunks:          chunks,
	}
	a.stats.PacketsSent++
	a.sock.stack.node.Send(netsim.NewPooledPacket(src, dst, netsim.ProtoSCTP, encodePacket(p)))
}

// resetAutoclose restarts the autoclose timer, if configured.
func (a *Assoc) resetAutoclose() {
	if a.cfg.Autoclose <= 0 {
		return
	}
	a.autocloseTimer.Stop()
	a.autocloseTimer = a.kernel().After(a.cfg.Autoclose, func() {
		if a.state == aEstablished && a.outPending() == 0 && len(a.inflight) == 0 {
			a.gracefulClose()
		}
	})
}

// fail terminates the association with an error.
func (a *Assoc) fail(err error, sendAbort bool) {
	if a.state == aDone {
		return
	}
	if sendAbort {
		pt := a.paths[a.primary]
		a.sendChunks(pt.src, pt.addr, []*chunk{{Type: ctAbort, Reason: err.Error()}})
	}
	a.err = err
	a.teardown()
	a.sock.enqueue(&Message{
		Assoc:        a.id,
		Peer:         a.peerAddrs[0],
		Notification: NotifyCommLost,
		Err:          err,
	})
}

// abort is the public-facing abort used by Socket.Abort.
func (a *Assoc) abort(reason string, notifyPeer bool) {
	a.fail(ErrAborted, notifyPeer)
	_ = reason
}

// finish completes a graceful shutdown.
func (a *Assoc) finish() {
	if a.state == aDone {
		return
	}
	a.teardown()
	a.sock.enqueue(&Message{
		Assoc:        a.id,
		Peer:         a.peerAddrs[0],
		Notification: NotifyShutdownComplete,
	})
}

func (a *Assoc) teardown() {
	a.state = aDone
	for key, pm := range a.partial {
		pm.releaseFrags()
		delete(a.partial, key)
	}
	if a.useIData {
		a.ireasm.release()
	}
	// Unacknowledged chunks still hold shares of pooled message buffers.
	// rtxQ is a subset of inflight, and releaseBuf is idempotent, so
	// walking all three queues is safe. Scheduler-queued chunks were
	// never transmitted, so their shares are released here too.
	a.sched.drain(func(oc *outChunk) { oc.releaseBuf() })
	for _, oc := range a.outQ {
		oc.releaseBuf()
	}
	for _, oc := range a.rtxQ {
		oc.releaseBuf()
	}
	for _, oc := range a.inflight {
		oc.releaseBuf()
	}
	a.initTimer.Stop()
	a.sackTimer.Stop()
	a.autocloseTimer.Stop()
	a.shutdownTimer.Stop()
	for _, pt := range a.paths {
		pt.t3.Stop()
		pt.hbTimer.Stop()
	}
	a.sock.removeAssoc(a)
	a.sndCond.Broadcast()
	a.connCond.Broadcast()
}

// gracefulClose initiates the SCTP shutdown sequence. SCTP has no
// half-closed state (paper §3.5.2): both directions stop.
func (a *Assoc) gracefulClose() {
	switch a.state {
	case aEstablished:
		a.state = aShutdownPending
		a.maybeProgressShutdown()
	case aCookieWait, aCookieEchoed:
		a.fail(ErrClosed, true)
	}
}

// maybeProgressShutdown advances the shutdown handshake once all
// outbound data is acknowledged.
func (a *Assoc) maybeProgressShutdown() {
	if a.outPending() != 0 || len(a.rtxQ) != 0 || len(a.inflight) != 0 {
		return
	}
	switch a.state {
	case aShutdownPending:
		a.state = aShutdownSent
		a.sendShutdown()
	case aShutdownReceived:
		a.state = aShutdownAckSent
		a.sendShutdownAck()
	}
}

func (a *Assoc) sendShutdown() {
	pt := a.paths[a.primary]
	a.sendChunks(pt.src, pt.addr, []*chunk{{Type: ctShutdown, CumTSNAck: a.cumTSN}})
	a.armShutdownTimer(func() { a.sendShutdown() })
}

func (a *Assoc) sendShutdownAck() {
	pt := a.paths[a.primary]
	a.sendChunks(pt.src, pt.addr, []*chunk{{Type: ctShutdownAck}})
	a.armShutdownTimer(func() { a.sendShutdownAck() })
}

func (a *Assoc) armShutdownTimer(resend func()) {
	a.shutdownTimer.Stop()
	a.shutdownTimer = a.kernel().After(a.paths[a.primary].rto, func() {
		if a.state != aShutdownSent && a.state != aShutdownAckSent {
			return
		}
		a.shutdownTries++
		if a.shutdownTries > a.cfg.AssocMaxRetrans {
			a.fail(ErrTimeout, true)
			return
		}
		// Back off the RTO per retransmission (RFC 4960 §6.3.3 E2),
		// clamped to RTOMax — the same rule the INIT and T3 timers
		// follow.
		pt := a.paths[a.primary]
		pt.rto *= 2
		if pt.rto > a.cfg.RTOMax {
			pt.rto = a.cfg.RTOMax
		}
		resend()
	})
}

func (a *Assoc) handleShutdown(c *chunk) {
	// The peer will not send more data; ack what we have and finish our
	// own sending.
	a.processSackLikeCum(c.CumTSNAck)
	switch a.state {
	case aEstablished, aShutdownPending:
		a.state = aShutdownReceived
		a.maybeProgressShutdown()
	case aShutdownSent:
		// Simultaneous shutdown: answer with SHUTDOWN-ACK.
		a.state = aShutdownAckSent
		a.sendShutdownAck()
	}
}

func (a *Assoc) handleShutdownAck(src, dst netsim.Addr) {
	switch a.state {
	case aShutdownSent, aShutdownAckSent:
		a.sendChunks(dst, src, []*chunk{{Type: ctShutdownComplete}})
		a.finish()
	}
}

// startHeartbeats arms the heartbeat timer on every path.
func (a *Assoc) startHeartbeats() {
	if a.cfg.HBDisable {
		return
	}
	for i := range a.paths {
		a.armHeartbeat(i)
	}
}

func (a *Assoc) armHeartbeat(i int) {
	pt := a.paths[i]
	// RFC 4960 staggers heartbeats by RTO plus jitter.
	d := a.cfg.HBInterval + pt.rto +
		time.Duration(a.kernel().Rand().Int63n(int64(a.cfg.HBInterval)/2+1))
	pt.hbTimer = a.kernel().After(d, func() { a.fireHeartbeat(i) })
}

func (a *Assoc) fireHeartbeat(i int) {
	if a.state != aEstablished {
		return
	}
	pt := a.paths[i]
	idle := a.kernel().Now()-pt.lastSend >= a.cfg.HBInterval
	if idle && !pt.hbOutstanding {
		pt.hbOutstanding = true
		pt.hbNonce = uint64(a.kernel().Now())
		a.stats.HeartbeatsSent++
		a.sendChunks(pt.src, pt.addr, []*chunk{{
			Type: ctHeartbeat, HBPath: pt.addr, HBNonce: pt.hbNonce,
		}})
		// Treat a missing HEARTBEAT-ACK within RTO as a path error.
		nonce := pt.hbNonce
		a.kernel().After(pt.rto, func() {
			if a.state != aEstablished || !pt.hbOutstanding || pt.hbNonce != nonce {
				return
			}
			pt.hbOutstanding = false
			// A missed heartbeat backs off the path RTO like any other
			// retransmission timeout (RFC 4960 §8.3 / §6.3.3 E2), so
			// successive probes of a dead path space out exponentially
			// up to RTOMax.
			pt.rto *= 2
			if pt.rto > a.cfg.RTOMax {
				pt.rto = a.cfg.RTOMax
			}
			a.pathError(i)
		})
	}
	a.armHeartbeat(i)
}

func (a *Assoc) handleHeartbeatAck(c *chunk) {
	for i, pt := range a.paths {
		if pt.addr == c.HBPath && pt.hbOutstanding && pt.hbNonce == c.HBNonce {
			pt.hbOutstanding = false
			pt.errors = 0
			if !pt.active {
				pt.active = true
				if !a.paths[a.primary].active {
					a.choosePrimary()
				}
			}
			rtt := a.kernel().Now() - time.Duration(c.HBNonce)
			a.updatePathRTT(pt, rtt)
			_ = i
			return
		}
	}
}

// pathError counts an error against a path (and the association),
// deactivating it past Path.Max.Retrans: the failover mechanism of
// paper §3.5.1.
func (a *Assoc) pathError(i int) {
	pt := a.paths[i]
	pt.errors++
	a.assocErrors++
	if pt.errors > a.cfg.PathMaxRetrans && pt.active {
		pt.active = false
		if a.primary == i {
			a.choosePrimary()
		}
	}
	if a.assocErrors > a.cfg.AssocMaxRetrans {
		a.fail(ErrTimeout, false)
	}
}

// choosePrimary fails over to the first active alternate path.
func (a *Assoc) choosePrimary() {
	for i, pt := range a.paths {
		if pt.active && i != a.primary {
			from := a.paths[a.primary].addr
			a.primary = i
			a.stats.Failovers++
			if p := a.cfg.Probe; p != nil && p.Failover != nil {
				p.Failover(a, from, pt.addr)
			}
			return
		}
	}
	// No active alternate: keep the current primary and hope it
	// recovers (heartbeats keep probing).
}

func (a *Assoc) updatePathRTT(pt *path, m time.Duration) {
	if m <= 0 {
		return
	}
	if pt.srtt == 0 {
		pt.srtt = m
		pt.rttvar = m / 2
	} else {
		d := pt.srtt - m
		if d < 0 {
			d = -d
		}
		pt.rttvar = (3*pt.rttvar + d) / 4
		pt.srtt = (7*pt.srtt + m) / 8
	}
	pt.rto = pt.srtt + 4*pt.rttvar
	if pt.rto < a.cfg.RTOMin {
		pt.rto = a.cfg.RTOMin
	}
	if pt.rto > a.cfg.RTOMax {
		pt.rto = a.cfg.RTOMax
	}
}
