package sctp

import (
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// TestFlowControlSlowReader: a receiver that drains slowly must shrink
// its advertised window and stall the sender rather than lose data —
// the §3.2.3 argument: unread messages occupy the receive buffer and
// flow control slows the sender.
func TestFlowControlSlowReader(t *testing.T) {
	cfg := Config{SndBuf: 32 << 10, RcvBuf: 32 << 10, HBDisable: true}
	k, sa, sb, _ := pair(21, lan(), cfg)
	srv, _ := sb.SocketConfig(5000, cfg)
	srv.Listen()
	const msgs, msgSize = 64, 8 << 10
	received := 0
	k.Spawn("server", func(p *sim.Proc) {
		for received < msgs {
			m, err := srv.RecvMsg(p)
			if err != nil {
				return
			}
			if m.Notification != NotifyNone {
				continue
			}
			received++
			p.Sleep(2 * time.Millisecond) // slow consumer
		}
	})
	var sendDone time.Duration
	k.Spawn("client", func(p *sim.Proc) {
		cli, _ := sa.SocketConfig(0, cfg)
		id, err := cli.Connect(p, []netsim.Addr{netsim.MakeAddr(0, 2)}, 5000, 0)
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < msgs; i++ {
			if err := cli.SendMsg(p, id, 0, 0, make([]byte, msgSize)); err != nil {
				t.Error(err)
				return
			}
		}
		sendDone = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if received != msgs {
		t.Fatalf("received %d of %d", received, msgs)
	}
	// 64 × 8 KiB into a 32 KiB window drained at 2 ms per message: the
	// sender must have been flow-controlled for most of the run.
	if sendDone < 60*time.Millisecond {
		t.Errorf("sender finished at %v; flow control should have stalled it", sendDone)
	}
}

// TestZeroWindowProbe: when the peer advertises zero window, the sender
// keeps exactly one chunk probing so progress resumes once the reader
// drains (no deadlock, no flood).
func TestZeroWindowProbe(t *testing.T) {
	cfg := Config{SndBuf: 64 << 10, RcvBuf: 8 << 10, HBDisable: true}
	k, sa, sb, _ := pair(22, lan(), cfg)
	srv, _ := sb.SocketConfig(5000, cfg)
	srv.Listen()
	var got int
	k.Spawn("server", func(p *sim.Proc) {
		// Do not read anything for a long time, then drain.
		p.Sleep(2 * time.Second)
		for got < 10 {
			m, err := srv.RecvMsg(p)
			if err != nil {
				return
			}
			if m.Notification == NotifyNone {
				got++
			}
		}
	})
	k.Spawn("client", func(p *sim.Proc) {
		cli, _ := sa.SocketConfig(0, cfg)
		id, err := cli.Connect(p, []netsim.Addr{netsim.MakeAddr(0, 2)}, 5000, 0)
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < 10; i++ {
			if err := cli.SendMsg(p, id, 0, 0, make([]byte, 4<<10)); err != nil {
				t.Error(err)
				return
			}
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 10 {
		t.Fatalf("delivered %d of 10 through a zero-window episode", got)
	}
}

// TestDuplicateReporting: retransmissions that were not lost must be
// counted as duplicates at the receiver (dup TSN reporting exists).
func TestDuplicateReporting(t *testing.T) {
	lp := lan()
	lp.LossRate = 0.05
	cfg := Config{SndBuf: 220 << 10, RcvBuf: 220 << 10, HBDisable: true}
	k, sa, sb, _ := pair(23, lp, cfg)
	srv, _ := sb.SocketConfig(5000, cfg)
	srv.Listen()
	var srvAssoc *Assoc
	n := 0
	k.Spawn("server", func(p *sim.Proc) {
		for n < 40 {
			m, err := srv.RecvMsg(p)
			if err != nil {
				return
			}
			if m.Notification == NotifyNone {
				n++
			}
			if srvAssoc == nil {
				srvAssoc = srv.Assoc(m.Assoc)
			}
		}
	})
	k.Spawn("client", func(p *sim.Proc) {
		cli, _ := sa.SocketConfig(0, cfg)
		id, err := cli.Connect(p, []netsim.Addr{netsim.MakeAddr(0, 2)}, 5000, 0)
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < 40; i++ {
			if err := cli.SendMsg(p, id, 0, 0, make([]byte, 8<<10)); err != nil {
				t.Error(err)
				return
			}
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if n != 40 {
		t.Fatalf("delivered %d of 40", n)
	}
	// At 5% loss, T3/fast-retransmit races make some duplicates all but
	// certain over ~240 chunks; mostly we assert the counter plumbing
	// does not panic and the association survived.
}

// TestBundlingSmallMessages: many small messages sent back-to-back must
// share packets (chunk bundling), so packets << chunks.
func TestBundlingSmallMessages(t *testing.T) {
	cfg := Config{HBDisable: true}
	k, sa, sb, _ := pair(24, lan(), cfg)
	srv, _ := sb.SocketConfig(5000, cfg)
	srv.Listen()
	const msgs = 200
	n := 0
	k.Spawn("server", func(p *sim.Proc) {
		for n < msgs {
			m, err := srv.RecvMsg(p)
			if err != nil {
				return
			}
			if m.Notification == NotifyNone {
				n++
			}
		}
	})
	var st Stats
	k.Spawn("client", func(p *sim.Proc) {
		cli, _ := sa.SocketConfig(0, cfg)
		id, err := cli.Connect(p, []netsim.Addr{netsim.MakeAddr(0, 2)}, 5000, 0)
		if err != nil {
			t.Error(err)
			return
		}
		a := cli.Assoc(id)
		for i := 0; i < msgs; i++ {
			if err := cli.SendMsg(p, id, uint16(i%10), 0, make([]byte, 64)); err != nil {
				t.Error(err)
				return
			}
		}
		// Snapshot before close tears the association down.
		for a.totalFlight() > 0 {
			p.Sleep(time.Millisecond)
		}
		st = a.Statistics()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if st.ChunksSent != msgs {
		t.Fatalf("chunks sent = %d, want %d", st.ChunksSent, msgs)
	}
	if st.PacketsSent >= st.ChunksSent {
		t.Errorf("no bundling: %d packets for %d chunks", st.PacketsSent, st.ChunksSent)
	}
}

// TestFragmentationBoundaries: messages at exact multiples of the
// fragment payload reassemble correctly.
func TestFragmentationBoundaries(t *testing.T) {
	cfg := Config{SndBuf: 220 << 10, RcvBuf: 220 << 10, HBDisable: true}
	k, sa, sb, _ := pair(25, lan(), cfg)
	srv, _ := sb.SocketConfig(5000, cfg)
	srv.Listen()
	frag := 1500 - 20 - commonHeaderSize - dataChunkHeaderSize
	sizes := []int{1, frag - 1, frag, frag + 1, 2 * frag, 2*frag + 1, 10 * frag}
	var got [][]byte
	k.Spawn("server", func(p *sim.Proc) {
		for len(got) < len(sizes) {
			m, err := srv.RecvMsg(p)
			if err != nil {
				return
			}
			if m.Notification == NotifyNone {
				got = append(got, m.Data)
			}
		}
	})
	k.Spawn("client", func(p *sim.Proc) {
		cli, _ := sa.SocketConfig(0, cfg)
		id, err := cli.Connect(p, []netsim.Addr{netsim.MakeAddr(0, 2)}, 5000, 0)
		if err != nil {
			t.Error(err)
			return
		}
		for _, sz := range sizes {
			buf := make([]byte, sz)
			for i := range buf {
				buf[i] = byte(sz + i)
			}
			if err := cli.SendMsg(p, id, 0, 0, buf); err != nil {
				t.Error(err)
				return
			}
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, sz := range sizes {
		if len(got[i]) != sz {
			t.Fatalf("message %d: %d bytes, want %d", i, len(got[i]), sz)
		}
		for j := range got[i] {
			if got[i][j] != byte(sz+j) {
				t.Fatalf("message %d corrupt at %d", i, j)
			}
		}
	}
}

// TestHeartbeatRTTAndRecovery: a path marked inactive recovers when
// heartbeats resume being answered.
func TestHeartbeatPathRecovery(t *testing.T) {
	cfg := Config{
		HBInterval:      300 * time.Millisecond,
		PathMaxRetrans:  1,
		RTOMin:          100 * time.Millisecond,
		RTOInitial:      100 * time.Millisecond,
		AssocMaxRetrans: 1000, // keep the association alive through the outage
	}
	k, sa, sb, net, nodes := mpair(26, lan(), cfg)
	srv, _ := sb.SocketConfig(5000, cfg)
	srv.Listen()
	k.Spawn("server", func(p *sim.Proc) {
		for {
			if _, err := srv.RecvMsg(p); err != nil {
				return
			}
		}
	})
	k.Spawn("client", func(p *sim.Proc) {
		cli, _ := sa.SocketConfig(0, cfg)
		id, err := cli.Connect(p, nodes[1].Addrs(), 5000, 0)
		if err != nil {
			t.Error(err)
			return
		}
		a := cli.Assoc(id)
		primary := nodes[1].Addrs()[0]
		// Kill subnet 0; heartbeats must mark the path inactive.
		net.SetSubnetDown(0, true)
		for i := 0; a.PathActive(primary) && i < 200; i++ {
			p.Sleep(100 * time.Millisecond)
		}
		if a.PathActive(primary) {
			t.Error("path never went inactive")
		}
		// Restore; heartbeats must bring it back.
		net.SetSubnetDown(0, false)
		for i := 0; !a.PathActive(primary) && i < 400; i++ {
			p.Sleep(100 * time.Millisecond)
		}
		if !a.PathActive(primary) {
			t.Error("path never recovered")
		}
		cli.Close()
		srv.Close()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}
