package sctp

import (
	"fmt"
	"testing"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// TestChecksumDropsCorruptedPackets runs a transfer over a link that
// flips one bit in 15% of packets, with CRC32c verification on. Every
// corrupted packet must be caught by the checksum (CRC32c detects all
// single-bit errors) and dropped — counted, not delivered — and the
// transfer must still complete intact via retransmission.
func TestChecksumDropsCorruptedPackets(t *testing.T) {
	lp := lan()
	lp.CorruptRate = 0.15
	k, sa, sb, net := pair(3, lp, Config{ChecksumVerify: true})
	srv, _ := sb.SocketConfig(5000, Config{ChecksumVerify: true})
	srv.Listen()

	const msgs = 60
	got := 0
	k.Spawn("server", func(p *sim.Proc) {
		for got < msgs {
			m, err := srv.RecvMsg(p)
			if err != nil {
				t.Error(err)
				return
			}
			if m.Notification != NotifyNone {
				continue
			}
			if want := fmt.Sprintf("msg-%04d", got); string(m.Data) != want {
				t.Errorf("message %d arrived as %q", got, m.Data)
			}
			got++
		}
	})
	k.Spawn("client", func(p *sim.Proc) {
		cli, _ := sa.Socket(0)
		id, err := cli.Connect(p, []netsim.Addr{netsim.MakeAddr(0, 2)}, 5000, 10)
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < msgs; i++ {
			if err := cli.SendMsg(p, id, 0, 0, []byte(fmt.Sprintf("msg-%04d", i))); err != nil {
				t.Error(err)
				return
			}
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got != msgs {
		t.Fatalf("delivered %d of %d messages", got, msgs)
	}
	if net.Stats.PacketsCorrupted == 0 {
		t.Fatal("no packets corrupted at 15% corrupt rate")
	}
	drops := sa.Stats.ChecksumDrops + sb.Stats.ChecksumDrops
	if drops != net.Stats.PacketsCorrupted {
		t.Fatalf("checksum drops %d != corrupted packets %d (corruption slipped through or was double-counted)",
			drops, net.Stats.PacketsCorrupted)
	}
	if sa.Stats.DecodeDrops+sb.Stats.DecodeDrops != 0 {
		t.Fatalf("unexpected decode drops with verification on")
	}
}

// TestCorruptionSlipsThroughWithoutVerify is the control: with CRC32c
// verification off (the paper's kernel setting for a clean LAN), a
// corrupted packet is not caught at the SCTP layer.
func TestCorruptionSlipsThroughWithoutVerify(t *testing.T) {
	lp := lan()
	lp.CorruptRate = 0.15
	k, sa, sb, net := pair(3, lp, Config{})
	srv, _ := sb.SocketConfig(5000, Config{})
	srv.Listen()
	k.Spawn("server", func(p *sim.Proc) {
		for i := 0; i < 20; i++ {
			if _, err := srv.RecvMsg(p); err != nil {
				return
			}
		}
	})
	k.Spawn("client", func(p *sim.Proc) {
		cli, _ := sa.Socket(0)
		id, err := cli.Connect(p, []netsim.Addr{netsim.MakeAddr(0, 2)}, 5000, 10)
		if err != nil {
			return
		}
		for i := 0; i < 20; i++ {
			if err := cli.SendMsg(p, id, 0, 0, make([]byte, 64)); err != nil {
				return
			}
		}
	})
	// The run may or may not deadlock depending on where the bit flips
	// land (a corrupted length field can wedge a chunk); either way,
	// nothing is allowed to be dropped *by the checksum*.
	_ = k.Run()
	if net.Stats.PacketsCorrupted == 0 {
		t.Fatal("no packets corrupted at 15% corrupt rate")
	}
	if sa.Stats.ChecksumDrops+sb.Stats.ChecksumDrops != 0 {
		t.Fatalf("checksum drops with verification off")
	}
}
