package sctp

import (
	"repro/internal/seqnum"
	"repro/internal/transport"
	"repro/internal/wire"
)

// trySend fragments and queues one user message, or reports why it
// cannot: ErrMsgSize when the message exceeds the send buffer (forcing
// middleware-level chunking, paper §3.4/§3.6) and ErrWouldBlock when
// there is no space now.
func (a *Assoc) trySend(stream uint16, ppid uint32, data []byte) error {
	switch a.state {
	case aDone:
		if a.err != nil {
			return a.err
		}
		return ErrClosed
	case aShutdownPending, aShutdownSent, aShutdownReceived, aShutdownAckSent:
		return ErrClosed
	case aCookieWait, aCookieEchoed:
		return ErrWouldBlock // not yet established
	}
	if int(stream) >= a.numOut {
		return ErrBadStream
	}
	if len(data) > a.cfg.SndBuf {
		return ErrMsgSize
	}
	if a.sndUsed+len(data) > a.cfg.SndBuf {
		return ErrWouldBlock
	}
	if a.useIData {
		a.enqueueIData(stream, ppid, data)
		return nil
	}
	ssn := seqnum.S16(a.outSSN[stream])
	a.outSSN[stream]++
	maxSeg := a.paths[a.primary].mtu - dataChunkHeaderSize
	// Copy: sendmsg semantics let the caller reuse its buffer as soon
	// as the call returns, but chunks live on until acknowledged. The
	// copy goes into a pooled buffer shared by all fragments and
	// recycled once every chunk is acknowledged (or the assoc dies).
	mb := &msgBuf{b: wire.GetBuf(len(data))}
	copy(mb.b, data)
	rest := mb.b
	nfrags := (len(data) + maxSeg - 1) / maxSeg
	if nfrags == 0 {
		nfrags = 1
	}
	// One slab for the whole message's chunks rather than an allocation
	// per fragment.
	ocs := make([]outChunk, nfrags)
	for i := 0; i < nfrags; i++ {
		n := len(rest)
		if n > maxSeg {
			n = maxSeg
		}
		var flags uint8
		if i == 0 {
			flags |= flagBeginFragment
		}
		if n == len(rest) {
			flags |= flagEndFragment
		}
		mb.refs++
		ocs[i] = outChunk{
			c: chunk{
				Type:   ctData,
				Flags:  flags,
				TSN:    a.nextTSN,
				Stream: stream,
				SSN:    ssn,
				PPID:   ppid,
				Data:   rest[:n:n],
			},
			mb:   mb,
			size: n,
		}
		a.outQ = append(a.outQ, &ocs[i])
		a.nextTSN = a.nextTSN.Add(1)
		rest = rest[n:]
	}
	a.sndUsed += len(data)
	a.sock.Stats.MsgsSent++
	a.sock.Stats.BytesSent += int64(len(data))
	a.transmit()
	return nil
}

// enqueueIData fragments one user message into I-DATA chunks (RFC
// 8260): the message takes the stream's next MID, fragments are
// numbered by FSN from 0, and the chunks go to the stream scheduler
// rather than the global outQ. TSNs are assigned later, at transmit
// time, because the scheduler may interleave streams.
func (a *Assoc) enqueueIData(stream uint16, ppid uint32, data []byte) {
	mid := a.outMID[stream]
	a.outMID[stream] = mid.Add(1)
	maxSeg := a.paths[a.primary].mtu - iDataChunkHeaderSize
	mb := &msgBuf{b: wire.GetBuf(len(data))}
	copy(mb.b, data)
	rest := mb.b
	nfrags := (len(data) + maxSeg - 1) / maxSeg
	if nfrags == 0 {
		nfrags = 1
	}
	ocs := make([]outChunk, nfrags)
	for i := 0; i < nfrags; i++ {
		n := len(rest)
		if n > maxSeg {
			n = maxSeg
		}
		var flags uint8
		if i == 0 {
			flags |= flagBeginFragment
		}
		if n == len(rest) {
			flags |= flagEndFragment
		}
		mb.refs++
		ocs[i] = outChunk{
			c: chunk{
				Type:   ctIData,
				Flags:  flags,
				Stream: stream,
				MID:    mid,
				FSN:    seqnum.FSN(uint32(i)),
				PPID:   ppid,
				Data:   rest[:n:n],
			},
			mb:   mb,
			size: n,
		}
		a.sched.push(stream, &ocs[i])
		rest = rest[n:]
	}
	a.sndUsed += len(data)
	a.sock.Stats.MsgsSent++
	a.sock.Stats.BytesSent += int64(len(data))
	a.transmit()
}

// dataHdrSize returns the wire header size of this association's data
// chunks (DATA or I-DATA), used when bundling to the MTU.
func (a *Assoc) dataHdrSize() int {
	if a.useIData {
		return iDataChunkHeaderSize
	}
	return dataChunkHeaderSize
}

// peekOut returns (reserving, without dequeuing) the next never-sent
// chunk, or nil when none is queued.
func (a *Assoc) peekOut() *outChunk {
	if len(a.outQ) > 0 {
		return a.outQ[0]
	}
	if a.sched != nil {
		return a.sched.peek()
	}
	return nil
}

// popOut dequeues the next never-sent chunk. In I-DATA mode the chunk
// takes its TSN here — at transmit time — so TSN order equals wire
// order even when the scheduler interleaves streams; SACK gap and
// missing-report accounting depend on that.
func (a *Assoc) popOut() *outChunk {
	if len(a.outQ) > 0 {
		oc := a.outQ[0]
		a.outQ = a.outQ[1:]
		return oc
	}
	if a.sched == nil {
		return nil
	}
	oc := a.sched.pop()
	if oc != nil {
		oc.c.TSN = a.nextTSN
		a.nextTSN = a.nextTSN.Add(1)
	}
	return oc
}

// activePath returns the path to transmit new data on: the primary if
// active, else the first active alternate.
func (a *Assoc) activePath() int {
	if a.paths[a.primary].active {
		return a.primary
	}
	for i, pt := range a.paths {
		if pt.active {
			return i
		}
	}
	return a.primary // nothing active; keep trying the primary
}

// rtxPath returns the path for retransmissions: an active path other
// than avoid when one exists (SCTP's retransmission policy, which the
// paper credits for throughput under loss when multihomed).
func (a *Assoc) rtxPath(avoid int) int {
	for i, pt := range a.paths {
		if pt.active && i != avoid {
			return i
		}
	}
	return a.activePath()
}

// totalFlight returns outstanding bytes across all paths.
func (a *Assoc) totalFlight() int {
	n := 0
	for _, pt := range a.paths {
		n += pt.flight
	}
	return n
}

// transmit pushes retransmissions first, then new data, bundling
// chunks up to the path MTU per packet.
func (a *Assoc) transmit() {
	if a.state == aDone || len(a.paths) == 0 {
		return
	}
	a.sendRetransmissions()
	a.sendNewData()
	a.maybeProgressShutdown()
}

// sendRetransmissions drains the retransmission queue. The first
// retransmission packet is exempt from cwnd (RFC 4960 fast-retransmit
// rule); subsequent packets respect the window of their path.
func (a *Assoc) sendRetransmissions() {
	hdr := a.dataHdrSize()
	exempt := true
	for len(a.rtxQ) > 0 {
		oc := a.rtxQ[0]
		if oc.sacked || oc.c.TSN.LessEq(a.lastCumAcked()) {
			oc.inRtxQ = false
			a.rtxQ = a.rtxQ[1:]
			continue
		}
		pi := a.rtxPath(oc.pathIdx)
		pt := a.paths[pi]
		if !exempt && pt.flight >= pt.cwnd {
			break
		}
		var batch []*outChunk
		size := 0
		for len(a.rtxQ) > 0 {
			oc := a.rtxQ[0]
			if oc.sacked {
				oc.inRtxQ = false
				a.rtxQ = a.rtxQ[1:]
				continue
			}
			if size+hdr+oc.size > pt.mtu && len(batch) > 0 {
				break
			}
			oc.inRtxQ = false
			a.rtxQ = a.rtxQ[1:]
			batch = append(batch, oc)
			size += hdr + oc.size
		}
		if len(batch) == 0 {
			break
		}
		a.sendDataPacket(pi, batch, true)
		exempt = false
	}
}

// pickCMTPath returns the next active path with congestion window
// space, rotating round-robin so new data stripes across all paths
// (Concurrent Multipath Transfer). Returns -1 when every path is full.
func (a *Assoc) pickCMTPath() int {
	n := len(a.paths)
	for i := 0; i < n; i++ {
		pi := (a.cmtNext + i) % n
		pt := a.paths[pi]
		if pt.active && pt.flight < pt.cwnd {
			a.cmtNext = (pi + 1) % n
			return pi
		}
	}
	return -1
}

// sendNewData transmits never-sent chunks within cwnd and peer rwnd.
// Chunks come from the legacy outQ or, in I-DATA mode, from the stream
// scheduler (which decides the interleaving order).
func (a *Assoc) sendNewData() {
	hdr := a.dataHdrSize()
	for a.outPending() > 0 {
		var pi int
		if a.cfg.CMT {
			pi = a.pickCMTPath()
			if pi < 0 {
				return
			}
		} else {
			pi = a.activePath()
		}
		pt := a.paths[pi]
		if pt.flight >= pt.cwnd {
			return
		}
		// Zero-window probe: when the peer advertises no space, keep
		// exactly one chunk in flight.
		probe := false
		if a.peerRwnd < a.peekOut().size {
			if a.totalFlight() > 0 {
				return
			}
			probe = true
		}
		var batch []*outChunk
		size := 0
		budget := pt.cwnd - pt.flight
		for {
			oc := a.peekOut()
			if oc == nil {
				break
			}
			if size+hdr+oc.size > pt.mtu && len(batch) > 0 {
				break
			}
			if len(batch) > 0 && (size+oc.size > budget || (a.peerRwnd < size+oc.size && !probe)) {
				break
			}
			a.popOut()
			batch = append(batch, oc)
			size += hdr + oc.size
			if probe {
				break
			}
		}
		if len(batch) == 0 {
			return
		}
		a.sendDataPacket(pi, batch, false)
		if probe {
			return
		}
	}
}

// lastCumAcked returns the highest cumulatively acked TSN.
func (a *Assoc) lastCumAcked() seqnum.V {
	if len(a.inflight) > 0 {
		return a.inflight[0].c.TSN.Add(^uint32(0)) // first outstanding - 1
	}
	return a.nextTSN.Add(^uint32(0))
}

// sendDataPacket bundles the batch (plus any pending SACK) into one
// packet on path pi.
func (a *Assoc) sendDataPacket(pi int, batch []*outChunk, isRtx bool) {
	pt := a.paths[pi]
	chunks := make([]*chunk, 0, len(batch)+1)
	// Piggyback a pending SACK (bundling, Figure 1 of the paper).
	if a.sackNow || a.sackTimer.Active() {
		chunks = append(chunks, a.buildSack())
		a.dupTSNs = nil
		a.pktsNoSack = 0
		a.sackNow = false
		a.sackTimer.Stop()
		a.stats.SacksSent++
	}
	for _, oc := range batch {
		oc.pathIdx = pi
		oc.transmits++
		oc.sacked = false
		oc.inFlight = true
		pt.flight += oc.size
		if !isRtx {
			a.peerRwnd -= oc.size
			if a.peerRwnd < 0 {
				a.peerRwnd = 0
			}
			a.inflight = append(a.inflight, oc)
		} else {
			a.stats.Retransmits++
			if pt.rttActive && pt.rttTSN == oc.c.TSN {
				pt.rttActive = false // Karn
			}
		}
		chunks = append(chunks, &oc.c)
		a.stats.ChunksSent++
		if oc.c.Type == ctIData {
			a.stats.IDataChunksSent++
		}
		a.stats.BytesSent += int64(oc.size)
	}
	if !isRtx && !pt.rttActive && len(batch) > 0 {
		pt.rttActive = true
		pt.rttTSN = batch[0].c.TSN
		pt.rttStart = a.kernel().Now()
	}
	pt.lastSend = a.kernel().Now()
	a.sendChunks(pt.src, pt.addr, chunks)
	a.armT3(pi)
}

// armT3 starts the retransmission timer on path pi if not running.
func (a *Assoc) armT3(pi int) {
	pt := a.paths[pi]
	if pt.t3.Active() {
		return
	}
	pt.t3 = a.kernel().After(pt.rto, pt.t3Fn)
}

func (a *Assoc) restartT3(pi int) {
	a.paths[pi].t3.Stop()
	a.armT3(pi)
}

// debugT3, when set, observes T3 expiries (test instrumentation).
var debugT3 func(a *Assoc, pi int)

// onT3 handles retransmission timeout on path pi: back off, collapse
// the window to one MTU, and queue everything outstanding on that path
// for retransmission (on an alternate path when available).
func (a *Assoc) onT3(pi int) {
	if a.state == aDone {
		return
	}
	pt := a.paths[pi]
	if pt.flight == 0 {
		return
	}
	a.stats.T3Expiries++
	if debugT3 != nil {
		debugT3(a, pi)
	}
	a.pathError(pi)
	if a.state == aDone {
		return
	}
	pt.ssthresh = pt.cwnd / 2
	if pt.ssthresh < 4*pt.mtu {
		pt.ssthresh = 4 * pt.mtu
	}
	pt.cwnd = pt.mtu
	pt.pba = 0
	pt.inFastRec = false
	pt.rto *= 2
	if pt.rto > a.cfg.RTOMax {
		pt.rto = a.cfg.RTOMax
	}
	pt.rttActive = false
	// Requeue everything outstanding on this path. Their bytes leave
	// flight here (pt.flight = 0 below), so mark each chunk accordingly:
	// a SACK for the original transmission must not decrement flight a
	// second time.
	for _, oc := range a.inflight {
		if oc.pathIdx != pi {
			continue
		}
		oc.inFlight = false
		if !oc.sacked && !oc.inRtxQ {
			oc.inRtxQ = true
			a.rtxQ = append(a.rtxQ, oc)
		}
	}
	pt.flight = 0
	a.probeCwnd(pt)
	a.transmit()
	a.sock.fireNotify(a.id, transport.ReadySend)
}

// processSackLikeCum applies the cumulative-ack information carried on
// a SHUTDOWN chunk.
func (a *Assoc) processSackLikeCum(cum seqnum.V) {
	a.processSack(&chunk{Type: ctSack, CumTSNAck: cum, ARwnd: uint32(a.peerRwnd)})
}

// processSack is the sender-side heart of SCTP loss recovery.
func (a *Assoc) processSack(c *chunk) {
	if a.state == aDone {
		return
	}
	cum := c.CumTSNAck
	ackedPerPath := make(map[int]int)
	newlyAcked := false

	// Cumulative acknowledgment.
	for len(a.inflight) > 0 && a.inflight[0].c.TSN.LessEq(cum) {
		oc := a.inflight[0]
		a.inflight = a.inflight[1:]
		pt := a.paths[oc.pathIdx]
		if oc.inFlight {
			oc.inFlight = false
			pt.flight -= oc.size
			if pt.flight < 0 {
				pt.flight = 0
			}
			ackedPerPath[oc.pathIdx] += oc.size
		}
		oc.sacked = true // fully acked; a sacked chunk is never sent again
		oc.releaseBuf()
		a.sndUsed -= oc.size
		newlyAcked = true
		if pt.rttActive && oc.c.TSN.GreaterEq(pt.rttTSN) {
			pt.rttActive = false
			if oc.transmits == 1 {
				a.updatePathRTT(pt, a.kernel().Now()-pt.rttStart)
			}
		}
	}

	// Gap-ack blocks: first mark SACKed chunks (recording, per path, the
	// highest TSN newly acknowledged), then count missing reports.
	var highestSacked seqnum.V
	haveGaps := len(c.Gaps) > 0
	if haveGaps {
		highestSacked = cum.Add(uint32(c.Gaps[len(c.Gaps)-1].End))
		newlySackedHigh := make(map[int]seqnum.V)
		for _, oc := range a.inflight {
			tsn := oc.c.TSN
			inGap := false
			for _, g := range c.Gaps {
				if tsn.GreaterEq(cum.Add(uint32(g.Start))) && tsn.LessEq(cum.Add(uint32(g.End))) {
					inGap = true
					break
				}
			}
			if !inGap {
				continue
			}
			if hi, ok := newlySackedHigh[oc.pathIdx]; !ok || tsn.Greater(hi) {
				newlySackedHigh[oc.pathIdx] = tsn
			}
			if !oc.sacked {
				oc.sacked = true
				oc.releaseBuf()
				pt := a.paths[oc.pathIdx]
				if oc.inFlight {
					oc.inFlight = false
					pt.flight -= oc.size
					if pt.flight < 0 {
						pt.flight = 0
					}
				}
				if pt.rttActive && tsn.GreaterEq(pt.rttTSN) {
					pt.rttActive = false
					if oc.transmits == 1 {
						a.updatePathRTT(pt, a.kernel().Now()-pt.rttStart)
					}
				}
			}
		}
		for _, oc := range a.inflight {
			if oc.sacked || oc.inRtxQ {
				continue
			}
			tsn := oc.c.TSN
			evidence := tsn.Less(highestSacked)
			if a.cfg.CMT {
				// Split fast retransmit: with data striped across paths,
				// a gap report only indicates loss if a *later TSN on
				// the same path* was acknowledged; cross-path reordering
				// is expected and must not trigger retransmissions.
				hi, ok := newlySackedHigh[oc.pathIdx]
				evidence = ok && tsn.Less(hi)
			}
			if evidence {
				oc.missing++
				if oc.missing >= a.cfg.FastRtxThreshold {
					a.markFastRtx(oc)
				}
			}
		}
	}

	if newlyAcked {
		a.assocErrors = 0
	}

	// Congestion window growth (byte counting — the paper's §4.1.1
	// contrast with TCP's ack counting) and fast-recovery exit. Paths
	// iterate in index order so probe callbacks fire deterministically.
	for pi := range a.paths {
		bytes, acked := ackedPerPath[pi]
		if !acked {
			continue
		}
		pt := a.paths[pi]
		pt.errors = 0
		if !pt.active {
			pt.active = true
		}
		if pt.inFastRec {
			if cum.GreaterEq(pt.recoverTSN) {
				pt.inFastRec = false
			} else {
				continue
			}
		}
		if pt.cwnd <= pt.ssthresh {
			// Slow start: grow by bytes acked, at most one MTU per SACK
			// (RFC 4960 byte counting). The ablation switch reverts to
			// TCP-style per-ACK growth halved by delayed SACKs.
			inc := bytes
			if inc > pt.mtu {
				inc = pt.mtu
			}
			if a.cfg.AckCountingCwnd {
				inc = pt.mtu / 2
			}
			pt.cwnd += inc
		} else {
			pt.pba += bytes
			if pt.pba >= pt.cwnd {
				pt.pba -= pt.cwnd
				pt.cwnd += pt.mtu
			}
		}
		max := a.cfg.SndBuf + pt.mtu
		if pt.cwnd > max {
			pt.cwnd = max
		}
		a.probeCwnd(pt)
	}

	// Peer receive window: advertised minus what is still in flight.
	a.peerRwnd = int(c.ARwnd) - a.outstandingUnsacked()
	if a.peerRwnd < 0 {
		a.peerRwnd = 0
	}

	// Retransmission timers.
	for pi, pt := range a.paths {
		if pt.flight == 0 && len(a.rtxQ) == 0 {
			pt.t3.Stop()
		} else if pt.flight > 0 && newlyAcked {
			a.restartT3(pi)
		}
	}

	if newlyAcked {
		a.sndCond.Broadcast()
		a.sock.fireNotify(a.id, transport.ReadySend)
	}
	a.transmit()
}

// markFastRtx queues a chunk for fast retransmission, entering fast
// recovery on its path (halving once per recovery epoch).
func (a *Assoc) markFastRtx(oc *outChunk) {
	a.stats.FastRetransmits++
	pt := a.paths[oc.pathIdx]
	if !pt.inFastRec {
		pt.ssthresh = pt.cwnd / 2
		if pt.ssthresh < 4*pt.mtu {
			pt.ssthresh = 4 * pt.mtu
		}
		pt.cwnd = pt.ssthresh
		pt.pba = 0
		pt.inFastRec = true
		pt.recoverTSN = a.nextTSN.Add(^uint32(0))
	}
	// The chunk is no longer considered in flight on its path.
	if oc.inFlight {
		oc.inFlight = false
		pt.flight -= oc.size
		if pt.flight < 0 {
			pt.flight = 0
		}
	}
	oc.missing = 0
	oc.inRtxQ = true
	a.rtxQ = append(a.rtxQ, oc)
	a.probeCwnd(pt)
}

// outstandingUnsacked returns in-flight bytes not yet sacked.
func (a *Assoc) outstandingUnsacked() int {
	n := 0
	for _, oc := range a.inflight {
		if !oc.sacked && !oc.inRtxQ {
			n += oc.size
		}
	}
	return n
}
