package sctp

import (
	"errors"

	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/transport"
)

// Socket satisfies the shared nonblocking endpoint contract.
var _ transport.Endpoint = (*Socket)(nil)

// AssocID identifies an association on a one-to-many socket, as in the
// sctp_recvmsg/sctp_sendmsg API.
type AssocID int64

// NotificationType distinguishes in-band notifications from user data,
// mirroring SCTP_ASSOC_CHANGE events.
type NotificationType int

// Notification kinds delivered in-band on the socket receive queue.
const (
	NotifyNone NotificationType = iota // a data message
	NotifyCommUp
	NotifyCommLost
	NotifyShutdownComplete
	// NotifyRestart reports an RFC 4960 §5.2 association restart: the
	// peer's endpoint came back and re-handshook in place. The AssocID
	// is unchanged but all transfer state (TSNs, SSNs, queues) has been
	// reset; the application must discard per-association reassembly
	// state and expect the peer to replay.
	NotifyRestart
)

// Message is what RecvMsg returns: either user data (Notification ==
// NotifyNone) or an association event.
type Message struct {
	Assoc        AssocID
	Peer         netsim.Addr
	Stream       uint16
	SSN          uint16
	MID          uint32 // message ID when delivered via I-DATA (RFC 8260)
	PPID         uint32
	Data         []byte
	Notification NotificationType
	Err          error
}

type addrPort struct {
	addr netsim.Addr
	port uint16
}

// Socket is a one-to-many SCTP socket: one descriptor that communicates
// with any number of associations, as used by the paper's SCTP RPI.
type Socket struct {
	stack     *Stack
	port      uint16
	cfg       Config
	listening bool
	closed    bool

	assocs map[addrPort]*Assoc // by every peer (address, port)
	byID   map[AssocID]*Assoc

	rq       []*Message
	rcvCond  *sim.Cond
	notify   func(transport.Ready)
	notifyBy map[AssocID]func(transport.Ready)

	// Stats aggregates across all associations on the socket.
	Stats SocketStats
}

// SocketStats counts socket-level events.
type SocketStats struct {
	MsgsSent     int64
	MsgsRcvd     int64
	BytesSent    int64
	BytesRcvd    int64
	AssocsOpened int64
	AssocsClosed int64
}

// Socket creates a one-to-many socket bound to port (0 selects an
// ephemeral port) with the stack's default configuration.
func (s *Stack) Socket(port uint16) (*Socket, error) {
	return s.SocketConfig(port, s.cfg)
}

// SocketConfig creates a one-to-many socket with explicit config.
func (s *Stack) SocketConfig(port uint16, cfg Config) (*Socket, error) {
	if port == 0 {
		port = s.ephemeralPort()
	}
	if _, ok := s.socks[port]; ok {
		return nil, ErrPortInUse
	}
	sk := &Socket{
		stack:   s,
		port:    port,
		cfg:     cfg.withDefaults(),
		assocs:  make(map[addrPort]*Assoc),
		byID:    make(map[AssocID]*Assoc),
		rcvCond: sim.NewCond(s.kernel()),
	}
	s.socks[port] = sk
	return sk, nil
}

// Port returns the socket's bound port.
func (sk *Socket) Port() uint16 { return sk.port }

// Config returns the socket configuration.
func (sk *Socket) Config() Config { return sk.cfg }

// Listen enables acceptance of inbound associations.
func (sk *Socket) Listen() { sk.listening = true }

// SetNotify registers fn to be invoked (in kernel context) whenever the
// socket becomes readable/writable or an association changes state. The
// hook is edge-triggered: one call may stand for many queued messages,
// so consumers must drain until would-block. Events for associations
// with a per-association hook (SetAssocNotify) do not reach fn.
func (sk *Socket) SetNotify(fn func(transport.Ready)) { sk.notify = fn }

// SetAssocNotify registers fn for events belonging to one association —
// the routing a one-to-one Conn needs when it shares a listening
// socket with its siblings. A nil fn unregisters; events fall back to
// the socket-level hook.
func (sk *Socket) SetAssocNotify(id AssocID, fn func(transport.Ready)) {
	if fn == nil {
		delete(sk.notifyBy, id)
		return
	}
	if sk.notifyBy == nil {
		sk.notifyBy = make(map[AssocID]func(transport.Ready))
	}
	sk.notifyBy[id] = fn
}

// fireNotify routes a readiness edge: per-association hook first, then
// the socket-level hook. id 0 means "no association" (socket-scope
// events such as Close); AssocIDs start at 1. A terminal event retires
// the registration — the association state is already gone by the time
// its CommLost/ShutdownComplete notification enqueues (teardown runs
// first), so this routing is the registration's last duty.
func (sk *Socket) fireNotify(id AssocID, ev transport.Ready) {
	if ev == 0 {
		return
	}
	if fn, ok := sk.notifyBy[id]; ok {
		if ev.Has(transport.ReadyClosed) || ev.Has(transport.ReadyErr) {
			delete(sk.notifyBy, id)
		}
		fn(ev)
		return
	}
	if sk.notify != nil {
		sk.notify(ev)
	}
}

func (sk *Socket) kernel() *sim.Kernel { return sk.stack.kernel() }

// Assoc returns the association with the given ID, or nil.
func (sk *Socket) Assoc(id AssocID) *Assoc { return sk.byID[id] }

// Assocs returns the current association IDs in creation order.
func (sk *Socket) Assocs() []AssocID {
	out := make([]AssocID, 0, len(sk.byID))
	for id := range sk.byID {
		out = append(out, id)
	}
	// Deterministic order.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// handlePacket demultiplexes an inbound packet to its association, or
// to handshake processing. A closed socket keeps servicing its
// remaining associations so their shutdown handshakes can complete.
func (sk *Socket) handlePacket(src, dst netsim.Addr, pkt *packet) {
	a := sk.assocs[addrPort{src, pkt.SrcPort}]
	if a != nil {
		// Verification tag check (paper §3.5.2: protects against stale
		// and spoofed packets). INIT carries tag 0 and is handled even
		// on an existing association (peer restart → treated as dup).
		valid := pkt.VerificationTag == a.myTag
		for _, c := range pkt.Chunks {
			if c.Type == ctInit || c.Type == ctCookieEcho {
				valid = true // handshake chunks carry their own proof
			}
			// ABORT may carry the peer's tag with the T-bit set (RFC
			// 4960 §8.5.1): the reflected-tag response of an endpoint
			// that has no association state for our packets.
			if c.Type == ctAbort && c.Flags&abortTBit != 0 && pkt.VerificationTag == a.peerTag {
				valid = true
			}
		}
		if !valid {
			a.stats.BadTagDrops++
			return
		}
		a.handlePacket(src, dst, pkt)
		return
	}
	// No association: only handshake chunks are meaningful.
	for _, c := range pkt.Chunks {
		switch c.Type {
		case ctInit:
			sk.handleInit(src, dst, pkt, c)
		case ctInitAck:
			// Stale INIT-ACK for an association we gave up on: ignore.
		case ctCookieEcho:
			sk.handleCookieEcho(src, dst, pkt, c)
		case ctShutdownAck:
			// Peer retransmitting SHUTDOWN-ACK after we removed state:
			// answer with SHUTDOWN-COMPLETE so it can finish.
			sk.sendControl(dst, src, pkt.SrcPort, pkt.VerificationTag,
				&chunk{Type: ctShutdownComplete})
		case ctData, ctIData:
			// Out-of-the-blue DATA/I-DATA: our side of the association is
			// gone (killed or aborted). RFC 4960 §8.4 rule 8: respond with
			// an ABORT carrying the reflected verification tag and the
			// T-bit, so the sender discovers the death immediately
			// instead of retransmitting into a void.
			sk.sendControl(dst, src, pkt.SrcPort, pkt.VerificationTag,
				&chunk{Type: ctAbort, Flags: abortTBit, Reason: "no association"})
			return
		}
	}
}

// sendControl emits a single-chunk packet outside any association.
func (sk *Socket) sendControl(src, dst netsim.Addr, dstPort uint16, tag uint32, c *chunk) {
	p := &packet{SrcPort: sk.port, DstPort: dstPort, VerificationTag: tag, Chunks: []*chunk{c}}
	sk.stack.node.Send(netsim.NewPooledPacket(src, dst, netsim.ProtoSCTP, encodePacket(p)))
}

// enqueue places a message or notification on the socket receive queue.
func (sk *Socket) enqueue(m *Message) {
	sk.rq = append(sk.rq, m)
	if m.Notification == NotifyNone {
		sk.Stats.MsgsRcvd++
		sk.Stats.BytesRcvd += int64(len(m.Data))
	}
	sk.rcvCond.Broadcast()
	ev := transport.ReadyRecv
	switch m.Notification {
	case NotifyCommLost:
		ev = transport.ReadyErr
	case NotifyShutdownComplete:
		ev = transport.ReadyClosed
	}
	sk.fireNotify(m.Assoc, ev)
}

// RecvMsg blocks until a message or notification arrives, mirroring
// sctp_recvmsg on a one-to-many socket: there is no way to receive from
// a chosen association; messages arrive in network order and carry
// their association and stream identifiers.
func (sk *Socket) RecvMsg(p *sim.Proc) (*Message, error) {
	for {
		m, err := sk.TryRecvMsg()
		if !errors.Is(err, transport.ErrWouldBlock) {
			return m, err
		}
		sk.rcvCond.Wait(p)
	}
}

// TryRecvMsg is the nonblocking variant of RecvMsg.
func (sk *Socket) TryRecvMsg() (*Message, error) {
	if len(sk.rq) == 0 {
		if sk.closed {
			return nil, ErrClosed
		}
		return nil, ErrWouldBlock
	}
	m := sk.rq[0]
	sk.rq = sk.rq[1:]
	if m.Notification == NotifyNone {
		// Reading frees receive-buffer space: credit the association's
		// advertised window and let it update the peer.
		if a := sk.byID[m.Assoc]; a != nil {
			a.creditRwnd(len(m.Data))
		}
	}
	return m, nil
}

// Readable reports whether TryRecvMsg would return something.
func (sk *Socket) Readable() bool { return len(sk.rq) > 0 || sk.closed }

// Writable reports whether at least one established association could
// accept outbound data right now.
func (sk *Socket) Writable() bool {
	for _, id := range sk.Assocs() {
		a := sk.byID[id]
		if a.Established() && a.SndBufAvailable() > 0 {
			return true
		}
	}
	return false
}

// SendMsg blocks until the message is accepted into the association
// send buffer.
func (sk *Socket) SendMsg(p *sim.Proc, id AssocID, stream uint16, ppid uint32, data []byte) error {
	for {
		err := sk.TrySendMsg(id, stream, ppid, data)
		if !errors.Is(err, transport.ErrWouldBlock) {
			return err
		}
		a := sk.byID[id]
		if a == nil {
			return ErrNoAssoc
		}
		a.sndCond.Wait(p)
	}
}

// TrySendMsg queues a whole message or fails: ErrMsgSize if the message
// exceeds the send buffer (the limitation in paper §3.6 that forces the
// middleware to chunk long messages), ErrWouldBlock if there is no
// space right now.
func (sk *Socket) TrySendMsg(id AssocID, stream uint16, ppid uint32, data []byte) error {
	a := sk.byID[id]
	if a == nil {
		return ErrNoAssoc
	}
	return a.trySend(stream, ppid, data)
}

// SendMsgTo sends on the association identified by a peer address,
// implicitly like sendto().
func (sk *Socket) SendMsgTo(p *sim.Proc, peer netsim.Addr, peerPort uint16, stream uint16, ppid uint32, data []byte) error {
	a := sk.assocs[addrPort{peer, peerPort}]
	if a == nil {
		return ErrNoAssoc
	}
	return sk.SendMsg(p, a.id, stream, ppid, data)
}

// AssocByPeer returns the association ID for a peer address, if any.
func (sk *Socket) AssocByPeer(peer netsim.Addr, peerPort uint16) (AssocID, bool) {
	if a := sk.assocs[addrPort{peer, peerPort}]; a != nil {
		return a.id, true
	}
	return 0, false
}

// SetStreamPriority assigns a strict-priority class to an outbound
// stream (0 is most urgent). It takes effect only on associations that
// negotiated I-DATA and run the SchedPriority scheduler; elsewhere it
// records nothing and is a harmless no-op, so callers need not care
// which mode the association landed in.
func (sk *Socket) SetStreamPriority(id AssocID, stream uint16, prio uint8) error {
	a := sk.byID[id]
	if a == nil {
		return ErrNoAssoc
	}
	if int(stream) >= a.numOut {
		return ErrBadStream
	}
	if a.sched != nil {
		a.sched.setPriority(stream, prio)
	}
	return nil
}

// SetStreamWeight assigns a weighted-fair share to an outbound stream
// (minimum 1). Like SetStreamPriority it only affects I-DATA
// associations running the SchedWeightedFair scheduler.
func (sk *Socket) SetStreamWeight(id AssocID, stream uint16, weight int) error {
	a := sk.byID[id]
	if a == nil {
		return ErrNoAssoc
	}
	if int(stream) >= a.numOut {
		return ErrBadStream
	}
	if a.sched != nil {
		a.sched.setWeight(stream, weight)
	}
	return nil
}

// SetPrimary selects the primary destination address of an association.
func (sk *Socket) SetPrimary(id AssocID, addr netsim.Addr) error {
	a := sk.byID[id]
	if a == nil {
		return ErrNoAssoc
	}
	for i, pt := range a.paths {
		if pt.addr == addr {
			a.primary = i
			return nil
		}
	}
	return ErrNoAssoc
}

// CloseAssoc starts a graceful shutdown of one association.
func (sk *Socket) CloseAssoc(id AssocID) error {
	a := sk.byID[id]
	if a == nil {
		return ErrNoAssoc
	}
	a.gracefulClose()
	return nil
}

// KillAssoc tears an association down silently: no ABORT or any other
// wire traffic, exactly as if the endpoint's host had crashed. The
// local application gets a NotifyCommLost; the peer discovers the
// death through its own timers or an out-of-the-blue ABORT when it
// next transmits. This is the fault-injection entry point for session
// recovery testing.
func (sk *Socket) KillAssoc(id AssocID) error {
	a := sk.byID[id]
	if a == nil {
		return ErrNoAssoc
	}
	a.fail(ErrAborted, false)
	return nil
}

// Abort tears an association down immediately with an ABORT chunk.
func (sk *Socket) Abort(id AssocID, reason string) error {
	a := sk.byID[id]
	if a == nil {
		return ErrNoAssoc
	}
	a.abort(reason, true)
	return nil
}

// Close starts a graceful shutdown of every association and marks the
// socket closed for the application. Like a real close() on a
// one-to-many socket, the endpoint itself stays alive in the stack
// until the SHUTDOWN handshakes complete, then the port is released.
func (sk *Socket) Close() {
	if sk.closed {
		return
	}
	sk.closed = true
	sk.listening = false
	for _, id := range sk.Assocs() { // deterministic order
		sk.byID[id].gracefulClose()
	}
	sk.maybeRelease()
	sk.rcvCond.Broadcast()
	// Wake both scopes: the socket-level consumer and every Conn holding
	// a per-association registration (deterministic order).
	if sk.notify != nil {
		sk.notify(transport.ReadyClosed)
	}
	for _, id := range sk.Assocs() {
		if fn, ok := sk.notifyBy[id]; ok {
			fn(transport.ReadyClosed)
		}
	}
}

func (sk *Socket) maybeRelease() {
	if sk.closed && len(sk.byID) == 0 {
		delete(sk.stack.socks, sk.port)
	}
}

func (sk *Socket) removeAssoc(a *Assoc) {
	for _, ap := range a.peerAddrs {
		key := addrPort{ap, a.peerPort}
		if sk.assocs[key] == a {
			delete(sk.assocs, key)
		}
	}
	// The notifyBy registration survives removal on purpose: the terminal
	// notification enqueues after teardown and must still route to the
	// association's hook (fireNotify retires it).
	delete(sk.byID, a.id)
	sk.Stats.AssocsClosed++
	sk.maybeRelease()
}
