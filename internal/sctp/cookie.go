package sctp

import (
	"crypto/hmac"
	"crypto/sha256"
	"time"

	"repro/internal/netsim"
	"repro/internal/seqnum"
	"repro/internal/wire"
)

// stateCookie is the signed cookie exchanged during the four-way
// handshake. The receiver of INIT allocates no resources: everything
// needed to build the association is inside the cookie, authenticated
// with an HMAC so a spoofed COOKIE-ECHO cannot forge state (the paper's
// §3.5.2 "added protection").
type stateCookie struct {
	PeerPort   uint16
	PeerTag    uint32 // peer's initiate tag (our send verification tag)
	LocalTag   uint32 // our initiate tag (peer's send verification tag)
	PeerTSN    seqnum.V
	LocalTSN   seqnum.V
	OutStreams uint16
	InStreams  uint16
	IData      bool // RFC 8260 interleaving negotiated by both ends
	PeerAddrs  []netsim.Addr
	LocalAddrs []netsim.Addr
	IssuedAt   time.Duration // virtual time, for staleness checks
}

const cookieMACSize = sha256.Size

func (c *stateCookie) encode(secret []byte) []byte {
	w := wire.NewWriter(64)
	w.U16(c.PeerPort)
	w.U32(c.PeerTag)
	w.U32(c.LocalTag)
	w.U32(uint32(c.PeerTSN))
	w.U32(uint32(c.LocalTSN))
	w.U16(c.OutStreams)
	w.U16(c.InStreams)
	if c.IData {
		w.U8(1)
	} else {
		w.U8(0)
	}
	w.U64(uint64(c.IssuedAt))
	w.U16(uint16(len(c.PeerAddrs)))
	for _, a := range c.PeerAddrs {
		w.U32(uint32(a))
	}
	w.U16(uint16(len(c.LocalAddrs)))
	for _, a := range c.LocalAddrs {
		w.U32(uint32(a))
	}
	mac := hmac.New(sha256.New, secret)
	mac.Write(w.B)
	return mac.Sum(w.B)
}

// decodeCookie verifies the MAC and parses the cookie. It returns
// ErrInitFailed on any tampering.
func decodeCookie(b, secret []byte) (*stateCookie, error) {
	if len(b) < cookieMACSize {
		return nil, ErrInitFailed
	}
	body, tag := b[:len(b)-cookieMACSize], b[len(b)-cookieMACSize:]
	mac := hmac.New(sha256.New, secret)
	mac.Write(body)
	if !hmac.Equal(mac.Sum(nil), tag) {
		return nil, ErrInitFailed
	}
	r := wire.NewReader(body)
	c := &stateCookie{}
	c.PeerPort = r.U16()
	c.PeerTag = r.U32()
	c.LocalTag = r.U32()
	c.PeerTSN = seqnum.V(r.U32())
	c.LocalTSN = seqnum.V(r.U32())
	c.OutStreams = r.U16()
	c.InStreams = r.U16()
	c.IData = r.U8() != 0
	c.IssuedAt = time.Duration(r.U64())
	np := int(r.U16())
	for i := 0; i < np; i++ {
		c.PeerAddrs = append(c.PeerAddrs, netsim.Addr(r.U32()))
	}
	nl := int(r.U16())
	for i := 0; i < nl; i++ {
		c.LocalAddrs = append(c.LocalAddrs, netsim.Addr(r.U32()))
	}
	if err := r.Err(); err != nil {
		return nil, ErrInitFailed
	}
	return c, nil
}
